package zeroinf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/tensor"
)

// Consolidated fp16 checkpoint format (the analogue of DeepSpeed's
// zero_to_fp32 consolidation): weights only, optimizer state is reset on
// load. Layout (little endian):
//
//	magic "ZINF" | u32 version | u32 param count |
//	repeated: u32 name length | name | u64 elems | elems × binary16
//
// Parameters are written sorted by name so checkpoints are byte-for-byte
// reproducible.
const (
	ckptMagic   = "ZINF"
	ckptVersion = 1
)

// WriteCheckpoint serializes the full parameter map (as returned by
// Engine.FullParams) to w, rounding values through fp16.
func WriteCheckpoint(w io.Writer, params map[string][]float32) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		v := params[name]
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(v))); err != nil {
			return err
		}
		h := make([]tensor.Half, len(v))
		tensor.EncodeHalf(h, v)
		b := make([]byte, 2*len(h))
		tensor.HalfToBytes(b, h)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (map[string][]float32, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("zeroinf: read checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("zeroinf: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("zeroinf: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxParams = 1 << 24
	if count > maxParams {
		return nil, fmt.Errorf("zeroinf: implausible parameter count %d", count)
	}
	out := make(map[string][]float32, count)
	// Element payloads are read in bounded chunks so a lying header (a huge
	// declared count on a tiny or adversarial stream) fails with EOF after
	// consuming only the bytes actually present, instead of pre-allocating
	// the claimed size.
	const chunkElems = 1 << 16
	var (
		chunkBytes [2 * chunkElems]byte
		chunkHalf  [chunkElems]tensor.Half
		chunkF32   [chunkElems]float32
	)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("zeroinf: implausible name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		var elems uint64
		if err := binary.Read(br, binary.LittleEndian, &elems); err != nil {
			return nil, err
		}
		if elems > 1<<40 {
			return nil, fmt.Errorf("zeroinf: implausible element count %d", elems)
		}
		v := make([]float32, 0, min(elems, chunkElems))
		for got := uint64(0); got < elems; {
			n := min(elems-got, chunkElems)
			b := chunkBytes[:2*n]
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, err
			}
			h := chunkHalf[:n]
			tensor.HalfFromBytes(h, b)
			f := chunkF32[:n]
			tensor.DecodeHalf(f, h)
			v = append(v, f...)
			got += n
		}
		name := string(nameBytes)
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("zeroinf: duplicate parameter %q in checkpoint", name)
		}
		out[name] = v
	}
	// The declared count must exhaust the stream: trailing bytes mean a
	// corrupt or truncated-count file, not extra harmless padding.
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("zeroinf: trailing bytes after %d checkpoint parameters", count)
	} else if err != io.EOF {
		return nil, err
	}
	return out, nil
}

// ParamLoader is implemented by every engine in this package: it replaces
// the model weights and resets optimizer state.
type ParamLoader interface {
	LoadParams(values map[string][]float32) error
}

// LoadCheckpoint reads a checkpoint from r and installs it into the engine.
// Every rank must call it (with its own engine handle) on the same data.
func LoadCheckpoint(r io.Reader, e Engine) error {
	params, err := ReadCheckpoint(r)
	if err != nil {
		return err
	}
	loader, ok := e.(ParamLoader)
	if !ok {
		return fmt.Errorf("zeroinf: engine %T does not support LoadParams", e)
	}
	return loader.LoadParams(params)
}

// SaveCheckpoint gathers the engine's weights (collective call — every rank
// must participate, but only the caller writes) and serializes them to w.
func SaveCheckpoint(w io.Writer, e Engine) error {
	return WriteCheckpoint(w, e.FullParams())
}
