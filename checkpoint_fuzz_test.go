package zeroinf_test

import (
	"bytes"
	"math"
	"testing"

	zeroinf "repro"
)

func fuzzSeedCheckpoint(t testing.TB) []byte {
	var buf bytes.Buffer
	err := zeroinf.WriteCheckpoint(&buf, map[string][]float32{
		"blocks.0.attn.qkv.weight": {1, -2, 0.5, 1e-3},
		"head.weight":              {0.25},
		"empty":                    {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCheckpointTruncation chops a valid checkpoint at every byte
// boundary — header, name, element payload — and requires every strict
// prefix to be rejected with an error, never accepted or panicking.
func TestReadCheckpointTruncation(t *testing.T) {
	enc := fuzzSeedCheckpoint(t)
	for n := 0; n < len(enc); n++ {
		if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", n, len(enc))
		}
	}
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(enc)); err != nil {
		t.Fatalf("full checkpoint rejected: %v", err)
	}
}

// FuzzReadCheckpoint: arbitrary input must either be rejected with an error
// or decode to a map that re-encodes and re-reads to the same values —
// fp16 round-tripping is a fixed point, so one decode/encode cycle must be
// lossless.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(fuzzSeedCheckpoint(f))
	f.Add([]byte("ZINF"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := zeroinf.ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := zeroinf.WriteCheckpoint(&out, params); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		again, err := zeroinf.ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded checkpoint failed: %v", err)
		}
		if len(again) != len(params) {
			t.Fatalf("round trip changed param count: %d vs %d", len(again), len(params))
		}
		for name, v := range params {
			v2, ok := again[name]
			if !ok {
				t.Fatalf("round trip lost param %q", name)
			}
			if len(v2) != len(v) {
				t.Fatalf("round trip changed %q length: %d vs %d", name, len(v2), len(v))
			}
			for i := range v {
				// NaN payload bits may canonicalize on the first re-encode;
				// values must otherwise be bit-identical.
				if v[i] != v2[i] && !(math.IsNaN(float64(v[i])) && math.IsNaN(float64(v2[i]))) {
					t.Fatalf("round trip changed %q[%d]: %g vs %g", name, i, v[i], v2[i])
				}
			}
		}
	})
}
