package overlap

import (
	"reflect"
	"testing"
)

// runStep feeds one iteration's observed sequence through the trace and
// returns, for each observation, the speculation candidates the prefetcher
// would have seen right after it (up to window entries).
func runStep(t *Trace[string], obs []string, window int) [][]string {
	t.BeginStep()
	var out [][]string
	for _, k := range obs {
		t.Observe(k)
		var up []string
		t.Each(func(k string) bool {
			if len(up) >= window {
				return false
			}
			up = append(up, k)
			return true
		})
		out = append(out, up)
	}
	t.EndStep()
	return out
}

func TestLearnThenSpeculate(t *testing.T) {
	tr := New[string](2)
	seq := []string{"a", "b", "c", "d"}

	// Step 1 learns; no speculation during learning.
	cands := runStep(tr, seq, 2)
	for i, c := range cands {
		if len(c) != 0 {
			t.Fatalf("speculated during learning at obs %d: %v", i, c)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("trace len = %d, want 4", tr.Len())
	}

	// Step 2 speculates: after observing "a" the upcoming entries are b, c.
	cands = runStep(tr, seq, 2)
	want := [][]string{{"b", "c"}, {"c", "d"}, {"d"}, nil}
	if !reflect.DeepEqual(cands, want) {
		t.Fatalf("speculation candidates = %v, want %v", cands, want)
	}
}

// The mid-step relearn regression (internal/core/prefetch.go divergence
// corruption): when the operator sequence diverges mid-step, the rest of the
// step must neither speculate nor append onto the stale trace. The next step
// is a learning step that records a complete fresh sequence, and the step
// after that speculates the new sequence — not a garbage splice of stale
// prefix + duplicate suffix.
func TestMidStepDivergenceRelearnsCleanly(t *testing.T) {
	tr := New[string](2)
	old := []string{"a", "b", "c", "d"}
	diverged := []string{"a", "x", "y", "z"}

	runStep(tr, old, 4) // learn
	// Step 2 diverges at the second observation.
	tr.BeginStep()
	tr.Observe("a")
	if !tr.Speculating() {
		t.Fatal("not speculating after matching observation")
	}
	tr.Observe("x") // not in trace: divergence
	if tr.Speculating() {
		t.Fatal("still speculating after divergence")
	}
	tr.Observe("y")
	tr.Observe("z")
	if tr.Len() != len(old) {
		t.Fatalf("diverged step mutated the trace: len %d, want %d", tr.Len(), len(old))
	}
	tr.EndStep()

	// Step 3 relearns from scratch.
	if !tr.Learning() {
		t.Fatal("next step after divergence is not a learning step")
	}
	runStep(tr, diverged, 4)
	if tr.Len() != len(diverged) {
		t.Fatalf("relearned trace len = %d, want %d", tr.Len(), len(diverged))
	}

	// Step 4 speculates the new sequence exactly.
	cands := runStep(tr, diverged, 4)
	want := [][]string{{"x", "y", "z"}, {"y", "z"}, {"z"}, nil}
	if !reflect.DeepEqual(cands, want) {
		t.Fatalf("post-relearn candidates = %v, want %v (stale prefix leaked?)", cands, want)
	}
}

func TestOutOfWindowDivergence(t *testing.T) {
	tr := New[string](1) // window = 2*1+4 = 6
	long := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	runStep(tr, long, 1)

	// Jumping far ahead (beyond the search window) counts as divergence.
	tr.BeginStep()
	tr.Observe("a")
	tr.Observe("i") // 7 entries ahead of the cursor
	if tr.Speculating() {
		t.Fatal("out-of-window jump did not stop speculation")
	}
	tr.EndStep()
	if !tr.Learning() {
		t.Fatal("out-of-window jump did not schedule a relearn")
	}
}

func TestSkippedEntriesWithinWindowAreTolerated(t *testing.T) {
	tr := New[string](2)
	runStep(tr, []string{"a", "b", "c", "d"}, 2)

	// "b" vanishing (e.g. a materialized param needing no gather) is fine as
	// long as the next observation is within the window.
	tr.BeginStep()
	tr.Observe("a")
	tr.Observe("c")
	if !tr.Speculating() {
		t.Fatal("within-window skip treated as divergence")
	}
	var up []string
	tr.Each(func(k string) bool { up = append(up, k); return true })
	if !reflect.DeepEqual(up, []string{"d"}) {
		t.Fatalf("cursor wrong after skip: upcoming = %v", up)
	}
	tr.EndStep()
	if tr.Learning() {
		t.Fatal("clean step scheduled a relearn")
	}
}
