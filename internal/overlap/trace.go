// Package overlap implements the learn-then-speculate operator-sequence
// tracker behind the paper's overlap-centric design (Sec. 6.2). During a
// learning iteration the trace records the sequence of operations (parameter
// gathers); in later iterations a cursor follows the recorded sequence so a
// prefetcher can issue work for the next k entries while the current one
// executes. If the observed sequence diverges from the trace (dynamic
// control flow), speculation stops for the rest of the step and the trace is
// relearned from scratch on the next step — never by appending onto the
// stale sequence, which would corrupt speculation with a stale prefix plus a
// duplicate suffix.
//
// Both prefetchers in the codebase share this state machine: the NVMe read
// prefetcher in internal/core and the allgather prefetcher in internal/zero.
// Crucially for the comm prefetcher, every transition is a pure function of
// the observed key sequence — no wall-clock or scheduling input — so SPMD
// ranks observing identical gather sequences make identical speculation
// decisions, which is what keeps speculatively issued collectives matched
// across ranks.
package overlap

// Trace tracks one operator sequence. The zero value is not usable; call New.
type Trace[K comparable] struct {
	depth int
	seq   []K
	// learning: this step records the sequence instead of speculating.
	learning bool
	// relearn: the sequence diverged mid-step; speculation is disabled for
	// the rest of this step and the next step becomes a learning step.
	relearn bool
	pos     int
}

// New returns a Trace in learning mode. depth sizes the divergence-search
// window used by Observe (matching the prefetch read-ahead depth).
func New[K comparable](depth int) *Trace[K] {
	if depth < 0 {
		depth = 0
	}
	return &Trace[K]{depth: depth, learning: true}
}

// BeginStep resets the cursor for a new iteration. In learning mode the
// previous trace is discarded so the step records a fresh, complete
// sequence.
//
//zinf:hotpath
func (t *Trace[K]) BeginStep() {
	t.pos = 0
	if t.learning {
		t.seq = t.seq[:0]
	}
}

// EndStep finishes the iteration. A completed learning step arms
// speculation; a step that diverged re-enters learning mode so the next
// step records a clean trace (the mid-step relearn semantics).
//
//zinf:hotpath
func (t *Trace[K]) EndStep() {
	t.learning = t.relearn
	t.relearn = false
}

// Learning reports whether the current step is recording the sequence.
//
//zinf:hotpath
func (t *Trace[K]) Learning() bool { return t.learning }

// Speculating reports whether prefetch issue is currently allowed: a trace
// has been learned and the step has not diverged from it.
//
//zinf:hotpath
func (t *Trace[K]) Speculating() bool { return !t.learning && !t.relearn }

// Observe notes that k is about to execute. In learning mode it appends k
// to the trace; in speculation mode it advances the cursor to just past k,
// or — if k is not found within the search window — marks the sequence
// diverged (speculation stops, next step relearns).
//
//zinf:hotpath
func (t *Trace[K]) Observe(k K) {
	if t.learning {
		t.seq = append(t.seq, k)
		return
	}
	if t.relearn {
		return
	}
	for i := t.pos; i < len(t.seq) && i < t.pos+2*t.depth+4; i++ {
		if t.seq[i] == k {
			t.pos = i + 1
			return
		}
	}
	t.relearn = true
}

// Each calls yield for the upcoming trace entries — from the cursor to the
// end of the learned sequence, in order — while yield returns true. It
// yields nothing unless Speculating.
//
//zinf:hotpath
func (t *Trace[K]) Each(yield func(K) bool) {
	if !t.Speculating() {
		return
	}
	for i := t.pos; i < len(t.seq); i++ {
		if !yield(t.seq[i]) {
			return
		}
	}
}

// Len returns the learned sequence length.
//
//zinf:hotpath
func (t *Trace[K]) Len() int { return len(t.seq) }
