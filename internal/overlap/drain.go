package overlap

import (
	"repro/internal/comm"
	"repro/internal/tensor"
)

// Pending is one asynchronously launched gradient reduce-scatter: the
// ticket, the fp32 destination shard the fused reduce-scatter+decode
// collective fills, and the binary16 gradient source buffer kept alive
// until the ticket completes. Both buffers typically come from the engine's
// scratch arena; the fold callback owns returning them.
type Pending[K comparable] struct {
	Key    K
	Ticket comm.Ticket
	Shard  []float32
	GH     []tensor.Half
}

// Drain waits out pending reduces in issue order and hands each completed
// fp32 shard (plus its retired gradient source buffer) to fold. Issue order
// is exactly the synchronous engines' accumulation sequence, which is what
// keeps overlapped trajectories bit-identical — this is the single canonical
// implementation of that ordering, shared by the stage-3 and infinity
// engines. fold decides each buffer's fate (accumulate-and-recycle or keep
// as the gradient shard); entries are zeroed as they are folded and the
// emptied, reusable slice is returned.
//
//zinf:hotpath
func Drain[K comparable](pending []Pending[K], fold func(key K, shard []float32, gh []tensor.Half)) []Pending[K] {
	for i := range pending {
		p := &pending[i]
		p.Ticket.Wait()
		fold(p.Key, p.Shard, p.GH)
		*p = Pending[K]{}
	}
	return pending[:0]
}
