package overlap

import "repro/internal/tensor"

// Waiter is the completion handle of an asynchronously launched collective.
type Waiter interface{ Wait() }

// Pending is one asynchronously launched gradient reduce-scatter: the
// ticket, the binary16 destination shard, and the gradient source buffer
// kept alive until the ticket completes.
type Pending[K comparable] struct {
	Key    K
	Ticket Waiter
	ShardH []tensor.Half
	GH     []tensor.Half
}

// Drain waits out pending reduces in issue order, decodes each shard to
// fp32 and hands it to fold. Issue order is exactly the synchronous
// engines' accumulation sequence, which is what keeps overlapped
// trajectories bit-identical — this is the single canonical implementation
// of that ordering, shared by the stage-3 and infinity engines. Entries are
// zeroed as they are folded (releasing the gradient buffers) and the
// emptied, reusable slice is returned.
func Drain[K comparable](pending []Pending[K], fold func(key K, gs []float32)) []Pending[K] {
	for i := range pending {
		p := &pending[i]
		p.Ticket.Wait()
		gs := make([]float32, len(p.ShardH))
		tensor.DecodeHalf(gs, p.ShardH)
		fold(p.Key, gs)
		*p = Pending[K]{}
	}
	return pending[:0]
}
