package comm

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/tensor"
)

// sockTransport is the multi-process Transport: one rank per OS process,
// connected over TCP. It is deliberately hub-routed rather than a mesh —
// rank 0 is always the hub, every other rank holds exactly one connection
// to it, and every collective (rooted or not) flows contribution frames to
// the hub, which assembles them into the same op descriptor the in-memory
// transport uses and runs the exact same compute functions. Because one
// goroutine performs the fp32 rank-order accumulation over all ranks'
// buffers in both transports, bit-identity across transports is structural,
// not a property that per-collective send/recv schedules would each have to
// re-prove.
//
// Deadlock freedom: the hub owns one reader goroutine per peer that drains
// contribution frames into an unbounded per-peer mailbox, so a peer's
// contribution write never blocks on the hub being busy; leaves read result
// frames inline (the hub's result stream to each leaf is strictly in that
// leaf's sequence order). Collectives complete in sequence order on every
// rank: issuing appends to a pending FIFO, and Wait/rendezvous advance the
// FIFO head-first through the awaited sequence number — which also makes
// out-of-order Wait calls safe, exactly like the in-memory transport.
//
// Measured traffic: the hub records real wire bytes (classified intra/inter
// node by the installed topology) and wall-clock time including the wait
// for straggler contributions; leaves carry no measured numbers, so the
// measured view of a socket world lives on rank 0.
type sockTransport struct {
	collCtx
	rank int

	hubConn *frameConn     // leaf: the one connection, to rank 0
	peers   []*peerMailbox // hub: by rank; nil at index 0 (self)
	ln      net.Listener   // hub: kept only so Close unblocks readers

	pending    []sockOp
	phead      int
	lastResult float64

	o *op // hub/solo: the single reusable op descriptor

	closeOnce sync.Once
	closeErr  error
}

// sockOp is one issued-but-not-completed collective on this rank.
type sockOp struct {
	seq  uint64
	kind opKind
	root int
	pl   payload
}

// inFrame is one decoded contribution sitting in a hub mailbox. Its payload
// slices come from the transport's arenas and are released after compute.
type inFrame struct {
	seq  uint64
	kind opKind
	root int
	pl   payload
	wire int64
}

// peerMailbox buffers one peer's decoded contributions between its reader
// goroutine (push) and the hub's rank goroutine (pop).
type peerMailbox struct {
	fc   *frameConn
	mu   sync.Mutex
	cond *sync.Cond
	q    []inFrame
	head int
	err  error
}

//zinf:hotpath
func (p *peerMailbox) push(f inFrame) {
	p.mu.Lock()
	p.q = append(p.q, f)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *peerMailbox) fail(err error) {
	p.mu.Lock()
	p.err = err
	p.mu.Unlock()
	p.cond.Broadcast()
}

// pop blocks for the peer's next contribution. A dead peer panics the hub:
// the world cannot make collective progress without it, and the process
// exit is what tells the launcher to kill the remaining ranks.
//
//zinf:hotpath
func (p *peerMailbox) pop() inFrame {
	p.mu.Lock()
	for p.head == len(p.q) {
		if p.err != nil {
			p.mu.Unlock()
			panic(fmt.Sprintf("comm: sock: peer connection lost: %v", p.err))
		}
		p.cond.Wait()
	}
	f := p.q[p.head]
	p.q[p.head] = inFrame{}
	p.head++
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	}
	p.mu.Unlock()
	return f
}

// SockConfig configures one rank's end of a socket-transport world.
type SockConfig struct {
	// Rank and Size identify this process within the world.
	Rank, Size int
	// Coord is the hub's TCP address ("host:port"). Rank 0 listens on it;
	// every other rank dials it (retrying until DialTimeout, so workers may
	// start in any order).
	Coord string
	// DialTimeout bounds bootstrap: how long leaves keep retrying the dial
	// and the hub waits for stragglers to connect. Defaults to 15s.
	DialTimeout time.Duration
}

// NewSockTransport bootstraps one rank of a TCP-connected world and blocks
// until this rank is wired: the hub (rank 0) until all peers have connected
// and identified themselves, a leaf until its dial and handshake complete.
// Pass the result to New via WorldOptions.Transport; the world then hosts
// exactly this rank.
func NewSockTransport(cfg SockConfig) (Transport, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("comm: sock: world size %d < 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("comm: sock: rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	t := &sockTransport{
		collCtx: collCtx{
			size:     cfg.Size,
			fscratch: mem.NewArena[float32](),
			hscratch: mem.NewArena[tensor.Half](),
			codec:    tensor.Reference(),
		},
		rank: cfg.Rank,
	}
	if cfg.Rank == 0 {
		t.o = &op{contrib: make([]payload, cfg.Size)}
		t.peers = make([]*peerMailbox, cfg.Size)
		if cfg.Size == 1 {
			return t, nil // solo world: no network at all
		}
		if err := t.bootstrapHub(cfg.Coord, timeout); err != nil {
			return nil, err
		}
		return t, nil
	}
	if err := t.bootstrapLeaf(cfg.Coord, timeout); err != nil {
		return nil, err
	}
	return t, nil
}

// bootstrapHub accepts and identifies every peer, then starts one reader
// goroutine per connection.
func (t *sockTransport) bootstrapHub(coord string, timeout time.Duration) error {
	ln, err := net.Listen("tcp", coord)
	if err != nil {
		return fmt.Errorf("comm: sock: hub listen %s: %w", coord, err)
	}
	t.ln = ln
	deadline := time.Now().Add(timeout)
	for have := 1; have < t.size; have++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			t.Close()
			return fmt.Errorf("comm: sock: hub accepted %d/%d ranks: %w", have, t.size, err)
		}
		c.SetDeadline(deadline)
		rank, size, err := readHello(c)
		switch {
		case err != nil:
		case size != t.size:
			err = fmt.Errorf("comm: sock: rank %d believes world size is %d, hub has %d", rank, size, t.size)
		case rank <= 0 || rank >= t.size:
			err = fmt.Errorf("comm: sock: hello from out-of-range rank %d", rank)
		case t.peers[rank] != nil:
			err = fmt.Errorf("comm: sock: duplicate hello from rank %d", rank)
		default:
			err = writeWelcome(c, t.size)
		}
		if err != nil {
			c.Close()
			t.Close()
			return err
		}
		c.SetDeadline(time.Time{})
		p := &peerMailbox{fc: newFrameConn(c)}
		p.cond = sync.NewCond(&p.mu)
		t.peers[rank] = p
	}
	for rank, p := range t.peers {
		if p != nil {
			go t.readLoop(rank, p)
		}
	}
	return nil
}

// bootstrapLeaf dials the hub (retrying while it may not be listening yet)
// and completes the handshake.
func (t *sockTransport) bootstrapLeaf(coord string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var c net.Conn
	for {
		var err error
		c, err = net.DialTimeout("tcp", coord, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: sock: rank %d could not reach hub at %s: %w", t.rank, coord, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.SetDeadline(deadline)
	if err := writeHello(c, t.rank, t.size); err != nil {
		c.Close()
		return fmt.Errorf("comm: sock: rank %d hello: %w", t.rank, err)
	}
	size, err := readWelcome(c)
	if err != nil {
		c.Close()
		return fmt.Errorf("comm: sock: rank %d: %w", t.rank, err)
	}
	if size != t.size {
		c.Close()
		return fmt.Errorf("comm: sock: hub has world size %d, rank %d expected %d", size, t.rank, t.size)
	}
	c.SetDeadline(time.Time{})
	t.hubConn = newFrameConn(c)
	return nil
}

// readLoop drains one peer's contribution frames into its mailbox. It owns
// the connection's read side and exits when the connection dies (normal
// shutdown included: the peer closing its end surfaces as io.EOF here).
func (t *sockTransport) readLoop(rank int, p *peerMailbox) {
	for {
		f, err := t.readContrib(rank, p.fc)
		if err != nil {
			p.fail(err)
			return
		}
		p.push(f)
	}
}

// readContrib reads and decodes one contribution frame from peer rank,
// staging the payload in the transport's arenas (released by runHub after
// compute).
//
//zinf:hotpath
func (t *sockTransport) readContrib(rank int, fc *frameConn) (inFrame, error) {
	var hb [frameHdrLen]byte
	if _, err := io.ReadFull(fc.br, hb[:]); err != nil {
		return inFrame{}, err
	}
	if hb[4] != frameContrib {
		return inFrame{}, errBadFrameType
	}
	kind := opKind(hb[5])
	root := int(le16(hb[6:]))
	nfdst, nfsrc := int(le32(hb[8:])), int(le32(hb[12:]))
	nhdst, nhsrc := int(le32(hb[16:])), int(le32(hb[20:]))
	plen := int(le32(hb[0:]))
	isRoot := rank == root
	if plen != contribPayloadLen(kind, isRoot, nfdst, nfsrc, nhdst, nhsrc) {
		return inFrame{}, errFrameLen
	}
	fc.rbuf = growBuf(fc.rbuf, plen)
	if _, err := io.ReadFull(fc.br, fc.rbuf); err != nil {
		return inFrame{}, err
	}
	pl := payload{
		fdst: t.fscratch.Get(nfdst),
		fsrc: t.fscratch.Get(nfsrc),
		hdst: t.hscratch.Get(nhdst),
		hsrc: t.hscratch.Get(nhsrc),
		v:    f64frombits(le64(hb[32:])),
	}
	off := 0
	if dstCarriesInput(kind, isRoot) {
		off += getF32s(pl.fdst, fc.rbuf[off:])
	}
	off += getF32s(pl.fsrc, fc.rbuf[off:])
	if dstCarriesInput(kind, isRoot) {
		off += getHalfs(pl.hdst, fc.rbuf[off:])
	}
	getHalfs(pl.hsrc, fc.rbuf[off:])
	return inFrame{
		seq:  le64(hb[24:]),
		kind: kind,
		root: root,
		pl:   pl,
		wire: int64(frameHdrLen + plen),
	}, nil
}

// Size returns the number of ranks in the world.
//
//zinf:hotpath
func (t *sockTransport) Size() int { return t.size }

// Close tears down this rank's connections. On the hub this unblocks every
// reader goroutine (their reads error out and fail their mailboxes).
func (t *sockTransport) Close() error {
	t.closeOnce.Do(func() {
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		if t.hubConn != nil {
			if err := t.hubConn.c.Close(); err != nil && t.closeErr == nil {
				t.closeErr = err
			}
		}
		for _, p := range t.peers {
			if p != nil {
				if err := p.fc.c.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
	})
	return t.closeErr
}

// hosts reports whether this process hosts rank: exactly one rank per
// process on the socket transport.
func (t *sockTransport) hosts(rank int) bool { return rank == t.rank }

// setCodec and setTopology run during World construction, before the rank
// issues collectives; the transport is single-goroutine after bootstrap
// (readers never touch codec or topo), so no locking is needed.
func (t *sockTransport) setCodec(be tensor.Backend) {
	t.codec = tensor.DefaultBackend(be)
}

func (t *sockTransport) setTopology(topo *Topology) error {
	cp, err := normalizeTopology(topo, t.size)
	if err != nil {
		return err
	}
	t.topo = cp
	return nil
}

func (t *sockTransport) topology() *Topology { return t.topo }

// snapshotTraffic and resetTraffic run on the rank goroutine (via
// Comm.Traffic etc.), which is also the only goroutine writing t.traffic.
func (t *sockTransport) snapshotTraffic(f func(k opKind, st TrafficStats)) {
	for k := range t.traffic {
		f(opKind(k), t.traffic[k])
	}
}

func (t *sockTransport) resetTraffic() {
	for k := range t.traffic {
		t.traffic[k] = TrafficStats{}
	}
}

// enqueue registers this rank's seq-th collective: leaves ship their
// contribution to the hub immediately (so the hub can overlap assembly with
// the leaf's further compute), and every rank appends to its pending FIFO.
//
//zinf:hotpath
func (t *sockTransport) enqueue(seq uint64, kind opKind, root int, pl payload) {
	if t.hubConn != nil {
		t.hubConn.writeContrib(seq, kind, root, t.rank == root, pl)
	}
	t.pending = append(t.pending, sockOp{seq: seq, kind: kind, root: root, pl: pl})
}

// rendezvous performs rank's seq-th collective synchronously.
//
//zinf:hotpath
func (t *sockTransport) rendezvous(rank int, seq uint64, kind opKind, root int, pl payload) float64 {
	t.enqueue(seq, kind, root, pl)
	return t.advance(seq)
}

// issue starts rank's seq-th collective; Ticket.Wait advances through it.
//
//zinf:hotpath
func (t *sockTransport) issue(rank int, seq uint64, kind opKind, root int, pl payload) Ticket {
	t.enqueue(seq, kind, root, pl)
	return Ticket{st: t, seq: seq}
}

// advance completes pending collectives in sequence order through target
// and returns the last scalar result. Already-completed targets are no-ops,
// which is what makes out-of-order Wait calls safe.
//
//zinf:hotpath
func (t *sockTransport) advance(target uint64) float64 {
	for t.phead < len(t.pending) && t.pending[t.phead].seq <= target {
		so := t.pending[t.phead]
		t.pending[t.phead] = sockOp{}
		t.phead++
		if t.phead == len(t.pending) {
			t.pending = t.pending[:0]
			t.phead = 0
		}
		if t.peers != nil {
			t.lastResult = t.runHub(so)
		} else {
			t.lastResult = t.runLeaf(so)
		}
	}
	return t.lastResult
}

// runHub assembles one collective from the hub's own contribution plus one
// mailbox frame per peer, runs the shared compute functions, returns each
// peer's results, and records measured traffic: real wire bytes in both
// directions (classified intra/inter-node by the installed topology) and
// wall-clock time including the wait for straggler contributions.
//
//zinf:hotpath
func (t *sockTransport) runHub(so sockOp) float64 {
	start := time.Now()
	o := t.o
	o.kind, o.root = so.kind, so.root
	o.contrib[t.rank] = so.pl
	var wIntra, wInter int64
	hubNode := t.nodeOf(t.rank)
	for r, p := range t.peers {
		if p == nil {
			continue
		}
		f := p.pop()
		if f.seq != so.seq || f.kind != so.kind || f.root != so.root {
			panic(fmt.Sprintf("comm: collective mismatch at seq %d: rank %d sent %s(root %d), hub expected %s(root %d)",
				so.seq, r, f.kind, f.root, so.kind, so.root))
		}
		o.contrib[r] = f.pl
		if t.nodeOf(r) == hubNode {
			wIntra += f.wire
		} else {
			wInter += f.wire
		}
	}
	computeFns[o.kind](&t.collCtx, o)
	t.account(o)
	res := o.result
	for r, p := range t.peers {
		if p == nil {
			continue
		}
		n := p.fc.writeResult(so.seq, o.kind, resultCarriesDst(o.kind, r == o.root), o.contrib[r], res)
		if t.nodeOf(r) == hubNode {
			wIntra += n
		} else {
			wInter += n
		}
	}
	for r, p := range t.peers {
		if p == nil {
			continue
		}
		t.fscratch.Put(o.contrib[r].fdst)
		t.fscratch.Put(o.contrib[r].fsrc)
		t.hscratch.Put(o.contrib[r].hdst)
		t.hscratch.Put(o.contrib[r].hsrc)
	}
	for i := range o.contrib {
		o.contrib[i] = payload{}
	}
	o.result = 0
	st := &t.traffic[o.kind]
	st.MeasSeconds += time.Since(start).Seconds()
	st.MeasIntraBytes += wIntra
	st.MeasInterBytes += wInter
	return res
}

// runLeaf completes one collective on a non-hub rank: block for the hub's
// result frame and decode it straight into the caller's buffers.
//
//zinf:hotpath
func (t *sockTransport) runLeaf(so sockOp) float64 {
	return t.hubConn.readResultInto(so.seq, so.kind, resultCarriesDst(so.kind, t.rank == so.root), so.pl)
}
