package comm

import "testing"

// FuzzParseTopology throws arbitrary specs at the parser: it must never
// panic, and any spec it accepts must survive a String() → reparse round
// trip with an identical rendering (so configs logged by one run can be
// replayed by the next).
func FuzzParseTopology(f *testing.F) {
	f.Add("")
	f.Add("4x2")
	f.Add("2x4:intra=100:inter=10:linter=5")
	f.Add("8x16:intra=300:inter=25:lintra=1.5:linter=5:flat")
	f.Add("2x2:intra=0")
	f.Add("x:::=")
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopology(spec)
		if err != nil {
			if topo != nil {
				t.Fatalf("ParseTopology(%q) returned both a topology and error %v", spec, err)
			}
			return
		}
		if topo == nil {
			if spec != "" {
				t.Fatalf("ParseTopology(%q) = nil, nil for a non-empty spec", spec)
			}
			return
		}
		rendered := topo.String()
		again, err := ParseTopology(rendered)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", rendered, spec, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("String/reparse not stable: %q -> %q (original spec %q)", rendered, got, spec)
		}
	})
}
