package comm

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

func randHalves(seed uint64, n int) []tensor.Half {
	f := make([]float32, n)
	tensor.NewRNG(seed).FillNormal(f, 1)
	h := make([]tensor.Half, n)
	tensor.EncodeHalf(h, f)
	return h
}

// Async allgather must produce bit-identical bytes to the synchronous path.
func TestAllGatherHalfAsyncMatchesSync(t *testing.T) {
	const ranks, n = 4, 33
	syncOut := make([][]tensor.Half, ranks)
	asyncOut := make([][]tensor.Half, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(100+c.Rank()), n)
		dst := make([]tensor.Half, ranks*n)
		c.AllGatherHalf(dst, src)
		syncOut[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(100+c.Rank()), n)
		dst := make([]tensor.Half, ranks*n)
		tk := c.AllGatherHalfAsync(dst, src)
		tk.Wait()
		asyncOut[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range syncOut[r] {
			if syncOut[r][i] != asyncOut[r][i] {
				t.Fatalf("rank %d elem %d: sync %v != async %v", r, i, syncOut[r][i], asyncOut[r][i])
			}
		}
	}
}

// Async reduce-scatter must keep the rank-order fp32 accumulation of the
// synchronous path bit for bit.
func TestReduceScatterHalfAsyncMatchesSync(t *testing.T) {
	const ranks, n = 4, 20 // n divisible by ranks
	syncOut := make([][]tensor.Half, ranks)
	asyncOut := make([][]tensor.Half, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(7+c.Rank()), n)
		dst := make([]tensor.Half, n/ranks)
		c.ReduceScatterHalf(dst, src)
		syncOut[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(7+c.Rank()), n)
		dst := make([]tensor.Half, n/ranks)
		rsTk := c.ReduceScatterHalfAsync(dst, src)
		rsTk.Wait()
		asyncOut[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range syncOut[r] {
			if syncOut[r][i] != asyncOut[r][i] {
				t.Fatalf("rank %d elem %d: sync %v != async %v", r, i, syncOut[r][i], asyncOut[r][i])
			}
		}
	}
}

// Multiple async collectives may be in flight at once, interleaved with
// synchronous collectives issued after them, and waited out of order — the
// exact shape the overlap engines rely on (issue gathers k ahead, drain
// reduce-scatters at a later barrier).
func TestAsyncPipelineInterleavedWithSync(t *testing.T) {
	const ranks, n, depth = 4, 16, 3
	var mu sync.Mutex
	results := map[int][][]tensor.Half{}
	Run(ranks, func(c *Comm) {
		srcs := make([][]tensor.Half, depth)
		dsts := make([][]tensor.Half, depth)
		tickets := make([]Ticket, depth)
		for k := 0; k < depth; k++ {
			srcs[k] = randHalves(uint64(1000+10*k+c.Rank()), n)
			dsts[k] = make([]tensor.Half, ranks*n)
			tickets[k] = c.AllGatherHalfAsync(dsts[k], srcs[k])
		}
		// A synchronous collective issued while three asyncs are in flight.
		sum := c.AllReduceScalar(float64(c.Rank()))
		if sum != float64(ranks*(ranks-1)/2) {
			t.Errorf("allreduce during async flight = %g", sum)
		}
		// Wait in reverse issue order.
		for k := depth - 1; k >= 0; k-- {
			tickets[k].Wait()
		}
		mu.Lock()
		results[c.Rank()] = dsts
		mu.Unlock()
	})
	// Every rank sees the same gathered buffers, matching a sync reference.
	for k := 0; k < depth; k++ {
		want := make([]tensor.Half, 0, ranks*n)
		for r := 0; r < ranks; r++ {
			want = append(want, randHalves(uint64(1000+10*k+r), n)...)
		}
		for r := 0; r < ranks; r++ {
			got := results[r][k]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("slot %d rank %d elem %d: %v != %v", k, r, i, got[i], want[i])
				}
			}
		}
	}
}

// Size-1 worlds complete async collectives inline.
func TestAsyncSingleRank(t *testing.T) {
	Run(1, func(c *Comm) {
		src := randHalves(3, 8)
		dst := make([]tensor.Half, 8)
		tk := c.AllGatherHalfAsync(dst, src)
		tk.Wait()
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("elem %d: %v != %v", i, dst[i], src[i])
			}
		}
		rs := make([]tensor.Half, 8)
		rsTk := c.ReduceScatterHalfAsync(rs, src)
		rsTk.Wait()
	})
}

// A double Wait on the same ticket must not hang or panic (drain paths may
// conservatively re-wait).
func TestTicketWaitIdempotent(t *testing.T) {
	Run(2, func(c *Comm) {
		src := randHalves(uint64(c.Rank()), 4)
		dst := make([]tensor.Half, 8)
		tk := c.AllGatherHalfAsync(dst, src)
		tk.Wait()
		tk.Wait()
	})
}
