package comm

import (
	"fmt"

	"repro/internal/tensor"
)

// Ticket tracks one asynchronous collective. Wait blocks until every rank
// has entered the matching call and the data movement has completed; it
// must eventually be called, from the issuing rank's goroutine (extra Wait
// calls are no-ops).
//
// Asynchronous collectives occupy a slot in the communicator's sequence at
// issue time — the issuing rank's contribution is registered immediately,
// with no goroutine spawned — so the SPMD contract extends naturally: every
// rank must issue the same collectives in the same order, but may overlap
// any amount of compute (or further collectives) between issuing and
// waiting. Buffers handed to an async collective must stay untouched until
// Wait returns.
type Ticket struct {
	w   *World
	seq uint64
	op  *op
}

// Wait blocks until the collective has completed on all ranks.
func (t *Ticket) Wait() {
	if t.op == nil {
		return // degenerate or already-waited ticket
	}
	<-t.op.done
	t.w.leave(t.seq, t.op)
	t.op = nil
}

// async reserves the next sequence slot for kind and registers this rank's
// arrival, returning immediately; the last rank to arrive (synchronously or
// asynchronously) performs the data movement. The semantics — including
// rank-order accumulation — are identical to the synchronous rendezvous, so
// asynchronous and synchronous paths are bit-identical.
func (c *Comm) async(kind string, contrib any, compute func(contribs []any) any) *Ticket {
	w := c.world
	if w.size == 1 {
		compute([]any{contrib})
		return &Ticket{}
	}
	seq := c.seq
	c.seq++
	return &Ticket{w: w, seq: seq, op: w.arrive(c.rank, seq, kind, contrib, compute)}
}

// AllGatherHalfAsync starts an asynchronous AllGatherHalf: every rank's src
// (all equal length) is concatenated into dst in rank order. len(dst) must
// be Size()*len(src). dst and src must not be touched until the ticket
// completes; the gathered bytes are bit-identical to AllGatherHalf.
func (c *Comm) AllGatherHalfAsync(dst, src []tensor.Half) *Ticket {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgatherhalfasync dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	type arg struct{ dst, src []tensor.Half }
	n := len(src)
	return c.async("allgatherhalf", arg{dst, src}, func(contribs []any) any {
		for _, ca := range contribs {
			a := ca.(arg)
			for r, cb := range contribs {
				copy(a.dst[r*n:(r+1)*n], cb.(arg).src)
			}
		}
		return nil
	})
}

// ReduceScatterHalfAsync starts an asynchronous ReduceScatterHalf:
// contributions are decoded to float32, summed in rank order with float32
// accumulation, and each rank's shard is re-encoded to binary16 into its
// dst. len(src) must be Size()*len(dst). Buffers must not be touched until
// the ticket completes; results are bit-identical to ReduceScatterHalf.
func (c *Comm) ReduceScatterHalfAsync(dst, src []tensor.Half) *Ticket {
	if len(src) != c.Size()*len(dst) {
		panic(fmt.Sprintf("comm: reducescatterhalfasync src len %d != size %d * dst len %d", len(src), c.Size(), len(dst)))
	}
	type arg struct{ dst, src []tensor.Half }
	n := len(dst)
	return c.async("reducescatterhalf", arg{dst, src}, func(contribs []any) any {
		acc := make([]float32, n)
		tmp := make([]float32, n)
		for r := range contribs {
			base := r * n
			for i := range acc {
				acc[i] = 0
			}
			for _, cb := range contribs {
				tensor.DecodeHalf(tmp, cb.(arg).src[base:base+n])
				tensor.Axpy(1, tmp, acc)
			}
			tensor.EncodeHalf(contribs[r].(arg).dst, acc)
		}
		return nil
	})
}
