package comm

import (
	"fmt"

	"repro/internal/tensor"
)

// Ticket tracks one asynchronous collective. Wait blocks until every rank
// has entered the matching call and the data movement has completed; it
// must eventually be called, from the issuing rank's goroutine (extra Wait
// calls are no-ops).
//
// Asynchronous collectives occupy a slot in the communicator's sequence at
// issue time — the issuing rank's contribution is registered immediately,
// with no goroutine spawned — so the SPMD contract extends naturally: every
// rank must issue the same collectives in the same order, but may overlap
// any amount of compute (or further collectives) between issuing and
// waiting. Buffers handed to an async collective must stay untouched until
// Wait returns.
//
// Ticket is a small value type (engines embed it in pooled in-flight
// records); the zero Ticket is a completed ticket. It carries a branch per
// transport rather than an interface so issuing never boxes.
type Ticket struct {
	// In-memory transport: the in-flight op this rank still has to leave.
	mt *memTransport
	op *op
	// Socket transport: completion means advancing the ordered pending
	// queue through seq.
	st  *sockTransport
	seq uint64
}

// Wait blocks until the collective has completed on all ranks.
//
//zinf:hotpath
func (t *Ticket) Wait() {
	switch {
	case t.op != nil:
		mt := t.mt
		mt.mu.Lock()
		for !t.op.computed {
			t.op.done.Wait()
		}
		mt.leaveLocked(t.seq, t.op)
		mt.mu.Unlock()
		t.op, t.mt = nil, nil
	case t.st != nil:
		t.st.advance(t.seq)
		t.st = nil
	}
}

// AllGatherHalfAsync starts an asynchronous AllGatherHalf: every rank's src
// (all equal length) is concatenated into dst in rank order. len(dst) must
// be Size()*len(src). dst and src must not be touched until the ticket
// completes; the gathered bytes are bit-identical to AllGatherHalf.
//
//zinf:hotpath
func (c *Comm) AllGatherHalfAsync(dst, src []tensor.Half) Ticket {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgatherhalfasync dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	return c.async(opAllGatherHalf, 0, payload{hdst: dst, hsrc: src})
}

// BroadcastHalfAsync starts an asynchronous BroadcastHalf: root's buf is
// copied into every rank's buf (all equal length). Buffers must not be
// touched until the ticket completes; the delivered bytes are bit-identical
// to BroadcastHalf. This is the owner-rank-broadcast partitioning
// strategy's parameter-prefetch primitive.
//
//zinf:hotpath
func (c *Comm) BroadcastHalfAsync(buf []tensor.Half, root int) Ticket {
	return c.async(opBroadcastHalf, root, payload{hdst: buf})
}

// AllGatherHalfDecodeAsync starts an asynchronous AllGatherHalfDecode:
// every rank's binary16 src shard is decoded once and the decoded shards
// are concatenated into dst in rank order as float32. len(dst) must be
// Size()*len(src). Buffers must not be touched until the ticket completes;
// results are bit-identical to AllGatherHalf followed by DecodeHalf. This
// is the engines' parameter-prefetch primitive under 1/dp slicing.
//
//zinf:hotpath
func (c *Comm) AllGatherHalfDecodeAsync(dst []float32, src []tensor.Half) Ticket {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgatherhalfdecodeasync dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	return c.async(opAllGatherHalfDecode, 0, payload{fdst: dst, hsrc: src})
}

// ReduceScatterHalfAsync starts an asynchronous ReduceScatterHalf:
// contributions are decoded to float32, summed in rank order with float32
// accumulation, and each rank's shard is re-encoded to binary16 into its
// dst. len(src) must be Size()*len(dst). Buffers must not be touched until
// the ticket completes; results are bit-identical to ReduceScatterHalf.
//
//zinf:hotpath
func (c *Comm) ReduceScatterHalfAsync(dst, src []tensor.Half) Ticket {
	if len(src) != c.Size()*len(dst) {
		panic(fmt.Sprintf("comm: reducescatterhalfasync src len %d != size %d * dst len %d", len(src), c.Size(), len(dst)))
	}
	return c.async(opReduceScatterHalf, 0, payload{hdst: dst, hsrc: src})
}

// ReduceScatterHalfDecodeAsync starts an asynchronous
// ReduceScatterHalfDecode: the fused reduce+fp16-round+decode delivers each
// rank's shard directly as float32 into dst. len(src) must be
// Size()*len(dst). Buffers must not be touched until the ticket completes;
// results are bit-identical to ReduceScatterHalf followed by DecodeHalf.
//
//zinf:hotpath
func (c *Comm) ReduceScatterHalfDecodeAsync(dst []float32, src []tensor.Half) Ticket {
	if len(src) != c.Size()*len(dst) {
		panic(fmt.Sprintf("comm: reducescatterhalfdecodeasync src len %d != size %d * dst len %d", len(src), c.Size(), len(dst)))
	}
	return c.async(opReduceScatterHalfDecode, 0, payload{fdst: dst, hsrc: src})
}

// ReduceHalfDecodeAsync starts an asynchronous ReduceHalfDecode: every
// rank's src is decoded, summed in rank order with float32 accumulation,
// rounded through binary16 and delivered as float32 into root's dst (nil on
// non-root ranks). Buffers must not be touched until the ticket completes;
// results are bit-identical to ReduceHalfDecode.
//
//zinf:hotpath
func (c *Comm) ReduceHalfDecodeAsync(dst []float32, src []tensor.Half, root int) Ticket {
	if c.rank == root && len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reducehalfdecodeasync root dst len %d != src len %d", len(dst), len(src)))
	}
	return c.async(opReduceHalfDecode, root, payload{fdst: dst, hsrc: src})
}
