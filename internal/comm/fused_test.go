package comm

import (
	"testing"

	"repro/internal/tensor"
)

func randFloats(seed uint64, n int) []float32 {
	f := make([]float32, n)
	tensor.NewRNG(seed).FillNormal(f, 1)
	return f
}

// The fused encode+allgather must be bit-identical to encoding on each rank
// and allgathering the fp16 shards.
func TestAllGatherEncodeHalfMatchesTwoCall(t *testing.T) {
	const ranks, n = 4, 37
	fused := make([][]tensor.Half, ranks)
	twoCall := make([][]tensor.Half, ranks)
	Run(ranks, func(c *Comm) {
		src := randFloats(uint64(50+c.Rank()), n)
		dst := make([]tensor.Half, ranks*n)
		c.AllGatherEncodeHalf(dst, src)
		fused[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randFloats(uint64(50+c.Rank()), n)
		enc := make([]tensor.Half, n)
		tensor.EncodeHalf(enc, src)
		dst := make([]tensor.Half, ranks*n)
		c.AllGatherHalf(dst, enc)
		twoCall[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range fused[r] {
			if fused[r][i] != twoCall[r][i] {
				t.Fatalf("rank %d elem %d: fused %#04x != two-call %#04x", r, i, fused[r][i], twoCall[r][i])
			}
		}
	}
}

// The fused reduce-scatter+decode must be bit-identical to ReduceScatterHalf
// followed by DecodeHalf — including the fp16 rounding of the reduced shard.
func TestReduceScatterHalfDecodeMatchesTwoCall(t *testing.T) {
	const ranks, n = 4, 24
	fused := make([][]float32, ranks)
	twoCall := make([][]float32, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(9+c.Rank()), n)
		dst := make([]float32, n/ranks)
		c.ReduceScatterHalfDecode(dst, src)
		fused[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(9+c.Rank()), n)
		shard := make([]tensor.Half, n/ranks)
		c.ReduceScatterHalf(shard, src)
		dst := make([]float32, n/ranks)
		tensor.DecodeHalf(dst, shard)
		twoCall[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range fused[r] {
			if fused[r][i] != twoCall[r][i] {
				t.Fatalf("rank %d elem %d: fused %g != two-call %g", r, i, fused[r][i], twoCall[r][i])
			}
		}
	}
}

// The async fused reduce-scatter+decode must match its synchronous form.
func TestReduceScatterHalfDecodeAsyncMatchesSync(t *testing.T) {
	const ranks, n = 4, 16
	syncOut := make([][]float32, ranks)
	asyncOut := make([][]float32, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(77+c.Rank()), n)
		dst := make([]float32, n/ranks)
		c.ReduceScatterHalfDecode(dst, src)
		syncOut[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(77+c.Rank()), n)
		dst := make([]float32, n/ranks)
		tk := c.ReduceScatterHalfDecodeAsync(dst, src)
		tk.Wait()
		asyncOut[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range syncOut[r] {
			if syncOut[r][i] != asyncOut[r][i] {
				t.Fatalf("rank %d elem %d: sync %g != async %g", r, i, syncOut[r][i], asyncOut[r][i])
			}
		}
	}
}

// Single-rank worlds must run the fused paths inline.
func TestFusedSingleRank(t *testing.T) {
	Run(1, func(c *Comm) {
		src := randFloats(3, 8)
		dst := make([]tensor.Half, 8)
		c.AllGatherEncodeHalf(dst, src)
		want := make([]tensor.Half, 8)
		tensor.EncodeHalf(want, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("elem %d: %#04x != %#04x", i, dst[i], want[i])
			}
		}
		hs := randHalves(4, 8)
		out := make([]float32, 8)
		c.ReduceScatterHalfDecode(out, hs)
		for i := range hs {
			rt := tensor.Float32FromHalf(tensor.HalfFromFloat32(hs[i].Float32()))
			if out[i] != rt {
				t.Fatalf("elem %d: %g != round-trip %g", i, out[i], rt)
			}
		}
	})
}
