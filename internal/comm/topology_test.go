package comm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// runTopo is the SPMD entry point over a world with an installed topology
// (nil topo = flat, same as Run).
func runTopo(t *testing.T, size int, topo *Topology, fn func(c *Comm)) {
	t.Helper()
	w := NewWorld(size)
	if err := w.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

func testTopo(nodeSize int) *Topology {
	return &Topology{NodeSize: nodeSize, IntraGBps: 100, InterGBps: 10}
}

func TestParseTopology(t *testing.T) {
	if topo, err := ParseTopology(""); err != nil || topo != nil {
		t.Fatalf("empty spec: %v %v", topo, err)
	}
	topo, err := ParseTopology("2x4:intra=200:inter=25:lintra=1:linter=5:flat")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes != 2 || topo.NodeSize != 4 || topo.IntraGBps != 200 || topo.InterGBps != 25 ||
		topo.IntraLatencyUS != 1 || topo.InterLatencyUS != 5 || !topo.Flat {
		t.Fatalf("parsed %+v", topo)
	}
	if !strings.Contains(topo.String(), "2x4") {
		t.Fatalf("String() = %q", topo.String())
	}
	defaulted, err := ParseTopology("4x2")
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.IntraGBps != DefaultIntraGBps || defaulted.InterGBps != DefaultInterGBps {
		t.Fatalf("defaults not applied: %+v", defaulted)
	}
	for _, bad := range []string{"x", "2", "0x4", "2x0", "2x2:wat=3", "2x2:intra=abc", "2x2:intra", "2x2:inter=0", "2x2:intra=0"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSetTopologyValidatesWorld(t *testing.T) {
	w := NewWorld(4)
	if err := w.SetTopology(&Topology{NodeSize: 3}); err == nil {
		t.Error("node size 3 accepted for world of 4")
	}
	if err := w.SetTopology(&Topology{NodeSize: 2, Nodes: 3}); err == nil {
		t.Error("3x2 accepted for world of 4")
	}
	if err := w.SetTopology(&Topology{NodeSize: 2}); err != nil {
		t.Errorf("2-node topology rejected: %v", err)
	}
	if err := w.SetTopology(nil); err != nil {
		t.Errorf("clearing topology failed: %v", err)
	}
}

// collectiveOutputs runs every data collective once on a world with the
// given topology and returns each rank's observed outputs, keyed by
// collective name.
func collectiveOutputs(t *testing.T, ranks int, topo *Topology) map[string][][]float32 {
	t.Helper()
	const n = 24 // divisible by ranks
	out := make(map[string][][]float32)
	var mu sync.Mutex
	put := func(name string, rank int, v []float32) {
		mu.Lock()
		if out[name] == nil {
			out[name] = make([][]float32, ranks)
		}
		out[name][rank] = v
		mu.Unlock()
	}
	runTopo(t, ranks, topo, func(c *Comm) {
		r := c.Rank()
		// broadcast (f32)
		buf := randFloats(101, n)
		if r != 2%ranks {
			buf = make([]float32, n)
		}
		c.Broadcast(buf, 2%ranks)
		put("broadcast", r, buf)

		// broadcasthalf
		hb := randHalves(55, n)
		if r != 1%ranks {
			hb = make([]tensor.Half, n)
		}
		c.BroadcastHalf(hb, 1%ranks)
		put("broadcasthalf", r, halfToF32(hb))

		// allgather (f32)
		src := randFloats(uint64(200+r), n/ranks)
		dst := make([]float32, n)
		c.AllGather(dst, src)
		put("allgather", r, dst)

		// allgatherhalf
		hsrc := randHalves(uint64(300+r), n/ranks)
		hdst := make([]tensor.Half, n)
		c.AllGatherHalf(hdst, hsrc)
		put("allgatherhalf", r, halfToF32(hdst))

		// allgatherencodehalf (fused)
		fsrc := randFloats(uint64(400+r), n/ranks)
		fdst := make([]tensor.Half, n)
		c.AllGatherEncodeHalf(fdst, fsrc)
		put("allgatherencodehalf", r, halfToF32(fdst))

		// reducescatter (f32)
		rsrc := randFloats(uint64(500+r), n)
		rdst := make([]float32, n/ranks)
		c.ReduceScatter(rdst, rsrc)
		put("reducescatter", r, rdst)

		// reducescatterhalf
		rhsrc := randHalves(uint64(600+r), n)
		rhdst := make([]tensor.Half, n/ranks)
		c.ReduceScatterHalf(rhdst, rhsrc)
		put("reducescatterhalf", r, halfToF32(rhdst))

		// reducescatterhalfdecode (fused)
		fhsrc := randHalves(uint64(700+r), n)
		fout := make([]float32, n/ranks)
		c.ReduceScatterHalfDecode(fout, fhsrc)
		put("reducescatterhalfdecode", r, fout)

		// allreduce (f32)
		ar := randFloats(uint64(800+r), n)
		c.AllReduce(ar)
		put("allreduce", r, ar)

		// allreducehalf
		arh := randHalves(uint64(900+r), n)
		c.AllReduceHalf(arh)
		put("allreducehalf", r, halfToF32(arh))

		// gather to root
		gsrc := randFloats(uint64(1000+r), n/ranks)
		var gdst []float32
		if r == 0 {
			gdst = make([]float32, n)
		}
		c.Gather(gdst, gsrc, 0)
		put("gather", r, gdst)

		// reducehalfdecode to root
		rr := ranks - 1
		rhd := randHalves(uint64(1100+r), n)
		var rout []float32
		if r == rr {
			rout = make([]float32, n)
		}
		c.ReduceHalfDecode(rout, rhd, rr)
		put("reducehalfdecode", r, rout)

		// scalar collectives
		s := c.AllReduceScalar(float64(r) + 0.25)
		m := c.AllReduceMax(float64(r) * 1.5)
		put("scalars", r, []float32{float32(s), float32(m)})
	})
	return out
}

func halfToF32(h []tensor.Half) []float32 {
	f := make([]float32, len(h))
	tensor.DecodeHalf(f, h)
	return f
}

// The tentpole contract: every collective on a hierarchical multi-node
// topology — and on the flat-algorithms ablation of the same topology — is
// bit-identical to the flat single-node fabric.
func TestHierarchicalCollectivesBitIdenticalToFlat(t *testing.T) {
	const ranks = 4
	flat := collectiveOutputs(t, ranks, nil)
	for _, tc := range []struct {
		name string
		topo *Topology
	}{
		{"2x2", testTopo(2)},
		{"4x1", testTopo(1)},
		{"1x4", testTopo(4)},
		{"2x2-flat-algos", &Topology{NodeSize: 2, Flat: true}},
		{"2x2-latency", &Topology{NodeSize: 2, IntraLatencyUS: 1, InterLatencyUS: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := collectiveOutputs(t, ranks, tc.topo)
			for name, flatRanks := range flat {
				gotRanks := got[name]
				if gotRanks == nil {
					t.Fatalf("%s: missing outputs", name)
				}
				for r := range flatRanks {
					if len(flatRanks[r]) != len(gotRanks[r]) {
						t.Fatalf("%s rank %d: len %d vs %d", name, r, len(flatRanks[r]), len(gotRanks[r]))
					}
					for i := range flatRanks[r] {
						if flatRanks[r][i] != gotRanks[r][i] {
							t.Fatalf("%s rank %d elem %d: flat %g vs topo %g", name, r, i, flatRanks[r][i], gotRanks[r][i])
						}
					}
				}
			}
		})
	}
}

// Async variants on a hierarchical topology must match the flat synchronous
// results bit for bit (the compute runs at last arrival, so hierarchy and
// asynchrony compose with no further code).
func TestHierarchicalAsyncCollectivesBitIdentical(t *testing.T) {
	const ranks, n = 4, 16
	type asyncOut struct {
		ag, bc []tensor.Half
		rs     []tensor.Half
		rsd    []float32
		rhd    []float32
	}
	run := func(topo *Topology) []asyncOut {
		outs := make([]asyncOut, ranks)
		runTopo(t, ranks, topo, func(c *Comm) {
			r := c.Rank()
			agSrc := randHalves(uint64(10+r), n/ranks)
			agDst := make([]tensor.Half, n)
			t1 := c.AllGatherHalfAsync(agDst, agSrc)

			bc := randHalves(31, n)
			if r != 1 {
				bc = make([]tensor.Half, n)
			}
			t2 := c.BroadcastHalfAsync(bc, 1)

			rsSrc := randHalves(uint64(20+r), n)
			rsDst := make([]tensor.Half, n/ranks)
			t3 := c.ReduceScatterHalfAsync(rsDst, rsSrc)

			rsdSrc := randHalves(uint64(40+r), n)
			rsdDst := make([]float32, n/ranks)
			t4 := c.ReduceScatterHalfDecodeAsync(rsdDst, rsdSrc)

			rhdSrc := randHalves(uint64(60+r), n)
			var rhdDst []float32
			if r == 0 {
				rhdDst = make([]float32, n)
			}
			t5 := c.ReduceHalfDecodeAsync(rhdDst, rhdSrc, 0)

			t1.Wait()
			t2.Wait()
			t3.Wait()
			t4.Wait()
			t5.Wait()
			outs[r] = asyncOut{ag: agDst, bc: bc, rs: rsDst, rsd: rsdDst, rhd: rhdDst}
		})
		return outs
	}
	flat := run(nil)
	hier := run(testTopo(2))
	for r := 0; r < ranks; r++ {
		for i := range flat[r].ag {
			if flat[r].ag[i] != hier[r].ag[i] {
				t.Fatalf("rank %d allgather[%d] differs", r, i)
			}
		}
		for i := range flat[r].bc {
			if flat[r].bc[i] != hier[r].bc[i] {
				t.Fatalf("rank %d broadcast[%d] differs", r, i)
			}
		}
		for i := range flat[r].rs {
			if flat[r].rs[i] != hier[r].rs[i] {
				t.Fatalf("rank %d reducescatter[%d] differs", r, i)
			}
		}
		for i := range flat[r].rsd {
			if flat[r].rsd[i] != hier[r].rsd[i] {
				t.Fatalf("rank %d reducescatterdecode[%d] differs", r, i)
			}
		}
		for i := range flat[r].rhd {
			if flat[r].rhd[i] != hier[r].rhd[i] {
				t.Fatalf("rank %d reducehalfdecode[%d] differs", r, i)
			}
		}
	}
}

// The per-element sum delivered by ReduceHalfDecode (owner-rank strategy)
// must equal the concatenated shards of ReduceScatterHalfDecode (1/dp
// slicing) — the property that makes the two partitioning strategies train
// bit-identically.
func TestReduceHalfDecodeMatchesShardedSum(t *testing.T) {
	const ranks, n = 4, 32
	var rootSum []float32
	shards := make([][]float32, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(5+c.Rank()), n)
		var dst []float32
		if c.Rank() == 0 {
			dst = make([]float32, n)
		}
		c.ReduceHalfDecode(dst, src, 0)
		if c.Rank() == 0 {
			rootSum = dst
		}
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(5+c.Rank()), n)
		dst := make([]float32, n/ranks)
		c.ReduceScatterHalfDecode(dst, src)
		shards[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i, v := range shards[r] {
			if rootSum[r*(n/ranks)+i] != v {
				t.Fatalf("elem %d: reduce-to-root %g vs sharded %g", r*(n/ranks)+i, rootSum[r*(n/ranks)+i], v)
			}
		}
	}
}

// The Fig. 6c property at the fabric level: gathering a full vector via the
// all-links allgather (1/dp slicing) achieves higher aggregate bandwidth —
// and less simulated time — than an owner-rank broadcast of the same bytes
// on a multi-node topology.
func TestSlicedGatherBeatsOwnerBroadcastBandwidth(t *testing.T) {
	const ranks, full = 8, 1 << 12
	topo := &Topology{NodeSize: 2, IntraGBps: 100, InterGBps: 10}
	var ag, bc TrafficStats
	runTopo(t, ranks, topo, func(c *Comm) {
		src := randHalves(uint64(c.Rank()), full/ranks)
		dst := make([]tensor.Half, full)
		for i := 0; i < 8; i++ {
			c.AllGatherHalf(dst, src)
		}
		if c.Rank() == 0 {
			ag = c.Traffic()["allgatherhalf"]
		}
	})
	runTopo(t, ranks, topo, func(c *Comm) {
		buf := randHalves(3, full)
		for i := 0; i < 8; i++ {
			c.BroadcastHalf(buf, 0)
		}
		if c.Rank() == 0 {
			bc = c.Traffic()["broadcasthalf"]
		}
	})
	if ag.Ops != 8 || bc.Ops != 8 {
		t.Fatalf("ops: allgather %d, broadcast %d", ag.Ops, bc.Ops)
	}
	if ag.Seconds <= 0 || bc.Seconds <= 0 {
		t.Fatalf("no simulated time: %v %v", ag.Seconds, bc.Seconds)
	}
	if ag.AggGBps() <= bc.AggGBps() {
		t.Fatalf("sliced allgather %.2f GB/s not above owner broadcast %.2f GB/s",
			ag.AggGBps(), bc.AggGBps())
	}
	if ag.Seconds >= bc.Seconds {
		t.Fatalf("sliced allgather %.3gs not faster than owner broadcast %.3gs", ag.Seconds, bc.Seconds)
	}
}

// Hierarchical decomposition must beat the flat-algorithms ablation of the
// same topology when inter-node links are the scarce resource.
func TestHierarchicalBeatsFlatAlgorithmsOnSlowInterconnect(t *testing.T) {
	const ranks, full = 8, 1 << 12
	measure := func(flat bool) TrafficStats {
		topo := &Topology{NodeSize: 4, IntraGBps: 100, InterGBps: 5, Flat: flat}
		var st TrafficStats
		runTopo(t, ranks, topo, func(c *Comm) {
			buf := randHalves(3, full)
			if c.Rank() != 0 {
				buf = make([]tensor.Half, full)
			}
			for i := 0; i < 4; i++ {
				c.BroadcastHalf(buf, 0)
			}
			if c.Rank() == 0 {
				st = c.Traffic()["broadcasthalf"]
			}
		})
		return st
	}
	hier := measure(false)
	flat := measure(true)
	if hier.Seconds >= flat.Seconds {
		t.Fatalf("hierarchical broadcast %.3gs not faster than flat %.3gs", hier.Seconds, flat.Seconds)
	}
}

// Traffic accounting without a topology still counts ops and bytes (the
// byte flow is well defined on the flat fabric; only timing needs links).
func TestTrafficCountsWithoutTopology(t *testing.T) {
	const ranks, n = 4, 16
	var tr map[string]TrafficStats
	var tot TrafficStats
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(c.Rank()), n/ranks)
		dst := make([]tensor.Half, n)
		c.AllGatherHalf(dst, src)
		c.Barrier()
		if c.Rank() == 0 {
			tr = c.Traffic()
			tot = c.TrafficTotal()
		}
	})
	ag := tr["allgatherhalf"]
	if ag.Ops != 1 || ag.Bytes() == 0 {
		t.Fatalf("allgatherhalf traffic %+v", ag)
	}
	if ag.Seconds != 0 {
		t.Fatalf("flat fabric charged time: %v", ag.Seconds)
	}
	if tot.Ops < 2 {
		t.Fatalf("total ops %d", tot.Ops)
	}
}

// Equivalent fabrics must count the same bytes: a 4-rank allgather ring
// with no topology, on a single-node "1x4" topology, and on a "4x1"
// topology (every rank its own node: the hierarchical phases degenerate to
// the same inter ring) all move identical totals.
func TestDegenerateTopologiesCountSameBytes(t *testing.T) {
	const ranks, n = 4, 16
	measure := func(topo *Topology) int64 {
		var b int64
		runTopo(t, ranks, topo, func(c *Comm) {
			src := randHalves(uint64(c.Rank()), n/ranks)
			dst := make([]tensor.Half, n)
			c.AllGatherHalf(dst, src)
			if c.Rank() == 0 {
				b = c.Traffic()["allgatherhalf"].Bytes()
			}
		})
		return b
	}
	flat := measure(nil)
	oneNode := measure(testTopo(ranks))
	perRank := measure(testTopo(1))
	// p ring edges each carrying (p-1) chunks of n/ranks halves.
	want := int64(ranks * (ranks - 1) * (n / ranks) * 2)
	if flat != want || oneNode != want || perRank != want {
		t.Fatalf("byte totals diverge: flat %d, 1x%d %d, %dx1 %d, want %d",
			flat, ranks, oneNode, ranks, perRank, want)
	}
}

// Accounting must not allocate: the steady-state zero-allocation contract
// holds with a topology installed (solo worlds exercise the same account()
// path as the multi-rank rendezvous).
func TestTopologyAccountingAllocFree(t *testing.T) {
	w := NewWorld(1)
	if err := w.SetTopology(&Topology{NodeSize: 1}); err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	src := randHalves(1, 64)
	dst := make([]tensor.Half, 64)
	c.AllGatherHalf(dst, src) // warm the op pool
	allocs := testing.AllocsPerRun(100, func() {
		c.AllGatherHalf(dst, src)
	})
	if allocs != 0 {
		t.Fatalf("allgatherhalf with topology allocated %.1f/op", allocs)
	}
}
