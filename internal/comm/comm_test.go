package comm

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestBarrierAllRanksMeet(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	entered := 0
	Run(n, func(c *Comm) {
		mu.Lock()
		entered++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		defer mu.Unlock()
		if entered != n {
			t.Errorf("rank %d passed barrier with only %d entered", c.Rank(), entered)
		}
	})
}

func TestBroadcast(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		buf := make([]float32, 3)
		if c.Rank() == 2 {
			buf[0], buf[1], buf[2] = 7, 8, 9
		}
		c.Broadcast(buf, 2)
		if buf[0] != 7 || buf[1] != 8 || buf[2] != 9 {
			t.Errorf("rank %d got %v after broadcast", c.Rank(), buf)
		}
	})
}

func TestAllGather(t *testing.T) {
	const n = 5
	Run(n, func(c *Comm) {
		src := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		dst := make([]float32, n*2)
		c.AllGather(dst, src)
		for r := 0; r < n; r++ {
			if dst[2*r] != float32(r) || dst[2*r+1] != float32(r*10) {
				t.Errorf("rank %d allgather slot %d = %v", c.Rank(), r, dst[2*r:2*r+2])
			}
		}
	})
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		// Every rank contributes [1,2,...,n] per shard position scaled by rank+1.
		src := make([]float32, n*2)
		for i := range src {
			src[i] = float32((c.Rank() + 1) * (i + 1))
		}
		dst := make([]float32, 2)
		c.ReduceScatter(dst, src)
		// Sum over ranks of (r+1)*(i+1) = (i+1) * n(n+1)/2.
		scale := float32(n * (n + 1) / 2)
		base := c.Rank() * 2
		for i := 0; i < 2; i++ {
			want := float32(base+i+1) * scale
			if dst[i] != want {
				t.Errorf("rank %d shard[%d] = %g, want %g", c.Rank(), i, dst[i], want)
			}
		}
	})
}

func TestAllReduce(t *testing.T) {
	const n = 6
	Run(n, func(c *Comm) {
		buf := []float32{float32(c.Rank()), 1}
		c.AllReduce(buf)
		wantSum := float32(n * (n - 1) / 2)
		if buf[0] != wantSum || buf[1] != n {
			t.Errorf("rank %d allreduce got %v, want [%g %d]", c.Rank(), buf, wantSum, n)
		}
	})
}

// The defining identity: reduce-scatter followed by allgather equals
// allreduce. ZeRO-3 relies on this to be a drop-in for DDP's allreduce.
func TestReduceScatterPlusAllGatherEqualsAllReduce(t *testing.T) {
	const n = 4
	const per = 3
	total := n * per
	inputs := make([][]float32, n)
	rng := tensor.NewRNG(99)
	for r := range inputs {
		inputs[r] = make([]float32, total)
		rng.FillNormal(inputs[r], 1)
	}
	want := make([][]float32, n)
	got := make([][]float32, n)
	Run(n, func(c *Comm) {
		r := c.Rank()
		a := append([]float32(nil), inputs[r]...)
		c.AllReduce(a)
		want[r] = a

		b := append([]float32(nil), inputs[r]...)
		shard := make([]float32, per)
		c.ReduceScatter(shard, b)
		full := make([]float32, total)
		c.AllGather(full, shard)
		got[r] = full
	})
	for r := 0; r < n; r++ {
		for i := 0; i < total; i++ {
			if want[r][i] != got[r][i] {
				t.Fatalf("rank %d elem %d: allreduce %g, rs+ag %g", r, i, want[r][i], got[r][i])
			}
		}
	}
}

func TestAllGatherHalfBitExact(t *testing.T) {
	const n = 3
	Run(n, func(c *Comm) {
		src := []tensor.Half{tensor.Half(0x1234 + c.Rank()), tensor.Half(0x7bff)}
		dst := make([]tensor.Half, n*2)
		c.AllGatherHalf(dst, src)
		for r := 0; r < n; r++ {
			if dst[2*r] != tensor.Half(0x1234+r) || dst[2*r+1] != 0x7bff {
				t.Errorf("rank %d slot %d corrupted: %#04x %#04x", c.Rank(), r, dst[2*r], dst[2*r+1])
			}
		}
	})
}

func TestBroadcastHalf(t *testing.T) {
	Run(3, func(c *Comm) {
		buf := make([]tensor.Half, 2)
		if c.Rank() == 0 {
			buf[0], buf[1] = 0x3c00, 0x4000
		}
		c.BroadcastHalf(buf, 0)
		if buf[0] != 0x3c00 || buf[1] != 0x4000 {
			t.Errorf("rank %d got %v", c.Rank(), buf)
		}
	})
}

func TestReduceScatterHalfAccumulatesFP32(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		// Each rank contributes 1.0 in fp16 for every element; fp32
		// accumulation makes the sum exactly n.
		src := make([]tensor.Half, n*2)
		one := tensor.HalfFromFloat32(1)
		for i := range src {
			src[i] = one
		}
		dst := make([]tensor.Half, 2)
		c.ReduceScatterHalf(dst, src)
		for i, h := range dst {
			if h.Float32() != float32(n) {
				t.Errorf("rank %d shard[%d] = %g, want %d", c.Rank(), i, h.Float32(), n)
			}
		}
	})
}

func TestGatherToRoot(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		src := []float32{float32(c.Rank())}
		var dst []float32
		if c.Rank() == 1 {
			dst = make([]float32, n)
		}
		c.Gather(dst, src, 1)
		if c.Rank() == 1 {
			for r := 0; r < n; r++ {
				if dst[r] != float32(r) {
					t.Errorf("gather slot %d = %g", r, dst[r])
				}
			}
		}
	})
}

func TestScalarCollectives(t *testing.T) {
	const n = 5
	Run(n, func(c *Comm) {
		s := c.AllReduceScalar(float64(c.Rank() + 1))
		if s != 15 {
			t.Errorf("rank %d scalar sum = %g, want 15", c.Rank(), s)
		}
		m := c.AllReduceMax(float64(c.Rank()))
		if m != n-1 {
			t.Errorf("rank %d scalar max = %g, want %d", c.Rank(), m, n-1)
		}
	})
}

func TestWorldSizeOne(t *testing.T) {
	Run(1, func(c *Comm) {
		buf := []float32{3}
		c.AllReduce(buf)
		if buf[0] != 3 {
			t.Errorf("size-1 allreduce changed value: %g", buf[0])
		}
		dst := make([]float32, 1)
		c.ReduceScatter(dst, []float32{5})
		if dst[0] != 5 {
			t.Errorf("size-1 reducescatter = %g", dst[0])
		}
		full := make([]float32, 1)
		c.AllGather(full, []float32{7})
		if full[0] != 7 {
			t.Errorf("size-1 allgather = %g", full[0])
		}
		c.Barrier()
	})
}

func TestManySequentialCollectivesNoLeak(t *testing.T) {
	w := NewWorld(3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			buf := []float32{1}
			for i := 0; i < 200; i++ {
				c.AllReduce(buf)
				buf[0] = 1
			}
		}(r)
	}
	wg.Wait()
	mt := w.t.(*memTransport)
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if len(mt.ops) != 0 {
		t.Errorf("op registry leaked %d entries", len(mt.ops))
	}
}

func TestCommPanicsOnBadRank(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("Comm(5) did not panic")
		}
	}()
	w.Comm(5)
}

func TestShardRoundTrip(t *testing.T) {
	f := func(seed uint64, n8, size8 uint8) bool {
		n := int(n8%50) + 1
		size := int(size8%8) + 1
		src := make([]float32, n)
		tensor.NewRNG(seed).FillNormal(src, 1)
		dst := make([]float32, n)
		shard := make([]float32, ShardLen(n, size))
		for r := 0; r < size; r++ {
			Shard(shard, src, r, size)
			Unshard(dst, shard, r, size)
		}
		for i := range src {
			if dst[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaddedLen(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {10, 1, 10},
	}
	for _, c := range cases {
		if got := PaddedLen(c.n, c.size); got != c.want {
			t.Errorf("PaddedLen(%d,%d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

func BenchmarkAllReduce8Ranks(b *testing.B) {
	const n = 8
	const elems = 1 << 12
	w := NewWorld(n)
	var wg sync.WaitGroup
	b.SetBytes(int64(n * elems * 4))
	b.ResetTimer()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			buf := make([]float32, elems)
			for i := 0; i < b.N; i++ {
				c.AllReduce(buf)
			}
		}(r)
	}
	wg.Wait()
}
