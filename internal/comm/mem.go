package comm

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/tensor"
)

// memTransport is the reference Transport: every rank is a goroutine in this
// process and collectives rendezvous through shared memory. The last rank to
// arrive at an op performs the data movement in place ("last arriver
// computes"), reading every rank's buffers directly — no bytes are copied
// through an intermediary, which is what makes it the latency floor the
// socket transport is measured against.
type memTransport struct {
	collCtx

	mu      sync.Mutex
	ops     []opSlot // in-flight collectives, keyed by sequence number
	freeOps []*op    // recycled op descriptors
}

// opSlot is one in-flight collective's registry entry. In-flight ops are a
// handful at any moment (the async pipeline depth times the rank count), so
// a linear-scanned slice beats a map — and unlike a map keyed by the
// ever-growing sequence number it never allocates after warm-up (a map's
// fresh keys occasionally force a new overflow bucket even at constant
// size, which would break the zero-allocation steady-state contract).
type opSlot struct {
	seq uint64
	o   *op
}

func newMemTransport(size int) *memTransport {
	return &memTransport{collCtx: collCtx{
		size:     size,
		fscratch: mem.NewArena[float32](),
		hscratch: mem.NewArena[tensor.Half](),
		codec:    tensor.Reference(),
	}}
}

// Size returns the number of ranks in the world.
//
//zinf:hotpath
func (t *memTransport) Size() int { return t.size }

// Close is a no-op: the in-memory transport holds no external resources.
func (t *memTransport) Close() error { return nil }

// hosts reports true for every rank: all goroutine ranks share this process.
func (t *memTransport) hosts(rank int) bool { return rank >= 0 && rank < t.size }

func (t *memTransport) setCodec(be tensor.Backend) {
	be = tensor.DefaultBackend(be)
	t.mu.Lock()
	t.codec = be
	t.mu.Unlock()
}

func (t *memTransport) setTopology(topo *Topology) error {
	cp, err := normalizeTopology(topo, t.size)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.topo = cp
	t.mu.Unlock()
	return nil
}

func (t *memTransport) topology() *Topology {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.topo
}

func (t *memTransport) snapshotTraffic(f func(k opKind, st TrafficStats)) {
	t.mu.Lock()
	snap := t.traffic
	t.mu.Unlock()
	for k := range snap {
		f(opKind(k), snap[k])
	}
}

func (t *memTransport) resetTraffic() {
	t.mu.Lock()
	for k := range t.traffic {
		t.traffic[k] = TrafficStats{}
	}
	t.mu.Unlock()
}

// getOpLocked pops a pooled op descriptor (or builds one). Caller holds mu.
//
//zinf:hotpath
func (t *memTransport) getOpLocked(kind opKind, root int) *op {
	var o *op
	if n := len(t.freeOps); n > 0 {
		o = t.freeOps[n-1]
		t.freeOps[n-1] = nil
		t.freeOps = t.freeOps[:n-1]
	} else {
		//zinf:allow hotpathalloc op-pool miss grows the free list once per concurrency high-water mark; putOpLocked retains it
		o = &op{contrib: make([]payload, t.size)}
		o.done = sync.NewCond(&t.mu)
	}
	o.kind, o.root = kind, root
	return o
}

// putOpLocked clears and recycles an op descriptor. Caller holds mu.
//
//zinf:hotpath
func (t *memTransport) putOpLocked(o *op) {
	for i := range o.contrib {
		o.contrib[i] = payload{}
	}
	o.arrived, o.left, o.computed, o.result = 0, 0, false, 0
	t.freeOps = append(t.freeOps, o)
}

// rendezvous matches rank's seq-th collective with the other ranks':
// arrive, wait for the last arriver's compute, leave. The ticket-based
// asynchronous collectives split the same arrive/leave pair across issue and
// Wait. The returned value is the op's scalar result (0 for data
// collectives).
//
//zinf:hotpath
func (t *memTransport) rendezvous(rank int, seq uint64, kind opKind, root int, pl payload) float64 {
	if t.size == 1 {
		return t.computeSolo(kind, root, pl)
	}
	t.mu.Lock()
	o := t.arriveLocked(rank, seq, kind, root, pl)
	for !o.computed {
		o.done.Wait()
	}
	res := o.result
	t.leaveLocked(seq, o)
	t.mu.Unlock()
	return res
}

// issue reserves rank's seq-th collective and registers its arrival,
// returning immediately; the last rank to arrive (synchronously or
// asynchronously) performs the data movement.
//
//zinf:hotpath
func (t *memTransport) issue(rank int, seq uint64, kind opKind, root int, pl payload) Ticket {
	if t.size == 1 {
		t.computeSolo(kind, root, pl)
		return Ticket{}
	}
	t.mu.Lock()
	o := t.arriveLocked(rank, seq, kind, root, pl)
	t.mu.Unlock()
	return Ticket{mt: t, seq: seq, op: o}
}

// computeSolo runs a size-1 world's collective inline through a transient
// pooled op, so single-rank semantics (and allocation behaviour) match the
// multi-rank path. The lock is held across compute, as on the multi-rank
// path — the compute functions read the codec, whose setCodec writes are
// only synchronized by mu.
//
//zinf:hotpath
func (t *memTransport) computeSolo(kind opKind, root int, pl payload) float64 {
	t.mu.Lock()
	// Deferred unlock: a recovered length-mismatch panic from a compute
	// function must not wedge the world (the op leaks from the pool, which
	// is fine). Open-coded defers cost no heap allocation.
	defer t.mu.Unlock()
	o := t.getOpLocked(kind, root)
	o.contrib[0] = pl
	t.computeMeasured(o)
	res := o.result
	t.putOpLocked(o)
	return res
}

// arriveLocked registers rank's contribution to the seq-th collective; the
// last arriver performs the data movement and wakes everyone. Caller holds
// mu.
//
//zinf:hotpath
func (t *memTransport) arriveLocked(rank int, seq uint64, kind opKind, root int, pl payload) *op {
	var o *op
	for i := range t.ops {
		if t.ops[i].seq == seq {
			o = t.ops[i].o
			break
		}
	}
	if o == nil {
		o = t.getOpLocked(kind, root)
		t.ops = append(t.ops, opSlot{seq: seq, o: o})
	}
	if o.kind != kind || o.root != root {
		// Release the world lock before panicking: a recovering caller (the
		// infinity engine's OOM guard, tests asserting the mismatch) must
		// not leave every other rank wedged on t.mu.
		t.mu.Unlock()
		panic(fmt.Sprintf("comm: collective mismatch at seq %d: rank %d called %s(root %d), others called %s(root %d)",
			seq, rank, kind, root, o.kind, o.root))
	}
	o.contrib[rank] = pl
	o.arrived++
	if o.arrived == t.size {
		t.computeMeasured(o)
		o.computed = true
		o.done.Broadcast()
	}
	return o
}

// leaveLocked records one rank's departure; the last rank out recycles the
// op. Caller holds mu.
//
//zinf:hotpath
func (t *memTransport) leaveLocked(seq uint64, o *op) {
	o.left++
	if o.left == t.size {
		for i := range t.ops {
			if t.ops[i].seq == seq {
				last := len(t.ops) - 1
				t.ops[i] = t.ops[last]
				t.ops[last] = opSlot{}
				t.ops = t.ops[:last]
				break
			}
		}
		t.putOpLocked(o)
	}
}
