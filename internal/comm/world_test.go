package comm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestParseTopologyErrorPaths is the table-driven catalogue of rejected
// specs — the same checks zinf-launch runs (via ValidateTopology) to fail
// fast before spawning worker processes.
func TestParseTopologyErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string // substring of the error
	}{
		{"x", "bad node counts"},
		{"2", "want <nodes>x<ranksPerNode>"},
		{"2x2x2", "want <nodes>x<ranksPerNode>"},
		{"ax2", "bad node counts"},
		{"2xb", "bad node counts"},
		{"0x4", "bad node counts"},
		{"2x0", "bad node counts"},
		{"-1x2", "bad node counts"},
		{"2x2:wat=3", "unknown option"},
		{"2x2:intra=abc", "bad value"},
		{"2x2:intra=-1", "bad value"},
		{"2x2:intra", "bad option"},
		{"2x2:intra=0", "bandwidth must be positive"},
		{"2x2:inter=0", "bandwidth must be positive"},
		{"2x2:=", "bad value"},
	} {
		_, err := ParseTopology(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
	// Latency zero is explicitly allowed (latency is opt-in).
	if _, err := ParseTopology("2x2:lintra=0:linter=0"); err != nil {
		t.Errorf("zero latencies rejected: %v", err)
	}
}

// TestValidateTopologyErrorPaths covers the world-size checks a parsed
// topology still has to pass at installation.
func TestValidateTopologyErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo *Topology
		size int
		want string // "" = valid
	}{
		{"nil-is-flat", nil, 4, ""},
		{"exact-cover", &Topology{Nodes: 2, NodeSize: 2}, 4, ""},
		{"derived-nodes", &Topology{NodeSize: 2}, 6, ""},
		{"zero-node-size", &Topology{NodeSize: 0}, 4, "node size 0 < 1"},
		{"negative-node-size", &Topology{NodeSize: -2}, 4, "node size -2 < 1"},
		{"indivisible", &Topology{NodeSize: 3}, 4, "not a multiple"},
		{"rank-count-mismatch", &Topology{Nodes: 3, NodeSize: 2}, 4, "does not cover"},
	} {
		err := ValidateTopology(tc.topo, tc.size)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorldOptionsConstruction covers comm.New: defaults, validation, and
// the installed configuration being visible to ranks.
func TestWorldOptionsConstruction(t *testing.T) {
	// Nil transport: in-memory world of Size ranks.
	w, err := New(WorldOptions{Size: 3, Topology: &Topology{NodeSize: 3}, CodecBackend: tensor.Reference()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 3 {
		t.Fatalf("Size() = %d", w.Size())
	}
	if topo := w.Comm(0).Topology(); topo == nil || topo.NodeSize != 3 || topo.Nodes != 1 {
		t.Fatalf("installed topology = %+v", topo)
	}

	if _, err := New(WorldOptions{}); err == nil {
		t.Error("zero Size accepted with nil transport")
	}
	if _, err := New(WorldOptions{Size: 2, Topology: &Topology{NodeSize: 3}}); err == nil {
		t.Error("indivisible topology accepted")
	}
	// A transport's world size wins over a contradicting Size.
	tr := newMemTransport(2)
	if _, err := New(WorldOptions{Size: 5, Transport: tr}); err == nil {
		t.Error("Size 5 accepted over a size-2 transport")
	}
	w2, err := New(WorldOptions{Transport: newMemTransport(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Size() != 2 {
		t.Fatalf("transport-derived Size() = %d", w2.Size())
	}
}

// TestSealedWorldShims pins the deprecation semantics: on a sealed
// (options-built) world SetCodecBackend is a no-op and SetTopology only
// verifies; on a legacy NewWorld world both still mutate.
func TestSealedWorldShims(t *testing.T) {
	sealed, err := New(WorldOptions{Size: 2, Topology: &Topology{NodeSize: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sealed.Close()
	// Verify-equal: configuring the same topology (even non-normalized)
	// succeeds; a different one errors; nil (flat) vs installed errors.
	if err := sealed.SetTopology(&Topology{NodeSize: 2}); err != nil {
		t.Errorf("matching topology rejected on sealed world: %v", err)
	}
	if err := sealed.SetTopology(&Topology{NodeSize: 1}); err == nil {
		t.Error("conflicting topology accepted on sealed world")
	}
	if err := sealed.SetTopology(nil); err == nil {
		t.Error("flat topology accepted on sealed world with topology installed")
	}
	flat, err := New(WorldOptions{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if err := flat.SetTopology(nil); err != nil {
		t.Errorf("flat-on-flat verify failed: %v", err)
	}
	if err := flat.SetTopology(&Topology{NodeSize: 2}); err == nil {
		t.Error("topology accepted on sealed flat world")
	}
	// SetCodecBackend on a sealed world is a silent no-op (the codec was
	// fixed at construction); collectives still work.
	sealed.SetCodecBackend(nil)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := sealed.Comm(rank)
			buf := []float32{float32(rank + 1)}
			c.AllReduce(buf)
			if buf[0] != 3 {
				t.Errorf("rank %d allreduce = %g", rank, buf[0])
			}
		}(r)
	}
	wg.Wait()

	// Legacy worlds keep mutate semantics.
	legacy := NewWorld(2)
	if err := legacy.SetTopology(&Topology{NodeSize: 2}); err != nil {
		t.Errorf("legacy SetTopology failed: %v", err)
	}
	if topo := legacy.Comm(0).Topology(); topo == nil || topo.NodeSize != 2 {
		t.Errorf("legacy topology not installed: %+v", topo)
	}
	if err := legacy.SetTopology(nil); err != nil {
		t.Errorf("legacy topology clear failed: %v", err)
	}
}

// TestWorldCommPanicsOnUnhostedRank: a socket world hosts exactly one rank;
// asking for another panics loudly instead of silently training as the
// wrong rank.
func TestWorldCommPanicsOnUnhostedRank(t *testing.T) {
	tr, err := NewSockTransport(SockConfig{Rank: 0, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(WorldOptions{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Error("Comm(1) on a size-1 sock world did not panic")
		}
	}()
	w.Comm(1)
}
