package comm

// Wire protocol of the socket transport: length-prefixed binary frames over
// TCP, little-endian throughout.
//
// Bootstrap frames (fixed size, exchanged once per connection):
//
//	hello   (leaf → hub): magic u32, version u8, pad[3], rank u32, size u32
//	welcome (hub → leaf): magic u32, version u8, pad[3], size u32
//
// Collective frames share one 40-byte header:
//
//	off  0  u32  payload length (bytes following the header)
//	off  4  u8   frame type (contrib | result)
//	off  5  u8   collective kind
//	off  6  u16  root rank
//	off  8  u32  len(fdst)   off 12  u32  len(fsrc)
//	off 16  u32  len(hdst)   off 20  u32  len(hsrc)
//	off 24  u64  sequence number
//	off 32  u64  float64 bits (scalar contribution v / scalar result)
//
// A contrib frame carries the rank's source data (fsrc/hsrc) and — for the
// collectives whose destination buffer is also an input (broadcast root,
// allreduce) — the destination contents; destination lengths always travel
// in the header so the hub can stage pooled buffers of the right size. A
// result frame carries the computed destination contents back (omitted for
// ranks whose destination the collective leaves untouched: the broadcast
// root, non-root ranks of gather/reduce-to-root). Payload sections appear
// in fdst, fsrc, hdst, hsrc order; floats as IEEE-754 bits, halfs as raw
// binary16 bits, so the bytes on the wire are exactly the bytes the shared
// compute kernels produced — no re-rounding anywhere.
//
// The encode/decode scratch buffers grow to the high-water frame size once
// and are reused, keeping the steady-state framing path allocation-free.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"repro/internal/tensor"
)

const (
	wireMagic   = 0x5A494E46 // "ZINF"
	wireVersion = 1

	frameContrib byte = 1
	frameResult  byte = 2

	frameHdrLen = 40
	helloLen    = 16
	welcomeLen  = 12
)

// Framing errors surfaced by the hub's reader goroutines (package-level so
// the hot read path never formats).
var (
	errBadFrameType = errors.New("comm: sock: unexpected frame type")
	errFrameLen     = errors.New("comm: sock: frame payload length does not match header counts")
)

// frameConn wraps one TCP connection with buffered reads and reusable
// encode/decode scratch. Reads and writes may run on different goroutines
// (the hub reads contributions on a reader goroutine while its rank
// goroutine writes results); each direction owns its scratch buffer.
type frameConn struct {
	c    net.Conn
	br   *bufio.Reader
	wbuf []byte // encode scratch, writer side only
	rbuf []byte // decode scratch, reader side only
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, br: bufio.NewReaderSize(c, 1<<16)}
}

// growBuf returns buf resized to n bytes, reallocating (to the next power
// of two) only when capacity is exceeded — a warmup-only allocation.
//
//zinf:hotpath
func growBuf(buf []byte, n int) []byte {
	if cap(buf) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		//zinf:allow hotpathalloc frame scratch grows to the high-water frame size once; reused thereafter
		buf = make([]byte, c)
	}
	return buf[:n]
}

// dstCarriesInput reports whether kind's destination buffer is also an
// input for the given rank, and therefore travels in its contrib frame:
// the broadcast root's buffer is the source, and allreduce buffers hold
// the addends in place.
//
//zinf:hotpath
func dstCarriesInput(kind opKind, isRoot bool) bool {
	switch kind {
	case opBroadcast, opBroadcastHalf:
		return isRoot
	case opAllReduce, opAllReduceHalf:
		return true
	}
	return false
}

// resultCarriesDst reports whether kind writes the given rank's destination
// buffer, and therefore whether the result frame carries it back. The
// broadcast root's buffer is the unchanged source; gather and
// reduce-to-root ignore non-root destinations (the in-memory transport
// leaves them untouched, so the socket transport must too).
//
//zinf:hotpath
func resultCarriesDst(kind opKind, isRoot bool) bool {
	switch kind {
	case opBroadcast, opBroadcastHalf:
		return !isRoot
	case opGather, opReduceHalfDecode:
		return isRoot
	}
	return true
}

// contribPayloadLen returns the payload byte count of a contrib frame.
//
//zinf:hotpath
func contribPayloadLen(kind opKind, isRoot bool, nfdst, nfsrc, nhdst, nhsrc int) int {
	n := nfsrc*4 + nhsrc*2
	if dstCarriesInput(kind, isRoot) {
		n += nfdst*4 + nhdst*2
	}
	return n
}

// Little-endian field readers, named for header-decoding readability.
//
//zinf:hotpath
func le16(b []byte) uint16 { return binary.LittleEndian.Uint16(b) }

//zinf:hotpath
func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

//zinf:hotpath
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

//zinf:hotpath
func f64frombits(bits uint64) float64 { return math.Float64frombits(bits) }

//zinf:hotpath
func putF32s(b []byte, xs []float32) int {
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(x))
	}
	return len(xs) * 4
}

//zinf:hotpath
func getF32s(dst []float32, b []byte) int {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return len(dst) * 4
}

//zinf:hotpath
func putHalfs(b []byte, xs []tensor.Half) int {
	for i, x := range xs {
		binary.LittleEndian.PutUint16(b[i*2:], uint16(x))
	}
	return len(xs) * 2
}

//zinf:hotpath
func getHalfs(dst []tensor.Half, b []byte) int {
	for i := range dst {
		dst[i] = tensor.Half(binary.LittleEndian.Uint16(b[i*2:]))
	}
	return len(dst) * 2
}

// putHdr encodes the shared header into b[:frameHdrLen].
//
//zinf:hotpath
func putHdr(b []byte, plen int, ftype byte, kind opKind, root int, nfdst, nfsrc, nhdst, nhsrc int, seq uint64, bits uint64) {
	binary.LittleEndian.PutUint32(b[0:], uint32(plen))
	b[4] = ftype
	b[5] = byte(kind)
	binary.LittleEndian.PutUint16(b[6:], uint16(root))
	binary.LittleEndian.PutUint32(b[8:], uint32(nfdst))
	binary.LittleEndian.PutUint32(b[12:], uint32(nfsrc))
	binary.LittleEndian.PutUint32(b[16:], uint32(nhdst))
	binary.LittleEndian.PutUint32(b[20:], uint32(nhsrc))
	binary.LittleEndian.PutUint64(b[24:], seq)
	binary.LittleEndian.PutUint64(b[32:], bits)
}

// writeContrib encodes this rank's contribution and writes it to the hub.
// Returns the wire bytes written. Write failures panic: a rank that cannot
// reach the hub cannot make collective progress, and the process exit is
// what tells the launcher to kill the world.
//
//zinf:hotpath
func (fc *frameConn) writeContrib(seq uint64, kind opKind, root int, isRoot bool, pl payload) int64 {
	plen := contribPayloadLen(kind, isRoot, len(pl.fdst), len(pl.fsrc), len(pl.hdst), len(pl.hsrc))
	fc.wbuf = growBuf(fc.wbuf, frameHdrLen+plen)
	b := fc.wbuf
	putHdr(b, plen, frameContrib, kind, root, len(pl.fdst), len(pl.fsrc), len(pl.hdst), len(pl.hsrc), seq, math.Float64bits(pl.v))
	off := frameHdrLen
	if dstCarriesInput(kind, isRoot) {
		off += putF32s(b[off:], pl.fdst)
	}
	off += putF32s(b[off:], pl.fsrc)
	if dstCarriesInput(kind, isRoot) {
		off += putHalfs(b[off:], pl.hdst)
	}
	off += putHalfs(b[off:], pl.hsrc)
	if _, err := fc.c.Write(b[:off]); err != nil {
		panic(fmt.Sprintf("comm: sock: contribution write failed at seq %d (%s): %v", seq, kind, err))
	}
	return int64(off)
}

// writeResult sends one rank's computed destination contents (when the
// collective wrote them) and the scalar result back from the hub.
//
//zinf:hotpath
func (fc *frameConn) writeResult(seq uint64, kind opKind, carryDst bool, pl payload, result float64) int64 {
	nfdst, nhdst := len(pl.fdst), len(pl.hdst)
	if !carryDst {
		nfdst, nhdst = 0, 0
	}
	plen := nfdst*4 + nhdst*2
	fc.wbuf = growBuf(fc.wbuf, frameHdrLen+plen)
	b := fc.wbuf
	putHdr(b, plen, frameResult, kind, 0, nfdst, 0, nhdst, 0, seq, math.Float64bits(result))
	off := frameHdrLen
	off += putF32s(b[off:], pl.fdst[:nfdst])
	off += putHalfs(b[off:], pl.hdst[:nhdst])
	if _, err := fc.c.Write(b[:off]); err != nil {
		panic(fmt.Sprintf("comm: sock: result write failed at seq %d (%s): %v", seq, kind, err))
	}
	return int64(off)
}

// readResultInto blocks for the hub's result frame of this rank's seq-th
// collective and decodes the destination contents directly into the local
// buffers. Returns the scalar result. Frame mismatches and connection
// failures panic — the socket-transport analogue of the in-memory
// collective-mismatch panic.
//
//zinf:hotpath
func (fc *frameConn) readResultInto(seq uint64, kind opKind, carryDst bool, pl payload) float64 {
	var hb [frameHdrLen]byte
	if _, err := io.ReadFull(fc.br, hb[:]); err != nil {
		panic(fmt.Sprintf("comm: sock: lost hub connection at seq %d (%s): %v", seq, kind, err))
	}
	plen := int(binary.LittleEndian.Uint32(hb[0:]))
	gotSeq := binary.LittleEndian.Uint64(hb[24:])
	if hb[4] != frameResult || opKind(hb[5]) != kind || gotSeq != seq {
		panic(fmt.Sprintf("comm: collective mismatch at seq %d: this rank called %s, hub answered frame type %d %s seq %d",
			seq, kind, hb[4], opKind(hb[5]), gotSeq))
	}
	nfdst := int(binary.LittleEndian.Uint32(hb[8:]))
	nhdst := int(binary.LittleEndian.Uint32(hb[16:]))
	wantF, wantH := len(pl.fdst), len(pl.hdst)
	if !carryDst {
		wantF, wantH = 0, 0
	}
	if nfdst != wantF || nhdst != wantH || plen != nfdst*4+nhdst*2 {
		panic(fmt.Sprintf("comm: sock: result shape mismatch at seq %d (%s): got %d/%d want %d/%d",
			seq, kind, nfdst, nhdst, wantF, wantH))
	}
	fc.rbuf = growBuf(fc.rbuf, plen)
	if _, err := io.ReadFull(fc.br, fc.rbuf); err != nil {
		panic(fmt.Sprintf("comm: sock: lost hub connection at seq %d (%s): %v", seq, kind, err))
	}
	off := getF32s(pl.fdst[:nfdst], fc.rbuf)
	getHalfs(pl.hdst[:nhdst], fc.rbuf[off:])
	return math.Float64frombits(binary.LittleEndian.Uint64(hb[32:]))
}

// writeHello / readHello / writeWelcome / readWelcome implement the
// bootstrap handshake (see the package comment above). Bootstrap runs once,
// off the hot path.

func writeHello(c net.Conn, rank, size int) error {
	var b [helloLen]byte
	binary.LittleEndian.PutUint32(b[0:], wireMagic)
	b[4] = wireVersion
	binary.LittleEndian.PutUint32(b[8:], uint32(rank))
	binary.LittleEndian.PutUint32(b[12:], uint32(size))
	_, err := c.Write(b[:])
	return err
}

func readHello(c net.Conn) (rank, size int, err error) {
	var b [helloLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, 0, fmt.Errorf("comm: sock: reading hello: %w", err)
	}
	if binary.LittleEndian.Uint32(b[0:]) != wireMagic {
		return 0, 0, fmt.Errorf("comm: sock: bad hello magic (not a zinf worker?)")
	}
	if b[4] != wireVersion {
		return 0, 0, fmt.Errorf("comm: sock: wire version %d, want %d", b[4], wireVersion)
	}
	return int(binary.LittleEndian.Uint32(b[8:])), int(binary.LittleEndian.Uint32(b[12:])), nil
}

func writeWelcome(c net.Conn, size int) error {
	var b [welcomeLen]byte
	binary.LittleEndian.PutUint32(b[0:], wireMagic)
	b[4] = wireVersion
	binary.LittleEndian.PutUint32(b[8:], uint32(size))
	_, err := c.Write(b[:])
	return err
}

func readWelcome(c net.Conn) (size int, err error) {
	var b [welcomeLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, fmt.Errorf("comm: sock: reading welcome: %w", err)
	}
	if binary.LittleEndian.Uint32(b[0:]) != wireMagic || b[4] != wireVersion {
		return 0, fmt.Errorf("comm: sock: bad welcome from hub")
	}
	return int(binary.LittleEndian.Uint32(b[8:])), nil
}
