package comm

// Hierarchical implementations of the data-moving collectives, active when
// a multi-node Topology is installed (w.hier()). Each decomposes into an
// intra-node phase and an inter-node phase among node leaders — broadcast
// lands on each remote node's leader before fanning out intra-node;
// allgather assembles the full vector through per-node chunks (the intra
// gather at each leader, whose chunks the leaders' inter ring exchanges)
// before distribution — and produces contents bit-identical to the flat
// path: node-then-member staging order is exactly global rank order,
// because nodes own consecutive rank ranges.
//
// The reduction collectives have no hierarchical data variant: their
// arithmetic always accumulates in global rank order (the deterministic-
// reduction configuration real collective stacks use for reproducibility),
// so a partial-sum tree would change results bit for bit. For them the
// hierarchical decomposition lives entirely in the cost model — the
// intra-node reduce and inter-node exchange phases charge their bytes to
// the links that would carry them (see topology.go).
//
// All variants are allocation-free: staging buffers come from the world
// arenas and no closures are formed (the functions are concrete per payload
// type, mirroring the flat compute functions).

// computeBroadcastHier routes root's float32 buffer through the remote node
// leaders, then fans out intra-node (the root serves as staging inside its
// own node).
//
//zinf:hotpath
func computeBroadcastHier(w *collCtx, o *op) {
	k := w.topo.NodeSize
	src := o.contrib[o.root].fdst
	rootNode := w.nodeOf(o.root)
	for n := 0; n < w.nodes(); n++ {
		lead := n * k
		stage := src
		if n != rootNode {
			d := o.contrib[lead].fdst
			if len(d) != len(src) {
				panic("comm: broadcast length mismatch")
			}
			copy(d, src) // inter phase: root's uplink to this node's leader
			stage = d
		}
		for r := n * k; r < (n+1)*k; r++ {
			if r == o.root || (n != rootNode && r == lead) {
				continue
			}
			d := o.contrib[r].fdst
			if len(d) != len(src) {
				panic("comm: broadcast length mismatch")
			}
			copy(d, stage) // intra phase: member copies from its node's staging
		}
	}
}

// computeBroadcastHalfHier is computeBroadcastHier over binary16 buffers.
//
//zinf:hotpath
func computeBroadcastHalfHier(w *collCtx, o *op) {
	k := w.topo.NodeSize
	src := o.contrib[o.root].hdst
	rootNode := w.nodeOf(o.root)
	for n := 0; n < w.nodes(); n++ {
		lead := n * k
		stage := src
		if n != rootNode {
			d := o.contrib[lead].hdst
			if len(d) != len(src) {
				panic("comm: broadcasthalf length mismatch")
			}
			copy(d, src)
			stage = d
		}
		for r := n * k; r < (n+1)*k; r++ {
			if r == o.root || (n != rootNode && r == lead) {
				continue
			}
			d := o.contrib[r].hdst
			if len(d) != len(src) {
				panic("comm: broadcasthalf length mismatch")
			}
			copy(d, stage)
		}
	}
}

// computeAllGatherHier assembles the full float32 vector once through
// per-node chunks in a leader staging buffer, then distributes it to every
// rank — the staged counterpart of the flat per-destination assembly.
//
//zinf:hotpath
func computeAllGatherHier(w *collCtx, o *op) {
	n := len(o.contrib[0].fsrc)
	full := w.fscratch.Get(n * w.size)
	k := w.topo.NodeSize
	for node := 0; node < w.nodes(); node++ {
		for r := node * k; r < (node+1)*k; r++ {
			copy(full[r*n:(r+1)*n], o.contrib[r].fsrc) // intra gather into the node chunk
		}
		// The chunk [node*k*n, (node+1)*k*n) is what the leaders' inter ring
		// exchanges; chunk order equals rank order.
	}
	for i := range o.contrib {
		copy(o.contrib[i].fdst, full) // intra distribution from each leader
	}
	w.fscratch.Put(full)
}

// computeAllGatherHalfHier is computeAllGatherHier over binary16 payloads.
//
//zinf:hotpath
func computeAllGatherHalfHier(w *collCtx, o *op) {
	n := len(o.contrib[0].hsrc)
	full := w.hscratch.Get(n * w.size)
	k := w.topo.NodeSize
	for node := 0; node < w.nodes(); node++ {
		for r := node * k; r < (node+1)*k; r++ {
			copy(full[r*n:(r+1)*n], o.contrib[r].hsrc)
		}
	}
	for i := range o.contrib {
		copy(o.contrib[i].hdst, full)
	}
	w.hscratch.Put(full)
}

// computeAllGatherHalfDecodeHier stages the full fp16 vector exactly like
// computeAllGatherHalfHier (the bytes the links carry are fp16 either way),
// decodes it to float32 once, and distributes the decoded vector to every
// rank. Bit-identical to the flat fused path: the decode LUT is exact, so
// decoding per shard and decoding the staged whole agree element for
// element.
//
//zinf:hotpath
func computeAllGatherHalfDecodeHier(w *collCtx, o *op) {
	n := len(o.contrib[0].hsrc)
	full := w.hscratch.Get(n * w.size)
	k := w.topo.NodeSize
	for node := 0; node < w.nodes(); node++ {
		for r := node * k; r < (node+1)*k; r++ {
			copy(full[r*n:(r+1)*n], o.contrib[r].hsrc)
		}
	}
	dec := w.fscratch.Get(n * w.size)
	w.codec.DecodeHalf(dec, full)
	for i := range o.contrib {
		copy(o.contrib[i].fdst, dec)
	}
	w.fscratch.Put(dec)
	w.hscratch.Put(full)
}

// computeAllGatherEncodeHalfHier fuses the per-rank binary16 encode into
// the hierarchical assembly: each float32 shard is rounded once into its
// slot of the staged full vector, which then distributes to every rank.
// Bit-identical to the flat fused path (each shard is encoded exactly once
// either way).
//
//zinf:hotpath
func computeAllGatherEncodeHalfHier(w *collCtx, o *op) {
	n := len(o.contrib[0].fsrc)
	full := w.hscratch.Get(n * w.size)
	k := w.topo.NodeSize
	for node := 0; node < w.nodes(); node++ {
		for r := node * k; r < (node+1)*k; r++ {
			w.codec.EncodeHalf(full[r*n:(r+1)*n], o.contrib[r].fsrc)
		}
	}
	for i := range o.contrib {
		copy(o.contrib[i].hdst, full)
	}
	w.hscratch.Put(full)
}
