package comm

// Topology-aware communication (paper Sec. 6.1): the flat goroutine fabric
// models every rank one hop from every other, which makes the paper's
// bandwidth-centric argument unreproducible — an owner-rank broadcast and a
// per-parameter 1/dp allgather move the same bytes over the same (single)
// link class. A Topology groups ranks into nodes with distinct intra-node
// and inter-node link bandwidth/latency; the hot collectives then decompose
// hierarchically — an intra-node phase followed by an inter-node phase among
// node leaders — and every collective's byte flow and simulated transfer
// cost are accounted per link class.
//
// Two properties are contractual:
//
//   - Hierarchical collectives are bit-identical to the flat paths. Pure
//     data movement (broadcast/allgather/gather) decomposes into staged
//     copies whose final contents equal the flat concatenation; reductions
//     always accumulate in global rank order regardless of decomposition
//     (the deterministic-reduction configuration of real collective
//     libraries), so the decomposition governs which links carry which
//     phase's bytes — and therefore the simulated cost — never the
//     arithmetic.
//
//   - Accounting is allocation-free: per-kind counters live in a fixed
//     array inside the collective execution context, and the cost model is
//     pure arithmetic, so the zero-allocation steady-state contract holds
//     with a topology installed.
//
// The cost model is a store-and-forward switch model: each rank has one
// link to its node switch (intra class) and each node one uplink to the
// global switch (inter class). A phase's simulated time is the busiest
// link's bytes over its class bandwidth plus the phase's sequential hop
// count times the class latency; a collective's time is the sum of its
// phases. Achieved aggregate bandwidth — the Fig. 6c metric — is total
// bytes crossing links divided by total simulated time.
//
// Alongside the model, TrafficStats carries measured counters: wall-clock
// seconds spent moving each kind's data and the bytes observed on the
// transport that carried them (kernel copy volume on the in-memory
// transport, real TCP frame bytes on the socket transport).

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Topology groups the world's ranks into equal nodes and parameterizes the
// two link classes. The zero value of each knob is replaced by the
// corresponding Default* constant when the topology is installed.
type Topology struct {
	// NodeSize is the number of consecutive ranks per node (node i owns
	// ranks [i*NodeSize, (i+1)*NodeSize)). The world size must be a
	// multiple of NodeSize.
	NodeSize int
	// Nodes, when positive, is the expected node count; installation
	// rejects a world whose size is not Nodes*NodeSize. Zero derives the
	// node count from the world size.
	Nodes int
	// IntraGBps / InterGBps are the link bandwidths in GB/s (1e9 bytes/s).
	IntraGBps, InterGBps float64
	// IntraLatencyUS / InterLatencyUS are per-hop latencies in
	// microseconds. The defaults are zero: the model is bandwidth-centric
	// like the paper's, and latency is opt-in.
	IntraLatencyUS, InterLatencyUS float64
	// Flat keeps the single-phase (flat) algorithms and cost shapes while
	// still classifying each transfer by the link it crosses — the
	// "topology-oblivious" ablation baseline.
	Flat bool
}

// Default link parameters (NVLink-class intra, IB-class inter).
const (
	DefaultIntraGBps = 100.0
	DefaultInterGBps = 12.5
)

// setDefaults fills zero bandwidth knobs.
func (t *Topology) setDefaults() {
	if t.IntraGBps <= 0 {
		t.IntraGBps = DefaultIntraGBps
	}
	if t.InterGBps <= 0 {
		t.InterGBps = DefaultInterGBps
	}
}

// String renders the topology in ParseTopology's spec format.
func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	n := t.Nodes
	s := fmt.Sprintf("%dx%d:intra=%g:inter=%g", n, t.NodeSize, t.IntraGBps, t.InterGBps)
	if t.IntraLatencyUS > 0 || t.InterLatencyUS > 0 {
		s += fmt.Sprintf(":lintra=%g:linter=%g", t.IntraLatencyUS, t.InterLatencyUS)
	}
	if t.Flat {
		s += ":flat"
	}
	return s
}

// ParseTopology parses a topology spec of the form
//
//	<nodes>x<ranksPerNode>[:intra=<GB/s>][:inter=<GB/s>][:lintra=<µs>][:linter=<µs>][:flat]
//
// e.g. "4x2" or "2x4:intra=100:inter=10:linter=5". The empty spec returns a
// nil topology (the flat single-node fabric).
func ParseTopology(spec string) (*Topology, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	nk := strings.Split(parts[0], "x")
	if len(nk) != 2 {
		return nil, fmt.Errorf("comm: topology %q: want <nodes>x<ranksPerNode>", spec)
	}
	n, err1 := strconv.Atoi(nk[0])
	k, err2 := strconv.Atoi(nk[1])
	if err1 != nil || err2 != nil || n < 1 || k < 1 {
		return nil, fmt.Errorf("comm: topology %q: bad node counts", spec)
	}
	t := &Topology{Nodes: n, NodeSize: k}
	for _, opt := range parts[1:] {
		if opt == "flat" {
			t.Flat = true
			continue
		}
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("comm: topology %q: bad option %q", spec, opt)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("comm: topology %q: bad value %q", spec, opt)
		}
		switch kv[0] {
		case "intra", "inter":
			// An explicit 0 would silently become the default in
			// setDefaults — reject it instead of simulating a link the
			// user zeroed out.
			if v == 0 {
				return nil, fmt.Errorf("comm: topology %q: %s bandwidth must be positive", spec, kv[0])
			}
			if kv[0] == "intra" {
				t.IntraGBps = v
			} else {
				t.InterGBps = v
			}
		case "lintra":
			t.IntraLatencyUS = v
		case "linter":
			t.InterLatencyUS = v
		default:
			return nil, fmt.Errorf("comm: topology %q: unknown option %q", spec, kv[0])
		}
	}
	t.setDefaults()
	return t, nil
}

// normalizeTopology validates t against a world of size ranks and returns
// the installed form: a defensive copy with defaulted bandwidths and the
// node count derived from the world size. A nil topology normalizes to nil
// (the flat fabric).
func normalizeTopology(t *Topology, size int) (*Topology, error) {
	if t == nil {
		return nil, nil
	}
	cp := *t
	cp.setDefaults()
	if cp.NodeSize < 1 {
		return nil, fmt.Errorf("comm: topology node size %d < 1", cp.NodeSize)
	}
	if size%cp.NodeSize != 0 {
		return nil, fmt.Errorf("comm: world size %d not a multiple of node size %d", size, cp.NodeSize)
	}
	if cp.Nodes > 0 && cp.Nodes*cp.NodeSize != size {
		return nil, fmt.Errorf("comm: topology %dx%d does not cover world size %d", cp.Nodes, cp.NodeSize, size)
	}
	cp.Nodes = size / cp.NodeSize
	return &cp, nil
}

// ValidateTopology reports whether t can be installed on a world of size
// ranks (nil is always valid: the flat fabric). Launchers call this to fail
// fast — before spawning worker processes — with the same errors the
// installation itself would produce.
func ValidateTopology(t *Topology, size int) error {
	_, err := normalizeTopology(t, size)
	return err
}

// SetTopology installs the topology on this communicator's world (see
// World.SetTopology).
//
// Deprecated: configure via WorldOptions.Topology. On sealed worlds this
// verifies the configured topology against the installed one.
func (c *Comm) SetTopology(t *Topology) error { return c.world.SetTopology(t) }

// Topology returns the installed topology (nil = flat).
func (c *Comm) Topology() *Topology { return c.world.t.topology() }

// nodes returns the node count of the installed topology (1 when flat).
// The embedding transport serializes access (the in-memory transport's
// mutex; the socket transport's single compute goroutine).
//
//zinf:hotpath
func (w *collCtx) nodes() int {
	if w.topo == nil {
		return 1
	}
	return w.size / w.topo.NodeSize
}

// hier reports whether collectives should decompose hierarchically.
//
//zinf:hotpath
func (w *collCtx) hier() bool {
	return w.topo != nil && !w.topo.Flat && w.nodes() > 1
}

// nodeOf returns the node index owning rank.
//
//zinf:hotpath
func (w *collCtx) nodeOf(rank int) int {
	if w.topo == nil {
		return 0
	}
	return rank / w.topo.NodeSize
}

// TrafficStats accumulates one collective kind's modeled byte flow and
// simulated transfer cost, plus the measured counterparts observed on the
// transport that actually carried the data.
type TrafficStats struct {
	// Ops is the number of collectives of this kind performed.
	Ops int64
	// IntraBytes / InterBytes are the modeled bytes that crossed intra-node
	// and inter-node links (each logical transfer counted once, classified
	// by the link it crossed; staged hierarchical phases count each phase's
	// crossing).
	IntraBytes, InterBytes int64
	// Seconds is the simulated transfer time under the topology's link
	// bandwidths and latencies (0 when no topology is installed).
	Seconds float64
	// MeasIntraBytes / MeasInterBytes are the bytes observed moving on the
	// transport, classified by the same intra/inter link taxonomy: on the
	// in-memory transport they equal the modeled bytes (the kernel's copies
	// are the wire); on the socket transport they are real TCP frame bytes
	// (headers included) classified by whether the peer shares the hub
	// rank's node.
	MeasIntraBytes, MeasInterBytes int64
	// MeasSeconds is the measured wall-clock time spent completing this
	// kind's collectives: kernel compute time on the in-memory transport;
	// on the socket transport the hub's full per-op wall time, which
	// includes waiting for straggler contributions — it is collective wall
	// time, not pure wire time.
	MeasSeconds float64
}

// Bytes returns the total modeled bytes moved over any link.
//
//zinf:hotpath
func (t TrafficStats) Bytes() int64 { return t.IntraBytes + t.InterBytes }

// MeasBytes returns the total measured bytes moved over any link.
//
//zinf:hotpath
func (t TrafficStats) MeasBytes() int64 { return t.MeasIntraBytes + t.MeasInterBytes }

// AggGBps returns the achieved aggregate bandwidth in GB/s — total modeled
// bytes over all links divided by simulated time (0 when nothing was
// timed). This is the Fig. 6c metric: partitioning strategies that keep
// every link busy achieve a multiple of a single link's bandwidth.
func (t TrafficStats) AggGBps() float64 {
	if t.Seconds <= 0 {
		return 0
	}
	return float64(t.Bytes()) / t.Seconds / 1e9
}

// MeasGBps returns the measured wall-clock bandwidth in GB/s — measured
// bytes over measured seconds (0 when nothing was measured). Unlike
// AggGBps, this reflects what the transport actually achieved, including
// scheduling and (on the socket transport) TCP and straggler effects.
func (t TrafficStats) MeasGBps() float64 {
	if t.MeasSeconds <= 0 {
		return 0
	}
	return float64(t.MeasBytes()) / t.MeasSeconds / 1e9
}

// add accumulates other into t.
//
//zinf:hotpath
func (t *TrafficStats) add(o TrafficStats) {
	t.Ops += o.Ops
	t.IntraBytes += o.IntraBytes
	t.InterBytes += o.InterBytes
	t.Seconds += o.Seconds
	t.MeasIntraBytes += o.MeasIntraBytes
	t.MeasInterBytes += o.MeasInterBytes
	t.MeasSeconds += o.MeasSeconds
}

// Traffic returns a snapshot of the world's per-collective traffic, keyed
// by collective name, skipping kinds that never ran. The snapshot
// allocates; it is an observability call, not a hot-path one. On the socket
// transport the counters live where the collectives execute, so only the
// hub rank (rank 0) observes non-zero traffic.
func (c *Comm) Traffic() map[string]TrafficStats {
	out := make(map[string]TrafficStats)
	c.world.t.snapshotTraffic(func(k opKind, st TrafficStats) {
		if st.Ops > 0 {
			out[k.String()] = st
		}
	})
	return out
}

// TrafficTotal returns the sum of all collectives' traffic.
func (c *Comm) TrafficTotal() TrafficStats {
	var tot TrafficStats
	c.world.t.snapshotTraffic(func(_ opKind, st TrafficStats) {
		tot.add(st)
	})
	return tot
}

// ResetTraffic zeroes the accumulated traffic counters.
func (c *Comm) ResetTraffic() { c.world.t.resetTraffic() }

// ---------------------------------------------------------------------------
// Cost model. All helpers run inside the transport's compute serialization
// and perform no allocation.

// phase charges one collective phase: perIntra/perInter are the busiest
// intra/inter link's bytes, totIntra/totInter the bytes crossing each class
// in the phase, and intraHops/interHops the phase's sequential hop counts.
//
//zinf:hotpath
func (w *collCtx) phase(st *TrafficStats, perIntra, perInter, totIntra, totInter int64, intraHops, interHops int) {
	st.IntraBytes += totIntra
	st.InterBytes += totInter
	if w.topo == nil {
		return
	}
	t := w.topo
	st.Seconds += float64(perIntra)/(t.IntraGBps*1e9) +
		float64(perInter)/(t.InterGBps*1e9) +
		float64(intraHops)*t.IntraLatencyUS*1e-6 +
		float64(interHops)*t.InterLatencyUS*1e-6
}

// accountAllGather models an allgather of S contribution bytes per rank:
// flat is a p-ring (every link carries (p-1)S, the N node uplinks included
// when the ring spans nodes); hierarchical is intra-node gather at the
// leaders, an inter-node ring among leaders over kS node chunks, then an
// intra-node ring distributing the (N-1)kS remote bytes.
//
//zinf:hotpath
func (w *collCtx) accountAllGather(st *TrafficStats, S int64) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 || S == 0 {
		return
	}
	k := p / N
	if !w.hier() {
		inter := int64(0)
		hopsInter := 0
		intraEdges := p // a single-node ring's p edges are all intra
		if N > 1 {
			intraEdges = p - N // N of the ring's edges cross node boundaries
			inter = N * (p - 1) * S
			hopsInter = int(p - 1)
		}
		w.phase(st, (p-1)*S, (p-1)*S*min64(N-1, 1), intraEdges*(p-1)*S, inter, int(p-1), hopsInter)
		return
	}
	w.phase(st, (k-1)*S, 0, N*(k-1)*S, 0, 1, 0)                  // intra gather at leaders
	w.phase(st, 0, (N-1)*k*S, 0, N*(N-1)*k*S, 0, int(N-1))       // inter ring among leaders
	w.phase(st, (N-1)*k*S, 0, N*(k-1)*(N-1)*k*S, 0, int(k-1), 0) // intra distribution
}

// accountReduceScatter models a reduce-scatter of M contribution bytes per
// rank (shard m = M/p): flat is a p-ring over m chunks; hierarchical is an
// intra-node reduce-scatter over M followed by an inter-node reduce-scatter
// of the node partials among same-slot ranks (each node uplink carries
// (N-1)M/N).
//
//zinf:hotpath
func (w *collCtx) accountReduceScatter(st *TrafficStats, M int64) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 || M == 0 {
		return
	}
	k := p / N
	m := M / p
	if !w.hier() {
		inter := int64(0)
		hopsInter := 0
		intraEdges := p // a single-node ring's p edges are all intra
		if N > 1 {
			intraEdges = p - N // N of the ring's edges cross node boundaries
			inter = N * (p - 1) * m
			hopsInter = int(p - 1)
		}
		w.phase(st, (p-1)*m, (p-1)*m*min64(N-1, 1), intraEdges*(p-1)*m, inter, int(p-1), hopsInter)
		return
	}
	w.phase(st, (k-1)*M/k, 0, N*(k-1)*M, 0, int(k-1), 0) // intra reduce-scatter
	w.phase(st, 0, (N-1)*M/N, 0, (N-1)*M, 0, int(N-1))   // inter reduce-scatter of node partials
}

// accountAllReduce models an allreduce of M bytes per rank as
// reduce-scatter + allgather volumes.
//
//zinf:hotpath
func (w *collCtx) accountAllReduce(st *TrafficStats, M int64) {
	if w.size == 1 || M == 0 {
		return
	}
	w.accountReduceScatter(st, M)
	w.accountAllGather(st, M/int64(w.size))
}

// accountBroadcast models a broadcast of M bytes from root: flat is a star
// from the root (its link carries (p-1)M, the remote share crossing its node
// uplink); hierarchical sends M once to each remote node leader over the
// root's uplink, then each node distributes intra.
//
//zinf:hotpath
func (w *collCtx) accountBroadcast(st *TrafficStats, M int64, root int) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 || M == 0 {
		return
	}
	k := p / N
	if !w.hier() {
		remote := (p - k) * M // transfers leaving the root's node
		hopsInter := 0
		if N > 1 {
			hopsInter = 1
		}
		w.phase(st, (p-1)*M, remote, (k-1)*M, remote, 1, hopsInter)
		return
	}
	w.phase(st, 0, (N-1)*M, 0, (N-1)*M, 0, 1)   // root's uplink to the other leaders
	w.phase(st, (k-1)*M, 0, N*(k-1)*M, 0, 1, 0) // intra distribution in every node
}

// accountGather models a gather of S bytes per rank to root (the root acts
// as its node's leader): flat star into the root; hierarchical gathers at
// each leader then funnels node chunks over the root's uplink.
//
//zinf:hotpath
func (w *collCtx) accountGather(st *TrafficStats, S int64, root int) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 || S == 0 {
		return
	}
	k := p / N
	if !w.hier() {
		remote := (p - k) * S
		hopsInter := 0
		if N > 1 {
			hopsInter = 1
		}
		w.phase(st, (p-1)*S, remote, (k-1)*S, remote, 1, hopsInter)
		return
	}
	w.phase(st, (k-1)*S, 0, N*(k-1)*S, 0, 1, 0)   // intra gather at leaders
	w.phase(st, 0, (N-1)*k*S, 0, (N-1)*k*S, 0, 1) // leaders funnel into the root's uplink
}

// accountReduceRoot models a reduce of M contribution bytes per rank to
// root: flat star of raw contributions into the root; hierarchical reduces
// raw contributions at each node leader intra, then ships one M-sized node
// partial per remote node over the root's uplink.
//
//zinf:hotpath
func (w *collCtx) accountReduceRoot(st *TrafficStats, M int64, root int) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 || M == 0 {
		return
	}
	k := p / N
	if !w.hier() {
		remote := (p - k) * M
		hopsInter := 0
		if N > 1 {
			hopsInter = 1
		}
		w.phase(st, (p-1)*M, remote, (k-1)*M, remote, 1, hopsInter)
		return
	}
	w.phase(st, (k-1)*M, 0, N*(k-1)*M, 0, 1, 0) // intra raw reduction at leaders
	w.phase(st, 0, (N-1)*M, 0, (N-1)*M, 0, 1)   // node partials into the root's uplink
}

// accountScalar models the 8-byte scalar collectives: a reduction tree up
// and down (bytes negligible, latency two tree traversals).
//
//zinf:hotpath
func (w *collCtx) accountScalar(st *TrafficStats) {
	p, N := int64(w.size), int64(w.nodes())
	if p == 1 {
		return
	}
	const sz = 8
	intra := 2 * (p - N) * sz
	inter := 2 * (N - 1) * sz
	hops := 2 * bits.Len(uint(p-1))
	if w.topo == nil {
		st.IntraBytes += intra
		st.InterBytes += inter
		return
	}
	interHops := 0
	if N > 1 {
		interHops = 2
	}
	w.phase(st, intra, inter, intra, inter, hops, interHops)
}

//zinf:hotpath
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// account records one completed collective's modeled traffic and simulated
// cost. Runs inside the transport's compute serialization, after the op's
// compute function.
//
//zinf:hotpath
func (w *collCtx) account(o *op) {
	st := &w.traffic[o.kind]
	st.Ops++
	if w.size == 1 {
		return
	}
	const f32, f16 = 4, 2
	switch o.kind {
	case opBarrier:
		w.accountScalar(st)
	case opBroadcast:
		w.accountBroadcast(st, int64(len(o.contrib[o.root].fdst))*f32, o.root)
	case opBroadcastHalf:
		w.accountBroadcast(st, int64(len(o.contrib[o.root].hdst))*f16, o.root)
	case opAllGather:
		w.accountAllGather(st, int64(len(o.contrib[0].fsrc))*f32)
	case opAllGatherHalf, opAllGatherHalfDecode:
		w.accountAllGather(st, int64(len(o.contrib[0].hsrc))*f16)
	case opAllGatherEncodeHalf:
		w.accountAllGather(st, int64(len(o.contrib[0].fsrc))*f16) // moves encoded fp16 shards
	case opReduceScatter:
		w.accountReduceScatter(st, int64(len(o.contrib[0].fsrc))*f32)
	case opReduceScatterHalf, opReduceScatterHalfDecode:
		w.accountReduceScatter(st, int64(len(o.contrib[0].hsrc))*f16)
	case opAllReduce:
		w.accountAllReduce(st, int64(len(o.contrib[0].fdst))*f32)
	case opAllReduceHalf:
		w.accountAllReduce(st, int64(len(o.contrib[0].hdst))*f16)
	case opGather:
		w.accountGather(st, int64(len(o.contrib[o.root].fsrc))*f32, o.root)
	case opReduceHalfDecode:
		w.accountReduceRoot(st, int64(len(o.contrib[0].hsrc))*f16, o.root)
	case opAllReduceScalar, opAllReduceMax:
		w.accountScalar(st)
	}
}
