// Package comm provides the collective-communication substrate for the
// ZeRO-Infinity reproduction. A World of n ranks runs SPMD code on n
// goroutines; collectives (broadcast, allgather, reduce-scatter, allreduce,
// gather, barrier) have the same data semantics as NCCL's.
//
// Collective matching follows the SPMD contract: every rank must invoke the
// same sequence of collectives on the same communicator. Each call is matched
// by a per-rank sequence number, so the implementation is insensitive to
// goroutine scheduling and safe under the race detector. Reductions
// accumulate in rank order with float32 arithmetic, making results
// deterministic and enabling bit-exact engine-equivalence tests.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// World is the shared state behind a group of communicating ranks.
type World struct {
	size int

	mu  sync.Mutex
	ops map[uint64]*op // keyed by sequence number
}

// op is one in-flight collective. The last rank to arrive performs the data
// movement; the last rank to leave removes the op from the world map.
type op struct {
	kind    string
	arrived int
	left    int
	done    chan struct{}
	contrib []any // per-rank argument, indexed by rank
	result  any   // computed by the last arriver, read by all
}

// NewWorld creates the shared state for size ranks. It panics if size < 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic("comm: world size must be >= 1")
	}
	return &World{size: size, ops: make(map[uint64]*op)}
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm returns the communicator handle for the given rank. Each rank
// goroutine must use its own handle; handles are not safe for concurrent use
// by multiple goroutines.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run spawns fn on one goroutine per rank, passing each its communicator,
// and waits for all of them to return. It is the standard SPMD entry point:
//
//	comm.Run(4, func(c *comm.Comm) { ... })
func Run(size int, fn func(c *Comm)) {
	w := NewWorld(size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
	seq   uint64
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// rendezvous matches this rank's seq-th collective with the other ranks'.
// contrib is this rank's argument; compute runs exactly once, on the last
// arriving rank, with all contributions in rank order. The returned value is
// compute's result, shared by all ranks (treat as read-only unless the
// collective defines otherwise).
func (c *Comm) rendezvous(kind string, contrib any, compute func(contribs []any) any) any {
	w := c.world
	if w.size == 1 {
		return compute([]any{contrib})
	}
	seq := c.seq
	c.seq++
	return w.rendezvousAt(c.rank, seq, kind, contrib, compute)
}

// rendezvousAt is the seq-addressed rendezvous body: arrive, wait for the
// last arriver's compute, then leave. The ticket-based asynchronous
// collectives split the same arrive/leave pair across issue and Wait.
func (w *World) rendezvousAt(rank int, seq uint64, kind string, contrib any, compute func(contribs []any) any) any {
	o := w.arrive(rank, seq, kind, contrib, compute)
	<-o.done
	return w.leave(seq, o)
}

// arrive registers rank's contribution to the seq-th collective; the last
// arriver performs the data movement and unblocks everyone.
func (w *World) arrive(rank int, seq uint64, kind string, contrib any, compute func(contribs []any) any) *op {
	w.mu.Lock()
	o, ok := w.ops[seq]
	if !ok {
		o = &op{kind: kind, done: make(chan struct{}), contrib: make([]any, w.size)}
		w.ops[seq] = o
	}
	if o.kind != kind {
		w.mu.Unlock()
		panic(fmt.Sprintf("comm: collective mismatch at seq %d: rank %d called %s, others called %s",
			seq, rank, kind, o.kind))
	}
	o.contrib[rank] = contrib
	o.arrived++
	if o.arrived == w.size {
		o.result = compute(o.contrib)
		close(o.done)
	}
	w.mu.Unlock()
	return o
}

// leave records one rank's departure; the last rank out removes the op.
func (w *World) leave(seq uint64, o *op) any {
	w.mu.Lock()
	o.left++
	if o.left == w.size {
		delete(w.ops, seq)
	}
	res := o.result
	w.mu.Unlock()
	return res
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	c.rendezvous("barrier", nil, func([]any) any { return nil })
}

// Broadcast copies root's buf into every rank's buf. All bufs must have the
// same length.
func (c *Comm) Broadcast(buf []float32, root int) {
	c.rendezvous(fmt.Sprintf("bcast:%d", root), buf, func(contribs []any) any {
		src := contribs[root].([]float32)
		for r, cb := range contribs {
			if r == root {
				continue
			}
			dst := cb.([]float32)
			if len(dst) != len(src) {
				panic(fmt.Sprintf("comm: broadcast length mismatch: root %d, rank %d", len(src), len(dst)))
			}
			copy(dst, src)
		}
		return nil
	})
}

// AllGather concatenates every rank's src (all equal length) into dst in rank
// order on every rank. len(dst) must be Size()*len(src).
func (c *Comm) AllGather(dst, src []float32) {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgather dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	type arg struct{ dst, src []float32 }
	c.rendezvous("allgather", arg{dst, src}, func(contribs []any) any {
		n := len(src)
		for _, ca := range contribs {
			a := ca.(arg)
			for r, cb := range contribs {
				copy(a.dst[r*n:(r+1)*n], cb.(arg).src)
			}
		}
		return nil
	})
}

// ReduceScatter sums the ranks' src buffers elementwise (in rank order) and
// scatters the result: rank r receives elements [r*len(dst), (r+1)*len(dst))
// of the sum. len(src) must be Size()*len(dst).
func (c *Comm) ReduceScatter(dst, src []float32) {
	if len(src) != c.Size()*len(dst) {
		panic(fmt.Sprintf("comm: reducescatter src len %d != size %d * dst len %d", len(src), c.Size(), len(dst)))
	}
	type arg struct{ dst, src []float32 }
	c.rendezvous("reducescatter", arg{dst, src}, func(contribs []any) any {
		n := len(dst)
		for r, ca := range contribs {
			a := ca.(arg)
			shard := a.dst
			base := r * n
			first := contribs[0].(arg).src
			copy(shard, first[base:base+n])
			for _, cb := range contribs[1:] {
				tensor.Axpy(1, cb.(arg).src[base:base+n], shard)
			}
		}
		return nil
	})
}

// AllReduce sums every rank's buf elementwise (in rank order); each rank's
// buf holds the total afterwards.
func (c *Comm) AllReduce(buf []float32) {
	c.rendezvous("allreduce", buf, func(contribs []any) any {
		sum := make([]float32, len(buf))
		copy(sum, contribs[0].([]float32))
		for _, cb := range contribs[1:] {
			b := cb.([]float32)
			if len(b) != len(sum) {
				panic("comm: allreduce length mismatch")
			}
			tensor.Axpy(1, b, sum)
		}
		for _, cb := range contribs {
			copy(cb.([]float32), sum)
		}
		return nil
	})
}

// Gather concatenates every rank's src into root's dst in rank order. dst is
// ignored on non-root ranks (may be nil). On root, len(dst) must be
// Size()*len(src).
func (c *Comm) Gather(dst, src []float32, root int) {
	type arg struct{ dst, src []float32 }
	c.rendezvous(fmt.Sprintf("gather:%d", root), arg{dst, src}, func(contribs []any) any {
		rd := contribs[root].(arg).dst
		n := len(contribs[root].(arg).src)
		if len(rd) != len(contribs)*n {
			panic("comm: gather root dst length mismatch")
		}
		for r, cb := range contribs {
			copy(rd[r*n:(r+1)*n], cb.(arg).src)
		}
		return nil
	})
}

// AllGatherHalf is AllGather over binary16 payloads; data moves bit-exactly.
func (c *Comm) AllGatherHalf(dst, src []tensor.Half) {
	if len(dst) != c.Size()*len(src) {
		panic("comm: allgatherhalf length mismatch")
	}
	type arg struct{ dst, src []tensor.Half }
	c.rendezvous("allgatherhalf", arg{dst, src}, func(contribs []any) any {
		n := len(src)
		for _, ca := range contribs {
			a := ca.(arg)
			for r, cb := range contribs {
				copy(a.dst[r*n:(r+1)*n], cb.(arg).src)
			}
		}
		return nil
	})
}

// BroadcastHalf copies root's binary16 buf into every rank's buf.
func (c *Comm) BroadcastHalf(buf []tensor.Half, root int) {
	c.rendezvous(fmt.Sprintf("bcasthalf:%d", root), buf, func(contribs []any) any {
		src := contribs[root].([]tensor.Half)
		for r, cb := range contribs {
			if r == root {
				continue
			}
			copy(cb.([]tensor.Half), src)
		}
		return nil
	})
}

// ReduceScatterHalf reduce-scatters binary16 gradients: contributions are
// decoded to float32, summed in rank order with float32 accumulation (the
// fp32-accumulate behaviour of tensor-core reductions), and each rank's shard
// is re-encoded to binary16 into dst.
func (c *Comm) ReduceScatterHalf(dst, src []tensor.Half) {
	if len(src) != c.Size()*len(dst) {
		panic("comm: reducescatterhalf length mismatch")
	}
	type arg struct{ dst, src []tensor.Half }
	c.rendezvous("reducescatterhalf", arg{dst, src}, func(contribs []any) any {
		n := len(dst)
		acc := make([]float32, n)
		tmp := make([]float32, n)
		for r := range contribs {
			base := r * n
			for i := range acc {
				acc[i] = 0
			}
			for _, cb := range contribs {
				tensor.DecodeHalf(tmp, cb.(arg).src[base:base+n])
				tensor.Axpy(1, tmp, acc)
			}
			shard := contribs[r].(arg).dst
			tensor.EncodeHalf(shard, acc)
		}
		return nil
	})
}

// AllReduceHalf sums binary16 buffers elementwise across ranks with float32
// accumulation (rank order) and re-encodes the total to binary16 into every
// rank's buf. Numerically identical to ReduceScatterHalf followed by
// AllGatherHalf, which is what makes DDP and ZeRO gradient paths bit-equal.
func (c *Comm) AllReduceHalf(buf []tensor.Half) {
	c.rendezvous("allreducehalf", buf, func(contribs []any) any {
		n := len(buf)
		acc := make([]float32, n)
		tmp := make([]float32, n)
		for _, cb := range contribs {
			b := cb.([]tensor.Half)
			if len(b) != n {
				panic("comm: allreducehalf length mismatch")
			}
			tensor.DecodeHalf(tmp, b)
			tensor.Axpy(1, tmp, acc)
		}
		enc := make([]tensor.Half, n)
		tensor.EncodeHalf(enc, acc)
		for _, cb := range contribs {
			copy(cb.([]tensor.Half), enc)
		}
		return nil
	})
}

// AllReduceScalar sums one float64 across ranks and returns the total on
// every rank. Used for loss aggregation and overflow flags.
func (c *Comm) AllReduceScalar(v float64) float64 {
	res := c.rendezvous("allreducescalar", v, func(contribs []any) any {
		var s float64
		for _, cb := range contribs {
			s += cb.(float64)
		}
		return s
	})
	return res.(float64)
}

// AllReduceMax returns the maximum of v across ranks on every rank.
func (c *Comm) AllReduceMax(v float64) float64 {
	res := c.rendezvous("allreducemax", v, func(contribs []any) any {
		m := contribs[0].(float64)
		for _, cb := range contribs[1:] {
			if f := cb.(float64); f > m {
				m = f
			}
		}
		return m
	})
	return res.(float64)
}
