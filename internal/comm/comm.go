// Package comm provides the collective-communication substrate for the
// ZeRO-Infinity reproduction. A World of n ranks runs SPMD code over a
// pluggable Transport; collectives (broadcast, allgather, reduce-scatter,
// allreduce, gather, barrier) have the same data semantics as NCCL's.
//
// Collective matching follows the SPMD contract: every rank must invoke the
// same sequence of collectives on the same communicator. Each call is matched
// by a per-rank sequence number, so the implementation is insensitive to
// goroutine scheduling and safe under the race detector. Reductions
// accumulate in rank order with float32 arithmetic, making results
// deterministic and enabling bit-exact engine-equivalence tests.
//
// Two transports implement the data plane (see transport.go): the reference
// in-memory rendezvous (ranks are goroutines in one process) and a TCP
// socket transport (each rank is its own OS process, launched by
// cmd/zinf-launch). Both execute collectives through the same compute
// kernels over a shared collCtx, so the fp32 rank-order accumulation — and
// therefore the training trajectory — is bit-identical across transports.
//
// The substrate is allocation-free in steady state: in-flight op descriptors
// are pooled and reused, per-rank contributions are flat payload structs
// (no interface boxing), the data-movement functions are package-level (no
// closure captures), and reduction/encode scratch comes from a context-owned
// size-classed arena. Fused convert+collective paths
// (AllGatherEncodeHalf, ReduceScatterHalfDecode) additionally remove the
// intermediate full-size fp16 pass their two-call forms needed.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/tensor"
)

// opKind enumerates the collective types. An enum (rather than the previous
// per-call formatted string) keeps the mismatch check allocation-free.
type opKind uint8

const (
	opBarrier opKind = iota
	opBroadcast
	opAllGather
	opReduceScatter
	opAllReduce
	opGather
	opBroadcastHalf
	opAllGatherHalf
	opReduceScatterHalf
	opAllReduceHalf
	opAllGatherEncodeHalf
	opAllGatherHalfDecode
	opReduceScatterHalfDecode
	opReduceHalfDecode
	opAllReduceScalar
	opAllReduceMax

	opKindCount
)

var opNames = [...]string{
	"barrier", "broadcast", "allgather", "reducescatter", "allreduce",
	"gather", "broadcasthalf", "allgatherhalf", "reducescatterhalf",
	"allreducehalf", "allgatherencodehalf", "allgatherhalfdecode",
	"reducescatterhalfdecode", "reducehalfdecode", "allreducescalar",
	"allreducemax",
}

func (k opKind) String() string { return opNames[k] }

// payload is one rank's contribution to a collective: a flat union covering
// every collective's argument shapes. Passing it by value avoids the
// per-call interface boxing the previous []any design paid on every
// collective.
type payload struct {
	fdst, fsrc []float32
	hdst, hsrc []tensor.Half
	v          float64
}

// computeFns dispatches the data movement for each kind. The functions are
// package-level so issuing a collective never builds a closure.
var computeFns = [...]func(w *collCtx, o *op){
	opBarrier:                 func(*collCtx, *op) {},
	opBroadcast:               computeBroadcast,
	opAllGather:               computeAllGather,
	opReduceScatter:           computeReduceScatter,
	opAllReduce:               computeAllReduce,
	opGather:                  computeGather,
	opBroadcastHalf:           computeBroadcastHalf,
	opAllGatherHalf:           computeAllGatherHalf,
	opReduceScatterHalf:       computeReduceScatterHalf,
	opAllReduceHalf:           computeAllReduceHalf,
	opAllGatherEncodeHalf:     computeAllGatherEncodeHalf,
	opAllGatherHalfDecode:     computeAllGatherHalfDecode,
	opReduceScatterHalfDecode: computeReduceScatterHalfDecode,
	opReduceHalfDecode:        computeReduceHalfDecode,
	opAllReduceScalar:         computeAllReduceScalar,
	opAllReduceMax:            computeAllReduceMax,
}

// collCtx is the transport-neutral collective execution context: the state
// the compute kernels need, factored out of the transports so every fabric
// runs the exact same data movement and fp32 rank-order accumulation.
// Synchronization is the embedding transport's job (the in-memory transport
// serializes compute under its world mutex; the socket transport computes on
// the hub rank's only goroutine).
type collCtx struct {
	size int

	// fscratch/hscratch serve the reductions' accumulator/decode/encode
	// buffers. The arenas carry their own locks, so transport-side reader
	// goroutines may share them with compute.
	fscratch *mem.Arena[float32]
	hscratch *mem.Arena[tensor.Half]

	// codec dispatches the binary16 conversions the *Half collectives
	// perform. Every backend is bit-identical, so this is purely a speed
	// knob (reference by default).
	codec tensor.Backend

	// topo, when set, groups ranks into nodes: the data-moving collectives
	// decompose hierarchically (intra-node phase, then inter-node phase
	// among node leaders) and every collective's byte flow and simulated
	// transfer cost are accounted per link class in traffic. See
	// topology.go.
	topo    *Topology
	traffic [opKindCount]TrafficStats
}

// computeMeasured runs o's data movement plus modeled accounting and folds
// in the measured counters: wall-clock compute time, and — on this shared-
// memory path, where the "wire" is the copies the kernel itself performs —
// measured bytes equal to the modeled bytes the op added. The socket
// transport accounts its measured side separately from real frame sizes.
//
//zinf:hotpath
func (w *collCtx) computeMeasured(o *op) {
	st := &w.traffic[o.kind]
	preIntra, preInter := st.IntraBytes, st.InterBytes
	start := time.Now()
	computeFns[o.kind](w, o)
	w.account(o)
	st.MeasSeconds += time.Since(start).Seconds()
	st.MeasIntraBytes += st.IntraBytes - preIntra
	st.MeasInterBytes += st.InterBytes - preInter
}

// op is one in-flight collective. On the in-memory transport the last rank
// to arrive performs the data movement and the last rank to leave returns
// the descriptor to the free pool; on the socket transport the hub rank
// assembles a synthetic op from the peers' framed contributions and runs the
// same compute kernels over it.
type op struct {
	kind          opKind
	root          int
	arrived, left int
	computed      bool
	done          *sync.Cond // in-memory transport: shares the world mutex
	contrib       []payload  // per-rank argument, indexed by rank
	result        float64    // scalar collectives' result
}

// Barrier blocks until every rank has entered the barrier.
//
//zinf:hotpath
func (c *Comm) Barrier() {
	c.rendezvous(opBarrier, 0, payload{})
}

// Broadcast copies root's buf into every rank's buf. All bufs must have the
// same length.
//
//zinf:hotpath
func (c *Comm) Broadcast(buf []float32, root int) {
	c.rendezvous(opBroadcast, root, payload{fdst: buf})
}

//zinf:hotpath
func computeBroadcast(w *collCtx, o *op) {
	if w.hier() {
		computeBroadcastHier(w, o)
		return
	}
	src := o.contrib[o.root].fdst
	for r := range o.contrib {
		if r == o.root {
			continue
		}
		dst := o.contrib[r].fdst
		if len(dst) != len(src) {
			panic(fmt.Sprintf("comm: broadcast length mismatch: root %d, rank %d", len(src), len(dst)))
		}
		copy(dst, src)
	}
}

// AllGather concatenates every rank's src (all equal length) into dst in rank
// order on every rank. len(dst) must be Size()*len(src).
//
//zinf:hotpath
func (c *Comm) AllGather(dst, src []float32) {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgather dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	c.rendezvous(opAllGather, 0, payload{fdst: dst, fsrc: src})
}

//zinf:hotpath
func computeAllGather(w *collCtx, o *op) {
	if w.hier() {
		computeAllGatherHier(w, o)
		return
	}
	n := len(o.contrib[0].fsrc)
	for i := range o.contrib {
		dst := o.contrib[i].fdst
		for r := range o.contrib {
			copy(dst[r*n:(r+1)*n], o.contrib[r].fsrc)
		}
	}
}

// ReduceScatter sums the ranks' src buffers elementwise (in rank order) and
// scatters the result: rank r receives elements [r*len(dst), (r+1)*len(dst))
// of the sum. len(src) must be Size()*len(dst).
//
//zinf:hotpath
func (c *Comm) ReduceScatter(dst, src []float32) {
	if len(src) != c.Size()*len(dst) {
		panic(fmt.Sprintf("comm: reducescatter src len %d != size %d * dst len %d", len(src), c.Size(), len(dst)))
	}
	c.rendezvous(opReduceScatter, 0, payload{fdst: dst, fsrc: src})
}

//zinf:hotpath
func computeReduceScatter(w *collCtx, o *op) {
	n := len(o.contrib[0].fdst)
	for r := range o.contrib {
		shard := o.contrib[r].fdst
		base := r * n
		copy(shard, o.contrib[0].fsrc[base:base+n])
		for _, cb := range o.contrib[1:] {
			tensor.Axpy(1, cb.fsrc[base:base+n], shard)
		}
	}
}

// AllReduce sums every rank's buf elementwise (in rank order); each rank's
// buf holds the total afterwards.
//
//zinf:hotpath
func (c *Comm) AllReduce(buf []float32) {
	c.rendezvous(opAllReduce, 0, payload{fdst: buf})
}

//zinf:hotpath
func computeAllReduce(w *collCtx, o *op) {
	n := len(o.contrib[0].fdst)
	sum := w.fscratch.Get(n)
	copy(sum, o.contrib[0].fdst)
	for _, cb := range o.contrib[1:] {
		if len(cb.fdst) != n {
			panic("comm: allreduce length mismatch")
		}
		tensor.Axpy(1, cb.fdst, sum)
	}
	for i := range o.contrib {
		copy(o.contrib[i].fdst, sum)
	}
	w.fscratch.Put(sum)
}

// Gather concatenates every rank's src into root's dst in rank order. dst is
// ignored on non-root ranks (may be nil). On root, len(dst) must be
// Size()*len(src).
//
//zinf:hotpath
func (c *Comm) Gather(dst, src []float32, root int) {
	c.rendezvous(opGather, root, payload{fdst: dst, fsrc: src})
}

//zinf:hotpath
func computeGather(w *collCtx, o *op) {
	rd := o.contrib[o.root].fdst
	n := len(o.contrib[o.root].fsrc)
	if len(rd) != len(o.contrib)*n {
		panic("comm: gather root dst length mismatch")
	}
	for r := range o.contrib {
		copy(rd[r*n:(r+1)*n], o.contrib[r].fsrc)
	}
}

// AllGatherHalf is AllGather over binary16 payloads; data moves bit-exactly.
//
//zinf:hotpath
func (c *Comm) AllGatherHalf(dst, src []tensor.Half) {
	if len(dst) != c.Size()*len(src) {
		panic("comm: allgatherhalf length mismatch")
	}
	c.rendezvous(opAllGatherHalf, 0, payload{hdst: dst, hsrc: src})
}

//zinf:hotpath
func computeAllGatherHalf(w *collCtx, o *op) {
	if w.hier() {
		computeAllGatherHalfHier(w, o)
		return
	}
	n := len(o.contrib[0].hsrc)
	for i := range o.contrib {
		dst := o.contrib[i].hdst
		for r := range o.contrib {
			copy(dst[r*n:(r+1)*n], o.contrib[r].hsrc)
		}
	}
}

// BroadcastHalf copies root's binary16 buf into every rank's buf.
//
//zinf:hotpath
func (c *Comm) BroadcastHalf(buf []tensor.Half, root int) {
	c.rendezvous(opBroadcastHalf, root, payload{hdst: buf})
}

//zinf:hotpath
func computeBroadcastHalf(w *collCtx, o *op) {
	if w.hier() {
		computeBroadcastHalfHier(w, o)
		return
	}
	src := o.contrib[o.root].hdst
	for r := range o.contrib {
		if r == o.root {
			continue
		}
		copy(o.contrib[r].hdst, src)
	}
}

// ReduceScatterHalf reduce-scatters binary16 gradients: contributions are
// decoded to float32, summed in rank order with float32 accumulation (the
// fp32-accumulate behaviour of tensor-core reductions), and each rank's shard
// is re-encoded to binary16 into dst.
//
//zinf:hotpath
func (c *Comm) ReduceScatterHalf(dst, src []tensor.Half) {
	if len(src) != c.Size()*len(dst) {
		panic("comm: reducescatterhalf length mismatch")
	}
	c.rendezvous(opReduceScatterHalf, 0, payload{hdst: dst, hsrc: src})
}

// reduceHalfShard computes the fp32 rank-order sum of shard r's slice of the
// contributions into acc (the shared accumulation kernel of the half
// reduce-scatter family).
//
//zinf:hotpath
func (w *collCtx) reduceHalfShard(o *op, r, n int, acc, tmp []float32) {
	base := r * n
	clear(acc)
	for _, cb := range o.contrib {
		w.codec.DecodeHalf(tmp, cb.hsrc[base:base+n])
		tensor.Axpy(1, tmp, acc)
	}
}

//zinf:hotpath
func computeReduceScatterHalf(w *collCtx, o *op) {
	n := len(o.contrib[0].hdst)
	acc := w.fscratch.Get(n)
	tmp := w.fscratch.Get(n)
	for r := range o.contrib {
		w.reduceHalfShard(o, r, n, acc, tmp)
		w.codec.EncodeHalf(o.contrib[r].hdst, acc)
	}
	w.fscratch.Put(acc)
	w.fscratch.Put(tmp)
}

// ReduceScatterHalfDecode is the fused ReduceScatterHalf→DecodeHalf path:
// the reduced shard is rounded through binary16 (exactly as
// ReduceScatterHalf stores it) and delivered directly as float32 into dst,
// eliminating the caller's intermediate fp16 shard buffer and decode pass.
// Bit-identical to ReduceScatterHalf followed by DecodeHalf.
//
//zinf:hotpath
func (c *Comm) ReduceScatterHalfDecode(dst []float32, src []tensor.Half) {
	if len(src) != c.Size()*len(dst) {
		panic("comm: reducescatterhalfdecode length mismatch")
	}
	c.rendezvous(opReduceScatterHalfDecode, 0, payload{fdst: dst, hsrc: src})
}

//zinf:hotpath
func computeReduceScatterHalfDecode(w *collCtx, o *op) {
	n := len(o.contrib[0].fdst)
	acc := w.fscratch.Get(n)
	tmp := w.fscratch.Get(n)
	enc := w.hscratch.Get(n)
	for r := range o.contrib {
		w.reduceHalfShard(o, r, n, acc, tmp)
		w.codec.EncodeHalf(enc, acc)
		w.codec.DecodeHalf(o.contrib[r].fdst, enc)
	}
	w.fscratch.Put(acc)
	w.fscratch.Put(tmp)
	w.hscratch.Put(enc)
}

// ReduceHalfDecode reduces binary16 contributions to root: every rank's src
// (all equal length) is decoded to float32 and summed in rank order with
// float32 accumulation, the total is rounded through binary16 (exactly as
// the reduce-scatter family stores it) and delivered as float32 into root's
// dst. dst is ignored on non-root ranks (may be nil); on root len(dst) must
// equal len(src). This is the gradient-reduction primitive of the
// owner-rank-broadcast partitioning strategy (Fig. 6c's baseline): the sum
// per element is identical to ReduceScatterHalfDecode's, so the two
// strategies train bit-identically.
//
//zinf:hotpath
func (c *Comm) ReduceHalfDecode(dst []float32, src []tensor.Half, root int) {
	if c.rank == root && len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reducehalfdecode root dst len %d != src len %d", len(dst), len(src)))
	}
	c.rendezvous(opReduceHalfDecode, root, payload{fdst: dst, hsrc: src})
}

//zinf:hotpath
func computeReduceHalfDecode(w *collCtx, o *op) {
	n := len(o.contrib[0].hsrc)
	acc := w.fscratch.GetZeroed(n)
	tmp := w.fscratch.Get(n)
	for _, cb := range o.contrib {
		if len(cb.hsrc) != n {
			panic("comm: reducehalfdecode length mismatch")
		}
		w.codec.DecodeHalf(tmp, cb.hsrc)
		tensor.Axpy(1, tmp, acc)
	}
	enc := w.hscratch.Get(n)
	w.codec.EncodeHalf(enc, acc)
	w.codec.DecodeHalf(o.contrib[o.root].fdst, enc)
	w.fscratch.Put(acc)
	w.fscratch.Put(tmp)
	w.hscratch.Put(enc)
}

// AllReduceHalf sums binary16 buffers elementwise across ranks with float32
// accumulation (rank order) and re-encodes the total to binary16 into every
// rank's buf. Numerically identical to ReduceScatterHalf followed by
// AllGatherHalf, which is what makes DDP and ZeRO gradient paths bit-equal.
//
//zinf:hotpath
func (c *Comm) AllReduceHalf(buf []tensor.Half) {
	c.rendezvous(opAllReduceHalf, 0, payload{hdst: buf})
}

//zinf:hotpath
func computeAllReduceHalf(w *collCtx, o *op) {
	n := len(o.contrib[0].hdst)
	acc := w.fscratch.GetZeroed(n)
	tmp := w.fscratch.Get(n)
	for _, cb := range o.contrib {
		if len(cb.hdst) != n {
			panic("comm: allreducehalf length mismatch")
		}
		w.codec.DecodeHalf(tmp, cb.hdst)
		tensor.Axpy(1, tmp, acc)
	}
	enc := w.hscratch.Get(n)
	w.codec.EncodeHalf(enc, acc)
	for i := range o.contrib {
		copy(o.contrib[i].hdst, enc)
	}
	w.fscratch.Put(acc)
	w.fscratch.Put(tmp)
	w.hscratch.Put(enc)
}

// AllGatherEncodeHalf is the fused EncodeHalf→AllGatherHalf path: every
// rank contributes a float32 shard, each shard is rounded to binary16 once,
// and the encoded shards are concatenated into every rank's dst in rank
// order. Bit-identical to each rank encoding its shard and calling
// AllGatherHalf, without the per-rank intermediate fp16 shard buffer.
// len(dst) must be Size()*len(src).
//
//zinf:hotpath
func (c *Comm) AllGatherEncodeHalf(dst []tensor.Half, src []float32) {
	if len(dst) != c.Size()*len(src) {
		panic("comm: allgatherencodehalf length mismatch")
	}
	c.rendezvous(opAllGatherEncodeHalf, 0, payload{hdst: dst, fsrc: src})
}

//zinf:hotpath
func computeAllGatherEncodeHalf(w *collCtx, o *op) {
	if w.hier() {
		computeAllGatherEncodeHalfHier(w, o)
		return
	}
	n := len(o.contrib[0].fsrc)
	enc := w.hscratch.Get(n)
	for r := range o.contrib {
		w.codec.EncodeHalf(enc, o.contrib[r].fsrc)
		for i := range o.contrib {
			copy(o.contrib[i].hdst[r*n:(r+1)*n], enc)
		}
	}
	w.hscratch.Put(enc)
}

// AllGatherHalfDecode is the fused AllGatherHalf→DecodeHalf path — the
// gather-side mirror of AllGatherEncodeHalf: every rank contributes a
// binary16 shard, each shard is decoded to float32 exactly once, and the
// decoded shards are concatenated into every rank's dst in rank order.
// Bit-identical to AllGatherHalf followed by DecodeHalf (the decode LUT is
// exact), without the caller's full-size intermediate fp16 buffer and
// decode pass — the engines' parameter gathers run on this.
// len(dst) must be Size()*len(src).
//
//zinf:hotpath
func (c *Comm) AllGatherHalfDecode(dst []float32, src []tensor.Half) {
	if len(dst) != c.Size()*len(src) {
		panic(fmt.Sprintf("comm: allgatherhalfdecode dst len %d != size %d * src len %d", len(dst), c.Size(), len(src)))
	}
	c.rendezvous(opAllGatherHalfDecode, 0, payload{fdst: dst, hsrc: src})
}

//zinf:hotpath
func computeAllGatherHalfDecode(w *collCtx, o *op) {
	if w.hier() {
		computeAllGatherHalfDecodeHier(w, o)
		return
	}
	n := len(o.contrib[0].hsrc)
	dec := w.fscratch.Get(n)
	for r := range o.contrib {
		w.codec.DecodeHalf(dec, o.contrib[r].hsrc)
		for i := range o.contrib {
			copy(o.contrib[i].fdst[r*n:(r+1)*n], dec)
		}
	}
	w.fscratch.Put(dec)
}

// AllReduceScalar sums one float64 across ranks and returns the total on
// every rank. Used for loss aggregation and overflow flags.
//
//zinf:hotpath
func (c *Comm) AllReduceScalar(v float64) float64 {
	return c.rendezvous(opAllReduceScalar, 0, payload{v: v})
}

//zinf:hotpath
func computeAllReduceScalar(w *collCtx, o *op) {
	var s float64
	for i := range o.contrib {
		s += o.contrib[i].v
	}
	o.result = s
}

// AllReduceMax returns the maximum of v across ranks on every rank.
//
//zinf:hotpath
func (c *Comm) AllReduceMax(v float64) float64 {
	return c.rendezvous(opAllReduceMax, 0, payload{v: v})
}

//zinf:hotpath
func computeAllReduceMax(w *collCtx, o *op) {
	m := o.contrib[0].v
	for _, cb := range o.contrib[1:] {
		if cb.v > m {
			m = cb.v
		}
	}
	o.result = m
}
