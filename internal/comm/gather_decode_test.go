package comm

import (
	"testing"

	"repro/internal/tensor"
)

// The fused allgather+decode must be bit-identical to AllGatherHalf followed
// by DecodeHalf on every rank (the decode is an exact LUT, so equality is
// exact float32 bits).
func TestAllGatherHalfDecodeMatchesTwoCall(t *testing.T) {
	const ranks, n = 4, 37
	fused := make([][]float32, ranks)
	twoCall := make([][]float32, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(31+c.Rank()), n)
		dst := make([]float32, ranks*n)
		c.AllGatherHalfDecode(dst, src)
		fused[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(31+c.Rank()), n)
		gathered := make([]tensor.Half, ranks*n)
		c.AllGatherHalf(gathered, src)
		dst := make([]float32, ranks*n)
		tensor.DecodeHalf(dst, gathered)
		twoCall[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range fused[r] {
			if fused[r][i] != twoCall[r][i] {
				t.Fatalf("rank %d elem %d: fused %g != two-call %g", r, i, fused[r][i], twoCall[r][i])
			}
		}
	}
}

// The async fused allgather+decode must match its synchronous form.
func TestAllGatherHalfDecodeAsyncMatchesSync(t *testing.T) {
	const ranks, n = 4, 33
	syncOut := make([][]float32, ranks)
	asyncOut := make([][]float32, ranks)
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(61+c.Rank()), n)
		dst := make([]float32, ranks*n)
		c.AllGatherHalfDecode(dst, src)
		syncOut[c.Rank()] = dst
	})
	Run(ranks, func(c *Comm) {
		src := randHalves(uint64(61+c.Rank()), n)
		dst := make([]float32, ranks*n)
		tk := c.AllGatherHalfDecodeAsync(dst, src)
		tk.Wait()
		asyncOut[c.Rank()] = dst
	})
	for r := 0; r < ranks; r++ {
		for i := range syncOut[r] {
			if syncOut[r][i] != asyncOut[r][i] {
				t.Fatalf("rank %d elem %d: async %g != sync %g", r, i, asyncOut[r][i], syncOut[r][i])
			}
		}
	}
}

// With a hierarchical topology installed the collective routes through the
// two-level variant; results must stay bit-identical to the flat path.
func TestAllGatherHalfDecodeHierMatchesFlat(t *testing.T) {
	const ranks, n = 8, 21
	run := func(topo *Topology) [][]float32 {
		out := make([][]float32, ranks)
		Run(ranks, func(c *Comm) {
			if topo != nil {
				if err := c.SetTopology(topo); err != nil {
					t.Error(err)
					return
				}
			}
			src := randHalves(uint64(17+c.Rank()), n)
			dst := make([]float32, ranks*n)
			c.AllGatherHalfDecode(dst, src)
			out[c.Rank()] = dst
		})
		return out
	}
	flat := run(nil)
	hier := run(testTopo(2)) // 4 nodes x 2 ranks
	for r := 0; r < ranks; r++ {
		for i := range flat[r] {
			if flat[r][i] != hier[r][i] {
				t.Fatalf("rank %d elem %d: hier %g != flat %g", r, i, hier[r][i], flat[r][i])
			}
		}
	}
}

// The fused gather accounts the same fp16 bytes as the unfused
// AllGatherHalf — decoding at the destination is free on the wire.
func TestAllGatherHalfDecodeAccountsHalfBytes(t *testing.T) {
	const ranks, n = 4, 64
	var fusedBytes, plainBytes int64
	Run(ranks, func(c *Comm) {
		if err := c.SetTopology(testTopo(ranks)); err != nil {
			t.Error(err)
			return
		}
		src := randHalves(uint64(c.Rank()), n)
		dst := make([]float32, ranks*n)
		c.AllGatherHalfDecode(dst, src)
		if c.Rank() == 0 {
			fusedBytes = c.Traffic()["allgatherhalfdecode"].Bytes()
		}
	})
	Run(ranks, func(c *Comm) {
		if err := c.SetTopology(testTopo(ranks)); err != nil {
			t.Error(err)
			return
		}
		src := randHalves(uint64(c.Rank()), n)
		dst := make([]tensor.Half, ranks*n)
		c.AllGatherHalf(dst, src)
		if c.Rank() == 0 {
			plainBytes = c.Traffic()["allgatherhalf"].Bytes()
		}
	})
	if fusedBytes == 0 || fusedBytes != plainBytes {
		t.Fatalf("fused gather accounted %d bytes, unfused %d — want equal fp16 totals", fusedBytes, plainBytes)
	}
}

// The engine steady state runs the fused gather every step, so a warm
// collective must not allocate — with and without a topology installed.
func TestAllGatherHalfDecodeAllocFree(t *testing.T) {
	for _, topo := range []*Topology{nil, testTopo(1)} {
		w := NewWorld(1)
		if topo != nil {
			if err := w.SetTopology(topo); err != nil {
				t.Fatal(err)
			}
		}
		c := w.Comm(0)
		src := randHalves(1, 64)
		dst := make([]float32, 64)
		c.AllGatherHalfDecode(dst, src) // warm the op pool and arenas
		allocs := testing.AllocsPerRun(100, func() {
			c.AllGatherHalfDecode(dst, src)
		})
		if allocs != 0 {
			t.Fatalf("allgatherhalfdecode (topo=%v) allocated %.1f/op", topo != nil, allocs)
		}
	}
}
