package comm

// Partitioning helpers shared by every ZeRO engine. ZeRO-Infinity's
// bandwidth-centric partitioning (paper Sec. 6.1) slices each flat parameter
// vector evenly across all data-parallel ranks, padding to a multiple of the
// world size so allgather/reduce-scatter shards are equal length.

// PaddedLen returns the smallest multiple of size that is >= n.
//
//zinf:hotpath
func PaddedLen(n, size int) int {
	if size <= 0 {
		panic("comm: PaddedLen size <= 0")
	}
	return (n + size - 1) / size * size
}

// ShardLen returns the per-rank shard length for an n-element vector
// partitioned across size ranks (with padding).
//
//zinf:hotpath
func ShardLen(n, size int) int { return PaddedLen(n, size) / size }

// ShardRange returns the half-open range [lo, hi) of the padded vector owned
// by rank. Indices past n (padding) are valid shard positions but carry no
// data.
//
//zinf:hotpath
func ShardRange(n, rank, size int) (lo, hi int) {
	s := ShardLen(n, size)
	return rank * s, (rank + 1) * s
}

// Shard copies rank's shard of src (length n) into dst (length ShardLen),
// zero-filling the padded tail. It panics if dst is shorter than the shard.
//
//zinf:hotpath
func Shard(dst, src []float32, rank, size int) {
	lo, hi := ShardRange(len(src), rank, size)
	s := hi - lo
	if len(dst) < s {
		panic("comm: Shard dst too short")
	}
	for i := 0; i < s; i++ {
		j := lo + i
		if j < len(src) {
			dst[i] = src[j]
		} else {
			dst[i] = 0
		}
	}
}

// Unshard copies the shard owned by rank back into the full vector dst,
// ignoring padding.
//
//zinf:hotpath
func Unshard(dst, shard []float32, rank, size int) {
	lo, hi := ShardRange(len(dst), rank, size)
	for i := lo; i < hi && i < len(dst); i++ {
		dst[i] = shard[i-lo]
	}
}
