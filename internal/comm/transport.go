package comm

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Transport is the pluggable rank-to-rank data plane beneath a World: it
// hosts some (or all) of the world's ranks, matches their sequence-numbered
// collective ops, and executes the data movement. Two implementations exist:
//
//   - memTransport (the reference): all ranks are goroutines in one process
//     sharing an in-memory rendezvous — NewWorld/Run build it implicitly.
//   - sockTransport: each process hosts one rank and frames flow over TCP —
//     built with NewSockTransport and launched by cmd/zinf-launch.
//
// The interface is sealed (its execution methods are unexported): every
// transport must execute the collectives through the shared compute kernels
// (collCtx), because cross-transport bit-identity — the same fp32 rank-order
// accumulation on every fabric — is contractual and verified by the
// cross-transport trajectory tests.
type Transport interface {
	// Size returns the number of ranks in the world this transport connects.
	Size() int
	// Close releases the transport's resources (connections, listeners).
	// The in-memory transport's Close is a no-op.
	Close() error

	// hosts reports whether this transport instance hosts rank locally —
	// true for every rank on the in-memory transport, true only for the
	// process's own rank on the socket transport.
	hosts(rank int) bool
	// rendezvous runs rank's seq-th collective synchronously and returns
	// the scalar result (0 for data collectives).
	rendezvous(rank int, seq uint64, kind opKind, root int, pl payload) float64
	// issue starts rank's seq-th collective asynchronously; the returned
	// ticket's Wait completes it. Buffers in pl stay untouched until Wait.
	issue(rank int, seq uint64, kind opKind, root int, pl payload) Ticket
	// setCodec/setTopology configure the collective execution context; they
	// must not be called while collectives are in flight.
	setCodec(be tensor.Backend)
	setTopology(t *Topology) error
	// topology returns the installed (normalized) topology, nil when flat.
	topology() *Topology
	// snapshotTraffic visits every collective kind's traffic counters.
	snapshotTraffic(f func(k opKind, st TrafficStats))
	resetTraffic()
}

// World is a group of communicating ranks over a Transport. Worlds built
// with New are sealed: the fabric (transport, topology, codec backend) is
// fixed at construction and the deprecated mutating setters only verify.
// Worlds built with NewWorld/Run keep the legacy mutate-after-construct
// behaviour for one release.
type World struct {
	t      Transport
	sealed bool
}

// WorldOptions configures New. The zero value of each field keeps the
// default (in-memory transport of Size ranks, flat topology, reference
// codec backend).
type WorldOptions struct {
	// Size is the world size for the default in-memory transport; ignored
	// (but verified when non-zero) when Transport is set.
	Size int
	// Transport supplies the data plane; nil builds an in-memory transport
	// of Size ranks.
	Transport Transport
	// Topology, when set, groups ranks into nodes (see Topology); it is
	// validated against the world size and installed before any rank runs.
	Topology *Topology
	// CodecBackend selects the binary16-conversion backend for the *Half
	// collectives (nil = serial reference; all backends are bit-identical).
	CodecBackend tensor.Backend
}

// New builds a sealed World: transport, topology and codec backend are fixed
// once it returns, so ranks can start immediately with no mutate-after-
// construct window. This is the constructor the training entry points use;
// NewWorld/Run remain for the legacy mutable construction.
func New(opts WorldOptions) (*World, error) {
	t := opts.Transport
	if t == nil {
		if opts.Size < 1 {
			return nil, fmt.Errorf("comm: world size must be >= 1")
		}
		t = newMemTransport(opts.Size)
	} else if opts.Size != 0 && opts.Size != t.Size() {
		return nil, fmt.Errorf("comm: WorldOptions.Size %d != transport size %d", opts.Size, t.Size())
	}
	t.setCodec(tensor.DefaultBackend(opts.CodecBackend))
	if err := t.setTopology(opts.Topology); err != nil {
		return nil, err
	}
	return &World{t: t, sealed: true}, nil
}

// NewWorld creates the legacy mutable in-memory world for size ranks. It
// panics if size < 1. Prefer New: worlds built here accept the deprecated
// SetTopology/SetCodecBackend mutations until ranks are running.
func NewWorld(size int) *World {
	if size < 1 {
		panic("comm: world size must be >= 1")
	}
	return &World{t: newMemTransport(size)}
}

// Size returns the number of ranks in the world.
//
//zinf:hotpath
func (w *World) Size() int { return w.t.Size() }

// Transport returns the world's data plane.
func (w *World) Transport() Transport { return w.t }

// Close releases the transport's resources. Training code should close a
// world it constructed around a socket transport; in-memory worlds need no
// cleanup.
func (w *World) Close() error { return w.t.Close() }

// SetCodecBackend selects the compute backend the binary16 collectives
// convert through (nil restores the serial reference backend). All backends
// are bit-identical, so this only changes wall-clock time.
//
// Deprecated: configure the backend via WorldOptions.CodecBackend. On a
// sealed world this is a no-op — the codec was fixed at construction (every
// backend computes identical bytes, so there is nothing to verify).
func (w *World) SetCodecBackend(be tensor.Backend) {
	if w.sealed {
		return
	}
	w.t.setCodec(tensor.DefaultBackend(be))
}

// SetTopology installs (a copy of) the topology on the world. A nil
// topology is the flat single-node fabric. It must not be called while
// collectives are in flight.
//
// Deprecated: configure the topology via WorldOptions.Topology. On a sealed
// world this verifies instead of mutating: the call succeeds when t
// normalizes to the installed topology (engines re-announce their configured
// topology at construction) and errors on any mismatch.
func (w *World) SetTopology(t *Topology) error {
	if !w.sealed {
		return w.t.setTopology(t)
	}
	want, err := normalizeTopology(t, w.Size())
	if err != nil {
		return err
	}
	have := w.t.topology()
	switch {
	case want == nil && have == nil:
		return nil
	case want == nil || have == nil || *want != *have:
		return fmt.Errorf("comm: sealed world has topology %s, engine configured %s", have, want)
	}
	return nil
}

// Comm returns the communicator handle for the given rank. Each rank
// goroutine must use its own handle; handles are not safe for concurrent use
// by multiple goroutines. On a transport that hosts a subset of the ranks
// (the socket transport hosts exactly one), only hosted ranks are valid.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.Size() {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.Size()))
	}
	if !w.t.hosts(rank) {
		panic(fmt.Sprintf("comm: rank %d is not hosted by this transport", rank))
	}
	return &Comm{world: w, rank: rank}
}

// Run spawns fn on one goroutine per rank, passing each its communicator,
// and waits for all of them to return. It is the standard SPMD entry point:
//
//	comm.Run(4, func(c *comm.Comm) { ... })
func Run(size int, fn func(c *Comm)) {
	w := NewWorld(size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
	seq   uint64
}

// Rank returns this communicator's rank.
//
//zinf:hotpath
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
//
//zinf:hotpath
func (c *Comm) Size() int { return c.world.Size() }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

// SetCodecBackend selects the world's binary16-conversion backend.
//
// Deprecated: configure via WorldOptions.CodecBackend (see
// World.SetCodecBackend for the sealed-world semantics).
func (c *Comm) SetCodecBackend(be tensor.Backend) { c.world.SetCodecBackend(be) }

// rendezvous runs this rank's next collective synchronously through the
// transport.
//
//zinf:hotpath
func (c *Comm) rendezvous(kind opKind, root int, pl payload) float64 {
	seq := c.seq
	c.seq++
	return c.world.t.rendezvous(c.rank, seq, kind, root, pl)
}

// async starts this rank's next collective asynchronously through the
// transport. The semantics — including rank-order accumulation — are
// identical to the synchronous rendezvous, so asynchronous and synchronous
// paths are bit-identical.
//
//zinf:hotpath
func (c *Comm) async(kind opKind, root int, pl payload) Ticket {
	seq := c.seq
	c.seq++
	return c.world.t.issue(c.rank, seq, kind, root, pl)
}
