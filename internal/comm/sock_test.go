package comm

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// freeAddr reserves a loopback port for a test hub by binding and
// immediately releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runSockWorld runs fn as size ranks, each owning its own sockTransport and
// World — the in-process stand-in for size separate worker processes.
func runSockWorld(t *testing.T, size int, topo *Topology, fn func(c *Comm)) {
	t.Helper()
	addr := freeAddr(t)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := NewSockTransport(SockConfig{Rank: rank, Size: size, Coord: addr, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			w, err := New(WorldOptions{Size: size, Transport: tr, Topology: topo})
			if err != nil {
				tr.Close()
				errs[rank] = err
				return
			}
			defer w.Close()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// trajectory drives one rank through a deterministic mix of every collective
// shape — sync and async, float and half, rooted and not — and returns a
// flat signature of all delivered bytes and scalars. Running it over two
// transports must produce identical signatures on every rank.
func trajectory(c *Comm, n int) []float32 {
	rank, size := c.Rank(), c.Size()
	var sig []float32
	emit := func(xs ...float32) { sig = append(sig, xs...) }

	// AllReduce: dst is also an input.
	buf := make([]float32, n)
	for i := range buf {
		buf[i] = float32(rank+1) * float32(i+1) * 0.125
	}
	c.AllReduce(buf)
	emit(buf...)

	// Broadcast from a non-hub root.
	root := size - 1
	b := make([]float32, n)
	if rank == root {
		for i := range b {
			b[i] = float32(i) + 0.5
		}
	}
	c.Broadcast(b, root)
	emit(b...)

	// AllGather / ReduceScatter round trip.
	full := make([]float32, size*n)
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(rank*100+i) * 0.03125
	}
	c.AllGather(full, src)
	emit(full...)
	shard := make([]float32, n)
	c.ReduceScatter(shard, full)
	emit(shard...)

	// Rooted gather and reduce at a non-hub root; non-root dst stays nil.
	var gdst []float32
	if rank == root {
		gdst = make([]float32, size*n)
	}
	c.Gather(gdst, src, root)
	emit(gdst...)

	// Scalar consensus ops.
	emit(float32(c.AllReduceScalar(float64(rank+1)*0.25)),
		float32(c.AllReduceMax(float64(rank))))

	// Half-precision: fused allgather+decode and reduce-scatter with
	// re-encode, plus async overlap of two in-flight tickets.
	hsrc := make([]tensor.Half, n)
	for i := range hsrc {
		hsrc[i] = tensor.HalfFromFloat32(float32(rank+1) * float32(i%7) * 0.0625)
	}
	fdec := make([]float32, size*n)
	tk1 := c.AllGatherHalfDecodeAsync(fdec, hsrc)
	hshard := make([]tensor.Half, n)
	hfull := make([]tensor.Half, size*n)
	c.AllGatherHalf(hfull, hsrc)
	tk2 := c.ReduceScatterHalfAsync(hshard, hfull)
	tk2.Wait()
	tk1.Wait()
	emit(fdec...)
	for _, h := range hshard {
		emit(h.Float32())
	}

	// Rooted half reduce with fp16 rounding and decode.
	var rdec []float32
	if rank == root {
		rdec = make([]float32, n)
	}
	rt := c.ReduceHalfDecodeAsync(rdec, hsrc, root)
	rt.Wait()
	emit(rdec...)

	c.Barrier()
	return sig
}

func gatherTrajectories(t *testing.T, size, n int, topo *Topology, sock bool) [][]float32 {
	t.Helper()
	out := make([][]float32, size)
	body := func(c *Comm) { out[c.Rank()] = trajectory(c, n) }
	if sock {
		runSockWorld(t, size, topo, body)
	} else {
		w, err := New(WorldOptions{Size: size, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				body(w.Comm(rank))
			}(r)
		}
		wg.Wait()
	}
	return out
}

// TestSockMatchesMemBitIdentical is the transport-neutrality contract at
// the collective level: the same trajectory over the socket transport and
// the in-memory transport delivers byte-identical results on every rank,
// for flat and hierarchical topologies.
func TestSockMatchesMemBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		size int
		topo *Topology
	}{
		{"flat4", 4, nil},
		{"hier2x2", 4, &Topology{Nodes: 2, NodeSize: 2}},
		{"flat3", 3, nil},
		{"solo", 1, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := gatherTrajectories(t, tc.size, 6, tc.topo, false)
			sock := gatherTrajectories(t, tc.size, 6, tc.topo, true)
			for r := 0; r < tc.size; r++ {
				if len(mem[r]) != len(sock[r]) {
					t.Fatalf("rank %d: signature lengths differ: mem %d sock %d", r, len(mem[r]), len(sock[r]))
				}
				for i := range mem[r] {
					if math.Float32bits(mem[r][i]) != math.Float32bits(sock[r][i]) {
						t.Fatalf("rank %d: signature[%d] differs: mem %x sock %x", r, i,
							math.Float32bits(mem[r][i]), math.Float32bits(sock[r][i]))
					}
				}
			}
		})
	}
}

// TestSockBroadcastRootBufferUntouched pins the result-frame elision rules:
// the broadcast root's buffer and a gather non-root's dst must come back
// from a socket collective exactly as the in-memory transport leaves them.
func TestSockBroadcastRootBufferUntouched(t *testing.T) {
	runSockWorld(t, 3, nil, func(c *Comm) {
		buf := []float32{1, 2, 3}
		if c.Rank() == 2 {
			buf = []float32{9, 8, 7}
		}
		c.Broadcast(buf, 2)
		want := []float32{9, 8, 7}
		for i := range buf {
			if buf[i] != want[i] {
				panic(fmt.Sprintf("rank %d broadcast[%d] = %g", c.Rank(), i, buf[i]))
			}
		}
		// Non-root gather dst is ignored and left untouched.
		dst := []float32{-1, -2, -3}
		if c.Rank() == 1 {
			dst = make([]float32, 3)
		}
		c.Gather(dst, []float32{float32(c.Rank())}, 1)
		if c.Rank() != 1 && (dst[0] != -1 || dst[1] != -2 || dst[2] != -3) {
			panic(fmt.Sprintf("rank %d gather clobbered non-root dst: %v", c.Rank(), dst))
		}
		if c.Rank() == 1 && (dst[0] != 0 || dst[1] != 1 || dst[2] != 2) {
			panic(fmt.Sprintf("gather root dst = %v", dst))
		}
	})
}

// TestSockTrafficMeasuredOnHub verifies the hub records real wire bytes and
// wall time, split intra/inter-node by the topology.
func TestSockTrafficMeasuredOnHub(t *testing.T) {
	topo := &Topology{Nodes: 2, NodeSize: 2}
	var hub TrafficStats
	runSockWorld(t, 4, topo, func(c *Comm) {
		buf := make([]float32, 16)
		buf[0] = float32(c.Rank())
		c.AllReduce(buf)
		c.Barrier()
		if c.Rank() == 0 {
			hub = c.TrafficTotal()
		}
	})
	if hub.MeasBytes() == 0 {
		t.Fatal("hub measured no wire bytes")
	}
	if hub.MeasIntraBytes == 0 || hub.MeasInterBytes == 0 {
		t.Fatalf("expected both intra and inter measured bytes, got %d/%d", hub.MeasIntraBytes, hub.MeasInterBytes)
	}
	if hub.MeasSeconds <= 0 {
		t.Fatal("hub measured no wall time")
	}
}

// TestSockCollectiveMismatchPanics: a rank calling a different collective
// than the rest of the world must panic, same as the in-memory transport.
func TestSockCollectiveMismatchPanics(t *testing.T) {
	addr := freeAddr(t)
	var wg sync.WaitGroup
	panicked := make([]bool, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					panicked[rank] = true
				}
			}()
			tr, err := NewSockTransport(SockConfig{Rank: rank, Size: 2, Coord: addr, DialTimeout: 5 * time.Second})
			if err != nil {
				return
			}
			defer tr.Close()
			w, err := New(WorldOptions{Size: 2, Transport: tr})
			if err != nil {
				return
			}
			c := w.Comm(rank)
			if rank == 0 {
				c.AllReduce([]float32{1})
			} else {
				c.Barrier()
			}
		}(r)
	}
	wg.Wait()
	if !panicked[0] {
		t.Error("hub did not panic on collective mismatch")
	}
}

// TestSockBootstrapErrors covers handshake validation.
func TestSockBootstrapErrors(t *testing.T) {
	if _, err := NewSockTransport(SockConfig{Rank: 2, Size: 2, Coord: "x"}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := NewSockTransport(SockConfig{Rank: 0, Size: 0, Coord: "x"}); err == nil {
		t.Error("zero size accepted")
	}
	// Leaf dialing an address nobody listens on times out.
	addr := freeAddr(t)
	start := time.Now()
	if _, err := NewSockTransport(SockConfig{Rank: 1, Size: 2, Coord: addr, DialTimeout: 300 * time.Millisecond}); err == nil {
		t.Error("dial to dead hub succeeded")
	} else if time.Since(start) > 5*time.Second {
		t.Errorf("dial retry ignored DialTimeout: %v", time.Since(start))
	}
	// World size disagreement between hub and leaf.
	addr2 := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		_, err := NewSockTransport(SockConfig{Rank: 0, Size: 2, Coord: addr2, DialTimeout: 3 * time.Second})
		done <- err
	}()
	_, leafErr := NewSockTransport(SockConfig{Rank: 1, Size: 3, Coord: addr2, DialTimeout: 3 * time.Second})
	hubErr := <-done
	if hubErr == nil && leafErr == nil {
		t.Error("size mismatch not detected by either side")
	}
}
