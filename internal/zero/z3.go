package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/tensor"
)

// Z3Engine implements ZeRO stage 3: every model state — parameters included
// — is partitioned across the data-parallel ranks (bandwidth-centric
// partitioning, paper Sec. 6.1: each individual parameter is sliced 1/dp per
// rank rather than owned by a single rank). Hooks injected through the
// module runtime gather a submodule's parameters right before its
// forward/backward and re-partition them right after (paper Sec. 7.1);
// parameters accessed across module boundaries are auto-registered as
// external parameters through the on-demand Data() interception.
//
// The engine is deliberately synchronous; internal/core adds the infinity
// offload engine, prefetch/overlap and NVMe placement on top of the same
// hook skeleton.
//
// All transient step buffers — gathered fp16/fp32 parameter views, padded
// fp16 gradient buffers, reduced fp32 shards, gradient accumulators — cycle
// through per-engine scratch arenas, so a steady-state step performs zero
// heap allocations in the engine+comm+tensor hot path (asserted by
// TestSteadyStateZeroAllocs).
type Z3Engine struct {
	cfg    Config
	c      *comm.Comm
	g      Model
	rt     *module.Runtime
	params []*module.Param

	// owned lists the parameters whose reduced gradient and optimizer shard
	// this rank holds: all of them under 1/dp slicing, the round-robin
	// subset under owner-rank broadcast partitioning.
	owned []*module.Param
	// bcastOwner maps each parameter to its owning rank under
	// PartitionBroadcast (unused for slicing).
	bcastOwner map[*module.Param]int

	// shard is the authoritative fp16 parameter shard held by this rank:
	// the padded 1/dp slice under PartitionSlice, the whole parameter on
	// its owner (absent elsewhere) under PartitionBroadcast.
	shard map[*module.Param][]tensor.Half
	// master/adam are this rank's fp32 optimizer shard.
	master map[*module.Param][]float32
	adam   map[*module.Param]*optim.Adam
	// gradShard holds the reduced (still loss-scaled) fp32 gradient shard
	// between backward and the optimizer phase.
	gradShard map[*module.Param][]float32

	scaler *optim.LossScaler

	// f32/f16 are the engine's scratch arenas; every hot-path buffer is
	// drawn from and returned to them.
	f32 *mem.Arena[float32]
	f16 *mem.Arena[tensor.Half]

	// owner maps a param to its owning module, and external records params
	// auto-registered against modules that access them across boundaries.
	owner    map[*module.Param]module.Module
	external map[module.Module][]*module.Param
	active   []module.Module // current hook scope stack

	// Overlap-centric pieces (paper Sec. 6.2), active when the config sets
	// Overlap (+ PrefetchDepth for the gather prefetcher).
	prefetch       *gatherPrefetcher
	pendingReduces []overlap.Pending[*module.Param]

	// Reused step scratch (gradient-shard list, micro-batch wrappers,
	// allocation meter).
	shardsBuf          [][]float32
	microTok, microTgt [][]int
	meter              AllocMeter

	// Observability.
	Gathers         int      // allgather operations issued
	OnDemandGathers int      // gathers triggered by external-parameter access
	PrefetchIssued  int      // speculative allgathers issued
	PrefetchHits    int      // gathers served by a speculative allgather
	AsyncReduces    int      // reduce-scatters launched asynchronously
	AllocsPerStep   uint64   // heap allocations during the last step (process-global mallocs delta)
	GatherTrace     []string // module names in first-iteration gather order
	traceDone       bool
}

// NewZ3Engine builds the stage-3 engine for one rank and performs
// partitioned initialization: each parameter's full init values exist only
// transiently before being sharded (paper Sec. 7.2).
func NewZ3Engine(cfg Config, c *comm.Comm, g Model) (*Z3Engine, error) {
	cfg.setDefaults()
	cfg.Stage = Stage3
	e := &Z3Engine{
		cfg:        cfg,
		c:          c,
		g:          g,
		params:     module.AllParams(g),
		bcastOwner: make(map[*module.Param]int),
		shard:      make(map[*module.Param][]tensor.Half),
		master:     make(map[*module.Param][]float32),
		adam:       make(map[*module.Param]*optim.Adam),
		gradShard:  make(map[*module.Param][]float32),
		f32:        mem.NewArena[float32](),
		f16:        mem.NewArena[tensor.Half](),
		owner:      make(map[*module.Param]module.Module),
		external:   make(map[module.Module][]*module.Param),
	}
	e.rt = module.NewRuntime(e)
	e.rt.SetBackend(cfg.Backend)
	e.rt.SetStepArena(mem.NewStepArena())
	c.SetCodecBackend(cfg.Backend)
	if cfg.Topology != nil {
		if err := c.SetTopology(cfg.Topology); err != nil {
			return nil, err
		}
	}
	if cfg.DynamicLossScale {
		e.scaler = optim.NewLossScaler(cfg.LossScale)
	} else {
		e.scaler = optim.StaticLossScaler(cfg.LossScale)
	}
	dp := c.Size()
	module.Walk(g, func(m module.Module) {
		for _, p := range m.Params() {
			e.owner[p] = m
		}
	})
	for i, p := range e.params {
		p.SetOnDemand(e.onDemand)
		p.SetGradScratch(e.f32.Get, e.f32.Put)
		if cfg.Partition == PartitionBroadcast {
			// Owner-rank partitioning: the whole parameter — fp16 weights,
			// fp32 master and optimizer state — lives on one rank.
			owner := i % dp
			e.bcastOwner[p] = owner
			if owner != c.Rank() {
				continue
			}
			full := model.InitValues(p, cfg.Seed)
			shard := make([]tensor.Half, p.Len())
			tensor.EncodeHalf(shard, full)
			e.shard[p] = shard
			e.master[p] = full
			e.adam[p] = optim.NewAdam(p.Len(), cfg.Adam).WithBackend(e.rt.Backend())
			e.owned = append(e.owned, p)
			continue
		}
		full := model.InitValues(p, cfg.Seed) // transient full copy
		s := comm.ShardLen(p.Len(), dp)
		lo := c.Rank() * s
		shard := make([]tensor.Half, s)
		fs := make([]float32, s)
		for j := 0; j < s; j++ {
			if lo+j < len(full) {
				fs[j] = full[lo+j]
			}
		}
		tensor.EncodeHalf(shard, fs)
		e.shard[p] = shard
		e.master[p] = fs
		e.adam[p] = optim.NewAdam(s, cfg.Adam).WithBackend(e.rt.Backend())
		e.owned = append(e.owned, p)
	}
	if cfg.Overlap && cfg.PrefetchDepth > 0 {
		e.prefetch = newGatherPrefetcher(e, cfg.PrefetchDepth)
	}
	return e, nil
}

// Model returns the wrapped model.
func (e *Z3Engine) Model() Model { return e.g }

// Runtime returns the hook runtime; all forward/backward calls must go
// through it.
func (e *Z3Engine) Runtime() *module.Runtime { return e.rt }

// LossScale returns the current loss scale.
func (e *Z3Engine) LossScale() float64 { return e.scaler.Scale }

// ShardFor exposes this rank's fp16 shard of p (read-only; used by tests
// and by internal/core).
func (e *Z3Engine) ShardFor(p *module.Param) []tensor.Half { return e.shard[p] }

// CommTraffic returns the collective fabric's cumulative modeled traffic
// per collective kind (world-wide; see comm.TrafficStats).
func (e *Z3Engine) CommTraffic() map[string]comm.TrafficStats { return e.c.Traffic() }

// CommTrafficTotal returns the all-kinds traffic total.
func (e *Z3Engine) CommTrafficTotal() comm.TrafficStats { return e.c.TrafficTotal() }

// gather materializes p's full fp16-rounded values: a fused
// allgather+decode of the 1/dp slices under PartitionSlice (the collective
// delivers float32 directly, skipping the full-size intermediate fp16 pass),
// a broadcast from the owning rank under PartitionBroadcast (fp16 on the
// wire, decoded here). With prefetch enabled, a speculatively issued
// collective is claimed instead of stalling on a fresh one, and collectives
// for the next trace entries are issued before returning to compute. All
// transient buffers cycle through the engine arenas.
//
//zinf:hotpath
func (e *Z3Engine) gather(p *module.Param) {
	if p.Materialized() {
		return
	}
	if e.prefetch != nil {
		e.prefetch.trace.Observe(p)
	}
	dp := e.c.Size()
	var full []float32
	var fullH []tensor.Half
	if e.prefetch != nil {
		full, fullH = e.prefetch.claim(p)
	}
	if full == nil && fullH == nil {
		if e.cfg.Partition == PartitionBroadcast {
			fullH, _ = e.bcastFullH(p)
			e.c.BroadcastHalf(fullH, e.bcastOwner[p])
		} else {
			s := comm.ShardLen(p.Len(), dp)
			full = e.f32.Get(s * dp)
			e.c.AllGatherHalfDecode(full, e.shard[p])
		}
	}
	if full == nil {
		full = e.f32.Get(p.Len())
		e.rt.Backend().DecodeHalf(full, fullH[:p.Len()])
		e.f16.Put(fullH)
	} else {
		full = full[:p.Len()]
	}
	p.SetData(full)
	e.Gathers++
	if !e.traceDone {
		name := "?"
		if m := e.owner[p]; m != nil {
			name = m.Name()
		}
		//zinf:allow hotpathalloc trace strings are recorded on the first step only (guarded by !e.traceDone)
		e.GatherTrace = append(e.GatherTrace, name+"/"+p.Name)
	}
	if e.prefetch != nil {
		e.prefetch.issue()
	}
}

// bcastFullH draws a full-length fp16 view buffer from the arena and fills
// it with this rank's contribution to p's owner broadcast — the owner's
// whole shard; stale arena contents elsewhere, which the broadcast
// overwrites. Shared by the sync gather, the prefetcher and FullParams so
// the owner-copy sequence exists once.
//
//zinf:hotpath
func (e *Z3Engine) bcastFullH(p *module.Param) ([]tensor.Half, int) {
	owner := e.bcastOwner[p]
	fullH := e.f16.Get(p.Len())
	if e.c.Rank() == owner {
		copy(fullH, e.shard[p])
	}
	return fullH, owner
}

// releaseParam re-partitions p, recycling the gathered fp32 view.
//
//zinf:hotpath
func (e *Z3Engine) releaseParam(p *module.Param) {
	if !p.Materialized() {
		return
	}
	e.f32.Put(p.Data())
	p.ReleaseData()
}

// onDemand is the Param.Data() interception: gather now and register the
// parameter as external to the module currently executing.
//
//zinf:hotpath
func (e *Z3Engine) onDemand(p *module.Param) {
	e.gather(p)
	e.OnDemandGathers++
	if len(e.active) == 0 {
		return
	}
	m := e.active[len(e.active)-1]
	if e.owner[p] == m {
		return
	}
	for _, q := range e.external[m] {
		if q == p {
			return
		}
	}
	e.external[m] = append(e.external[m], p) //zinf:allow hotpathalloc appends once per newly-discovered external param; steady state returns from the scan above
}

// PreForward implements module.Hooks: gather own and known-external params.
//
//zinf:hotpath
func (e *Z3Engine) PreForward(m module.Module) {
	e.active = append(e.active, m)
	for _, p := range m.Params() {
		e.gather(p)
	}
	for _, p := range e.external[m] {
		e.gather(p)
	}
}

// PostForward implements module.Hooks: re-partition params used here.
//
//zinf:hotpath
func (e *Z3Engine) PostForward(m module.Module) {
	e.active = e.active[:len(e.active)-1]
	for _, p := range m.Params() {
		e.releaseParam(p)
	}
	for _, p := range e.external[m] {
		if !e.inScope(p) {
			e.releaseParam(p)
		}
	}
}

// PreBackward implements module.Hooks.
//
//zinf:hotpath
func (e *Z3Engine) PreBackward(m module.Module) {
	e.active = append(e.active, m)
	for _, p := range m.Params() {
		e.gather(p)
	}
	for _, p := range e.external[m] {
		e.gather(p)
	}
}

// PostBackward implements module.Hooks: reduce each parameter's gradient —
// a fused reduce-scatter+decode of the 1/dp slices, or a fused
// reduce+decode to the owning rank under PartitionBroadcast — then
// re-partition.
//
//zinf:hotpath
func (e *Z3Engine) PostBackward(m module.Module) {
	e.active = e.active[:len(e.active)-1]
	for _, p := range m.Params() {
		if p.HasGrad() {
			e.reduceGrad(p)
			p.ReleaseGrad()
		}
		e.releaseParam(p)
	}
	for _, p := range e.external[m] {
		if !e.inScope(p) {
			e.releaseParam(p)
		}
	}
}

// reduceGrad launches (or performs) the strategy's gradient reduction for
// p. Both strategies accumulate per element in rank order with fp32
// arithmetic and round through binary16, so their reduced values are
// bit-identical; they differ only in where the result lands (every rank's
// slice vs the owner's full vector) and which links carry the bytes.
//
//zinf:hotpath
func (e *Z3Engine) reduceGrad(p *module.Param) {
	dp := e.c.Size()
	n := p.Len()
	if e.cfg.Partition == PartitionBroadcast {
		owner := e.bcastOwner[p]
		gh := e.f16.Get(n)
		e.rt.Backend().EncodeHalf(gh, p.Grad())
		var gs []float32
		if e.c.Rank() == owner {
			gs = e.f32.Get(n)
		}
		if e.cfg.Overlap {
			tk := e.c.ReduceHalfDecodeAsync(gs, gh, owner)
			e.pendingReduces = append(e.pendingReduces,
				overlap.Pending[*module.Param]{Key: p, Ticket: tk, Shard: gs, GH: gh})
			e.AsyncReduces++
		} else {
			e.c.ReduceHalfDecode(gs, gh, owner)
			e.f16.Put(gh)
			if gs != nil {
				e.foldGradShard(p, gs)
			}
		}
		return
	}
	padded := comm.PaddedLen(n, dp)
	gh := e.f16.Get(padded)
	e.rt.Backend().EncodeHalf(gh[:n], p.Grad())
	clear(gh[n:])
	gs := e.f32.Get(padded / dp)
	if e.cfg.Overlap {
		// Launch asynchronously and keep computing the rest of the
		// backward pass; drained before the overflow check.
		tk := e.c.ReduceScatterHalfDecodeAsync(gs, gh)
		e.pendingReduces = append(e.pendingReduces,
			overlap.Pending[*module.Param]{Key: p, Ticket: tk, Shard: gs, GH: gh})
		e.AsyncReduces++
	} else {
		e.c.ReduceScatterHalfDecode(gs, gh)
		e.f16.Put(gh)
		e.foldGradShard(p, gs)
	}
}

// foldGradShard accumulates a freshly reduced fp32 shard into the
// per-parameter gradient shard (micro-batch accumulation), recycling the
// buffer when an accumulator already exists.
//
//zinf:hotpath
func (e *Z3Engine) foldGradShard(p *module.Param, gs []float32) {
	if acc := e.gradShard[p]; acc != nil {
		e.rt.Backend().Axpy(1, gs, acc)
		e.f32.Put(gs)
	} else {
		e.gradShard[p] = gs //zinf:allow hotpathalloc keyset fixed after the first micro-batch; steady state folds into the existing shard
	}
}

// inScope reports whether p belongs to (or is external to) a module still
// on the active stack — if so it must stay materialized.
//
//zinf:hotpath
func (e *Z3Engine) inScope(p *module.Param) bool {
	for _, m := range e.active {
		if e.owner[p] == m {
			return true
		}
		for _, q := range e.external[m] {
			if q == p {
				return true
			}
		}
	}
	return false
}

// Step runs one training step.
//
//zinf:hotpath
func (e *Z3Engine) Step(tokens, targets []int, batch int) StepResult {
	tok, tgt := MicroBatch(&e.microTok, &e.microTgt, tokens, targets)
	return e.StepAccum(tok, tgt, batch)
}

// StepAccum runs one training step with gradient accumulation over
// micro-batches (reduce per micro-batch, accumulate fp32 shards).
//
//zinf:hotpath
func (e *Z3Engine) StepAccum(microTokens, microTargets [][]int, batchPerMicro int) StepResult {
	if len(microTokens) == 0 || len(microTokens) != len(microTargets) {
		panic("zero: StepAccum needs matching non-empty micro-batches")
	}
	e.meter.Begin()
	dp := e.c.Size()
	micros := len(microTokens)
	scaleUsed := e.scaler.Scale

	var lossSum float64
	for m := 0; m < micros; m++ {
		if e.prefetch != nil {
			e.prefetch.trace.BeginStep()
		}
		// The arena step brackets the micro-batch. EndStep waits for the
		// in-loop drain: the async reduce-scatters hold engine-arena fp16
		// buffers, never step-arena activations, but draining first keeps
		// the invariant simple — nothing launched in this micro-batch is in
		// flight when the activations are reclaimed.
		e.rt.BeginStep()
		lossSum += e.g.ForwardLoss(e.rt, microTokens[m], microTargets[m], batchPerMicro)
		e.g.BackwardLoss(e.rt, float32(scaleUsed))
		if e.prefetch != nil {
			e.prefetch.endStep()
		}
		// Fold this micro-batch's async reduce-scatters now (issue order),
		// so retained gradient buffers never exceed one micro-batch.
		e.drainReduces()
		e.rt.EndStep()
	}
	globalLoss := e.c.AllReduceScalar(lossSum/float64(micros)) / float64(dp)
	e.traceDone = true

	// Drain barrier: every asynchronously launched reduce-scatter must land
	// before gradients are inspected for overflow.
	e.drainReduces()

	shards := e.shardsBuf[:0]
	for _, p := range e.owned {
		shards = append(shards, e.gradShard[p])
	}
	e.shardsBuf = shards
	if GlobalOverflow(e.c, e.rt.Backend(), shards) {
		e.scaler.Update(true)
		e.dropGradShards()
		return e.finishStep(StepResult{Loss: globalLoss, Skipped: true, LossScale: e.scaler.Scale})
	}

	inv := float32(1 / (scaleUsed * float64(dp) * float64(micros)))
	for _, p := range e.owned {
		gs := e.gradShard[p]
		if gs == nil {
			panic("zero: missing gradient shard for " + p.Name)
		}
		e.rt.Backend().Scale(inv, gs)
	}
	if f := GlobalClipFactor(e.c, e.cfg.ClipNorm, shards); f != 1 {
		for _, p := range e.owned {
			e.rt.Backend().Scale(float32(f), e.gradShard[p])
		}
	}
	for _, p := range e.owned {
		gs := e.gradShard[p]
		e.adam[p].Step(e.master[p], gs)
		e.rt.Backend().EncodeHalf(e.shard[p], e.master[p])
		e.f32.Put(gs)
		delete(e.gradShard, p)
	}
	e.scaler.Update(false)
	return e.finishStep(StepResult{Loss: globalLoss, LossScale: e.scaler.Scale})
}

// dropGradShards recycles and forgets every gradient shard (overflow skip).
//
//zinf:hotpath
func (e *Z3Engine) dropGradShards() {
	for _, p := range e.owned {
		if gs := e.gradShard[p]; gs != nil {
			e.f32.Put(gs)
			delete(e.gradShard, p)
		}
	}
}

// finishStep records the step's process-global allocation count.
//
//zinf:hotpath
func (e *Z3Engine) finishStep(res StepResult) StepResult {
	e.AllocsPerStep = e.meter.End()
	return res
}

// LoadParams replaces the model weights (sharding each full vector to this
// rank's slice) and resets the optimizer state. Every rank must call it with
// identical values.
func (e *Z3Engine) LoadParams(values map[string][]float32) error {
	dp := e.c.Size()
	for _, p := range e.params {
		v, ok := values[p.Name]
		if !ok {
			return fmt.Errorf("zero: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != p.Len() {
			return fmt.Errorf("zero: checkpoint parameter %q has %d elems, want %d", p.Name, len(v), p.Len())
		}
		if e.cfg.Partition == PartitionBroadcast {
			if e.bcastOwner[p] != e.c.Rank() {
				continue
			}
			rounded := tensor.RoundTripHalf(append([]float32(nil), v...))
			copy(e.master[p], rounded)
			tensor.EncodeHalf(e.shard[p], e.master[p])
			e.adam[p] = optim.NewAdam(len(e.master[p]), e.cfg.Adam).WithBackend(e.rt.Backend())
			continue
		}
		rounded := tensor.RoundTripHalf(append([]float32(nil), v...))
		comm.Shard(e.master[p], rounded, e.c.Rank(), dp)
		tensor.EncodeHalf(e.shard[p], e.master[p])
		e.adam[p] = optim.NewAdam(len(e.master[p]), e.cfg.Adam).WithBackend(e.rt.Backend())
	}
	return nil
}

// FullParams gathers every parameter's current fp16 values (collective:
// all ranks must call it together). The transient gathered fp16 view cycles
// through the engine's scratch arena — only the returned float32 vectors
// are fresh allocations (asserted by TestFullParamsGatherScratchPooled).
func (e *Z3Engine) FullParams() map[string][]float32 {
	dp := e.c.Size()
	out := make(map[string][]float32, len(e.params))
	for _, p := range e.params {
		v := make([]float32, p.Len())
		if e.cfg.Partition == PartitionBroadcast {
			fullH, owner := e.bcastFullH(p)
			e.c.BroadcastHalf(fullH, owner)
			tensor.DecodeHalf(v, fullH[:p.Len()])
			e.f16.Put(fullH)
		} else {
			s := comm.ShardLen(p.Len(), dp)
			full := e.f32.Get(s * dp)
			e.c.AllGatherHalfDecode(full, e.shard[p])
			copy(v, full[:p.Len()])
			e.f32.Put(full)
		}
		out[p.Name] = v
	}
	return out
}

// MaxLiveParamBytes returns the largest fp16 footprint any single gathered
// parameter would occupy — the stage-3 working-set contribution.
func (e *Z3Engine) MaxLiveParamBytes() int64 {
	var m int64
	for _, p := range e.params {
		if b := p.FP16Bytes(); b > m {
			m = b
		}
	}
	return m
}

var _ module.Hooks = (*Z3Engine)(nil)
