package zero

import (
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/module"
	"repro/internal/tensor"
)

// The zero-allocation regression test drives the real Z3 engine (overlap +
// prefetch on) with a stub model whose forward/backward reuse preallocated
// tensors, so every heap allocation observed during a step is attributable
// to the engine+comm+tensor hot path: gathers, async collectives, gradient
// reduction, the optimizer phase and loss-scale bookkeeping. After a warm-up
// step fills the scratch arenas, the op pool and the learned gather trace, a
// steady-state step must perform zero heap allocations.

// afLayer is an allocation-free Layer: y = 0.9*x + 0.1*w elementwise, with
// dW += 0.5*dy and dx = 0.9*dy, all into preallocated buffers. Accessing
// p.Data()/p.Grad() exercises the engine's gather and gradient paths.
type afLayer struct {
	module.Base
	p   *module.Param
	out *tensor.Tensor
	dx  *tensor.Tensor
}

func newAFLayer(name string, n int) *afLayer {
	l := &afLayer{
		p:   module.NewParam(name+".w", 0.02, n),
		out: tensor.New(tensor.FP32, n),
		dx:  tensor.New(tensor.FP32, n),
	}
	l.ModName = name
	l.OwnParams = []*module.Param{l.p}
	return l
}

func (l *afLayer) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	w := l.p.Data()
	xd := x.Float32s()
	yd := l.out.Float32s()
	for i := range yd {
		yd[i] = 0.9*xd[i] + 0.1*w[i]
	}
	return l.out
}

func (l *afLayer) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	g := l.p.Grad()
	dyd := dy.Float32s()
	for i := range g {
		g[i] += 0.5 * dyd[i]
	}
	dxd := l.dx.Float32s()
	for i := range dxd {
		dxd[i] = 0.9 * dyd[i]
	}
	return l.dx
}

// afModel chains afLayers and implements zero.Model without allocating in
// ForwardLoss/BackwardLoss.
type afModel struct {
	module.Base
	layers []*afLayer
	x, dy  *tensor.Tensor
}

func newAFModel(layers, n int) *afModel {
	m := &afModel{x: tensor.New(tensor.FP32, n), dy: tensor.New(tensor.FP32, n)}
	m.ModName = "afmodel"
	for i := 0; i < layers; i++ {
		l := newAFLayer("layer"+string(rune('a'+i)), n)
		m.layers = append(m.layers, l)
		m.Kids = append(m.Kids, l)
	}
	xd := m.x.Float32s()
	for i := range xd {
		xd[i] = float32(i%7) * 0.25
	}
	return m
}

func (m *afModel) ForwardLoss(rt *module.Runtime, tokens, targets []int, batch int) float64 {
	h := m.x
	for _, l := range m.layers {
		h = rt.Forward(l, h)
	}
	var s float64
	for _, v := range h.Float32s() {
		s += float64(v)
	}
	return s / float64(h.Len())
}

func (m *afModel) BackwardLoss(rt *module.Runtime, scale float32) {
	dyd := m.dy.Float32s()
	for i := range dyd {
		dyd[i] = scale * 0.001
	}
	d := m.dy
	for i := len(m.layers) - 1; i >= 0; i-- {
		d = rt.Backward(m.layers[i], d)
	}
}

var _ Model = (*afModel)(nil)
var _ module.Layer = (*afLayer)(nil)

// TestSteadyStateZeroAllocs asserts that after warm-up, a Z3 training step
// with overlap and gather prefetch enabled performs zero heap allocations in
// the engine+comm+tensor hot path. Each measured window spans one full
// world-wide step (all ranks inside, fenced by barriers) and records the
// process-global mallocs delta. Hot-path allocations are deterministic — an
// arena or op-pool miss would recur in every window — so the assertion takes
// the minimum over several windows, which filters the Go runtime's own
// sporadic, scheduling-dependent bookkeeping allocations (unprofiled ~48-byte
// park/GC internals) without masking a real engine leak.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const (
		ranks    = 2
		paramLen = 51 // not divisible by ranks: exercises padded-tail zeroing
		layers   = 4
		warmup   = 3
		windows  = 4
	)
	minAllocs := ^uint64(0)
	minPerStep := ^uint64(0)
	comm.Run(ranks, func(c *comm.Comm) {
		m := newAFModel(layers, paramLen)
		e, err := NewZ3Engine(Config{LossScale: 1, Seed: 11, Overlap: true, PrefetchDepth: 2}, c, m)
		if err != nil {
			t.Error(err)
			return
		}
		tok := make([]int, 1)
		tgt := make([]int, 1)
		for i := 0; i < warmup; i++ {
			if res := e.Step(tok, tgt, 1); res.Skipped {
				t.Error("warm-up step skipped (unexpected overflow)")
				return
			}
		}
		// Settle the heap once; the barrier keeps every rank's warm-up tail
		// out of the first window.
		c.Barrier()
		if c.Rank() == 0 {
			runtime.GC()
		}
		var ms0, ms1 runtime.MemStats
		for w := 0; w < windows; w++ {
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms0)
			}
			// Nobody enters the window before ms0 is read.
			c.Barrier()
			e.Step(tok, tgt, 1)
			// Every rank's step lands before ms1 is read.
			c.Barrier()
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms1)
				if d := ms1.Mallocs - ms0.Mallocs; d < minAllocs {
					minAllocs = d
				}
				if e.AllocsPerStep < minPerStep {
					minPerStep = e.AllocsPerStep
				}
			}
		}
	})
	if minAllocs != 0 {
		t.Fatalf("every steady-state Z3 step performed heap allocations (min %d over %d windows), want 0", minAllocs, windows)
	}
	// The engine's own per-step counter must agree.
	if minPerStep != 0 {
		t.Fatalf("Z3Engine.AllocsPerStep min = %d after steady state, want 0", minPerStep)
	}
}

// TestAFModelTrainsBitIdenticallyAcrossOverlap sanity-checks the stub model:
// the allocation-free path must produce the same trajectory with and without
// overlap, so the zero-alloc test is exercising the real engine semantics.
func TestAFModelLossMatchesAcrossOverlap(t *testing.T) {
	losses := func(overlapOn bool) []float64 {
		var out []float64
		comm.Run(2, func(c *comm.Comm) {
			m := newAFModel(3, 40)
			cfg := Config{LossScale: 1, Seed: 5}
			if overlapOn {
				cfg.Overlap = true
				cfg.PrefetchDepth = 2
			}
			e, err := NewZ3Engine(cfg, c, m)
			if err != nil {
				t.Error(err)
				return
			}
			tok := make([]int, 1)
			tgt := make([]int, 1)
			var l []float64
			for i := 0; i < 4; i++ {
				l = append(l, e.Step(tok, tgt, 1).Loss)
			}
			if c.Rank() == 0 {
				out = l
			}
		})
		return out
	}
	a, b := losses(false), losses(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: sync loss %v != overlap loss %v", i, a[i], b[i])
		}
	}
}
