package zero

import (
	"runtime"
	"testing"

	"repro/internal/comm"
)

// The zero-allocation regression test drives the real Z3 engine (overlap +
// prefetch on) with the allocation-free stub model (stub.go), so every heap
// allocation observed during a step is attributable to the engine+comm+
// tensor hot path: gathers, async collectives, gradient reduction, the
// optimizer phase and loss-scale bookkeeping. After a warm-up step fills
// the scratch arenas, the op pool and the learned gather trace, a
// steady-state step must perform zero heap allocations.

// TestSteadyStateZeroAllocs asserts that after warm-up, a Z3 training step
// with overlap and gather prefetch enabled performs zero heap allocations in
// the engine+comm+tensor hot path. Each measured window spans one full
// world-wide step (all ranks inside, fenced by barriers) and records the
// process-global mallocs delta. Hot-path allocations are deterministic — an
// arena or op-pool miss would recur in every window — so the assertion takes
// the minimum over several windows, which filters the Go runtime's own
// sporadic, scheduling-dependent bookkeeping allocations (unprofiled ~48-byte
// park/GC internals) without masking a real engine leak.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const (
		ranks    = 2
		paramLen = 51 // not divisible by ranks: exercises padded-tail zeroing
		layers   = 4
		warmup   = 3
		windows  = 4
	)
	minAllocs := ^uint64(0)
	minPerStep := ^uint64(0)
	comm.Run(ranks, func(c *comm.Comm) {
		m := NewAllocFreeStub(layers, paramLen)
		e, err := NewZ3Engine(Config{LossScale: 1, Seed: 11, Overlap: true, PrefetchDepth: 2}, c, m)
		if err != nil {
			t.Error(err)
			return
		}
		tok := make([]int, 1)
		tgt := make([]int, 1)
		for i := 0; i < warmup; i++ {
			if res := e.Step(tok, tgt, 1); res.Skipped {
				t.Error("warm-up step skipped (unexpected overflow)")
				return
			}
		}
		// Settle the heap once; the barrier keeps every rank's warm-up tail
		// out of the first window.
		c.Barrier()
		if c.Rank() == 0 {
			runtime.GC()
		}
		var ms0, ms1 runtime.MemStats
		for w := 0; w < windows; w++ {
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms0)
			}
			// Nobody enters the window before ms0 is read.
			c.Barrier()
			e.Step(tok, tgt, 1)
			// Every rank's step lands before ms1 is read.
			c.Barrier()
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms1)
				if d := ms1.Mallocs - ms0.Mallocs; d < minAllocs {
					minAllocs = d
				}
				if e.AllocsPerStep < minPerStep {
					minPerStep = e.AllocsPerStep
				}
			}
		}
	})
	if minAllocs != 0 {
		t.Fatalf("every steady-state Z3 step performed heap allocations (min %d over %d windows), want 0", minAllocs, windows)
	}
	// The engine's own per-step counter must agree.
	if minPerStep != 0 {
		t.Fatalf("Z3Engine.AllocsPerStep min = %d after steady state, want 0", minPerStep)
	}
}

// TestAFModelTrainsBitIdenticallyAcrossOverlap sanity-checks the stub model:
// the allocation-free path must produce the same trajectory with and without
// overlap, so the zero-alloc test is exercising the real engine semantics.
func TestAFModelLossMatchesAcrossOverlap(t *testing.T) {
	losses := func(overlapOn bool) []float64 {
		var out []float64
		comm.Run(2, func(c *comm.Comm) {
			m := NewAllocFreeStub(3, 40)
			cfg := Config{LossScale: 1, Seed: 5}
			if overlapOn {
				cfg.Overlap = true
				cfg.PrefetchDepth = 2
			}
			e, err := NewZ3Engine(cfg, c, m)
			if err != nil {
				t.Error(err)
				return
			}
			tok := make([]int, 1)
			tgt := make([]int, 1)
			var l []float64
			for i := 0; i < 4; i++ {
				l = append(l, e.Step(tok, tgt, 1).Loss)
			}
			if c.Rank() == 0 {
				out = l
			}
		})
		return out
	}
	a, b := losses(false), losses(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: sync loss %v != overlap loss %v", i, a[i], b[i])
		}
	}
}
