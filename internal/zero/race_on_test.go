//go:build race

package zero

// raceEnabled reports that the race detector is instrumenting this build;
// its shadow-memory bookkeeping allocates, so the zero-allocation assertion
// is skipped under -race (the CI bench-smoke lane runs it uninstrumented).
const raceEnabled = true
