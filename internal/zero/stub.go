package zero

import (
	"repro/internal/module"
	"repro/internal/tensor"
)

// This file provides an allocation-free stub Model: elementwise layers
// whose forward/backward reuse preallocated tensors, so every heap
// allocation observed while the real engines train it is attributable to
// the engine+comm+tensor hot path — gathers, async collectives, gradient
// reduction, the optimizer phase and loss-scale bookkeeping. It backs both
// the TestSteadyStateZeroAllocs regression test and the stepalloc harness
// experiment's engine-path record, which CI hard-gates at zero
// (cmd/zinf-benchdiff).

// stubLayer is an allocation-free Layer: y = 0.9*x + 0.1*w elementwise,
// with dW += 0.5*dy and dx = 0.9*dy, all into preallocated buffers.
// Accessing p.Data()/p.Grad() exercises the engine's gather and gradient
// paths.
type stubLayer struct {
	module.Base
	p   *module.Param
	out *tensor.Tensor
	dx  *tensor.Tensor
}

func newStubLayer(name string, n int) *stubLayer {
	l := &stubLayer{
		p:   module.NewParam(name+".w", 0.02, n),
		out: tensor.New(tensor.FP32, n),
		dx:  tensor.New(tensor.FP32, n),
	}
	l.ModName = name
	l.OwnParams = []*module.Param{l.p}
	return l
}

// Forward implements module.Layer without allocating.
//
//zinf:hotpath
func (l *stubLayer) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	w := l.p.Data()
	xd := x.Float32s()
	yd := l.out.Float32s()
	for i := range yd {
		yd[i] = 0.9*xd[i] + 0.1*w[i]
	}
	return l.out
}

// Backward implements module.Layer without allocating.
//
//zinf:hotpath
func (l *stubLayer) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	g := l.p.Grad()
	dyd := dy.Float32s()
	for i := range g {
		g[i] += 0.5 * dyd[i]
	}
	dxd := l.dx.Float32s()
	for i := range dxd {
		dxd[i] = 0.9 * dyd[i]
	}
	return l.dx
}

// stubModel chains stubLayers and implements Model without allocating in
// ForwardLoss/BackwardLoss.
type stubModel struct {
	module.Base
	layers []*stubLayer
	x, dy  *tensor.Tensor
}

// NewAllocFreeStub builds the allocation-free stub model: layers
// elementwise layers of n parameters each, deterministic input.
func NewAllocFreeStub(layers, n int) Model {
	m := &stubModel{x: tensor.New(tensor.FP32, n), dy: tensor.New(tensor.FP32, n)}
	m.ModName = "afmodel"
	for i := 0; i < layers; i++ {
		l := newStubLayer("layer"+string(rune('a'+i)), n)
		m.layers = append(m.layers, l)
		m.Kids = append(m.Kids, l)
	}
	xd := m.x.Float32s()
	for i := range xd {
		xd[i] = float32(i%7) * 0.25
	}
	return m
}

// ForwardLoss implements Model: run the chain, return the mean output.
//
//zinf:hotpath
func (m *stubModel) ForwardLoss(rt *module.Runtime, tokens, targets []int, batch int) float64 {
	h := m.x
	for _, l := range m.layers {
		h = rt.Forward(l, h)
	}
	var s float64
	for _, v := range h.Float32s() {
		s += float64(v)
	}
	return s / float64(h.Len())
}

// BackwardLoss implements Model: constant upstream gradient through the
// chain in reverse.
//
//zinf:hotpath
func (m *stubModel) BackwardLoss(rt *module.Runtime, scale float32) {
	dyd := m.dy.Float32s()
	for i := range dyd {
		dyd[i] = scale * 0.001
	}
	d := m.dy
	for i := len(m.layers) - 1; i >= 0; i-- {
		d = rt.Backward(m.layers[i], d)
	}
}

var _ Model = (*stubModel)(nil)
var _ module.Layer = (*stubLayer)(nil)
