package zero

import (
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestFullStepZeroAllocs extends TestSteadyStateZeroAllocs from the engine
// path to the full training step: with the step-scoped activation arena
// installed, a steady-state step of the real GPT model — forward activations,
// backward grad temporaries, softmax/attention scratch, loss head — performs
// zero heap allocations, not just the engine+comm+tensor slice of it. The
// stub subtest keeps the engine-only contract pinned alongside. Same
// measurement discipline as the engine test: world-wide windows fenced by
// barriers, min over windows to filter the Go runtime's sporadic bookkeeping
// allocations, and the engine's own per-step counter must agree.
func TestFullStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	t.Run("stub", func(t *testing.T) {
		minAllocs, minPerStep := fullStepAllocFloor(t, func(c *comm.Comm) (func(), func() uint64, error) {
			m := NewAllocFreeStub(4, 51)
			e, err := NewZ3Engine(Config{LossScale: 1, Seed: 11, Overlap: true, PrefetchDepth: 2}, c, m)
			if err != nil {
				return nil, nil, err
			}
			tok := make([]int, 1)
			tgt := make([]int, 1)
			return func() { e.Step(tok, tgt, 1) }, func() uint64 { return e.AllocsPerStep }, nil
		})
		if minAllocs != 0 || minPerStep != 0 {
			t.Fatalf("stub full step: min mallocs %d, min AllocsPerStep %d, want 0/0", minAllocs, minPerStep)
		}
	})
	t.Run("gpt", func(t *testing.T) {
		mcfg := model.Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
		minAllocs, minPerStep := fullStepAllocFloor(t, func(c *comm.Comm) (func(), func() uint64, error) {
			g := model.MustGPT(mcfg)
			e, err := NewZ3Engine(Config{LossScale: 256, Seed: 42, Overlap: true, PrefetchDepth: 2}, c, g)
			if err != nil {
				return nil, nil, err
			}
			tok, tgt := model.SyntheticBatch(tensor.NewRNG(uint64(700+c.Rank())), mcfg, 2)
			return func() { e.Step(tok, tgt, 2) }, func() uint64 { return e.AllocsPerStep }, nil
		})
		if minAllocs != 0 {
			t.Fatalf("steady-state GPT step performed heap allocations (min %d over windows), want 0", minAllocs)
		}
		if minPerStep != 0 {
			t.Fatalf("Z3Engine.AllocsPerStep min = %d on the GPT model, want 0", minPerStep)
		}
	})
}

// fullStepAllocFloor runs newStep's engine on 2 ranks, warms it up, then
// measures the process-global mallocs delta of whole-world steps, returning
// the minimum delta and the minimum engine-reported AllocsPerStep over the
// windows (rank 0's view).
func fullStepAllocFloor(t *testing.T, newStep func(c *comm.Comm) (step func(), perStep func() uint64, err error)) (uint64, uint64) {
	t.Helper()
	const (
		ranks   = 2
		warmup  = 3
		windows = 4
	)
	minAllocs := ^uint64(0)
	minPerStep := ^uint64(0)
	comm.Run(ranks, func(c *comm.Comm) {
		step, perStep, err := newStep(c)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < warmup; i++ {
			step()
		}
		c.Barrier()
		if c.Rank() == 0 {
			runtime.GC()
		}
		var ms0, ms1 runtime.MemStats
		for w := 0; w < windows; w++ {
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms0)
			}
			c.Barrier()
			step()
			c.Barrier()
			if c.Rank() == 0 {
				runtime.ReadMemStats(&ms1)
				if d := ms1.Mallocs - ms0.Mallocs; d < minAllocs {
					minAllocs = d
				}
				if p := perStep(); p < minPerStep {
					minPerStep = p
				}
			}
		}
	})
	return minAllocs, minPerStep
}
