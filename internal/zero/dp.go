package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// DPEngine implements the replicated-parameter family: classic data
// parallelism (StageDDP), ZeRO-1 (partitioned optimizer), ZeRO-2
// (partitioned optimizer + gradients) and ZeRO-Offload (ZeRO-2 with the
// optimizer state and update on CPU). Parameters are always fully resident
// in GPU memory — the limitation ZeRO-3/Infinity removes.
//
// Hot-path buffers — padded fp16 gradient buffers (keyed by padded length
// through the arena's size classes), reduced fp32 gradients, encoded and
// gathered fp16 parameter views — cycle through per-engine scratch arenas,
// so steady-state steps stop hitting the Go allocator after step 1.
type DPEngine struct {
	cfg    Config
	c      *comm.Comm
	g      Model
	rt     *module.Runtime
	params []*module.Param

	// fp16 is the authoritative replicated fp16 weight storage.
	fp16 map[*module.Param][]tensor.Half
	// master/adam cover the full parameter for DDP, this rank's shard for
	// ZeRO-1/2/Offload.
	master map[*module.Param][]float32
	adam   map[*module.Param]*optim.Adam

	scaler *optim.LossScaler

	// decoded reduced gradients, kept between the reduce and update phases.
	grads map[*module.Param][]float32

	// f32/f16 are the engine's scratch arenas.
	f32 *mem.Arena[float32]
	f16 *mem.Arena[tensor.Half]

	// Reused step scratch.
	gradsBuf           [][]float32
	microTok, microTgt [][]int
	meter              AllocMeter

	// AllocsPerStep is the heap-allocation count of the last step
	// (process-global; see Stats.AllocsPerStep in internal/core for the
	// same counter on the infinity engine).
	AllocsPerStep uint64

	// CPU-offload traffic accounting (ZeRO-Offload): bytes moved over the
	// GPU<->CPU link per step for gradients down and parameters up.
	BytesToCPU, BytesFromCPU int64
}

// NewDPEngine builds the engine for one rank. Stage must be StageDDP,
// Stage1 or Stage2.
func NewDPEngine(cfg Config, c *comm.Comm, g Model) (*DPEngine, error) {
	cfg.setDefaults()
	if cfg.Stage == Stage3 {
		return nil, fmt.Errorf("zero: DPEngine does not support stage3; use Z3Engine")
	}
	e := &DPEngine{
		cfg:    cfg,
		c:      c,
		g:      g,
		params: module.AllParams(g),
		fp16:   make(map[*module.Param][]tensor.Half),
		master: make(map[*module.Param][]float32),
		adam:   make(map[*module.Param]*optim.Adam),
		grads:  make(map[*module.Param][]float32),
		f32:    mem.NewArena[float32](),
		f16:    mem.NewArena[tensor.Half](),
	}
	e.rt = module.NewRuntime(nil)
	e.rt.SetBackend(cfg.Backend)
	e.rt.SetStepArena(mem.NewStepArena())
	c.SetCodecBackend(cfg.Backend)
	if cfg.Topology != nil {
		if err := c.SetTopology(cfg.Topology); err != nil {
			return nil, err
		}
	}
	if cfg.DynamicLossScale {
		e.scaler = optim.NewLossScaler(cfg.LossScale)
	} else {
		e.scaler = optim.StaticLossScaler(cfg.LossScale)
	}
	dp := c.Size()
	for _, p := range e.params {
		full := model.InitValues(p, cfg.Seed)
		h := make([]tensor.Half, p.Len())
		tensor.EncodeHalf(h, full)
		e.fp16[p] = h
		p.SetData(full)
		p.SetGradScratch(e.f32.Get, e.f32.Put)
		if cfg.Stage == StageDDP {
			e.master[p] = append([]float32(nil), full...)
			e.adam[p] = optim.NewAdam(p.Len(), cfg.Adam).WithBackend(e.rt.Backend())
		} else {
			s := comm.ShardLen(p.Len(), dp)
			shard := make([]float32, s)
			comm.Shard(shard, full, c.Rank(), dp)
			e.master[p] = shard
			e.adam[p] = optim.NewAdam(s, cfg.Adam).WithBackend(e.rt.Backend())
		}
	}
	return e, nil
}

// Model returns the wrapped model.
func (e *DPEngine) Model() Model { return e.g }

// Runtime returns the engine's hook runtime.
func (e *DPEngine) Runtime() *module.Runtime { return e.rt }

// LossScale returns the current loss scale.
func (e *DPEngine) LossScale() float64 { return e.scaler.Scale }

// Step runs one data-parallel training step on this rank's batch.
//
//zinf:hotpath
func (e *DPEngine) Step(tokens, targets []int, batch int) StepResult {
	tok, tgt := MicroBatch(&e.microTok, &e.microTgt, tokens, targets)
	return e.StepAccum(tok, tgt, batch)
}

// StepAccum runs one training step with gradient accumulation over
// micro-batches: each micro-batch's gradients are reduced across ranks and
// accumulated in fp32 before a single optimizer step — the recipe ZeRO
// engines use (reduce per micro-batch, accumulate the reduced shards), which
// keeps every engine's trajectory bit-identical.
//
//zinf:hotpath
func (e *DPEngine) StepAccum(microTokens, microTargets [][]int, batchPerMicro int) StepResult {
	if len(microTokens) == 0 || len(microTokens) != len(microTargets) {
		panic("zero: StepAccum needs matching non-empty micro-batches")
	}
	e.meter.Begin()
	dp := e.c.Size()
	micros := len(microTokens)
	scaleUsed := e.scaler.Scale

	var lossSum float64
	for m := 0; m < micros; m++ {
		for _, p := range e.params {
			p.Grad()
			p.ZeroGrad()
		}
		// The arena step brackets the micro-batch: reduceMicro only reads
		// engine-arena gradient buffers, so every model activation is dead
		// once it returns and EndStep reclaims them all.
		e.rt.BeginStep()
		lossSum += e.g.ForwardLoss(e.rt, microTokens[m], microTargets[m], batchPerMicro)
		e.g.BackwardLoss(e.rt, float32(scaleUsed))
		e.reduceMicro()
		e.rt.EndStep()
	}
	globalLoss := e.c.AllReduceScalar(lossSum/float64(micros)) / float64(dp)

	if GlobalOverflow(e.c, e.rt.Backend(), e.gradList()) {
		e.scaler.Update(true)
		for _, p := range e.params {
			if g := e.grads[p]; g != nil {
				e.f32.Put(g)
				delete(e.grads, p)
			}
		}
		return e.finishStep(StepResult{Loss: globalLoss, Skipped: true, LossScale: e.scaler.Scale})
	}

	inv := 1 / (scaleUsed * float64(dp) * float64(micros))
	for _, p := range e.params {
		e.rt.Backend().Scale(float32(inv), e.grads[p])
	}
	if f := e.clipFactor(); f != 1 {
		for _, p := range e.params {
			e.rt.Backend().Scale(float32(f), e.grads[p])
		}
	}
	for _, p := range e.params {
		g := e.grads[p]
		e.adam[p].Step(e.master[p], g)
		e.f32.Put(g)
		delete(e.grads, p)

		// Re-materialize fp16 weights.
		n := p.Len()
		if e.cfg.Stage == StageDDP {
			e.rt.Backend().EncodeHalf(e.fp16[p], e.master[p])
			e.rt.Backend().DecodeHalf(p.Data(), e.fp16[p])
			continue
		}
		dpLen := comm.ShardLen(n, dp)
		if e.cfg.OffloadOptimizer {
			// Updated fp16 shard returns from CPU to GPU before allgather.
			e.BytesFromCPU += int64(dpLen) * tensor.HalfBytes
		}
		// Fused encode+allgather: each rank's fp32 master shard is rounded
		// to fp16 once inside the collective — no intermediate shard buffer.
		full := e.f16.Get(dpLen * dp)
		e.c.AllGatherEncodeHalf(full, e.master[p])
		copy(e.fp16[p], full[:n])
		e.f16.Put(full)
		e.rt.Backend().DecodeHalf(p.Data(), e.fp16[p])
	}
	e.scaler.Update(false)
	return e.finishStep(StepResult{Loss: globalLoss, LossScale: e.scaler.Scale})
}

// finishStep records the step's process-global allocation count.
//
//zinf:hotpath
func (e *DPEngine) finishStep(res StepResult) StepResult {
	e.AllocsPerStep = e.meter.End()
	return res
}

// reduceMicro reduces the current local gradients in fp16 and accumulates
// the decoded result into e.grads. The padded fp16 buffer is engine-owned
// scratch keyed by padded length (arena size class) rather than a per-call
// allocation.
//
//zinf:hotpath
func (e *DPEngine) reduceMicro() {
	dp := e.c.Size()
	for _, p := range e.params {
		n := p.Len()
		padded := comm.PaddedLen(n, dp)
		gh := e.f16.Get(padded)
		e.rt.Backend().EncodeHalf(gh[:n], p.Grad())
		clear(gh[n:])
		var reduced []float32
		switch e.cfg.Stage {
		case StageDDP, Stage1:
			e.c.AllReduceHalf(gh[:n])
			if e.cfg.Stage == StageDDP {
				reduced = e.f32.Get(n)
				e.rt.Backend().DecodeHalf(reduced, gh[:n])
			} else {
				lo, hi := comm.ShardRange(n, e.c.Rank(), dp)
				s := hi - lo
				reduced = e.f32.Get(s)
				for i := 0; i < s; i++ {
					if lo+i < n {
						reduced[i] = gh[lo+i].Float32()
					} else {
						reduced[i] = 0
					}
				}
			}
		case Stage2:
			// Fused reduce-scatter+decode: the reduced fp16 shard lands
			// directly as fp32, with no intermediate fp16 shard buffer.
			reduced = e.f32.Get(padded / dp)
			e.c.ReduceScatterHalfDecode(reduced, gh)
			if e.cfg.OffloadOptimizer {
				// Gradient shard moves to CPU for the update.
				e.BytesToCPU += int64(len(reduced)) * tensor.HalfBytes
			}
		}
		e.f16.Put(gh)
		p.ReleaseGrad()
		if acc := e.grads[p]; acc != nil {
			e.rt.Backend().Axpy(1, reduced, acc)
			e.f32.Put(reduced)
		} else {
			e.grads[p] = reduced //zinf:allow hotpathalloc keyset fixed after the first step; steady state takes the accumulate branch above
		}
	}
}

// gradList returns this rank's reduced gradient buffers in parameter order
// (the order the shared overflow/clip helpers require), reusing the
// engine's scratch list.
//
//zinf:hotpath
func (e *DPEngine) gradList() [][]float32 {
	gs := e.gradsBuf[:0]
	for _, p := range e.params {
		gs = append(gs, e.grads[p])
	}
	e.gradsBuf = gs
	return gs
}

// clipFactor computes the global-gradient-norm clip multiplier in the
// engine-invariant summation order: rank-major, then parameter-major.
//
//zinf:hotpath
func (e *DPEngine) clipFactor() float64 {
	if e.cfg.ClipNorm <= 0 {
		return 1
	}
	if e.cfg.Stage != StageDDP {
		return GlobalClipFactor(e.c, e.cfg.ClipNorm, e.gradList())
	}
	// Replicated gradients: emulate the sharded engines' rank-major
	// accumulation exactly.
	dp := e.c.Size()
	var total float64
	for r := 0; r < dp; r++ {
		var partial float64
		for _, p := range e.params {
			lo, hi := comm.ShardRange(p.Len(), r, dp)
			g := e.grads[p]
			if lo > len(g) {
				lo = len(g)
			}
			if hi > len(g) {
				hi = len(g)
			}
			partial += SumSq(g[lo:hi])
		}
		total += partial
	}
	return ClipFactor(total, e.cfg.ClipNorm)
}

// LoadParams replaces the model weights with the given full fp16-valued
// vectors (keyed by parameter name) and resets the optimizer state — the
// load-pretrained-weights path. Values are rounded through fp16. Every rank
// must call it with identical values.
func (e *DPEngine) LoadParams(values map[string][]float32) error {
	dp := e.c.Size()
	for _, p := range e.params {
		v, ok := values[p.Name]
		if !ok {
			return fmt.Errorf("zero: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != p.Len() {
			return fmt.Errorf("zero: checkpoint parameter %q has %d elems, want %d", p.Name, len(v), p.Len())
		}
		tensor.EncodeHalf(e.fp16[p], v)
		tensor.DecodeHalf(p.Data(), e.fp16[p])
		if e.cfg.Stage == StageDDP {
			copy(e.master[p], p.Data())
			e.adam[p] = optim.NewAdam(p.Len(), e.cfg.Adam).WithBackend(e.rt.Backend())
		} else {
			comm.Shard(e.master[p], p.Data(), e.c.Rank(), dp)
			e.adam[p] = optim.NewAdam(len(e.master[p]), e.cfg.Adam).WithBackend(e.rt.Backend())
		}
	}
	return nil
}

// FullParams gathers the current fp16 parameter values as float32 vectors,
// keyed by parameter name (for engine-equivalence tests).
func (e *DPEngine) FullParams() map[string][]float32 {
	out := make(map[string][]float32, len(e.params))
	for _, p := range e.params {
		v := make([]float32, p.Len())
		tensor.DecodeHalf(v, e.fp16[p])
		out[p.Name] = v
	}
	return out
}
