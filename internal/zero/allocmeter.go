package zero

import "runtime/metrics"

// allocMeter measures a step's heap-allocation count for the AllocsPerStep
// observability counters, shared by every engine. It reads the cumulative
// /gc/heap/allocs:objects runtime metric — the same count as
// runtime.MemStats.Mallocs, but without ReadMemStats' stop-the-world pause,
// which would serialize all rank goroutines twice per step in the very hot
// path this counter observes. The counter is process-global, so with
// several rank goroutines stepping in lockstep it reflects the whole
// world's step. The zero value is ready to use; the sample buffers live in
// the engine so steady-state reads allocate nothing.
type AllocMeter struct {
	begin, end [1]metrics.Sample
}

const allocMetric = "/gc/heap/allocs:objects"

// Begin snapshots the allocation counter at step start.
//
//zinf:hotpath
func (m *AllocMeter) Begin() {
	if m.begin[0].Name == "" {
		m.begin[0].Name = allocMetric
		m.end[0].Name = allocMetric
	}
	metrics.Read(m.begin[:])
}

// End snapshots again and returns the step's allocation count.
//
//zinf:hotpath
func (m *AllocMeter) End() uint64 {
	metrics.Read(m.end[:])
	return m.end[0].Value.Uint64() - m.begin[0].Value.Uint64()
}

// MicroBatch fills the engine-owned single-micro-batch wrappers for the
// Step → StepAccum path without allocating after the first call.
//
//zinf:hotpath
func MicroBatch(tokBuf, tgtBuf *[][]int, tokens, targets []int) (tok, tgt [][]int) {
	*tokBuf = append((*tokBuf)[:0], tokens)
	*tgtBuf = append((*tgtBuf)[:0], targets)
	return *tokBuf, *tgtBuf
}
