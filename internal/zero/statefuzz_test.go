package zero

import (
	"bytes"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// fuzzState trains a 1-rank Z3 engine a step and serializes its rank state —
// the valid corpus seed the fuzzer mutates from.
func fuzzState(t testing.TB) []byte {
	var buf bytes.Buffer
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(testCfg())
		e, err := NewZ3Engine(Config{LossScale: 64, DynamicLossScale: true, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		tokens, targets := makeBatches(testCfg(), 1, 1, testBatch)
		e.Step(tokens[0][0], targets[0][0], testBatch)
		if err := e.SaveRankState(&buf); err != nil {
			t.Error(err)
		}
	})
	return buf.Bytes()
}

// TestRankStateTruncation chops a valid rank-state file at every byte
// boundary — magic, header fields, record headers, each vector — and
// requires every strict prefix to fail with a descriptive error, never a
// panic, and the full file to load.
func TestRankStateTruncation(t *testing.T) {
	enc := fuzzState(t)
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(testCfg())
		e, err := NewZ3Engine(Config{LossScale: 64, DynamicLossScale: true, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < len(enc); n++ {
			if err := e.LoadRankState(bytes.NewReader(enc[:n])); err == nil {
				t.Errorf("truncation to %d/%d bytes was accepted", n, len(enc))
				return
			}
		}
		if err := e.LoadRankState(bytes.NewReader(enc)); err != nil {
			t.Errorf("full state rejected: %v", err)
		}
	})
}

// FuzzLoadRankState: arbitrary bytes fed to LoadRankState must never panic —
// only error or load successfully (in which case the engine must still be
// able to save a state of its own).
func FuzzLoadRankState(f *testing.F) {
	f.Add(fuzzState(f))
	f.Add([]byte("ZST2"))
	f.Add([]byte("ZST1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		comm.Run(1, func(c *comm.Comm) {
			g := model.MustGPT(testCfg())
			e, err := NewZ3Engine(Config{LossScale: 64, DynamicLossScale: true, Seed: 3}, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			if err := e.LoadRankState(bytes.NewReader(data)); err != nil {
				return
			}
			var out bytes.Buffer
			if err := e.SaveRankState(&out); err != nil {
				t.Errorf("save after accepted load failed: %v", err)
			}
		})
	})
}
