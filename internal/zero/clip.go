package zero

import "math"

// Gradient-norm clipping across partitioned gradients. Every engine —
// replicated or sharded — must compute the global norm with the exact same
// float64 summation order (per rank, then per parameter, folded in rank
// order by AllReduceScalar) so that clipped training trajectories stay
// bit-identical across engines.

// SumSq accumulates Σ g² in float64 over one gradient shard.
//
//zinf:hotpath
func SumSq(g []float32) float64 {
	var s float64
	for _, v := range g {
		s += float64(v) * float64(v)
	}
	return s
}

// ClipFactor returns the multiplier (≤ 1) that brings a gradient of the
// given squared norm down to clipNorm; 1 when already within bounds or when
// clipping is disabled.
//
//zinf:hotpath
func ClipFactor(sumSq, clipNorm float64) float64 {
	if clipNorm <= 0 || sumSq <= clipNorm*clipNorm {
		return 1
	}
	return clipNorm / math.Sqrt(sumSq)
}
