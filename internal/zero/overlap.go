package zero

import (
	"repro/internal/comm"
	"repro/internal/module"
	"repro/internal/overlap"
	"repro/internal/tensor"
)

// This file is the stage-3 half of the overlap-centric design (paper Sec.
// 6.2): a gather-trace-driven parameter prefetcher that issues the next k
// parameters' allgathers during the current module's compute, and
// asynchronous gradient reduce-scatters drained before the overflow check.
// internal/core composes the same mechanism with its NVMe prefetcher.

// inflightGather is one speculatively issued allgather. The source shard is
// the engine's own (stable until the optimizer phase, which runs after the
// drain), so only the destination needs to be carried: the fused
// allgather+decode's float32 buffer under 1/dp slicing (full), or the fp16
// view under owner-rank broadcast (fullH) — exactly one is non-nil. It is
// stored by value so tracking in-flight gathers allocates nothing.
type inflightGather struct {
	ticket comm.Ticket
	full   []float32
	fullH  []tensor.Half
}

// gatherPrefetcher speculates parameter allgathers along the learned gather
// trace. All decisions are pure functions of the observed gather sequence —
// identical on every SPMD rank — so the asynchronously issued collectives
// stay matched rank to rank (the property that makes speculation safe on
// the sequence-numbered rendezvous substrate).
type gatherPrefetcher struct {
	e     *Z3Engine
	depth int
	trace *overlap.Trace[*module.Param]

	outstanding int
	inflight    map[*module.Param]inflightGather
}

func newGatherPrefetcher(e *Z3Engine, depth int) *gatherPrefetcher {
	return &gatherPrefetcher{
		e:        e,
		depth:    depth,
		trace:    overlap.New[*module.Param](depth),
		inflight: make(map[*module.Param]inflightGather),
	}
}

// claim hands back the speculative gather for p, if one is in flight:
// the already-decoded float32 buffer (fused allgather+decode, slicing) or
// the fp16 view (broadcast). The float32 buffer becomes the parameter's
// data; the fp16 buffer belongs to the engine's arena and the caller Puts
// it back after decoding.
//
//zinf:hotpath
func (pf *gatherPrefetcher) claim(p *module.Param) ([]float32, []tensor.Half) {
	f, ok := pf.inflight[p]
	if !ok {
		return nil, nil
	}
	f.ticket.Wait()
	delete(pf.inflight, p)
	pf.outstanding--
	pf.e.PrefetchHits++
	return f.full, f.fullH
}

// issue launches gathers for the next depth upcoming parameters:
// allgathers of the 1/dp slices, or asynchronous broadcasts from the owning
// rank under PartitionBroadcast.
//
//zinf:hotpath
func (pf *gatherPrefetcher) issue() {
	e := pf.e
	dp := e.c.Size()
	pf.trace.Each(func(p *module.Param) bool {
		if pf.outstanding >= pf.depth {
			return false
		}
		if p.Materialized() {
			return true
		}
		if _, ok := pf.inflight[p]; ok {
			return true
		}
		var g inflightGather
		if e.cfg.Partition == PartitionBroadcast {
			fullH, owner := e.bcastFullH(p)
			g = inflightGather{ticket: e.c.BroadcastHalfAsync(fullH, owner), fullH: fullH}
		} else {
			s := comm.ShardLen(p.Len(), dp)
			full := e.f32.Get(s * dp)
			g = inflightGather{ticket: e.c.AllGatherHalfDecodeAsync(full, e.shard[p]), full: full}
		}
		pf.inflight[p] = g //zinf:allow hotpathalloc keys recycle the same params every step, so buckets are warm after step one
		pf.outstanding++
		e.PrefetchIssued++
		return true
	})
}

// endStep drains unconsumed speculative gathers (every rank issued the same
// collectives, so the tickets always complete), recycles their buffers, and
// finishes the trace step.
//
//zinf:hotpath
func (pf *gatherPrefetcher) endStep() {
	for p, f := range pf.inflight {
		f.ticket.Wait()
		if f.full != nil {
			pf.e.f32.Put(f.full)
		} else {
			pf.e.f16.Put(f.fullH)
		}
		delete(pf.inflight, p)
	}
	pf.outstanding = 0
	pf.trace.EndStep()
}

// drainReduces waits out the asynchronous fused reduce-scatter+decodes via
// the shared issue-order fold (internal/overlap.Drain), accumulating into
// the fp32 gradient shards exactly as the synchronous path would and
// recycling the retired buffers. Called at every micro-batch boundary —
// bounding retained gradient buffers to one micro-batch — and again as the
// barrier before the overflow check.
//
//zinf:hotpath
func (e *Z3Engine) drainReduces() {
	e.pendingReduces = overlap.Drain(e.pendingReduces, func(p *module.Param, gs []float32, gh []tensor.Half) {
		e.f16.Put(gh)
		if gs != nil { // nil on non-owner ranks under PartitionBroadcast
			e.foldGradShard(p, gs)
		}
	})
}
