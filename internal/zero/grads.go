package zero

import (
	"repro/internal/comm"
	"repro/internal/tensor"
)

// Shared gradient-inspection sequences used by every engine (DP family,
// ZeRO-3 and, via internal/core, ZeRO-Infinity). Both are collectives —
// every rank must call them at the same point in the step — and both follow
// the engine-invariant accumulation order the bit-identity contract depends
// on: local scan in parameter order, folded in rank order by the collective.

// GlobalOverflow reports whether any rank's gradient buffers contain a NaN
// or Inf (the fp16 loss-scaling overflow check). grads holds this rank's
// buffers in parameter order; nil entries are skipped.
//
//zinf:hotpath
func GlobalOverflow(c *comm.Comm, be tensor.Backend, grads [][]float32) bool {
	overflow := 0.0
	for _, g := range grads {
		if be.HasNaNOrInf(g) {
			overflow = 1
			break
		}
	}
	return c.AllReduceMax(overflow) > 0
}

// GlobalClipFactor returns the multiplier that brings the global (all-rank,
// all-parameter) gradient L2 norm down to clipNorm: SumSq per buffer in
// order, summed locally in float64, folded in rank order by AllReduceScalar,
// then ClipFactor. With clipNorm <= 0 it returns 1 without communicating.
//
//zinf:hotpath
func GlobalClipFactor(c *comm.Comm, clipNorm float64, grads [][]float32) float64 {
	if clipNorm <= 0 {
		return 1
	}
	var local float64
	for _, g := range grads {
		local += SumSq(g)
	}
	return ClipFactor(c.AllReduceScalar(local), clipNorm)
}
