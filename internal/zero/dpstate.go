package zero

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/comm"
)

// Rank-state checkpointing for the replicated-parameter family (DDP,
// ZeRO-1/2, ZeRO-Offload), in the same v2 wire layout as the Z3 engine
// (statecodec.go). Every rank holds optimizer state for every parameter —
// the full vector under DDP, this rank's 1/dp shard under ZeRO-1/2 — so
// Count is always len(params).

// SaveRankState writes this rank's full training state to w.
func (e *DPEngine) SaveRankState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scale, goodSteps, skipped := e.scaler.State()
	step := 0
	for _, p := range e.params {
		step = e.adam[p].StepCount()
		break
	}
	err := WriteStateHeader(bw, StateHeader{
		Rank: e.c.Rank(), World: e.c.Size(), Step: step,
		Scale: scale, GoodSteps: goodSteps, Skipped: skipped,
		Count: len(e.params),
	})
	if err != nil {
		return err
	}
	var codec VecCodec
	for _, p := range e.params {
		master := e.master[p]
		if err := WriteParamHeader(bw, p.Name, len(master)); err != nil {
			return err
		}
		m, v := e.adam[p].State()
		for _, vec := range [][]float32{master, m, v} {
			if err := codec.WriteVec(bw, vec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadRankState restores state saved by SaveRankState and rebuilds the
// replicated fp16 weights from the restored masters. Under ZeRO-1/2 the
// rebuild is a collective (fused allgather+encode), so every rank must call
// LoadRankState together — same contract as LoadParams. On error the engine
// state may be partially overwritten; load into fresh engines.
func (e *DPEngine) LoadRankState(r io.Reader) error {
	br := bufio.NewReader(r)
	h, err := ReadStateHeader(br)
	if err != nil {
		return err
	}
	if h.Rank != e.c.Rank() || h.World != e.c.Size() {
		return fmt.Errorf("zero: state is for rank %d/%d, engine is rank %d/%d",
			h.Rank, h.World, e.c.Rank(), e.c.Size())
	}
	if h.Count != len(e.params) {
		return fmt.Errorf("zero: state has %d params, model has %d", h.Count, len(e.params))
	}
	e.scaler.Restore(h.Scale, h.GoodSteps, h.Skipped)

	byName := make(map[string]int, len(e.params))
	for i, p := range e.params {
		byName[p.Name] = i
	}
	dp := e.c.Size()
	var codec VecCodec
	for i := 0; i < h.Count; i++ {
		name, shardLen, err := ReadParamHeader(br)
		if err != nil {
			return err
		}
		idx, ok := byName[name]
		if !ok {
			return fmt.Errorf("zero: state parameter %q not in model", name)
		}
		p := e.params[idx]
		if int(shardLen) != len(e.master[p]) {
			return fmt.Errorf("zero: state shard %q has %d elems, want %d",
				name, shardLen, len(e.master[p]))
		}
		m, v := e.adam[p].State()
		for _, dst := range [][]float32{e.master[p], m, v} {
			if err := codec.ReadVec(br, dst); err != nil {
				return fmt.Errorf("zero: read state shard %q: %w", name, err)
			}
		}
		e.adam[p].LoadState(m, v, h.Step)

		// Rebuild the authoritative fp16 weights from the restored masters —
		// the same path the optimizer phase takes, so the values are exactly
		// what the uninterrupted run would hold.
		n := p.Len()
		if e.cfg.Stage == StageDDP {
			e.rt.Backend().EncodeHalf(e.fp16[p], e.master[p])
		} else {
			dpLen := comm.ShardLen(n, dp)
			full := e.f16.Get(dpLen * dp)
			e.c.AllGatherEncodeHalf(full, e.master[p])
			copy(e.fp16[p], full[:n])
			e.f16.Put(full)
		}
		e.rt.Backend().DecodeHalf(p.Data(), e.fp16[p])
	}
	return nil
}
