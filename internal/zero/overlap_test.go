package zero

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// The overlap acceptance claim for stage 3: async collectives and the
// gather prefetcher change wall-clock behaviour only. Trajectories and
// final parameters must match the synchronous engine bit for bit.
func TestZ3OverlapBitIdenticalToSync(t *testing.T) {
	mcfg := testCfg()
	syncOut := runEngine(t, mcfg, Config{Stage: Stage3, LossScale: 256, Seed: 42}, false)
	cases := []struct {
		name string
		cfg  Config
	}{
		// PrefetchDepth without Overlap is inert (async collectives are
		// gated on Overlap, matching internal/core and the public config).
		{"prefetch-without-overlap", Config{Stage: Stage3, LossScale: 256, Seed: 42, PrefetchDepth: 2}},
		{"async-reduce", Config{Stage: Stage3, LossScale: 256, Seed: 42, Overlap: true}},
		{"prefetch+async-reduce", Config{Stage: Stage3, LossScale: 256, Seed: 42, PrefetchDepth: 3, Overlap: true}},
		{"deep-prefetch", Config{Stage: Stage3, LossScale: 256, Seed: 42, PrefetchDepth: 64, Overlap: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runEngine(t, mcfg, tc.cfg, false)
			assertSameTrajectory(t, tc.name, syncOut, got)
		})
	}
}

func TestZ3OverlapPrefetcherIssuesAndHits(t *testing.T) {
	out := runEngine(t, testCfg(), Config{Stage: Stage3, LossScale: 256, Seed: 42, PrefetchDepth: 2, Overlap: true}, false)
	z3 := out.z3
	if z3.PrefetchIssued == 0 {
		t.Fatal("gather prefetcher issued nothing")
	}
	if z3.PrefetchHits == 0 {
		t.Fatal("no speculative allgather was consumed")
	}
	if z3.PrefetchHits > z3.PrefetchIssued {
		t.Fatalf("hits %d > issued %d", z3.PrefetchHits, z3.PrefetchIssued)
	}
	if z3.AsyncReduces == 0 {
		t.Fatal("no reduce-scatter launched asynchronously")
	}
}

// Gradient accumulation drains asynchronous reduce-scatters across
// micro-batches in issue order; the accumulated shards must match the
// synchronous engine exactly.
func TestZ3OverlapGradAccumBitIdentical(t *testing.T) {
	mcfg := testCfg()
	run := func(cfg Config) (losses []float64, params map[string][]float32) {
		tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
		var mu sync.Mutex
		comm.Run(testRanks, func(c *comm.Comm) {
			g := model.MustGPT(mcfg)
			e, err := NewZ3Engine(cfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			var local []float64
			for s := 0; s < testSteps; s++ {
				// Split the shared batch into two identical micro-batches.
				tok, tgt := tokens[s][c.Rank()], targets[s][c.Rank()]
				res := e.StepAccum([][]int{tok, tok}, [][]int{tgt, tgt}, testBatch)
				local = append(local, res.Loss)
			}
			p := e.FullParams()
			if c.Rank() == 0 {
				mu.Lock()
				losses, params = local, p
				mu.Unlock()
			}
		})
		return
	}
	sl, sp := run(Config{Stage: Stage3, LossScale: 128, Seed: 9, ClipNorm: 1})
	ol, op := run(Config{Stage: Stage3, LossScale: 128, Seed: 9, ClipNorm: 1, PrefetchDepth: 2, Overlap: true})
	for i := range sl {
		if sl[i] != ol[i] {
			t.Fatalf("accum loss diverged at step %d: %.17g vs %.17g", i, sl[i], ol[i])
		}
	}
	for name, sv := range sp {
		for i := range sv {
			if op[name][i] != sv[i] {
				t.Fatalf("accum param %s[%d] diverged", name, i)
			}
		}
	}
}

// The drain barrier must land before the overflow check: an overflowing
// step under overlap is skipped without touching the weights, exactly like
// the synchronous engine.
func TestZ3OverlapOverflowSkipIdentical(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewZ3Engine(Config{LossScale: 1e30, DynamicLossScale: true, Seed: 5,
			PrefetchDepth: 2, Overlap: true}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		before := e.FullParams()
		res := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
		if !res.Skipped {
			t.Error("overflow step was not skipped under overlap")
		}
		after := e.FullParams()
		if c.Rank() == 0 {
			for name, b := range before {
				for i := range b {
					if after[name][i] != b[i] {
						t.Fatalf("skipped overlap step modified %s[%d]", name, i)
					}
				}
			}
		}
	})
}
