package zero

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// runEngineHeap mirrors runEngine (engines_test.go) but strips the step
// arena right after construction, so every model-layer allocation falls back
// to tensor.New/make — the heap baseline the arena-backed engines must match
// bit for bit.
func runEngineHeap(t *testing.T, mcfg model.Config, ecfg Config, ckpt bool) runOutput {
	t.Helper()
	mcfg.CheckpointActivations = ckpt
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out runOutput
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) StepResult
		var full func() map[string][]float32
		if ecfg.Stage == Stage3 {
			e, err := NewZ3Engine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			e.Runtime().SetStepArena(nil)
			step, full = e.Step2(), e.FullParams
		} else {
			e, err := NewDPEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			e.Runtime().SetStepArena(nil)
			step = func(tok, tgt []int) StepResult { return e.Step(tok, tgt, testBatch) }
			full = e.FullParams
		}
		var losses []float64
		for s := 0; s < testSteps; s++ {
			losses = append(losses, step(tokens[s][c.Rank()], targets[s][c.Rank()]).Loss)
		}
		params := full()
		if c.Rank() == 0 {
			mu.Lock()
			out = runOutput{losses: losses, params: params}
			mu.Unlock()
		}
	})
	return out
}

// TestArenaMatchesHeapTrajectory closes the loop the model-layer test
// (model.TestArenaBitIdenticalToHeap) opens: under the real partitioned
// engines — gather/release hooks, overlap, prefetch, checkpoint recompute —
// the arena-backed step must produce the same losses and final parameters,
// bit for bit, as the same engine with its arena removed.
func TestArenaMatchesHeapTrajectory(t *testing.T) {
	cases := []struct {
		name   string
		ecfg   Config
		tiling int
		ckpt   bool
	}{
		{"ddp", Config{Stage: StageDDP, LossScale: 256, Seed: 42}, 1, false},
		{"zero2", Config{Stage: Stage2, LossScale: 256, Seed: 42}, 1, false},
		{"zero3-overlap", Config{Stage: Stage3, LossScale: 256, Seed: 42, Overlap: true, PrefetchDepth: 2}, 1, false},
		{"zero3-tiled-ckpt", Config{Stage: Stage3, LossScale: 256, Seed: 42}, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mcfg := testCfg()
			mcfg.Tiling = tc.tiling
			arena := runEngine(t, mcfg, tc.ecfg, tc.ckpt)
			heap := runEngineHeap(t, mcfg, tc.ecfg, tc.ckpt)
			assertSameTrajectory(t, tc.name+" arena-vs-heap", arena, heap)
		})
	}
}
