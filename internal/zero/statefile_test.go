package zero

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// Exact resume: training N steps straight equals training k, saving each
// rank's state, loading into fresh engines, and training N-k more — bit for
// bit, including optimizer moments and loss-scaler state.
func TestRankStateExactResume(t *testing.T) {
	mcfg := testCfg()
	const total, split = 6, 3
	tokens, targets := makeBatches(mcfg, total, testRanks, testBatch)
	cfg := Config{LossScale: 1024, DynamicLossScale: true, Seed: 13}

	// Continuous run.
	var contLosses []float64
	var contParams map[string][]float32
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(cfg, c, g)
		var local []float64
		for s := 0; s < total; s++ {
			local = append(local, e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch).Loss)
		}
		p := e.FullParams()
		if c.Rank() == 0 {
			mu.Lock()
			contLosses, contParams = local, p
			mu.Unlock()
		}
	})

	// Split run with save/restore in the middle.
	states := make([]bytes.Buffer, testRanks)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(cfg, c, g)
		for s := 0; s < split; s++ {
			e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch)
		}
		if err := e.SaveRankState(&states[c.Rank()]); err != nil {
			t.Errorf("rank %d save: %v", c.Rank(), err)
		}
	})
	var resLosses []float64
	var resParams map[string][]float32
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(cfg, c, g)
		if err := e.LoadRankState(bytes.NewReader(states[c.Rank()].Bytes())); err != nil {
			t.Errorf("rank %d load: %v", c.Rank(), err)
			return
		}
		var local []float64
		for s := split; s < total; s++ {
			local = append(local, e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch).Loss)
		}
		p := e.FullParams()
		if c.Rank() == 0 {
			mu.Lock()
			resLosses, resParams = local, p
			mu.Unlock()
		}
	})

	for i, want := range contLosses[split:] {
		if resLosses[i] != want {
			t.Fatalf("resumed loss diverged at step %d: %.17g vs %.17g", split+i, resLosses[i], want)
		}
	}
	for name, want := range contParams {
		got := resParams[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("resumed param %s[%d] = %g, want %g", name, i, got[i], want[i])
			}
		}
	}
}

func TestRankStateRejectsWrongRank(t *testing.T) {
	mcfg := testCfg()
	states := make([]bytes.Buffer, 2)
	comm.Run(2, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(Config{LossScale: 8, Seed: 1}, c, g)
		if err := e.SaveRankState(&states[c.Rank()]); err != nil {
			t.Error(err)
		}
	})
	comm.Run(2, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(Config{LossScale: 8, Seed: 1}, c, g)
		other := (c.Rank() + 1) % 2
		if err := e.LoadRankState(bytes.NewReader(states[other].Bytes())); err == nil {
			t.Error("cross-rank state load accepted")
		}
	})
}

func TestRankStateRejectsGarbage(t *testing.T) {
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(testCfg())
		e, _ := NewZ3Engine(Config{LossScale: 8, Seed: 1}, c, g)
		if err := e.LoadRankState(bytes.NewReader([]byte("XXXXxxxx"))); err == nil {
			t.Error("garbage accepted")
		}
	})
}
