package zero

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Shared rank-state wire codec, used by every engine's
// SaveRankState/LoadRankState (Z3Engine and DPEngine here, InfinityEngine in
// internal/core). Two versions exist:
//
//	v1 "ZST1": magic | u32 rank | u32 world | u64 step | f64 scale |
//	           u32 skipped | u32 count | records
//	v2 "ZST2": magic | u32 rank | u32 world | u64 step | f64 scale |
//	           u32 goodSteps | u32 skipped | u32 count | records
//
// each record being
//
//	u32 name len | name | u64 shard len | master f32s | m f32s | v f32s
//
// v2 adds the loss scaler's clean-step counter: without it a resumed run
// doubles the scale at a different step than the uninterrupted run, breaking
// bit-identical replay. v1 files remain readable (goodSteps loads as 0 — the
// historical behaviour).
const (
	rankStateMagic   = "ZST1"
	rankStateMagicV2 = "ZST2"
)

// StateHeader is the decoded fixed-size head of a rank-state file.
type StateHeader struct {
	Version   int // 1 or 2
	Rank      int
	World     int
	Step      int // shared optimizer step counter
	Scale     float64
	GoodSteps int // clean steps toward the next scale growth (v2 only)
	Skipped   int
	Count     int // parameter records that follow
}

// WriteStateHeader writes h in the v2 layout.
func WriteStateHeader(bw *bufio.Writer, h StateHeader) error {
	if _, err := bw.WriteString(rankStateMagicV2); err != nil {
		return err
	}
	fields := []any{
		uint32(h.Rank), uint32(h.World), uint64(h.Step),
		math.Float64bits(h.Scale),
		uint32(h.GoodSteps), uint32(h.Skipped), uint32(h.Count),
	}
	for _, v := range fields {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// ReadStateHeader reads a v1 or v2 header, reporting the version in the
// result. Corrupt input yields an error, never a panic.
func ReadStateHeader(br *bufio.Reader) (StateHeader, error) {
	magic := make([]byte, len(rankStateMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return StateHeader{}, fmt.Errorf("zero: read state magic: %w", err)
	}
	var h StateHeader
	switch string(magic) {
	case rankStateMagic:
		h.Version = 1
	case rankStateMagicV2:
		h.Version = 2
	default:
		return StateHeader{}, fmt.Errorf("zero: bad state magic %q", magic)
	}
	var rank, world uint32
	var step, scaleBits uint64
	var goodSteps, skipped, count uint32
	fields := []any{&rank, &world, &step, &scaleBits}
	if h.Version == 2 {
		fields = append(fields, &goodSteps)
	}
	fields = append(fields, &skipped, &count)
	for _, v := range fields {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return StateHeader{}, fmt.Errorf("zero: read state header: %w", err)
		}
	}
	h.Rank, h.World, h.Step = int(rank), int(world), int(step)
	h.Scale = math.Float64frombits(scaleBits)
	h.GoodSteps, h.Skipped, h.Count = int(goodSteps), int(skipped), int(count)
	return h, nil
}

// WriteParamHeader writes one record's name and shard length.
func WriteParamHeader(bw *bufio.Writer, name string, shardLen int) error {
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	return binary.Write(bw, binary.LittleEndian, uint64(shardLen))
}

// ReadParamHeader reads one record's name and shard length, bounding the
// name so corrupt input cannot trigger huge allocations.
func ReadParamHeader(br *bufio.Reader) (string, uint64, error) {
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return "", 0, err
	}
	if nameLen > 1<<16 {
		return "", 0, fmt.Errorf("zero: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return "", 0, err
	}
	var shardLen uint64
	if err := binary.Read(br, binary.LittleEndian, &shardLen); err != nil {
		return "", 0, err
	}
	return string(nameBytes), shardLen, nil
}

// VecCodec moves float32 vectors across the byte stream through one
// grown-on-demand staging buffer, so a whole Save or Load performs a
// bounded number of allocations instead of one per vector.
type VecCodec struct {
	buf []byte
}

func (c *VecCodec) stage(n int) []byte {
	if cap(c.buf) < n {
		c.buf = make([]byte, n)
	}
	return c.buf[:n]
}

// WriteVec serializes v.
func (c *VecCodec) WriteVec(bw *bufio.Writer, v []float32) error {
	b := c.stage(4 * len(v))
	tensor.F32ToBytes(b, v)
	_, err := bw.Write(b)
	return err
}

// ReadVec fills dst from the stream (the caller owns dst, so loads land
// directly in engine state with no intermediate vector allocation).
func (c *VecCodec) ReadVec(r io.Reader, dst []float32) error {
	b := c.stage(4 * len(dst))
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	tensor.F32FromBytes(dst, b)
	return nil
}
