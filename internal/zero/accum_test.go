package zero

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// runAccum trains with StepAccum over the given micro-batch count.
func runAccum(t *testing.T, ecfg Config, micros, steps int) runOutput {
	t.Helper()
	mcfg := testCfg()
	var out runOutput
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(mt, mg [][]int) StepResult
		var full func() map[string][]float32
		if ecfg.Stage == Stage3 {
			e, err := NewZ3Engine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step = func(mt, mg [][]int) StepResult { return e.StepAccum(mt, mg, testBatch) }
			full = e.FullParams
		} else {
			e, err := NewDPEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step = func(mt, mg [][]int) StepResult { return e.StepAccum(mt, mg, testBatch) }
			full = e.FullParams
		}
		var losses []float64
		for s := 0; s < steps; s++ {
			mt := make([][]int, micros)
			mg := make([][]int, micros)
			for m := 0; m < micros; m++ {
				rng := tensor.NewRNG(uint64(5000 + s*1000 + m*100 + c.Rank()))
				mt[m], mg[m] = model.SyntheticBatch(rng, mcfg, testBatch)
			}
			losses = append(losses, step(mt, mg).Loss)
		}
		params := full()
		if c.Rank() == 0 {
			mu.Lock()
			out = runOutput{losses: losses, params: params}
			mu.Unlock()
		}
	})
	return out
}

// Gradient accumulation keeps every engine bit-identical to DDP.
func TestAccumulationBitIdenticalAcrossEngines(t *testing.T) {
	const micros, steps = 3, 3
	ddp := runAccum(t, Config{Stage: StageDDP, LossScale: 128, Seed: 21}, micros, steps)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero1", Config{Stage: Stage1, LossScale: 128, Seed: 21}},
		{"zero2", Config{Stage: Stage2, LossScale: 128, Seed: 21}},
		{"zero3", Config{Stage: Stage3, LossScale: 128, Seed: 21}},
	} {
		got := runAccum(t, tc.cfg, micros, steps)
		assertSameTrajectory(t, tc.name+"+accum", ddp, got)
	}
}

// Accumulating the same micro-batch twice equals one step with doubled
// gradients — i.e. the same step as a single micro (gradients are averaged
// over micros).
func TestAccumulationAveragesMicroGradients(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	var single, double []float64
	run := func(micros int) []float64 {
		var out []float64
		var mu sync.Mutex
		comm.Run(testRanks, func(c *comm.Comm) {
			g := model.MustGPT(mcfg)
			e, _ := NewZ3Engine(Config{LossScale: 64, Seed: 31}, c, g)
			mt := make([][]int, micros)
			mg := make([][]int, micros)
			for m := 0; m < micros; m++ {
				mt[m], mg[m] = tokens[0][c.Rank()], targets[0][c.Rank()]
			}
			res := e.StepAccum(mt, mg, testBatch)
			p := e.FullParams()
			if c.Rank() == 0 {
				mu.Lock()
				out = append(out, res.Loss)
				for _, v := range p["lnf.g"] {
					out = append(out, float64(v))
				}
				mu.Unlock()
			}
		})
		return out
	}
	single = run(1)
	double = run(2)
	for i := range single {
		if single[i] != double[i] {
			t.Fatalf("duplicated-micro step diverged at %d: %g vs %g", i, single[i], double[i])
		}
	}
}

// Clipping: bit-identical across engines, and the post-clip norm is bounded.
func TestClippingBitIdenticalAndBounded(t *testing.T) {
	const clip = 0.05 // small enough to always engage
	ddp := runEngine(t, testCfg(), Config{Stage: StageDDP, LossScale: 128, Seed: 42, ClipNorm: clip}, false)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero1+clip", Config{Stage: Stage1, LossScale: 128, Seed: 42, ClipNorm: clip}},
		{"zero2+clip", Config{Stage: Stage2, LossScale: 128, Seed: 42, ClipNorm: clip}},
		{"zero3+clip", Config{Stage: Stage3, LossScale: 128, Seed: 42, ClipNorm: clip}},
	} {
		got := runEngine(t, testCfg(), tc.cfg, false)
		assertSameTrajectory(t, tc.name, ddp, got)
	}
	// Clipping changes the trajectory vs unclipped.
	unclipped := runEngine(t, testCfg(), Config{Stage: StageDDP, LossScale: 128, Seed: 42}, false)
	same := true
	for name, av := range ddp.params {
		for i := range av {
			if av[i] != unclipped.params[name][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("clip=0.05 did not change the trajectory — clipping inert?")
	}
}

func TestClipFactorMath(t *testing.T) {
	if f := ClipFactor(100, 0); f != 1 {
		t.Fatalf("disabled clip factor = %g", f)
	}
	if f := ClipFactor(4, 3); f != 1 {
		t.Fatalf("within-bounds factor = %g", f)
	}
	// norm = sqrt(100) = 10, clip 5 → factor 0.5.
	if f := ClipFactor(100, 5); math.Abs(f-0.5) > 1e-15 {
		t.Fatalf("factor = %g, want 0.5", f)
	}
	if s := SumSq([]float32{3, 4}); s != 25 {
		t.Fatalf("SumSq = %g", s)
	}
}

func TestStepAccumValidatesInput(t *testing.T) {
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(testCfg())
		e, _ := NewDPEngine(Config{LossScale: 1, Seed: 1}, c, g)
		defer func() {
			if recover() == nil {
				t.Error("mismatched micro slices accepted")
			}
		}()
		e.StepAccum([][]int{{1}}, nil, 1)
	})
}
