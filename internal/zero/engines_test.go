package zero

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const (
	testRanks = 4
	testSteps = 5
	testBatch = 2
)

func testCfg() model.Config {
	return model.Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
}

// makeBatches pre-generates per-step, per-rank batches shared by every
// engine under test.
func makeBatches(cfg model.Config, steps, ranks, batch int) (tokens, targets [][][]int) {
	tokens = make([][][]int, steps)
	targets = make([][][]int, steps)
	for s := 0; s < steps; s++ {
		tokens[s] = make([][]int, ranks)
		targets[s] = make([][]int, ranks)
		for r := 0; r < ranks; r++ {
			rng := tensor.NewRNG(uint64(1000 + s*100 + r))
			tokens[s][r], targets[s][r] = model.SyntheticBatch(rng, cfg, batch)
		}
	}
	return
}

type runOutput struct {
	losses []float64
	params map[string][]float32
	z3     *Z3Engine // set when the engine is Z3 (rank 0)
}

// runEngine trains the configured engine for testSteps and returns rank 0's
// observations.
func runEngine(t *testing.T, mcfg model.Config, ecfg Config, ckpt bool) runOutput {
	t.Helper()
	mcfg.CheckpointActivations = ckpt
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out runOutput
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) StepResult
		var full func() map[string][]float32
		var z3 *Z3Engine
		if ecfg.Stage == Stage3 {
			e, err := NewZ3Engine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step, full, z3 = e.Step2(), e.FullParams, e
		} else {
			e, err := NewDPEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step = func(tok, tgt []int) StepResult { return e.Step(tok, tgt, testBatch) }
			full = e.FullParams
		}
		var losses []float64
		for s := 0; s < testSteps; s++ {
			res := step(tokens[s][c.Rank()], targets[s][c.Rank()])
			losses = append(losses, res.Loss)
		}
		params := full()
		if c.Rank() == 0 {
			mu.Lock()
			out = runOutput{losses: losses, params: params, z3: z3}
			mu.Unlock()
		}
	})
	return out
}

// Step2 adapts Z3Engine.Step to the two-arg closure used by runEngine.
func (e *Z3Engine) Step2() func(tok, tgt []int) StepResult {
	return func(tok, tgt []int) StepResult { return e.Step(tok, tgt, testBatch) }
}

func assertSameTrajectory(t *testing.T, name string, a, b runOutput) {
	t.Helper()
	for i := range a.losses {
		if a.losses[i] != b.losses[i] {
			t.Fatalf("%s: loss diverged at step %d: %.17g vs %.17g", name, i, a.losses[i], b.losses[i])
		}
	}
	if len(a.params) != len(b.params) {
		t.Fatalf("%s: param set sizes differ: %d vs %d", name, len(a.params), len(b.params))
	}
	for pname, av := range a.params {
		bv, ok := b.params[pname]
		if !ok {
			t.Fatalf("%s: missing param %s", name, pname)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: param %s[%d] diverged: %g vs %g", name, pname, i, av[i], bv[i])
			}
		}
	}
}

// The paper's implicit correctness claim: every ZeRO stage is a memory
// optimization, not an algorithm change. All engines must produce the same
// training trajectory bit for bit.
func TestAllStagesBitIdenticalToDDP(t *testing.T) {
	mcfg := testCfg()
	base := Config{LossScale: 256, Seed: 42}

	ddp := runEngine(t, mcfg, Config{Stage: StageDDP, LossScale: base.LossScale, Seed: base.Seed}, false)
	if len(ddp.losses) != testSteps {
		t.Fatalf("ddp ran %d steps", len(ddp.losses))
	}
	cases := []struct {
		name string
		cfg  Config
		ckpt bool
	}{
		{"zero1", Config{Stage: Stage1, LossScale: 256, Seed: 42}, false},
		{"zero2", Config{Stage: Stage2, LossScale: 256, Seed: 42}, false},
		{"zero-offload", Config{Stage: Stage2, LossScale: 256, Seed: 42, OffloadOptimizer: true}, false},
		{"zero3", Config{Stage: Stage3, LossScale: 256, Seed: 42}, false},
		{"zero3+ckpt", Config{Stage: Stage3, LossScale: 256, Seed: 42}, true},
	}
	for _, tc := range cases {
		got := runEngine(t, mcfg, tc.cfg, tc.ckpt)
		assertSameTrajectory(t, tc.name, ddp, got)
	}
}

func TestTrainingConvergesUnderZ3(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	var first, last float64
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		acfg := optim.DefaultAdamConfig()
		acfg.LR = 0.01
		e, err := NewZ3Engine(Config{LossScale: 128, Seed: 7, Adam: acfg}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < 40; s++ {
			res := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
			if c.Rank() == 0 {
				if s == 0 {
					first = res.Loss
				}
				last = res.Loss
			}
		}
	})
	if last > first*0.8 {
		t.Fatalf("Z3 training did not converge: first %g last %g", first, last)
	}
}

func TestZ3ExternalParamAutoRegistration(t *testing.T) {
	out := runEngine(t, testCfg(), Config{Stage: Stage3, LossScale: 64, Seed: 9}, false)
	z3 := out.z3
	if z3 == nil {
		t.Fatal("no Z3 engine captured")
	}
	// The tied head touches embed.tok outside its owner module: exactly one
	// on-demand gather in the first iteration, then the registry prefetches
	// it for all later iterations.
	if z3.OnDemandGathers != 1 {
		t.Fatalf("OnDemandGathers = %d, want 1 (registration should stop later on-demand hits)", z3.OnDemandGathers)
	}
	found := false
	for _, ps := range z3.external {
		for _, p := range ps {
			if p.Name == "embed.tok" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("embed.tok not registered as external parameter")
	}
}

func TestZ3GatherTraceRecorded(t *testing.T) {
	out := runEngine(t, testCfg(), Config{Stage: Stage3, LossScale: 64, Seed: 9}, false)
	tr := out.z3.GatherTrace
	if len(tr) == 0 {
		t.Fatal("empty gather trace")
	}
	// First gather of the step is the embedding, last reduction targets it
	// again via the backward pass; spot-check the first entry.
	if tr[0] != "embed/embed.tok" && tr[0] != "embed/embed.pos" {
		t.Fatalf("unexpected first trace entry %q", tr[0])
	}
}

func TestZ3ParamsReleasedBetweenSteps(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(Config{LossScale: 64, Seed: 3}, c, g)
		e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
		if c.Rank() == 0 {
			for _, p := range e.params {
				if p.Materialized() {
					t.Errorf("param %s still materialized after step", p.Name)
				}
			}
		}
	})
}

func TestOverflowSkipsAndHalvesScale(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		// Absurd loss scale: fp16 gradient encoding overflows to Inf.
		e, _ := NewZ3Engine(Config{LossScale: 1e30, DynamicLossScale: true, Seed: 5}, c, g)
		before := e.FullParams()
		res := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
		if !res.Skipped {
			t.Error("overflow step was not skipped")
		}
		if res.LossScale >= 1e30 {
			t.Errorf("scale not reduced: %g", res.LossScale)
		}
		after := e.FullParams()
		if c.Rank() == 0 {
			for name, b := range before {
				for i := range b {
					if after[name][i] != b[i] {
						t.Fatalf("skipped step modified %s[%d]", name, i)
					}
				}
			}
		}
	})
}

func TestOffloadEngineCountsTraffic(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewDPEngine(Config{Stage: Stage2, OffloadOptimizer: true, LossScale: 64, Seed: 1}, c, g)
		e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
		if e.BytesToCPU == 0 || e.BytesFromCPU == 0 {
			t.Errorf("offload traffic not recorded: down=%d up=%d", e.BytesToCPU, e.BytesFromCPU)
		}
	})
}

func TestDPEngineRejectsStage3(t *testing.T) {
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(testCfg())
		if _, err := NewDPEngine(Config{Stage: Stage3}, c, g); err == nil {
			t.Error("DPEngine accepted stage3")
		}
	})
}

func TestSingleRankZ3MatchesDDP(t *testing.T) {
	// World size 1: partitioning degenerates but must still work.
	mcfg := testCfg()
	rng := tensor.NewRNG(77)
	tok, tgt := model.SyntheticBatch(rng, mcfg, testBatch)
	var lossDDP, lossZ3 []float64
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewDPEngine(Config{Stage: StageDDP, LossScale: 32, Seed: 11}, c, g)
		for i := 0; i < 3; i++ {
			lossDDP = append(lossDDP, e.Step(tok, tgt, testBatch).Loss)
		}
	})
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, _ := NewZ3Engine(Config{LossScale: 32, Seed: 11}, c, g)
		for i := 0; i < 3; i++ {
			lossZ3 = append(lossZ3, e.Step(tok, tgt, testBatch).Loss)
		}
	})
	for i := range lossDDP {
		if lossDDP[i] != lossZ3[i] {
			t.Fatalf("size-1 divergence at step %d: %g vs %g", i, lossDDP[i], lossZ3[i])
		}
	}
}

func TestTable2HasSevenStrategies(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("Table2 rows = %d, want 7", len(rows))
	}
	if rows[0].Name != "Data parallel" || rows[6].Name != "ZeRO-Inf-NVMe" {
		t.Fatalf("unexpected rows %q, %q", rows[0].Name, rows[6].Name)
	}
	if !rows[6].ParamPartition || rows[6].ParamDevices[0] != OnNVMe {
		t.Fatal("ZeRO-Inf-NVMe row wrong")
	}
}

func TestStageStrings(t *testing.T) {
	if StageDDP.String() != "ddp" || Stage3.String() != "zero3" {
		t.Fatal("stage names wrong")
	}
	if OnNVMe.String() != "nvme" || OnGPU.String() != "gpu" {
		t.Fatal("placement names wrong")
	}
}

// The compute-backend contract: swapping the blocked multi-goroutine kernels
// in for the serial reference ones changes wall-clock time only. Every stage
// trained on the parallel backend must reproduce the reference-backend DDP
// trajectory bit for bit — losses and final parameters. (This also serves as
// the -race exercise of training steps on the parallel backend: four rank
// goroutines share one kernel worker pool.)
func TestEnginesBitIdenticalAcrossBackends(t *testing.T) {
	mcfg := testCfg()
	par := tensor.NewParallel(4)

	ref := runEngine(t, mcfg, Config{Stage: StageDDP, LossScale: 256, Seed: 42}, false)
	cases := []struct {
		name string
		cfg  Config
		ckpt bool
	}{
		{"ddp/parallel", Config{Stage: StageDDP, LossScale: 256, Seed: 42, Backend: par}, false},
		{"zero1/parallel", Config{Stage: Stage1, LossScale: 256, Seed: 42, Backend: par}, false},
		{"zero2/parallel", Config{Stage: Stage2, LossScale: 256, Seed: 42, Backend: par}, false},
		{"zero3/parallel", Config{Stage: Stage3, LossScale: 256, Seed: 42, Backend: par}, false},
		{"zero3+ckpt/parallel", Config{Stage: Stage3, LossScale: 256, Seed: 42, Backend: par}, true},
	}
	for _, tc := range cases {
		got := runEngine(t, mcfg, tc.cfg, tc.ckpt)
		assertSameTrajectory(t, tc.name, ref, got)
	}
}
