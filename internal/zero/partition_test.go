package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// The Fig. 6c correctness half: both partitioning strategies — 1/dp slicing
// and owner-rank broadcast — are memory/bandwidth layouts, not algorithm
// changes. Every combination of strategy, overlap+prefetch and multi-node
// topology must reproduce the DDP trajectory bit for bit.
func TestPartitionStrategiesBitIdenticalToDDP(t *testing.T) {
	mcfg := testCfg()
	topo := &comm.Topology{NodeSize: 2, IntraGBps: 100, InterGBps: 10}

	ddp := runEngine(t, mcfg, Config{Stage: StageDDP, LossScale: 256, Seed: 42}, false)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"broadcast/sync", Config{Stage: Stage3, LossScale: 256, Seed: 42,
			Partition: PartitionBroadcast}},
		{"broadcast/overlap", Config{Stage: Stage3, LossScale: 256, Seed: 42,
			Partition: PartitionBroadcast, Overlap: true, PrefetchDepth: 2}},
		{"slice/overlap+topology", Config{Stage: Stage3, LossScale: 256, Seed: 42,
			Overlap: true, PrefetchDepth: 2, Topology: topo}},
		{"broadcast/overlap+topology", Config{Stage: Stage3, LossScale: 256, Seed: 42,
			Partition: PartitionBroadcast, Overlap: true, PrefetchDepth: 2, Topology: topo}},
	}
	for _, tc := range cases {
		got := runEngine(t, mcfg, tc.cfg, false)
		assertSameTrajectory(t, tc.name, ddp, got)
	}
}

// Overflow steps under the broadcast strategy must skip cleanly: the
// owner-held gradient shards are dropped, no parameter moves, and the scale
// halves — same semantics as slicing.
func TestBroadcastPartitionOverflowSkip(t *testing.T) {
	mcfg := testCfg()
	tokens, targets := makeBatches(mcfg, 1, testRanks, testBatch)
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewZ3Engine(Config{LossScale: 1e30, DynamicLossScale: true, Seed: 5,
			Partition: PartitionBroadcast}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		before := e.FullParams()
		res := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch)
		if !res.Skipped {
			t.Error("overflow step was not skipped")
		}
		after := e.FullParams()
		if c.Rank() == 0 {
			for name, b := range before {
				for i := range b {
					if after[name][i] != b[i] {
						t.Fatalf("skipped step modified %s[%d]", name, i)
					}
				}
			}
		}
	})
}

// Under owner-rank broadcast, each rank holds optimizer state only for the
// parameters it owns (round-robin by index).
func TestBroadcastPartitionShardsByOwner(t *testing.T) {
	mcfg := testCfg()
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewZ3Engine(Config{LossScale: 64, Seed: 3, Partition: PartitionBroadcast}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		for i, p := range e.params {
			wantOwner := i % c.Size()
			if e.bcastOwner[p] != wantOwner {
				t.Errorf("param %s owner %d, want %d", p.Name, e.bcastOwner[p], wantOwner)
			}
			_, hasShard := e.shard[p]
			if hasShard != (wantOwner == c.Rank()) {
				t.Errorf("rank %d param %s: shard presence %v", c.Rank(), p.Name, hasShard)
			}
			if hasShard && len(e.shard[p]) != p.Len() {
				t.Errorf("param %s shard len %d, want full %d", p.Name, len(e.shard[p]), p.Len())
			}
		}
		if len(e.owned) >= len(e.params) && c.Size() > 1 {
			t.Errorf("rank %d owns %d of %d params — not partitioned", c.Rank(), len(e.owned), len(e.params))
		}
	})
}

// The checkpoint-gather satellite: FullParams' transient fp16 gather view
// must come from the engine arena, so a warm call allocates only the
// returned float32 vectors and the result map — not per-parameter gather
// scratch.
func TestFullParamsGatherScratchPooled(t *testing.T) {
	mcfg := testCfg()
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewZ3Engine(Config{LossScale: 64, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		e.FullParams() // warm the arena size classes
		nparams := len(e.params)
		allocs := testing.AllocsPerRun(10, func() {
			e.FullParams()
		})
		// Budget: one allocation for each returned vector, one for the map,
		// plus slack for map growth — and nothing for the fp16 gather
		// buffers, which previously doubled the count.
		budget := float64(2*nparams + 4)
		if allocs > budget {
			t.Fatalf("FullParams allocated %.1f/call for %d params (budget %.0f): gather scratch not pooled",
				allocs, nparams, budget)
		}
	})
}

// FullParams under the broadcast strategy must agree with the slicing
// strategy after identical training (the consolidation path is
// strategy-independent).
func TestFullParamsAgreeAcrossStrategies(t *testing.T) {
	mcfg := testCfg()
	slice := runEngine(t, mcfg, Config{Stage: Stage3, LossScale: 256, Seed: 42}, false)
	bcast := runEngine(t, mcfg, Config{Stage: Stage3, LossScale: 256, Seed: 42,
		Partition: PartitionBroadcast}, false)
	assertSameTrajectory(t, "fullparams-strategies", slice, bcast)
	if len(slice.params) == 0 {
		t.Fatal("no params captured")
	}
}
