//go:build !race

package zero

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
