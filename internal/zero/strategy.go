// Package zero implements the ZeRO family of data-parallel training engines
// from the paper's Table 2 taxonomy:
//
//	Data parallel (DDP)  — everything replicated on GPU
//	ZeRO-1               — optimizer states partitioned
//	ZeRO-2               — optimizer states + gradients partitioned
//	ZeRO-Offload         — ZeRO-2 placement with optimizer states on CPU
//	ZeRO-3               — all three model states partitioned
//
// ZeRO-Infinity itself (ZeRO-3 + infinity offload engine + tiling +
// prefetcher) lives in internal/core and composes the pieces defined here.
//
// All engines share one gradient/update recipe so their training
// trajectories are *bit-identical* given the same ranks, seeds and batches:
// local fp32 grads are encoded to fp16, reduced across ranks in rank order
// with fp32 accumulation, re-encoded to fp16, unscaled by 1/(lossScale·dp),
// and fed to elementwise fp32 Adam on master weights initialized from the
// fp16 init. The equivalence tests in this package assert exact equality.
package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Stage selects how much of the model state is partitioned (paper Sec. 2).
type Stage int

// Partitioning stages.
const (
	StageDDP Stage = iota // classic data parallelism, no partitioning
	Stage1                // optimizer states partitioned
	Stage2                // + gradients partitioned
	Stage3                // + parameters partitioned
)

// String returns the conventional name.
func (s Stage) String() string {
	switch s {
	case StageDDP:
		return "ddp"
	case Stage1:
		return "zero1"
	case Stage2:
		return "zero2"
	case Stage3:
		return "zero3"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Partitioning selects how stage-3 engines split parameters across the
// data-parallel ranks — the two strategies of the paper's Fig. 6c.
type Partitioning int

const (
	// PartitionSlice is bandwidth-centric partitioning (paper Sec. 6.1, the
	// default): every parameter is sliced 1/dp across all ranks, so a
	// gather is an allgather that keeps every link busy and achieves
	// aggregate bandwidth proportional to the rank count.
	PartitionSlice Partitioning = iota
	// PartitionBroadcast is the owner-rank baseline: each parameter is
	// wholly owned by one rank (round-robin by parameter index), gathers
	// are broadcasts bottlenecked on the owner's links, and gradients
	// reduce to the owner. Trains bit-identically to PartitionSlice; only
	// the byte flow (and therefore achieved bandwidth) differs.
	PartitionBroadcast
)

// String returns the strategy name ("slice" / "broadcast").
func (p Partitioning) String() string {
	if p == PartitionBroadcast {
		return "broadcast"
	}
	return "slice"
}

// ParsePartitioning resolves a strategy name ("", "slice", "broadcast").
func ParsePartitioning(s string) (Partitioning, error) {
	switch s {
	case "", "slice":
		return PartitionSlice, nil
	case "broadcast":
		return PartitionBroadcast, nil
	}
	return PartitionSlice, fmt.Errorf("zero: unknown partitioning %q (slice|broadcast)", s)
}

// Placement says where a class of model state lives (paper Table 2).
type Placement int

// Device tiers.
const (
	OnGPU Placement = iota
	OnCPU
	OnNVMe
)

// String returns the tier name.
func (p Placement) String() string {
	switch p {
	case OnCPU:
		return "cpu"
	case OnNVMe:
		return "nvme"
	default:
		return "gpu"
	}
}

// Strategy is a row of the paper's Table 2: a named combination of
// partitioning and placement for optimizer+gradient state and parameters.
type Strategy struct {
	Name string
	// OptGradDevices / ParamDevices list the tiers each state may occupy,
	// fastest first (e.g. NVMe strategies spill GPU→CPU→NVMe).
	OptGradDevices   []Placement
	ParamDevices     []Placement
	OptGradPartition bool
	ParamPartition   bool
}

// Table2 reproduces the paper's Table 2 rows in order.
func Table2() []Strategy {
	return []Strategy{
		{"Data parallel", []Placement{OnGPU}, []Placement{OnGPU}, false, false},
		{"ZeRO 2", []Placement{OnGPU}, []Placement{OnGPU}, true, false},
		{"ZeRO-Offload", []Placement{OnCPU, OnGPU}, []Placement{OnGPU}, true, false},
		{"3D Parallelism", []Placement{OnGPU}, []Placement{OnGPU}, true, true},
		{"ZeRO 3", []Placement{OnGPU}, []Placement{OnGPU}, true, true},
		{"ZeRO-Inf-CPU", []Placement{OnCPU, OnGPU}, []Placement{OnCPU, OnGPU}, true, true},
		{"ZeRO-Inf-NVMe", []Placement{OnNVMe, OnCPU, OnGPU}, []Placement{OnNVMe, OnCPU, OnGPU}, true, true},
	}
}

// Config configures any engine in this package.
type Config struct {
	Stage Stage
	Adam  optim.AdamConfig
	// LossScale is the initial loss scale (default 1: disabled).
	LossScale float64
	// DynamicLossScale enables scale adaptation.
	DynamicLossScale bool
	// Seed drives deterministic parameter initialization.
	Seed uint64
	// OffloadOptimizer places optimizer state on CPU (ZeRO-Offload when
	// Stage==Stage2).
	OffloadOptimizer bool
	// ClipNorm, when positive, clips the global (all-parameter, all-rank)
	// gradient L2 norm to this value before the optimizer step.
	ClipNorm float64
	// PrefetchDepth sizes the stage-3 gather prefetcher (paper Sec. 6.2):
	// with Overlap set, the allgathers for the next PrefetchDepth
	// parameters in the learned gather trace are issued asynchronously
	// while the current module computes. 0 disables prefetch. Results are
	// bit-identical.
	PrefetchDepth int
	// Overlap enables asynchronous collectives in the stage-3 engine:
	// gradient reduce-scatters launch asynchronously from the backward
	// hooks (drained at micro-batch boundaries and before the overflow
	// check in StepAccum), and PrefetchDepth > 0 additionally speculates
	// parameter allgathers. Results are bit-identical to the synchronous
	// path.
	Overlap bool
	// Backend is the compute backend kernels dispatch through (nil selects
	// the serial reference backend). Every backend is bit-identical, so
	// this is purely a speed knob.
	Backend tensor.Backend
	// Partition selects the stage-3 parameter-partitioning strategy
	// (Fig. 6c): 1/dp slicing (default) or owner-rank broadcast. Both train
	// bit-identically; they differ in which links the gathers and gradient
	// reductions keep busy.
	Partition Partitioning
	// Topology, when set, is installed on the communicator's world: ranks
	// group into nodes, collectives decompose hierarchically and the
	// fabric's traffic/cost accounting distinguishes intra- from inter-node
	// links. Results are bit-identical with or without a topology.
	Topology *comm.Topology
}

func (c *Config) setDefaults() {
	if c.Adam == (optim.AdamConfig{}) {
		c.Adam = optim.DefaultAdamConfig()
	}
	if c.LossScale == 0 {
		c.LossScale = 1
	}
	c.Backend = tensor.DefaultBackend(c.Backend)
}

// StepResult reports one training step.
type StepResult struct {
	// Loss is the global mean loss across ranks.
	Loss float64
	// Skipped reports an fp16-overflow step (no parameter update).
	Skipped bool
	// LossScale is the scale in effect after the step.
	LossScale float64
}
