package zero

import "repro/internal/module"

// Model is the trainable-model surface the engines drive: a module tree
// (walked for parameters and hooks) plus the loss-bearing forward/backward
// entry points. *model.GPT is the production implementation; tests substitute
// minimal models (e.g. the allocation-free stub behind the zero-allocation
// steady-state regression test) without dragging in the full Transformer.
type Model interface {
	module.Module
	// ForwardLoss runs the model on tokens/targets (length batch*seq) and
	// returns the mean loss, stashing whatever BackwardLoss needs.
	ForwardLoss(rt *module.Runtime, tokens, targets []int, batch int) float64
	// BackwardLoss backpropagates the stashed loss gradient scaled by scale,
	// accumulating parameter gradients.
	BackwardLoss(rt *module.Runtime, scale float32)
}
