package zero

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/optim"
	"repro/internal/tensor"
)

// Rank-local training-state checkpoints for exact resume — the analogue of
// DeepSpeed's per-rank ZeRO checkpoints: each rank serializes its own fp32
// master shards, Adam moments, step counter and loss-scaler state. Loading
// the same files into fresh engines continues training bit-identically
// (asserted in tests).
//
// Layout (little endian):
//
//	magic "ZST1" | u32 rank | u32 world | u64 adam step |
//	f64 scale | u32 goodSteps-equivalent skipped count |
//	u32 param count | repeated:
//	  u32 name len | name | u64 shard len | master f32s | m f32s | v f32s

const rankStateMagic = "ZST1"

// SaveRankState writes this rank's full training state to w.
func (e *Z3Engine) SaveRankState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rankStateMagic); err != nil {
		return err
	}
	hdr := []any{
		uint32(e.c.Rank()), uint32(e.c.Size()),
		uint64(e.adamStep()), math.Float64bits(e.scaler.Scale),
		uint32(e.scaler.Skipped()), uint32(len(e.params)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	writeVec := func(v []float32) error {
		b := make([]byte, 4*len(v))
		tensor.F32ToBytes(b, v)
		_, err := bw.Write(b)
		return err
	}
	for _, p := range e.params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		master := e.master[p]
		m, v := e.adam[p].State()
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(master))); err != nil {
			return err
		}
		for _, vec := range [][]float32{master, m, v} {
			if err := writeVec(vec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// adamStep returns the shared optimizer step counter (identical across
// params by construction).
func (e *Z3Engine) adamStep() int {
	for _, p := range e.params {
		return e.adam[p].StepCount()
	}
	return 0
}

// LoadRankState restores state saved by SaveRankState. The world size and
// rank must match.
func (e *Z3Engine) LoadRankState(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(rankStateMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("zero: read state magic: %w", err)
	}
	if string(magic) != rankStateMagic {
		return fmt.Errorf("zero: bad state magic %q", magic)
	}
	var rank, world uint32
	var step uint64
	var scaleBits uint64
	var skipped, count uint32
	for _, v := range []any{&rank, &world, &step, &scaleBits, &skipped, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if int(rank) != e.c.Rank() || int(world) != e.c.Size() {
		return fmt.Errorf("zero: state is for rank %d/%d, engine is rank %d/%d",
			rank, world, e.c.Rank(), e.c.Size())
	}
	if int(count) != len(e.params) {
		return fmt.Errorf("zero: state has %d params, model has %d", count, len(e.params))
	}
	e.scaler.Scale = math.Float64frombits(scaleBits)

	readVec := func(n uint64) ([]float32, error) {
		b := make([]byte, 4*n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		v := make([]float32, n)
		tensor.F32FromBytes(v, b)
		return v, nil
	}
	byName := make(map[string]int, len(e.params))
	for i, p := range e.params {
		byName[p.Name] = i
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("zero: implausible name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return err
		}
		idx, ok := byName[string(nameBytes)]
		if !ok {
			return fmt.Errorf("zero: state parameter %q not in model", nameBytes)
		}
		p := e.params[idx]
		var shardLen uint64
		if err := binary.Read(br, binary.LittleEndian, &shardLen); err != nil {
			return err
		}
		if int(shardLen) != len(e.master[p]) {
			return fmt.Errorf("zero: state shard %q has %d elems, want %d",
				p.Name, shardLen, len(e.master[p]))
		}
		master, err := readVec(shardLen)
		if err != nil {
			return err
		}
		m, err := readVec(shardLen)
		if err != nil {
			return err
		}
		v, err := readVec(shardLen)
		if err != nil {
			return err
		}
		copy(e.master[p], master)
		fresh := optim.NewAdam(int(shardLen), e.cfg.Adam).WithBackend(e.rt.Backend())
		fresh.LoadState(m, v, int(step))
		e.adam[p] = fresh
		tensor.EncodeHalf(e.shard[p], e.master[p])
	}
	return nil
}
