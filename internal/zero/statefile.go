package zero

import (
	"bufio"
	"fmt"
	"io"
)

// Rank-local training-state checkpoints for exact resume — the analogue of
// DeepSpeed's per-rank ZeRO checkpoints: each rank serializes its own fp32
// master shards, Adam moments, step counter and full loss-scaler state.
// Loading the same files into fresh engines continues training
// bit-identically (asserted in tests and by the kill/resume replay harness).
// The wire layout lives in statecodec.go; v1 files remain readable.

// SaveRankState writes this rank's full training state to w in the v2
// layout. Only owned parameters are written, so the format is valid under
// both partitioning strategies (under owner-rank broadcast a rank holds
// state for its round-robin subset only).
func (e *Z3Engine) SaveRankState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scale, goodSteps, skipped := e.scaler.State()
	err := WriteStateHeader(bw, StateHeader{
		Rank: e.c.Rank(), World: e.c.Size(), Step: e.adamStep(),
		Scale: scale, GoodSteps: goodSteps, Skipped: skipped,
		Count: len(e.owned),
	})
	if err != nil {
		return err
	}
	var codec VecCodec
	for _, p := range e.owned {
		master := e.master[p]
		if err := WriteParamHeader(bw, p.Name, len(master)); err != nil {
			return err
		}
		m, v := e.adam[p].State()
		for _, vec := range [][]float32{master, m, v} {
			if err := codec.WriteVec(bw, vec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// adamStep returns the shared optimizer step counter (identical across
// params by construction).
func (e *Z3Engine) adamStep() int {
	for _, p := range e.owned {
		return e.adam[p].StepCount()
	}
	return 0
}

// LoadRankState restores state saved by SaveRankState (v1 or v2). The world
// size and rank must match. On error the engine state may be partially
// overwritten; load into fresh engines.
func (e *Z3Engine) LoadRankState(r io.Reader) error {
	br := bufio.NewReader(r)
	h, err := ReadStateHeader(br)
	if err != nil {
		return err
	}
	if h.Rank != e.c.Rank() || h.World != e.c.Size() {
		return fmt.Errorf("zero: state is for rank %d/%d, engine is rank %d/%d",
			h.Rank, h.World, e.c.Rank(), e.c.Size())
	}
	// v1 files (written before broadcast partitioning had rank state) carry
	// one record per model parameter; v2 carries one per owned parameter.
	want := len(e.owned)
	if h.Version == 1 {
		want = len(e.params)
	}
	if h.Count != want {
		return fmt.Errorf("zero: state has %d params, engine owns %d", h.Count, want)
	}
	e.scaler.Restore(h.Scale, h.GoodSteps, h.Skipped)

	byName := make(map[string]int, len(e.params))
	for i, p := range e.params {
		byName[p.Name] = i
	}
	var codec VecCodec
	for i := 0; i < h.Count; i++ {
		name, shardLen, err := ReadParamHeader(br)
		if err != nil {
			return err
		}
		idx, ok := byName[name]
		if !ok {
			return fmt.Errorf("zero: state parameter %q not in model", name)
		}
		p := e.params[idx]
		if e.adam[p] == nil {
			return fmt.Errorf("zero: state parameter %q is not owned by rank %d", name, e.c.Rank())
		}
		if int(shardLen) != len(e.master[p]) {
			return fmt.Errorf("zero: state shard %q has %d elems, want %d",
				name, shardLen, len(e.master[p]))
		}
		m, v := e.adam[p].State()
		for _, dst := range [][]float32{e.master[p], m, v} {
			if err := codec.ReadVec(br, dst); err != nil {
				return fmt.Errorf("zero: read state shard %q: %w", name, err)
			}
		}
		e.adam[p].LoadState(m, v, h.Step)
		// The fp16 shard is a pure function of the master shard.
		e.rt.Backend().EncodeHalf(e.shard[p], e.master[p])
	}
	return nil
}
