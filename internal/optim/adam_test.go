package optim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAdamDescendsQuadratic(t *testing.T) {
	// Minimize f(x) = Σ (x_i - c_i)²/2; grad = x - c.
	const n = 8
	c := make([]float32, n)
	x := make([]float32, n)
	tensor.NewRNG(1).FillNormal(c, 1)
	a := NewAdam(n, AdamConfig{LR: 0.05, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
	g := make([]float32, n)
	for it := 0; it < 500; it++ {
		for i := range g {
			g[i] = x[i] - c[i]
		}
		a.Step(x, g)
	}
	for i := range x {
		if math.Abs(float64(x[i]-c[i])) > 0.05 {
			t.Fatalf("x[%d]=%g did not converge to %g", i, x[i], c[i])
		}
	}
	if a.StepCount() != 500 {
		t.Fatalf("step count %d", a.StepCount())
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step moves by ~lr*sign(g).
	a := NewAdam(1, AdamConfig{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-12})
	x := []float32{0}
	a.Step(x, []float32{3.7})
	if math.Abs(float64(x[0])+0.1) > 1e-6 {
		t.Fatalf("first step moved to %g, want ~-0.1", x[0])
	}
}

// The ZeRO property: updating shards independently equals updating the full
// vector, exactly.
func TestAdamShardedEqualsReplicated(t *testing.T) {
	const n, shards = 24, 4
	cfg := DefaultAdamConfig()
	cfg.WeightDecay = 0.01
	rng := tensor.NewRNG(7)
	params := make([]float32, n)
	rng.FillNormal(params, 1)
	shardParams := make([][]float32, shards)
	for s := 0; s < shards; s++ {
		shardParams[s] = append([]float32(nil), params[s*n/shards:(s+1)*n/shards]...)
	}

	full := NewAdam(n, cfg)
	partial := make([]*Adam, shards)
	for s := range partial {
		partial[s] = NewAdam(n/shards, cfg)
	}

	g := make([]float32, n)
	for it := 0; it < 10; it++ {
		rng.FillNormal(g, 1)
		full.Step(params, g)
		for s := 0; s < shards; s++ {
			partial[s].Step(shardParams[s], g[s*n/shards:(s+1)*n/shards])
		}
	}
	for s := 0; s < shards; s++ {
		for i, v := range shardParams[s] {
			if v != params[s*n/shards+i] {
				t.Fatalf("shard %d elem %d: %g != %g", s, i, v, params[s*n/shards+i])
			}
		}
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	cfg := DefaultAdamConfig()
	a := NewAdam(6, cfg)
	x := make([]float32, 6)
	g := []float32{1, -1, 2, -2, 3, -3}
	a.Step(x, g)
	a.Step(x, g)
	m, v := a.State()

	b := NewAdam(6, cfg)
	b.LoadState(m, v, a.StepCount())
	xa := append([]float32(nil), x...)
	xb := append([]float32(nil), x...)
	a.Step(xa, g)
	b.Step(xb, g)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("restored optimizer diverged at %d: %g vs %g", i, xa[i], xb[i])
		}
	}
}

func TestLossScalerDynamics(t *testing.T) {
	s := NewLossScaler(1024)
	s.GrowthInterval = 3
	// Overflow halves and skips.
	if !s.Update(true) {
		t.Fatal("overflow did not skip")
	}
	if s.Scale != 512 {
		t.Fatalf("scale after overflow = %g", s.Scale)
	}
	// Three clean steps double.
	for i := 0; i < 3; i++ {
		if s.Update(false) {
			t.Fatal("clean step skipped")
		}
	}
	if s.Scale != 1024 {
		t.Fatalf("scale after growth = %g", s.Scale)
	}
	if s.Skipped() != 1 {
		t.Fatalf("skipped = %d", s.Skipped())
	}
}

func TestLossScalerFloorsAtOne(t *testing.T) {
	s := NewLossScaler(2)
	s.Update(true)
	s.Update(true)
	s.Update(true)
	if s.Scale != 1 {
		t.Fatalf("scale floored at %g, want 1", s.Scale)
	}
}

func TestStaticLossScalerNeverGrows(t *testing.T) {
	s := StaticLossScaler(128)
	for i := 0; i < 1000; i++ {
		s.Update(false)
	}
	if s.Scale != 128 {
		t.Fatalf("static scale changed to %g", s.Scale)
	}
}

func TestUnscaleCheck(t *testing.T) {
	g := []float32{2, 4, 8}
	if UnscaleCheck(g, 2) {
		t.Fatal("clean grads flagged as overflow")
	}
	if g[0] != 1 || g[2] != 4 {
		t.Fatalf("unscale wrong: %v", g)
	}
	bad := []float32{1, float32(math.Inf(1))}
	if !UnscaleCheck(bad, 2) {
		t.Fatal("inf not detected")
	}
	if bad[0] != 1 {
		t.Fatal("overflowed grads were modified")
	}
}

func TestF32BytesRoundTrip(t *testing.T) {
	src := []float32{0, 1, -2.5, 3e-20, float32(math.Inf(-1))}
	b := make([]byte, 4*len(src))
	tensor.F32ToBytes(b, src)
	dst := make([]float32, len(src))
	tensor.F32FromBytes(dst, b)
	for i := range src {
		if math.Float32bits(dst[i]) != math.Float32bits(src[i]) {
			t.Fatalf("byte round trip [%d]: %g != %g", i, dst[i], src[i])
		}
	}
}

func BenchmarkAdamStep(b *testing.B) {
	const n = 1 << 16
	a := NewAdam(n, DefaultAdamConfig())
	x := make([]float32, n)
	g := make([]float32, n)
	tensor.NewRNG(1).FillNormal(g, 1)
	b.SetBytes(n * OptimizerStateBytesPerParam)
	for i := 0; i < b.N; i++ {
		a.Step(x, g)
	}
	// 14 nominal FLOPs per element, the zinf-roofline convention for Adam.
	b.ReportMetric(14*n*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
