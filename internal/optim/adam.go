// Package optim implements mixed-precision Adam, the optimizer the paper's
// Sec. 3 memory model assumes: fp16 parameters and gradients for
// forward/backward, fp32 master parameters, momentum and variance for the
// update (20 bytes of state per parameter), plus dynamic loss scaling.
//
// Adam is elementwise, so a partitioned update over shards is exactly equal
// to a replicated update — the property ZeRO stages 1-3 exploit and the
// engine-equivalence tests verify.
package optim

import (
	"math"
	"sync"

	"repro/internal/tensor"
)

// AdamConfig holds hyperparameters.
type AdamConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// DefaultAdamConfig mirrors the common large-model recipe.
func DefaultAdamConfig() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// BytesPerParam is the paper's Sec. 3 accounting: fp16 param (2) + fp16 grad
// (2) + fp32 master param, momentum, variance and fp32 gradient copy (16).
const BytesPerParam = 20

// OptimizerStateBytesPerParam is the fp32 Adam state alone (master copy,
// momentum, variance, fp32 gradient) — what ZeRO offloads as "optimizer
// states".
const OptimizerStateBytesPerParam = 16

// Adam updates one flat fp32 vector (typically one rank's shard of the
// model). The zero value is unusable; use NewAdam.
type Adam struct {
	cfg  AdamConfig
	step int
	m, v []float32
	be   tensor.Backend
}

// NewAdam creates optimizer state for n elements on the reference backend.
func NewAdam(n int, cfg AdamConfig) *Adam {
	return &Adam{cfg: cfg, m: make([]float32, n), v: make([]float32, n), be: tensor.Reference()}
}

// WithBackend sets the compute backend the update runs on (nil selects the
// reference backend) and returns a for chaining.
func (a *Adam) WithBackend(be tensor.Backend) *Adam {
	a.be = tensor.DefaultBackend(be)
	return a
}

// Len returns the number of elements managed.
func (a *Adam) Len() int { return len(a.m) }

// StepCount returns the number of applied steps.
func (a *Adam) StepCount() int { return a.step }

// Config returns the hyperparameters.
func (a *Adam) Config() AdamConfig { return a.cfg }

// Step applies one Adam update to params given grads. Slices must have
// length Len().
//
//zinf:hotpath
func (a *Adam) Step(params, grads []float32) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic("optim: Adam.Step length mismatch")
	}
	a.step++
	StepVecOn(a.be, a.cfg, a.step, params, grads, a.m, a.v)
}

// StepVec applies the Adam update as a pure function over externally-owned
// state vectors — the form used when optimizer states are streamed through
// CPU staging buffers from NVMe (infinity offload engine). step is the
// 1-based update count. The arithmetic is float64 per element for bias
// correction and float32 for state; it is deterministic, so sharded and
// replicated updates agree exactly.
//
//zinf:hotpath
func StepVec(cfg AdamConfig, step int, params, grads, m, v []float32) {
	StepVecOn(tensor.Reference(), cfg, step, params, grads, m, v)
}

// StepVecOn is StepVec with the elementwise update fanned out over be. The
// update touches each element exactly once with no cross-element reduction,
// so partitioned execution is bit-identical to serial.
//
//zinf:hotpath
func StepVecOn(be tensor.Backend, cfg AdamConfig, step int, params, grads, m, v []float32) {
	if len(params) != len(grads) || len(params) != len(m) || len(params) != len(v) {
		panic("optim: StepVec length mismatch")
	}
	bc1 := 1 - math.Pow(cfg.Beta1, float64(step))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(step))
	be = tensor.DefaultBackend(be)
	if tensor.IsReference(be) {
		adamChunk(cfg, bc1, bc2, params, grads, m, v, 0, len(grads))
		return
	}
	a := adamArgsPool.Get().(*adamArgs)
	a.cfg, a.bc1, a.bc2 = cfg, bc1, bc2
	a.params, a.grads, a.m, a.v = params, grads, m, v
	be.ParRangeCtx(len(grads), 1<<12, a, adamParChunk)
	*a = adamArgs{}
	adamArgsPool.Put(a)
}

// adamArgs carries one StepVecOn call's operands to adamParChunk, so the
// parallel fan-out needs no escaping closure — one per-param update per step
// would otherwise be the only allocation left on the parallel backend's
// full-step zero-alloc path.
type adamArgs struct {
	cfg           AdamConfig
	bc1, bc2      float64
	params, grads []float32
	m, v          []float32
}

var adamArgsPool = sync.Pool{New: func() any { return new(adamArgs) }}

//zinf:hotpath
func adamParChunk(ctx any, lo, hi int) {
	a := ctx.(*adamArgs)
	adamChunk(a.cfg, a.bc1, a.bc2, a.params, a.grads, a.m, a.v, lo, hi)
}

// adamElem applies the update to one element and returns the new param,
// momentum and variance. Small enough to inline into adamChunk's unrolled
// body; the arithmetic is exactly the historical serial loop's, so the
// unrolled kernel is bit-identical to adamChunkScalar.
//
//zinf:hotpath
func adamElem(b1, b2, lr, eps, wd, bc1, bc2 float64, p, g, mi, vi float32) (float32, float32, float32) {
	gf := float64(g)
	if wd != 0 {
		gf += wd * float64(p)
	}
	mf := b1*float64(mi) + (1-b1)*gf
	vf := b2*float64(vi) + (1-b2)*gf*gf
	update := (mf / bc1) / (math.Sqrt(vf/bc2) + eps)
	return float32(float64(p) - lr*update), float32(mf), float32(vf)
}

// adamChunk applies the elementwise update to [lo, hi). Each element is
// touched exactly once with no cross-element reduction, so partitioned
// execution is bit-identical to serial. The body processes four elements
// per iteration through three-index subslices: each element's update chain
// ends in a divide and a square root, so the win is keeping four
// independent sqrt/div chains in flight rather than one.
//
//zinf:hotpath
func adamChunk(cfg AdamConfig, bc1, bc2 float64, params, grads, m, v []float32, lo, hi int) {
	b1, b2 := cfg.Beta1, cfg.Beta2
	lr, eps, wd := cfg.LR, cfg.Eps, cfg.WeightDecay
	i := lo
	for ; i+4 <= hi; i += 4 {
		p := params[i : i+4 : i+4]
		g := grads[i : i+4 : i+4]
		mm := m[i : i+4 : i+4]
		vv := v[i : i+4 : i+4]
		p[0], mm[0], vv[0] = adamElem(b1, b2, lr, eps, wd, bc1, bc2, p[0], g[0], mm[0], vv[0])
		p[1], mm[1], vv[1] = adamElem(b1, b2, lr, eps, wd, bc1, bc2, p[1], g[1], mm[1], vv[1])
		p[2], mm[2], vv[2] = adamElem(b1, b2, lr, eps, wd, bc1, bc2, p[2], g[2], mm[2], vv[2])
		p[3], mm[3], vv[3] = adamElem(b1, b2, lr, eps, wd, bc1, bc2, p[3], g[3], mm[3], vv[3])
	}
	for ; i < hi; i++ {
		params[i], m[i], v[i] = adamElem(b1, b2, lr, eps, wd, bc1, bc2, params[i], grads[i], m[i], v[i])
	}
}

// adamChunkScalar is the pre-unroll serial loop, retained as the
// bit-equality baseline for the unrolled kernel and as the roofline
// harness's scalar Adam measurement (via StepVecScalar).
//
//zinf:hotpath
func adamChunkScalar(cfg AdamConfig, bc1, bc2 float64, params, grads, m, v []float32, lo, hi int) {
	b1, b2 := cfg.Beta1, cfg.Beta2
	lr, eps, wd := cfg.LR, cfg.Eps, cfg.WeightDecay
	for i := lo; i < hi; i++ {
		gf := float64(grads[i])
		if wd != 0 {
			gf += wd * float64(params[i])
		}
		mf := b1*float64(m[i]) + (1-b1)*gf
		vf := b2*float64(v[i]) + (1-b2)*gf*gf
		m[i] = float32(mf)
		v[i] = float32(vf)
		update := (mf / bc1) / (math.Sqrt(vf/bc2) + eps)
		params[i] = float32(float64(params[i]) - lr*update)
	}
}

// StepVecScalar is StepVec on the pre-unroll scalar loop — the roofline
// harness's baseline. Bit-identical to StepVec.
//
//zinf:hotpath
func StepVecScalar(cfg AdamConfig, step int, params, grads, m, v []float32) {
	if len(params) != len(grads) || len(params) != len(m) || len(params) != len(v) {
		panic("optim: StepVec length mismatch")
	}
	bc1 := 1 - math.Pow(cfg.Beta1, float64(step))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(step))
	adamChunkScalar(cfg, bc1, bc2, params, grads, m, v, 0, len(grads))
}

// State exposes the momentum and variance vectors for offload/serialization.
func (a *Adam) State() (m, v []float32) { return a.m, a.v }

// LoadState restores momentum/variance and the step counter (for round
// trips through CPU/NVMe offload).
func (a *Adam) LoadState(m, v []float32, step int) {
	if len(m) != len(a.m) || len(v) != len(a.v) {
		panic("optim: LoadState length mismatch")
	}
	copy(a.m, m)
	copy(a.v, v)
	a.step = step
}

// LossScaler implements dynamic loss scaling for fp16 training: the loss is
// multiplied by Scale before backward; gradients are unscaled before the
// optimizer step; steps that produce non-finite gradients are skipped and
// the scale halved; after GrowthInterval clean steps the scale doubles.
type LossScaler struct {
	Scale          float64
	GrowthInterval int
	MaxScale       float64

	goodSteps int
	skipped   int
}

// NewLossScaler returns a scaler starting at scale (e.g. 65536).
func NewLossScaler(scale float64) *LossScaler {
	return &LossScaler{Scale: scale, GrowthInterval: 100, MaxScale: 1 << 24}
}

// StaticLossScaler returns a non-adaptive scaler (GrowthInterval disabled).
func StaticLossScaler(scale float64) *LossScaler {
	return &LossScaler{Scale: scale, GrowthInterval: math.MaxInt, MaxScale: scale}
}

// Update records whether the step overflowed and adapts the scale.
// It returns true when the optimizer step must be skipped.
//
//zinf:hotpath
func (s *LossScaler) Update(overflow bool) (skip bool) {
	if overflow {
		s.Scale = math.Max(s.Scale/2, 1)
		s.goodSteps = 0
		s.skipped++
		return true
	}
	s.goodSteps++
	if s.goodSteps >= s.GrowthInterval && s.Scale < s.MaxScale {
		s.Scale *= 2
		s.goodSteps = 0
	}
	return false
}

// Skipped returns the number of overflow-skipped steps.
func (s *LossScaler) Skipped() int { return s.skipped }

// State exposes the full dynamic-scaling state for checkpointing: the
// current scale, the clean-step counter toward the next growth, and the
// cumulative skip count. Restoring all three (see Restore) is required for
// bit-identical resume — a resumed run that reset goodSteps would double
// the scale at a different step than the uninterrupted run.
func (s *LossScaler) State() (scale float64, goodSteps, skipped int) {
	return s.Scale, s.goodSteps, s.skipped
}

// Restore reinstates state captured by State.
func (s *LossScaler) Restore(scale float64, goodSteps, skipped int) {
	s.Scale = scale
	s.goodSteps = goodSteps
	s.skipped = skipped
}

// UnscaleCheck divides grads by the scale in place and reports whether any
// element is NaN/Inf (checked before unscaling, as overflow happens in the
// scaled fp16 domain).
//
//zinf:hotpath
func UnscaleCheck(grads []float32, scale float64) (overflow bool) {
	if tensor.HasNaNOrInf(grads) {
		return true
	}
	inv := float32(1 / scale)
	if inv != 1 {
		tensor.Scale(inv, grads)
	}
	return false
}
