package optim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// The 4-wide unrolled adamChunk must stay bit-identical to the retained
// scalar loop (StepVecScalar) for every length — remainder tail included —
// with and without weight decay, across several steps so the bias
// corrections move.
func TestStepVecMatchesScalar(t *testing.T) {
	cfgs := []AdamConfig{
		DefaultAdamConfig(),
		{LR: 3e-4, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8, WeightDecay: 0.1},
	}
	for _, cfg := range cfgs {
		for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 31, 257, 1 << 12} {
			pv := make([]float32, n)
			ps := make([]float32, n)
			g := make([]float32, n)
			mv, vv := make([]float32, n), make([]float32, n)
			ms, vs := make([]float32, n), make([]float32, n)
			tensor.NewRNG(uint64(n)).FillNormal(pv, 1)
			copy(ps, pv)
			for step := 1; step <= 3; step++ {
				tensor.NewRNG(uint64(n*10+step)).FillNormal(g, 1)
				StepVec(cfg, step, pv, g, mv, vv)
				StepVecScalar(cfg, step, ps, g, ms, vs)
				for i := 0; i < n; i++ {
					if math.Float32bits(pv[i]) != math.Float32bits(ps[i]) ||
						math.Float32bits(mv[i]) != math.Float32bits(ms[i]) ||
						math.Float32bits(vv[i]) != math.Float32bits(vs[i]) {
						t.Fatalf("wd=%v n=%d step=%d: [%d] p %g/%g m %g/%g v %g/%g",
							cfg.WeightDecay, n, step, i, pv[i], ps[i], mv[i], ms[i], vv[i], vs[i])
					}
				}
			}
		}
	}
}
