package analysis

import (
	"go/ast"
	"go/types"
)

// TicketAwait verifies that every asynchronous collective, NVMe or
// checkpoint-commit ticket — a comm.Ticket, *nvme.Ticket or *ckpt.Ticket
// returned by the *Async collectives, ReadRegion/WriteRegion, the
// checkpoint writer's Submit and friends — reaches a Wait, or is handed off
// into the machinery that will wait for it (an overlap.Pending record, an
// in-flight struct, a deferred reaper) before the issuing function exits.
// The PR 2 drain-barrier bug class — an async reduce-scatter whose ticket
// never reaches the drain before the overflow check — and dropped NVMe
// write errors both reduce to a locally held ticket leaking out of scope.
var TicketAwait = &Analyzer{
	Name: "ticketawait",
	Doc:  "async collective/NVMe tickets must be awaited or handed off before function exit",
	Run: func(pass *Pass) error {
		return runObligations(pass, ticketSpec)
	},
}

var ticketSpec = &obligationSpec{
	noun: "async ticket",
	acquire: func(info *types.Info, call *ast.CallExpr) (string, bool, bool) {
		t := info.TypeOf(call)
		if t == nil {
			return "", false, false
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Ticket" || named.Obj().Pkg() == nil {
			return "", false, false
		}
		switch named.Obj().Pkg().Name() {
		case "comm", "nvme", "ckpt":
			name := "async ticket"
			if fn := calledMethod(info, call); fn != nil {
				name = "ticket from " + fn.Name()
			}
			return name, false, true
		}
		return "", false, false
	},
	wait: func(info *types.Info, sel *ast.SelectorExpr) bool {
		return sel.Sel.Name == "Wait"
	},
	// A ticket passed whole to any function (overlap.Drain, a drain helper)
	// is a hand-off: tickets are one-word records whose Wait the callee now
	// owns. Buffers, by contrast, are borrowed by callees — see pinnedleak.
	argEscapes: true,
}
