package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked local package: the unit the analyzers run on.
type Package struct {
	Path  string // import path ("repro/internal/zero", or "zero" under a fixture root)
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of one source root using only
// the standard library: module-local import paths resolve to directories
// under RootDir, everything else falls through to the source importer (which
// type-checks the standard library from GOROOT source). This is the
// golang.org/x/tools/go/packages role, reimplemented on go/parser + go/types
// because this repo is dependency-free by policy (see README "Static
// analysis").
type Loader struct {
	Fset *token.FileSet
	// RootDir is the module root (the directory holding go.mod) or an
	// analysistest fixture root (testdata/src).
	RootDir string
	// ModulePath is the module's import-path prefix; empty for fixture
	// roots, where import "mem" resolves to RootDir/mem.
	ModulePath string
	// IncludeTests parses _test.go files too (off for the lint tool: hot
	// paths live in non-test code and tests are free to allocate).
	IncludeTests bool

	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader returns a loader rooted at rootDir. modulePath may be empty for
// fixture roots.
func NewLoader(rootDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		RootDir:    rootDir,
		ModulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}
}

// FindModuleRoot walks upward from dir to the directory containing go.mod
// and returns that directory plus the module path declared in it.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// local reports whether path is a package of this source root, and the
// directory it maps to.
func (l *Loader) local(path string) (dir string, ok bool) {
	if l.ModulePath == "" {
		d := filepath.Join(l.RootDir, filepath.FromSlash(path))
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, true
		}
		return "", false
	}
	if path == l.ModulePath {
		return l.RootDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.RootDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer over the local root + standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.local(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir (memoized).
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Load resolves patterns ("./...", "./internal/zero", "internal/comm") to
// local packages, type-checking them and their local dependencies. The
// returned slice holds only the packages matched by the patterns (the ones
// diagnostics are reported for), sorted by path.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	seen := make(map[string]bool)
	var out []*Package
	add := func(dir string) error {
		path, err := l.dirToPath(dir)
		if err != nil {
			return err
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		if !hasGoFiles(dir, l.IncludeTests) {
			return nil
		}
		p, err := l.load(path, dir)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			if d, ok := l.local(pat); ok && !strings.HasPrefix(pat, ".") {
				dir = d // import-path pattern
			} else {
				dir = filepath.Join(l.RootDir, filepath.FromSlash(pat))
			}
		}
		if !rec {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := d.Name()
			if p != dir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor") {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// All returns every package loaded so far (targets and local dependencies).
func (l *Loader) All() map[string]*Package { return l.pkgs }

// dirToPath maps a directory under RootDir back to its import path.
func (l *Loader) dirToPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside the source root %s", dir, l.RootDir)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.ModulePath == "" {
			return "", fmt.Errorf("analysis: fixture root itself is not a package")
		}
		return l.ModulePath, nil
	}
	if l.ModulePath == "" {
		return rel, nil
	}
	return l.ModulePath + "/" + rel, nil
}

// hasGoFiles reports whether dir directly contains analyzable Go files.
func hasGoFiles(dir string, includeTests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
