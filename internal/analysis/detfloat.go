package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFloat guards the bit-identity contract (PR 1/PR 5): every engine,
// backend, topology and partition strategy must produce byte-identical
// trajectories, which requires every floating-point reduction to accumulate
// in a deterministic global rank order. In the packages that carry that
// contract (comm, zero, tensor) it forbids:
//
//   - math.FMA — contracts the intermediate rounding step, so results
//     diverge from the two-op reference on platforms that lower it
//     differently;
//   - floating-point accumulation inside `range` over a map — Go randomizes
//     map iteration order, so a sum folded over it is a different
//     permutation (and a different fp32 rounding sequence) every run.
//
// Reductions must instead iterate slices in index order (the rank-order
// accumulation in comm's compute functions is the canonical pattern).
var DetFloat = &Analyzer{
	Name: "detfloat",
	Doc:  "forbid nondeterministic float accumulation (math.FMA, reductions over map iteration) in bit-identity packages",
	Run:  runDetFloat,
}

// detFloatPkgs are the package names carrying the bit-identity contract.
var detFloatPkgs = map[string]bool{"comm": true, "zero": true, "tensor": true}

func runDetFloat(pass *Pass) error {
	if !detFloatPkgs[pass.Pkg.Name()] {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calledMethod(info, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "math" && fn.Name() == "FMA" {
					pass.Reportf(n.Pos(), "math.FMA skips the intermediate rounding and breaks cross-platform bit-identity; use separate multiply and add")
				}
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkMapRangeBody flags float accumulation statements inside a map-range
// body: compound assignments (+=, -=, *=, /=) on float operands, and
// x = x <op> ... float self-updates.
func checkMapRangeBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(as.Lhs[0]) {
				pass.Reportf(as.Pos(), "float accumulation inside range-over-map folds in random iteration order and breaks bit-identity; iterate a deterministically ordered slice instead")
			}
		case token.ASSIGN:
			for i := range as.Lhs {
				if i >= len(as.Rhs) || !isFloat(as.Lhs[i]) {
					continue
				}
				if bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); ok {
					lhs := types.ExprString(as.Lhs[i])
					if types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs {
						pass.Reportf(as.Pos(), "float accumulation inside range-over-map folds in random iteration order and breaks bit-identity; iterate a deterministically ordered slice instead")
					}
				}
			}
		}
		return true
	})
}
