// Package pinned exercises the pinnedleak analyzer against the stub mem
// package: the PR 2 error-return leak shape fires, the engine idioms
// (defer, ok-guard, escape into an in-flight record) stay quiet.
package pinned

import (
	"errors"

	"mem"
)

var errBoom = errors.New("boom")

// LeakOnError is the historical bug shape: an error return between Acquire
// and Release leaks the buffer.
func LeakOnError(p *mem.PinnedPool, fail bool) error {
	buf := p.Acquire() // want `pinned buffer from PinnedPool.Acquire is not released or handed off`
	if fail {
		return errBoom
	}
	p.Release(buf)
	return nil
}

// ArenaLeak is the same shape through a size-classed arena.
func ArenaLeak(a *mem.Arena[float32], fail bool) error {
	s := a.Get(64) // want `arena buffer from Arena.Get is not released or handed off`
	if fail {
		return errBoom
	}
	a.Put(s)
	return nil
}

// Overwritten drops the first buffer by reusing its variable.
func Overwritten(p *mem.PinnedPool) {
	buf := p.Acquire() // want `is overwritten at line \d+ before being released or handed off`
	buf = p.Acquire()
	p.Release(buf)
}

// Balanced releases on every path via defer.
func Balanced(p *mem.PinnedPool, fail bool) error {
	buf := p.Acquire()
	defer p.Release(buf)
	if fail {
		return errBoom
	}
	return nil
}

// Guarded holds nothing on the failed-TryAcquire arm.
func Guarded(p *mem.PinnedPool) {
	buf, ok := p.TryAcquire()
	if !ok {
		return
	}
	p.Release(buf)
}

type inflight struct{ buf []byte }

// Escapes hands the buffer off into an in-flight record; ownership moves
// with it.
func Escapes(p *mem.PinnedPool, dst *inflight) {
	buf := p.Acquire()
	*dst = inflight{buf: buf}
}

// Returned transfers ownership to the caller.
func Returned(p *mem.PinnedPool) []byte {
	buf := p.Acquire()
	return buf
}

// SlicedRelease releases through a reslice of the tracked buffer.
func SlicedRelease(p *mem.PinnedPool, n int) {
	buf := p.Acquire()
	p.Release(buf[:n])
}

// CrashPath may keep the buffer: the process is going down.
func CrashPath(p *mem.PinnedPool, fail bool) {
	buf := p.Acquire()
	if fail {
		panic("fatal")
	}
	p.Release(buf)
}
