// Package allowdir exercises the //zinf: directive machinery: a reasoned
// inline allow suppresses its diagnostic, while unused, reason-less and
// misplaced directives are themselves errors.
package allowdir

// Hot carries a deliberate allocation excused by an inline allow; no
// diagnostic must surface for it.
//
//zinf:hotpath
func Hot(n int) []byte {
	return make([]byte, n) //zinf:allow hotpathalloc fixture demonstrates a reasoned inline suppression
}

// Stale has nothing to suppress, so its allow is flagged as unused.
func Stale() {
	// want+1 `unused //zinf:allow hotpathalloc directive`
	//zinf:allow hotpathalloc there is nothing on this line to excuse
	_ = 0
}

// NoReason omits the mandatory reason.
func NoReason() {
	// want+1 `//zinf:allow requires an analyzer name and a reason`
	//zinf:allow hotpathalloc
	_ = 0
}

// Misplaced puts the hotpath mark outside a function doc comment.
func Misplaced() {
	// want+1 `//zinf:hotpath must be in a function's doc comment`
	//zinf:hotpath
	_ = 0
}

// Bogus uses an unknown directive.
// want+2 `unknown directive //zinf:bogus`
//
//zinf:bogus
func Bogus() {}
