// Package comm is a fixture stub mirroring the repo's internal/comm ticket
// surface for the ticketawait analyzer (matched by package and type name).
package comm

// Ticket mirrors comm.Ticket.
type Ticket struct{ ch chan struct{} }

// Wait blocks until the collective completes.
func (t *Ticket) Wait() {}

// Comm mirrors the collective entry-point surface.
type Comm struct{}

// AllGatherHalfAsync issues an asynchronous allgather.
func (c *Comm) AllGatherHalfAsync(dst, src []uint16) Ticket { return Ticket{} }

// ReduceScatterHalfAsync issues an asynchronous reduce-scatter.
func (c *Comm) ReduceScatterHalfAsync(dst, src []uint16) Ticket { return Ticket{} }
