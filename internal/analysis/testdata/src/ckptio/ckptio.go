// Package ckptio exercises pinnedleak and ticketawait over the checkpoint
// writer surface: every staging buffer must reach Submit (ownership
// transfer) or Recycle (error path), and every commit ticket must be
// awaited or handed off.
package ckptio

import "ckpt"

// serialize stands in for an engine's SaveRankState.
func serialize(st *ckpt.Staging) error {
	_, err := st.Write([]byte("state"))
	return err
}

// LeakOnError drops the staging buffer when serialization fails — the
// checkpoint analogue of the PR 2 pinned-buffer leak.
func LeakOnError(w *ckpt.Writer, step int) error {
	st := w.Stage() // want `staging buffer from Writer.Stage is not released or handed off`
	if err := serialize(st); err != nil {
		return err
	}
	w.Submit(uint64(step), step, "rank-0000.zst", st).Wait()
	return nil
}

// DroppedTicket submits correctly but discards the commit ticket, losing
// the commit error.
func DroppedTicket(w *ckpt.Writer, step int) error {
	st := w.Stage()
	if err := serialize(st); err != nil {
		w.Recycle(st)
		return err
	}
	w.Submit(uint64(step), step, "rank-0000.zst", st) // want `ticket from Submit is discarded`
	return nil
}

// TicketLeaksOnPath waits only on one branch.
func TicketLeaksOnPath(w *ckpt.Writer, step int, skip bool) error {
	st := w.Stage()
	t := w.Submit(uint64(step), step, "rank-0000.zst", st) // want `ticket from Submit is not awaited or handed off`
	if skip {
		return nil
	}
	return t.Wait()
}

// Balanced is the correct shape: Recycle on the error path, Submit + Wait
// on the success path.
func Balanced(w *ckpt.Writer, step int) error {
	st := w.Stage()
	if err := serialize(st); err != nil {
		w.Recycle(st)
		return err
	}
	return w.Submit(uint64(step), step, "rank-0000.zst", st).Wait()
}

// HandOff appends the ticket to a pending list drained elsewhere — the
// Train-loop shape (bounded pipelining of in-flight snapshots).
func HandOff(w *ckpt.Writer, step int, pending []*ckpt.Ticket) ([]*ckpt.Ticket, error) {
	st := w.Stage()
	if err := serialize(st); err != nil {
		w.Recycle(st)
		return pending, err
	}
	return append(pending, w.Submit(uint64(step), step, "rank-0000.zst", st)), nil
}
