// Package ticket exercises the ticketawait analyzer against the stub comm
// and nvme packages: dropped tickets fire, awaited and handed-off tickets
// stay quiet, and //zinf:allow documents a deliberate fire-and-forget.
package ticket

import (
	"comm"
	"nvme"
)

// Dropped discards the ticket outright — the drain-barrier bug shape.
func Dropped(c *comm.Comm, dst, src []uint16) {
	c.ReduceScatterHalfAsync(dst, src) // want `ticket from ReduceScatterHalfAsync is discarded`
}

// DroppedBlank discards it explicitly.
func DroppedBlank(c *comm.Comm, dst, src []uint16) {
	_ = c.AllGatherHalfAsync(dst, src) // want `ticket from AllGatherHalfAsync is discarded via _`
}

// EarlyReturn leaks the ticket on the skip path.
func EarlyReturn(c *comm.Comm, dst, src []uint16, skip bool) {
	t := c.ReduceScatterHalfAsync(dst, src) // want `ticket from ReduceScatterHalfAsync is not awaited or handed off`
	if skip {
		return
	}
	t.Wait()
}

// DroppedWriteError skips the Wait on one path, losing the NVMe write error.
func DroppedWriteError(s *nvme.Store, b []byte, skip bool) error {
	t := s.WriteAsync(0, b) // want `ticket from WriteAsync is not awaited or handed off`
	if skip {
		return nil
	}
	return t.Wait()
}

// Awaited waits before returning.
func Awaited(c *comm.Comm, dst, src []uint16) {
	t := c.AllGatherHalfAsync(dst, src)
	t.Wait()
}

// WaitError surfaces the NVMe error to the caller.
func WaitError(s *nvme.Store, b []byte) error {
	t := s.WriteAsync(0, b)
	return t.Wait()
}

type pending struct {
	t comm.Ticket
}

// HandOff stores the ticket in a pending record whose owner will drain it.
func HandOff(c *comm.Comm, dst, src []uint16, q []pending) []pending {
	q = append(q, pending{t: c.ReduceScatterHalfAsync(dst, src)})
	return q
}

// PassedWhole hands the ticket to a drain helper, which owns the Wait.
func PassedWhole(c *comm.Comm, dst, src []uint16) {
	t := c.AllGatherHalfAsync(dst, src)
	drain(t)
}

func drain(t comm.Ticket) { t.Wait() }

// FireAndForget deliberately drops a ticket; the inline allow documents it.
func FireAndForget(c *comm.Comm, dst, src []uint16) {
	//zinf:allow ticketawait fixture demonstrates a documented fire-and-forget
	c.ReduceScatterHalfAsync(dst, src)
}
