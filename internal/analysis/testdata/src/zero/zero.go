// Package zero exercises the detfloat analyzer (it runs only in the
// bit-identity packages comm, zero and tensor, so the fixture borrows the
// zero package name).
package zero

import "math"

// Fused uses the fused multiply-add, which skips a rounding step.
func Fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math.FMA skips the intermediate rounding`
}

// SumMap folds float values in randomized map-iteration order.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation inside range-over-map`
	}
	return s
}

// ScaledAssign is the x = x*v self-update form of the same fold.
func ScaledAssign(m map[int]float32) float32 {
	s := float32(1)
	for _, v := range m {
		s = s * v // want `float accumulation inside range-over-map`
	}
	return s
}

// SumSlice is the deterministic pattern: index order over a slice.
func SumSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// CountMap accumulates integers, which round the same in any order.
func CountMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
