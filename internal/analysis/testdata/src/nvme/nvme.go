// Package nvme is a fixture stub mirroring the repo's internal/nvme ticket
// surface for the ticketawait analyzer.
package nvme

// Ticket mirrors nvme.Ticket; Wait returns the I/O error.
type Ticket struct{ err error }

// Wait blocks until the I/O completes and returns its error.
func (t *Ticket) Wait() error { return t.err }

// Store mirrors the async I/O surface.
type Store struct{}

// WriteAsync issues an asynchronous write.
func (s *Store) WriteAsync(off int64, b []byte) *Ticket { return &Ticket{} }
