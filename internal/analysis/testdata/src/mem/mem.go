// Package mem is a fixture stub mirroring the repo's internal/mem API
// surface; the pinnedleak analyzer matches by package name and method name,
// so only the signatures matter.
package mem

// PinnedPool mirrors mem.PinnedPool.
type PinnedPool struct{ ch chan []byte }

// NewPinnedPool returns a pool with n buffers of the given size.
func NewPinnedPool(n, size int) *PinnedPool {
	p := &PinnedPool{ch: make(chan []byte, n)}
	for i := 0; i < n; i++ {
		p.ch <- make([]byte, size)
	}
	return p
}

// Acquire blocks until a buffer is free.
func (p *PinnedPool) Acquire() []byte { return <-p.ch }

// TryAcquire returns a buffer or false without blocking.
func (p *PinnedPool) TryAcquire() ([]byte, bool) {
	select {
	case b := <-p.ch:
		return b, true
	default:
		return nil, false
	}
}

// Release returns a buffer to the pool.
func (p *PinnedPool) Release(b []byte) { p.ch <- b }

// Arena mirrors mem.Arena.
type Arena[T any] struct{ free [][]T }

// Get returns a buffer of length n.
func (a *Arena[T]) Get(n int) []T { return make([]T, n) }

// GetZeroed returns a zeroed buffer of length n.
func (a *Arena[T]) GetZeroed(n int) []T { return make([]T, n) }

// Put recycles a buffer.
func (a *Arena[T]) Put(s []T) {}
