// Package ckpt is a fixture stub mirroring the repo's internal/ckpt async
// checkpoint-writer surface for the pinnedleak and ticketawait analyzers.
package ckpt

// Ticket mirrors ckpt.Ticket; Wait returns the generation's commit error.
type Ticket struct{ err error }

// Wait blocks for the commit and returns its error.
func (t *Ticket) Wait() error { return t.err }

// Staging mirrors the arena-backed staging buffer.
type Staging struct{ buf []byte }

// Write implements io.Writer.
func (s *Staging) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// Writer mirrors the async checkpoint writer.
type Writer struct{}

// Stage returns an empty staging buffer; ownership obligations attach here.
func (w *Writer) Stage() *Staging { return &Staging{} }

// Recycle returns an unsubmitted staging buffer to the arena.
func (w *Writer) Recycle(st *Staging) {}

// Submit contributes one file to a generation, adopting st, and returns the
// generation's shared commit ticket.
func (w *Writer) Submit(gen uint64, step int, name string, st *Staging) *Ticket {
	return &Ticket{}
}
