// Package hotpath exercises the hotpathalloc analyzer: every allocating
// construct fires inside a marked function, the blessed idioms stay quiet.
package hotpath

import "fmt"

var sink []int

// helper is deliberately unmarked, so calling it from a hot path trips the
// transitivity rule.
func helper() int { return 1 }

// noted is a marked no-op callee.
//
//zinf:hotpath
func noted() {}

// each calls yield on every index; its parameter appears only in call
// position, so closures handed to it are borrowed, not escaping.
//
//zinf:hotpath
func each(n int, yield func(int)) {
	for i := 0; i < n; i++ {
		yield(i)
	}
}

// keep retains fn, so closures handed to it are NOT borrowed.
//
//zinf:hotpath
func keep(fn func(int)) {
	kept = fn
}

var kept func(int)

type pair struct{ a, b int }

// Alloc violates one allocation rule per line.
//
//zinf:hotpath
func Alloc(m map[string]int, xs, ys []int, s, t string) []int {
	buf := make([]int, 8) // want `make allocates in a hotpath function`
	p := new(int)         // want `new allocates in a hotpath function`
	xs = append(ys, 1)    // want `append into a fresh slice`
	m[s] = len(xs)        // want `map write in a hotpath function`
	u := s + t            // want `string concatenation allocates`
	b := []byte(u)        // want `string conversion allocates`
	fmt.Println()         // want `call to fmt.Println allocates`
	n := helper()         // want `hotpath function calls hotpath.helper, which is not marked`
	go noted()            // want `go statement allocates a goroutine`
	xs = append(xs, n, *p, len(b), len(buf))
	return xs
}

// Ref allocates through a pointer-taking composite literal.
//
//zinf:hotpath
func Ref() *pair {
	return &pair{} // want `&composite literal allocates`
}

// Boxes allocates by boxing a non-pointer-shaped value into an interface.
//
//zinf:hotpath
func Boxes(n int) any {
	var a any = n // want `boxing int into`
	_ = a
	return n // want `boxing int into`
}

// Closures: a retained capturing closure fires; a borrowed one does not.
//
//zinf:hotpath
func Closures(n int) {
	keep(func(i int) { sink[i] = n }) // want `closure captures n in a hotpath function`
	each(n, func(i int) { sink[i] = n })
}

// BorrowedBody proves a borrowed closure's body is still checked as part of
// the hot path.
//
//zinf:hotpath
func BorrowedBody(n int) {
	each(n, func(i int) {
		_ = make([]int, i) // want `make allocates in a hotpath function`
	})
}

// CleanAppend uses the two amortized-free self-append idioms.
//
//zinf:hotpath
func CleanAppend(xs []int) []int {
	xs = append(xs, 1)
	xs = append(xs[:0], 2)
	return xs
}

// Crash may allocate freely inside panic arguments: the process is dying.
//
//zinf:hotpath
func Crash(kind string) {
	if kind == "bad" {
		panic(fmt.Sprintf("hotpath: bad kind %q", kind))
	}
}
