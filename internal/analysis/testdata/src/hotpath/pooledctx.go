// pooledctx exercises the allocation-free dispatch idiom the model layers
// adopted with the step arena: a sync.Pool'd args struct plus a top-level
// chunk function handed to a ParRangeCtx-style fan-out, instead of a
// capturing closure (which escapes through the retaining worker-pool API).
package hotpath

import "sync"

// chunkCtx carries a kernel's operands to its chunk function.
type chunkCtx struct {
	dst []int
	n   int
}

var chunkCtxPool = sync.Pool{New: func() any { return new(chunkCtx) }}

// chunkFn is the package-level worker body: no captures, ctx arrives boxed
// but pointer-shaped, so the dispatch allocates nothing.
//
//zinf:hotpath
func chunkFn(ctx any, lo, hi int) {
	c := ctx.(*chunkCtx)
	for i := lo; i < hi; i++ {
		c.dst[i] = c.n
	}
}

// parRangeCtx mimics tensor.Backend.ParRangeCtx: fn appears only in call
// position, so it is borrowed, and ctx is an opaque pointer.
//
//zinf:hotpath
func parRangeCtx(n int, ctx any, fn func(ctx any, lo, hi int)) {
	if n > 0 {
		fn(ctx, 0, n)
	}
}

// PooledDispatch is the blessed pattern end to end: pool Get with a type
// assertion, field assignment, dispatch, zero-value reset, pool Put. None of
// it allocates, none of it fires.
//
//zinf:hotpath
func PooledDispatch(dst []int, v int) {
	c := chunkCtxPool.Get().(*chunkCtx)
	c.dst, c.n = dst, v
	parRangeCtx(len(dst), c, chunkFn)
	*c = chunkCtx{}
	chunkCtxPool.Put(c)
}

// FreshCtxDispatch shows the mistake the pool exists to prevent: building
// the ctx per call.
//
//zinf:hotpath
func FreshCtxDispatch(dst []int, v int) {
	c := &chunkCtx{dst: dst, n: v} // want `&composite literal allocates`
	parRangeCtx(len(dst), c, chunkFn)
}

// ClosureDispatch shows the other mistake: capturing operands instead of
// threading them through the ctx. fn is borrowed here, but the closure body
// is still checked — and a retaining pool API would make the capture itself
// escape.
//
//zinf:hotpath
func ClosureDispatch(dst []int, v int) {
	parRangeCtx(len(dst), nil, func(_ any, lo, hi int) {
		tmp := make([]int, hi-lo) // want `make allocates in a hotpath function`
		for i := range tmp {
			dst[lo+i] = v
		}
	})
}

// ShapeReset is the tensor.ResetFP32Matrix idiom: reinitializing a recycled
// header's shape by self-append against its retained backing array —
// amortized allocation-free, so it stays quiet.
//
//zinf:hotpath
func ShapeReset(shape []int, rows, cols int) []int {
	shape = append(shape[:0], rows, cols)
	return shape
}

// WarmupGet is the arena free-list idiom: the steady-state pop is clean, and
// the cold-path make carries a reasoned //zinf:allow.
//
//zinf:hotpath
func WarmupGet(free [][]int, n int) ([]int, [][]int) {
	if k := len(free); k > 0 {
		s := free[k-1]
		return s[:n], free[:k-1]
	}
	return make([]int, n), free //zinf:allow hotpathalloc warmup pool miss; every steady-state get pops the free list
}
