package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared path-sensitive engine behind pinnedleak and
// ticketawait. Both checks are instances of the same local obligation
// problem: a call acquires a resource (a pinned/arena buffer, an async
// collective ticket) that must be discharged — released/awaited, or
// explicitly handed off — on every path out of the function, including
// error returns (the PR 2 bug class).
//
// The analysis is intraprocedural and deliberately honest about ownership
// transfer: an obligation is discharged not only by its release call but
// also when the resource escapes the function — returned, stored into a
// field/map/slice/composite literal, captured by a closure, or sent on a
// channel — because responsibility then lies with whoever holds the
// reference (the engines' in-flight records, pending lists and reaper
// goroutines all work this way). What remains must be balanced locally, and
// that is exactly the shape of the historical leaks.
//
// Control flow is interpreted over the structured AST: branches fork the
// abstract state and merge at join points, `x, ok :=` results and nil
// checks act as guards (the failure arm of TryAcquire holds nothing), loop
// bodies are interpreted once, and panic paths are exempt (the process is
// crashing; buffers are not coming back to the pool anyway).

// obligationSpec configures one analyzer instance of the engine.
type obligationSpec struct {
	// what the resource is called in diagnostics, e.g. "pinned/arena buffer".
	noun string
	// acquire classifies a call as creating an obligation; desc names the
	// resource in the diagnostic (e.g. "mem.PinnedPool.Acquire buffer").
	// guarded reports that the call's second result is an ok-bool guarding
	// the obligation (TryAcquire-style).
	acquire func(info *types.Info, call *ast.CallExpr) (desc string, guarded, ok bool)
	// release classifies a call as discharging the obligation passed as its
	// argument (Release/Put); the engine matches the argument (possibly
	// sliced) against tracked variables.
	release func(info *types.Info, call *ast.CallExpr) bool
	// wait classifies a method call on the tracked variable itself as a
	// discharge (Ticket.Wait).
	wait func(info *types.Info, sel *ast.SelectorExpr) bool
	// sink lists callees that take ownership of an argument (repo-specific
	// hand-off points, e.g. Param.SetData); a tracked variable passed to a
	// sink is discharged. Matched by method/function name.
	sink map[string]bool
	// argEscapes makes any plain call-argument use a discharge (tickets are
	// always handed off whole; buffers are usually borrowed, so pinnedleak
	// leaves this false and relies on release/sink/escape).
	argEscapes bool
}

type obligation struct {
	v        *types.Var
	pos      token.Pos
	desc     string
	guard    *types.Var // ok-bool from `x, ok :=` acquires, nil otherwise
	reported bool
}

type obState struct {
	live map[*types.Var]*obligation
}

func newObState() *obState { return &obState{live: make(map[*types.Var]*obligation)} }

func (s *obState) clone() *obState {
	c := newObState()
	for k, v := range s.live {
		c.live[k] = v
	}
	return c
}

func (s *obState) mergeFrom(o *obState) {
	for k, v := range o.live {
		if _, ok := s.live[k]; !ok {
			s.live[k] = v
		}
	}
}

// obWalker interprets one function body.
type obWalker struct {
	pass *Pass
	spec *obligationSpec
}

// runObligations runs spec over every function and function literal in the
// package.
func runObligations(pass *Pass, spec *obligationSpec) error {
	w := &obWalker{pass: pass, spec: spec}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.runBody(fn.Body)
				}
			case *ast.FuncLit:
				w.runBody(fn.Body)
			}
			return true
		})
	}
	return nil
}

func (w *obWalker) info() *types.Info { return w.pass.TypesInfo }

func (w *obWalker) runBody(body *ast.BlockStmt) {
	st := newObState()
	terminated := w.block(body.List, st)
	if !terminated {
		w.checkExit(st, body.End())
	}
}

// checkExit reports every obligation still live when a path leaves the
// function.
func (w *obWalker) checkExit(st *obState, exit token.Pos) {
	for _, ob := range st.live {
		if ob.reported {
			continue
		}
		ob.reported = true
		line := w.pass.Fset.Position(exit).Line
		w.pass.Reportf(ob.pos, "%s is not %s on the path leaving the function at line %d",
			ob.desc, w.spec.dischargeVerb(), line)
	}
}

func (s *obligationSpec) dischargeVerb() string {
	if s.argEscapes {
		return "awaited or handed off"
	}
	return "released or handed off"
}

// block interprets a statement list; reports and returns true if every path
// through it terminates (return/panic/branch).
func (w *obWalker) block(stmts []ast.Stmt, st *obState) bool {
	for _, s := range stmts {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt interprets one statement, returning whether it terminates the path.
func (w *obWalker) stmt(s ast.Stmt, st *obState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.ExprStmt:
		if w.isTerminatorCall(s.X) {
			return true
		}
		// A bare acquiring call discards its result — the obligation can
		// never be discharged.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if desc, _, isAcq := w.spec.acquire(w.info(), call); isAcq {
				w.pass.Reportf(call.Pos(), "%s is discarded; it must be %s", desc, w.spec.dischargeVerb())
			}
		}
		w.scanExpr(s.X, st)
		return false
	case *ast.AssignStmt:
		w.assign(s, st)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs, st)
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeVarsIn(r, st) // returning the resource transfers ownership
		}
		w.checkExit(st, s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		thenSt, elseSt := st.clone(), st.clone()
		w.applyGuard(s.Cond, thenSt, elseSt)
		w.scanExpr(s.Cond, st)
		thenTerm := w.stmt(s.Body, thenSt)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		st.live = make(map[*types.Var]*obligation)
		if !thenTerm {
			st.mergeFrom(thenSt)
		}
		if !elseTerm {
			st.mergeFrom(elseSt)
		}
		return thenTerm && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		body := st.clone()
		w.stmt(s.Body, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		st.mergeFrom(body)
		return false
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		body := st.clone()
		w.stmt(s.Body, body)
		st.mergeFrom(body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchLike(s, st)
	case *ast.SendStmt:
		w.escapeVarsIn(s.Value, st)
		return false
	case *ast.GoStmt:
		w.escapeCall(s.Call, st)
		return false
	case *ast.DeferStmt:
		// A deferred release/wait discharges on every path from here on.
		if w.dischargeCall(s.Call, st) {
			return false
		}
		w.escapeCall(s.Call, st)
		return false
	case *ast.IncDecStmt:
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this structured region; treated as path
		// end without an exit check (conservatively lenient).
		return true
	default:
		return false
	}
}

// switchLike forks the state per clause and merges the non-terminated arms.
func (w *obWalker) switchLike(s ast.Stmt, st *obState) bool {
	var init ast.Stmt
	var tag ast.Expr
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, body = s.Init, s.Tag, s.Body
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if init != nil {
		w.stmt(init, st)
	}
	if tag != nil {
		w.scanExpr(tag, st)
	}
	entry := st.clone()
	merged := newObState()
	allTerm := true
	for _, c := range body.List {
		cs := entry.clone()
		var term bool
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanExpr(e, cs)
			}
			term = w.block(c.Body, cs)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(c.Comm, cs)
			}
			term = w.block(c.Body, cs)
		}
		if !term {
			merged.mergeFrom(cs)
			allTerm = false
		}
	}
	st.live = merged.live
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true // a default-less select blocks; no fallthrough path
	}
	if !hasDefault {
		st.mergeFrom(entry)
		allTerm = false
	}
	return allTerm && hasDefault
}

// valueSpec handles `var x = acquire()` declarations.
func (w *obWalker) valueSpec(vs *ast.ValueSpec, st *obState) {
	for i, val := range vs.Values {
		w.scanExpr(val, st)
		if call, ok := ast.Unparen(val).(*ast.CallExpr); ok && i < len(vs.Names) {
			w.maybeAcquire(vs.Names[i], nil, call, st)
		}
	}
}

// assign handles acquires, releases-by-overwrite and escapes in one
// assignment statement.
func (w *obWalker) assign(s *ast.AssignStmt, st *obState) {
	// Single call on the RHS: acquire forms `x := f()` / `x, ok := f()`.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			w.scanExpr(call, st)
			var okIdent *ast.Ident
			if len(s.Lhs) == 2 {
				okIdent, _ = s.Lhs[1].(*ast.Ident)
			}
			if len(s.Lhs) >= 1 {
				if id, okL := s.Lhs[0].(*ast.Ident); okL {
					w.maybeAcquire(id, okIdent, call, st)
				}
			}
			w.lhsEscapes(s.Lhs, st)
			return
		}
	}
	for _, r := range s.Rhs {
		w.scanExpr(r, st)
		// Assigning a tracked variable to anything transfers ownership —
		// unless it is a self-reslice (x = x[:n]), which keeps tracking.
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Rhs {
				if base := trackedBase(w.info(), s.Rhs[i], st); base != nil {
					if lhsID, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj, _ := w.info().Uses[lhsID].(*types.Var); obj != nil && obj == base.v {
							continue // self-reslice
						}
					}
					delete(st.live, base.v)
				}
			}
		}
	}
	w.lhsEscapes(s.Lhs, st)
}

// lhsEscapes handles tracked variables used inside LHS index expressions
// (rare) — nothing to do for plain identifiers.
func (w *obWalker) lhsEscapes(lhs []ast.Expr, st *obState) {
	for _, l := range lhs {
		if ix, ok := l.(*ast.IndexExpr); ok {
			w.escapeVarsIn(ix.Index, st)
		}
	}
}

// maybeAcquire records an obligation if call matches the spec's acquire
// pattern. Overwriting a still-live obligation is itself a leak.
func (w *obWalker) maybeAcquire(id *ast.Ident, okIdent *ast.Ident, call *ast.CallExpr, st *obState) {
	desc, guarded, ok := w.spec.acquire(w.info(), call)
	if !ok {
		return
	}
	if id.Name == "_" {
		// Explicitly discarding the resource drops the obligation on the
		// floor; a deliberate drop needs a //zinf:allow with a reason.
		w.pass.Reportf(call.Pos(), "%s is discarded via _; it must be %s", desc, w.spec.dischargeVerb())
		return
	}
	var v *types.Var
	if obj := w.info().Defs[id]; obj != nil {
		v, _ = obj.(*types.Var)
	} else if obj := w.info().Uses[id]; obj != nil {
		v, _ = obj.(*types.Var)
	}
	if v == nil {
		return // non-variable target
	}
	if prev, live := st.live[v]; live && !prev.reported {
		prev.reported = true
		w.pass.Reportf(prev.pos, "%s is overwritten at line %d before being %s",
			prev.desc, w.pass.Fset.Position(call.Pos()).Line, w.spec.dischargeVerb())
	}
	ob := &obligation{v: v, pos: call.Pos(), desc: desc}
	if guarded && okIdent != nil {
		if g, _ := w.info().Defs[okIdent].(*types.Var); g != nil {
			ob.guard = g
		} else if g, _ := w.info().Uses[okIdent].(*types.Var); g != nil {
			ob.guard = g
		}
	}
	st.live[v] = ob
}

// applyGuard interprets `if ok`, `if !ok`, `if x == nil`, `if x != nil`
// conditions against guarded/tracked obligations: the arm in which the
// resource was never acquired (or is nil) holds no obligation.
func (w *obWalker) applyGuard(cond ast.Expr, thenSt, elseSt *obState) {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		w.applyGuardIdent(u.X, elseSt, thenSt)
		return
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && (b.Op == token.EQL || b.Op == token.NEQ) {
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		if isNilIdent(w.info(), y) {
			w.applyNilGuard(x, b.Op, thenSt, elseSt)
		} else if isNilIdent(w.info(), x) {
			w.applyNilGuard(y, b.Op, thenSt, elseSt)
		}
		return
	}
	w.applyGuardIdent(cond, thenSt, elseSt)
}

// applyGuardIdent: cond is truthy in liveSt, falsy in deadSt.
func (w *obWalker) applyGuardIdent(cond ast.Expr, liveSt, deadSt *obState) {
	id, ok := ast.Unparen(cond).(*ast.Ident)
	if !ok {
		return
	}
	g, _ := w.info().Uses[id].(*types.Var)
	if g == nil {
		return
	}
	for v, ob := range deadSt.live {
		if ob.guard == g {
			delete(deadSt.live, v) // guard false ⇒ nothing was acquired
		}
	}
	for _, ob := range liveSt.live {
		if ob.guard == g {
			ob.guard = nil // guard consumed; obligation unconditionally live
		}
	}
}

// applyNilGuard: `x == nil` (EQL) ⇒ then-arm dead; `x != nil` ⇒ else-arm dead.
func (w *obWalker) applyNilGuard(x ast.Expr, op token.Token, thenSt, elseSt *obState) {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return
	}
	v, _ := w.info().Uses[id].(*types.Var)
	if v == nil {
		return
	}
	if op == token.EQL {
		delete(thenSt.live, v)
	} else {
		delete(elseSt.live, v)
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// scanExpr interprets discharges and escapes inside an expression tree.
func (w *obWalker) scanExpr(e ast.Expr, st *obState) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if w.dischargeCall(e, st) {
			return
		}
		w.scanExpr(e.Fun, st)
		for _, a := range e.Args {
			if base := trackedBase(w.info(), a, st); base != nil {
				if w.spec.argEscapes || w.sinkCall(e) {
					delete(st.live, base.v)
				}
				continue // otherwise: a borrow — callee does not own it
			}
			// Nested uses (composite literals in args, etc.) escape.
			w.escapeVarsIn(a, st)
		}
	case *ast.FuncLit:
		// Closure capture transfers responsibility to the closure.
		w.escapeVarsIn(e.Body, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.escapeVarsIn(e.X, st)
			return
		}
		w.scanExpr(e.X, st)
	case *ast.CompositeLit:
		w.escapeVarsIn(e, st)
	case *ast.ParenExpr:
		w.scanExpr(e.X, st)
	case *ast.BinaryExpr:
		w.scanExpr(e.X, st)
		w.scanExpr(e.Y, st)
	case *ast.IndexExpr:
		w.scanExpr(e.X, st)
		w.scanExpr(e.Index, st)
	case *ast.SliceExpr:
		w.scanExpr(e.X, st)
	case *ast.SelectorExpr:
		w.scanExpr(e.X, st)
	case *ast.StarExpr:
		w.scanExpr(e.X, st)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, st)
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, st)
	}
}

// dischargeCall recognizes release calls (Release/Put with a tracked
// argument) and wait calls (tracked.Wait()) and removes the obligation.
func (w *obWalker) dischargeCall(call *ast.CallExpr, st *obState) bool {
	if w.spec.release != nil && w.spec.release(w.info(), call) {
		for _, a := range call.Args {
			if base := trackedBase(w.info(), a, st); base != nil {
				delete(st.live, base.v)
			}
		}
		return true
	}
	if w.spec.wait != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.spec.wait(w.info(), sel) {
			if base := trackedBase(w.info(), sel.X, st); base != nil {
				delete(st.live, base.v)
				return true
			}
		}
	}
	return false
}

// sinkCall reports whether call's callee is a configured ownership sink.
func (w *obWalker) sinkCall(call *ast.CallExpr) bool {
	if len(w.spec.sink) == 0 {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return w.spec.sink[fun.Name]
	case *ast.SelectorExpr:
		return w.spec.sink[fun.Sel.Name]
	}
	return false
}

// escapeCall discharges tracked variables referenced anywhere in a call
// launched on another goroutine or deferred.
func (w *obWalker) escapeCall(call *ast.CallExpr, st *obState) {
	w.escapeVarsIn(call, st)
}

// escapeVarsIn removes every tracked variable referenced inside n: the
// resource has been stored, captured or published, so ownership has moved.
func (w *obWalker) escapeVarsIn(n ast.Node, st *obState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		id, ok := nn.(*ast.Ident)
		if !ok {
			return true
		}
		if v, _ := w.info().Uses[id].(*types.Var); v != nil {
			delete(st.live, v)
		}
		return true
	})
}

// trackedBase resolves e (possibly parenthesized or sliced, e.g. buf[:n])
// to a tracked obligation variable.
func trackedBase(info *types.Info, e ast.Expr, st *obState) *obligation {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, _ := info.Uses[x].(*types.Var); v != nil {
				if ob, ok := st.live[v]; ok {
					return ob
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// isTerminatorCall reports whether e is a call that never returns:
// panic(...), os.Exit, log.Fatal*.
func (w *obWalker) isTerminatorCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := w.info().Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		if fn, _ := w.info().Uses[fun.Sel].(*types.Func); fn != nil && fn.Pkg() != nil {
			full := fn.Pkg().Path() + "." + fn.Name()
			switch full {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}
