package analysis

// A minimal analysistest-style harness: fixture packages under
// testdata/src/ carry `// want `+"`regex`"+`` trailing comments, and every
// diagnostic the analyzers emit must match exactly one want (and vice
// versa). `// want+N` anchors the expectation N lines below the comment,
// which is how directive-position diagnostics are expressed (a line comment
// cannot carry a second comment after it).

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	wantRe    = regexp.MustCompile("// want(\\+[0-9]+)? (.+)$")
	wantArgRe = regexp.MustCompile("`([^`]+)`")
	diagRe    = regexp.MustCompile(`^(.+?\.go):([0-9]+):([0-9]+): (.+) \[([a-z]+)\]$`)
)

type wantKey struct {
	file string
	line int
}

// parseWants collects want expectations from every .go file in dir, keyed
// by the file and line the diagnostic must land on.
func parseWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			off := 0
			if m[1] != "" {
				off, _ = strconv.Atoi(m[1][1:])
			}
			args := wantArgRe.FindAllStringSubmatch(m[2], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment without a backquoted pattern", path, i+1)
			}
			k := wantKey{file: filepath.Clean(path), line: i + 1 + off}
			for _, a := range args {
				wants[k] = append(wants[k], a[1])
			}
		}
	}
	return wants
}

// runFixture analyzes one fixture package and checks its diagnostics
// against the want comments.
func runFixture(t *testing.T, pkg string, analyzers ...*Analyzer) *Result {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, "", []string{"./" + pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := parseWants(t, filepath.Join(root, pkg))

	for _, d := range res.Diagnostics {
		m := diagRe.FindStringSubmatch(d.Formatted)
		if m == nil {
			t.Errorf("unparseable diagnostic: %s", d.Formatted)
			continue
		}
		line, _ := strconv.Atoi(m[2])
		k := wantKey{file: filepath.Clean(m[1]), line: line}
		matched := false
		for i, pat := range wants[k] {
			if pat == "" {
				continue
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
			}
			if re.MatchString(m[4]) {
				wants[k][i] = "" // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.Formatted)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if pat != "" {
				t.Errorf("%s:%d: no diagnostic matched %q", k.file, k.line, pat)
			}
		}
	}
	return res
}

func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, "hotpath", HotPathAlloc)
}

func TestPinnedLeakFixture(t *testing.T) {
	runFixture(t, "pinned", PinnedLeak)
}

func TestCkptWriterFixture(t *testing.T) {
	runFixture(t, "ckptio", PinnedLeak, TicketAwait)
}

func TestTicketAwaitFixture(t *testing.T) {
	res := runFixture(t, "ticket", TicketAwait)
	if res.Allows["ticketawait"] == 0 {
		t.Error("expected the fire-and-forget //zinf:allow to register a suppression")
	}
}

func TestDetFloatFixture(t *testing.T) {
	runFixture(t, "zero", DetFloat)
}

func TestAllowFixture(t *testing.T) {
	res := runFixture(t, "allowdir", HotPathAlloc)
	if res.Allows["hotpathalloc"] == 0 {
		t.Error("expected the reasoned //zinf:allow to register a suppression")
	}
}
