package analysis

import (
	"go/ast"
	"go/types"
)

// PinnedLeak verifies that every mem.PinnedPool and mem.Arena acquisition is
// discharged on every path out of the acquiring function — released back to
// its pool, or explicitly handed off (returned, stored into an in-flight
// record, captured by a reaper goroutine). The PR 2 pinned-buffer leak —
// an error return between Acquire and Release — is exactly the shape this
// catches: a locally held buffer reaching an error return unreleased.
//
// Ownership hand-off points that are part of the engine design are known to
// the analyzer (pinnedSinks); anything else needs a //zinf:allow pinnedleak
// comment with a reason.
var PinnedLeak = &Analyzer{
	Name: "pinnedleak",
	Doc:  "mem.PinnedPool/mem.Arena acquires must be released on all paths, including error returns",
	Run: func(pass *Pass) error {
		return runObligations(pass, pinnedSpec)
	},
}

// pinnedSinks are repo functions that take ownership of a buffer argument:
// Param.SetData adopts an arena-backed gathered view (releaseParam returns
// it), the engines' foldGradShard adopts or recycles a reduced shard, and
// the checkpoint writer's Submit adopts a staging buffer (the background
// commit recycles it).
var pinnedSinks = map[string]bool{
	"SetData":       true,
	"foldGradShard": true,
	"Submit":        true,
}

var pinnedSpec = &obligationSpec{
	noun: "pinned/arena buffer",
	acquire: func(info *types.Info, call *ast.CallExpr) (string, bool, bool) {
		fn := calledMethod(info, call)
		if fn == nil || fn.Pkg() == nil {
			return "", false, false
		}
		recv := recvTypeName(fn)
		switch fn.Pkg().Name() {
		case "mem":
			switch {
			case recv == "PinnedPool" && fn.Name() == "Acquire":
				return "pinned buffer from PinnedPool.Acquire", false, true
			case recv == "PinnedPool" && fn.Name() == "TryAcquire":
				return "pinned buffer from PinnedPool.TryAcquire", true, true
			case recv == "Arena" && (fn.Name() == "Get" || fn.Name() == "GetZeroed"):
				return "arena buffer from Arena." + fn.Name(), false, true
			}
		case "ckpt":
			// The checkpoint writer's arena-backed staging buffers follow
			// the same ownership discipline: every Stage must reach a
			// Submit (ownership transfer) or a Recycle (error path).
			if recv == "Writer" && fn.Name() == "Stage" {
				return "staging buffer from Writer.Stage", false, true
			}
		}
		return "", false, false
	},
	release: func(info *types.Info, call *ast.CallExpr) bool {
		fn := calledMethod(info, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		recv := recvTypeName(fn)
		switch fn.Pkg().Name() {
		case "mem":
			return recv == "PinnedPool" && fn.Name() == "Release" ||
				recv == "Arena" && fn.Name() == "Put"
		case "ckpt":
			return recv == "Writer" && fn.Name() == "Recycle"
		}
		return false
	},
	sink: pinnedSinks,
}

// calledMethod resolves a call to the *types.Func of a concrete method or
// package function, or nil.
func calledMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		fn, _ := s.Obj().(*types.Func)
		if fn != nil {
			return fn.Origin()
		}
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn != nil {
		return fn.Origin()
	}
	return nil
}

// recvTypeName returns the receiver's named-type name ("" for functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
