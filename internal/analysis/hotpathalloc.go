package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the steady-state zero-allocation invariant
// (TestSteadyStateZeroAllocs, PR 4) statically: a function whose doc comment
// carries //zinf:hotpath may not contain allocation-introducing constructs.
//
// Flagged inside hotpath functions:
//   - make / new / pointer-taking composite literals (&T{...}) — draw the
//     buffer from a mem.Arena / mem.PinnedPool instead;
//   - append that grows a fresh slice (x = append(y, ...) with x != y); the
//     self-append idioms x = append(x, ...) and x = append(x[:k], ...) are
//     amortized allocation-free against a retained backing array and are
//     permitted;
//   - map writes (fresh keys allocate overflow buckets; recycled-key writes
//     need a //zinf:allow with that reason);
//   - closures that capture variables, and go statements. A capturing
//     closure passed directly to a local //zinf:hotpath function whose
//     corresponding parameter is only ever called (never stored or
//     re-passed) is exempt — Go's escape analysis keeps such closures on
//     the stack — and its body is checked as part of the enclosing hot
//     path. APIs that retain func values (worker pools) should take a
//     pooled ctx plus a top-level func instead, as Pool.ParallelForCtx
//     does;
//   - calls into fmt/log/errors and the allocating strings/strconv/sort
//     helpers — except inside panic(...) arguments, which only run while
//     the process is dying;
//   - boxing a non-pointer value into an interface (flat payloads must stay
//     flat — the PR 4 []any-payload bug class);
//   - non-constant string concatenation and string<->[]byte conversions.
//
// The mark is transitive through direct calls: a hotpath function may only
// statically call local functions that are themselves //zinf:hotpath, so an
// unannotated helper cannot silently reintroduce allocations. Interface
// method calls (e.g. tensor.Backend kernels) dispatch dynamically and are
// exempt from the transitivity rule; the kernel implementations carry their
// own marks.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-introducing constructs in //zinf:hotpath functions",
	Run:  runHotPathAlloc,
}

// allocPkgs are packages whose exported call surface allocates as a matter
// of course.
var allocPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

// allocFuncs are specific allocating stdlib helpers outside allocPkgs.
var allocFuncs = map[string]bool{
	"strings.Repeat": true, "strings.Join": true, "strings.Split": true,
	"strings.Fields": true, "strings.Replace": true, "strings.ReplaceAll": true,
	"strings.ToUpper": true, "strings.ToLower": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatFloat": true,
	"strconv.Quote": true, "strconv.AppendQuote": true,
	"sort.Slice": true, "sort.SliceStable": true,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.Index.HotPath[fn.Origin()] {
				continue
			}
			hp := &hotPathWalker{pass: pass, fn: fn, sig: fn.Type().(*types.Signature)}
			hp.selfAppends(fd.Body)
			hp.stmt(fd.Body)
		}
	}
	return nil
}

type hotPathWalker struct {
	pass *Pass
	fn   *types.Func
	// sig is the signature return statements resolve against — the enclosing
	// function's, or a borrowed closure's while walking its body.
	sig *types.Signature
	// okAppend holds append calls in the self-append idiom.
	okAppend map[*ast.CallExpr]bool
	// panicDepth > 0 while walking the arguments of panic(...): allocation
	// on the crash path is acceptable.
	panicDepth int
}

func (w *hotPathWalker) info() *types.Info { return w.pass.TypesInfo }

// selfAppends prescans body for `x = append(x, ...)` / `x := append(x, ...)`
// where the first append argument is syntactically the assignment target.
func (w *hotPathWalker) selfAppends(body *ast.BlockStmt) {
	w.okAppend = make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !w.isBuiltin(call, "append") {
				continue
			}
			arg0 := ast.Unparen(call.Args[0])
			// x = append(x[:k], ...) reslices the same retained backing
			// array; unwrap the slice expression before comparing.
			if sl, ok := arg0.(*ast.SliceExpr); ok {
				arg0 = ast.Unparen(sl.X)
			}
			if types.ExprString(ast.Unparen(as.Lhs[i])) == types.ExprString(arg0) {
				w.okAppend[call] = true
			}
		}
		return true
	})
}

func (w *hotPathWalker) report(pos token.Pos, format string, args ...any) {
	if w.panicDepth > 0 {
		return // crash path: the process is going down anyway
	}
	w.pass.Reportf(pos, format, args...)
}

// isBuiltin reports whether call invokes the named builtin.
func (w *hotPathWalker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = w.info().Uses[id].(*types.Builtin)
	return ok
}

// staticCallee resolves call to a statically known function or method, or
// nil for builtins, conversions, interface dispatch and function values.
func (w *hotPathWalker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := w.info().Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := w.info().Selections[fun]; ok {
			// Method call: exempt interface dispatch.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified function.
		fn, _ := w.info().Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// stmt walks statements; expressions route through expr.
func (w *hotPathWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.checkMapWrite(s)
		for i, rhs := range s.Rhs {
			w.expr(rhs)
			if len(s.Lhs) == len(s.Rhs) && s.Tok == token.ASSIGN {
				if t := w.info().TypeOf(s.Lhs[i]); t != nil {
					w.checkBoxing(rhs, t)
				}
			}
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs)
		}
		if s.Tok == token.ADD_ASSIGN {
			// s += x on strings concatenates.
			if t := w.info().TypeOf(s.Lhs[0]); t != nil && isString(t) {
				w.report(s.Pos(), "string concatenation allocates in a hotpath function")
			}
		}
	case *ast.DeclStmt:
		gd, _ := s.Decl.(*ast.GenDecl)
		if gd == nil {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var declared types.Type
			if vs.Type != nil {
				declared = w.info().TypeOf(vs.Type)
			}
			for _, v := range vs.Values {
				w.expr(v)
				if declared != nil {
					w.checkBoxing(v, declared)
				}
			}
		}
	case *ast.ReturnStmt:
		res := w.sig.Results()
		for i, e := range s.Results {
			w.expr(e)
			if len(s.Results) == res.Len() {
				w.checkBoxing(e, res.At(i).Type())
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if ch, ok := w.info().TypeOf(s.Chan).Underlying().(*types.Chan); ok {
			w.checkBoxing(s.Value, ch.Elem())
		}
	case *ast.GoStmt:
		w.report(s.Pos(), "go statement allocates a goroutine in a hotpath function")
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.IncDecStmt:
		w.checkMapIndexWrite(s.X, s.Pos())
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *hotPathWalker) checkMapWrite(s *ast.AssignStmt) {
	for _, lhs := range s.Lhs {
		w.checkMapIndexWrite(lhs, lhs.Pos())
	}
}

func (w *hotPathWalker) checkMapIndexWrite(e ast.Expr, pos token.Pos) {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := w.info().TypeOf(ix.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			w.report(pos, "map write in a hotpath function (fresh keys allocate overflow buckets)")
		}
	}
}

// expr walks an expression tree.
func (w *hotPathWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		if caps := w.captures(e); len(caps) > 0 {
			w.report(e.Pos(), "closure captures %s in a hotpath function (may heap-allocate if it escapes); pass it to a hotpath helper that only calls it, or use a pooled ctx with a top-level func", caps[0])
		}
		// Do not descend: the literal's body runs in its own context and is
		// checked only when the closure is borrowed by a hotpath callee
		// (see call) or the enclosing function marks a named helper instead.
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				w.report(e.Pos(), "&composite literal allocates in a hotpath function")
			}
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := w.info().TypeOf(e); t != nil && isString(t) {
				if tv, ok := w.info().Types[e]; !ok || tv.Value == nil { // non-constant concat
					w.report(e.Pos(), "string concatenation allocates in a hotpath function")
				}
			}
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value)
			} else {
				w.expr(el)
			}
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

// call checks one call expression (and walks its arguments).
func (w *hotPathWalker) call(call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := w.info().Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := w.info().TypeOf(call.Args[0])
		if from != nil && (isString(to) && !isString(from) || isString(from) && !isString(to)) {
			w.report(call.Pos(), "string conversion allocates in a hotpath function")
		}
		w.expr(call.Args[0])
		return
	}

	switch {
	case w.isBuiltin(call, "make"):
		w.report(call.Pos(), "make allocates in a hotpath function; draw from a mem.Arena or reuse a retained buffer")
	case w.isBuiltin(call, "new"):
		w.report(call.Pos(), "new allocates in a hotpath function")
	case w.isBuiltin(call, "append"):
		if !w.okAppend[call] {
			w.report(call.Pos(), "append into a fresh slice allocates in a hotpath function (only the self-append idiom x = append(x, ...) is amortized-free)")
		}
	case w.isBuiltin(call, "panic"):
		w.panicDepth++
		for _, a := range call.Args {
			w.expr(a)
		}
		w.panicDepth--
		return
	default:
		if fn := w.staticCallee(call); fn != nil {
			w.checkCallee(call, fn)
		}
	}

	// Closures handed to a local hotpath callee that only calls them are
	// borrowed, not escaping: check their bodies as part of this hot path
	// instead of flagging the capture.
	borrowed := w.borrowedArgs(call)

	// Arguments: boxing against the signature, then recurse.
	if sig, ok := typeAsSignature(w.info().TypeOf(call.Fun)); ok && !w.isBuiltin(call, "append") {
		for i, a := range call.Args {
			if pt, ok := paramType(sig, i, call.Ellipsis.IsValid()); ok {
				w.checkBoxing(a, pt)
			}
		}
	}
	for _, a := range call.Args {
		if lit, ok := borrowed[a]; ok {
			w.funcLitBody(lit)
			continue
		}
		w.expr(a)
	}
}

// borrowedArgs maps the FuncLit arguments of call that its callee — a local
// //zinf:hotpath function — provably only calls (the parameter never appears
// outside call position, so the closure does not escape and Go stack-
// allocates it).
func (w *hotPathWalker) borrowedArgs(call *ast.CallExpr) map[ast.Expr]*ast.FuncLit {
	fn := w.staticCallee(call)
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if !w.pass.Index.Local(fn.Pkg()) || !w.pass.Index.HotPath[fn] {
		return nil
	}
	var out map[ast.Expr]*ast.FuncLit
	for i, a := range call.Args {
		lit, ok := ast.Unparen(a).(*ast.FuncLit)
		if !ok || !w.paramOnlyCalled(fn, i) {
			continue
		}
		if out == nil {
			out = make(map[ast.Expr]*ast.FuncLit)
		}
		out[a] = lit
	}
	return out
}

// funcLitBody walks a borrowed closure's body under the literal's own
// signature.
func (w *hotPathWalker) funcLitBody(lit *ast.FuncLit) {
	sig, ok := typeAsSignature(w.info().TypeOf(lit))
	if !ok {
		return
	}
	outer := w.sig
	w.sig = sig
	w.stmt(lit.Body)
	w.sig = outer
}

// paramOnlyCalled reports whether parameter argIdx of the local function fn
// appears only in call position throughout fn's body (or not at all). A
// variadic parameter is never "only called" — the spread itself allocates.
func (w *hotPathWalker) paramOnlyCalled(fn *types.Func, argIdx int) bool {
	ix := w.pass.Index
	decl := ix.Decl[fn]
	if decl == nil || decl.Body == nil || fn.Pkg() == nil {
		return false
	}
	p := ix.Packages[fn.Pkg().Path()]
	if p == nil {
		return false
	}
	info := p.Info
	var name *ast.Ident
	idx := 0
	for _, field := range decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			if idx == argIdx {
				if _, variadic := field.Type.(*ast.Ellipsis); variadic {
					return false
				}
				if len(field.Names) == 0 {
					return true // unnamed: the callee drops it
				}
				name = field.Names[j]
			}
			idx++
		}
	}
	if name == nil {
		return false // beyond the parameter list (variadic overflow)
	}
	obj := info.Defs[name]
	if obj == nil {
		return false
	}
	inCallPos := make(map[*ast.Ident]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				inCallPos[id] = true
			}
		}
		return true
	})
	onlyCalled := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && info.Uses[id] == obj && !inCallPos[id] {
			onlyCalled = false
		}
		return true
	})
	return onlyCalled
}

// checkCallee applies the stdlib denylist and the hotpath transitivity rule.
func (w *hotPathWalker) checkCallee(call *ast.CallExpr, fn *types.Func) {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	if allocPkgs[pkg.Path()] {
		w.report(call.Pos(), "call to %s.%s allocates in a hotpath function", pkg.Name(), fn.Name())
		return
	}
	if allocFuncs[pkg.Path()+"."+fn.Name()] {
		w.report(call.Pos(), "call to %s.%s allocates in a hotpath function", pkg.Name(), fn.Name())
		return
	}
	if w.pass.Index.Local(pkg) && !w.pass.Index.HotPath[fn] {
		w.report(call.Pos(), "hotpath function calls %s.%s, which is not marked //zinf:hotpath (the zero-alloc contract is transitive)", pkg.Name(), fn.Name())
	}
}

// checkBoxing reports implicit interface conversions of non-pointer-shaped
// concrete values (they heap-allocate the boxed copy).
func (w *hotPathWalker) checkBoxing(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := w.info().Types[e]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return // interface-to-interface: no box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(src) {
		return // pointers fit the interface data word without allocating
	}
	w.report(e.Pos(), "boxing %s into %s allocates in a hotpath function (keep payloads flat)", types.TypeString(src, types.RelativeTo(w.pass.Pkg)), types.TypeString(target, types.RelativeTo(w.pass.Pkg)))
}

// pointerShaped reports whether boxing a value of t into an interface is
// allocation-free: pointer-shaped values live in the interface data word,
// and zero-size values (empty structs like the reference backend) share the
// runtime's zerobase.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the declared type of argument i of sig, accounting for
// variadics; ok is false when boxing should not be checked (e.g. a ...any
// spread, or mismatched arity from multi-value calls).
func paramType(sig *types.Signature, i int, ellipsis bool) (types.Type, bool) {
	n := sig.Params().Len()
	if sig.Variadic() {
		if i < n-1 {
			return sig.Params().At(i).Type(), true
		}
		if ellipsis {
			return sig.Params().At(n - 1).Type(), true
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil, false
		}
		return s.Elem(), true
	}
	if i >= n {
		return nil, false
	}
	return sig.Params().At(i).Type(), true
}

// captures returns the names of enclosing-function variables referenced
// inside lit (variables declared outside the literal but not at package
// scope).
func (w *hotPathWalker) captures(lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := w.info().Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Pkg() == nil || obj.Parent() == nil {
			return true
		}
		// Package-level vars aren't captures.
		if obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		// Declared inside the literal itself (params, locals)?
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj.Name())
		return true
	})
	return out
}
