// Package analysis is zinf-lint: a repo-specific static-analysis suite that
// promotes this codebase's dynamic invariants — allocation-free steady-state
// steps, leak-free pinned/arena buffer handling, always-awaited async
// collective tickets, and deterministic rank-order float accumulation — from
// "a test might catch it" to "the build refuses it".
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers read like standard vet checks, but the
// framework is implemented on the standard library's go/ast + go/types only:
// the repo is dependency-free by policy, so the x/tools driver machinery
// (multichecker, analysistest, packages) is reimplemented here in miniature
// (load.go, run.go, analysistest_test.go).
//
// Directives understood in source:
//
//	//zinf:hotpath
//	    On a function's doc comment: the function is part of the
//	    steady-state training step and must not contain
//	    allocation-introducing constructs (see hotpathalloc). The property
//	    is transitive: a hotpath function may only statically call local
//	    functions that are themselves marked //zinf:hotpath.
//
//	//zinf:allow <analyzer> <reason>
//	    Suppresses <analyzer>'s diagnostics on the same line (trailing
//	    comment) or on the line directly below (comment-above style). The
//	    reason is mandatory; allows are counted and reported by zinf-lint,
//	    and unused allows are themselves errors so suppressions cannot
//	    outlive the code they excuse.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one static check, x/tools-style.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one package plus the module-wide Index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Index     *Index
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. Analyzer and Formatted are filled in by the
// driver (Formatted is the go-vet-style "file:line:col: message [analyzer]"
// rendering, usable after the loader's FileSet is gone).
type Diagnostic struct {
	Analyzer  string
	Pos       token.Pos
	Message   string
	Formatted string
}

// DirectiveAnalyzer is the pseudo-analyzer name under which the framework
// reports malformed or unused //zinf: directives.
const DirectiveAnalyzer = "zinfdirective"

// allowDirective is one parsed //zinf:allow comment.
type allowDirective struct {
	file     string
	line     int
	pos      token.Pos
	analyzer string
	reason   string
	used     bool
}

// Index is the module-wide cross-package state shared by every pass:
// which functions carry //zinf:hotpath, which packages are local (for the
// transitivity rule), and the allow table.
type Index struct {
	Fset     *token.FileSet
	Packages map[string]*Package // every loaded local package, keyed by path

	// HotPath records functions whose doc comment carries //zinf:hotpath.
	// Keys are the generic origin (*types.Func.Origin), so instantiated
	// calls of generic helpers resolve to the annotated declaration.
	HotPath map[*types.Func]bool
	// Decl maps a function object back to its declaration.
	Decl map[*types.Func]*ast.FuncDecl

	allows []*allowDirective
	diags  []Diagnostic // framework diagnostics (malformed directives)
}

// Local reports whether pkg is part of the analyzed source root (as opposed
// to the standard library); the hotpath transitivity rule applies only to
// local callees.
func (ix *Index) Local(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	_, ok := ix.Packages[pkg.Path()]
	return ok
}

// BuildIndex scans every loaded package for //zinf: directives.
func BuildIndex(fset *token.FileSet, pkgs map[string]*Package) *Index {
	ix := &Index{
		Fset:     fset,
		Packages: pkgs,
		HotPath:  make(map[*types.Func]bool),
		Decl:     make(map[*types.Func]*ast.FuncDecl),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ix.scanFile(p, f)
		}
	}
	return ix
}

func (ix *Index) scanFile(p *Package, f *ast.File) {
	// Function declarations: record objects and hotpath marks.
	docs := make(map[*ast.CommentGroup]bool)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		fn = fn.Origin()
		ix.Decl[fn] = fd
		if fd.Doc != nil {
			docs[fd.Doc] = true
			for _, c := range fd.Doc.List {
				if directiveName(c.Text) == "hotpath" {
					ix.HotPath[fn] = true
				}
			}
		}
	}
	// All comments: allow table + malformed-directive checks.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name := directiveName(c.Text)
			switch name {
			case "":
				continue
			case "hotpath":
				if !docs[cg] {
					ix.diags = append(ix.diags, Diagnostic{
						Analyzer: DirectiveAnalyzer, Pos: c.Pos(),
						Message: "//zinf:hotpath must be in a function's doc comment",
					})
				}
			case "allow":
				rest := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//zinf:allow"), " ")
				analyzer, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := ix.Fset.Position(c.Pos())
				if analyzer == "" || reason == "" {
					ix.diags = append(ix.diags, Diagnostic{
						Analyzer: DirectiveAnalyzer, Pos: c.Pos(),
						Message: "//zinf:allow requires an analyzer name and a reason: //zinf:allow <analyzer> <reason>",
					})
					continue
				}
				ix.allows = append(ix.allows, &allowDirective{
					file: pos.Filename, line: pos.Line, pos: c.Pos(),
					analyzer: analyzer, reason: reason,
				})
			default:
				ix.diags = append(ix.diags, Diagnostic{
					Analyzer: DirectiveAnalyzer, Pos: c.Pos(),
					Message: fmt.Sprintf("unknown directive //zinf:%s (known: hotpath, allow)", name),
				})
			}
		}
	}
}

// directiveName returns the word after "//zinf:" for directive comments,
// "" otherwise. Like //go: directives, no space is permitted after "//".
func directiveName(text string) string {
	rest, ok := strings.CutPrefix(text, "//zinf:")
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(rest, " ")
	return strings.TrimSpace(name)
}

// suppressed reports whether d is excused by an allow directive on its line
// or on the line directly above, marking the directive used.
func (ix *Index) suppressed(d Diagnostic) bool {
	pos := ix.Fset.Position(d.Pos)
	for _, a := range ix.allows {
		if a.analyzer != d.Analyzer || a.file != pos.Filename {
			continue
		}
		if a.line == pos.Line || a.line == pos.Line-1 {
			a.used = true
			return true
		}
	}
	return false
}

// Result is one zinf-lint run's outcome.
type Result struct {
	Diagnostics []Diagnostic
	// Allows counts the //zinf:allow suppressions that fired, per analyzer
	// (the "escape hatch budget" the driver reports).
	Allows map[string]int
}

// Run executes the analyzers over the packages matched by patterns under
// root (a module root with modulePath, or a fixture root with modulePath
// ""), returning allow-filtered diagnostics sorted by position.
func Run(root, modulePath string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	l := NewLoader(root, modulePath)
	targets, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	return runOn(l, targets, analyzers)
}

func runOn(l *Loader, targets []*Package, analyzers []*Analyzer) (*Result, error) {
	ix := BuildIndex(l.Fset, l.All())
	var raw []Diagnostic
	for _, p := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Index:     ix,
				Report: func(d Diagnostic) {
					d.Analyzer = a.Name
					raw = append(raw, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, p.Path, err)
			}
		}
	}

	res := &Result{Allows: make(map[string]int)}
	for _, d := range raw {
		if ix.suppressed(d) {
			res.Allows[d.Analyzer]++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	// Framework diagnostics: malformed directives, then unused allows —
	// restricted to the target packages so a partial run doesn't complain
	// about dependencies it wasn't asked to lint.
	inTargets := func(pos token.Pos) bool {
		dir := filepath.Dir(l.Fset.Position(pos).Filename)
		for _, p := range targets {
			if dir == p.Dir {
				return true
			}
		}
		return false
	}
	for _, d := range ix.diags {
		if inTargets(d.Pos) {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	for _, a := range ix.allows {
		if !a.used && inTargets(a.pos) {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: DirectiveAnalyzer, Pos: a.pos,
				Message: fmt.Sprintf("unused //zinf:allow %s directive (nothing to suppress here — remove it)", a.analyzer),
			})
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
	})
	for i := range res.Diagnostics {
		res.Diagnostics[i].Formatted = FormatDiag(l.Fset, res.Diagnostics[i])
	}
	return res, nil
}

// Format renders d as a go-vet-style line.
func (ix *Index) Format(d Diagnostic) string {
	return fmt.Sprintf("%s: %s [%s]", ix.Fset.Position(d.Pos), d.Message, d.Analyzer)
}

// FormatDiag renders d against fset.
func FormatDiag(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
}

// All returns the four production analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, PinnedLeak, TicketAwait, DetFloat}
}
