package model

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/module"
	"repro/internal/tensor"
)

// runGPTSteps trains a deterministic GPT for three forward/backward passes
// under rt and returns the last loss, the last loss gradient (dlogits), and
// every parameter gradient. Three passes matter for the arena arm: steps 2+
// run entirely on recycled, dirty buffers, so any call site that relied on
// zero-initialized memory without saying so (NewMatrixUninit where NewMatrix
// was needed) diverges here.
func runGPTSteps(cfg Config, be tensor.Backend, arena bool) (float64, []float32, [][]float32) {
	g := MustGPT(cfg)
	materialize(g, 77)
	rt := module.NewRuntime(nil)
	rt.SetBackend(be)
	if arena {
		rt.SetStepArena(mem.NewStepArena())
	}
	tokens, targets := SyntheticBatch(tensor.NewRNG(78), cfg, 2)
	var loss float64
	var dlogits []float32
	for s := 0; s < 3; s++ {
		rt.BeginStep()
		zeroGrads(g)
		loss = g.ForwardLoss(rt, tokens, targets, 2)
		// Snapshot the loss gradient before BackwardLoss consumes it.
		dlogits = append(dlogits[:0], g.dlogits.Float32s()...)
		g.BackwardLoss(rt, 1)
		rt.EndStep()
	}
	var grads [][]float32
	for _, p := range module.AllParams(g) {
		grads = append(grads, append([]float32(nil), p.Grad()...))
	}
	return loss, dlogits, grads
}

// TestArenaBitIdenticalToHeap is the model-layer half of the allocation-free
// step contract: routing every activation, grad temporary and scratch buffer
// through the step arena must leave the computation bit-identical to the
// heap (tensor.New/make) path — across dense and tiled projections,
// activation checkpointing with recompute, and both compute backends.
func TestArenaBitIdenticalToHeap(t *testing.T) {
	base := Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
	shapes := []struct {
		name   string
		tiling int
		ckpt   bool
	}{
		{"dense", 1, false},
		{"dense+ckpt", 1, true},
		{"tiled", 2, false},
		{"tiled+ckpt", 2, true},
	}
	backends := []struct {
		name string
		be   tensor.Backend
	}{
		{"reference", tensor.Reference()},
		{"parallel", tensor.Parallel()},
	}
	for _, sh := range shapes {
		for _, bk := range backends {
			t.Run(sh.name+"/"+bk.name, func(t *testing.T) {
				cfg := base
				cfg.Tiling = sh.tiling
				cfg.CheckpointActivations = sh.ckpt
				hLoss, hDl, hGrads := runGPTSteps(cfg, bk.be, false)
				aLoss, aDl, aGrads := runGPTSteps(cfg, bk.be, true)
				if hLoss != aLoss {
					t.Fatalf("loss diverged: heap %.17g arena %.17g", hLoss, aLoss)
				}
				for i := range hDl {
					if hDl[i] != aDl[i] {
						t.Fatalf("dlogits[%d] diverged: heap %g arena %g", i, hDl[i], aDl[i])
					}
				}
				for i := range hGrads {
					for j := range hGrads[i] {
						if hGrads[i][j] != aGrads[i][j] {
							t.Fatalf("grad[%d][%d] diverged: heap %g arena %g", i, j, hGrads[i][j], aGrads[i][j])
						}
					}
				}
			})
		}
	}
}

// TestArenaCheckpointScopeBoundsGrowth verifies the Mark/Release wiring in
// Block: with checkpointing on, each block's recomputed activations reuse the
// region the previous block released, so the arena ends backward with free
// lists instead of an O(layers · activations) live set.
func TestArenaCheckpointScopeBoundsGrowth(t *testing.T) {
	cfg := Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 4, CheckpointActivations: true}
	g := MustGPT(cfg)
	materialize(g, 91)
	zeroGrads(g)
	a := mem.NewStepArena()
	rt := module.NewRuntime(nil)
	rt.SetStepArena(a)
	tokens, targets := SyntheticBatch(tensor.NewRNG(92), cfg, 2)

	rt.BeginStep()
	g.ForwardLoss(rt, tokens, targets, 2)
	g.BackwardLoss(rt, 1)
	gets1, _, _, _ := a.Stats()
	rt.BeginStep()
	g.ForwardLoss(rt, tokens, targets, 2)
	g.BackwardLoss(rt, 1)
	gets2, hits2, _, _ := a.Stats()

	// Step 2 issues the same number of requests as step 1 and serves every
	// one of them from the free lists: the recompute sub-scopes recycled
	// instead of growing the arena.
	if step2 := gets2 - gets1; step2 != gets1 {
		t.Fatalf("step 2 made %d buffer requests, step 1 made %d — expected identical", step2, gets1)
	}
	if miss := gets2 - hits2; miss > gets1 {
		t.Fatalf("step 2 hit the allocator: %d lifetime misses > step 1's %d requests", miss, gets1)
	}
}
