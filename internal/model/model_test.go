package model

import (
	"math"
	"testing"

	"repro/internal/module"
	"repro/internal/tensor"
)

// materialize installs deterministic initial values for every parameter of
// m, acting as a trivial single-process "engine".
func materialize(m module.Module, seed uint64) {
	for _, p := range module.AllParams(m) {
		p.SetData(InitValues(p, seed))
	}
}

func zeroGrads(m module.Module) {
	for _, p := range module.AllParams(m) {
		p.Grad()
		p.ZeroGrad()
	}
}

// dotLoss computes L = Σ R ⊙ f(x) for a fixed random R, returning L.
func dotLoss(y *tensor.Tensor, r []float32) float64 {
	return tensor.Dot(y.Float32s(), r)
}

// checkLayerInputGrad verifies dL/dx of layer l against central differences.
func checkLayerInputGrad(t *testing.T, l module.Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rt := module.NewRuntime(nil)
	r := make([]float32, 0)
	y := rt.Forward(l, x)
	r = make([]float32, y.Len())
	tensor.NewRNG(555).FillNormal(r, 1)

	dy := tensor.FromSlice(append([]float32(nil), r...), y.Shape()...)
	dx := rt.Backward(l, dy)

	const h = 1e-2
	xd := x.Float32s()
	step := len(xd)/12 + 1
	for i := 0; i < len(xd); i += step {
		orig := xd[i]
		xd[i] = orig + h
		lp := dotLoss(rt.Forward(l, x), r)
		// Discard stashed activation from probe forward.
		rt.Backward(l, dy)
		xd[i] = orig - h
		lm := dotLoss(rt.Forward(l, x), r)
		rt.Backward(l, dy)
		xd[i] = orig
		num := (lp - lm) / (2 * h)
		got := float64(dx.Float32s()[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("input grad[%d]: analytic %g numeric %g", i, got, num)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	l := NewLinear("lin", 5, 7, true, 0.2)
	materialize(l, 1)
	zeroGrads(l)
	x := tensor.New(tensor.FP32, 3, 5)
	tensor.NewRNG(2).FillNormal(x.Float32s(), 1)
	checkLayerInputGrad(t, l, x, 2e-2)
}

func TestLinearWeightGrad(t *testing.T) {
	l := NewLinear("lin", 3, 2, true, 0.3)
	materialize(l, 4)
	zeroGrads(l)
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, 2, 3)
	tensor.NewRNG(5).FillNormal(x.Float32s(), 1)
	r := make([]float32, 4)
	tensor.NewRNG(6).FillNormal(r, 1)

	rt.Forward(l, x)
	rt.Backward(l, tensor.FromSlice(append([]float32(nil), r...), 2, 2))
	// Snapshot the analytic gradient before the probe backwards pollute it.
	gw := append([]float32(nil), l.W.Grad()...)

	const h = 1e-2
	w := l.W.Data()
	for i := range w {
		orig := w[i]
		w[i] = orig + h
		lp := dotLoss(rt.Forward(l, x), r)
		rt.Backward(l, tensor.FromSlice(append([]float32(nil), r...), 2, 2))
		w[i] = orig - h
		lm := dotLoss(rt.Forward(l, x), r)
		rt.Backward(l, tensor.FromSlice(append([]float32(nil), r...), 2, 2))
		w[i] = orig
		num := (lp - lm) / (2 * h)
		got := float64(gw[i])
		if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("W grad[%d]: analytic %g numeric %g", i, got, num)
		}
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	l := NewLayerNorm("ln", 6)
	materialize(l, 7)
	zeroGrads(l)
	x := tensor.New(tensor.FP32, 4, 6)
	tensor.NewRNG(8).FillNormal(x.Float32s(), 2)
	checkLayerInputGrad(t, l, x, 3e-2)
}

func TestLayerNormNormalizesRows(t *testing.T) {
	l := NewLayerNorm("ln", 8)
	materialize(l, 9)
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, 3, 8)
	tensor.NewRNG(10).FillNormal(x.Float32s(), 5)
	y := rt.Forward(l, x)
	yd := y.Float32s()
	for r := 0; r < 3; r++ {
		row := yd[r*8 : (r+1)*8]
		mu := tensor.Sum(row) / 8
		if math.Abs(mu) > 1e-4 {
			t.Errorf("row %d mean %g", r, mu)
		}
		var v float64
		for _, e := range row {
			v += (float64(e) - mu) * (float64(e) - mu)
		}
		if sd := math.Sqrt(v / 8); math.Abs(sd-1) > 1e-3 {
			t.Errorf("row %d std %g", r, sd)
		}
	}
}

func TestGeluGradCheck(t *testing.T) {
	g := NewGelu("gelu")
	x := tensor.New(tensor.FP32, 2, 5)
	tensor.NewRNG(11).FillNormal(x.Float32s(), 1)
	checkLayerInputGrad(t, g, x, 1e-2)
}

func TestAttentionGradCheck(t *testing.T) {
	cfg := Config{Hidden: 8, Heads: 2, Seq: 4, Layers: 1}
	a := NewAttention("attn", cfg.Hidden, cfg.Heads, cfg.Seq, 0.3, 1)
	materialize(a, 12)
	zeroGrads(a)
	x := tensor.New(tensor.FP32, 2*cfg.Seq, cfg.Hidden) // batch 2
	tensor.NewRNG(13).FillNormal(x.Float32s(), 1)
	checkLayerInputGrad(t, a, x, 5e-2)
}

func TestAttentionCausality(t *testing.T) {
	// Changing a later token's hidden state must not change earlier outputs.
	cfg := Config{Hidden: 8, Heads: 2, Seq: 4, Layers: 1}
	a := NewAttention("attn", cfg.Hidden, cfg.Heads, cfg.Seq, 0.3, 1)
	materialize(a, 14)
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, cfg.Seq, cfg.Hidden)
	tensor.NewRNG(15).FillNormal(x.Float32s(), 1)
	y1 := rt.Forward(a, x).Clone()
	// Perturb last position.
	for j := 0; j < cfg.Hidden; j++ {
		x.Set((cfg.Seq-1)*cfg.Hidden+j, x.At((cfg.Seq-1)*cfg.Hidden+j)+1)
	}
	y2 := rt.Forward(a, x)
	for s := 0; s < cfg.Seq-1; s++ {
		for j := 0; j < cfg.Hidden; j++ {
			if y1.At(s*cfg.Hidden+j) != y2.At(s*cfg.Hidden+j) {
				t.Fatalf("causality violated at position %d", s)
			}
		}
	}
}

func TestBlockGradCheck(t *testing.T) {
	cfg := Config{Hidden: 8, Heads: 2, Seq: 4, Layers: 1}
	b := NewBlock("blk", cfg, 0.2)
	materialize(b, 16)
	zeroGrads(b)
	x := tensor.New(tensor.FP32, cfg.Seq, cfg.Hidden)
	tensor.NewRNG(17).FillNormal(x.Float32s(), 1)
	checkLayerInputGrad(t, b, x, 5e-2)
}

func TestGPTEndToEndGradCheck(t *testing.T) {
	cfg := Config{Vocab: 10, Hidden: 8, Heads: 2, Seq: 4, Layers: 2}
	g := MustGPT(cfg)
	materialize(g, 20)
	zeroGrads(g)
	rt := module.NewRuntime(nil)
	tokens, targets := SyntheticBatch(tensor.NewRNG(21), cfg, 2)

	g.ForwardLoss(rt, tokens, targets, 2)
	g.BackwardLoss(rt, 1)

	// Spot-check gradients of several parameters with central differences.
	const h = 1e-2
	for _, p := range []*module.Param{
		g.Blocks[0].FC1.(*Linear).W, g.Blocks[1].Attn.QKV.(*Linear).W, g.Embed.Tok, g.LNF.Gain,
	} {
		data := p.Data()
		step := len(data)/8 + 1
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + h
			lp := g.ForwardLoss(rt, tokens, targets, 2)
			g.BackwardLoss(rt, 0) // pop stashes without accumulating (scale 0 still accumulates... )
			data[i] = orig - h
			lm := g.ForwardLoss(rt, tokens, targets, 2)
			g.BackwardLoss(rt, 0)
			data[i] = orig
			num := (lp - lm) / (2 * h)
			got := float64(p.Grad()[i])
			if math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
				t.Errorf("%s grad[%d]: analytic %g numeric %g", p.Name, i, got, num)
			}
		}
	}
}

func TestCheckpointingExactlyMatchesPlain(t *testing.T) {
	run := func(ckpt bool) (float64, [][]float32) {
		cfg := Config{Vocab: 12, Hidden: 8, Heads: 2, Seq: 4, Layers: 2, CheckpointActivations: ckpt}
		g := MustGPT(cfg)
		materialize(g, 30)
		zeroGrads(g)
		rt := module.NewRuntime(nil)
		tokens, targets := SyntheticBatch(tensor.NewRNG(31), cfg, 2)
		loss := g.ForwardLoss(rt, tokens, targets, 2)
		g.BackwardLoss(rt, 1)
		var grads [][]float32
		for _, p := range module.AllParams(g) {
			grads = append(grads, append([]float32(nil), p.Grad()...))
		}
		return loss, grads
	}
	l1, g1 := run(false)
	l2, g2 := run(true)
	if l1 != l2 {
		t.Fatalf("checkpointing changed loss: %g vs %g", l1, l2)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("checkpointing changed grad[%d][%d]: %g vs %g", i, j, g1[i][j], g2[i][j])
			}
		}
	}
}

func TestTiedHeadTriggersOnDemandGather(t *testing.T) {
	cfg := Config{Vocab: 10, Hidden: 8, Heads: 2, Seq: 4, Layers: 1}
	g := MustGPT(cfg)
	materialize(g, 40)
	// Simulate a partitioning engine: release the token table and install a
	// gather handler.
	full := g.Embed.Tok.Data()
	g.Embed.Tok.ReleaseData()
	gathered := 0
	g.Embed.Tok.SetOnDemand(func(p *module.Param) {
		gathered++
		p.SetData(full)
	})
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, cfg.Seq, cfg.Hidden)
	tensor.NewRNG(41).FillNormal(x.Float32s(), 1)
	rt.Forward(g.Head, x)
	if gathered != 1 {
		t.Fatalf("on-demand gather fired %d times, want 1", gathered)
	}
	if g.Embed.Tok.OnDemandGathers() != 1 {
		t.Fatalf("OnDemandGathers = %d", g.Embed.Tok.OnDemandGathers())
	}
}

func TestAccessReleasedParamWithoutHandlerPanics(t *testing.T) {
	p := module.NewParam("x", 0.1, 4)
	defer func() {
		if recover() == nil {
			t.Error("released access did not panic")
		}
	}()
	p.Data()
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 8, Layers: 2}
	g := MustGPT(cfg)
	materialize(g, 50)
	rt := module.NewRuntime(nil)
	rng := tensor.NewRNG(51)
	tokens, targets := SyntheticBatch(rng, cfg, 4)
	first, last := 0.0, 0.0
	const lr = 0.05
	for it := 0; it < 30; it++ {
		zeroGrads(g)
		loss := g.ForwardLoss(rt, tokens, targets, 4)
		if it == 0 {
			first = loss
		}
		last = loss
		g.BackwardLoss(rt, 1)
		for _, p := range module.AllParams(g) {
			tensor.Axpy(-lr, p.Grad(), p.Data())
		}
	}
	if last > first*0.7 {
		t.Fatalf("SGD did not reduce loss: first %g last %g", first, last)
	}
}

func TestParamCountFormulas(t *testing.T) {
	// Eq (1): 12*nl*hd^2.
	cfg := GPT3Like(8192, 24)
	want := int64(12 * 24 * 8192 * 8192)
	if got := cfg.PaperParamCount(); got != want {
		t.Fatalf("PaperParamCount = %d, want %d", got, want)
	}
	// Exact count of the tiny model matches a hand count.
	tc := Config{Vocab: 10, Hidden: 4, Heads: 2, Seq: 3, Layers: 1}
	g := MustGPT(tc)
	if got, want := module.NumParams(g), tc.ExactParamCount(); got != want {
		t.Fatalf("NumParams = %d, ExactParamCount = %d", got, want)
	}
	// Exact converges to Eq (1) within 10% for big hd.
	big := GPT3Like(8192, 24)
	ratio := float64(big.ExactParamCount()) / float64(big.PaperParamCount())
	if ratio < 0.95 || ratio > 1.1 {
		t.Fatalf("exact/paper ratio %g out of range", ratio)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Hidden: 0, Layers: 1, Heads: 1, Seq: 1},
		{Hidden: 10, Layers: 1, Heads: 3, Seq: 1},
		{Hidden: 8, Layers: 0, Heads: 2, Seq: 4},
		{Hidden: 8, Layers: 1, Heads: 2, Seq: 4, Vocab: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
	if err := TinyTest().Validate(); err != nil {
		t.Errorf("TinyTest invalid: %v", err)
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	logits := tensor.New(tensor.FP32, 3, 5)
	tensor.NewRNG(60).FillNormal(logits.Float32s(), 1)
	_, d := CrossEntropy(logits, []int{0, 2, 4})
	// Each row of dlogits sums to zero (softmax minus one-hot).
	dd := d.Float32s()
	for r := 0; r < 3; r++ {
		if s := tensor.Sum(dd[r*5 : (r+1)*5]); math.Abs(s) > 1e-6 {
			t.Errorf("row %d grad sum %g", r, s)
		}
	}
}

func TestInitValuesDeterministicAndFP16(t *testing.T) {
	p := module.NewParam("w", 0.02, 64)
	a := InitValues(p, 7)
	b := InitValues(p, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitValues not deterministic")
		}
		if tensor.HalfFromFloat32(a[i]).Float32() != a[i] {
			t.Fatal("InitValues not fp16-representable")
		}
	}
	c := InitValues(p, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical init")
	}
	q := module.NewParam("g", 0, 4)
	q.InitOnes = true
	for _, v := range InitValues(q, 1) {
		if v != 1 {
			t.Fatal("InitOnes not ones")
		}
	}
}
