package model

import (
	"fmt"
	"sync"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Linear is a fully-connected layer y = x·W + b over the trailing dimension.
// x is treated as a rows×In matrix regardless of leading shape.
type Linear struct {
	module.Base
	In, Out int
	W       *module.Param // [In, Out]
	B       *module.Param // [Out]; nil when bias disabled

	saved []*tensor.Tensor // stashed inputs (LIFO)
}

// NewLinear constructs a linear layer named name.
func NewLinear(name string, in, out int, bias bool, initStd float64) *Linear {
	l := &Linear{In: in, Out: out}
	l.ModName = name
	l.W = module.NewParam(name+".w", initStd, in, out)
	l.OwnParams = []*module.Param{l.W}
	if bias {
		l.B = module.NewParam(name+".b", 0, out)
		l.OwnParams = append(l.OwnParams, l.B)
	}
	return l
}

//zinf:hotpath
func rowsOf(x *tensor.Tensor, in int) int {
	n := x.Len()
	if n%in != 0 {
		panic(fmt.Sprintf("model: input len %d not divisible by in=%d", n, in))
	}
	return n / in
}

// linearBiasCtx carries the bias-add fan-out's operands to linearBiasChunk;
// pooled so the dispatch is allocation-free (a closure through the Backend
// interface would escape).
type linearBiasCtx struct {
	b, yd []float32
	out   int
}

var linearBiasCtxPool = sync.Pool{New: func() any { return new(linearBiasCtx) }}

//zinf:hotpath
func linearBiasChunk(ctx any, lo, hi int) {
	c := ctx.(*linearBiasCtx)
	for r := lo; r < hi; r++ {
		tensor.Axpy(1, c.b, c.yd[r*c.out:(r+1)*c.out])
	}
}

// Forward implements module.Layer.
//
//zinf:hotpath
func (l *Linear) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	be := rt.Backend()
	rows := rowsOf(x, l.In)
	// MatMul zeroes each destination row before accumulating, so the
	// uninitialized arena tensor is fully defined on return.
	y := rt.NewMatrixUninit(rows, l.Out)
	be.MatMul(y.Float32s(), x.Float32s(), l.W.Data(), rows, l.In, l.Out)
	if l.B != nil {
		// Rows are independent, so the bias add fans out bit-exactly.
		c := linearBiasCtxPool.Get().(*linearBiasCtx)
		c.b, c.yd, c.out = l.B.Data(), y.Float32s(), l.Out
		be.ParRangeCtx(rows, tensor.Grain(l.Out), c, linearBiasChunk)
		*c = linearBiasCtx{}
		linearBiasCtxPool.Put(c)
	}
	if rt.SaveActivations() {
		l.saved = append(l.saved, x)
	}
	return y
}

// Backward implements module.Layer: given dy it accumulates dW, dB and
// returns dx.
//
//zinf:hotpath
func (l *Linear) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	if len(l.saved) == 0 {
		panic("model: Linear.Backward without saved forward input (checkpointing bug?)")
	}
	x := l.saved[len(l.saved)-1]
	l.saved = l.saved[:len(l.saved)-1]

	be := rt.Backend()
	rows := rowsOf(x, l.In)
	// dW += xᵀ · dy
	be.MatMulTransA(l.W.Grad(), x.Float32s(), dy.Float32s(), l.In, rows, l.Out)
	// dB += column sums of dy. The row loop stays serial: each bias element
	// accumulates across rows, and that summation order is part of the
	// bit-exactness contract.
	if l.B != nil {
		g := l.B.Grad()
		dyd := dy.Float32s()
		for r := 0; r < rows; r++ {
			tensor.Axpy(1, dyd[r*l.Out:(r+1)*l.Out], g)
		}
	}
	// dx = dy · Wᵀ (MatMulTransB overwrites every element).
	dx := rt.NewMatrixUninit(rows, l.In)
	be.MatMulTransB(dx.Float32s(), dy.Float32s(), l.W.Data(), rows, l.Out, l.In)
	return dx
}

// FlopsPerRow returns the forward multiply-add flops per input row (2·In·Out).
func (l *Linear) FlopsPerRow() int64 { return 2 * int64(l.In) * int64(l.Out) }

var _ module.Layer = (*Linear)(nil)
