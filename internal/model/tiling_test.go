package model

import (
	"math"
	"strings"
	"testing"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Tiled and dense linear must be mathematically equivalent (paper Sec.
// 5.1.3: "a mathematically equivalent sequence of smaller linear
// operators").
func TestTiledLinearMatchesDense(t *testing.T) {
	const in, out, tiles, rows = 12, 24, 4, 5
	tl := NewTiledLinear("tl", in, out, tiles, true, 0.2)
	for _, p := range module.AllParams(tl) {
		p.SetData(InitValues(p, 3))
	}
	w, b := tl.AssembleDense()

	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(4).FillNormal(x.Float32s(), 1)

	yTiled := rt.Forward(tl, x)

	yDense := tensor.New(tensor.FP32, rows, out)
	tensor.MatMul(yDense.Float32s(), x.Float32s(), w, rows, in, out)
	for r := 0; r < rows; r++ {
		tensor.Axpy(1, b, yDense.Float32s()[r*out:(r+1)*out])
	}
	if d := tensor.MaxAbsDiff(yTiled, yDense); d != 0 {
		t.Fatalf("tiled forward differs from dense by %g (should be exact)", d)
	}

	// Backward: dx matches dense dy·Wᵀ within float tolerance (summation
	// order differs across tiles).
	dy := tensor.New(tensor.FP32, rows, out)
	tensor.NewRNG(5).FillNormal(dy.Float32s(), 1)
	dxTiled := rt.Backward(tl, dy)
	dxDense := tensor.New(tensor.FP32, rows, in)
	tensor.MatMulTransB(dxDense.Float32s(), dy.Float32s(), w, rows, out, in)
	if d := tensor.MaxAbsDiff(dxTiled, dxDense); d > 1e-4 {
		t.Fatalf("tiled backward dx differs by %g", d)
	}
}

// The examples/tiling claim as a real test: for a FIXED dense weight, the
// forward output is bit-identical across every tiling factor — each output
// element accumulates the same products in the same order regardless of
// which column tile computes it.
func TestTiledForwardBitIdenticalAcrossFactors(t *testing.T) {
	const in, out, rows = 12, 24, 5
	dense := NewLinear("op", in, out, true, 0.2)
	materialize(dense, 6)
	w := append([]float32(nil), dense.W.Data()...)
	b := append([]float32(nil), dense.B.Data()...)

	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(7).FillNormal(x.Float32s(), 1)
	ref := rt.Forward(dense, x)

	for _, tiles := range []int{1, 2, 4, 8} {
		tl := NewTiledLinear("op", in, out, tiles, true, 0.2)
		tl.LoadDense(w, b)
		y := rt.Forward(tl, x)
		if d := tensor.MaxAbsDiff(ref, y); d != 0 {
			t.Fatalf("tiles=%d forward differs from dense by %g (want bit-identical)", tiles, d)
		}
	}
}

func TestTiledLinearGradCheck(t *testing.T) {
	const in, out, tiles, rows = 6, 8, 2, 3
	tl := NewTiledLinear("tl", in, out, tiles, true, 0.3)
	for _, p := range module.AllParams(tl) {
		p.SetData(InitValues(p, 8))
		p.Grad()
		p.ZeroGrad()
	}
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(9).FillNormal(x.Float32s(), 1)
	r := make([]float32, rows*out)
	tensor.NewRNG(10).FillNormal(r, 1)

	rt.Forward(tl, x)
	dx := rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))

	const h = 1e-2
	xd := x.Float32s()
	for i := 0; i < len(xd); i += 4 {
		orig := xd[i]
		xd[i] = orig + h
		yp := rt.Forward(tl, x)
		rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))
		xd[i] = orig - h
		ym := rt.Forward(tl, x)
		rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))
		xd[i] = orig
		num := (tensor.Dot(yp.Float32s(), r) - tensor.Dot(ym.Float32s(), r)) / (2 * h)
		got := float64(dx.Float32s()[i])
		if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: analytic %g numeric %g", i, got, num)
		}
	}
}

// MaxParamBytes drops by the tile factor.
func TestTilingReducesMaxAllocation(t *testing.T) {
	dense := NewTiledLinear("d", 64, 256, 1, false, 0.1)
	tiled := NewTiledLinear("t", 64, 256, 8, false, 0.1)
	if dense.MaxParamBytes() != 64*256*2 {
		t.Fatalf("dense max = %d", dense.MaxParamBytes())
	}
	if tiled.MaxParamBytes() != 64*256*2/8 {
		t.Fatalf("tiled max = %d", tiled.MaxParamBytes())
	}
}

func TestTiledLinearRejectsBadTileCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-dividing tile count did not panic")
		}
	}()
	NewTiledLinear("x", 4, 10, 3, false, 0.1)
}

// A Tiling config builds every large projection — including the embedding
// table behind the tied head — as independent tile parameters, without
// changing the total parameter count.
func TestTiledModelStructure(t *testing.T) {
	cfg := Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2, Tiling: 4}
	g := MustGPT(cfg)
	if got, want := module.NumParams(g), cfg.ExactParamCount(); got != want {
		t.Fatalf("tiled NumParams = %d, want %d", got, want)
	}
	var maxElems, tileParams int
	for _, p := range module.AllParams(g) {
		if p.Len() > maxElems {
			maxElems = p.Len()
		}
		if strings.Contains(p.Name, ".tile") {
			tileParams++
		}
	}
	// Largest dense param would be fc1's [16, 64] weight; tiled it is a
	// quarter of that (the embedding tiles are smaller still).
	if maxElems > 16*64/4 {
		t.Fatalf("largest tiled param has %d elems, want <= %d", maxElems, 16*64/4)
	}
	if tileParams == 0 {
		t.Fatal("no tile parameters built")
	}
	// qkv/proj/fc1/fc2 weights+biases per block ×2 blocks ×4 tiles, plus
	// 4 embedding tiles.
	if want := 2*4*2*4 + 4; tileParams != want {
		t.Fatalf("tile params = %d, want %d", tileParams, want)
	}
}

func TestConfigValidateTiling(t *testing.T) {
	bad := []Config{
		{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 1, Tiling: -1},
		{Vocab: 16, Hidden: 18, Heads: 2, Seq: 6, Layers: 1, Tiling: 4}, // 4 ∤ 18
		{Vocab: 10, Hidden: 16, Heads: 2, Seq: 6, Layers: 1, Tiling: 4}, // 4 ∤ 10
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, c)
		}
	}
	ok := Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 1, Tiling: 4}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid tiled config rejected: %v", err)
	}
	// Vocab 0 (hidden-state mode) has no divisibility constraint on vocab.
	hs := Config{Hidden: 16, Heads: 2, Seq: 6, Layers: 1, Tiling: 4}
	if err := hs.Validate(); err != nil {
		t.Errorf("hidden-state tiled config rejected: %v", err)
	}
}

// End-to-end gradient check through the tiled model: tiled projections,
// vocab-tiled embedding and the per-tile tied head all backpropagate
// correctly.
func TestTiledGPTEndToEndGradCheck(t *testing.T) {
	cfg := Config{Vocab: 8, Hidden: 8, Heads: 2, Seq: 4, Layers: 1, Tiling: 2}
	g := MustGPT(cfg)
	materialize(g, 23)
	zeroGrads(g)
	rt := module.NewRuntime(nil)
	tokens, targets := SyntheticBatch(tensor.NewRNG(24), cfg, 2)

	g.ForwardLoss(rt, tokens, targets, 2)
	g.BackwardLoss(rt, 1)

	const h = 1e-2
	for _, p := range []*module.Param{
		g.Blocks[0].FC1.(*TiledLinear).Tile(1).W,
		g.Blocks[0].Attn.QKV.(*TiledLinear).Tile(0).W,
		g.Embed.TokTiles[1],
		g.Embed.Pos,
	} {
		data := p.Data()
		step := len(data)/8 + 1
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + h
			lp := g.ForwardLoss(rt, tokens, targets, 2)
			g.BackwardLoss(rt, 0)
			data[i] = orig - h
			lm := g.ForwardLoss(rt, tokens, targets, 2)
			g.BackwardLoss(rt, 0)
			data[i] = orig
			num := (lp - lm) / (2 * h)
			got := float64(p.Grad()[i])
			if math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
				t.Errorf("%s grad[%d]: analytic %g numeric %g", p.Name, i, got, num)
			}
		}
	}
}

// Activation checkpointing on a tiled model must not change the math: the
// tiles follow Linear's save/recompute discipline exactly.
func TestTiledCheckpointingExactlyMatchesPlain(t *testing.T) {
	run := func(ckpt bool) (float64, [][]float32) {
		cfg := Config{Vocab: 8, Hidden: 8, Heads: 2, Seq: 4, Layers: 2,
			Tiling: 2, CheckpointActivations: ckpt}
		g := MustGPT(cfg)
		materialize(g, 33)
		zeroGrads(g)
		rt := module.NewRuntime(nil)
		tokens, targets := SyntheticBatch(tensor.NewRNG(34), cfg, 2)
		loss := g.ForwardLoss(rt, tokens, targets, 2)
		g.BackwardLoss(rt, 1)
		var grads [][]float32
		for _, p := range module.AllParams(g) {
			grads = append(grads, append([]float32(nil), p.Grad()...))
		}
		return loss, grads
	}
	l1, g1 := run(false)
	l2, g2 := run(true)
	if l1 != l2 {
		t.Fatalf("checkpointing changed tiled loss: %g vs %g", l1, l2)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("checkpointing changed tiled grad[%d][%d]: %g vs %g", i, j, g1[i][j], g2[i][j])
			}
		}
	}
}
