package model

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/module"
	"repro/internal/tensor"
)

// GPT is the full model: embedding, nl Transformer blocks, a final
// LayerNorm, and a tied LM head. With Vocab == 0 the embedding/head are
// omitted and the model maps hidden states to hidden states (used by perf
// experiments that only need the block stack).
type GPT struct {
	module.Base
	Cfg Config

	Embed  *Embedding
	Blocks []*Block
	LNF    *LayerNorm
	Head   *TiedHead

	dlogits *tensor.Tensor // loss gradient stash between ForwardLoss and BackwardLoss
}

// NewGPT builds the model tree (parameters are declared, not yet
// initialized — engines own initialization and placement).
func NewGPT(cfg Config) (*GPT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPT{Cfg: cfg}
	g.ModName = "gpt"
	initStd := 0.02
	if cfg.Vocab > 0 {
		g.Embed = NewEmbedding("embed", cfg.Vocab, cfg.Hidden, cfg.Seq, initStd, cfg.tiles())
		g.Kids = append(g.Kids, g.Embed)
	}
	for i := 0; i < cfg.Layers; i++ {
		b := NewBlock(fmt.Sprintf("block%d", i), cfg, initStd)
		g.Blocks = append(g.Blocks, b)
		g.Kids = append(g.Kids, b)
	}
	g.LNF = NewLayerNorm("lnf", cfg.Hidden)
	g.Kids = append(g.Kids, g.LNF)
	if cfg.Vocab > 0 {
		g.Head = NewTiedHead("head", g.Embed)
		g.Kids = append(g.Kids, g.Head)
	}
	return g, nil
}

// MustGPT is NewGPT that panics on config errors; for tests and examples.
func MustGPT(cfg Config) *GPT {
	g, err := NewGPT(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Forward runs the block stack (and final LayerNorm) on hidden states.
// Valid in both token and hidden-state mode.
//
//zinf:hotpath
func (g *GPT) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	h := x
	for _, b := range g.Blocks {
		h = rt.Forward(b, h)
	}
	return rt.Forward(g.LNF, h)
}

// Backward backpropagates through the final LayerNorm and block stack.
//
//zinf:hotpath
func (g *GPT) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	d := rt.Backward(g.LNF, dy)
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		d = rt.Backward(g.Blocks[i], d)
	}
	return d
}

// ForwardLoss embeds tokens, runs the stack and tied head, and returns the
// mean cross-entropy loss against targets. tokens and targets have length
// batch*Seq. The loss gradient is stashed for BackwardLoss.
//
//zinf:hotpath
func (g *GPT) ForwardLoss(rt *module.Runtime, tokens, targets []int, batch int) float64 {
	if g.Cfg.Vocab == 0 {
		panic("model: ForwardLoss requires Vocab > 0")
	}
	h := g.Embed.ForwardTokens(rt, tokens, batch)
	h = g.Forward(rt, h)
	logits := rt.Forward(g.Head, h)
	// The probs buffer is fully overwritten (logits copied in before the
	// in-place softmax), so uninit is safe.
	probs := rt.NewMatrixUninit(logits.Dim(0), logits.Dim(1))
	loss := crossEntropyInto(rt.Backend(), probs.Float32s(), logits.Float32s(),
		targets, logits.Dim(0), logits.Dim(1))
	g.dlogits = probs
	return loss
}

// BackwardLoss backpropagates the stashed loss gradient scaled by scale
// (loss-scaling hook for mixed precision), accumulating parameter grads.
//
//zinf:hotpath
func (g *GPT) BackwardLoss(rt *module.Runtime, scale float32) {
	if g.dlogits == nil {
		panic("model: BackwardLoss before ForwardLoss")
	}
	d := g.dlogits
	g.dlogits = nil
	if scale != 1 {
		rt.Backend().Scale(scale, d.Float32s())
	}
	dh := rt.Backward(g.Head, d)
	dh = g.Backward(rt, dh)
	g.Embed.BackwardTokens(rt, dh)
}

// CrossEntropy returns the mean negative log-likelihood of targets under
// row-wise softmax of logits, and dloss/dlogits (already divided by the row
// count). It runs on the reference backend; engines use CrossEntropyOn.
func CrossEntropy(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	return CrossEntropyOn(tensor.Reference(), logits, targets)
}

// CrossEntropyOn is CrossEntropy with the softmax dispatched through be. The
// loss reduction over rows stays serial (float64 accumulation order is part
// of the bit-exactness contract). It allocates the returned gradient tensor
// on the heap; the allocation-free step path is ForwardLoss, which feeds a
// step-arena buffer to crossEntropyInto directly.
func CrossEntropyOn(be tensor.Backend, logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	shape := logits.Shape()
	rows, vocab := shape[0], shape[1]
	probs := tensor.New(tensor.FP32, rows, vocab)
	loss := crossEntropyInto(be, probs.Float32s(), logits.Float32s(), targets, rows, vocab)
	return loss, probs
}

// crossEntropyInto computes the mean cross-entropy of targets under the
// row-wise softmax of logits, writing dloss/dlogits into probs (fully
// overwritten: logits are copied in, softmaxed in place, then converted to
// the gradient). This is the kernel both CrossEntropyOn (heap probs) and
// ForwardLoss (arena probs) share, so the two paths are bit-identical by
// construction.
//
//zinf:hotpath
func crossEntropyInto(be tensor.Backend, probs, logits []float32, targets []int, rows, vocab int) float64 {
	if len(targets) != rows {
		panic("model: CrossEntropy target count mismatch")
	}
	copy(probs, logits)
	be.SoftmaxRows(probs, rows, vocab)
	var loss float64
	inv := float32(1) / float32(rows)
	for r, tgt := range targets {
		if tgt < 0 || tgt >= vocab {
			panic("model: CrossEntropy target out of range")
		}
		p := probs[r*vocab+tgt]
		loss += -math.Log(math.Max(float64(p), 1e-30))
		// dlogits = (softmax - onehot)/rows, written in place over probs.
		row := probs[r*vocab : (r+1)*vocab]
		for j := range row {
			row[j] *= inv
		}
		row[tgt] -= inv
	}
	return loss / float64(rows)
}

// InitValues deterministically generates the initial full value vector for
// p: N(0, InitStd²) (or ones/zeros), rounded through fp16 so the generated
// values are exactly representable in the parameters' storage precision.
// The stream is keyed by (seed, p.Name), so it is identical on every rank
// and in every engine regardless of initialization order — the property the
// engine-equivalence tests depend on.
func InitValues(p *module.Param, seed uint64) []float32 {
	v := make([]float32, p.Len())
	switch {
	case p.InitOnes:
		for i := range v {
			v[i] = 1
		}
	case p.InitStd == 0:
		// zeros
	default:
		h := fnv.New64a()
		h.Write([]byte(p.Name))
		rng := tensor.NewRNG(seed ^ h.Sum64())
		rng.FillNormal(v, p.InitStd)
	}
	return tensor.RoundTripHalf(v)
}

// SyntheticBatch produces a deterministic toy language-modelling batch:
// next-token prediction over a linear-congruential token stream.
func SyntheticBatch(rng *tensor.RNG, cfg Config, batch int) (tokens, targets []int) {
	n := batch * cfg.Seq
	tokens = make([]int, n)
	targets = make([]int, n)
	for i := range tokens {
		tokens[i] = rng.Intn(cfg.Vocab)
		// Target: a deterministic function of the token, learnable quickly.
		targets[i] = (tokens[i]*3 + 1) % cfg.Vocab
	}
	return tokens, targets
}
