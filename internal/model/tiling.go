package model

import (
	"fmt"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Projection is a linear projection operator in the model: either a dense
// Linear or its memory-centric tiled equivalent. Both expose the same layer
// and flop-count surface, so the model builds large projections through
// NewProjection without caring which representation the config selected.
type Projection interface {
	module.Layer
	FlopsPerRow() int64
}

// NewProjection returns a dense Linear when tiles <= 1, otherwise a
// TiledLinear splitting the output dimension into tiles column tiles.
func NewProjection(name string, in, out int, bias bool, initStd float64, tiles int) Projection {
	if tiles <= 1 {
		return NewLinear(name, in, out, bias, initStd)
	}
	return NewTiledLinear(name, in, out, tiles, bias, initStd)
}

// TiledLinear is memory-centric tiling (paper Sec. 5.1.3): a linear operator
// represented as a mathematically-equivalent sequence of column tiles, each
// a separate submodule with its own parameters. Combined with the ZeRO-3 /
// ZeRO-Infinity fetch-and-release pattern, the working memory for the
// operator drops from the full weight to one tile's weight, so operators of
// arbitrary size run without model parallelism — and without needing a
// contiguous allocation larger than a tile (the Fig. 6b scenario).
//
// Because each tile is an ordinary Linear child module, engines need no
// special-casing: gather/release hooks, the overlap trace, and the comm and
// NVMe prefetchers all operate per tile. Save-activation and checkpointing
// behaviour is exactly Linear's — each tile stashes the shared input when
// rt.SaveActivations() is set, and nothing when a checkpointed block runs
// its main forward.
type TiledLinear struct {
	module.Base
	In, Out, Tiles int
	TileOut        int
	tiles          []*Linear
}

// NewTiledLinear splits a [in, out] linear layer into tiles column tiles.
// out must be divisible by tiles.
func NewTiledLinear(name string, in, out, tiles int, bias bool, initStd float64) *TiledLinear {
	if tiles <= 0 || out%tiles != 0 {
		panic(fmt.Sprintf("model: tiles %d must divide out %d", tiles, out))
	}
	tl := &TiledLinear{In: in, Out: out, Tiles: tiles, TileOut: out / tiles}
	tl.ModName = name
	for t := 0; t < tiles; t++ {
		l := NewLinear(fmt.Sprintf("%s.tile%d", name, t), in, tl.TileOut, bias, initStd)
		tl.tiles = append(tl.tiles, l)
		tl.Kids = append(tl.Kids, l)
	}
	return tl
}

// Tile returns the t-th column tile.
func (tl *TiledLinear) Tile(t int) *Linear { return tl.tiles[t] }

// copyBand copies a [rows, width] tile result into the column band starting
// at off of the [rows, fullWidth] destination.
//
//zinf:hotpath
func copyBand(dst, src []float32, rows, fullWidth, off, width int) {
	for r := 0; r < rows; r++ {
		copy(dst[r*fullWidth+off:r*fullWidth+off+width], src[r*width:(r+1)*width])
	}
}

// sliceBand extracts the column band starting at off of the [rows,
// fullWidth] source into a [rows, width] destination.
//
//zinf:hotpath
func sliceBand(dst, src []float32, rows, fullWidth, off, width int) {
	for r := 0; r < rows; r++ {
		copy(dst[r*width:(r+1)*width], src[r*fullWidth+off:r*fullWidth+off+width])
	}
}

// Forward implements module.Layer: tiles execute sequentially, each fetched
// and released through the engine hooks before the next begins.
//
//zinf:hotpath
func (tl *TiledLinear) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len() / tl.In
	// The tile loop fills every column band, so uninit is safe.
	y := rt.NewMatrixUninit(rows, tl.Out)
	yd := y.Float32s()
	for t, tile := range tl.tiles {
		yt := rt.Forward(tile, x)
		copyBand(yd, yt.Float32s(), rows, tl.Out, t*tl.TileOut, tl.TileOut)
	}
	return y
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (tl *TiledLinear) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	rows := dy.Len() / tl.Out
	dyd := dy.Float32s()
	var dx *tensor.Tensor
	// Reverse order mirrors autograd; addition is commutative so any order
	// gives the same dx, but reverse matches the saved-activation LIFO.
	for t := tl.Tiles - 1; t >= 0; t-- {
		tile := tl.tiles[t]
		dyt := rt.NewMatrixUninit(rows, tl.TileOut)
		sliceBand(dyt.Float32s(), dyd, rows, tl.Out, t*tl.TileOut, tl.TileOut)
		dxt := rt.Backward(tile, dyt)
		if dx == nil {
			dx = dxt
		} else {
			rt.Backend().Axpy(1, dxt.Float32s(), dx.Float32s())
		}
	}
	return dx
}

// FlopsPerRow returns the forward multiply-add flops per input row, equal to
// the dense operator's 2·In·Out (tiling moves memory, not compute).
func (tl *TiledLinear) FlopsPerRow() int64 { return 2 * int64(tl.In) * int64(tl.Out) }

// MaxParamBytes returns the largest single-parameter fp16 footprint — the
// contiguous-allocation requirement tiling reduces by the tile factor.
func (tl *TiledLinear) MaxParamBytes() int64 {
	var m int64
	for _, p := range module.AllParams(tl) {
		if b := p.FP16Bytes(); b > m {
			m = b
		}
	}
	return m
}

// LoadDense installs the dense [in, out] weight matrix w (and [out] bias b,
// ignored when the layer has no bias) by slicing it into the column tiles.
// After LoadDense the tiled operator computes the same function — bit for
// bit in the forward direction — as a dense Linear holding w and b.
func (tl *TiledLinear) LoadDense(w, b []float32) {
	if len(w) != tl.In*tl.Out {
		panic(fmt.Sprintf("model: LoadDense weight len %d != %d", len(w), tl.In*tl.Out))
	}
	for t, tile := range tl.tiles {
		off := t * tl.TileOut
		tw := make([]float32, tl.In*tl.TileOut)
		for i := 0; i < tl.In; i++ {
			copy(tw[i*tl.TileOut:(i+1)*tl.TileOut], w[i*tl.Out+off:i*tl.Out+off+tl.TileOut])
		}
		tile.W.SetData(tw)
		if tile.B != nil {
			if len(b) != tl.Out {
				panic(fmt.Sprintf("model: LoadDense bias len %d != %d", len(b), tl.Out))
			}
			tile.B.SetData(append([]float32(nil), b[off:off+tl.TileOut]...))
		}
	}
}

// AssembleDense concatenates the tile weights into the equivalent dense
// [in, out] weight matrix and [out] bias (for equivalence testing).
func (tl *TiledLinear) AssembleDense() (w, b []float32) {
	w = make([]float32, tl.In*tl.Out)
	hasBias := tl.tiles[0].B != nil
	if hasBias {
		b = make([]float32, tl.Out)
	}
	for t, tile := range tl.tiles {
		tw := tile.W.Data()
		off := t * tl.TileOut
		for i := 0; i < tl.In; i++ {
			copy(w[i*tl.Out+off:i*tl.Out+off+tl.TileOut], tw[i*tl.TileOut:(i+1)*tl.TileOut])
		}
		if hasBias {
			copy(b[off:off+tl.TileOut], tile.B.Data())
		}
	}
	return w, b
}

var (
	_ module.Layer = (*TiledLinear)(nil)
	_ Projection   = (*TiledLinear)(nil)
	_ Projection   = (*Linear)(nil)
)
