package model

import (
	"fmt"
	"sync"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Embedding maps token ids to hidden vectors and adds learned positional
// embeddings. Its token table is shared with the output head (weight tying),
// making it the paper's canonical *external parameter*: a parameter defined
// in one submodule and consumed by another (Sec. 7.1.1).
//
// With tiles > 1 the token table is split into vocab-row tiles, each an
// independent parameter. The lookup itself still touches every tile (token
// ids are arbitrary), but the tied head consumes the tiles one at a time
// through per-tile submodules, so the LM-head projection — the largest
// operator in small-vocab models' forward — runs under memory-centric
// tiling like the block projections.
type Embedding struct {
	module.Base
	Vocab, Hidden, Seq int
	Tiles, TileVocab   int

	// Tok is the dense token table [Vocab, Hidden]; nil when tiled.
	Tok *module.Param
	// TokTiles are the vocab-row tiles [TileVocab, Hidden]; when dense it
	// holds the single entry Tok, so iteration code is uniform.
	TokTiles []*module.Param
	Pos      *module.Param // [Seq, Hidden]

	saved [][]int // token batches for backward

	// tabs/gtabs are persistent staging for the gathered tile views —
	// refilled in place each call so the steady-state forward/backward
	// performs no allocation.
	tabs  [][]float32
	gtabs [][]float32
}

// NewEmbedding constructs the embedding module. tiles > 1 splits the token
// table into vocab-row tiles (vocab must be divisible by tiles).
func NewEmbedding(name string, vocab, hidden, seq int, initStd float64, tiles int) *Embedding {
	if tiles <= 1 {
		tiles = 1
	}
	if vocab%tiles != 0 {
		panic(fmt.Sprintf("model: tiles %d must divide vocab %d", tiles, vocab))
	}
	e := &Embedding{Vocab: vocab, Hidden: hidden, Seq: seq, Tiles: tiles, TileVocab: vocab / tiles}
	e.ModName = name
	if tiles == 1 {
		e.Tok = module.NewParam(name+".tok", initStd, vocab, hidden)
		e.TokTiles = []*module.Param{e.Tok}
	} else {
		for t := 0; t < tiles; t++ {
			e.TokTiles = append(e.TokTiles,
				module.NewParam(fmt.Sprintf("%s.tok.tile%d", name, t), initStd, e.TileVocab, hidden))
		}
	}
	e.Pos = module.NewParam(name+".pos", initStd, seq, hidden)
	e.OwnParams = append(append([]*module.Param(nil), e.TokTiles...), e.Pos)
	return e
}

// tokRow returns the table row for token t, given the gathered tile slices.
//
//zinf:hotpath
func (e *Embedding) tokRow(tabs [][]float32, t int) []float32 {
	r := t % e.TileVocab
	return tabs[t/e.TileVocab][r*e.Hidden : (r+1)*e.Hidden]
}

// embedFwdCtx carries the token-row fan-out's operands to embedForwardChunk;
// pooled so the dispatch is allocation-free.
type embedFwdCtx struct {
	e       *Embedding
	od, pos []float32
	tokens  []int
}

var embedFwdCtxPool = sync.Pool{New: func() any { return new(embedFwdCtx) }}

//zinf:hotpath
func embedForwardChunk(ctx any, lo, hi int) {
	c := ctx.(*embedFwdCtx)
	e := c.e
	for i := lo; i < hi; i++ {
		s := i % e.Seq
		row := c.od[i*e.Hidden : (i+1)*e.Hidden]
		copy(row, e.tokRow(e.tabs, c.tokens[i]))
		tensor.Axpy(1, c.pos[s*e.Hidden:(s+1)*e.Hidden], row)
	}
}

// ForwardTokens embeds tokens (length batch*Seq) into a [batch*Seq, Hidden]
// tensor. Hooks fire as for any module.
//
//zinf:hotpath
func (e *Embedding) ForwardTokens(rt *module.Runtime, tokens []int, batch int) *tensor.Tensor {
	if len(tokens) != batch*e.Seq {
		panic("model: token count != batch*seq")
	}
	h := rt.Hooks()
	h.PreForward(e)
	// Every output row is fully written (copy + Axpy), so the uninitialized
	// arena tensor is safe.
	out := rt.NewMatrixUninit(batch*e.Seq, e.Hidden)
	// Materialize all tile views serially before fanning out, so any
	// on-demand gather fires on the caller's goroutine.
	e.tabs = e.tabs[:0]
	for t := range e.TokTiles {
		e.tabs = append(e.tabs, e.TokTiles[t].Data())
	}
	pos := e.Pos.Data()
	// Validate serially so a bad id panics on the caller's goroutine,
	// then fan the independent row lookups out over the backend.
	for _, t := range tokens {
		if t < 0 || t >= e.Vocab {
			panic("model: token id out of range")
		}
	}
	c := embedFwdCtxPool.Get().(*embedFwdCtx)
	c.e, c.od, c.pos, c.tokens = e, out.Float32s(), pos, tokens
	rt.Backend().ParRangeCtx(len(tokens), tensor.Grain(e.Hidden), c, embedForwardChunk)
	*c = embedFwdCtx{}
	embedFwdCtxPool.Put(c)
	if rt.SaveActivations() {
		e.saved = append(e.saved, tokens)
	}
	h.PostForward(e)
	return out
}

// BackwardTokens scatter-adds dH into the token and positional tables.
//
//zinf:hotpath
func (e *Embedding) BackwardTokens(rt *module.Runtime, dh *tensor.Tensor) {
	h := rt.Hooks()
	h.PreBackward(e)
	if len(e.saved) == 0 {
		panic("model: Embedding.BackwardTokens without saved tokens")
	}
	tokens := e.saved[len(e.saved)-1]
	e.saved = e.saved[:len(e.saved)-1]
	e.gtabs = e.gtabs[:0]
	for t := range e.TokTiles {
		e.gtabs = append(e.gtabs, e.TokTiles[t].Grad())
	}
	dpos := e.Pos.Grad()
	dhd := dh.Float32s()
	// Serial: repeated tokens scatter-add into the same table row, so
	// the accumulation order must match the reference backend exactly.
	for i, t := range tokens {
		s := i % e.Seq
		row := dhd[i*e.Hidden : (i+1)*e.Hidden]
		tensor.Axpy(1, row, e.tokRow(e.gtabs, t))
		tensor.Axpy(1, row, dpos[s*e.Hidden:(s+1)*e.Hidden])
	}
	h.PostBackward(e)
}

// TiedHead projects hidden states onto the vocabulary with the *transpose*
// of the embedding's token table: logits = H·Eᵀ. It owns no parameters —
// the token table is an external parameter accessed through Param.Data(),
// which triggers the engine's on-demand gather when partitioned.
//
// When the embedding is vocab-tiled, the head decomposes into per-tile
// child modules: each computes one column band of the logits from one token
// tile, so the engine gathers and releases the tiles sequentially (the
// memory-centric tiling pattern) instead of materializing the whole table.
type TiedHead struct {
	module.Base
	Emb *Embedding

	tiles []*headTile // per-vocab-tile children; empty when dense

	saved []*tensor.Tensor
}

// NewTiedHead constructs the head sharing emb's token table.
func NewTiedHead(name string, emb *Embedding) *TiedHead {
	h := &TiedHead{Emb: emb}
	h.ModName = name
	if emb.Tiles > 1 {
		for t := 0; t < emb.Tiles; t++ {
			ht := &headTile{emb: emb, t: t}
			ht.ModName = fmt.Sprintf("%s.tile%d", name, t)
			h.tiles = append(h.tiles, ht)
			h.Kids = append(h.Kids, ht)
		}
	}
	return h
}

// Forward implements module.Layer: x [rows, Hidden] -> logits [rows, Vocab].
//
//zinf:hotpath
func (h *TiedHead) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, h.Emb.Hidden)
	if len(h.tiles) > 0 {
		tv := h.Emb.TileVocab
		// The tile loop fills every column band, so uninit is safe.
		logits := rt.NewMatrixUninit(rows, h.Emb.Vocab)
		for t, ht := range h.tiles {
			lt := rt.Forward(ht, x)
			copyBand(logits.Float32s(), lt.Float32s(), rows, h.Emb.Vocab, t*tv, tv)
		}
		return logits
	}
	logits := rt.NewMatrixUninit(rows, h.Emb.Vocab)
	// External-parameter access: h owns no params, so h.Emb.Tok may be
	// partitioned away right now; Data() performs the blocking gather.
	e := h.Emb.Tok.Data()
	rt.Backend().MatMulTransB(logits.Float32s(), x.Float32s(), e, rows, h.Emb.Hidden, h.Emb.Vocab)
	if rt.SaveActivations() {
		h.saved = append(h.saved, x)
	}
	return logits
}

// Backward implements module.Layer: accumulates dE += dlogitsᵀ·x and
// returns dx = dlogits·E.
//
//zinf:hotpath
func (h *TiedHead) Backward(rt *module.Runtime, dlogits *tensor.Tensor) *tensor.Tensor {
	if len(h.tiles) > 0 {
		rows := rowsOf(dlogits, h.Emb.Vocab)
		tv := h.Emb.TileVocab
		dld := dlogits.Float32s()
		var dx *tensor.Tensor
		// Reverse order mirrors the saved-activation LIFO (as TiledLinear).
		for t := len(h.tiles) - 1; t >= 0; t-- {
			dlt := rt.NewMatrixUninit(rows, tv)
			sliceBand(dlt.Float32s(), dld, rows, h.Emb.Vocab, t*tv, tv)
			dxt := rt.Backward(h.tiles[t], dlt)
			if dx == nil {
				dx = dxt
			} else {
				rt.Backend().Axpy(1, dxt.Float32s(), dx.Float32s())
			}
		}
		return dx
	}
	if len(h.saved) == 0 {
		panic("model: TiedHead.Backward without saved input")
	}
	x := h.saved[len(h.saved)-1]
	h.saved = h.saved[:len(h.saved)-1]
	rows := rowsOf(x, h.Emb.Hidden)
	be := rt.Backend()
	// dE[v, :] += Σ_r dlogits[r, v] * x[r, :]
	be.MatMulTransA(h.Emb.Tok.Grad(), dlogits.Float32s(), x.Float32s(), h.Emb.Vocab, rows, h.Emb.Hidden)
	dx := rt.NewMatrixUninit(rows, h.Emb.Hidden)
	be.MatMul(dx.Float32s(), dlogits.Float32s(), h.Emb.Tok.Data(), rows, h.Emb.Vocab, h.Emb.Hidden)
	return dx
}

// headTile is one vocab tile of the tied head: logits tile = H·E_tᵀ over
// the t-th token-table tile. It owns no parameters — the tile is external,
// gathered on demand the first iteration and via the engine's external
// registry afterwards.
type headTile struct {
	module.Base
	emb *Embedding
	t   int

	saved []*tensor.Tensor
}

// Forward implements module.Layer.
//
//zinf:hotpath
func (ht *headTile) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, ht.emb.Hidden)
	tv := ht.emb.TileVocab
	logits := rt.NewMatrixUninit(rows, tv)
	e := ht.emb.TokTiles[ht.t].Data()
	rt.Backend().MatMulTransB(logits.Float32s(), x.Float32s(), e, rows, ht.emb.Hidden, tv)
	if rt.SaveActivations() {
		ht.saved = append(ht.saved, x)
	}
	return logits
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (ht *headTile) Backward(rt *module.Runtime, dlogits *tensor.Tensor) *tensor.Tensor {
	if len(ht.saved) == 0 {
		panic("model: headTile.Backward without saved input")
	}
	x := ht.saved[len(ht.saved)-1]
	ht.saved = ht.saved[:len(ht.saved)-1]
	rows := rowsOf(x, ht.emb.Hidden)
	tv := ht.emb.TileVocab
	be := rt.Backend()
	tile := ht.emb.TokTiles[ht.t]
	be.MatMulTransA(tile.Grad(), dlogits.Float32s(), x.Float32s(), tv, rows, ht.emb.Hidden)
	dx := rt.NewMatrixUninit(rows, ht.emb.Hidden)
	be.MatMul(dx.Float32s(), dlogits.Float32s(), tile.Data(), rows, tv, ht.emb.Hidden)
	return dx
}

var (
	_ module.Layer = (*TiedHead)(nil)
	_ module.Layer = (*headTile)(nil)
)
