package model

import (
	"repro/internal/module"
	"repro/internal/tensor"
)

// Embedding maps token ids to hidden vectors and adds learned positional
// embeddings. Its token table is shared with the output head (weight tying),
// making it the paper's canonical *external parameter*: a parameter defined
// in one submodule and consumed by another (Sec. 7.1.1).
type Embedding struct {
	module.Base
	Vocab, Hidden, Seq int
	Tok                *module.Param // [Vocab, Hidden]
	Pos                *module.Param // [Seq, Hidden]

	saved [][]int // token batches for backward
}

// NewEmbedding constructs the embedding module.
func NewEmbedding(name string, vocab, hidden, seq int, initStd float64) *Embedding {
	e := &Embedding{Vocab: vocab, Hidden: hidden, Seq: seq}
	e.ModName = name
	e.Tok = module.NewParam(name+".tok", initStd, vocab, hidden)
	e.Pos = module.NewParam(name+".pos", initStd, seq, hidden)
	e.OwnParams = []*module.Param{e.Tok, e.Pos}
	return e
}

// ForwardTokens embeds tokens (length batch*Seq) into a [batch*Seq, Hidden]
// tensor. Hooks fire as for any module.
func (e *Embedding) ForwardTokens(rt *module.Runtime, tokens []int, batch int) *tensor.Tensor {
	if len(tokens) != batch*e.Seq {
		panic("model: token count != batch*seq")
	}
	var out *tensor.Tensor
	rt.WithForward(e, func() {
		out = tensor.New(tensor.FP32, batch*e.Seq, e.Hidden)
		tok, pos := e.Tok.Data(), e.Pos.Data()
		od := out.Float32s()
		// Validate serially so a bad id panics on the caller's goroutine,
		// then fan the independent row lookups out over the backend.
		for _, t := range tokens {
			if t < 0 || t >= e.Vocab {
				panic("model: token id out of range")
			}
		}
		rt.Backend().ParRange(len(tokens), tensor.Grain(e.Hidden), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				t := tokens[i]
				s := i % e.Seq
				row := od[i*e.Hidden : (i+1)*e.Hidden]
				copy(row, tok[t*e.Hidden:(t+1)*e.Hidden])
				tensor.Axpy(1, pos[s*e.Hidden:(s+1)*e.Hidden], row)
			}
		})
		if rt.SaveActivations() {
			e.saved = append(e.saved, tokens)
		}
	})
	return out
}

// BackwardTokens scatter-adds dH into the token and positional tables.
func (e *Embedding) BackwardTokens(rt *module.Runtime, dh *tensor.Tensor) {
	rt.WithBackward(e, func() {
		if len(e.saved) == 0 {
			panic("model: Embedding.BackwardTokens without saved tokens")
		}
		tokens := e.saved[len(e.saved)-1]
		e.saved = e.saved[:len(e.saved)-1]
		dtok, dpos := e.Tok.Grad(), e.Pos.Grad()
		dhd := dh.Float32s()
		// Serial: repeated tokens scatter-add into the same table row, so
		// the accumulation order must match the reference backend exactly.
		for i, t := range tokens {
			s := i % e.Seq
			row := dhd[i*e.Hidden : (i+1)*e.Hidden]
			tensor.Axpy(1, row, dtok[t*e.Hidden:(t+1)*e.Hidden])
			tensor.Axpy(1, row, dpos[s*e.Hidden:(s+1)*e.Hidden])
		}
	})
}

// TiedHead projects hidden states onto the vocabulary with the *transpose*
// of the embedding's token table: logits = H·Eᵀ. It owns no parameters —
// the token table is an external parameter accessed through Param.Data(),
// which triggers the engine's on-demand gather when partitioned.
type TiedHead struct {
	module.Base
	Emb *Embedding

	saved []*tensor.Tensor
}

// NewTiedHead constructs the head sharing emb's token table.
func NewTiedHead(name string, emb *Embedding) *TiedHead {
	h := &TiedHead{Emb: emb}
	h.ModName = name
	return h
}

// Forward implements module.Layer: x [rows, Hidden] -> logits [rows, Vocab].
func (h *TiedHead) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, h.Emb.Hidden)
	logits := tensor.New(tensor.FP32, rows, h.Emb.Vocab)
	// External-parameter access: h owns no params, so h.Emb.Tok may be
	// partitioned away right now; Data() performs the blocking gather.
	e := h.Emb.Tok.Data()
	rt.Backend().MatMulTransB(logits.Float32s(), x.Float32s(), e, rows, h.Emb.Hidden, h.Emb.Vocab)
	if rt.SaveActivations() {
		h.saved = append(h.saved, x)
	}
	return logits
}

// Backward implements module.Layer: accumulates dE += dlogitsᵀ·x and
// returns dx = dlogits·E.
func (h *TiedHead) Backward(rt *module.Runtime, dlogits *tensor.Tensor) *tensor.Tensor {
	if len(h.saved) == 0 {
		panic("model: TiedHead.Backward without saved input")
	}
	x := h.saved[len(h.saved)-1]
	h.saved = h.saved[:len(h.saved)-1]
	rows := rowsOf(x, h.Emb.Hidden)
	be := rt.Backend()
	// dE[v, :] += Σ_r dlogits[r, v] * x[r, :]
	be.MatMulTransA(h.Emb.Tok.Grad(), dlogits.Float32s(), x.Float32s(), h.Emb.Vocab, rows, h.Emb.Hidden)
	dx := tensor.New(tensor.FP32, rows, h.Emb.Hidden)
	be.MatMul(dx.Float32s(), dlogits.Float32s(), h.Emb.Tok.Data(), rows, h.Emb.Vocab, h.Emb.Hidden)
	return dx
}

var _ module.Layer = (*TiedHead)(nil)
