// Package model implements a GPT-like Transformer with real forward AND
// backward passes (hand-written autograd), activation checkpointing, tied
// input/output embeddings (the paper's canonical "external parameter"),
// memory-centric tiling (Config.Tiling builds every large projection as a
// sequence of independently-parameterized tiles, paper Sec. 5.1.3), and
// the paper's Sec. 3 parameter-count formula. It is the workload every
// training engine in this reproduction runs.
//
// Numerics follow mixed-precision training: parameters hold
// fp16-representable values (engines store them as binary16), activations
// and gradients are computed in float32 (the fp32-accumulate behaviour of
// tensor cores).
package model

import "fmt"

// Config describes a GPT-like Transformer.
type Config struct {
	Vocab  int // vocabulary size (0 disables the embedding/LM head: hidden-state in/out)
	Hidden int // hidden dimension (hd)
	Layers int // number of Transformer blocks (nl)
	Heads  int // attention heads; must divide Hidden
	Seq    int // sequence length

	// CheckpointActivations enables per-block activation checkpointing
	// (store only block inputs; recompute inside blocks during backward).
	CheckpointActivations bool

	// Tiling, when > 1, builds every large projection — attention QKV and
	// output, MLP fc1/fc2, and (with Vocab > 0) the token table behind the
	// tied LM head — as a memory-centric tiled operator (paper Sec. 5.1.3)
	// whose tiles are independent parameters. Engine gather/release hooks,
	// the overlap trace and the prefetchers then operate per tile, cutting
	// the max live parameter working set by ~the tile factor. 0 or 1 builds
	// the dense model. Tiling must divide Hidden, and Vocab when Vocab > 0.
	Tiling int
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.Hidden <= 0 || c.Layers <= 0 || c.Seq <= 0 {
		return fmt.Errorf("model: hidden, layers, seq must be positive, got %+v", c)
	}
	if c.Heads <= 0 || c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model: heads %d must divide hidden %d", c.Heads, c.Hidden)
	}
	if c.Vocab < 0 {
		return fmt.Errorf("model: negative vocab %d", c.Vocab)
	}
	if c.Tiling < 0 {
		return fmt.Errorf("model: negative tiling %d", c.Tiling)
	}
	if c.Tiling > 1 {
		if c.Hidden%c.Tiling != 0 {
			return fmt.Errorf("model: tiling %d must divide hidden %d", c.Tiling, c.Hidden)
		}
		if c.Vocab > 0 && c.Vocab%c.Tiling != 0 {
			return fmt.Errorf("model: tiling %d must divide vocab %d", c.Tiling, c.Vocab)
		}
	}
	return nil
}

// tiles normalizes the Tiling factor (0 and 1 both mean dense).
func (c Config) tiles() int {
	if c.Tiling > 1 {
		return c.Tiling
	}
	return 1
}

// HeadDim returns Hidden/Heads.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// PaperParamCount evaluates the paper's Eq. (1): params ≈ 12 · nl · hd².
// This is the closed form used by all paper-scale analyses.
func (c Config) PaperParamCount() int64 {
	return 12 * int64(c.Layers) * int64(c.Hidden) * int64(c.Hidden)
}

// ExactParamCount returns the true parameter count of the concrete model
// this package builds (QKV + proj + MLP + LayerNorms + embeddings). For
// large hd it converges to Eq. (1) since the 12·hd² terms dominate.
func (c Config) ExactParamCount() int64 {
	hd := int64(c.Hidden)
	perBlock := (hd*3*hd + 3*hd) + // QKV
		(hd*hd + hd) + // attention out projection
		(hd*4*hd + 4*hd) + // MLP fc1
		(4*hd*hd + hd) + // MLP fc2
		4*hd // two LayerNorms (gain+bias each)
	n := int64(c.Layers)*perBlock + 2*hd // final LayerNorm
	if c.Vocab > 0 {
		n += int64(c.Vocab)*hd + int64(c.Seq)*hd // tied token embedding + positions
	}
	return n
}

// GPT3Like returns a configuration matching the paper's experiment tables:
// hidden dim and layer count chosen so that Eq. (1) yields roughly the
// requested parameter count (see paper Table 1).
func GPT3Like(hidden, layers int) Config {
	return Config{Vocab: 0, Hidden: hidden, Layers: layers, Heads: 16, Seq: 1024}
}

// TinyTest returns a small config suitable for unit tests.
func TinyTest() Config {
	return Config{Vocab: 32, Hidden: 16, Layers: 2, Heads: 2, Seq: 6}
}
