package model

import (
	"math"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Attention is causal multi-head self-attention: QKV projection, per-head
// scaled dot-product attention with a causal mask, and an output projection.
// The two projections are child Linear layers so engine hooks fire at the
// same granularity DeepSpeed's submodule hooks do.
type Attention struct {
	module.Base
	Hidden, Heads, Seq int

	QKV  Projection // [H, 3H]
	Proj Projection // [H, H]

	saved []attnSaved
}

type attnSaved struct {
	qkv   *tensor.Tensor // [B*S, 3H]
	probs []float32      // [B, heads, S, S] post-softmax attention weights
	batch int
}

// NewAttention constructs the attention submodule. tiles > 1 builds the QKV
// and output projections as memory-centric tiled operators.
func NewAttention(name string, hidden, heads, seq int, initStd float64, tiles int) *Attention {
	a := &Attention{Hidden: hidden, Heads: heads, Seq: seq}
	a.ModName = name
	a.QKV = NewProjection(name+".qkv", hidden, 3*hidden, true, initStd, tiles)
	a.Proj = NewProjection(name+".proj", hidden, hidden, true, initStd, tiles)
	a.Kids = []module.Module{a.QKV, a.Proj}
	return a
}

// Forward implements module.Layer. x is [B*S, H].
func (a *Attention) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, a.Hidden)
	if rows%a.Seq != 0 {
		panic("model: attention rows not divisible by seq")
	}
	b := rows / a.Seq
	qkv := rt.Forward(a.QKV, x)

	dh := a.Hidden / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	probs := make([]float32, b*a.Heads*a.Seq*a.Seq)
	ctx := tensor.New(tensor.FP32, rows, a.Hidden)

	qkvd, ctxd := qkv.Float32s(), ctx.Float32s()
	// Heads are independent (disjoint slices of probs and ctx), so the
	// (batch, head) loop fans out over the backend bit-exactly.
	be := rt.Backend()
	be.ParRange(b*a.Heads, tensor.Grain(a.Seq*a.Seq*dh), func(lo, hi int) {
		scores := make([]float32, a.Seq*a.Seq)
		for task := lo; task < hi; task++ {
			bi, h := task/a.Heads, task%a.Heads
			qOff, kOff, vOff := h*dh, a.Hidden+h*dh, 2*a.Hidden+h*dh
			// scores[s,t] = scale * q_s · k_t for t <= s, -inf otherwise.
			for s := 0; s < a.Seq; s++ {
				qRow := qkvd[(bi*a.Seq+s)*3*a.Hidden+qOff:]
				for t := 0; t < a.Seq; t++ {
					if t > s {
						scores[s*a.Seq+t] = float32(math.Inf(-1))
						continue
					}
					kRow := qkvd[(bi*a.Seq+t)*3*a.Hidden+kOff:]
					var acc float32
					for d := 0; d < dh; d++ {
						acc += qRow[d] * kRow[d]
					}
					scores[s*a.Seq+t] = acc * scale
				}
			}
			tensor.SoftmaxRows(scores, a.Seq, a.Seq)
			copy(probs[((bi*a.Heads+h)*a.Seq)*a.Seq:], scores)
			// ctx_s = Σ_t probs[s,t] * v_t
			for s := 0; s < a.Seq; s++ {
				out := ctxd[(bi*a.Seq+s)*a.Hidden+h*dh:]
				for d := 0; d < dh; d++ {
					out[d] = 0
				}
				for t := 0; t <= s; t++ {
					p := scores[s*a.Seq+t]
					if p == 0 {
						continue
					}
					vRow := qkvd[(bi*a.Seq+t)*3*a.Hidden+vOff:]
					for d := 0; d < dh; d++ {
						out[d] += p * vRow[d]
					}
				}
			}
		}
	})
	if rt.SaveActivations() {
		a.saved = append(a.saved, attnSaved{qkv: qkv, probs: probs, batch: b})
	}
	return rt.Forward(a.Proj, ctx)
}

// Backward implements module.Layer.
func (a *Attention) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	dctx := rt.Backward(a.Proj, dy)
	if len(a.saved) == 0 {
		panic("model: Attention.Backward without saved forward state")
	}
	s := a.saved[len(a.saved)-1]
	a.saved = a.saved[:len(a.saved)-1]

	b := s.batch
	rows := b * a.Seq
	dh := a.Hidden / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	dqkv := tensor.New(tensor.FP32, rows, 3*a.Hidden)
	qkvd, dqkvd, dctxd := s.qkv.Float32s(), dqkv.Float32s(), dctx.Float32s()

	// As in Forward, each (batch, head) task touches a disjoint column band
	// of dqkv, so the backward loop fans out bit-exactly.
	be := rt.Backend()
	be.ParRange(b*a.Heads, tensor.Grain(a.Seq*a.Seq*dh), func(lo, hi int) {
		dprobs := make([]float32, a.Seq*a.Seq)
		dscores := make([]float32, a.Seq*a.Seq)
		for task := lo; task < hi; task++ {
			bi, h := task/a.Heads, task%a.Heads
			qOff, kOff, vOff := h*dh, a.Hidden+h*dh, 2*a.Hidden+h*dh
			probs := s.probs[((bi*a.Heads+h)*a.Seq)*a.Seq : ((bi*a.Heads+h)*a.Seq+a.Seq)*a.Seq]
			// dprobs[s,t] = dctx_s · v_t ;  dv_t += Σ_s probs[s,t] * dctx_s
			for si := 0; si < a.Seq; si++ {
				dout := dctxd[(bi*a.Seq+si)*a.Hidden+h*dh:]
				for t := 0; t < a.Seq; t++ {
					if t > si {
						dprobs[si*a.Seq+t] = 0
						continue
					}
					vRow := qkvd[(bi*a.Seq+t)*3*a.Hidden+vOff:]
					var acc float32
					for d := 0; d < dh; d++ {
						acc += dout[d] * vRow[d]
					}
					dprobs[si*a.Seq+t] = acc
					p := probs[si*a.Seq+t]
					if p != 0 {
						dvRow := dqkvd[(bi*a.Seq+t)*3*a.Hidden+vOff:]
						for d := 0; d < dh; d++ {
							dvRow[d] += p * dout[d]
						}
					}
				}
			}
			tensor.SoftmaxRowsBackward(dscores, dprobs, probs, a.Seq, a.Seq)
			// dq_s += scale * Σ_t dscores[s,t] k_t ; dk_t += scale * Σ_s dscores[s,t] q_s
			for si := 0; si < a.Seq; si++ {
				dqRow := dqkvd[(bi*a.Seq+si)*3*a.Hidden+qOff:]
				qRow := qkvd[(bi*a.Seq+si)*3*a.Hidden+qOff:]
				for t := 0; t <= si; t++ {
					ds := dscores[si*a.Seq+t] * scale
					if ds == 0 {
						continue
					}
					kRow := qkvd[(bi*a.Seq+t)*3*a.Hidden+kOff:]
					dkRow := dqkvd[(bi*a.Seq+t)*3*a.Hidden+kOff:]
					for d := 0; d < dh; d++ {
						dqRow[d] += ds * kRow[d]
						dkRow[d] += ds * qRow[d]
					}
				}
			}
		}
	})
	return rt.Backward(a.QKV, dqkv)
}

var _ module.Layer = (*Attention)(nil)
