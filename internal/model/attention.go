package model

import (
	"math"
	"sync"

	"repro/internal/module"
	"repro/internal/tensor"
)

// Attention is causal multi-head self-attention: QKV projection, per-head
// scaled dot-product attention with a causal mask, and an output projection.
// The two projections are child Linear layers so engine hooks fire at the
// same granularity DeepSpeed's submodule hooks do.
type Attention struct {
	module.Base
	Hidden, Heads, Seq int

	QKV  Projection // [H, 3H]
	Proj Projection // [H, H]

	saved []attnSaved
}

type attnSaved struct {
	qkv   *tensor.Tensor // [B*S, 3H]
	probs []float32      // [B, heads, S, S] post-softmax attention weights
	batch int
}

// NewAttention constructs the attention submodule. tiles > 1 builds the QKV
// and output projections as memory-centric tiled operators.
func NewAttention(name string, hidden, heads, seq int, initStd float64, tiles int) *Attention {
	a := &Attention{Hidden: hidden, Heads: heads, Seq: seq}
	a.ModName = name
	a.QKV = NewProjection(name+".qkv", hidden, 3*hidden, true, initStd, tiles)
	a.Proj = NewProjection(name+".proj", hidden, hidden, true, initStd, tiles)
	a.Kids = []module.Module{a.QKV, a.Proj}
	return a
}

// attnFwdCtx carries the forward (batch, head) fan-out's operands to
// attnForwardChunk; pooled so the dispatch is allocation-free. rt rides
// along so each worker can draw its per-chunk scores scratch from the step
// arena.
type attnFwdCtx struct {
	rt                *module.Runtime
	qkvd, ctxd, probs []float32
	seq, heads        int
	hidden, dh        int
	scale             float32
}

var attnFwdCtxPool = sync.Pool{New: func() any { return new(attnFwdCtx) }}

//zinf:hotpath
func attnForwardChunk(ctx any, lo, hi int) {
	c := ctx.(*attnFwdCtx)
	// Per-worker scratch: every scores element is written (value or -inf)
	// before it is read, so the undefined contents are safe.
	scores := c.rt.Scratch(c.seq * c.seq)
	for task := lo; task < hi; task++ {
		bi, h := task/c.heads, task%c.heads
		qOff, kOff, vOff := h*c.dh, c.hidden+h*c.dh, 2*c.hidden+h*c.dh
		// scores[s,t] = scale * q_s · k_t for t <= s, -inf otherwise.
		for s := 0; s < c.seq; s++ {
			qRow := c.qkvd[(bi*c.seq+s)*3*c.hidden+qOff:]
			for t := 0; t < c.seq; t++ {
				if t > s {
					scores[s*c.seq+t] = float32(math.Inf(-1))
					continue
				}
				kRow := c.qkvd[(bi*c.seq+t)*3*c.hidden+kOff:]
				var acc float32
				for d := 0; d < c.dh; d++ {
					acc += qRow[d] * kRow[d]
				}
				scores[s*c.seq+t] = acc * c.scale
			}
		}
		tensor.SoftmaxRows(scores, c.seq, c.seq)
		copy(c.probs[((bi*c.heads+h)*c.seq)*c.seq:], scores)
		// ctx_s = Σ_t probs[s,t] * v_t
		for s := 0; s < c.seq; s++ {
			out := c.ctxd[(bi*c.seq+s)*c.hidden+h*c.dh:]
			for d := 0; d < c.dh; d++ {
				out[d] = 0
			}
			for t := 0; t <= s; t++ {
				p := scores[s*c.seq+t]
				if p == 0 {
					continue
				}
				vRow := c.qkvd[(bi*c.seq+t)*3*c.hidden+vOff:]
				for d := 0; d < c.dh; d++ {
					out[d] += p * vRow[d]
				}
			}
		}
	}
	c.rt.PutScratch(scores)
}

// Forward implements module.Layer. x is [B*S, H].
//
//zinf:hotpath
func (a *Attention) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, a.Hidden)
	if rows%a.Seq != 0 {
		panic("model: attention rows not divisible by seq")
	}
	b := rows / a.Seq
	qkv := rt.Forward(a.QKV, x)

	dh := a.Hidden / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	// probs is fully overwritten (copied from post-softmax scores); every
	// ctx element is zeroed in the chunk body before accumulation.
	probs := rt.AllocF32(b * a.Heads * a.Seq * a.Seq)
	ctx := rt.NewMatrixUninit(rows, a.Hidden)

	// Heads are independent (disjoint slices of probs and ctx), so the
	// (batch, head) loop fans out over the backend bit-exactly.
	c := attnFwdCtxPool.Get().(*attnFwdCtx)
	c.rt = rt
	c.qkvd, c.ctxd, c.probs = qkv.Float32s(), ctx.Float32s(), probs
	c.seq, c.heads, c.hidden, c.dh = a.Seq, a.Heads, a.Hidden, dh
	c.scale = scale
	rt.Backend().ParRangeCtx(b*a.Heads, tensor.Grain(a.Seq*a.Seq*dh), c, attnForwardChunk)
	*c = attnFwdCtx{}
	attnFwdCtxPool.Put(c)
	if rt.SaveActivations() {
		a.saved = append(a.saved, attnSaved{qkv: qkv, probs: probs, batch: b})
	}
	return rt.Forward(a.Proj, ctx)
}

// attnBwdCtx carries the backward (batch, head) fan-out's operands to
// attnBackwardChunk; pooled so the dispatch is allocation-free.
type attnBwdCtx struct {
	rt                 *module.Runtime
	qkvd, dqkvd, dctxd []float32
	probsAll           []float32
	seq, heads         int
	hidden, dh         int
	scale              float32
}

var attnBwdCtxPool = sync.Pool{New: func() any { return new(attnBwdCtx) }}

//zinf:hotpath
func attnBackwardChunk(ctx any, lo, hi int) {
	c := ctx.(*attnBwdCtx)
	// Per-worker scratch: dprobs is fully written per task before use, and
	// dscores is fully written by SoftmaxRowsBackward.
	dprobs := c.rt.Scratch(c.seq * c.seq)
	dscores := c.rt.Scratch(c.seq * c.seq)
	for task := lo; task < hi; task++ {
		bi, h := task/c.heads, task%c.heads
		qOff, kOff, vOff := h*c.dh, c.hidden+h*c.dh, 2*c.hidden+h*c.dh
		probs := c.probsAll[((bi*c.heads+h)*c.seq)*c.seq : ((bi*c.heads+h)*c.seq+c.seq)*c.seq]
		// dprobs[s,t] = dctx_s · v_t ;  dv_t += Σ_s probs[s,t] * dctx_s
		for si := 0; si < c.seq; si++ {
			dout := c.dctxd[(bi*c.seq+si)*c.hidden+h*c.dh:]
			for t := 0; t < c.seq; t++ {
				if t > si {
					dprobs[si*c.seq+t] = 0
					continue
				}
				vRow := c.qkvd[(bi*c.seq+t)*3*c.hidden+vOff:]
				var acc float32
				for d := 0; d < c.dh; d++ {
					acc += dout[d] * vRow[d]
				}
				dprobs[si*c.seq+t] = acc
				p := probs[si*c.seq+t]
				if p != 0 {
					dvRow := c.dqkvd[(bi*c.seq+t)*3*c.hidden+vOff:]
					for d := 0; d < c.dh; d++ {
						dvRow[d] += p * dout[d]
					}
				}
			}
		}
		tensor.SoftmaxRowsBackward(dscores, dprobs, probs, c.seq, c.seq)
		// dq_s += scale * Σ_t dscores[s,t] k_t ; dk_t += scale * Σ_s dscores[s,t] q_s
		for si := 0; si < c.seq; si++ {
			dqRow := c.dqkvd[(bi*c.seq+si)*3*c.hidden+qOff:]
			qRow := c.qkvd[(bi*c.seq+si)*3*c.hidden+qOff:]
			for t := 0; t <= si; t++ {
				ds := dscores[si*c.seq+t] * c.scale
				if ds == 0 {
					continue
				}
				kRow := c.qkvd[(bi*c.seq+t)*3*c.hidden+kOff:]
				dkRow := c.dqkvd[(bi*c.seq+t)*3*c.hidden+kOff:]
				for d := 0; d < c.dh; d++ {
					dqRow[d] += ds * kRow[d]
					dkRow[d] += ds * qRow[d]
				}
			}
		}
	}
	c.rt.PutScratch(dscores)
	c.rt.PutScratch(dprobs)
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (a *Attention) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	dctx := rt.Backward(a.Proj, dy)
	if len(a.saved) == 0 {
		panic("model: Attention.Backward without saved forward state")
	}
	s := a.saved[len(a.saved)-1]
	a.saved = a.saved[:len(a.saved)-1]

	b := s.batch
	rows := b * a.Seq
	dh := a.Hidden / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	// dqkv is accumulated into (dv/dq/dk all +=), so it must start zeroed —
	// the one model tensor that needs NewMatrix rather than NewMatrixUninit.
	dqkv := rt.NewMatrix(rows, 3*a.Hidden)

	// As in Forward, each (batch, head) task touches a disjoint column band
	// of dqkv, so the backward loop fans out bit-exactly.
	c := attnBwdCtxPool.Get().(*attnBwdCtx)
	c.rt = rt
	c.qkvd, c.dqkvd, c.dctxd = s.qkv.Float32s(), dqkv.Float32s(), dctx.Float32s()
	c.probsAll = s.probs
	c.seq, c.heads, c.hidden, c.dh = a.Seq, a.Heads, a.Hidden, dh
	c.scale = scale
	rt.Backend().ParRangeCtx(b*a.Heads, tensor.Grain(a.Seq*a.Seq*dh), c, attnBackwardChunk)
	*c = attnBwdCtx{}
	attnBwdCtxPool.Put(c)
	return rt.Backward(a.QKV, dqkv)
}

var _ module.Layer = (*Attention)(nil)
