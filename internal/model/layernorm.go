package model

import (
	"math"

	"repro/internal/module"
	"repro/internal/tensor"
)

// LayerNorm normalizes each row of the trailing dimension D:
// y = gain ⊙ (x-μ)/√(σ²+ε) + bias.
type LayerNorm struct {
	module.Base
	D    int
	Gain *module.Param // [D], init ones
	Bias *module.Param // [D], init zeros
	Eps  float64

	saved []lnSaved
}

type lnSaved struct {
	x      *tensor.Tensor
	invStd []float32 // per row
	mean   []float32 // per row
}

// NewLayerNorm constructs a LayerNorm over dimension d.
func NewLayerNorm(name string, d int) *LayerNorm {
	l := &LayerNorm{D: d, Eps: 1e-5}
	l.ModName = name
	l.Gain = module.NewParam(name+".g", 0, d)
	l.Gain.InitOnes = true
	l.Bias = module.NewParam(name+".b", 0, d)
	l.OwnParams = []*module.Param{l.Gain, l.Bias}
	return l
}

// Forward implements module.Layer.
func (l *LayerNorm) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, l.D)
	y := tensor.New(tensor.FP32, rows, l.D)
	g, b := l.Gain.Data(), l.Bias.Data()
	xd, yd := x.Float32s(), y.Float32s()
	invStd := make([]float32, rows)
	mean := make([]float32, rows)
	// Each row normalizes independently (statistics are per row), so the
	// row loop fans out over the backend bit-exactly.
	rt.Backend().ParRange(rows, tensor.Grain(l.D), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := xd[r*l.D : (r+1)*l.D]
			mu := float32(tensor.Sum(row) / float64(l.D))
			var varAcc float64
			for _, v := range row {
				d := float64(v - mu)
				varAcc += d * d
			}
			is := float32(1 / math.Sqrt(varAcc/float64(l.D)+l.Eps))
			mean[r], invStd[r] = mu, is
			out := yd[r*l.D : (r+1)*l.D]
			for j, v := range row {
				out[j] = g[j]*(v-mu)*is + b[j]
			}
		}
	})
	if rt.SaveActivations() {
		l.saved = append(l.saved, lnSaved{x: x, invStd: invStd, mean: mean})
	}
	return y
}

// Backward implements module.Layer.
func (l *LayerNorm) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	if len(l.saved) == 0 {
		panic("model: LayerNorm.Backward without saved forward state")
	}
	s := l.saved[len(l.saved)-1]
	l.saved = l.saved[:len(l.saved)-1]

	rows := rowsOf(s.x, l.D)
	dx := tensor.New(tensor.FP32, rows, l.D)
	g := l.Gain.Data()
	dg, db := l.Gain.Grad(), l.Bias.Grad()
	xd, dyd, dxd := s.x.Float32s(), dy.Float32s(), dx.Float32s()
	nf := float64(l.D)
	// The row loop stays serial: dg/db accumulate across rows and that
	// summation order is part of the bit-exactness contract.
	for r := 0; r < rows; r++ {
		xr := xd[r*l.D : (r+1)*l.D]
		dyr := dyd[r*l.D : (r+1)*l.D]
		dxr := dxd[r*l.D : (r+1)*l.D]
		mu, is := s.mean[r], s.invStd[r]
		// xhat_j = (x_j - mu) * is; dxhat_j = dy_j * g_j
		var sumDxhat, sumDxhatXhat float64
		for j := range dyr {
			xhat := (xr[j] - mu) * is
			dxhat := dyr[j] * g[j]
			sumDxhat += float64(dxhat)
			sumDxhatXhat += float64(dxhat) * float64(xhat)
			dg[j] += dyr[j] * xhat
			db[j] += dyr[j]
		}
		for j := range dxr {
			xhat := float64((xr[j] - mu) * is)
			dxhat := float64(dyr[j] * g[j])
			dxr[j] = float32(float64(is) * (dxhat - sumDxhat/nf - xhat*sumDxhatXhat/nf))
		}
	}
	return dx
}

var _ module.Layer = (*LayerNorm)(nil)
