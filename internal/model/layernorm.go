package model

import (
	"math"
	"sync"

	"repro/internal/module"
	"repro/internal/tensor"
)

// LayerNorm normalizes each row of the trailing dimension D:
// y = gain ⊙ (x-μ)/√(σ²+ε) + bias.
type LayerNorm struct {
	module.Base
	D    int
	Gain *module.Param // [D], init ones
	Bias *module.Param // [D], init zeros
	Eps  float64

	saved []lnSaved
}

type lnSaved struct {
	x      *tensor.Tensor
	invStd []float32 // per row (step-arena scoped)
	mean   []float32 // per row (step-arena scoped)
}

// NewLayerNorm constructs a LayerNorm over dimension d.
func NewLayerNorm(name string, d int) *LayerNorm {
	l := &LayerNorm{D: d, Eps: 1e-5}
	l.ModName = name
	l.Gain = module.NewParam(name+".g", 0, d)
	l.Gain.InitOnes = true
	l.Bias = module.NewParam(name+".b", 0, d)
	l.OwnParams = []*module.Param{l.Gain, l.Bias}
	return l
}

// lnFwdCtx carries the forward row fan-out's operands to lnForwardChunk;
// pooled so the dispatch is allocation-free.
type lnFwdCtx struct {
	xd, yd, g, b, invStd, mean []float32
	d                          int
	eps                        float64
}

var lnFwdCtxPool = sync.Pool{New: func() any { return new(lnFwdCtx) }}

//zinf:hotpath
func lnForwardChunk(ctx any, lo, hi int) {
	c := ctx.(*lnFwdCtx)
	for r := lo; r < hi; r++ {
		row := c.xd[r*c.d : (r+1)*c.d]
		mu := float32(tensor.Sum(row) / float64(c.d))
		var varAcc float64
		for _, v := range row {
			d := float64(v - mu)
			varAcc += d * d
		}
		is := float32(1 / math.Sqrt(varAcc/float64(c.d)+c.eps))
		c.mean[r], c.invStd[r] = mu, is
		out := c.yd[r*c.d : (r+1)*c.d]
		for j, v := range row {
			out[j] = c.g[j]*(v-mu)*is + c.b[j]
		}
	}
}

// Forward implements module.Layer.
//
//zinf:hotpath
func (l *LayerNorm) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := rowsOf(x, l.D)
	// Every output row and both statistics slots are fully written by the
	// chunk body, so the uninitialized arena buffers are safe.
	y := rt.NewMatrixUninit(rows, l.D)
	invStd := rt.AllocF32(rows)
	mean := rt.AllocF32(rows)
	// Each row normalizes independently (statistics are per row), so the
	// row loop fans out over the backend bit-exactly.
	c := lnFwdCtxPool.Get().(*lnFwdCtx)
	c.xd, c.yd = x.Float32s(), y.Float32s()
	c.g, c.b = l.Gain.Data(), l.Bias.Data()
	c.invStd, c.mean = invStd, mean
	c.d, c.eps = l.D, l.Eps
	rt.Backend().ParRangeCtx(rows, tensor.Grain(l.D), c, lnForwardChunk)
	*c = lnFwdCtx{}
	lnFwdCtxPool.Put(c)
	if rt.SaveActivations() {
		l.saved = append(l.saved, lnSaved{x: x, invStd: invStd, mean: mean})
	}
	return y
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (l *LayerNorm) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	if len(l.saved) == 0 {
		panic("model: LayerNorm.Backward without saved forward state")
	}
	s := l.saved[len(l.saved)-1]
	l.saved = l.saved[:len(l.saved)-1]

	rows := rowsOf(s.x, l.D)
	dx := rt.NewMatrixUninit(rows, l.D)
	g := l.Gain.Data()
	dg, db := l.Gain.Grad(), l.Bias.Grad()
	xd, dyd, dxd := s.x.Float32s(), dy.Float32s(), dx.Float32s()
	nf := float64(l.D)
	// The row loop stays serial: dg/db accumulate across rows and that
	// summation order is part of the bit-exactness contract.
	for r := 0; r < rows; r++ {
		xr := xd[r*l.D : (r+1)*l.D]
		dyr := dyd[r*l.D : (r+1)*l.D]
		dxr := dxd[r*l.D : (r+1)*l.D]
		mu, is := s.mean[r], s.invStd[r]
		// xhat_j = (x_j - mu) * is; dxhat_j = dy_j * g_j
		var sumDxhat, sumDxhatXhat float64
		for j := range dyr {
			xhat := (xr[j] - mu) * is
			dxhat := dyr[j] * g[j]
			sumDxhat += float64(dxhat)
			sumDxhatXhat += float64(dxhat) * float64(xhat)
			dg[j] += dyr[j] * xhat
			db[j] += dyr[j]
		}
		for j := range dxr {
			xhat := float64((xr[j] - mu) * is)
			dxhat := float64(dyr[j] * g[j])
			dxr[j] = float32(float64(is) * (dxhat - sumDxhat/nf - xhat*sumDxhatXhat/nf))
		}
	}
	return dx
}

var _ module.Layer = (*LayerNorm)(nil)
