package model

import (
	"repro/internal/module"
	"repro/internal/tensor"
)

// Gelu is the parameter-free activation layer between the MLP projections.
type Gelu struct {
	module.Base
	saved []*tensor.Tensor
}

// NewGelu constructs the activation layer.
func NewGelu(name string) *Gelu {
	g := &Gelu{}
	g.ModName = name
	return g
}

// Forward implements module.Layer.
//
//zinf:hotpath
func (g *Gelu) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	y := rt.NewMatrixUninit(x.Dim(0), x.Dim(1))
	rt.Backend().Gelu(y.Float32s(), x.Float32s())
	if rt.SaveActivations() {
		g.saved = append(g.saved, x)
	}
	return y
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (g *Gelu) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	if len(g.saved) == 0 {
		panic("model: Gelu.Backward without saved input")
	}
	x := g.saved[len(g.saved)-1]
	g.saved = g.saved[:len(g.saved)-1]
	dx := rt.NewMatrixUninit(x.Dim(0), x.Dim(1))
	rt.Backend().GeluBackward(dx.Float32s(), dy.Float32s(), x.Float32s())
	return dx
}

// Block is one pre-LayerNorm Transformer block:
//
//	x = x + Attn(LN1(x));  x = x + FC2(gelu(FC1(LN2(x))))
//
// With checkpointing enabled, the main forward keeps only the block input;
// Backward re-runs the forward (with activation saving on) before
// backpropagating — the paper's activation-checkpointing recipe, including
// the extra parameter gathers during recomputation.
type Block struct {
	module.Base
	Checkpoint bool

	LN1  *LayerNorm
	Attn *Attention
	LN2  *LayerNorm
	FC1  Projection
	Act  *Gelu
	FC2  Projection

	savedInputs []ckptRef // checkpoint: block inputs only
}

// ckptRef is either an in-memory tensor or a handle into the runtime's
// checkpoint-offload store.
type ckptRef struct {
	t      *tensor.Tensor
	handle int
	stored bool
}

// NewBlock constructs block index i of a model with the given config.
func NewBlock(name string, cfg Config, initStd float64) *Block {
	b := &Block{Checkpoint: cfg.CheckpointActivations}
	b.ModName = name
	b.LN1 = NewLayerNorm(name+".ln1", cfg.Hidden)
	b.Attn = NewAttention(name+".attn", cfg.Hidden, cfg.Heads, cfg.Seq, initStd, cfg.tiles())
	b.LN2 = NewLayerNorm(name+".ln2", cfg.Hidden)
	b.FC1 = NewProjection(name+".fc1", cfg.Hidden, 4*cfg.Hidden, true, initStd, cfg.tiles())
	b.Act = NewGelu(name + ".gelu")
	b.FC2 = NewProjection(name+".fc2", 4*cfg.Hidden, cfg.Hidden, true, initStd, cfg.tiles())
	b.Kids = []module.Module{b.LN1, b.Attn, b.LN2, b.FC1, b.Act, b.FC2}
	return b
}

//zinf:hotpath
func (b *Block) forwardInner(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	h := rt.Forward(b.LN1, x)
	h = rt.Forward(b.Attn, h)
	res1 := rt.NewMatrixUninit(x.Dim(0), x.Dim(1))
	rt.Backend().Add(res1.Float32s(), x.Float32s(), h.Float32s())

	h = rt.Forward(b.LN2, res1)
	h = rt.Forward(b.FC1, h)
	h = rt.Forward(b.Act, h)
	h = rt.Forward(b.FC2, h)
	out := rt.NewMatrixUninit(res1.Dim(0), res1.Dim(1))
	rt.Backend().Add(out.Float32s(), res1.Float32s(), h.Float32s())
	return out
}

//zinf:hotpath
func (b *Block) backwardInner(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	// out = res1 + FC2(gelu(FC1(LN2(res1))))
	d := rt.Backward(b.FC2, dy)
	d = rt.Backward(b.Act, d)
	d = rt.Backward(b.FC1, d)
	d = rt.Backward(b.LN2, d)
	dres1 := rt.NewMatrixUninit(dy.Dim(0), dy.Dim(1))
	rt.Backend().Add(dres1.Float32s(), dy.Float32s(), d.Float32s())

	// res1 = x + Attn(LN1(x))
	d = rt.Backward(b.Attn, dres1)
	d = rt.Backward(b.LN1, d)
	dx := rt.NewMatrixUninit(dy.Dim(0), dy.Dim(1))
	rt.Backend().Add(dx.Float32s(), dres1.Float32s(), d.Float32s())
	return dx
}

// Forward implements module.Layer.
//
//zinf:hotpath
func (b *Block) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	if !b.Checkpoint {
		return b.forwardInner(rt, x)
	}
	// Checkpointed: run without saving activations, keep only the input.
	// The arena sub-scope frees every intermediate the un-saved forward
	// produced — exactly the memory checkpointing exists to not keep —
	// leaving only the block output (and x, which predates the mark) live.
	prev := rt.SetSaveActivations(false)
	m := rt.Mark()
	y := b.forwardInner(rt, x)
	rt.Release(m, y)
	rt.SetSaveActivations(prev)
	if prev {
		if h, off := rt.PutCheckpoint(x); off {
			b.savedInputs = append(b.savedInputs, ckptRef{handle: h, stored: true})
		} else {
			b.savedInputs = append(b.savedInputs, ckptRef{t: x})
		}
	}
	return y
}

// Backward implements module.Layer.
//
//zinf:hotpath
func (b *Block) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	if !b.Checkpoint {
		return b.backwardInner(rt, dy)
	}
	if len(b.savedInputs) == 0 {
		panic("model: checkpointed Block.Backward without saved input")
	}
	ref := b.savedInputs[len(b.savedInputs)-1]
	b.savedInputs = b.savedInputs[:len(b.savedInputs)-1]
	x := ref.t
	if ref.stored {
		x = rt.GetCheckpoint(ref.handle)
	}
	// Recompute with saving enabled (extra parameter loads happen through
	// the same hooks as a normal forward), then backpropagate. The arena
	// sub-scope spans recompute + backward, so each checkpointed block's
	// recomputed activations reuse the region the previous block released
	// instead of accumulating O(layers) of them across the backward pass.
	m := rt.Mark()
	b.forwardInner(rt, x)
	dx := b.backwardInner(rt, dy)
	rt.Release(m, dx)
	return dx
}

var (
	_ module.Layer = (*Gelu)(nil)
	_ module.Layer = (*Block)(nil)
)
