package module

import (
	"testing"

	"repro/internal/tensor"
)

type fakeLayer struct {
	Base
	calls *[]string
}

func (f *fakeLayer) Forward(rt *Runtime, x *tensor.Tensor) *tensor.Tensor {
	*f.calls = append(*f.calls, "fwd:"+f.ModName)
	return x
}

func (f *fakeLayer) Backward(rt *Runtime, dy *tensor.Tensor) *tensor.Tensor {
	*f.calls = append(*f.calls, "bwd:"+f.ModName)
	return dy
}

type recordingHooks struct{ calls *[]string }

func (h recordingHooks) PreForward(m Module)   { *h.calls = append(*h.calls, "preF:"+m.Name()) }
func (h recordingHooks) PostForward(m Module)  { *h.calls = append(*h.calls, "postF:"+m.Name()) }
func (h recordingHooks) PreBackward(m Module)  { *h.calls = append(*h.calls, "preB:"+m.Name()) }
func (h recordingHooks) PostBackward(m Module) { *h.calls = append(*h.calls, "postB:"+m.Name()) }

func TestRuntimeHookOrdering(t *testing.T) {
	var calls []string
	l := &fakeLayer{calls: &calls}
	l.ModName = "leaf"
	rt := NewRuntime(recordingHooks{&calls})
	x := tensor.New(tensor.FP32, 2)
	rt.Forward(l, x)
	rt.Backward(l, x)
	want := []string{"preF:leaf", "fwd:leaf", "postF:leaf", "preB:leaf", "bwd:leaf", "postB:leaf"}
	if len(calls) != len(want) {
		t.Fatalf("calls %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, calls[i], want[i])
		}
	}
}

func TestWithForwardBackwardFireHooks(t *testing.T) {
	var calls []string
	m := &Base{ModName: "emb"}
	rt := NewRuntime(recordingHooks{&calls})
	ran := false
	rt.WithForward(m, func() { ran = true })
	rt.WithBackward(m, func() {})
	if !ran {
		t.Fatal("fn not run")
	}
	want := []string{"preF:emb", "postF:emb", "preB:emb", "postB:emb"}
	for i, w := range want {
		if calls[i] != w {
			t.Fatalf("call %d = %q, want %q", i, calls[i], w)
		}
	}
}

func TestWalkAndAllParamsDeterministicOrder(t *testing.T) {
	leaf1 := &Base{ModName: "a", OwnParams: []*Param{NewParam("a.w", 0.1, 2)}}
	leaf2 := &Base{ModName: "b", OwnParams: []*Param{NewParam("b.w", 0.1, 3), NewParam("b.b", 0, 3)}}
	root := &Base{ModName: "root", Kids: []Module{leaf1, leaf2}}

	var visited []string
	Walk(root, func(m Module) { visited = append(visited, m.Name()) })
	if len(visited) != 3 || visited[0] != "root" || visited[1] != "a" || visited[2] != "b" {
		t.Fatalf("walk order %v", visited)
	}
	ps := AllParams(root)
	if len(ps) != 3 || ps[0].Name != "a.w" || ps[2].Name != "b.b" {
		t.Fatalf("param order: %v %v %v", ps[0].Name, ps[1].Name, ps[2].Name)
	}
	if n := NumParams(root); n != 8 {
		t.Fatalf("NumParams = %d", n)
	}
}

func TestParamLifecycle(t *testing.T) {
	p := NewParam("w", 0.1, 2, 3)
	if p.Len() != 6 || p.FP16Bytes() != 12 {
		t.Fatalf("len=%d bytes=%d", p.Len(), p.FP16Bytes())
	}
	if p.Materialized() {
		t.Fatal("new param materialized")
	}
	p.SetData(make([]float32, 6))
	if !p.Materialized() {
		t.Fatal("SetData did not materialize")
	}
	g := p.Grad()
	g[0] = 5
	if !p.HasGrad() {
		t.Fatal("HasGrad false")
	}
	p.ZeroGrad()
	if p.Grad()[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
	p.ReleaseGrad()
	if p.HasGrad() {
		t.Fatal("ReleaseGrad failed")
	}
	p.ReleaseData()
	if p.Materialized() {
		t.Fatal("ReleaseData failed")
	}
}

func TestParamSetDataWrongLenPanics(t *testing.T) {
	p := NewParam("w", 0.1, 4)
	defer func() {
		if recover() == nil {
			t.Error("wrong-length SetData did not panic")
		}
	}()
	p.SetData(make([]float32, 3))
}

func TestParamOnDemandCounts(t *testing.T) {
	p := NewParam("w", 0.1, 2)
	n := 0
	p.SetOnDemand(func(q *Param) {
		n++
		q.SetData(make([]float32, 2))
	})
	p.Data()
	p.Data() // materialized now: no second trigger
	if n != 1 || p.OnDemandGathers() != 1 {
		t.Fatalf("onDemand fired %d times (counter %d)", n, p.OnDemandGathers())
	}
}

func TestOnDemandHandlerMustMaterialize(t *testing.T) {
	p := NewParam("w", 0.1, 2)
	p.SetOnDemand(func(q *Param) {})
	defer func() {
		if recover() == nil {
			t.Error("lazy handler accepted")
		}
	}()
	p.Data()
}

func TestSaveActivationsToggle(t *testing.T) {
	rt := NewRuntime(nil)
	if !rt.SaveActivations() {
		t.Fatal("default save off")
	}
	if prev := rt.SetSaveActivations(false); !prev {
		t.Fatal("SetSaveActivations returned wrong prev")
	}
	if rt.SaveActivations() {
		t.Fatal("save still on")
	}
}

type mapStore struct {
	m    map[int]*tensor.Tensor
	next int
}

func (s *mapStore) Put(t *tensor.Tensor) int {
	s.next++
	s.m[s.next] = t
	return s.next
}

func (s *mapStore) Get(h int) *tensor.Tensor {
	t := s.m[h]
	delete(s.m, h)
	return t
}

func TestCheckpointStorePlumbing(t *testing.T) {
	rt := NewRuntime(nil)
	if _, off := rt.PutCheckpoint(tensor.New(tensor.FP32, 1)); off {
		t.Fatal("no store installed but offloaded")
	}
	store := &mapStore{m: make(map[int]*tensor.Tensor)}
	rt.SetCheckpointStore(store)
	x := tensor.FromSlice([]float32{7}, 1)
	h, off := rt.PutCheckpoint(x)
	if !off {
		t.Fatal("store installed but not offloaded")
	}
	got := rt.GetCheckpoint(h)
	if got.At(0) != 7 {
		t.Fatalf("checkpoint round trip = %g", got.At(0))
	}
}

func TestGetCheckpointWithoutStorePanics(t *testing.T) {
	rt := NewRuntime(nil)
	defer func() {
		if recover() == nil {
			t.Error("GetCheckpoint without store did not panic")
		}
	}()
	rt.GetCheckpoint(1)
}
