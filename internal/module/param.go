// Package module provides the model-structure substrate mirroring the role
// PyTorch's nn.Module plays for DeepSpeed (paper Sec. 7 "Ease Inspired
// Implementation"): a tree of named modules owning named parameters, a
// Runtime that fires pre/post forward/backward hooks around every submodule
// (the paper's injected hooks), and on-demand parameter access interception
// so engines can gather a partitioned parameter the moment user code touches
// it — the mechanism behind automatic external-parameter registration.
package module

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one named model parameter. Its authoritative storage belongs to
// whichever training engine manages it (replicated fp16 for DDP, partitioned
// shards on GPU/CPU/NVMe for the ZeRO family). The full fp16-valued view in
// data is materialized ("gathered") by the engine before use and may be
// released afterwards.
type Param struct {
	Name  string
	Shape []int
	// InitStd is the weight-init standard deviation (0 means zeros, e.g.
	// biases and LayerNorm offsets; InitOnes overrides with ones).
	InitStd  float64
	InitOnes bool

	n    int
	data []float32 // gathered full view (fp16-representable values); nil when released
	grad []float32 // fp32 local gradient accumulator; nil until first use

	// onDemand, when set by an engine, is invoked by Data() if the
	// parameter is not materialized. It must leave the parameter gathered.
	onDemand func(*Param)
	// gradGet/gradPut, when set by an engine, route the gradient
	// accumulator through the engine's scratch arena instead of the heap:
	// Grad() draws (and zeroes) a buffer via gradGet, ReleaseGrad returns
	// it via gradPut. This is what keeps the backward pass allocation-free
	// in steady state.
	gradGet func(n int) []float32
	gradPut func([]float32)
	// accessedWhileReleased counts on-demand gathers, exposed so tests can
	// verify auto-registration fired.
	accessedWhileReleased int
}

// NewParam declares a parameter with the given name and shape.
func NewParam(name string, initStd float64, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), InitStd: initStd, n: tensor.NumElems(shape)}
}

// Len returns the number of elements.
//
//zinf:hotpath
func (p *Param) Len() int { return p.n }

// FP16Bytes returns the fp16 storage footprint of the parameter.
func (p *Param) FP16Bytes() int64 { return int64(p.n) * tensor.HalfBytes }

// Data returns the gathered full view of the parameter. If the parameter is
// partitioned away and an on-demand handler is installed, the handler runs
// first (blocking gather); otherwise Data panics, which flags an engine bug.
//
//zinf:hotpath
func (p *Param) Data() []float32 {
	if p.data == nil {
		if p.onDemand == nil {
			panic(fmt.Sprintf("module: parameter %q accessed while released and no on-demand handler installed", p.Name))
		}
		p.accessedWhileReleased++
		p.onDemand(p)
		if p.data == nil {
			panic(fmt.Sprintf("module: on-demand handler left %q unmaterialized", p.Name))
		}
	}
	return p.data
}

// Materialized reports whether the full view is currently present.
//
//zinf:hotpath
func (p *Param) Materialized() bool { return p.data != nil }

// SetData installs the gathered full view. The engine owns the slice.
//
//zinf:hotpath
func (p *Param) SetData(d []float32) {
	if len(d) != p.n {
		panic(fmt.Sprintf("module: SetData %q len %d != %d", p.Name, len(d), p.n))
	}
	p.data = d
}

// ReleaseData drops the full view (the "partition after use" step).
//
//zinf:hotpath
func (p *Param) ReleaseData() { p.data = nil }

// SetOnDemand installs the engine's blocking-gather handler.
func (p *Param) SetOnDemand(fn func(*Param)) { p.onDemand = fn }

// OnDemandGathers returns how many times Data() had to trigger the
// on-demand handler.
func (p *Param) OnDemandGathers() int { return p.accessedWhileReleased }

// SetGradScratch installs an engine-owned gradient-buffer recycler: get
// returns a buffer of the requested length (contents may be stale; Grad
// zeroes it), put takes a released buffer back. Either may be nil to restore
// plain heap allocation.
func (p *Param) SetGradScratch(get func(n int) []float32, put func([]float32)) {
	p.gradGet, p.gradPut = get, put
}

// Grad returns the fp32 gradient accumulator, allocating it zeroed on first
// use (from the engine's scratch arena when one is installed).
//
//zinf:hotpath
func (p *Param) Grad() []float32 {
	if p.grad == nil {
		if p.gradGet != nil {
			g := p.gradGet(p.n)
			clear(g)
			p.grad = g
		} else {
			p.grad = make([]float32, p.n) //zinf:allow hotpathalloc heap fallback when no engine scratch is installed; engines on the zero-alloc path install SetGradScratch
		}
	}
	return p.grad
}

// HasGrad reports whether a gradient buffer is live.
//
//zinf:hotpath
func (p *Param) HasGrad() bool { return p.grad != nil }

// ReleaseGrad drops the gradient buffer (after reduce-scatter/offload),
// recycling it through the engine's scratch arena when one is installed.
//
//zinf:hotpath
func (p *Param) ReleaseGrad() {
	if p.grad != nil && p.gradPut != nil {
		p.gradPut(p.grad)
	}
	p.grad = nil
}

// ZeroGrad zeroes the gradient buffer if it is live.
//
//zinf:hotpath
func (p *Param) ZeroGrad() {
	for i := range p.grad {
		p.grad[i] = 0
	}
}
