package module

import "repro/internal/tensor"

// Module is a node in the model tree. Composite modules return children;
// leaves own parameters and compute.
type Module interface {
	Name() string
	Params() []*Param
	Children() []Module
}

// Layer is a leaf (or checkpointable composite) that transforms hidden
// states. Forward must stash whatever it needs for Backward when
// rt.SaveActivations() is true. Backward consumes the most recent stashed
// activation (LIFO when a layer is re-entered, though the reproduction's
// models call each layer once per step).
type Layer interface {
	Module
	Forward(rt *Runtime, x *tensor.Tensor) *tensor.Tensor
	Backward(rt *Runtime, dy *tensor.Tensor) *tensor.Tensor
}

// Hooks receive the runtime's pre/post notifications — the reproduction of
// ZeRO-Infinity's injected PyTorch hooks. Engines implement Hooks to gather
// parameters before use, and partition/offload them (and their gradients)
// after use.
type Hooks interface {
	PreForward(m Module)
	PostForward(m Module)
	PreBackward(m Module)
	PostBackward(m Module)
}

// NopHooks is the no-engine default.
type NopHooks struct{}

// PreForward implements Hooks.
func (NopHooks) PreForward(Module) {}

// PostForward implements Hooks.
func (NopHooks) PostForward(Module) {}

// PreBackward implements Hooks.
func (NopHooks) PreBackward(Module) {}

// PostBackward implements Hooks.
func (NopHooks) PostBackward(Module) {}

// CheckpointStore decides where checkpointed block inputs live between the
// forward and backward passes. The default (nil) keeps them as in-memory
// tensors on the "GPU"; ZeRO-Infinity installs a CPU-offloading store
// (paper Sec. 5.1.2 / 5.2.3).
type CheckpointStore interface {
	// Put stores t and returns a handle.
	Put(t *tensor.Tensor) int
	// Get retrieves and removes the tensor for handle h.
	Get(h int) *tensor.Tensor
}

// Runtime threads hook dispatch and activation-saving state through a
// forward/backward pass. A Runtime is used by a single goroutine (one rank).
type Runtime struct {
	hooks Hooks
	// save controls whether layers stash activations for backward: true in
	// an ordinary forward and during checkpoint recomputation, false inside
	// a checkpointed block's main forward (only the block input is kept).
	save bool

	// be is the compute backend every layer's kernels dispatch through.
	be tensor.Backend

	ckptStore CheckpointStore
}

// NewRuntime returns a runtime dispatching to hooks (NopHooks if nil) on the
// reference compute backend.
func NewRuntime(hooks Hooks) *Runtime {
	if hooks == nil {
		hooks = NopHooks{}
	}
	return &Runtime{hooks: hooks, save: true, be: tensor.Reference()}
}

// SetBackend installs the compute backend layers dispatch kernels through
// (nil restores the reference backend).
func (rt *Runtime) SetBackend(be tensor.Backend) { rt.be = tensor.DefaultBackend(be) }

// Backend returns the runtime's compute backend.
//
//zinf:hotpath
func (rt *Runtime) Backend() tensor.Backend { return rt.be }

// SetCheckpointStore installs an activation-checkpoint offload store.
func (rt *Runtime) SetCheckpointStore(s CheckpointStore) { rt.ckptStore = s }

// PutCheckpoint stores a checkpointed block input, offloading it if a store
// is installed. The returned handle feeds GetCheckpoint.
func (rt *Runtime) PutCheckpoint(t *tensor.Tensor) (handle int, offloaded bool) {
	if rt.ckptStore == nil {
		return 0, false
	}
	return rt.ckptStore.Put(t), true
}

// GetCheckpoint retrieves an offloaded checkpoint.
func (rt *Runtime) GetCheckpoint(h int) *tensor.Tensor {
	if rt.ckptStore == nil {
		panic("module: GetCheckpoint without a store")
	}
	return rt.ckptStore.Get(h)
}

// Hooks returns the installed hook set.
//
//zinf:hotpath
func (rt *Runtime) Hooks() Hooks { return rt.hooks }

// SaveActivations reports whether layers should stash activations.
//
//zinf:hotpath
func (rt *Runtime) SaveActivations() bool { return rt.save }

// SetSaveActivations toggles activation stashing and returns the previous
// value; used by checkpointed blocks.
func (rt *Runtime) SetSaveActivations(v bool) bool {
	old := rt.save
	rt.save = v
	return old
}

// Forward runs layer.Forward wrapped in Pre/PostForward hooks.
//
//zinf:hotpath
func (rt *Runtime) Forward(l Layer, x *tensor.Tensor) *tensor.Tensor {
	rt.hooks.PreForward(l)
	y := l.Forward(rt, x)
	rt.hooks.PostForward(l)
	return y
}

// Backward runs layer.Backward wrapped in Pre/PostBackward hooks.
//
//zinf:hotpath
func (rt *Runtime) Backward(l Layer, dy *tensor.Tensor) *tensor.Tensor {
	rt.hooks.PreBackward(l)
	dx := l.Backward(rt, dy)
	rt.hooks.PostBackward(l)
	return dx
}

// WithForward fires forward hooks around fn for modules whose compute does
// not fit the Layer signature (e.g. embedding lookup, loss heads).
func (rt *Runtime) WithForward(m Module, fn func()) {
	rt.hooks.PreForward(m)
	fn()
	rt.hooks.PostForward(m)
}

// WithBackward fires backward hooks around fn.
func (rt *Runtime) WithBackward(m Module, fn func()) {
	rt.hooks.PreBackward(m)
	fn()
	rt.hooks.PostBackward(m)
}

// Walk visits m and every descendant in depth-first pre-order.
func Walk(m Module, visit func(Module)) {
	visit(m)
	for _, c := range m.Children() {
		Walk(c, visit)
	}
}

// AllParams returns every parameter in the tree in deterministic
// depth-first order.
func AllParams(m Module) []*Param {
	var ps []*Param
	Walk(m, func(n Module) { ps = append(ps, n.Params()...) })
	return ps
}

// NumParams returns the total element count of the tree's parameters.
func NumParams(m Module) int64 {
	var n int64
	for _, p := range AllParams(m) {
		n += int64(p.Len())
	}
	return n
}

// Base provides Name/Params/Children plumbing for concrete modules.
type Base struct {
	ModName   string
	OwnParams []*Param
	Kids      []Module
}

// Name implements Module.
func (b *Base) Name() string { return b.ModName }

// Params implements Module.
func (b *Base) Params() []*Param { return b.OwnParams }

// Children implements Module.
func (b *Base) Children() []Module { return b.Kids }
