package module

import (
	"repro/internal/mem"
	"repro/internal/tensor"
)

// Module is a node in the model tree. Composite modules return children;
// leaves own parameters and compute.
type Module interface {
	Name() string
	Params() []*Param
	Children() []Module
}

// Layer is a leaf (or checkpointable composite) that transforms hidden
// states. Forward must stash whatever it needs for Backward when
// rt.SaveActivations() is true. Backward consumes the most recent stashed
// activation (LIFO when a layer is re-entered, though the reproduction's
// models call each layer once per step).
type Layer interface {
	Module
	Forward(rt *Runtime, x *tensor.Tensor) *tensor.Tensor
	Backward(rt *Runtime, dy *tensor.Tensor) *tensor.Tensor
}

// Hooks receive the runtime's pre/post notifications — the reproduction of
// ZeRO-Infinity's injected PyTorch hooks. Engines implement Hooks to gather
// parameters before use, and partition/offload them (and their gradients)
// after use.
type Hooks interface {
	PreForward(m Module)
	PostForward(m Module)
	PreBackward(m Module)
	PostBackward(m Module)
}

// NopHooks is the no-engine default.
type NopHooks struct{}

// PreForward implements Hooks.
func (NopHooks) PreForward(Module) {}

// PostForward implements Hooks.
func (NopHooks) PostForward(Module) {}

// PreBackward implements Hooks.
func (NopHooks) PreBackward(Module) {}

// PostBackward implements Hooks.
func (NopHooks) PostBackward(Module) {}

// CheckpointStore decides where checkpointed block inputs live between the
// forward and backward passes. The default (nil) keeps them as in-memory
// tensors on the "GPU"; ZeRO-Infinity installs a CPU-offloading store
// (paper Sec. 5.1.2 / 5.2.3).
type CheckpointStore interface {
	// Put stores t and returns a handle.
	Put(t *tensor.Tensor) int
	// Get retrieves and removes the tensor for handle h.
	Get(h int) *tensor.Tensor
}

// Runtime threads hook dispatch and activation-saving state through a
// forward/backward pass. A Runtime is used by a single goroutine (one rank).
type Runtime struct {
	hooks Hooks
	// save controls whether layers stash activations for backward: true in
	// an ordinary forward and during checkpoint recomputation, false inside
	// a checkpointed block's main forward (only the block input is kept).
	save bool

	// be is the compute backend every layer's kernels dispatch through.
	be tensor.Backend

	// step is the step-scoped activation arena the layers' NewMatrix/
	// Scratch requests draw from. nil means heap: every request falls back
	// to make/tensor.New, which is the bit-identity baseline the arena path
	// is tested against.
	step *mem.StepArena

	ckptStore CheckpointStore
}

// NewRuntime returns a runtime dispatching to hooks (NopHooks if nil) on the
// reference compute backend.
func NewRuntime(hooks Hooks) *Runtime {
	if hooks == nil {
		hooks = NopHooks{}
	}
	return &Runtime{hooks: hooks, save: true, be: tensor.Reference()}
}

// SetBackend installs the compute backend layers dispatch kernels through
// (nil restores the reference backend).
func (rt *Runtime) SetBackend(be tensor.Backend) { rt.be = tensor.DefaultBackend(be) }

// Backend returns the runtime's compute backend.
//
//zinf:hotpath
func (rt *Runtime) Backend() tensor.Backend { return rt.be }

// SetStepArena installs the step-scoped activation arena (nil restores heap
// allocation). Engines install one at construction and bracket each
// micro-batch with BeginStep/EndStep.
func (rt *Runtime) SetStepArena(a *mem.StepArena) { rt.step = a }

// StepArena returns the installed activation arena, or nil when layer
// allocations go to the heap.
//
//zinf:hotpath
func (rt *Runtime) StepArena() *mem.StepArena { return rt.step }

// BeginStep reclaims the previous step's activations and opens a new arena
// generation. A no-op without an arena.
//
//zinf:hotpath
func (rt *Runtime) BeginStep() {
	if rt.step != nil {
		rt.step.BeginStep()
	}
}

// EndStep reclaims the finished step's activations. With the BeginStep
// bracket this is belt-and-braces — BeginStep reclaims unconditionally — but
// it returns buffers to the free lists at the earliest point they are dead,
// keeping the arena's footprint at one step's live set. A no-op without an
// arena.
//
//zinf:hotpath
func (rt *Runtime) EndStep() {
	if rt.step != nil {
		rt.step.Reset()
	}
}

// NewMatrix returns a zeroed step-scoped [rows, cols] FP32 tensor — for
// call sites that accumulate into it. Valid until the engine's next
// BeginStep (or an enclosing Release scope).
//
//zinf:hotpath
func (rt *Runtime) NewMatrix(rows, cols int) *tensor.Tensor {
	if rt.step != nil {
		return rt.step.NewMatrix(rows, cols)
	}
	return tensor.New(tensor.FP32, rows, cols) //zinf:allow hotpathalloc heap fallback when no step arena is installed; engines install one and the zero-alloc gates run arena-backed
}

// NewMatrixUninit is NewMatrix with UNDEFINED contents, for call sites that
// fully overwrite the tensor (every matmul dst, softmax/gelu outputs).
//
//zinf:hotpath
func (rt *Runtime) NewMatrixUninit(rows, cols int) *tensor.Tensor {
	if rt.step != nil {
		return rt.step.NewMatrixUninit(rows, cols)
	}
	return tensor.New(tensor.FP32, rows, cols) //zinf:allow hotpathalloc heap fallback when no step arena is installed; engines install one and the zero-alloc gates run arena-backed
}

// AllocF32 returns a step-scoped []float32 of length n with UNDEFINED
// contents — headerless activation storage (softmax rows, layernorm stats).
//
//zinf:hotpath
func (rt *Runtime) AllocF32(n int) []float32 {
	if rt.step != nil {
		return rt.step.AllocF32(n)
	}
	return make([]float32, n) //zinf:allow hotpathalloc heap fallback when no step arena is installed; engines install one and the zero-alloc gates run arena-backed
}

// Scratch returns a transient []float32 the caller must return with
// PutScratch. Safe from concurrent kernel workers (per-worker scratch).
//
//zinf:hotpath
func (rt *Runtime) Scratch(n int) []float32 {
	if rt.step != nil {
		return rt.step.Scratch(n)
	}
	return make([]float32, n) //zinf:allow hotpathalloc heap fallback when no step arena is installed; engines install one and the zero-alloc gates run arena-backed
}

// PutScratch returns a Scratch buffer for reuse. A no-op without an arena.
//
//zinf:hotpath
func (rt *Runtime) PutScratch(s []float32) {
	if rt.step != nil {
		rt.step.PutScratch(s)
	}
}

// Mark opens an arena sub-scope for activation-checkpoint recompute.
// Returns the zero mark without an arena.
//
//zinf:hotpath
func (rt *Runtime) Mark() mem.StepMark {
	if rt.step != nil {
		return rt.step.Mark()
	}
	return mem.StepMark{}
}

// Release frees arena buffers allocated since m, keeping only the tensor
// keep (see mem.StepArena.Release). A no-op without an arena.
//
//zinf:hotpath
func (rt *Runtime) Release(m mem.StepMark, keep *tensor.Tensor) {
	if rt.step != nil {
		rt.step.Release(m, keep)
	}
}

// SetCheckpointStore installs an activation-checkpoint offload store.
func (rt *Runtime) SetCheckpointStore(s CheckpointStore) { rt.ckptStore = s }

// PutCheckpoint stores a checkpointed block input, offloading it if a store
// is installed. The returned handle feeds GetCheckpoint.
//
//zinf:hotpath
func (rt *Runtime) PutCheckpoint(t *tensor.Tensor) (handle int, offloaded bool) {
	if rt.ckptStore == nil {
		return 0, false
	}
	return rt.ckptStore.Put(t), true
}

// GetCheckpoint retrieves an offloaded checkpoint.
//
//zinf:hotpath
func (rt *Runtime) GetCheckpoint(h int) *tensor.Tensor {
	if rt.ckptStore == nil {
		panic("module: GetCheckpoint without a store")
	}
	return rt.ckptStore.Get(h)
}

// Hooks returns the installed hook set.
//
//zinf:hotpath
func (rt *Runtime) Hooks() Hooks { return rt.hooks }

// SaveActivations reports whether layers should stash activations.
//
//zinf:hotpath
func (rt *Runtime) SaveActivations() bool { return rt.save }

// SetSaveActivations toggles activation stashing and returns the previous
// value; used by checkpointed blocks.
//
//zinf:hotpath
func (rt *Runtime) SetSaveActivations(v bool) bool {
	old := rt.save
	rt.save = v
	return old
}

// Forward runs layer.Forward wrapped in Pre/PostForward hooks.
//
//zinf:hotpath
func (rt *Runtime) Forward(l Layer, x *tensor.Tensor) *tensor.Tensor {
	rt.hooks.PreForward(l)
	y := l.Forward(rt, x)
	rt.hooks.PostForward(l)
	return y
}

// Backward runs layer.Backward wrapped in Pre/PostBackward hooks.
//
//zinf:hotpath
func (rt *Runtime) Backward(l Layer, dy *tensor.Tensor) *tensor.Tensor {
	rt.hooks.PreBackward(l)
	dx := l.Backward(rt, dy)
	rt.hooks.PostBackward(l)
	return dx
}

// WithForward fires forward hooks around fn for modules whose compute does
// not fit the Layer signature (e.g. embedding lookup, loss heads).
func (rt *Runtime) WithForward(m Module, fn func()) {
	rt.hooks.PreForward(m)
	fn()
	rt.hooks.PostForward(m)
}

// WithBackward fires backward hooks around fn.
func (rt *Runtime) WithBackward(m Module, fn func()) {
	rt.hooks.PreBackward(m)
	fn()
	rt.hooks.PostBackward(m)
}

// Walk visits m and every descendant in depth-first pre-order.
func Walk(m Module, visit func(Module)) {
	visit(m)
	for _, c := range m.Children() {
		Walk(c, visit)
	}
}

// AllParams returns every parameter in the tree in deterministic
// depth-first order.
func AllParams(m Module) []*Param {
	var ps []*Param
	Walk(m, func(n Module) { ps = append(ps, n.Params()...) })
	return ps
}

// NumParams returns the total element count of the tree's parameters.
func NumParams(m Module) int64 {
	var n int64
	for _, p := range AllParams(m) {
		n += int64(p.Len())
	}
	return n
}

// Base provides Name/Params/Children plumbing for concrete modules.
type Base struct {
	ModName   string
	OwnParams []*Param
	Kids      []Module
}

// Name implements Module.
func (b *Base) Name() string { return b.ModName }

// Params implements Module.
func (b *Base) Params() []*Param { return b.OwnParams }

// Children implements Module.
func (b *Base) Children() []Module { return b.Kids }
