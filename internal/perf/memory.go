// Package perf implements the paper's analytic models: the Sec. 3 memory
// characterization (Eqs. 1-5, Figure 2a), the DGX-2 hardware envelope
// (Figure 2b), the Sec. 4 arithmetic-intensity and efficiency model
// (Eqs. 6-11, Figure 3, Table 3), and the per-strategy memory-feasibility
// model behind Figures 1, 5c and 6a.
package perf

// Byte sizes per parameter under mixed-precision Adam (paper Sec. 3).
const (
	BytesParamFP16   = 2
	BytesGradFP16    = 2
	BytesOptimState  = 16 // fp32 master + momentum + variance + fp32 grad
	BytesModelStates = 20 // Eq. (2) / Eq. (1): 240·nl·hd² = 20 · 12·nl·hd²
)

// ModelShape is the Transformer geometry the analyses are parameterized by.
type ModelShape struct {
	Hidden    int64
	Layers    int64
	Heads     int64
	Seq       int64
	CkptEvery int64 // ci: Transformer blocks between activation checkpoints
}

// Params evaluates Eq. (1): total parameters ≈ 12 · nl · hd².
func (m ModelShape) Params() int64 { return 12 * m.Layers * m.Hidden * m.Hidden }

// ModelStatesBytes evaluates Eq. (2): 240 · nl · hd² bytes — fp16
// params+grads plus fp32 Adam states.
func (m ModelShape) ModelStatesBytes() int64 { return BytesModelStates * m.Params() }

// ActivationCheckpointBytes evaluates Eq. (3):
// 2 · bsz · seq · hd · nl / ci bytes.
func (m ModelShape) ActivationCheckpointBytes(bsz int64) int64 {
	ci := m.CkptEvery
	if ci <= 0 {
		ci = 1
	}
	return 2 * bsz * m.Seq * m.Hidden * m.Layers / ci
}

// FullActivationBytes estimates activations without checkpointing: the
// per-block working activations (Eq. 5 with ci=1) retained for every block.
func (m ModelShape) FullActivationBytes(bsz int64) int64 {
	return bsz * m.Seq * (16*m.Hidden + 2*m.Heads*m.Seq) * m.Layers
}

// MSWMBytes evaluates Eq. (4): model-state working memory — the fp16
// parameters and gradients of the largest operator (the hd→4hd linear):
// 4 · hd · 4hd bytes.
func (m ModelShape) MSWMBytes() int64 { return 4 * m.Hidden * 4 * m.Hidden }

// AWMBytes evaluates Eq. (5): activation working memory between two
// checkpoints: bsz · seq · ci · (16·hd + 2·heads·seq) bytes.
func (m ModelShape) AWMBytes(bsz int64) int64 {
	ci := m.CkptEvery
	if ci <= 0 {
		ci = 1
	}
	return bsz * m.Seq * ci * (16*m.Hidden + 2*m.Heads*m.Seq)
}

// Fig2aRow is one row of Figure 2a.
type Fig2aRow struct {
	Label       string
	Shape       ModelShape
	Params      int64
	ModelStates int64 // bytes
	ActFull     int64 // bytes, no checkpointing
	ActCkpt     int64 // bytes, checkpointing every block
	MSWM        int64 // bytes
	AWM         int64 // bytes
}

// Fig2aShapes returns the canonical model geometries used throughout the
// paper's analyses (hidden dim and layer counts chosen per Table 1 style so
// Eq. (1) lands on the labelled sizes; batch 32, seq 1024, heads 16 per the
// Figure 2a caption).
func Fig2aShapes() []struct {
	Label string
	Shape ModelShape
} {
	mk := func(hd, nl int64) ModelShape {
		return ModelShape{Hidden: hd, Layers: nl, Heads: 16, Seq: 1024, CkptEvery: 1}
	}
	return []struct {
		Label string
		Shape ModelShape
	}{
		{"100B", mk(8192, 125)},
		{"500B", mk(18432, 124)},
		{"1T", mk(25600, 128)},
		{"10T", mk(65536, 200)},
		{"100T", mk(88064, 1075)},
	}
}

// Fig2a computes the Figure 2a table at the given per-node batch size.
func Fig2a(bsz int64) []Fig2aRow {
	var rows []Fig2aRow
	for _, s := range Fig2aShapes() {
		rows = append(rows, Fig2aRow{
			Label:       s.Label,
			Shape:       s.Shape,
			Params:      s.Shape.Params(),
			ModelStates: s.Shape.ModelStatesBytes(),
			ActFull:     s.Shape.FullActivationBytes(bsz),
			ActCkpt:     s.Shape.ActivationCheckpointBytes(bsz),
			MSWM:        s.Shape.MSWMBytes(),
			AWM:         s.Shape.AWMBytes(bsz),
		})
	}
	return rows
}
