package perf

// Cluster describes the hardware envelope of a GPU cluster, defaulting to
// the paper's NVIDIA V100 DGX-2 SuperPOD (Figure 2b). All bandwidths are
// bytes/second; memory sizes are bytes.
type Cluster struct {
	Nodes       int
	GPUsPerNode int

	GPUMemory  int64 // per GPU
	CPUMemory  int64 // per node
	NVMeMemory int64 // per node

	// Achievable bandwidths (paper Fig. 2b, reported per GPU when all GPUs
	// read in parallel).
	GPUMemBW        float64 // HBM2, per GPU
	GPUToGPUBW      float64 // NVSwitch, per GPU
	PCIeSingleBW    float64 // one GPU alone over PCIe
	PCIeAggBW       float64 // node aggregate PCIe (all 16 GPUs)
	NVMeAggBW       float64 // node aggregate NVMe
	CPUMemBW        float64 // node CPU DRAM bandwidth
	InterNodeBW     float64 // per node network (800 Gbps on the testbed)
	PeakTFlopsPerGP float64 // achievable peak per GPU (empirical, Sec. 4)
}

// Unit helpers.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
	GB = int64(1) << 30
	TB = int64(1) << 40

	GBps = 1e9
	TBps = 1e12
)

// DGX2 returns the paper's testbed description for the given node count.
func DGX2(nodes int) Cluster {
	return Cluster{
		Nodes:       nodes,
		GPUsPerNode: 16,
		GPUMemory:   32 * GB,
		CPUMemory:   int64(1.5 * float64(TB)),
		NVMeMemory:  28 * TB,

		GPUMemBW:        900 * GBps,
		GPUToGPUBW:      70 * GBps,
		PCIeSingleBW:    12 * GBps,
		PCIeAggBW:       48 * GBps,
		NVMeAggBW:       25 * GBps,
		CPUMemBW:        100 * GBps,
		InterNodeBW:     100 * GBps, // 800 Gbps
		PeakTFlopsPerGP: 70,
	}
}

// TotalGPUs returns nodes × GPUs per node.
func (c Cluster) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// AggGPUMemory returns total GPU memory across the cluster.
func (c Cluster) AggGPUMemory() int64 { return int64(c.TotalGPUs()) * c.GPUMemory }

// AggCPUMemory returns total CPU memory across the cluster.
func (c Cluster) AggCPUMemory() int64 { return int64(c.Nodes) * c.CPUMemory }

// AggNVMeMemory returns total NVMe capacity across the cluster.
func (c Cluster) AggNVMeMemory() int64 { return int64(c.Nodes) * c.NVMeMemory }

// PerGPUPCIeBW is the per-GPU share of the node's PCIe aggregate when all
// GPUs transfer in parallel — the bandwidth-centric partitioning win: with
// a broadcast approach a fetch is limited to PCIeSingleBW total, while the
// partitioned allgather approach reaches PCIeAggBW per node.
func (c Cluster) PerGPUPCIeBW() float64 { return c.PCIeAggBW / float64(c.GPUsPerNode) }

// PerGPUNVMeBW is the per-GPU share of the node's NVMe bandwidth.
func (c Cluster) PerGPUNVMeBW() float64 { return c.NVMeAggBW / float64(c.GPUsPerNode) }

// Fig2bRow is one line of the Figure 2b table.
type Fig2bRow struct {
	Label string
	Value string
}
