package perf

// Per-strategy memory-feasibility model: given a cluster and a model shape,
// decide whether training fits, and search for the maximum trainable size.
// This regenerates Figure 1 (3D parallelism vs ZeRO-Infinity scale), Figure
// 6a (max size per strategy on one DGX-2) and the feasibility side of
// Figure 5c. Constants follow the paper's Sec. 3 accounting; the 3D
// parallelism row carries a calibrated overhead factor for activation
// replication and pipeline imbalance (documented in EXPERIMENTS.md).

// StrategyKind enumerates the Table 2 rows.
type StrategyKind int

// Strategies in Figure 6a order.
const (
	KindDP StrategyKind = iota
	KindZeRO2
	KindZeROOffload
	Kind3D
	KindZeRO3
	KindInfCPU
	KindInfNVMe
)

// String returns the display name.
func (k StrategyKind) String() string {
	switch k {
	case KindDP:
		return "Data parallel"
	case KindZeRO2:
		return "ZeRO-2"
	case KindZeROOffload:
		return "ZeRO-Offload"
	case Kind3D:
		return "3D Parallelism"
	case KindZeRO3:
		return "ZeRO-3"
	case KindInfCPU:
		return "ZeRO-Inf-CPU"
	case KindInfNVMe:
		return "ZeRO-Inf-NVMe"
	}
	return "?"
}

// threeDOverhead calibrates 3D parallelism's per-GPU model-state overhead
// (pipeline-stage imbalance, embedding duplication); threeDMP is the
// assumed tensor-slicing degree, which divides activations and working
// memory. Together they put the 512-GPU maximum near the paper's ~650 B
// parameters while letting the 500B/batch-7 Table 1 configuration fit.
const (
	threeDOverhead = 1.1
	threeDMP       = 4
)

// Breakdown reports where a configuration's bytes land.
type Breakdown struct {
	GPUPerGPU  int64 // bytes on each GPU
	CPUPerNode int64 // bytes on each node's CPU
	NVMePeNode int64 // bytes on each node's NVMe
}

// Feasible reports whether the strategy can hold the model states plus
// activation checkpoints and working memory on the given cluster with the
// given per-GPU batch size.
func Feasible(kind StrategyKind, c Cluster, m ModelShape, bszPerGPU int64) (bool, Breakdown) {
	p := m.Params()
	n := int64(c.TotalGPUs())
	gpn := int64(c.GPUsPerNode)

	// Activation checkpoints are produced per sample; each GPU holds its
	// own batch's checkpoints (unless offloaded), plus AWM + MSWM working
	// space during compute. ZeRO-Infinity strategies apply memory-centric
	// tiling (Sec. 5.1.3), shrinking MSWM by up to the maximum tile factor.
	ckpt := m.ActivationCheckpointBytes(bszPerGPU)
	mswm := m.MSWMBytes()
	if kind == KindInfCPU || kind == KindInfNVMe {
		const maxTiles = 64
		for t := int64(1); t < maxTiles && mswm > c.GPUMemory/4; t *= 2 {
			mswm /= 2
		}
	}
	work := m.AWMBytes(bszPerGPU) + mswm

	var b Breakdown
	switch kind {
	case KindDP:
		b.GPUPerGPU = 20*p + ckpt + work
	case KindZeRO2:
		b.GPUPerGPU = 2*p + (2*p+16*p)/n + ckpt + work
	case KindZeROOffload:
		b.GPUPerGPU = 2*p + ckpt + work
		b.CPUPerNode = (2*p + 16*p) / n * gpn
	case Kind3D:
		b.GPUPerGPU = int64(float64(20*p/n) * threeDOverhead)
		// Tensor slicing divides activations and working memory across the
		// MP group.
		b.GPUPerGPU += (ckpt + work) / threeDMP
	case KindZeRO3:
		b.GPUPerGPU = 20*p/n + ckpt + work
	case KindInfCPU:
		// fp16 params + optimizer on CPU; gradients stream through CPU.
		b.CPUPerNode = (2*p + 16*p) / int64(c.Nodes)
		b.GPUPerGPU = ckpt + work
	case KindInfNVMe:
		b.NVMePeNode = (2*p + 16*p) / int64(c.Nodes)
		// Activation checkpoints offloaded to CPU (paper Sec. 5.1.2).
		b.CPUPerNode = ckpt * gpn
		b.GPUPerGPU = work
	}
	ok := b.GPUPerGPU <= c.GPUMemory &&
		b.CPUPerNode <= c.CPUMemory &&
		b.NVMePeNode <= c.NVMeMemory
	return ok, b
}

// hiddenLadder is the search space of hidden sizes (paper Table 1 values).
var hiddenLadder = []int64{1536, 2048, 4096, 8192, 12288, 18432, 25600, 32768, 49152, 65536, 88064}

// ShapeForParams picks a plausible (hidden, layers) geometry for a target
// parameter count: the smallest ladder hidden size keeping the layer count
// at or below ~205 (the paper's deepest configuration).
func ShapeForParams(p int64) ModelShape {
	for _, hd := range hiddenLadder {
		nl := p / (12 * hd * hd)
		if nl <= 205 {
			if nl < 1 {
				nl = 1
			}
			return ModelShape{Hidden: hd, Layers: nl, Heads: 16, Seq: 1024, CkptEvery: 1}
		}
	}
	hd := hiddenLadder[len(hiddenLadder)-1]
	return ModelShape{Hidden: hd, Layers: p / (12 * hd * hd), Heads: 16, Seq: 1024, CkptEvery: 1}
}

// MaxModelParams binary-searches the largest trainable parameter count for
// the strategy on the cluster.
func MaxModelParams(kind StrategyKind, c Cluster, bszPerGPU int64) int64 {
	lo, hi := int64(1e8), int64(5e14)
	if ok, _ := Feasible(kind, c, ShapeForParams(lo), bszPerGPU); !ok {
		return 0
	}
	for hi-lo > 1e8 {
		mid := lo + (hi-lo)/2
		if ok, _ := Feasible(kind, c, ShapeForParams(mid), bszPerGPU); ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig1Point is one bar of Figure 1: max trainable size vs node count.
type Fig1Point struct {
	Nodes      int
	ThreeD     int64
	ZeROInf    int64
	ScaleRatio float64
}

// Fig1 sweeps node counts, comparing 3D parallelism against ZeRO-Infinity
// (NVMe) maximum trainable model sizes.
func Fig1(nodeCounts []int, bszPerGPU int64) []Fig1Point {
	var out []Fig1Point
	for _, n := range nodeCounts {
		c := DGX2(n)
		td := MaxModelParams(Kind3D, c, bszPerGPU)
		zi := MaxModelParams(KindInfNVMe, c, bszPerGPU)
		ratio := 0.0
		if td > 0 {
			ratio = float64(zi) / float64(td)
		}
		out = append(out, Fig1Point{Nodes: n, ThreeD: td, ZeROInf: zi, ScaleRatio: ratio})
	}
	return out
}

// Fig6aRow is one bar of Figure 6a: max size per strategy on one DGX-2.
type Fig6aRow struct {
	Strategy  StrategyKind
	MaxParams int64
}

// Fig6a computes the max model size for every Table 2 strategy on a single
// DGX-2 node (16 GPUs, batch 1 per GPU as in appendix Table 4).
func Fig6a() []Fig6aRow {
	c := DGX2(1)
	kinds := []StrategyKind{KindDP, KindZeRO2, KindZeROOffload, Kind3D, KindZeRO3, KindInfCPU, KindInfNVMe}
	var rows []Fig6aRow
	for _, k := range kinds {
		rows = append(rows, Fig6aRow{Strategy: k, MaxParams: MaxModelParams(k, c, 1)})
	}
	return rows
}

// Fig6bMaxHidden models the Fig. 6b protocol analytically: with GPU memory
// pre-fragmented into chunkBytes contiguous chunks, the largest single
// allocation during a step is the fp16 parameter (and gradient) tensor of
// one tile of the hd→4hd linear: 2·hd·4hd/tiles bytes each. The returned
// value is the largest ladder hidden size whose tile tensors fit in a
// chunk. This reproduces the paper's 64K-hidden-at-factor-16 result; the
// untiled maximum lands one ladder step above the paper's 8K (their
// allocator carries overheads ours does not). See EXPERIMENTS.md.
func Fig6bMaxHidden(tiles int64, chunkBytes int64) int64 {
	best := int64(0)
	for _, hd := range []int64{2048, 4096, 8192, 16384, 32768, 65536, 131072} {
		tileBytes := 2 * hd * 4 * hd / tiles
		gradBytes := tileBytes
		if tileBytes <= chunkBytes && gradBytes <= chunkBytes {
			best = hd
		}
	}
	return best
}
