package perf

// Sec. 4: arithmetic intensity (AIT) and the bandwidth/efficiency model.

// ComputePerIter evaluates the total computation per iteration (Sec. 4.1):
// 2 · 4 · bsz · seq · params flops (forward + 2× backward + checkpoint
// recomputation).
func ComputePerIter(bsz, seq, params int64) float64 {
	return 8 * float64(bsz) * float64(seq) * float64(params)
}

// AITParamsGrads is the arithmetic intensity w.r.t. parameters and
// gradients, Eq. (9): seq · bsz flops per byte.
func AITParamsGrads(seq, bsz int64) float64 { return float64(seq * bsz) }

// AITOptimizerStates is Eq. (10): seq · bsz / 4.
func AITOptimizerStates(seq, bsz int64) float64 { return float64(seq*bsz) / 4 }

// AITActivationCkpt is Eq. (11): 24 · hd · ci.
func AITActivationCkpt(hd, ci int64) float64 { return float64(24 * hd * ci) }

// Efficiency evaluates Eq. (6):
//
//	eff = ait·bw / (ait·bw + peak)
//
// with peak in flops/s and bw in bytes/s.
func Efficiency(ait, bw, peak float64) float64 {
	if ait <= 0 || bw <= 0 {
		return 0
	}
	return ait * bw / (ait*bw + peak)
}

// RequiredBandwidth inverts Eq. (6): the bandwidth needed to reach the
// target efficiency at the given AIT and peak throughput.
func RequiredBandwidth(eff, ait, peak float64) float64 {
	if eff <= 0 || eff >= 1 || ait <= 0 {
		panic("perf: RequiredBandwidth needs 0 < eff < 1 and ait > 0")
	}
	return peak * eff / ((1 - eff) * ait)
}

// Fig3Point is one (bandwidth, efficiency) sample.
type Fig3Point struct {
	BandwidthGBps float64
	Efficiency    float64
}

// Fig3Series is one curve of Figure 3.
type Fig3Series struct {
	Label  string
	Points []Fig3Point
}

// fig3Bandwidths is the log sweep used for all three subfigures, in GB/s.
func fig3Bandwidths() []float64 {
	var bws []float64
	for bw := 0.1; bw <= 3000; bw *= 1.5 {
		bws = append(bws, bw)
	}
	return bws
}

const peakV100 = 70e12 // 70 TFlops achievable peak (Sec. 4.2)

// Fig3a: efficiency vs parameter/gradient bandwidth for batch sizes 1-16,
// seq 1024.
func Fig3a() []Fig3Series {
	var out []Fig3Series
	for _, bsz := range []int64{1, 2, 4, 8, 16} {
		ait := AITParamsGrads(1024, bsz)
		s := Fig3Series{Label: labelBsz(bsz)}
		for _, bw := range fig3Bandwidths() {
			s.Points = append(s.Points, Fig3Point{bw, Efficiency(ait, bw*1e9, peakV100)})
		}
		out = append(out, s)
	}
	return out
}

// Fig3b: efficiency vs optimizer-state bandwidth.
func Fig3b() []Fig3Series {
	var out []Fig3Series
	for _, bsz := range []int64{1, 2, 4, 8, 16} {
		ait := AITOptimizerStates(1024, bsz)
		s := Fig3Series{Label: labelBsz(bsz)}
		for _, bw := range fig3Bandwidths() {
			s.Points = append(s.Points, Fig3Point{bw, Efficiency(ait, bw*1e9, peakV100)})
		}
		out = append(out, s)
	}
	return out
}

// Fig3c: efficiency vs activation-checkpoint bandwidth for hidden sizes
// 2K-64K, one checkpoint per block.
func Fig3c() []Fig3Series {
	var out []Fig3Series
	for _, hd := range []int64{2048, 8192, 16384, 32768, 65536} {
		ait := AITActivationCkpt(hd, 1)
		s := Fig3Series{Label: labelHidden(hd)}
		for _, bw := range fig3Bandwidths() {
			s.Points = append(s.Points, Fig3Point{bw, Efficiency(ait, bw*1e9, peakV100)})
		}
		out = append(out, s)
	}
	return out
}

func labelBsz(b int64) string    { return "bsz=" + itoa(b) }
func labelHidden(h int64) string { return "hd=" + itoa(h/1024) + "K" }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Table3Row is one column of the paper's Table 3: bandwidth requirements for
// ZeRO-Infinity to stay efficient as accelerators outpace V100s.
type Table3Row struct {
	Label                string
	Devices              int
	PeakPFlopsPerDevice  float64
	SlowMemBWPerDevice   float64 // GB/s
	SlowMemAggregateTBps float64 // TB/s
	GPUToGPUBW           float64 // GB/s
}

// Table3 reproduces the paper's Table 3: the V100 baseline needs ~3 GB/s of
// slow-memory bandwidth per device (the DGX-2 per-GPU PCIe share) and
// 70 GB/s device-device; requirements scale linearly with achievable
// compute (Eq. 6 is linear in peak at fixed efficiency and AIT).
func Table3() []Table3Row {
	const devices = 512
	base := Table3Row{
		Label:               "V100",
		Devices:             devices,
		PeakPFlopsPerDevice: 0.07,
		SlowMemBWPerDevice:  3.0,
		GPUToGPUBW:          70.0,
	}
	base.SlowMemAggregateTBps = base.SlowMemBWPerDevice * devices / 1000
	rows := []Table3Row{base}
	for _, mult := range []float64{10, 100} {
		r := base
		r.Label = itoa(int64(mult)) + "x"
		r.PeakPFlopsPerDevice *= mult
		r.SlowMemBWPerDevice *= mult
		r.SlowMemAggregateTBps *= mult
		r.GPUToGPUBW *= mult
		rows = append(rows, r)
	}
	return rows
}
