package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq1Eq2ParamAndStateCounts(t *testing.T) {
	m := ModelShape{Hidden: 8192, Layers: 125, Heads: 16, Seq: 1024, CkptEvery: 1}
	wantParams := int64(12 * 125 * 8192 * 8192) // ≈ 100.7 B
	if got := m.Params(); got != wantParams {
		t.Fatalf("Params = %d, want %d", got, wantParams)
	}
	if got := m.ModelStatesBytes(); got != 20*wantParams {
		t.Fatalf("ModelStates = %d, want %d", got, 20*wantParams)
	}
	// Sanity vs paper: 100B params → 2 TB of model states.
	if tb := float64(m.ModelStatesBytes()) / float64(TB); tb < 1.7 || tb > 2.1 {
		t.Fatalf("100B model states = %.2f TB, want ≈ 1.8 TB", tb)
	}
}

// Paper Sec. 3: "it requires 64 GPUs to just fit the model states for a
// 100B parameter model" (64 × 32 GB = 2 TB).
func TestPaperAnchor100BNeeds64GPUs(t *testing.T) {
	m := Fig2aShapes()[0].Shape
	gpus := float64(m.ModelStatesBytes()) / float64(32*GB)
	if gpus < 55 || gpus > 70 {
		t.Fatalf("100B model needs %.0f GPUs of state, want ≈ 64", gpus)
	}
}

// Paper Sec. 5.1.2: activation checkpoints of a 10T model ≈ 0.76 TB
// (batch 32, seq 1024, ci 1).
func TestPaperAnchor10TActivationCkpt(t *testing.T) {
	m := Fig2aShapes()[3].Shape // 10T: hd 64K, nl 200
	got := float64(m.ActivationCheckpointBytes(32)) / float64(TB)
	if got < 0.6 || got > 0.95 {
		t.Fatalf("10T ckpt = %.2f TB, want ≈ 0.76 TB", got)
	}
}

// Paper Sec. 5.1.1: a 100T model's states fit in the aggregate NVMe of a
// 96-node DGX-2 cluster.
func TestPaperAnchor100TFitsIn96NodeNVMe(t *testing.T) {
	m := Fig2aShapes()[4].Shape
	c := DGX2(96)
	if m.ModelStatesBytes() > c.AggNVMeMemory() {
		t.Fatalf("100T states (%d) exceed 96-node NVMe (%d)", m.ModelStatesBytes(), c.AggNVMeMemory())
	}
	if m.ModelStatesBytes() > DGX2(60).AggNVMeMemory() {
		t.Log("needs most of the cluster, as the paper implies")
	}
}

func TestMSWMAndAWMFormulas(t *testing.T) {
	m := ModelShape{Hidden: 8192, Layers: 1, Heads: 16, Seq: 1024, CkptEvery: 1}
	if got, want := m.MSWMBytes(), int64(4*8192*4*8192); got != want {
		t.Fatalf("MSWM = %d, want %d", got, want)
	}
	wantAWM := int64(32) * 1024 * (16*8192 + 2*16*1024)
	if got := m.AWMBytes(32); got != wantAWM {
		t.Fatalf("AWM = %d, want %d", got, wantAWM)
	}
}

func TestEfficiencyEquationProperties(t *testing.T) {
	// Monotone in bandwidth, bounded by (0,1), 50% point at bw=peak/ait.
	ait, peak := 2048.0, 70e12
	half := Efficiency(ait, peak/ait, peak)
	if math.Abs(half-0.5) > 1e-12 {
		t.Fatalf("efficiency at bw=peak/ait = %g, want 0.5", half)
	}
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1e15) + 1
		b = math.Mod(math.Abs(b), 1e6) + 1
		lo, hi := a, a*b
		e1 := Efficiency(ait, lo, peak)
		e2 := Efficiency(ait, hi, peak)
		return e1 <= e2 && e1 > 0 && e2 < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequiredBandwidthInvertsEfficiency(t *testing.T) {
	ait, peak := 512.0, 70e12
	for _, eff := range []float64{0.1, 0.5, 0.9, 0.99} {
		bw := RequiredBandwidth(eff, ait, peak)
		back := Efficiency(ait, bw, peak)
		if math.Abs(back-eff) > 1e-9 {
			t.Fatalf("eff %g → bw %g → eff %g", eff, bw, back)
		}
	}
}

// Paper Sec. 4.2 anchors.
func TestFig3Anchors(t *testing.T) {
	// (a) ≥70 GB/s gives >50% efficiency even at batch size 1 (seq 1024).
	eff := Efficiency(AITParamsGrads(1024, 1), 70e9, peakV100)
	if eff <= 0.5 {
		t.Fatalf("params/grads eff at 70GB/s bsz1 = %g, want > 0.5", eff)
	}
	// (b) 90% efficiency at batch 2 needs ≈ 1.5 TB/s for optimizer states.
	bw := RequiredBandwidth(0.9, AITOptimizerStates(1024, 2), peakV100)
	if bw < 1.0e12 || bw > 1.6e12 {
		t.Fatalf("optimizer 90%% bw = %.2g, want ≈ 1.5 TB/s", bw)
	}
	// Optimizer states need ~4x the bandwidth of params/grads (Eq 10 vs 9).
	r := RequiredBandwidth(0.5, AITOptimizerStates(1024, 4), peakV100) /
		RequiredBandwidth(0.5, AITParamsGrads(1024, 4), peakV100)
	if math.Abs(r-4) > 1e-9 {
		t.Fatalf("optimizer/params bw ratio = %g, want 4", r)
	}
	// (c) 2 GB/s sustains >50% efficiency for hidden 2K, <1 GB/s for ≥8K.
	if e := Efficiency(AITActivationCkpt(2048, 1), 2e9, peakV100); e <= 0.5 {
		t.Fatalf("act ckpt eff at 2GB/s hd2K = %g", e)
	}
	if bw := RequiredBandwidth(0.5, AITActivationCkpt(8192, 1), peakV100); bw >= 1e9 {
		t.Fatalf("act ckpt 50%% bw at hd8K = %g, want < 1 GB/s", bw)
	}
}

func TestFig3SeriesShapes(t *testing.T) {
	for _, fig := range [][]Fig3Series{Fig3a(), Fig3b(), Fig3c()} {
		if len(fig) != 5 {
			t.Fatalf("series count = %d, want 5", len(fig))
		}
		for _, s := range fig {
			if len(s.Points) == 0 {
				t.Fatalf("series %s empty", s.Label)
			}
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Efficiency < s.Points[i-1].Efficiency {
					t.Fatalf("series %s not monotone", s.Label)
				}
			}
		}
	}
}

func TestComputePerIter(t *testing.T) {
	// Eq: 8 · bsz · seq · params.
	if got := ComputePerIter(2, 1024, 1e9); got != 8*2*1024*1e9 {
		t.Fatalf("ComputePerIter = %g", got)
	}
}

func TestTable3LinearScaling(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SlowMemBWPerDevice != 3.0 || rows[0].GPUToGPUBW != 70 {
		t.Fatalf("V100 row wrong: %+v", rows[0])
	}
	for i, mult := range []float64{10, 100} {
		r := rows[i+1]
		if r.SlowMemBWPerDevice != 3.0*mult || r.GPUToGPUBW != 70*mult {
			t.Fatalf("row %s not linear: %+v", r.Label, r)
		}
	}
	// Aggregate: 512 devices × 3 GB/s = 1.5 TB/s (paper Table 3).
	if math.Abs(rows[0].SlowMemAggregateTBps-1.536) > 0.01 {
		t.Fatalf("aggregate = %g TB/s, want ≈ 1.5", rows[0].SlowMemAggregateTBps)
	}
}

// Figure 6a shape: each successive strategy unlocks a larger model, with
// the paper's approximate milestones on a single DGX-2.
func TestFig6aStrategyOrdering(t *testing.T) {
	rows := Fig6a()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(k StrategyKind) int64 {
		for _, r := range rows {
			if r.Strategy == k {
				return r.MaxParams
			}
		}
		t.Fatalf("missing %v", k)
		return 0
	}
	dp := get(KindDP)
	z2 := get(KindZeRO2)
	off := get(KindZeROOffload)
	z3 := get(KindZeRO3)
	infCPU := get(KindInfCPU)
	infNVMe := get(KindInfNVMe)

	inRange := func(name string, got int64, lo, hi float64) {
		t.Helper()
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s max = %.2fB, want in [%.1fB, %.1fB]", name, float64(got)/1e9, lo/1e9, hi/1e9)
		}
	}
	inRange("DP", dp, 0.8e9, 2.0e9)            // paper: 1.4B
	inRange("ZeRO-2", z2, 7e9, 16e9)           // paper: 13B
	inRange("ZeRO-Offload", off, 9e9, 18e9)    // paper: 13B
	inRange("ZeRO-3", z3, 15e9, 30e9)          // paper: ~20B
	inRange("Inf-CPU", infCPU, 60e9, 110e9)    // paper: ~100B ("almost")
	inRange("Inf-NVMe", infNVMe, 0.8e12, 2e12) // paper: 1T

	// The ~700x headline: NVMe vs plain data parallelism.
	ratio := float64(infNVMe) / float64(dp)
	if ratio < 400 || ratio > 1300 {
		t.Errorf("Inf-NVMe/DP ratio = %.0fx, paper reports ≈ 700x", ratio)
	}
}

// Figure 1 shape: ZeRO-Infinity trains ~50x larger than 3D parallelism on
// 32 nodes, reaching ≥ 32T parameters.
func TestFig1ScaleGap(t *testing.T) {
	// Batch 1/GPU: at the scale frontier the paper itself shrinks the batch
	// to fit activation checkpoints in CPU memory (Sec. 8.2).
	pts := Fig1([]int{1, 4, 16, 32}, 1)
	last := pts[len(pts)-1]
	if last.ZeROInf < 32e12 {
		t.Fatalf("32-node ZeRO-Infinity max = %.1fT, want ≥ 32T", float64(last.ZeROInf)/1e12)
	}
	if last.ThreeD > 1e12 {
		t.Fatalf("32-node 3D max = %.2fT, want < 1T (paper ~0.65T)", float64(last.ThreeD)/1e12)
	}
	// Paper reports "50x" comparing its *achieved* 32T against 3D's max;
	// our model compares max-vs-max, which lands higher. Accept the decade.
	if last.ScaleRatio < 30 || last.ScaleRatio > 130 {
		t.Fatalf("scale ratio = %.0fx, paper reports ≈ 50x", last.ScaleRatio)
	}
	// Monotone growth in nodes for both.
	for i := 1; i < len(pts); i++ {
		if pts[i].ZeROInf < pts[i-1].ZeROInf || pts[i].ThreeD < pts[i-1].ThreeD {
			t.Fatal("max size not monotone in node count")
		}
	}
}

// Figure 6b shape: tiling multiplies the trainable hidden size ~√tiles.
func TestFig6bTilingGrowsMaxHidden(t *testing.T) {
	chunk := int64(2 * GB)
	h1 := Fig6bMaxHidden(1, chunk)
	h16 := Fig6bMaxHidden(16, chunk)
	h64 := Fig6bMaxHidden(64, chunk)
	if h1 < 8192 || h1 > 16384 {
		t.Fatalf("untiled max hidden = %d, paper reports 8K", h1)
	}
	if h16 <= h1 {
		t.Fatalf("tiling 16 did not increase max hidden: %d vs %d", h16, h1)
	}
	if h64 < 65536 {
		t.Fatalf("tiling 64 max hidden = %d, want ≥ 64K", h64)
	}
}

func TestShapeForParamsRoundTrip(t *testing.T) {
	for _, p := range []int64{1e9, 13e9, 100e9, 1e12, 32e12} {
		s := ShapeForParams(p)
		got := s.Params()
		if got < p/3 || got > p*3 {
			t.Fatalf("ShapeForParams(%g) gives %g params", float64(p), float64(got))
		}
		if s.Layers < 1 || s.Layers > 1500 {
			t.Fatalf("layers %d unreasonable", s.Layers)
		}
	}
}

func TestDGX2Envelope(t *testing.T) {
	c := DGX2(1)
	if c.TotalGPUs() != 16 {
		t.Fatalf("gpus = %d", c.TotalGPUs())
	}
	if c.AggGPUMemory() != 512*GB {
		t.Fatalf("agg gpu mem = %d", c.AggGPUMemory())
	}
	// Paper Sec. 6.1: allgather approach reaches ~3.0 GB/s per GPU over
	// PCIe and ~1.6 GB/s per GPU from NVMe on a 16-GPU node.
	if bw := c.PerGPUPCIeBW(); bw != 3e9 {
		t.Fatalf("per-GPU PCIe = %g", bw)
	}
	if bw := c.PerGPUNVMeBW(); math.Abs(bw-1.5625e9) > 1e6 {
		t.Fatalf("per-GPU NVMe = %g", bw)
	}
	// 64 nodes: >3 TB/s CPU and >1.5 TB/s NVMe aggregate (Sec. 6.1).
	c64 := DGX2(64)
	if float64(c64.Nodes)*c64.PCIeAggBW < 3e12 {
		t.Fatal("64-node aggregate PCIe below 3 TB/s")
	}
	if float64(c64.Nodes)*c64.NVMeAggBW < 1.5e12 {
		t.Fatal("64-node aggregate NVMe below 1.5 TB/s")
	}
}
