// Package ckpt implements crash-consistent checkpoint sets (format v2) and
// the asynchronous checkpoint writer that produces them.
//
// A checkpoint set is one generation directory
//
//	<dir>/gen-<NNNNNNNNNN>/
//	    rank-0000.zst   per-rank training state (internal/zero statecodec)
//	    rank-0001.zst   ...
//	    weights.zinf    consolidated fp16 weights (root checkpoint format v1)
//	    MANIFEST        commit record: sizes + CRC32C of every file above
//
// The MANIFEST is written last, via write-to-temp + fsync + atomic rename +
// directory fsync, so its presence (and internal self-checksum) defines
// completeness: a crash at any earlier point leaves a generation directory
// without a valid MANIFEST, which readers skip, falling back to the last
// complete generation. Torn or bit-rotted data files are caught by the
// per-file CRC32C at open time. All validation failures are errors, never
// panics.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// File names inside a generation directory.
const (
	// ManifestName is the commit record; its presence defines completeness.
	ManifestName = "MANIFEST"
	// WeightsName is the consolidated fp16 weights file (root format v1,
	// written by WriteCheckpoint — v1 files remain readable unchanged).
	WeightsName = "weights.zinf"
)

// RankFileName returns the per-rank state file name for rank r.
func RankFileName(r int) string { return fmt.Sprintf("rank-%04d.zst", r) }

const (
	manifestMagic   = "ZMF2"
	manifestVersion = 2
	// maxManifestFiles bounds the declared file count so corrupt input
	// cannot trigger huge allocations.
	maxManifestFiles = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C used throughout the format.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// FileEntry records one committed file.
type FileEntry struct {
	Name string
	Size int64
	CRC  uint32 // CRC32C of the file contents
}

// Manifest is the commit record of one checkpoint generation.
type Manifest struct {
	Generation uint64
	World      int
	Step       int
	Files      []FileEntry
}

// File returns the entry for name.
func (m *Manifest) File(name string) (FileEntry, bool) {
	for _, f := range m.Files {
		if f.Name == name {
			return f, true
		}
	}
	return FileEntry{}, false
}

// Encode serializes m, ending with a CRC32C of all preceding bytes so a
// torn manifest write is self-detecting.
//
// Layout (little endian): magic "ZMF2" | u32 version | u64 generation |
// u32 world | u64 step | u32 nfiles | nfiles × {u32 nameLen | name |
// u64 size | u32 crc} | u32 manifest crc.
func (m *Manifest) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	le := binary.LittleEndian
	binary.Write(&buf, le, uint32(manifestVersion))
	binary.Write(&buf, le, m.Generation)
	binary.Write(&buf, le, uint32(m.World))
	binary.Write(&buf, le, uint64(m.Step))
	binary.Write(&buf, le, uint32(len(m.Files)))
	for _, f := range m.Files {
		binary.Write(&buf, le, uint32(len(f.Name)))
		buf.WriteString(f.Name)
		binary.Write(&buf, le, uint64(f.Size))
		binary.Write(&buf, le, f.CRC)
	}
	binary.Write(&buf, le, Checksum(buf.Bytes()))
	return buf.Bytes()
}

// DecodeManifest parses and validates a manifest, including its trailing
// self-checksum. Truncated or corrupt input is rejected with an error.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ckpt: manifest truncated (%d bytes)", len(b))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), Checksum(body); got != want {
		return nil, fmt.Errorf("ckpt: manifest checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := bytes.NewReader(body)
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("ckpt: read manifest magic: %w", err)
	}
	if string(magic) != manifestMagic {
		return nil, fmt.Errorf("ckpt: bad manifest magic %q", magic)
	}
	le := binary.LittleEndian
	var version, world, nfiles uint32
	var gen, step uint64
	for _, v := range []any{&version, &gen, &world, &step, &nfiles} {
		if err := binary.Read(r, le, v); err != nil {
			return nil, fmt.Errorf("ckpt: read manifest header: %w", err)
		}
	}
	if version != manifestVersion {
		return nil, fmt.Errorf("ckpt: unsupported manifest version %d", version)
	}
	if nfiles > maxManifestFiles {
		return nil, fmt.Errorf("ckpt: implausible manifest file count %d", nfiles)
	}
	m := &Manifest{Generation: gen, World: int(world), Step: int(step)}
	for i := uint32(0); i < nfiles; i++ {
		var nameLen uint32
		if err := binary.Read(r, le, &nameLen); err != nil {
			return nil, fmt.Errorf("ckpt: read manifest entry: %w", err)
		}
		if nameLen > 1<<10 {
			return nil, fmt.Errorf("ckpt: implausible manifest name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("ckpt: read manifest entry: %w", err)
		}
		var size uint64
		var crc uint32
		if err := binary.Read(r, le, &size); err != nil {
			return nil, fmt.Errorf("ckpt: read manifest entry: %w", err)
		}
		if err := binary.Read(r, le, &crc); err != nil {
			return nil, fmt.Errorf("ckpt: read manifest entry: %w", err)
		}
		m.Files = append(m.Files, FileEntry{Name: string(name), Size: int64(size), CRC: crc})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after manifest entries", r.Len())
	}
	return m, nil
}
