package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports that a checkpoint directory holds no complete
// generation (empty, missing, or every generation failed validation).
var ErrNoCheckpoint = errors.New("ckpt: no complete checkpoint generation")

const genPrefix = "gen-"

// GenDirName returns the directory name of generation gen.
func GenDirName(gen uint64) string { return fmt.Sprintf("%s%010d", genPrefix, gen) }

// parseGenDir extracts the generation number from a directory name.
func parseGenDir(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, genPrefix), 10, 64)
	return n, err == nil
}

// Set is one opened, fully validated checkpoint generation.
type Set struct {
	// Dir is the generation directory.
	Dir string
	// Manifest is the validated commit record.
	Manifest *Manifest
}

// OpenSet opens and validates the generation directory at dir: the MANIFEST
// must decode (magic, version, self-checksum), its generation must match the
// directory name (a renamed or cross-copied directory is a mixed-generation
// set), and every listed file must exist with exactly the recorded size and
// CRC32C. Any violation is an error; nothing panics on corrupt input.
func OpenSet(dir string) (*Set, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", dir, err)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", dir, err)
	}
	if gen, ok := parseGenDir(filepath.Base(dir)); ok && gen != m.Generation {
		return nil, fmt.Errorf("ckpt: %s: manifest is for generation %d (mixed-generation set)",
			dir, m.Generation)
	}
	for _, f := range m.Files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: %w", dir, err)
		}
		if int64(len(data)) != f.Size {
			return nil, fmt.Errorf("ckpt: %s: %s is %d bytes, manifest records %d (truncated or torn)",
				dir, f.Name, len(data), f.Size)
		}
		if crc := Checksum(data); crc != f.CRC {
			return nil, fmt.Errorf("ckpt: %s: %s checksum mismatch (got %08x, want %08x)",
				dir, f.Name, crc, f.CRC)
		}
	}
	return &Set{Dir: dir, Manifest: m}, nil
}

// Generations lists the generation numbers present under dir (complete or
// not), ascending.
func Generations(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if g, ok := parseGenDir(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// LatestComplete scans dir for generation directories and opens the newest
// one that validates, automatically falling back past incomplete or corrupt
// generations (a crash mid-snapshot, a torn write). ErrNoCheckpoint is
// returned when no generation survives.
func LatestComplete(dir string) (*Set, error) {
	gens, err := Generations(dir)
	if err != nil {
		return nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		set, err := OpenSet(filepath.Join(dir, GenDirName(gens[i])))
		if err == nil {
			return set, nil
		}
	}
	return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
}

// Open opens a manifest-listed file for reading. Unlisted names are
// rejected: a file without an entry was never committed.
func (s *Set) Open(name string) (io.ReadCloser, error) {
	if _, ok := s.Manifest.File(name); !ok {
		return nil, fmt.Errorf("ckpt: %s has no committed file %q", s.Dir, name)
	}
	return os.Open(filepath.Join(s.Dir, name))
}

// OpenRank opens rank r's state file.
func (s *Set) OpenRank(r int) (io.ReadCloser, error) { return s.Open(RankFileName(r)) }

// OpenWeights opens the consolidated weights file.
func (s *Set) OpenWeights() (io.ReadCloser, error) { return s.Open(WeightsName) }
