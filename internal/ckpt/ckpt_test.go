package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/nvme"
)

func testManifest() *Manifest {
	return &Manifest{
		Generation: 7, World: 2, Step: 7,
		Files: []FileEntry{
			{Name: RankFileName(0), Size: 128, CRC: 0xdeadbeef},
			{Name: RankFileName(1), Size: 256, CRC: 0x01020304},
			{Name: WeightsName, Size: 4096, CRC: 0xcafebabe},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != m.Generation || got.World != m.World || got.Step != m.Step {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Files) != len(m.Files) {
		t.Fatalf("want %d files, got %d", len(m.Files), len(got.Files))
	}
	for i := range m.Files {
		if got.Files[i] != m.Files[i] {
			t.Fatalf("file %d: %+v vs %+v", i, got.Files[i], m.Files[i])
		}
	}
	if f, ok := got.File(WeightsName); !ok || f.Size != 4096 {
		t.Fatalf("File(%q) = %+v, %v", WeightsName, f, ok)
	}
}

// TestManifestTruncation chops the encoded manifest at every length from 0
// to full-1: every prefix must be rejected with an error, never a panic.
func TestManifestTruncation(t *testing.T) {
	enc := testManifest().Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeManifest(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", n, len(enc))
		}
	}
}

// TestManifestCorruption flips one byte at every offset: the self-checksum
// must reject every single-byte corruption.
func TestManifestCorruption(t *testing.T) {
	enc := testManifest().Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatalf("corruption at offset %d was accepted", i)
		}
	}
}

func TestManifestRejectsTrailingBytes(t *testing.T) {
	enc := testManifest().Encode()
	// Re-checksum so only the trailing garbage is wrong, not the CRC.
	body := append(append([]byte(nil), enc[:len(enc)-4]...), 0, 0, 0, 0)
	var tail [4]byte
	crc := Checksum(body)
	tail[0], tail[1], tail[2], tail[3] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	bad := append(body, tail[:]...)
	if _, err := DecodeManifest(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

// writeGen writes a complete generation directory by hand (no Writer).
func writeGen(t *testing.T, dir string, gen uint64, world, step int, payload byte) string {
	t.Helper()
	d := filepath.Join(dir, GenDirName(gen))
	if err := os.MkdirAll(d, 0o777); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Generation: gen, World: world, Step: step}
	for r := 0; r < world; r++ {
		data := bytes.Repeat([]byte{payload + byte(r)}, 64)
		if err := os.WriteFile(filepath.Join(d, RankFileName(r)), data, 0o666); err != nil {
			t.Fatal(err)
		}
		m.Files = append(m.Files, FileEntry{Name: RankFileName(r), Size: 64, CRC: Checksum(data)})
	}
	w := bytes.Repeat([]byte{payload ^ 0xFF}, 128)
	if err := os.WriteFile(filepath.Join(d, WeightsName), w, 0o666); err != nil {
		t.Fatal(err)
	}
	m.Files = append(m.Files, FileEntry{Name: WeightsName, Size: 128, CRC: Checksum(w)})
	if err := os.WriteFile(filepath.Join(d, ManifestName), m.Encode(), 0o666); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOpenSetValidates(t *testing.T) {
	dir := t.TempDir()
	d := writeGen(t, dir, 3, 2, 3, 0x11)
	set, err := OpenSet(d)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Generation != 3 || set.Manifest.World != 2 || set.Manifest.Step != 3 {
		t.Fatalf("bad manifest: %+v", set.Manifest)
	}
	rc, err := set.OpenRank(1)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if _, err := set.Open("no-such-file"); err == nil {
		t.Fatal("unlisted file was opened")
	}
}

func TestOpenSetRejectsCorruptionModes(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, d string)
		want   string
	}{
		{"missing manifest", func(t *testing.T, d string) {
			os.Remove(filepath.Join(d, ManifestName))
		}, ""},
		{"truncated data file", func(t *testing.T, d string) {
			p := filepath.Join(d, RankFileName(0))
			if err := os.Truncate(p, 10); err != nil {
				t.Fatal(err)
			}
		}, "truncated or torn"},
		{"torn data file (bit rot)", func(t *testing.T, d string) {
			p := filepath.Join(d, RankFileName(1))
			b, _ := os.ReadFile(p)
			b[len(b)/2] ^= 0x01
			os.WriteFile(p, b, 0o666)
		}, "checksum mismatch"},
		{"missing data file", func(t *testing.T, d string) {
			os.Remove(filepath.Join(d, WeightsName))
		}, ""},
		{"truncated manifest", func(t *testing.T, d string) {
			p := filepath.Join(d, ManifestName)
			b, _ := os.ReadFile(p)
			os.WriteFile(p, b[:len(b)-5], 0o666)
		}, ""},
		{"mixed-generation set", func(t *testing.T, d string) {
			// Rename the whole directory: the manifest inside now disagrees
			// with the directory's generation number.
			if err := os.Rename(d, filepath.Join(filepath.Dir(d), GenDirName(99))); err != nil {
				t.Fatal(err)
			}
		}, "mixed-generation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := writeGen(t, dir, 5, 2, 5, 0x22)
			tc.damage(t, d)
			if tc.name == "mixed-generation set" {
				d = filepath.Join(dir, GenDirName(99))
			}
			_, err := OpenSet(d)
			if err == nil {
				t.Fatal("corrupt set was accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestLatestCompleteFallsBack(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 2, 2, 2, 0x33)
	writeGen(t, dir, 4, 2, 4, 0x44)
	// Generation 6 crashed mid-snapshot: data file present, no MANIFEST.
	d6 := filepath.Join(dir, GenDirName(6))
	os.MkdirAll(d6, 0o777)
	os.WriteFile(filepath.Join(d6, RankFileName(0)), []byte("partial"), 0o666)

	set, err := LatestComplete(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Generation != 4 {
		t.Fatalf("want fallback to generation 4, got %d", set.Manifest.Generation)
	}

	// Corrupt generation 4's weights: fallback continues to generation 2.
	p := filepath.Join(dir, GenDirName(4), WeightsName)
	b, _ := os.ReadFile(p)
	b[0] ^= 0xFF
	os.WriteFile(p, b, 0o666)
	set, err = LatestComplete(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Generation != 2 {
		t.Fatalf("want fallback to generation 2, got %d", set.Manifest.Generation)
	}
}

func TestLatestCompleteEmpty(t *testing.T) {
	if _, err := LatestComplete(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if _, err := LatestComplete(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint for missing dir, got %v", err)
	}
}

// submitGen pushes one full generation (world rank files + weights) through
// the writer and returns its ticket.
func submitGen(w *Writer, gen uint64, world int, payload byte) *Ticket {
	for r := 0; r < world; r++ {
		st := w.Stage()
		st.Write(bytes.Repeat([]byte{payload + byte(r)}, 100))
		w.Submit(gen, int(gen), RankFileName(r), st)
	}
	ws := w.Stage()
	ws.Write(bytes.Repeat([]byte{payload ^ 0xAA}, 300))
	return w.Submit(gen, int(gen), WeightsName, ws)
}

func TestWriterCommitsValidGenerations(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{World: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 10, 2, 0x10).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 20, 2, 0x20).Wait(); err != nil {
		t.Fatal(err)
	}
	if got := w.Committed(); got != 20 {
		t.Fatalf("Committed() = %d, want 20", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := LatestComplete(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Generation != 20 || set.Manifest.Step != 20 || set.Manifest.World != 2 {
		t.Fatalf("bad manifest: %+v", set.Manifest)
	}
	rc, err := set.OpenRank(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got := make([]byte, 100)
	if _, err := rc.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x21}, 100)) {
		t.Fatal("rank file contents mismatch")
	}
}

func TestWriterPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{World: 1, KeepGenerations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 5; gen++ {
		if err := submitGen(w, gen, 1, byte(gen)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gens, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gens) != "[4 5]" {
		t.Fatalf("want generations [4 5] after pruning, got %v", gens)
	}
}

func TestWriterRetriesTransientFault(t *testing.T) {
	dir := t.TempDir()
	inj := &nvme.FaultInjector{}
	inj.Arm(nvme.FaultArm{Op: nvme.Write, Nth: 1, Count: 1})
	w, err := NewWriter(dir, WriterOptions{
		World: 1, Faults: inj, Retries: 2, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 1, 1, 0x55).Wait(); err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() == 0 {
		t.Fatal("fault never fired")
	}
	if _, err := LatestComplete(dir); err != nil {
		t.Fatal(err)
	}
}

func TestWriterPersistentFaultLeavesNoManifest(t *testing.T) {
	dir := t.TempDir()
	inj := &nvme.FaultInjector{}
	inj.Arm(nvme.FaultArm{Op: nvme.Write, Nth: 1, Count: 1 << 30})
	w, err := NewWriter(dir, WriterOptions{
		World: 1, Faults: inj, Retries: 1, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 1, 1, 0x66).Wait(); !errors.Is(err, nvme.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := w.Close(); !errors.Is(err, nvme.ErrInjected) {
		t.Fatalf("want sticky ErrInjected from Close, got %v", err)
	}
	if _, err := LatestComplete(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("failed generation must not be loadable, got %v", err)
	}
}

func TestWriterKillAfterLeavesPartialGeneration(t *testing.T) {
	dir := t.TempDir()
	// World 2 → 3 files per generation. Kill after the 2nd data file: the
	// generation dir exists, has files, but never gets a MANIFEST.
	w, err := NewWriter(dir, WriterOptions{World: 2, KillAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 1, 2, 0x77).Wait(); !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled, got %v", err)
	}
	w.Close()
	if _, err := os.Stat(filepath.Join(dir, GenDirName(1))); err != nil {
		t.Fatalf("partial generation dir should exist: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, GenDirName(1), ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("killed generation must have no MANIFEST, stat err = %v", err)
	}
	if _, err := LatestComplete(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("partial generation must not load, got %v", err)
	}
}

func TestWriterKilledAfterCommitKeepsEarlierGeneration(t *testing.T) {
	dir := t.TempDir()
	// World 1 → 2 files per generation. First generation commits, then the
	// kill lands mid-second-generation.
	w, err := NewWriter(dir, WriterOptions{World: 1, KillAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 1, 1, 0x01).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := submitGen(w, 2, 1, 0x02).Wait(); !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled on second generation, got %v", err)
	}
	w.Close()
	set, err := LatestComplete(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Generation != 1 {
		t.Fatalf("want surviving generation 1, got %d", set.Manifest.Generation)
	}
}

func TestWriterCloseFailsIncompleteSubmissions(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{World: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stage()
	st.Write([]byte("only one rank showed up"))
	tk := w.Submit(1, 1, RankFileName(0), st)
	w.Close()
	if err := tk.Wait(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("want ErrWriterClosed, got %v", err)
	}
	if tk2 := w.Submit(2, 2, RankFileName(0), w.Stage()); !errors.Is(tk2.Wait(), ErrWriterClosed) {
		t.Fatal("submit after Close must fail")
	}
}

// TestStagingReusesArena checks the steady-state allocation story: after the
// first generation warms the arena, staging equal-sized buffers recycles the
// same backing memory rather than growing the heap.
func TestStagingReusesArena(t *testing.T) {
	w, err := NewWriter(t.TempDir(), WriterOptions{World: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte{0x5A}, 10_000)
	st := w.Stage()
	st.Write(payload)
	first := &st.buf[:1][0]
	w.Recycle(st)
	for i := 0; i < 8; i++ {
		st := w.Stage()
		st.Write(payload)
		if &st.buf[:1][0] != first {
			t.Fatalf("iteration %d: staging buffer not recycled from arena", i)
		}
		w.Recycle(st)
	}
}

func TestGenDirNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 1, 42, 1<<32 + 5} {
		g, ok := parseGenDir(GenDirName(gen))
		if !ok || g != gen {
			t.Fatalf("parseGenDir(GenDirName(%d)) = %d, %v", gen, g, ok)
		}
	}
	for _, bad := range []string{"gen-", "gen-xx", "other", "gen-12a"} {
		if _, ok := parseGenDir(bad); ok {
			t.Fatalf("parseGenDir(%q) accepted", bad)
		}
	}
}
