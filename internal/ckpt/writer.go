package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mem"
	"repro/internal/nvme"
)

// Writer errors.
var (
	// ErrKilled reports that the writer was killed (crash simulation): the
	// generation being written was abandoned mid-flight.
	ErrKilled = errors.New("ckpt: writer killed")
	// ErrWriterClosed reports a submission against a closed writer.
	ErrWriterClosed = errors.New("ckpt: writer closed")
)

// Ticket tracks one generation's asynchronous commit. Every Submit for a
// generation returns the same shared ticket; Wait blocks until the
// generation's MANIFEST is durably committed (or the attempt failed) and
// returns the outcome. Safe to Wait from several goroutines.
type Ticket struct {
	done chan struct{}
	err  error // written before done closes
}

// Wait blocks for the commit and returns its error.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

func completedTicket(err error) *Ticket {
	t := &Ticket{done: make(chan struct{}), err: err}
	close(t.done)
	return t
}

// WriterOptions configures a Writer.
type WriterOptions struct {
	// World is the rank count; a generation is complete when all World rank
	// files plus the weights file have been submitted. Required.
	World int
	// Workers / ChunkSize configure the per-file async NVMe engine
	// (defaults 4 and 256 KiB).
	Workers   int
	ChunkSize int
	// Retries is the per-file write retry budget for transient faults
	// (default 2), with RetryBackoff (default 1ms) doubling per attempt.
	// Each retry rewrites the whole temp file, so a torn write cannot
	// survive a successful retry.
	Retries      int
	RetryBackoff time.Duration
	// KeepGenerations is how many complete generations to retain (default
	// 2); older ones are pruned after each commit.
	KeepGenerations int
	// Faults, when set, is installed on every file-write engine — the
	// fault-injection hook for crash/torn-write tests.
	Faults *nvme.FaultInjector
	// KillAfter, when positive, kills the writer after that many data files
	// have been written (before the generation's MANIFEST commit) — the
	// deterministic mid-snapshot crash point used by the kill/resume
	// replay harness.
	KillAfter int
}

func (o *WriterOptions) setDefaults() error {
	if o.World <= 0 {
		return fmt.Errorf("ckpt: WriterOptions.World must be positive")
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256 << 10
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	if o.KeepGenerations <= 0 {
		o.KeepGenerations = 2
	}
	return nil
}

// snapshot is one generation being assembled or written.
type snapshot struct {
	gen    uint64
	step   int
	files  []stagedFile
	ticket *Ticket
}

type stagedFile struct {
	name string
	st   *Staging
}

// Writer is the asynchronous checkpoint writer: rank goroutines serialize
// their state into arena-backed staging buffers and Submit them; a
// background goroutine streams complete generations to disk through the
// async NVMe engine while training continues, committing each with the
// manifest protocol. Between snapshots the writer is idle and allocation-
// free; staging buffers recycle through the arena across generations.
type Writer struct {
	dir   string
	opts  WriterOptions
	arena *mem.Arena[byte]

	mu       sync.Mutex
	building map[uint64]*snapshot
	closed   bool

	queue    chan *snapshot
	inFlight sync.WaitGroup
	bg       sync.WaitGroup

	killed    atomic.Bool
	committed atomic.Uint64

	errMu sync.Mutex
	err   error

	filesWritten int // background goroutine only
}

// NewWriter creates dir if needed and starts the background writer.
func NewWriter(dir string, opts WriterOptions) (*Writer, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("ckpt: create checkpoint dir: %w", err)
	}
	w := &Writer{
		dir:      dir,
		opts:     opts,
		arena:    mem.NewArena[byte](),
		building: make(map[uint64]*snapshot),
		queue:    make(chan *snapshot, 2),
	}
	w.bg.Add(1)
	go w.run()
	return w, nil
}

// Staging is a growable serialization buffer backed by the writer's arena.
// Obtain with Stage, then either Submit it (ownership passes to the writer,
// which recycles it after the commit) or return it with Recycle on error
// paths — a dropped staging buffer is a leak the pinnedleak analyzer flags.
type Staging struct {
	w   *Writer
	buf []byte
}

// Write implements io.Writer, growing through the arena's size classes.
func (s *Staging) Write(p []byte) (int, error) {
	need := len(s.buf) + len(p)
	if need > cap(s.buf) {
		grown := s.w.arena.Get(need)
		grown = grown[:copy(grown, s.buf)]
		if cap(s.buf) > 0 {
			s.w.arena.Put(s.buf)
		}
		s.buf = grown
	}
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// Len returns the bytes staged so far.
func (s *Staging) Len() int { return len(s.buf) }

// Stage returns an empty staging buffer.
func (w *Writer) Stage() *Staging { return &Staging{w: w} }

// Recycle returns an unsubmitted staging buffer to the arena.
func (w *Writer) Recycle(st *Staging) {
	if cap(st.buf) > 0 {
		w.arena.Put(st.buf)
	}
	st.buf = nil
}

// Submit contributes one named file to generation gen (step is recorded in
// the manifest). Ownership of st passes to the writer. When the last
// expected file of a generation arrives (World rank files + the weights
// file), the generation is queued for the background commit; the returned
// ticket — shared by all of the generation's submitters — completes when
// the MANIFEST is durable. Submitting the (World+1)-th file applies
// backpressure if two earlier generations are still in flight.
func (w *Writer) Submit(gen uint64, step int, name string, st *Staging) *Ticket {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.killed.Load() {
		w.Recycle(st)
		if w.closed {
			return completedTicket(ErrWriterClosed)
		}
		return completedTicket(ErrKilled)
	}
	snap := w.building[gen]
	if snap == nil {
		snap = &snapshot{gen: gen, step: step, ticket: &Ticket{done: make(chan struct{})}}
		w.building[gen] = snap
	}
	snap.files = append(snap.files, stagedFile{name: name, st: st})
	if len(snap.files) == w.opts.World+1 {
		delete(w.building, gen)
		w.inFlight.Add(1)
		// Holding mu across the (possibly blocking) send keeps Close from
		// closing the queue under us; the background goroutine never takes
		// mu, so the queue always drains.
		w.queue <- snap
	}
	return snap.ticket
}

// Drain blocks until every fully submitted generation has committed (or
// failed) and returns the writer's first error. Generations still missing
// submissions are not waited for.
func (w *Writer) Drain() error {
	w.inFlight.Wait()
	return w.Err()
}

// Err returns the sticky first commit error.
func (w *Writer) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *Writer) recordErr(err error) {
	if err == nil {
		return
	}
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// Committed returns the newest durably committed generation (0 if none).
func (w *Writer) Committed() uint64 { return w.committed.Load() }

// Kill simulates process death: in-flight and future work is abandoned,
// leaving whatever partial generation state is on disk — the input the
// load-side validation must survive. The background goroutine still drains
// its queue (erroring every ticket), so Close remains safe to call.
func (w *Writer) Kill() { w.killed.Store(true) }

// Close fails any incompletely submitted generations, waits for the
// background writer to finish and returns the sticky error.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.closed = true
	building := w.building
	w.building = nil
	w.mu.Unlock()
	for _, snap := range building {
		snap.ticket.err = ErrWriterClosed
		close(snap.ticket.done)
	}
	close(w.queue)
	w.bg.Wait()
	return w.Err()
}

func (w *Writer) run() {
	defer w.bg.Done()
	for snap := range w.queue {
		err := w.writeSet(snap)
		w.recordErr(err)
		snap.ticket.err = err
		close(snap.ticket.done)
		for _, f := range snap.files {
			w.Recycle(f.st)
		}
		w.inFlight.Done()
	}
}

// writeSet writes one generation: every data file (write-to-temp + fsync +
// rename, each through its own async NVMe engine), a directory fsync, then
// the MANIFEST via the same protocol — the commit point.
func (w *Writer) writeSet(snap *snapshot) error {
	if w.killed.Load() {
		return ErrKilled
	}
	dir := filepath.Join(w.dir, GenDirName(snap.gen))
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("ckpt: create generation dir: %w", err)
	}
	sort.Slice(snap.files, func(i, j int) bool { return snap.files[i].name < snap.files[j].name })
	entries := make([]FileEntry, 0, len(snap.files))
	for _, f := range snap.files {
		if w.killed.Load() {
			return ErrKilled
		}
		if err := w.writeFile(dir, f.name, f.st.buf); err != nil {
			return fmt.Errorf("ckpt: generation %d: write %s: %w", snap.gen, f.name, err)
		}
		entries = append(entries, FileEntry{Name: f.name, Size: int64(len(f.st.buf)), CRC: Checksum(f.st.buf)})
		w.filesWritten++
		if w.opts.KillAfter > 0 && w.filesWritten >= w.opts.KillAfter {
			w.killed.Store(true)
		}
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if w.killed.Load() {
		// Crash window between the data files and the commit: the
		// generation exists on disk but has no MANIFEST, so readers skip it.
		return ErrKilled
	}
	m := &Manifest{Generation: snap.gen, World: w.opts.World, Step: snap.step, Files: entries}
	if err := w.writeFile(dir, ManifestName, m.Encode()); err != nil {
		return fmt.Errorf("ckpt: generation %d: commit manifest: %w", snap.gen, err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	w.committed.Store(snap.gen)
	w.prune(snap.gen)
	return nil
}

// writeFile durably writes name under dir through the async NVMe engine,
// retrying the whole temp file on transient faults (each attempt truncates,
// so a torn previous attempt cannot leak into a successful one), then
// atomically renames it into place.
func (w *Writer) writeFile(dir, name string, data []byte) error {
	final := filepath.Join(dir, name)
	tmp := final + ".tmp"
	backoff := w.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = w.writeFileOnce(tmp, data)
		if err == nil {
			break
		}
		if attempt >= w.opts.Retries {
			os.Remove(tmp)
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return os.Rename(tmp, final)
}

func (w *Writer) writeFileOnce(path string, data []byte) error {
	store, err := nvme.NewFileStore(path, int64(len(data)))
	if err != nil {
		return err
	}
	eng := nvme.NewEngine(store, nvme.Options{
		Workers:   w.opts.Workers,
		ChunkSize: w.opts.ChunkSize,
		Faults:    w.opts.Faults,
	})
	werr := eng.Write(data, 0)
	eng.Close()
	if werr == nil {
		if s, ok := any(store).(interface{ Sync() error }); ok {
			werr = s.Sync()
		}
	}
	if cerr := store.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// prune removes generations older than the KeepGenerations newest complete
// ones (incomplete leftovers in that older range go too).
func (w *Writer) prune(cur uint64) {
	gens, err := Generations(w.dir)
	if err != nil {
		return
	}
	complete := 0
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i] > cur {
			continue
		}
		d := filepath.Join(w.dir, GenDirName(gens[i]))
		if _, err := os.Stat(filepath.Join(d, ManifestName)); err == nil {
			complete++
			if complete > w.opts.KeepGenerations {
				os.RemoveAll(d)
			}
		} else if complete >= w.opts.KeepGenerations {
			os.RemoveAll(d)
		}
	}
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
