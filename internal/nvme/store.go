// Package nvme reimplements the infinity offload engine's DeepNVMe layer
// (paper Sec. 6.3): a bulk asynchronous read/write engine over block storage
// that reaches near-peak device bandwidth through aggressive parallelization
// of I/O requests, supports explicit synchronization (flush), and avoids
// data copies by reading/writing caller-supplied (pinned) buffers in place.
//
// Two backing stores are provided: FileStore over a real file (used by the
// examples and CLIs, so offloaded model states genuinely leave RAM-resident
// Go slices) and MemStore (used in unit tests and when simulating large
// devices).
package nvme

import (
	"fmt"
	"os"
	"sync"
)

// Store is the block-device abstraction the engine drives. Implementations
// must support concurrent ReadAt/WriteAt on disjoint ranges.
type Store interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() int64
	Close() error
}

// MemStore is an in-memory Store. Concurrent access to disjoint ranges is
// safe; the engine never issues overlapping concurrent requests for the same
// ticket, and callers are responsible for not racing distinct tickets on
// overlapping ranges (same contract as a raw block device).
type MemStore struct {
	data []byte
}

// NewMemStore allocates an in-memory store of size bytes.
func NewMemStore(size int64) *MemStore {
	return &MemStore{data: make([]byte, size)}
}

// ReadAt implements Store.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return 0, fmt.Errorf("nvme: memstore read [%d,%d) out of bounds (size %d)", off, off+int64(len(p)), len(m.data))
	}
	return copy(p, m.data[off:]), nil
}

// WriteAt implements Store.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return 0, fmt.Errorf("nvme: memstore write [%d,%d) out of bounds (size %d)", off, off+int64(len(p)), len(m.data))
	}
	return copy(m.data[off:], p), nil
}

// Size implements Store.
func (m *MemStore) Size() int64 { return int64(len(m.data)) }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a Store over a real file, created sparse and unlinked-on-
// close when temporary.
type FileStore struct {
	f    *os.File
	size int64
	temp bool
}

// NewFileStore opens (creating/truncating) path as a size-byte store.
func NewFileStore(path string, size int64) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvme: open store: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvme: size store: %w", err)
	}
	return &FileStore{f: f, size: size}, nil
}

// NewTempFileStore creates a store backed by a temp file in dir (or the
// system temp dir if dir is empty); the file is removed on Close.
func NewTempFileStore(dir string, size int64) (*FileStore, error) {
	f, err := os.CreateTemp(dir, "zeroinf-nvme-*.bin")
	if err != nil {
		return nil, fmt.Errorf("nvme: temp store: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		name := f.Name()
		f.Close()
		os.Remove(name)
		return nil, fmt.Errorf("nvme: size temp store: %w", err)
	}
	return &FileStore{f: f, size: size, temp: true}, nil
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

// WriteAt implements Store.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// Size implements Store.
func (s *FileStore) Size() int64 { return s.size }

// Path returns the backing file's path.
func (s *FileStore) Path() string { return s.f.Name() }

// Sync flushes the backing file to stable storage (fsync) — the durability
// point the crash-consistent checkpoint commit protocol relies on. Stores
// without durable backing (MemStore) simply don't implement it; callers
// type-assert for interface{ Sync() error }.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close implements Store, removing the backing file if temporary.
func (s *FileStore) Close() error {
	err := s.f.Close()
	if s.temp {
		if rmErr := os.Remove(s.f.Name()); err == nil {
			err = rmErr
		}
	}
	return err
}

// Region is a named extent on a store, handed out by a Volume.
type Region struct {
	Offset int64
	Size   int64
}

// Volume is a trivial bump allocator of named regions on a Store. Offloaded
// model states are allocated once at engine construction and live for the
// whole run, so no free list is needed.
type Volume struct {
	store Store

	mu      sync.Mutex
	next    int64
	regions map[string]Region
}

// NewVolume wraps store with a region allocator.
func NewVolume(store Store) *Volume {
	return &Volume{store: store, regions: make(map[string]Region)}
}

// Store returns the underlying store.
func (v *Volume) Store() Store { return v.store }

// Alloc reserves size bytes under name. It fails if the name exists or the
// store is exhausted.
func (v *Volume) Alloc(name string, size int64) (Region, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.regions[name]; ok {
		return Region{}, fmt.Errorf("nvme: region %q already allocated", name)
	}
	if v.next+size > v.store.Size() {
		return Region{}, fmt.Errorf("nvme: volume full: want %d, %d of %d used",
			size, v.next, v.store.Size())
	}
	r := Region{Offset: v.next, Size: size}
	v.next += size
	v.regions[name] = r
	return r, nil
}

// Lookup returns the region registered under name.
func (v *Volume) Lookup(name string) (Region, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r, ok := v.regions[name]
	return r, ok
}

// Used returns the bytes allocated so far.
func (v *Volume) Used() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.next
}
