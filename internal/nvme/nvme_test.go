package nvme

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func testEngines(t *testing.T, size int64) map[string]*Engine {
	t.Helper()
	mem := NewEngine(NewMemStore(size), Options{Workers: 4, ChunkSize: 64})
	t.Cleanup(mem.Close)
	fs, err := NewTempFileStore(t.TempDir(), size)
	if err != nil {
		t.Fatal(err)
	}
	file := NewEngine(fs, Options{Workers: 4, ChunkSize: 64})
	t.Cleanup(func() { file.Close(); fs.Close() })
	return map[string]*Engine{"mem": mem, "file": file}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	for name, e := range testEngines(t, 4096) {
		t.Run(name, func(t *testing.T) {
			src := make([]byte, 1000) // spans many 64-byte chunks
			for i := range src {
				src[i] = byte(i * 7)
			}
			if err := e.Write(src, 123); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, len(src))
			if err := e.Read(dst, 123); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, dst) {
				t.Fatal("round trip corrupted data")
			}
		})
	}
}

func TestAsyncOverlappedRequests(t *testing.T) {
	for name, e := range testEngines(t, 1<<16) {
		t.Run(name, func(t *testing.T) {
			const n = 16
			bufs := make([][]byte, n)
			tickets := make([]*Ticket, n)
			for i := 0; i < n; i++ {
				bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 512)
				tickets[i] = e.WriteAsync(bufs[i], int64(i)*512)
			}
			for i, tk := range tickets {
				if err := tk.Wait(); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			got := make([]byte, 512)
			for i := 0; i < n; i++ {
				if err := e.Read(got, int64(i)*512); err != nil {
					t.Fatal(err)
				}
				if got[0] != byte(i+1) || got[511] != byte(i+1) {
					t.Fatalf("slot %d corrupted: %d %d", i, got[0], got[511])
				}
			}
		})
	}
}

func TestFlushWaitsForAll(t *testing.T) {
	e := NewEngine(NewMemStore(1<<20), Options{Workers: 2, ChunkSize: 128})
	defer e.Close()
	buf := make([]byte, 1<<18)
	for i := 0; i < 8; i++ {
		e.WriteAsync(buf, 0)
	}
	e.Flush()
	st := e.Stats()
	wantChunks := int64(8 * (1 << 18) / 128)
	if st.Writes != wantChunks {
		t.Fatalf("after flush writes = %d, want %d", st.Writes, wantChunks)
	}
	if st.BytesWritten != 8*(1<<18) {
		t.Fatalf("bytes written = %d", st.BytesWritten)
	}
}

func TestOutOfBoundsError(t *testing.T) {
	e := NewEngine(NewMemStore(100), Options{Workers: 1, ChunkSize: 1024})
	defer e.Close()
	err := e.Write(make([]byte, 200), 0)
	if err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	err = e.Read(make([]byte, 10), 95)
	if err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
}

func TestEmptyRequest(t *testing.T) {
	e := NewEngine(NewMemStore(10), Options{})
	defer e.Close()
	if err := e.ReadAsync(nil, 0).Wait(); err != nil {
		t.Fatalf("empty read: %v", err)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	e := NewEngine(NewMemStore(1<<16), Options{Workers: 8, ChunkSize: 64})
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			region := int64(g) * 8192
			buf := bytes.Repeat([]byte{byte(g + 1)}, 8192)
			for i := 0; i < 10; i++ {
				if err := e.Write(buf, region); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
			got := make([]byte, 8192)
			if err := e.Read(got, region); err != nil {
				t.Errorf("reader %d: %v", g, err)
				return
			}
			for _, b := range got {
				if b != byte(g+1) {
					t.Errorf("writer %d sees foreign byte %d", g, b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: for random offsets/sizes within bounds, write-then-read returns
// the written bytes.
func TestQuickRoundTrip(t *testing.T) {
	e := NewEngine(NewMemStore(1<<14), Options{Workers: 4, ChunkSize: 100})
	defer e.Close()
	f := func(off16 uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		off := int64(off16) % ((1 << 14) - int64(len(data)))
		if err := e.Write(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := e.Read(got, off); err != nil {
			return false
		}
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeAllocLookup(t *testing.T) {
	v := NewVolume(NewMemStore(1000))
	r1, err := v.Alloc("p0", 400)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v.Alloc("p1", 600)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Offset != 0 || r2.Offset != 400 {
		t.Fatalf("offsets %d %d", r1.Offset, r2.Offset)
	}
	if _, err := v.Alloc("p2", 1); err == nil {
		t.Fatal("overfull alloc succeeded")
	}
	if _, err := v.Alloc("p0", 1); err == nil {
		t.Fatal("duplicate name alloc succeeded")
	}
	got, ok := v.Lookup("p1")
	if !ok || got != r2 {
		t.Fatalf("lookup = %v %v", got, ok)
	}
	if v.Used() != 1000 {
		t.Fatalf("used = %d", v.Used())
	}
}

func TestRegionHelpers(t *testing.T) {
	v := NewVolume(NewMemStore(256))
	e := NewEngine(v.Store(), Options{Workers: 2, ChunkSize: 32})
	defer e.Close()
	r, _ := v.Alloc("x", 128)
	src := bytes.Repeat([]byte{0xAB}, 128)
	if err := e.WriteRegion(src, r).Wait(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 128)
	if err := e.ReadRegion(dst, r).Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("region round trip corrupted")
	}
}

func TestRegionSizeMismatchPanics(t *testing.T) {
	e := NewEngine(NewMemStore(64), Options{})
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	e.ReadRegion(make([]byte, 10), Region{Offset: 0, Size: 20})
}

func TestCloseIdempotentAndFlushes(t *testing.T) {
	e := NewEngine(NewMemStore(1<<12), Options{Workers: 2, ChunkSize: 64})
	e.WriteAsync(make([]byte, 1<<12), 0)
	e.Close()
	e.Close()
	if st := e.Stats(); st.BytesWritten != 1<<12 {
		t.Fatalf("close did not flush: %d", st.BytesWritten)
	}
}

func TestTicketAggregatesFirstError(t *testing.T) {
	e := NewEngine(NewMemStore(100), Options{Workers: 2, ChunkSize: 30})
	defer e.Close()
	// 120-byte write at 0 into a 100-byte store: last chunk fails.
	err := e.Write(make([]byte, 120), 0)
	if err == nil {
		t.Fatal("expected error")
	}
	var sentinel error = err
	if errors.Is(sentinel, nil) {
		t.Fatal("impossible")
	}
}

func TestFileStorePersistsAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir+"/state.bin", 1024)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(fs, Options{Workers: 2, ChunkSize: 128})
	want := bytes.Repeat([]byte{0x5A}, 512)
	if err := e.Write(want, 256); err != nil {
		t.Fatal(err)
	}
	e.Close()
	fs.Close()

	fs2, err := NewFileStore(dir+"/state2.bin", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	// Re-open the original path read-only via a fresh FileStore is not
	// supported (O_TRUNC), so verify persistence through a raw reopen.
	fs3, err := NewTempFileStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	path := fs3.Path()
	fs3.Close()
	if _, err := NewFileStore(path, 16); err != nil {
		t.Fatalf("reuse of removed temp path failed: %v", err)
	}
}

func BenchmarkEngineParallelVsSerialWrite(b *testing.B) {
	const total = 8 << 20
	buf := make([]byte, total)
	b.Run("parallel8", func(b *testing.B) {
		e := NewEngine(NewMemStore(total), Options{Workers: 8, ChunkSize: 1 << 20})
		defer e.Close()
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			if err := e.Write(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial1", func(b *testing.B) {
		e := NewEngine(NewMemStore(total), Options{Workers: 1, ChunkSize: total})
		defer e.Close()
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			if err := e.Write(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Regression test for the submit/Close shutdown race: submit used to check a
// closed flag and then send on the queue, which a concurrent Close could
// close in between (panic: send on closed channel), and a late pending.Add
// could land after Close's pending.Wait had started. Under -race this test
// exercised both windows; now every racing request must either complete or
// report ErrClosed, with no panic.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := NewEngine(NewMemStore(1<<20), Options{Workers: 2, ChunkSize: 256, QueueDepth: 2})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				buf := make([]byte, 4096) // 16 chunks per request
				off := int64(g) * 4096
				for i := 0; i < 50; i++ {
					tk := e.WriteAsync(buf, off)
					if err := tk.Wait(); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("unexpected error: %v", err)
						}
						return
					}
				}
			}(g)
		}
		close(start)
		e.Close() // races the submitters
		wg.Wait()
	}
}

// Submitting after Close returns a ticket reporting ErrClosed rather than
// panicking, so drain paths that race shutdown stay recoverable.
func TestSubmitAfterCloseReportsErrClosed(t *testing.T) {
	e := NewEngine(NewMemStore(4096), Options{Workers: 1})
	e.Close()
	if err := e.ReadAsync(make([]byte, 16), 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: err = %v, want ErrClosed", err)
	}
	if err := e.Write(make([]byte, 16), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: err = %v, want ErrClosed", err)
	}
	// Zero-length requests honor the contract too.
	if err := e.ReadAsync(nil, 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("empty read after close: err = %v, want ErrClosed", err)
	}
}
