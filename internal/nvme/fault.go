package nvme

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the error reported by injected faults (unless the arm
// overrides it).
var ErrInjected = errors.New("nvme: injected fault")

// FaultMode selects what an armed fault does to the sub-request it hits.
type FaultMode int

// Fault modes.
const (
	// FaultError fails the sub-request without touching the store.
	FaultError FaultMode = iota
	// FaultTorn performs a partial write (the first half of the chunk) and
	// then fails — the classic torn-write crash shape. On reads it behaves
	// like FaultError.
	FaultTorn
	// FaultDelay sleeps before letting the sub-request proceed normally —
	// a slow-completion fault, not an error.
	FaultDelay
)

// FaultArm describes one armed fault: starting at the Nth matching
// sub-request (1-based, counted per op kind across the injector's lifetime),
// affect Count consecutive sub-requests.
type FaultArm struct {
	// Op is the request kind the arm applies to (Read or Write).
	Op Op
	// Nth is the 1-based sub-request ordinal (per op) the fault first fires
	// on; 0 means "the next one".
	Nth int64
	// Count is how many consecutive matching sub-requests the arm affects
	// (default 1). A transient fault is an arm whose Count is below the
	// engine's retry budget: the retried sub-request re-consults the
	// injector and succeeds once the arm is exhausted.
	Count int64
	// Mode selects the failure behaviour (default FaultError).
	Mode FaultMode
	// Err overrides the reported error (default ErrInjected).
	Err error
	// Delay is the sleep for FaultDelay.
	Delay time.Duration
}

// FaultInjector decides, per sub-request, whether an armed fault fires. One
// injector may be shared by several engines (the checkpoint writer opens a
// short-lived engine per file); counting is per injector, so "fail the Nth
// write" means the Nth written chunk across all of them.
type FaultInjector struct {
	mu    sync.Mutex
	seen  [2]int64 // sub-requests observed, indexed by Op
	arms  []FaultArm
	fired int64
}

// Arm registers a fault. Zero-valued fields take their documented defaults.
func (f *FaultInjector) Arm(a FaultArm) {
	if a.Count <= 0 {
		a.Count = 1
	}
	if a.Err == nil {
		a.Err = ErrInjected
	}
	f.mu.Lock()
	if a.Nth <= 0 {
		a.Nth = f.seen[a.Op] + 1
	}
	f.arms = append(f.arms, a)
	f.mu.Unlock()
}

// Fired returns how many sub-requests have been faulted so far.
func (f *FaultInjector) Fired() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// match records one observed sub-request and returns the arm that fires on
// it, if any.
func (f *FaultInjector) match(op Op) (FaultArm, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen[op]++
	n := f.seen[op]
	for _, a := range f.arms {
		if a.Op == op && n >= a.Nth && n < a.Nth+a.Count {
			f.fired++
			return a, true
		}
	}
	return FaultArm{}, false
}
