package nvme

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFaultErrorSurfacesOnTicket(t *testing.T) {
	inj := &FaultInjector{}
	inj.Arm(FaultArm{Op: Write, Nth: 1})
	e := NewEngine(NewMemStore(1<<16), Options{Workers: 1, ChunkSize: 1 << 16, Faults: inj})
	defer e.Close()
	err := e.Write(make([]byte, 1024), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("want 1 fired fault, got %d", inj.Fired())
	}
}

func TestRetryClearsTransientFault(t *testing.T) {
	inj := &FaultInjector{}
	// Two consecutive write faults, three attempts budgeted: the third
	// attempt finds the arm exhausted and succeeds.
	inj.Arm(FaultArm{Op: Write, Nth: 1, Count: 2})
	e := NewEngine(NewMemStore(1<<16), Options{
		Workers: 1, ChunkSize: 1 << 16, Faults: inj,
		Retries: 3, RetryBackoff: time.Microsecond,
	})
	defer e.Close()
	data := bytes.Repeat([]byte{0xAB}, 1024)
	if err := e.Write(data, 0); err != nil {
		t.Fatalf("transient fault not absorbed by retry: %v", err)
	}
	got := make([]byte, len(data))
	if err := e.Read(got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after retried write")
	}
	if s := e.Stats(); s.Retried != 2 {
		t.Fatalf("want 2 retries recorded, got %d", s.Retried)
	}
}

func TestPersistentFaultExhaustsRetryBudget(t *testing.T) {
	inj := &FaultInjector{}
	inj.Arm(FaultArm{Op: Read, Nth: 1, Count: 100})
	e := NewEngine(NewMemStore(1<<16), Options{
		Workers: 1, ChunkSize: 1 << 16, Faults: inj,
		Retries: 2, RetryBackoff: time.Microsecond,
	})
	defer e.Close()
	if err := e.Read(make([]byte, 64), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected after exhausted retries, got %v", err)
	}
}

func TestTornWriteLeavesPartialData(t *testing.T) {
	inj := &FaultInjector{}
	inj.Arm(FaultArm{Op: Write, Nth: 1, Mode: FaultTorn})
	store := NewMemStore(1 << 16)
	e := NewEngine(store, Options{Workers: 1, ChunkSize: 1 << 16, Faults: inj})
	defer e.Close()
	data := bytes.Repeat([]byte{0xCD}, 1024)
	if err := e.Write(data, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected from torn write, got %v", err)
	}
	got := make([]byte, len(data))
	if err := e.Read(got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got[:512], data[:512]) {
		t.Fatal("torn write should have committed the first half")
	}
	if bytes.Equal(got[512:], data[512:]) {
		t.Fatal("torn write committed the whole buffer; nothing was torn")
	}
}

func TestFaultDelayCompletesNormally(t *testing.T) {
	inj := &FaultInjector{}
	inj.Arm(FaultArm{Op: Write, Nth: 1, Mode: FaultDelay, Delay: 5 * time.Millisecond})
	e := NewEngine(NewMemStore(1<<16), Options{Workers: 1, ChunkSize: 1 << 16, Faults: inj})
	defer e.Close()
	start := time.Now()
	if err := e.Write(make([]byte, 64), 0); err != nil {
		t.Fatalf("delayed write should succeed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay fault did not delay (took %v)", d)
	}
}

func TestFaultNthTargetsLaterRequest(t *testing.T) {
	inj := &FaultInjector{}
	inj.Arm(FaultArm{Op: Write, Nth: 3})
	e := NewEngine(NewMemStore(1<<20), Options{Workers: 1, ChunkSize: 1 << 10, Faults: inj})
	defer e.Close()
	// 4 KiB at 1 KiB chunks = 4 sub-requests; the third faults, so the bulk
	// write as a whole errors while requests 1, 2, 4 succeed.
	if err := e.Write(make([]byte, 4<<10), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on 3rd chunk, got %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("want exactly 1 fired fault, got %d", inj.Fired())
	}
}
