package nvme

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is reported by tickets for requests submitted after Close.
var ErrClosed = errors.New("nvme: engine closed")

// Op distinguishes read from write requests.
type Op int

// Request operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Ticket tracks one asynchronous bulk request. Wait blocks until every
// sub-request has completed and returns the first error.
type Ticket struct {
	wg  sync.WaitGroup
	err atomic.Pointer[error]
}

// Wait blocks for completion and returns the first error encountered.
func (t *Ticket) Wait() error {
	t.wg.Wait()
	if e := t.err.Load(); e != nil {
		return *e
	}
	return nil
}

func (t *Ticket) setErr(err error) {
	if err != nil {
		t.err.CompareAndSwap(nil, &err)
	}
}

// Stats reports cumulative engine activity.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	// Retried counts sub-request retry attempts (transient-fault recovery).
	Retried int64
}

type subReq struct {
	op     Op
	buf    []byte
	off    int64
	ticket *Ticket
}

// Engine is the asynchronous bulk I/O engine: a fixed worker pool consuming
// a request queue. Large requests are split into chunkSize sub-requests so a
// single bulk read/write is parallelized across all workers — the mechanism
// by which DeepNVMe reaches near-peak sequential bandwidth from one user
// thread.
type Engine struct {
	store        Store
	chunkSize    int
	queue        chan subReq
	wg           sync.WaitGroup
	retries      int
	retryBackoff time.Duration
	faults       *FaultInjector

	// mu serializes shutdown against submission: submitters hold the read
	// side across the closed-check, pending.Add and queue sends, and Close
	// flips closed under the write side. This ensures no send can land on a
	// closed channel and no pending.Add can race the final pending.Wait.
	mu     sync.RWMutex
	closed bool

	pending sync.WaitGroup // all in-flight tickets, for Flush

	reads, writes           atomic.Int64
	bytesRead, bytesWritten atomic.Int64
	retried                 atomic.Int64
}

// Options configures an Engine.
type Options struct {
	// Workers is the I/O parallelism (default 8).
	Workers int
	// ChunkSize is the split granularity for bulk requests in bytes
	// (default 1 MiB).
	ChunkSize int
	// QueueDepth is the submission queue length (default 4*Workers).
	QueueDepth int
	// Retries is how many times a failed sub-request is retried (with
	// RetryBackoff between attempts) before its error is reported on the
	// ticket. 0 disables retry — the historical behaviour.
	Retries int
	// RetryBackoff is the initial sleep before a retry, doubling per
	// attempt (default 100µs when Retries > 0).
	RetryBackoff time.Duration
	// Faults, when set, consults the injector before every sub-request —
	// the crash/IO-error test hook. Production engines leave it nil.
	Faults *FaultInjector
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.Retries > 0 && o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Microsecond
	}
}

// NewEngine starts an engine over store.
func NewEngine(store Store, opts Options) *Engine {
	opts.setDefaults()
	e := &Engine{
		store:        store,
		chunkSize:    opts.ChunkSize,
		queue:        make(chan subReq, opts.QueueDepth),
		retries:      opts.Retries,
		retryBackoff: opts.RetryBackoff,
		faults:       opts.Faults,
	}
	e.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for r := range e.queue {
		err := e.perform(r)
		for attempt := 0; err != nil && attempt < e.retries; attempt++ {
			// Bounded retry with exponential backoff: transient faults (a
			// busy device, an exhausted injector arm) clear; persistent
			// errors surface on the ticket after the budget is spent.
			time.Sleep(e.retryBackoff << attempt)
			e.retried.Add(1)
			err = e.perform(r)
		}
		r.ticket.setErr(err)
		r.ticket.wg.Done()
		e.pending.Done()
	}
}

// perform executes one sub-request against the store, consulting the fault
// injector first when one is installed.
func (e *Engine) perform(r subReq) error {
	var err error
	injected := false
	if e.faults != nil {
		if arm, ok := e.faults.match(r.op); ok {
			switch arm.Mode {
			case FaultDelay:
				time.Sleep(arm.Delay) // slow completion, then proceed normally
			case FaultTorn:
				if r.op == Write {
					// Torn write: half the chunk reaches the store, then the
					// "device" fails — the on-disk bytes are now garbage.
					e.store.WriteAt(r.buf[:len(r.buf)/2], r.off)
				}
				injected, err = true, arm.Err
			default:
				injected, err = true, arm.Err
			}
		}
	}
	if !injected {
		switch r.op {
		case Read:
			_, err = e.store.ReadAt(r.buf, r.off)
		case Write:
			_, err = e.store.WriteAt(r.buf, r.off)
		}
	}
	switch r.op {
	case Read:
		e.reads.Add(1)
		e.bytesRead.Add(int64(len(r.buf)))
	case Write:
		e.writes.Add(1)
		e.bytesWritten.Add(int64(len(r.buf)))
	}
	return err
}

// submit splits the request into chunks and enqueues them. A request that
// races or follows Close is not enqueued; its ticket reports ErrClosed.
func (e *Engine) submit(op Op, buf []byte, off int64) *Ticket {
	t := &Ticket{}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		t.setErr(ErrClosed)
		return t
	}
	n := len(buf)
	chunks := (n + e.chunkSize - 1) / e.chunkSize
	if chunks == 0 {
		return t // empty request: Wait returns immediately
	}
	t.wg.Add(chunks)
	e.pending.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * e.chunkSize
		hi := lo + e.chunkSize
		if hi > n {
			hi = n
		}
		e.queue <- subReq{op: op, buf: buf[lo:hi], off: off + int64(lo), ticket: t}
	}
	return t
}

// ReadAsync schedules a bulk read of len(buf) bytes at off into buf.
// buf must stay untouched until the ticket completes.
func (e *Engine) ReadAsync(buf []byte, off int64) *Ticket { return e.submit(Read, buf, off) }

// WriteAsync schedules a bulk write of buf at off.
// buf must stay untouched until the ticket completes.
func (e *Engine) WriteAsync(buf []byte, off int64) *Ticket { return e.submit(Write, buf, off) }

// ReadRegion reads exactly r.Size bytes from region r into buf.
func (e *Engine) ReadRegion(buf []byte, r Region) *Ticket {
	if int64(len(buf)) != r.Size {
		panic(fmt.Sprintf("nvme: ReadRegion buf %d != region %d", len(buf), r.Size))
	}
	return e.ReadAsync(buf, r.Offset)
}

// WriteRegion writes exactly r.Size bytes from buf into region r.
func (e *Engine) WriteRegion(buf []byte, r Region) *Ticket {
	if int64(len(buf)) != r.Size {
		panic(fmt.Sprintf("nvme: WriteRegion buf %d != region %d", len(buf), r.Size))
	}
	return e.WriteAsync(buf, r.Offset)
}

// Read performs a synchronous bulk read.
func (e *Engine) Read(buf []byte, off int64) error { return e.ReadAsync(buf, off).Wait() }

// Write performs a synchronous bulk write.
func (e *Engine) Write(buf []byte, off int64) error { return e.WriteAsync(buf, off).Wait() }

// Flush blocks until every submitted request has completed — the explicit
// synchronization request in the DeepNVMe API.
func (e *Engine) Flush() { e.pending.Wait() }

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Reads:        e.reads.Load(),
		Writes:       e.writes.Load(),
		BytesRead:    e.bytesRead.Load(),
		BytesWritten: e.bytesWritten.Load(),
		Retried:      e.retried.Load(),
	}
}

// Close drains the queue and stops the workers. The store is not closed.
// Requests submitted concurrently with (or after) Close either complete
// normally or report ErrClosed — never a send on a closed channel.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// No submitter can enqueue or pending.Add past this point, so the drain
	// below observes a monotonically shrinking request set.
	e.pending.Wait()
	close(e.queue)
	e.wg.Wait()
}
