package mem

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Category labels a class of training memory, following the paper's Sec. 3
// taxonomy.
type Category string

// Standard categories.
const (
	CatParamsFP16  Category = "params_fp16"
	CatGradsFP16   Category = "grads_fp16"
	CatOptimState  Category = "optimizer_state"
	CatActivations Category = "activations"
	CatActCkpt     Category = "activation_ckpt"
	CatWorkingSet  Category = "working_set"
	CatCommBuffers Category = "comm_buffers"
	CatPinnedStage Category = "pinned_staging"
)

// Tracker attributes live bytes to categories on one device tier
// (GPU / CPU / NVMe). It is safe for concurrent use.
type Tracker struct {
	mu    sync.Mutex
	name  string
	bytes map[Category]int64
	peak  map[Category]int64
}

// NewTracker returns a tracker labelled name (e.g. "gpu0", "cpu", "nvme").
func NewTracker(name string) *Tracker {
	return &Tracker{name: name, bytes: make(map[Category]int64), peak: make(map[Category]int64)}
}

// Add records n bytes (negative to release) against cat.
func (t *Tracker) Add(cat Category, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bytes[cat] += n
	if t.bytes[cat] < 0 {
		panic(fmt.Sprintf("mem: tracker %s category %s went negative", t.name, cat))
	}
	if t.bytes[cat] > t.peak[cat] {
		t.peak[cat] = t.bytes[cat]
	}
}

// Live returns the live bytes for cat.
func (t *Tracker) Live(cat Category) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[cat]
}

// Peak returns the high-water mark for cat.
func (t *Tracker) Peak(cat Category) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak[cat]
}

// TotalLive returns the sum of live bytes across categories.
func (t *Tracker) TotalLive() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s int64
	for _, v := range t.bytes {
		s += v
	}
	return s
}

// TotalPeak returns the sum of per-category peaks (an upper bound on the
// true simultaneous peak).
func (t *Tracker) TotalPeak() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s int64
	for _, v := range t.peak {
		s += v
	}
	return s
}

// String renders a sorted per-category report.
func (t *Tracker) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	cats := make([]string, 0, len(t.bytes))
	for c := range t.bytes {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", t.name)
	for _, c := range cats {
		fmt.Fprintf(&b, " %s=%s(peak %s)", c, FormatBytes(t.bytes[Category(c)]), FormatBytes(t.peak[Category(c)]))
	}
	return b.String()
}

// FormatBytes renders n in human units (binary prefixes).
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}
