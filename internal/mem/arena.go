package mem

import (
	"math/bits"
	"sync"
)

// Arena is a size-classed free list for hot-path scratch slices: the
// allocation-reuse analogue of PinnedPool for ordinary (non-pinned) buffers.
// Training engines and the collective substrate allocate the same handful of
// buffer shapes every step (padded fp16 gradient buffers, gathered parameter
// views, reduction accumulators); routing those through an arena makes the
// steady-state step allocation-free after the first iteration warms the free
// lists.
//
// Get returns a slice of length n whose contents are UNDEFINED (stale data
// from a previous user); callers that need zeroed memory must clear it.
// Capacities are rounded up to the next power of two, so a Put slice serves
// any future Get within its size class. Back-pressure is PinnedPool-style
// bounded retention: each class keeps at most maxFreePerClass buffers and
// drops the rest for the GC, so a transient burst cannot pin memory forever.
//
// An Arena is safe for concurrent use; engines typically own one per rank
// while a comm.World owns one shared by its collective computes.
type Arena[T any] struct {
	mu sync.Mutex
	// free[k] holds idle slices of capacity exactly 1<<k.
	free [arenaClasses][][]T

	gets, hits, retained int64
}

// arenaClasses bounds the largest pooled class at 2^(arenaClasses-1)
// elements; larger requests fall through to plain make and are dropped on
// Put.
const arenaClasses = 34

// maxFreePerClass is the per-class retention bound (the back-pressure knob).
const maxFreePerClass = 32

// NewArena returns an empty arena.
func NewArena[T any]() *Arena[T] { return &Arena[T]{} }

// class returns the size class k such that 1<<k is the smallest power of two
// >= n (n >= 1).
//
//zinf:hotpath
func class(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a slice of length n with undefined contents, reusing a pooled
// buffer when one of n's size class is free. Get(0) returns nil.
//
//zinf:hotpath
func (a *Arena[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	k := class(n)
	if k >= arenaClasses {
		// Oversize requests bypass the size classes entirely.
		return make([]T, n) //zinf:allow hotpathalloc oversize request beyond the largest size class; steady-state buffers are class-sized
	}
	a.mu.Lock()
	a.gets++
	if l := a.free[k]; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[k] = l[:len(l)-1]
		a.hits++
		a.mu.Unlock()
		return s[:n]
	}
	a.mu.Unlock()
	return make([]T, n, 1<<k) //zinf:allow hotpathalloc warmup pool miss; the buffer is retained by Put and every steady-state Get is a hit
}

// GetZeroed is Get followed by clearing the returned slice.
//
//zinf:hotpath
func (a *Arena[T]) GetZeroed(n int) []T {
	s := a.Get(n)
	clear(s)
	return s
}

// Put returns a buffer obtained from Get to the arena. Slices whose capacity
// is not a power of two (i.e. that did not come from an arena) and slices
// beyond a full class are silently dropped, so Put is always safe — double
// reuse is the only misuse it cannot catch. Put(nil) is a no-op.
//
//zinf:hotpath
func (a *Arena[T]) Put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := class(c)
	if k >= arenaClasses {
		return
	}
	a.mu.Lock()
	if len(a.free[k]) < maxFreePerClass {
		a.free[k] = append(a.free[k], s[:c])
		a.retained++
	}
	a.mu.Unlock()
}

// Stats reports lifetime Get calls, the number served from the free lists,
// and the number of Put buffers accepted — evidence of steady-state reuse.
func (a *Arena[T]) Stats() (gets, hits, retained int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits, a.retained
}
