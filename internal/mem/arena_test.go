package mem

import "testing"

func TestArenaReuse(t *testing.T) {
	a := NewArena[float32]()
	s := a.Get(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(s), cap(s))
	}
	s[0] = 42
	a.Put(s)
	// Any length in the same class reuses the buffer.
	r := a.Get(65)
	if len(r) != 65 || cap(r) != 128 {
		t.Fatalf("Get(65): len %d cap %d, want 65/128", len(r), cap(r))
	}
	if r[0] != 42 {
		t.Fatalf("arena did not reuse the pooled buffer")
	}
	if gets, hits, _ := a.Stats(); gets != 2 || hits != 1 {
		t.Fatalf("stats = %d gets / %d hits, want 2/1", gets, hits)
	}
}

func TestArenaGetZeroed(t *testing.T) {
	a := NewArena[float32]()
	s := a.Get(8)
	for i := range s {
		s[i] = 1
	}
	a.Put(s)
	z := a.GetZeroed(8)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %g, want 0", i, v)
		}
	}
}

func TestArenaDropsForeignAndZero(t *testing.T) {
	a := NewArena[float32]()
	a.Put(nil)                   // no-op
	a.Put(make([]float32, 0, 3)) // non-power-of-two cap: dropped
	if _, _, retained := a.Stats(); retained != 0 {
		t.Fatalf("foreign buffers retained: %d", retained)
	}
	if s := a.Get(0); s != nil {
		t.Fatalf("Get(0) = %v, want nil", s)
	}
}

func TestArenaBackPressure(t *testing.T) {
	a := NewArena[float32]()
	bufs := make([][]float32, 0, maxFreePerClass+8)
	for i := 0; i < maxFreePerClass+8; i++ {
		bufs = append(bufs, a.Get(16))
	}
	for _, b := range bufs {
		a.Put(b)
	}
	if _, _, retained := a.Stats(); retained != maxFreePerClass {
		t.Fatalf("retained %d buffers, want bound %d", retained, maxFreePerClass)
	}
}

func TestArenaExactPowerOfTwo(t *testing.T) {
	a := NewArena[uint16]()
	s := a.Get(64)
	if cap(s) != 64 {
		t.Fatalf("Get(64) cap = %d, want 64", cap(s))
	}
	a.Put(s)
	if r := a.Get(64); cap(r) != 64 {
		t.Fatalf("reuse cap = %d, want 64", cap(r))
	}
	if _, hits, _ := a.Stats(); hits != 1 {
		t.Fatalf("exact-class reuse missed")
	}
}
