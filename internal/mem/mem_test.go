package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(100)
	b1, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Used() != 100 || a.Free() != 0 {
		t.Fatalf("used=%d free=%d", a.Used(), a.Free())
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("full allocator gave %v", err)
	}
	a.Release(b1)
	a.Release(b2)
	if a.Used() != 0 {
		t.Fatalf("used=%d after full release", a.Used())
	}
	if a.Peak() != 100 {
		t.Fatalf("peak=%d, want 100", a.Peak())
	}
	// After coalescing the full capacity is one run again.
	if _, err := a.Alloc(100); err != nil {
		t.Fatalf("coalesced alloc failed: %v", err)
	}
}

func TestAllocatorFragmentationError(t *testing.T) {
	a := NewAllocator(100)
	var blocks []Block
	for i := 0; i < 10; i++ {
		b, err := a.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	// Free every other block: 50 bytes free, largest run 10.
	for i := 0; i < 10; i += 2 {
		a.Release(blocks[i])
	}
	if got := a.LargestFree(); got != 10 {
		t.Fatalf("largest free = %d, want 10", got)
	}
	_, err := a.Alloc(30)
	if !errors.Is(err, ErrFragmented) {
		t.Fatalf("fragmented allocator gave %v, want ErrFragmented", err)
	}
}

func TestAllocatorCoalesceBothSides(t *testing.T) {
	a := NewAllocator(30)
	b1, _ := a.Alloc(10)
	b2, _ := a.Alloc(10)
	b3, _ := a.Alloc(10)
	a.Release(b1)
	a.Release(b3)
	a.Release(b2) // must merge with both neighbours
	if got := a.LargestFree(); got != 30 {
		t.Fatalf("largest free after merge = %d, want 30", got)
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := NewAllocator(10)
	b, err := a.Alloc(0)
	if err != nil || b.Size != 0 {
		t.Fatalf("zero alloc: %v %v", b, err)
	}
	a.Release(b)
	if a.Used() != 0 {
		t.Fatal("zero alloc changed usage")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(10)
	b, _ := a.Alloc(5)
	a.Release(b)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Release(b)
}

// The Fig. 6b protocol: pre-fragment into 2 GB chunks; allocations > 2 GB
// must fail with ErrFragmented even on an empty device.
func TestPreFragmentBlocksLargeAllocations(t *testing.T) {
	const gb = int64(1) << 30
	a := NewAllocator(32 * gb)
	a.PreFragment(2 * gb)
	if _, err := a.Alloc(2*gb + 1); !errors.Is(err, ErrFragmented) {
		t.Fatalf("oversized alloc gave %v, want ErrFragmented", err)
	}
	// Exactly chunk-sized still works, and many of them fill the device.
	var blocks []Block
	for i := 0; i < 16; i++ {
		b, err := a.Alloc(2 * gb)
		if err != nil {
			t.Fatalf("chunk alloc %d: %v", i, err)
		}
		blocks = append(blocks, b)
	}
	if _, err := a.Alloc(2 * gb); err == nil {
		t.Fatal("17th chunk should fail")
	}
	// Freeing adjacent chunks must NOT re-coalesce across fences.
	for _, b := range blocks {
		a.Release(b)
	}
	if _, err := a.Alloc(2*gb + 1); !errors.Is(err, ErrFragmented) {
		t.Fatalf("post-release oversized alloc gave %v, want ErrFragmented", err)
	}
}

func TestResetPreservesFences(t *testing.T) {
	a := NewAllocator(100)
	a.PreFragment(25)
	b, _ := a.Alloc(20)
	_ = b
	a.Reset()
	if a.Used() != 0 {
		t.Fatal("Reset left usage")
	}
	if _, err := a.Alloc(26); !errors.Is(err, ErrFragmented) {
		t.Fatalf("fences lost after Reset: %v", err)
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b, err := a.Alloc(128)
				if err != nil {
					t.Errorf("concurrent alloc: %v", err)
					return
				}
				a.Release(b)
			}
		}()
	}
	wg.Wait()
	if a.Used() != 0 {
		t.Fatalf("leaked %d bytes", a.Used())
	}
}

// Property: any sequence of alloc/release pairs leaves the allocator able to
// serve a full-capacity request (i.e. coalescing is complete without fences).
func TestAllocatorQuickCoalesce(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewAllocator(1 << 16)
		var blocks []Block
		for _, s := range sizes {
			b, err := a.Alloc(int64(s % 4096))
			if err != nil {
				break
			}
			blocks = append(blocks, b)
		}
		for i := len(blocks) - 1; i >= 0; i-- {
			a.Release(blocks[i])
		}
		_, err := a.Alloc(1 << 16)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedPoolReuseBound(t *testing.T) {
	p := NewPinnedPool(4, 1024)
	if p.TotalBytes() != 4*1024 {
		t.Fatalf("TotalBytes = %d", p.TotalBytes())
	}
	// Stream 100 "transfers" through 4 buffers.
	for i := 0; i < 100; i++ {
		b := p.Acquire()
		b[0] = byte(i)
		p.Release(b)
	}
	if p.TotalBytes() != 4*1024 {
		t.Fatalf("pool grew to %d bytes", p.TotalBytes())
	}
	if p.Acquires() != 100 {
		t.Fatalf("acquires = %d", p.Acquires())
	}
}

func TestPinnedPoolBlocksWhenEmpty(t *testing.T) {
	p := NewPinnedPool(1, 8)
	b := p.Acquire()
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on empty pool")
	}
	done := make(chan struct{})
	go func() {
		b2 := p.Acquire() // blocks until release
		p.Release(b2)
		close(done)
	}()
	p.Release(b)
	<-done
}

func TestPinnedPoolConcurrentStreaming(t *testing.T) {
	p := NewPinnedPool(3, 64)
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b := p.Acquire()
				p.Release(b)
			}
		}()
	}
	wg.Wait()
	if p.TotalBytes() != 3*64 {
		t.Fatalf("pool size changed: %d", p.TotalBytes())
	}
}

func TestPinnedPoolBadRelease(t *testing.T) {
	p := NewPinnedPool(1, 8)
	defer func() {
		if recover() == nil {
			t.Error("wrong-size release did not panic")
		}
	}()
	p.Release(make([]byte, 4))
}

func TestTracker(t *testing.T) {
	tr := NewTracker("gpu0")
	tr.Add(CatParamsFP16, 100)
	tr.Add(CatParamsFP16, 50)
	tr.Add(CatParamsFP16, -120)
	if got := tr.Live(CatParamsFP16); got != 30 {
		t.Fatalf("live = %d", got)
	}
	if got := tr.Peak(CatParamsFP16); got != 150 {
		t.Fatalf("peak = %d", got)
	}
	tr.Add(CatGradsFP16, 70)
	if got := tr.TotalLive(); got != 100 {
		t.Fatalf("total live = %d", got)
	}
	if got := tr.TotalPeak(); got != 220 {
		t.Fatalf("total peak = %d", got)
	}
	if s := tr.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestTrackerNegativePanics(t *testing.T) {
	tr := NewTracker("cpu")
	defer func() {
		if recover() == nil {
			t.Error("negative balance did not panic")
		}
	}()
	tr.Add(CatActCkpt, -1)
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3 << 20, "3.0MB"},
		{int64(1536) << 30, "1.5TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
