// Package mem models device memory for the ZeRO-Infinity reproduction:
// a contiguous block allocator with explicit fragmentation (paper Sec. 3
// "MSWM ... can result in running out of memory ... due to lack of enough
// contiguous memory", and the Fig. 6b pre-fragmentation protocol), a
// pinned-buffer pool (Sec. 6.3 "pinned memory management layer"), and a
// usage tracker that attributes bytes to model-state categories.
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Allocation failure modes. ErrFragmented means enough total bytes are free
// but no contiguous run is large enough — the failure mode memory-centric
// tiling exists to avoid.
var (
	ErrOutOfMemory = errors.New("mem: out of memory")
	ErrFragmented  = errors.New("mem: enough free memory but no contiguous block (fragmentation)")
)

// Block is an allocated region of device memory.
type Block struct {
	Offset int64
	Size   int64
}

type segment struct{ off, size int64 }

// Allocator is a first-fit contiguous allocator over a fixed-capacity
// address space. It is safe for concurrent use.
type Allocator struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	free     []segment // sorted by offset, non-overlapping, never empty-sized
	fences   []int64   // offsets across which free segments never coalesce
	peak     int64
}

// NewAllocator returns an allocator over capacity bytes.
func NewAllocator(capacity int64) *Allocator {
	if capacity < 0 {
		panic("mem: negative capacity")
	}
	a := &Allocator{capacity: capacity}
	if capacity > 0 {
		a.free = []segment{{0, capacity}}
	}
	return a
}

// Capacity returns the total device memory in bytes.
func (a *Allocator) Capacity() int64 { return a.capacity }

// Used returns the currently allocated bytes.
func (a *Allocator) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Free returns the currently free bytes.
func (a *Allocator) Free() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity - a.used
}

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// LargestFree returns the size of the largest contiguous free run.
func (a *Allocator) LargestFree() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var m int64
	for _, s := range a.free {
		if s.size > m {
			m = s.size
		}
	}
	return m
}

// Alloc reserves size contiguous bytes (first fit). A zero-size request
// succeeds and occupies no space. The error distinguishes capacity
// exhaustion (ErrOutOfMemory) from fragmentation (ErrFragmented).
func (a *Allocator) Alloc(size int64) (Block, error) {
	if size < 0 {
		return Block{}, fmt.Errorf("mem: negative alloc size %d", size)
	}
	if size == 0 {
		return Block{}, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.free {
		if s.size >= size {
			b := Block{Offset: s.off, Size: size}
			if s.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = segment{s.off + size, s.size - size}
			}
			a.used += size
			if a.used > a.peak {
				a.peak = a.used
			}
			return b, nil
		}
	}
	if a.capacity-a.used >= size {
		return Block{}, fmt.Errorf("%w: want %d contiguous, free %d, largest run %d",
			ErrFragmented, size, a.capacity-a.used, a.largestFreeLocked())
	}
	return Block{}, fmt.Errorf("%w: want %d, free %d of %d",
		ErrOutOfMemory, size, a.capacity-a.used, a.capacity)
}

func (a *Allocator) largestFreeLocked() int64 {
	var m int64
	for _, s := range a.free {
		if s.size > m {
			m = s.size
		}
	}
	return m
}

// Release returns a block to the free list, coalescing with neighbours
// unless a fence separates them. Releasing the zero Block is a no-op.
func (a *Allocator) Release(b Block) {
	if b.Size == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= b.Offset })
	seg := segment{b.Offset, b.Size}
	// Coalesce with predecessor.
	if i > 0 {
		p := a.free[i-1]
		if p.off+p.size > seg.off {
			panic(fmt.Sprintf("mem: double free or overlap at %d", b.Offset))
		}
		if p.off+p.size == seg.off && !a.isFence(seg.off) {
			seg = segment{p.off, p.size + seg.size}
			a.free = append(a.free[:i-1], a.free[i:]...)
			i--
		}
	}
	// Coalesce with successor.
	if i < len(a.free) {
		n := a.free[i]
		if seg.off+seg.size > n.off {
			panic(fmt.Sprintf("mem: double free or overlap at %d", b.Offset))
		}
		if seg.off+seg.size == n.off && !a.isFence(n.off) {
			seg.size += n.size
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
	}
	a.free = append(a.free, segment{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = seg
	a.used -= b.Size
}

func (a *Allocator) isFence(off int64) bool {
	j := sort.Search(len(a.fences), func(i int) bool { return a.fences[i] >= off })
	return j < len(a.fences) && a.fences[j] == off
}

// PreFragment reproduces the paper's Fig. 6b protocol: it splits the address
// space into chunkSize-aligned regions and forbids free-segment coalescing
// across region boundaries, so every allocation larger than chunkSize fails
// with ErrFragmented even when memory is otherwise empty. It must be called
// before any allocation.
func (a *Allocator) PreFragment(chunkSize int64) {
	if chunkSize <= 0 {
		panic("mem: PreFragment chunk must be positive")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used != 0 {
		panic("mem: PreFragment after allocations")
	}
	a.fences = a.fences[:0]
	var newFree []segment
	for off := int64(0); off < a.capacity; off += chunkSize {
		end := off + chunkSize
		if end > a.capacity {
			end = a.capacity
		}
		newFree = append(newFree, segment{off, end - off})
		if off > 0 {
			a.fences = append(a.fences, off)
		}
	}
	a.free = newFree
}

// Reset releases everything (fences persist).
func (a *Allocator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used = 0
	a.peak = 0
	a.free = a.free[:0]
	prev := int64(0)
	for _, f := range a.fences {
		a.free = append(a.free, segment{prev, f - prev})
		prev = f
	}
	if prev < a.capacity {
		a.free = append(a.free, segment{prev, a.capacity - prev})
	}
}
