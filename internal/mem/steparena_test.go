package mem

import (
	"testing"

	"repro/internal/tensor"
)

// TestStepArenaSteadyStateZeroAllocs asserts the arena's core contract: after
// one warm-up step fills the size-class free lists and the header pool, a
// step's worth of matrix/slice/scratch requests performs zero heap
// allocations.
func TestStepArenaSteadyStateZeroAllocs(t *testing.T) {
	a := NewStepArena()
	step := func() {
		a.BeginStep()
		_ = a.NewMatrixUninit(4, 8)
		_ = a.NewMatrix(3, 3)
		_ = a.AllocF32(17)
		s := a.Scratch(64)
		a.PutScratch(s)
	}
	step() // warm up the free lists and header pool
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("steady-state arena step allocated %.1f times per run, want 0", n)
	}
	gets, hits, _, steps := a.Stats()
	if steps < 50 {
		t.Fatalf("Stats steps = %d, want >= 50", steps)
	}
	// Every get after the warm-up step must be a free-list hit.
	if miss := gets - hits; miss > 4 {
		t.Fatalf("free-list misses = %d (gets %d, hits %d), want only the warm-up's", miss, gets, hits)
	}
}

// TestStepArenaBuffersReusedAcrossSteps pins down that BeginStep actually
// recycles: the second step's tensor is backed by the first step's buffer.
func TestStepArenaBuffersReusedAcrossSteps(t *testing.T) {
	a := NewStepArena()
	a.BeginStep()
	t1 := a.NewMatrixUninit(5, 7)
	p1 := &t1.Float32s()[0]
	a.BeginStep()
	t2 := a.NewMatrixUninit(5, 7)
	if &t2.Float32s()[0] != p1 {
		t.Fatal("BeginStep did not recycle the previous step's buffer")
	}
	if t2.DType() != tensor.FP32 || t2.Dim(0) != 5 || t2.Dim(1) != 7 || t2.Len() != 35 {
		t.Fatalf("recycled tensor has wrong header: dtype %v shape %v", t2.DType(), t2.Shape())
	}
}

// TestStepArenaNewMatrixZeroed checks that NewMatrix restores the tensor.New
// zero-init contract even on a dirty recycled buffer — the property
// attention's accumulated dqkv depends on for bit-identity with the heap path.
func TestStepArenaNewMatrixZeroed(t *testing.T) {
	a := NewStepArena()
	a.BeginStep()
	dirty := a.NewMatrixUninit(4, 4)
	for i := range dirty.Float32s() {
		dirty.Float32s()[i] = 123
	}
	p := &dirty.Float32s()[0]
	a.BeginStep()
	z := a.NewMatrix(4, 4)
	if &z.Float32s()[0] != p {
		t.Fatal("expected NewMatrix to recycle the dirty buffer")
	}
	for i, v := range z.Float32s() {
		if v != 0 {
			t.Fatalf("NewMatrix[%d] = %g, want 0", i, v)
		}
	}
}

// TestStepArenaMarkReleaseKeep exercises the activation-checkpoint sub-scope:
// Release frees everything above the mark except the kept result, buffers
// allocated before the mark survive, and the freed region is reused by the
// next request — the property that keeps checkpointed recompute O(1) in arena
// growth instead of O(layers).
func TestStepArenaMarkReleaseKeep(t *testing.T) {
	a := NewStepArena()
	a.BeginStep()
	pre := a.NewMatrixUninit(2, 4)
	pre.Float32s()[0] = 11

	m := a.Mark()
	scrap := a.NewMatrixUninit(2, 4)
	scrapPtr := &scrap.Float32s()[0]
	keep := a.NewMatrixUninit(2, 8)
	for i := range keep.Float32s() {
		keep.Float32s()[i] = float32(i)
	}
	a.Release(m, keep)

	// The kept tensor's contents survive the release.
	for i, v := range keep.Float32s() {
		if v != float32(i) {
			t.Fatalf("kept tensor[%d] = %g after Release, want %d", i, v, i)
		}
	}
	if pre.Float32s()[0] != 11 {
		t.Fatal("pre-mark tensor clobbered by Release")
	}
	// The scrapped buffer is back on the free list: the next same-class
	// request (a recomputed activation) reuses it.
	re := a.NewMatrixUninit(2, 4)
	if &re.Float32s()[0] != scrapPtr {
		t.Fatal("Release did not free the non-kept buffer for reuse")
	}
	// keep stays registered live: reclaimed (not leaked) by the next step.
	a.BeginStep()
	again := a.NewMatrixUninit(2, 8)
	if &again.Float32s()[0] != &keep.Float32s()[0] {
		t.Fatal("kept buffer was not reclaimed by the next BeginStep")
	}
}

// TestStepArenaReleaseAcrossStepPanics: a checkpoint scope that leaks across
// a step boundary must fail loudly, not silently free the new step's buffers.
func TestStepArenaReleaseAcrossStepPanics(t *testing.T) {
	a := NewStepArena()
	a.BeginStep()
	m := a.Mark()
	a.BeginStep()
	defer func() {
		if recover() == nil {
			t.Fatal("Release with a stale-generation mark did not panic")
		}
	}()
	a.Release(m, nil)
}

// TestStepArenaScratchReuse: Scratch/PutScratch recycle through the same
// free lists without registering the buffer live.
func TestStepArenaScratchReuse(t *testing.T) {
	a := NewStepArena()
	s1 := a.Scratch(100)
	if len(s1) != 100 {
		t.Fatalf("Scratch len = %d, want 100", len(s1))
	}
	p := &s1[0]
	a.PutScratch(s1)
	s2 := a.Scratch(100)
	if &s2[0] != p {
		t.Fatal("PutScratch buffer not reused by the next Scratch")
	}
	a.PutScratch(s2)
	a.PutScratch(nil) // no-op
	if s := a.Scratch(0); s != nil {
		t.Fatalf("Scratch(0) = %v, want nil", s)
	}
	if s := a.AllocF32(0); s != nil {
		t.Fatalf("AllocF32(0) = %v, want nil", s)
	}
}
