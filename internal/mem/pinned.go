package mem

import (
	"fmt"
	"sync"
)

// PinnedPool models the infinity offload engine's pinned memory management
// layer (paper Sec. 6.3): a small, fixed set of reusable pinned staging
// buffers through which tens of terabytes of model states stream to CPU or
// NVMe. Reuse prevents both pinned-memory oversubscription and CPU/GPU
// fragmentation.
//
// Acquire blocks when all buffers are in flight, which naturally provides
// the back-pressure that bounds in-flight I/O.
type PinnedPool struct {
	bufSize int
	ch      chan []byte

	mu       sync.Mutex
	total    int // buffers ever created
	acquires int64
}

// NewPinnedPool creates a pool of count pinned buffers of bufSize bytes each.
func NewPinnedPool(count, bufSize int) *PinnedPool {
	if count <= 0 || bufSize <= 0 {
		panic("mem: pinned pool needs positive count and size")
	}
	p := &PinnedPool{bufSize: bufSize, ch: make(chan []byte, count)}
	for i := 0; i < count; i++ {
		p.ch <- make([]byte, bufSize)
	}
	p.total = count
	return p
}

// BufSize returns the size of each pinned buffer.
func (p *PinnedPool) BufSize() int { return p.bufSize }

// TotalBytes returns the total pinned memory held by the pool — constant for
// the pool's lifetime, which is the property the paper's design depends on.
func (p *PinnedPool) TotalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.total) * int64(p.bufSize)
}

// Acquires returns the number of Acquire calls served; with a small pool and
// a large workload this far exceeds the buffer count, evidencing reuse.
func (p *PinnedPool) Acquires() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquires
}

// Acquire returns a pinned buffer, blocking until one is free.
//
//zinf:hotpath
func (p *PinnedPool) Acquire() []byte {
	b := <-p.ch
	p.mu.Lock()
	p.acquires++
	p.mu.Unlock()
	return b
}

// TryAcquire returns a pinned buffer or false without blocking.
//
//zinf:hotpath
func (p *PinnedPool) TryAcquire() ([]byte, bool) {
	select {
	case b := <-p.ch:
		p.mu.Lock()
		p.acquires++
		p.mu.Unlock()
		return b, true
	default:
		return nil, false
	}
}

// Release returns a buffer to the pool. It panics if the buffer does not
// have the pool's buffer size (catching use-after-resize bugs).
//
//zinf:hotpath
func (p *PinnedPool) Release(b []byte) {
	if len(b) != p.bufSize {
		panic(fmt.Sprintf("mem: released buffer size %d != pool size %d", len(b), p.bufSize))
	}
	select {
	case p.ch <- b:
	default:
		panic("mem: pinned pool overflow (double release?)")
	}
}
