package mem

import (
	"sync"

	"repro/internal/tensor"
)

// StepArena is the step-scoped activation allocator: every tensor and scratch
// slice the model layers create during one training step (forward
// activations, backward grad temporaries, softmax/gelu scratch, tiled-
// projection staging) comes from here instead of make, and the whole set is
// reclaimed in O(live) at the next BeginStep. After the first step warms the
// size-class free lists, a steady-state step performs zero heap allocations
// in the model layer — the full-step extension of the engine-side invariant
// (Arena/PinnedPool) that TestFullStepZeroAllocs and the stepalloc bench
// record gate.
//
// Three acquisition modes:
//
//   - NewMatrix / NewMatrixUninit / AllocF32: step-scoped. The buffer (and,
//     for the matrix forms, its pooled *tensor.Tensor header) is registered
//     live and stays valid until the next BeginStep/Reset — or until an
//     enclosing Mark/Release sub-scope frees it early.
//   - Scratch / PutScratch: transient, caller-released. For per-worker
//     scratch inside parallel kernels; safe to call concurrently.
//   - Mark / Release: a sub-scope for activation-checkpoint recompute.
//     Block backward marks, recomputes the forward (whose activations land
//     above the mark), runs the backward, then releases everything above the
//     mark except the one result tensor it returns — so each checkpointed
//     block's recomputed activations reuse the region freed by the previous
//     block instead of growing the arena by O(layers).
//
// Marks are generation-stamped: BeginStep/Reset bump the generation and
// Release panics on a mark from a previous step, catching a
// checkpoint-scope that leaked across a step boundary (which would silently
// free live buffers) at the point of misuse.
//
// Contents of NewMatrixUninit/AllocF32/Scratch buffers are UNDEFINED (stale
// data from earlier in the run); every model call site either fully
// overwrites the buffer or uses NewMatrix, so arena-backed runs stay
// bit-identical to heap-backed runs.
//
// Retention is bounded like Arena/PinnedPool: at most maxFreeStepClass idle
// buffers per size class and maxFreeHeaders idle tensor headers are kept;
// the rest are dropped for the GC, so a transient burst (one oversized batch)
// cannot pin memory forever.
type StepArena struct {
	mu sync.Mutex

	// free[k] holds idle buffers of capacity exactly 1<<k, shared by the
	// registered and scratch acquisition modes.
	free [arenaClasses][][]float32

	// live is the registry of step-scoped buffers; reclaimed wholesale by
	// BeginStep/Reset and partially by Release.
	live [][]float32

	// hdrLive/hdrFree pool the *tensor.Tensor headers handed out by
	// NewMatrix(Uninit), so a recycled matrix costs zero allocations
	// (ResetFP32Matrix reuses the retained shape slice too).
	hdrLive []*tensor.Tensor
	hdrFree []*tensor.Tensor

	// gen stamps marks; bumped on every full reclaim.
	gen uint64

	gets, hits, retained, steps int64
}

// maxFreeStepClass bounds idle buffers kept per size class. A training step
// of a deep model holds ~tens of live activations per layer; 1024 per class
// comfortably covers steady state while still shedding bursts.
const maxFreeStepClass = 1024

// maxFreeHeaders bounds the idle tensor-header pool.
const maxFreeHeaders = 4096

// StepMark is a point-in-time cursor into the arena's live registry,
// stamped with the generation it was taken in. The zero value is a valid
// no-op mark for generation 0.
type StepMark struct {
	live, hdrs int
	gen        uint64
}

// NewStepArena returns an empty step arena.
func NewStepArena() *StepArena { return &StepArena{} }

// BeginStep reclaims every step-scoped buffer and header into the free
// lists and starts a new generation. Engines call it at the top of each
// micro-batch, so a buffer handed out during step N is guaranteed dead by
// the time step N+1 allocates. It is also the recovery path: an aborted
// step (simulated OOM, gradient overflow) leaves live buffers behind, and
// the next BeginStep reclaims them unconditionally.
//
//zinf:hotpath
func (a *StepArena) BeginStep() {
	a.mu.Lock()
	a.reclaimLocked()
	a.steps++
	a.mu.Unlock()
}

// Reset reclaims everything like BeginStep without counting a step — the
// teardown/abandonment form of the lifecycle.
//
//zinf:hotpath
func (a *StepArena) Reset() {
	a.mu.Lock()
	a.reclaimLocked()
	a.mu.Unlock()
}

//zinf:hotpath
func (a *StepArena) reclaimLocked() {
	for i, s := range a.live {
		a.putFreeLocked(s)
		a.live[i] = nil
	}
	a.live = a.live[:0]
	for i, h := range a.hdrLive {
		if len(a.hdrFree) < maxFreeHeaders {
			a.hdrFree = append(a.hdrFree, h)
		}
		a.hdrLive[i] = nil
	}
	a.hdrLive = a.hdrLive[:0]
	a.gen++
}

// Mark opens a sub-scope: a cursor capturing the current live set. Paired
// with Release it brackets activation-checkpoint recompute.
//
//zinf:hotpath
func (a *StepArena) Mark() StepMark {
	a.mu.Lock()
	m := StepMark{live: len(a.live), hdrs: len(a.hdrLive), gen: a.gen}
	a.mu.Unlock()
	return m
}

// Release frees every step-scoped buffer and header allocated since m back
// into the free lists, except the one backing keep (which stays registered
// and lives until the next BeginStep/Reset). keep may be nil, and may also
// predate the mark — then nothing is exempted. Release panics if m was
// taken in an earlier generation: the scope outlived the step that opened
// it, and honoring it would free buffers the current step still owns.
//
//zinf:hotpath
func (a *StepArena) Release(m StepMark, keep *tensor.Tensor) {
	a.mu.Lock()
	if m.gen != a.gen {
		a.mu.Unlock()
		panic("mem: StepArena.Release with a mark from a previous step (generation mismatch)")
	}
	var keepData []float32
	if keep != nil && keep.DType() == tensor.FP32 {
		keepData = keep.Float32s()
	}
	n := m.live
	for _, s := range a.live[m.live:] {
		if len(keepData) > 0 && len(s) > 0 && &s[0] == &keepData[0] {
			a.live[n] = s
			n++
			continue
		}
		a.putFreeLocked(s)
	}
	for i := n; i < len(a.live); i++ {
		a.live[i] = nil
	}
	a.live = a.live[:n]
	hn := m.hdrs
	for _, h := range a.hdrLive[m.hdrs:] {
		if h == keep {
			a.hdrLive[hn] = h
			hn++
			continue
		}
		if len(a.hdrFree) < maxFreeHeaders {
			a.hdrFree = append(a.hdrFree, h)
		}
	}
	for i := hn; i < len(a.hdrLive); i++ {
		a.hdrLive[i] = nil
	}
	a.hdrLive = a.hdrLive[:hn]
	a.mu.Unlock()
}

// NewMatrixUninit returns a step-scoped [rows, cols] FP32 tensor with
// UNDEFINED contents, valid until the next BeginStep/Reset (or enclosing
// Release). Header and backing buffer both come from pools, so the
// steady-state cost is zero allocations.
//
//zinf:hotpath
func (a *StepArena) NewMatrixUninit(rows, cols int) *tensor.Tensor {
	a.mu.Lock()
	s := a.getLocked(rows * cols)
	a.live = append(a.live, s)
	var t *tensor.Tensor
	if n := len(a.hdrFree); n > 0 {
		t = a.hdrFree[n-1]
		a.hdrFree[n-1] = nil
		a.hdrFree = a.hdrFree[:n-1]
	} else {
		t = new(tensor.Tensor) //zinf:allow hotpathalloc warmup header-pool miss; headers are recycled by BeginStep and every steady-state call is a hit
	}
	a.hdrLive = append(a.hdrLive, t)
	a.mu.Unlock()
	t.ResetFP32Matrix(s, rows, cols)
	return t
}

// NewMatrix is NewMatrixUninit with the contents zeroed — for call sites
// that accumulate into the tensor (attention's dqkv) and so depend on the
// tensor.New zero-init the heap path provided.
//
//zinf:hotpath
func (a *StepArena) NewMatrix(rows, cols int) *tensor.Tensor {
	t := a.NewMatrixUninit(rows, cols)
	clear(t.Float32s())
	return t
}

// AllocF32 returns a step-scoped []float32 of length n with UNDEFINED
// contents — the raw-slice form of NewMatrixUninit for scratch that never
// needs a tensor header (softmax probability rows, layernorm statistics).
//
//zinf:hotpath
func (a *StepArena) AllocF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	a.mu.Lock()
	s := a.getLocked(n)
	a.live = append(a.live, s)
	a.mu.Unlock()
	return s
}

// Scratch returns a transient []float32 of length n with UNDEFINED contents
// that the caller returns via PutScratch. Unlike AllocF32 it is not
// registered live, so it is safe for concurrent use from parallel kernel
// workers (each worker gets and puts its own scratch).
//
//zinf:hotpath
func (a *StepArena) Scratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	a.mu.Lock()
	s := a.getLocked(n)
	a.mu.Unlock()
	return s
}

// PutScratch returns a Scratch buffer to the free lists. Safe for concurrent
// use; PutScratch(nil) is a no-op.
//
//zinf:hotpath
func (a *StepArena) PutScratch(s []float32) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	a.putFreeLocked(s)
	a.mu.Unlock()
}

//zinf:hotpath
func (a *StepArena) getLocked(n int) []float32 {
	a.gets++
	k := class(n)
	if k >= arenaClasses {
		// Oversize requests bypass the size classes entirely.
		return make([]float32, n) //zinf:allow hotpathalloc oversize request beyond the largest size class; steady-state activations are class-sized
	}
	if l := a.free[k]; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[k] = l[:len(l)-1]
		a.hits++
		return s[:n]
	}
	return make([]float32, n, 1<<k) //zinf:allow hotpathalloc warmup pool miss; the buffer is reclaimed by BeginStep/Release and every steady-state get is a hit
}

//zinf:hotpath
func (a *StepArena) putFreeLocked(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := class(c)
	if k >= arenaClasses {
		return
	}
	if len(a.free[k]) < maxFreeStepClass {
		a.free[k] = append(a.free[k], s[:c])
		a.retained++
	}
}

// Stats reports lifetime buffer gets, the number served from the free
// lists, the number of reclaimed buffers retained, and the number of
// BeginStep calls — evidence of steady-state reuse for tests and debugging.
func (a *StepArena) Stats() (gets, hits, retained, steps int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits, a.retained, a.steps
}
