package sim

import (
	"repro/internal/perf"
	"repro/internal/zero"
)

// Table1Row is one experiment configuration from the paper's Table 1.
type Table1Row struct {
	Nodes      int
	Label      string
	ParamsB    float64 // billions
	Hidden     int64
	Layers     int64
	BatchGPU   float64
	MP         int
	ParamPlace zero.Placement
	OptPlace   zero.Placement
}

// Table1 reproduces the paper's Table 1 configurations.
func Table1() []Table1Row {
	return []Table1Row{
		{1, "10B", 10, 4096, 50, 8, 1, zero.OnGPU, zero.OnGPU},
		{1, "50B", 50, 8192, 62, 26, 1, zero.OnCPU, zero.OnNVMe},
		{1, "100B", 100, 8192, 125, 24, 1, zero.OnCPU, zero.OnNVMe},
		{1, "0.5T", 500, 18432, 124, 8, 1, zero.OnNVMe, zero.OnNVMe},
		{1, "1T", 1000, 25600, 128, 7, 1, zero.OnNVMe, zero.OnNVMe},
		{32, "0.5T", 500, 18432, 124, 7, 4, zero.OnGPU, zero.OnGPU},
		{32, "1T", 1000, 25600, 128, 5, 4, zero.OnGPU, zero.OnGPU},
		{32, "5T", 5000, 49152, 174, 3, 4, zero.OnNVMe, zero.OnNVMe},
		{32, "10T", 10000, 65536, 200, 2, 4, zero.OnNVMe, zero.OnNVMe},
		{32, "20T", 20000, 88064, 205, 1.25, 8, zero.OnNVMe, zero.OnNVMe},
	}
}

func (r Table1Row) shape() perf.ModelShape {
	return perf.ModelShape{Hidden: r.Hidden, Layers: r.Layers, Heads: 16, Seq: 1024, CkptEvery: 1}
}

// infinityIter builds the ZeRO-Infinity iteration config for a Table 1 row.
func infinityIter(r Table1Row) IterConfig {
	return IterConfig{
		Cluster:            perf.DGX2(r.Nodes),
		Shape:              r.shape(),
		BszGPU:             r.BatchGPU,
		Params:             r.ParamPlace,
		Optimizer:          r.OptPlace,
		Overlap:            true,
		OffloadActivations: r.ParamPlace == zero.OnNVMe, // extreme scale spills ckpts
	}
}

// Simulate3D models Megatron-style 3D parallelism: the same compute, tensor-
// slicing allreduces inside each layer, a pipeline-bubble stretch, and the
// data-parallel gradient allreduce. Returns a zero result (OOM) when the
// model states don't fit the aggregate GPU memory.
func Simulate3D(c perf.Cluster, m perf.ModelShape, bszGPU float64, mp, pp int) IterResult {
	if ok, _ := perf.Feasible(perf.Kind3D, c, m, int64(bszGPU+0.999)); !ok {
		return IterResult{} // out of memory
	}
	peak := peakFlops(m.Hidden)
	n := float64(c.TotalGPUs())
	dp := n / float64(mp*pp)
	if dp < 1 {
		dp = 1
	}
	params := float64(m.Params())

	computeSec := perf.ComputePerIter(1, m.Seq, m.Params()) * bszGPU / peak
	// Tensor-slicing: 4 allreduces per layer of bsz·seq·hd fp16 activations.
	mpVolume := 4 * 2 * bszGPU * float64(m.Seq) * float64(m.Hidden) * 2 * float64(m.Layers)
	mpSec := mpVolume / c.GPUToGPUBW
	// Pipeline bubble: microbatch count = replica batch (micro size 1).
	replicaBatch := bszGPU * n / dp
	bubble := float64(pp-1) / (replicaBatch + float64(pp-1))
	// DP gradient allreduce over each GPU's 1/(mp·pp) slice.
	gg := c.GPUToGPUBW
	if c.Nodes > 1 && c.InterNodeBW < gg {
		gg = c.InterNodeBW
	}
	dpSec := 0.0
	if dp > 1 {
		dpSec = 2 * 2 * params / float64(mp*pp) / gg
	}
	total := (computeSec+mpSec)/(1-bubble) + dpSec
	flopsPerGPU := perf.ComputePerIter(1, m.Seq, m.Params()) * bszGPU / total
	return IterResult{
		TotalSec:     total,
		TFlopsPerGPU: flopsPerGPU / 1e12,
		Efficiency:   flopsPerGPU / peak,
	}
}

// Fig5aRow is one cluster of bars in Figure 5a.
type Fig5aRow struct {
	Label        string
	ZeROInfinity IterResult
	ThreeD       IterResult // TFlopsPerGPU == 0 means OOM
}

// Fig5a simulates 500B-20T models on 512 GPUs for ZeRO-Infinity and 3D
// parallelism.
func Fig5a() []Fig5aRow {
	var rows []Fig5aRow
	for _, r := range Table1() {
		if r.Nodes != 32 {
			continue
		}
		zi := SimulateIteration(infinityIter(r))
		td := Simulate3D(perf.DGX2(32), r.shape(), r.BatchGPU, 8, 8)
		rows = append(rows, Fig5aRow{Label: r.Label, ZeROInfinity: zi, ThreeD: td})
	}
	return rows
}

// Fig5bPoint is one point of the Figure 5b weak-scaling study.
type Fig5bPoint struct {
	Nodes           int
	GPUs            int
	TFlopsPerGPU    float64
	TotalPetaflops  float64
	LinearPetaflops float64 // linear extrapolation from the smallest scale
}

// Fig5b sweeps a 1T model from 4 to 32 nodes at constant batch per node.
func Fig5b() []Fig5bPoint {
	shape := perf.ModelShape{Hidden: 25600, Layers: 128, Heads: 16, Seq: 1024, CkptEvery: 1}
	// Paper Table 1 runs the 1T model at batch 5/GPU on 32 nodes; weak
	// scaling keeps that per-node batch (80) constant down to 4 nodes.
	const batchPerNode = 80.0
	var out []Fig5bPoint
	var basePerGPU float64
	for _, nodes := range []int{4, 8, 16, 32} {
		c := perf.DGX2(nodes)
		res := SimulateIteration(IterConfig{
			Cluster:            c,
			Shape:              shape,
			BszGPU:             batchPerNode / float64(c.GPUsPerNode),
			Params:             zero.OnNVMe,
			Optimizer:          zero.OnNVMe,
			Overlap:            true,
			OffloadActivations: true,
		})
		gpus := c.TotalGPUs()
		total := res.TFlopsPerGPU * float64(gpus) / 1000
		if basePerGPU == 0 {
			basePerGPU = res.TFlopsPerGPU
		}
		out = append(out, Fig5bPoint{
			Nodes:           nodes,
			GPUs:            gpus,
			TFlopsPerGPU:    res.TFlopsPerGPU,
			TotalPetaflops:  total,
			LinearPetaflops: basePerGPU * float64(gpus) / 1000,
		})
	}
	return out
}

// Fig5cRow is one bar of Figure 5c: single-node training without model
// parallelism.
type Fig5cRow struct {
	Label  string
	Result IterResult
}

// Fig5c simulates 10B-1T models on one DGX-2 node.
func Fig5c() []Fig5cRow {
	var rows []Fig5cRow
	for _, r := range Table1() {
		if r.Nodes != 1 {
			continue
		}
		rows = append(rows, Fig5cRow{Label: r.Label, Result: SimulateIteration(infinityIter(r))})
	}
	return rows
}

// fig6Cluster builds a cluster restricted to the given GPU count (paper
// appendix configurations use 4-64 GPUs). PCIe aggregate scales with the
// active GPUs up to the node's 48 GB/s switch limit.
func fig6Cluster(gpus int) perf.Cluster {
	nodes := (gpus + 15) / 16
	c := perf.DGX2(nodes)
	if gpus < 16 {
		c.GPUsPerNode = gpus
		agg := 12e9 * float64(gpus)
		if agg > 48e9 {
			agg = 48e9
		}
		c.PCIeAggBW = agg
	}
	return c
}

// Fig6cPoint compares gradient-offload backward time, ZeRO-Infinity's
// bandwidth-centric path vs ZeRO-Offload's single-PCIe path (Table 6: 8B
// model, hd 8192, 10 layers, batch 2/GPU).
type Fig6cPoint struct {
	GPUs           int
	InfinityBwdSec float64
	OffloadBwdSec  float64
	Speedup        float64
}

// Fig6c sweeps 4-64 GPUs.
func Fig6c() []Fig6cPoint {
	shape := perf.ModelShape{Hidden: 8192, Layers: 10, Heads: 16, Seq: 1024, CkptEvery: 1}
	var out []Fig6cPoint
	for _, gpus := range []int{4, 16, 32, 64} {
		base := IterConfig{
			Cluster:   fig6Cluster(gpus),
			Shape:     shape,
			BszGPU:    2,
			Params:    zero.OnGPU,
			Optimizer: zero.OnCPU,
			Overlap:   true,
		}
		inf := SimulateIteration(base)
		// ZeRO-Offload: gradients funnel through a single PCIe link per
		// node and the engine lacks the infinity overlap engine.
		off := base
		off.BroadcastPath = true
		off.Overlap = false
		offRes := SimulateIteration(off)
		out = append(out, Fig6cPoint{
			GPUs:           gpus,
			InfinityBwdSec: inf.BackwardSec,
			OffloadBwdSec:  offRes.BackwardSec,
			Speedup:        offRes.BackwardSec / inf.BackwardSec,
		})
	}
	return out
}

// Fig6dPoint measures the prefetch/overlap ablation (Table 7: 8B model,
// 64 GPUs, batch 2-16 per GPU).
type Fig6dPoint struct {
	BatchGPU    float64
	OverlapTF   float64
	NoOverlapTF float64
	Speedup     float64
}

// Fig6d sweeps batch size with overlap on/off.
func Fig6d() []Fig6dPoint {
	shape := perf.ModelShape{Hidden: 8192, Layers: 10, Heads: 16, Seq: 1024, CkptEvery: 1}
	var out []Fig6dPoint
	for _, bsz := range []float64{2, 4, 8, 10, 14, 16} {
		base := IterConfig{
			Cluster:   perf.DGX2(4),
			Shape:     shape,
			BszGPU:    bsz,
			Params:    zero.OnCPU,
			Optimizer: zero.OnCPU,
		}
		off := base
		base.Overlap = true
		on := SimulateIteration(base)
		offR := SimulateIteration(off)
		out = append(out, Fig6dPoint{
			BatchGPU:    bsz,
			OverlapTF:   on.TFlopsPerGPU,
			NoOverlapTF: offR.TFlopsPerGPU,
			Speedup:     on.TFlopsPerGPU / offR.TFlopsPerGPU,
		})
	}
	return out
}

// Fig6ePoint measures activation-checkpoint CPU offload overhead (Table 8:
// 5-layer models, batch 4/GPU, 32 GPUs; 64K hidden uses NVMe optimizer on
// 64 GPUs).
type Fig6ePoint struct {
	Hidden    int64
	OnGPUTF   float64
	OffloadTF float64
	Slowdown  float64 // ≥ 1; 1 means free offload
}

// Fig6e sweeps hidden sizes.
func Fig6e() []Fig6ePoint {
	var out []Fig6ePoint
	for _, hd := range []int64{2048, 8192, 16384, 32768, 65536} {
		shape := perf.ModelShape{Hidden: hd, Layers: 5, Heads: 16, Seq: 1024, CkptEvery: 1}
		cl := perf.DGX2(2)
		opt := zero.OnCPU
		if hd == 65536 {
			cl = perf.DGX2(4)
			opt = zero.OnNVMe
		}
		base := IterConfig{
			Cluster:   cl,
			Shape:     shape,
			BszGPU:    4,
			Params:    zero.OnGPU,
			Optimizer: opt,
			Overlap:   true,
		}
		on := SimulateIteration(base)
		off := base
		off.OffloadActivations = true
		offR := SimulateIteration(off)
		out = append(out, Fig6ePoint{
			Hidden:    hd,
			OnGPUTF:   on.TFlopsPerGPU,
			OffloadTF: offR.TFlopsPerGPU,
			Slowdown:  on.TFlopsPerGPU / offR.TFlopsPerGPU,
		})
	}
	return out
}
