// Package sim is the performance simulator for the paper's evaluation: a
// deterministic discrete-event model of one training iteration on a DGX-2
// cluster. Each (representative, SPMD-symmetric) GPU owns four execution
// streams — compute, GPU-GPU interconnect, PCIe, and NVMe — and every
// per-layer operation is charged to a stream with a duration derived from
// the paper's Fig. 2b bandwidth envelope and Sec. 4 compute model. Overlap
// falls out of stream concurrency: with the overlap-centric design enabled,
// a layer's nc/cg/gg transfers pipeline ahead of the compute consuming
// them (paper Sec. 6.2); with it disabled every operation serializes onto a
// single timeline, which is exactly the ablation Figure 6d measures.
package sim

// Stream is a resource timeline: operations on the same stream serialize;
// different streams run concurrently.
type Stream struct {
	t    float64 // next free time (seconds)
	busy float64 // total occupied seconds
}

// Run schedules an operation that cannot start before ready and lasts dur;
// it returns the completion time.
func (s *Stream) Run(ready, dur float64) float64 {
	start := s.t
	if ready > start {
		start = ready
	}
	s.t = start + dur
	s.busy += dur
	return s.t
}

// Now returns the stream's next free time.
func (s *Stream) Now() float64 { return s.t }

// Busy returns the stream's total occupancy.
func (s *Stream) Busy() float64 { return s.busy }

// AdvanceTo moves the stream's clock forward to at least t.
func (s *Stream) AdvanceTo(t float64) {
	if t > s.t {
		s.t = t
	}
}

// Timeline groups the per-GPU streams of the iteration model.
type Timeline struct {
	Compute Stream // GPU SMs
	GG      Stream // NVSwitch / InfiniBand collectives
	PCIe    Stream // CPU<->GPU link (this GPU's share)
	NVMe    Stream // NVMe<->CPU (this GPU's share)
}

// Finish returns the latest completion time across all streams.
func (tl *Timeline) Finish() float64 {
	m := tl.Compute.Now()
	for _, s := range []*Stream{&tl.GG, &tl.PCIe, &tl.NVMe} {
		if s.Now() > m {
			m = s.Now()
		}
	}
	return m
}
