package sim

import (
	"math"

	"repro/internal/perf"
	"repro/internal/zero"
)

// IterConfig describes one simulated training iteration.
type IterConfig struct {
	Cluster perf.Cluster
	Shape   perf.ModelShape
	BszGPU  float64 // per-GPU micro batch (fractional values appear in Table 1)

	Params    zero.Placement // fp16 parameter shards
	Optimizer zero.Placement // fp32 optimizer shards
	// GradsVia selects the gradient offload path: with BroadcastPath the
	// engine behaves like ZeRO-Offload (single PCIe link per node carries
	// the traffic, paper Sec. 6.1); otherwise bandwidth-centric
	// partitioning uses every link in parallel.
	BroadcastPath bool

	Overlap            bool // overlap-centric design (prefetcher etc.)
	OffloadActivations bool // activation checkpoints to CPU over PCIe
}

func (c *IterConfig) setDefaults() {
	if c.BszGPU == 0 {
		c.BszGPU = 1
	}
}

// IterResult is the simulated outcome.
type IterResult struct {
	ForwardSec   float64
	BackwardSec  float64
	OptimizerSec float64
	TotalSec     float64
	TFlopsPerGPU float64
	Efficiency   float64 // vs achievable peak
}

// peakFlops interpolates the paper's empirical 62-78 TFlops/GPU achievable
// peak over hidden sizes 8K-64K (Sec. 4.2).
func peakFlops(hidden int64) float64 {
	lo, hi := math.Log2(8192), math.Log2(65536)
	x := (math.Log2(float64(hidden)) - lo) / (hi - lo)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return (62 + 16*x) * 1e12
}

// bandwidths resolved per representative GPU.
type linkBW struct {
	gg        float64 // collective bandwidth per GPU
	pcie      float64 // CPU<->GPU share per GPU
	pcieBcast float64 // single-link PCIe (broadcast path)
	nvme      float64 // NVMe share per GPU
	gpuMem    float64
	cpuMem    float64 // per GPU share of node CPU DRAM bandwidth
}

func resolveBW(c perf.Cluster) linkBW {
	gg := c.GPUToGPUBW
	if c.Nodes > 1 && c.InterNodeBW < gg {
		// Hierarchical collectives: the inter-node stage bottlenecks at the
		// node NIC; intra-node redistribution rides NVSwitch.
		gg = c.InterNodeBW
	}
	gpn := float64(c.GPUsPerNode)
	return linkBW{
		gg:        gg,
		pcie:      c.PCIeAggBW / gpn,
		pcieBcast: c.PCIeSingleBW / gpn, // one active link serves the node
		nvme:      c.NVMeAggBW / gpn,
		gpuMem:    c.GPUMemBW,
		cpuMem:    c.CPUMemBW / gpn,
	}
}

// SimulateIteration runs the stream-timeline model for one iteration.
func SimulateIteration(cfg IterConfig) IterResult {
	cfg.setDefaults()
	c := cfg.Cluster
	m := cfg.Shape
	n := float64(c.TotalGPUs())
	bw := resolveBW(c)
	peak := peakFlops(m.Hidden)

	params := float64(m.Params())
	layers := int(m.Layers)
	if layers > 512 {
		layers = 512 // model at layer-group granularity for very deep nets
	}
	paramsPerLayer := params / float64(layers)
	fp16Layer := 2 * paramsPerLayer

	// Per-layer compute (flops per GPU): forward = 2·bsz·seq·params_layer.
	fwdFlops := 2 * cfg.BszGPU * float64(m.Seq) * paramsPerLayer
	bwdFlops := 2 * fwdFlops // backward ≈ 2× forward
	recFlops := fwdFlops     // checkpoint recomputation

	// Transfer volumes per GPU per layer.
	shardBytes := fp16Layer / n            // this GPU's slice of the layer
	gatherBytes := fp16Layer * (n - 1) / n // received during allgather
	ckptBytes := 2 * cfg.BszGPU * float64(m.Seq) * float64(m.Hidden)

	pcieBW := bw.pcie
	if cfg.BroadcastPath {
		pcieBW = bw.pcieBcast
	}

	tl := &Timeline{}

	// fetch models the source→GPU path for one layer's shard, returning
	// the time the full parameter is available (after allgather).
	fetch := func(ready float64) float64 {
		t := ready
		switch cfg.Params {
		case zero.OnNVMe:
			t = tl.NVMe.Run(t, shardBytes/bw.nvme)
			t = tl.PCIe.Run(t, shardBytes/pcieBW)
		case zero.OnCPU:
			t = tl.PCIe.Run(t, shardBytes/pcieBW)
		}
		if n > 1 {
			t = tl.GG.Run(t, gatherBytes/bw.gg)
		}
		return t
	}
	// With overlap disabled, every stage waits for everything before it.
	sync := func() float64 {
		if cfg.Overlap {
			return 0 // streams run free; dependencies are per-layer only
		}
		return tl.Finish()
	}

	// ---- Forward pass ----
	for l := 0; l < layers; l++ {
		ready := fetch(sync())
		done := tl.Compute.Run(ready, fwdFlops/peak)
		if cfg.OffloadActivations {
			tl.PCIe.Run(done, ckptBytes/bw.pcie)
		}
		if !cfg.Overlap {
			tl.Compute.AdvanceTo(tl.Finish())
		}
	}
	fwdEnd := tl.Finish()

	// ---- Backward pass (reverse layer order) ----
	// Parameters stream three times per iteration with checkpointing (Sec.
	// 4.1): once in forward, once for recomputation, once for backward —
	// matching the functional engine, whose hooks re-gather inside the
	// checkpointed recompute.
	for l := layers - 1; l >= 0; l-- {
		start := sync()
		if cfg.OffloadActivations {
			start = tl.PCIe.Run(start, ckptBytes/bw.pcie) // fetch checkpoint
		}
		ready := fetch(start)
		recDone := tl.Compute.Run(ready, recFlops/peak)
		ready2 := fetch(sync())
		if recDone > ready2 {
			ready2 = recDone
		}
		done := tl.Compute.Run(ready2, bwdFlops/peak)
		// Reduce-scatter gradients, then offload the reduced shard.
		t := done
		if n > 1 {
			t = tl.GG.Run(t, gatherBytes/bw.gg)
		}
		switch cfg.Optimizer {
		case zero.OnNVMe:
			t = tl.PCIe.Run(t, shardBytes/pcieBW)
			tl.NVMe.Run(t, shardBytes/bw.nvme)
		case zero.OnCPU:
			tl.PCIe.Run(t, shardBytes/pcieBW)
		}
		if !cfg.Overlap {
			tl.Compute.AdvanceTo(tl.Finish())
		}
	}
	bwdEnd := tl.Finish()

	// ---- Optimizer step (not overlappable with fwd/bwd, Sec. 4.2) ----
	optBytes := 2 * 16 * params / n // read + write fp32 states, per GPU share
	var optSec float64
	switch cfg.Optimizer {
	case zero.OnNVMe:
		optSec = optBytes/bw.nvme + optBytes/bw.cpuMem
	case zero.OnCPU:
		optSec = optBytes / bw.cpuMem
	default:
		optSec = optBytes / bw.gpuMem
	}
	// Updated fp16 shards return to their tier.
	paramWriteBytes := 2 * params / n
	switch cfg.Params {
	case zero.OnNVMe:
		optSec += paramWriteBytes / bw.nvme
	case zero.OnCPU:
		optSec += paramWriteBytes / bw.cpuMem
	}

	total := bwdEnd + optSec
	flopsPerGPU := perf.ComputePerIter(1, m.Seq, m.Params()) * cfg.BszGPU / total
	return IterResult{
		ForwardSec:   fwdEnd,
		BackwardSec:  bwdEnd - fwdEnd,
		OptimizerSec: optSec,
		TotalSec:     total,
		TFlopsPerGPU: flopsPerGPU / 1e12,
		Efficiency:   flopsPerGPU / peak,
	}
}
