package sim

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/zero"
)

func TestStreamSerializesAndOverlaps(t *testing.T) {
	var a, b Stream
	// Two ops on one stream serialize.
	a.Run(0, 1)
	if end := a.Run(0, 1); end != 2 {
		t.Fatalf("same-stream end = %g, want 2", end)
	}
	// Ops on different streams overlap.
	if end := b.Run(0, 1); end != 1 {
		t.Fatalf("other-stream end = %g, want 1", end)
	}
	// Ready-time gates the start.
	if end := b.Run(5, 1); end != 6 {
		t.Fatalf("gated end = %g, want 6", end)
	}
	if a.Busy() != 2 || b.Busy() != 2 {
		t.Fatalf("busy = %g %g", a.Busy(), b.Busy())
	}
}

func TestPeakFlopsInterpolation(t *testing.T) {
	if p := peakFlops(8192); p != 62e12 {
		t.Fatalf("peak(8K) = %g", p)
	}
	if p := peakFlops(65536); p != 78e12 {
		t.Fatalf("peak(64K) = %g", p)
	}
	mid := peakFlops(23170) // geometric middle
	if mid < 62e12 || mid > 78e12 {
		t.Fatalf("peak(mid) = %g out of range", mid)
	}
	if peakFlops(1024) != 62e12 || peakFlops(1<<20) != 78e12 {
		t.Fatal("clamping failed")
	}
}

func TestOverlapNeverSlower(t *testing.T) {
	for _, r := range Table1() {
		cfg := infinityIter(r)
		on := SimulateIteration(cfg)
		cfg.Overlap = false
		off := SimulateIteration(cfg)
		if on.TotalSec > off.TotalSec*1.0001 {
			t.Fatalf("%s: overlap made it slower: %g vs %g", r.Label, on.TotalSec, off.TotalSec)
		}
	}
}

func TestEfficiencyBounded(t *testing.T) {
	for _, r := range Table1() {
		res := SimulateIteration(infinityIter(r))
		if res.Efficiency <= 0 || res.Efficiency >= 1 {
			t.Fatalf("%s: efficiency %g out of (0,1)", r.Label, res.Efficiency)
		}
		if res.TotalSec <= 0 {
			t.Fatalf("%s: nonpositive iteration time", r.Label)
		}
	}
}

// Figure 5a shape: ZeRO-Infinity ≈ 3D parallelism at 500B; 3D OOMs beyond;
// ZeRO-Infinity sustains tens of TFlops/GPU through 20T with throughput
// declining from 5T to 20T (the paper's 49 → 43 → 34 progression).
func TestFig5aShape(t *testing.T) {
	rows := Fig5a()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	at := func(label string) Fig5aRow {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing %s", label)
		return Fig5aRow{}
	}
	half := at("0.5T")
	if half.ThreeD.TFlopsPerGPU == 0 {
		t.Fatal("3D OOMed at 500B; paper trains it")
	}
	rel := half.ZeROInfinity.TFlopsPerGPU / half.ThreeD.TFlopsPerGPU
	if rel < 0.7 || rel > 1.5 {
		t.Fatalf("0.5T ZeRO/3D ratio = %.2f, paper reports near-identical", rel)
	}
	for _, label := range []string{"5T", "10T", "20T"} {
		r := at(label)
		if r.ThreeD.TFlopsPerGPU != 0 {
			t.Fatalf("3D at %s should OOM", label)
		}
		if r.ZeROInfinity.TFlopsPerGPU < 20 || r.ZeROInfinity.TFlopsPerGPU > 70 {
			t.Fatalf("%s ZeRO-Infinity = %.1f TF/GPU, want tens of TFlops", label, r.ZeROInfinity.TFlopsPerGPU)
		}
	}
	if !(at("5T").ZeROInfinity.TFlopsPerGPU >= at("10T").ZeROInfinity.TFlopsPerGPU &&
		at("10T").ZeROInfinity.TFlopsPerGPU >= at("20T").ZeROInfinity.TFlopsPerGPU) {
		t.Fatal("throughput should decline from 5T to 20T (shrinking batch)")
	}
}

// Figure 5b shape: superlinear weak scaling 64→512 GPUs for the 1T model,
// exceeding 25 total petaflops at 512 GPUs and ≥ 2.8 petaflops at 64.
func TestFig5bSuperlinear(t *testing.T) {
	pts := Fig5b()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].TotalPetaflops < 2.0 {
		t.Fatalf("4-node total = %.2f pflops, paper reports 2.8", pts[0].TotalPetaflops)
	}
	last := pts[len(pts)-1]
	if last.TotalPetaflops < 20 {
		t.Fatalf("32-node total = %.1f pflops, paper reports >25", last.TotalPetaflops)
	}
	// Superlinear: actual ≥ linear extrapolation at every scale.
	for _, p := range pts[1:] {
		if p.TotalPetaflops < p.LinearPetaflops*0.999 {
			t.Fatalf("%d nodes: %.2f pflops below linear %.2f", p.Nodes, p.TotalPetaflops, p.LinearPetaflops)
		}
	}
	// Per-GPU throughput must not degrade with scale.
	if last.TFlopsPerGPU < pts[0].TFlopsPerGPU {
		t.Fatal("per-GPU throughput degraded with scale")
	}
}

// Figure 5c shape: ≥40 TF/GPU through 100B on a single node; 1T still
// trains (no model parallelism) at reduced throughput.
func TestFig5cShape(t *testing.T) {
	rows := Fig5c()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Label {
		case "10B", "50B", "100B":
			if r.Result.TFlopsPerGPU < 35 {
				t.Fatalf("%s = %.1f TF/GPU, paper reports >40", r.Label, r.Result.TFlopsPerGPU)
			}
		case "0.5T", "1T":
			if r.Result.TFlopsPerGPU <= 5 {
				t.Fatalf("%s = %.1f TF/GPU, should still train", r.Label, r.Result.TFlopsPerGPU)
			}
		}
	}
}

// Figure 6c shape: bandwidth-centric partitioning beats ZeRO-Offload's
// single-PCIe path at every scale, by 1.2-2x (the paper reports ≈2x at 64
// GPUs; see EXPERIMENTS.md for where the trend differs).
func TestFig6cBandwidthCentricWins(t *testing.T) {
	pts := Fig6c()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Speedup < 1.2 || p.Speedup > 4 {
			t.Fatalf("%d GPUs: speedup %.2fx outside [1.2, 4]", p.GPUs, p.Speedup)
		}
		if p.InfinityBwdSec >= p.OffloadBwdSec {
			t.Fatalf("%d GPUs: infinity backward not faster", p.GPUs)
		}
	}
}

// Figure 6d shape: overlap/prefetch speedup is large at batch 2 and
// diminishes toward 1 at batch 16.
func TestFig6dOverlapAblation(t *testing.T) {
	pts := Fig6d()
	first, last := pts[0], pts[len(pts)-1]
	if first.BatchGPU != 2 || last.BatchGPU != 16 {
		t.Fatalf("unexpected batch sweep %v..%v", first.BatchGPU, last.BatchGPU)
	}
	if first.Speedup < 1.15 {
		t.Fatalf("batch-2 overlap speedup = %.2fx, want noticeable (>1.15x)", first.Speedup)
	}
	if last.Speedup > first.Speedup {
		t.Fatal("speedup should diminish with batch size")
	}
	if last.Speedup < 0.99 {
		t.Fatalf("batch-16 speedup = %.2f < 1", last.Speedup)
	}
}

// Figure 6e shape: activation-checkpoint offload costs up to ~1.2x at small
// hidden sizes and is nearly free at 32K-64K.
func TestFig6eActivationOffloadOverhead(t *testing.T) {
	pts := Fig6e()
	if pts[0].Hidden != 2048 || pts[len(pts)-1].Hidden != 65536 {
		t.Fatal("unexpected hidden sweep")
	}
	small := pts[0]
	if small.Slowdown < 1.02 || small.Slowdown > 1.6 {
		t.Fatalf("hd 2K slowdown = %.2fx, paper reports up to 1.2x", small.Slowdown)
	}
	for _, p := range pts {
		if p.Hidden >= 32768 && p.Slowdown > 1.05 {
			t.Fatalf("hd %dK slowdown = %.2fx, should be minimal", p.Hidden/1024, p.Slowdown)
		}
	}
	// Overhead decreases with hidden size.
	for i := 1; i < len(pts); i++ {
		if pts[i].Slowdown > pts[i-1].Slowdown+0.02 {
			t.Fatalf("slowdown increased at hd %d", pts[i].Hidden)
		}
	}
}

// Anchor: 500B on 512 GPUs lands in the paper's TFlops range and the 3D
// model responds to its knobs.
func TestSimulate3DKnobs(t *testing.T) {
	shape := perf.ModelShape{Hidden: 18432, Layers: 124, Heads: 16, Seq: 1024, CkptEvery: 1}
	c := perf.DGX2(32)
	base := Simulate3D(c, shape, 7, 8, 8)
	if base.TFlopsPerGPU < 25 || base.TFlopsPerGPU > 70 {
		t.Fatalf("3D 500B = %.1f TF/GPU, want paper-range tens", base.TFlopsPerGPU)
	}
	// Deeper pipeline at tiny batch → bigger bubble → slower.
	slow := Simulate3D(c, shape, 0.25, 8, 32)
	if slow.TFlopsPerGPU >= base.TFlopsPerGPU {
		t.Fatal("pipeline bubble had no effect")
	}
	// A model that cannot fit reports OOM.
	big := perf.ModelShape{Hidden: 65536, Layers: 200, Heads: 16, Seq: 1024, CkptEvery: 1}
	if res := Simulate3D(c, big, 2, 8, 8); res.TFlopsPerGPU != 0 {
		t.Fatal("10T 3D should OOM on 32 nodes")
	}
}

func TestBroadcastPathOnlyAffectsPCIe(t *testing.T) {
	// With params and optimizer on GPU, BroadcastPath must be a no-op.
	cfg := IterConfig{
		Cluster:   perf.DGX2(1),
		Shape:     perf.ModelShape{Hidden: 8192, Layers: 10, Heads: 16, Seq: 1024, CkptEvery: 1},
		BszGPU:    2,
		Params:    zero.OnGPU,
		Optimizer: zero.OnGPU,
		Overlap:   true,
	}
	a := SimulateIteration(cfg)
	cfg.BroadcastPath = true
	b := SimulateIteration(cfg)
	if a.TotalSec != b.TotalSec {
		t.Fatal("broadcast path changed a GPU-only run")
	}
}
