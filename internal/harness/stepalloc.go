package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// The stepalloc experiment surfaces the allocation-free steady-state work:
// it trains the stage-3 and infinity engines for a few steps and reports
// each step's wall time and heap-allocation count (Stats.AllocsPerStep /
// Z3Engine.AllocsPerStep, a process-global runtime-metrics allocation
// delta). Step 1 warms the scratch arenas, the collective op pool and the
// gather trace; later steps' engine+comm+tensor contribution is zero, so
// the residual count is the model's activation allocations only.

type stepAllocRun struct {
	stepMS []float64
	allocs []uint64
	losses []float64
}

// runStepAllocEngineOnly trains the allocation-free stub model
// (zero.NewAllocFreeStub) on the real Z3 engine with overlap+prefetch and
// returns the minimum AllocsPerStep over the post-warm-up steps — the
// engine+comm+tensor hot path's own allocation count, which must be zero.
// The minimum over windows filters the Go runtime's sporadic bookkeeping
// allocations exactly as TestSteadyStateZeroAllocs does; a real engine
// leak recurs every step and survives the minimum. The stub run keeps the
// flat fabric (a -topology spec need not divide its 2 ranks) but honours
// the partitioning strategy.
func runStepAllocEngineOnly(warmup, steps int) (uint64, error) {
	const ranks = 2
	minAllocs := ^uint64(0)
	var mu sync.Mutex
	var firstErr error
	comm.Run(ranks, func(c *comm.Comm) {
		m := zero.NewAllocFreeStub(4, 51)
		e, err := zero.NewZ3Engine(zero.Config{LossScale: 1, Seed: 11, Backend: backend,
			Overlap: true, PrefetchDepth: 2, Partition: fabricPart}, c, m)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		tok := make([]int, 1)
		tgt := make([]int, 1)
		for s := 0; s < warmup+steps; s++ {
			e.Step(tok, tgt, 1)
			if s >= warmup && c.Rank() == 0 {
				mu.Lock()
				if e.AllocsPerStep < minAllocs {
					minAllocs = e.AllocsPerStep
				}
				mu.Unlock()
			}
		}
	})
	return minAllocs, firstErr
}

func runStepAllocVariant(engine string, ranks, steps int) (stepAllocRun, error) {
	mcfg := model.Config{Vocab: 32, Hidden: 32, Heads: 4, Seq: 12, Layers: 4}
	var out stepAllocRun
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	comm.Run(ranks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) (zero.StepResult, uint64, error)
		switch engine {
		case "zero3":
			e, err := zero.NewZ3Engine(zero.Config{LossScale: 256, Seed: 42, Backend: backend,
				PrefetchDepth: overlapDepth, Overlap: overlapEnabled,
				Partition: fabricPart, Topology: fabricTopo}, c, g)
			if err != nil {
				fail(err)
				return
			}
			step = func(tok, tgt []int) (zero.StepResult, uint64, error) {
				res := e.Step(tok, tgt, 2)
				return res, e.AllocsPerStep, nil
			}
		default: // infinity-gpu
			e, err := core.NewInfinityEngine(core.Config{LossScale: 256, Seed: 42, Backend: backend,
				PrefetchDepth: overlapDepth, Overlap: overlapEnabled,
				Partition: fabricPart, Topology: fabricTopo}, c, g)
			if err != nil {
				fail(err)
				return
			}
			defer e.Close()
			step = func(tok, tgt []int) (zero.StepResult, uint64, error) {
				res, err := e.Step(tok, tgt, 2)
				return res, e.Stats().AllocsPerStep, err
			}
		}
		var local stepAllocRun
		for s := 0; s < steps; s++ {
			rng := tensor.NewRNG(uint64(9000 + s*100 + c.Rank()))
			tok, tgt := model.SyntheticBatch(rng, mcfg, 2)
			start := time.Now()
			res, allocs, err := step(tok, tgt)
			if err != nil {
				fail(err)
				return
			}
			local.stepMS = append(local.stepMS, float64(time.Since(start).Microseconds())/1000)
			local.allocs = append(local.allocs, allocs)
			local.losses = append(local.losses, res.Loss)
		}
		if c.Rank() == 0 {
			mu.Lock()
			out = local
			mu.Unlock()
		}
	})
	return out, firstErr
}

func init() {
	register(Experiment{
		ID:    "stepalloc",
		Title: "Allocation-free steady state: per-step heap allocations and wall time",
		Claim: "after step 1 warms the scratch arenas, the engine+comm+tensor hot path stops allocating",
		Run: func(w io.Writer) error {
			const ranks, steps = 4, 6
			engineAllocs, err := runStepAllocEngineOnly(3, 4)
			if err != nil {
				return fmt.Errorf("engine-only: %w", err)
			}
			fmt.Fprintf(w, "engine+comm+tensor hot path (stub model, overlap+prefetch): %d allocs/step steady\n\n",
				engineAllocs)
			emitRecord(Record{
				Name:  "zinf/stepalloc/zero3-engine/steady",
				Unit:  "allocs/step",
				Value: float64(engineAllocs),
			})
			for _, engine := range []string{"zero3", "infinity-gpu"} {
				run, err := runStepAllocVariant(engine, ranks, steps)
				if err != nil {
					return fmt.Errorf("%s: %w", engine, err)
				}
				fmt.Fprintf(w, "engine %s (%d ranks, backend %s):\n", engine, ranks, backend.Name())
				tb := newTable(w)
				tb.row("step", "ms", "allocs/step", "loss")
				for s := range run.stepMS {
					tb.row(s, fmt.Sprintf("%.2f", run.stepMS[s]), run.allocs[s],
						fmt.Sprintf("%.6f", run.losses[s]))
				}
				tb.flush()
				// Steady state = minimum over the post-warm-up steps: the
				// model's activation allocations recur identically every
				// step, while GC/runtime bookkeeping spikes are sporadic —
				// the minimum keeps the former and filters the latter, so
				// the committed baseline is stable enough to ratio-gate.
				first := run.allocs[0]
				last := run.allocs[1]
				steadyMS := run.stepMS[1]
				for s := 2; s < len(run.allocs); s++ {
					if run.allocs[s] < last {
						last = run.allocs[s]
					}
					if run.stepMS[s] < steadyMS {
						steadyMS = run.stepMS[s]
					}
				}
				if last == 0 {
					fmt.Fprintf(w, "  step-1 allocs %d -> steady 0 (fully allocation-free)\n\n", first)
				} else {
					fmt.Fprintf(w, "  step-1 allocs %d -> steady %d (%.1fx fewer; residual = model activations)\n\n",
						first, last, float64(first)/float64(last))
				}
				// Unit "model-allocs/step": the full-step record including
				// the model's forward/backward, which the step-scoped
				// activation arena makes allocation-free — benchdiff
				// hard-gates it at zero like the engine record, and
				// ratio-gates the first_step_allocs warmup extra.
				emitRecord(Record{
					Name:  "zinf/stepalloc/" + engine + "/steady",
					Unit:  "model-allocs/step",
					Value: float64(last),
					Extra: map[string]float64{
						"first_step_allocs": float64(first),
						"steady_ms":         steadyMS,
					},
				})
			}
			return nil
		},
	})
}
