package harness

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Table 1: experiment configurations",
		Claim: "model geometries, batch sizes and placements used across the evaluation",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("nodes", "params", "hidden", "layers", "batch/GPU", "mp", "fp16 param", "opt state")
			for _, r := range sim.Table1() {
				t.row(r.Nodes, r.Label, r.Hidden, r.Layers, r.BatchGPU, r.MP,
					r.ParamPlace.String(), r.OptPlace.String())
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5a: throughput vs model size on 512 GPUs",
		Claim: "parity with 3D at 500B; 3D OOMs past ~650B; ZeRO-Infinity up to 49 TF/GPU at 5T, 43 at 10T, 34 at 20T",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("model", "ZeRO-Infinity TF/GPU", "3D parallelism TF/GPU")
			for _, r := range sim.Fig5a() {
				td := "OOM"
				if r.ThreeD.TFlopsPerGPU > 0 {
					td = fmt.Sprintf("%.1f", r.ThreeD.TFlopsPerGPU)
				}
				t.row(r.Label, fmt.Sprintf("%.1f", r.ZeROInfinity.TFlopsPerGPU), td)
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5b: superlinear weak scaling of a 1T model",
		Claim: "2.8 pflops on 64 GPUs growing superlinearly past 25 pflops on 512",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("nodes", "gpus", "TF/GPU", "total pflops", "linear pflops")
			for _, p := range sim.Fig5b() {
				t.row(p.Nodes, p.GPUs, fmt.Sprintf("%.1f", p.TFlopsPerGPU),
					fmt.Sprintf("%.2f", p.TotalPetaflops), fmt.Sprintf("%.2f", p.LinearPetaflops))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig5c",
		Title: "Figure 5c: 10B-1T on a single DGX-2 node, no model parallelism",
		Claim: ">40 TF/GPU through 100B; 1T still trains on 16 GPUs",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("model", "TF/GPU", "efficiency")
			for _, r := range sim.Fig5c() {
				t.row(r.Label, fmt.Sprintf("%.1f", r.Result.TFlopsPerGPU),
					fmt.Sprintf("%.0f%%", 100*r.Result.Efficiency))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6c-sim",
		Title: "Figure 6c (simulator): gradient offload, ZeRO-Infinity vs ZeRO-Offload",
		Claim: "aggregate-PCIe gradient path beats single-PCIe by up to ~2x backward time",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("gpus", "infinity bwd (s)", "offload bwd (s)", "speedup")
			for _, p := range sim.Fig6c() {
				t.row(p.GPUs, fmt.Sprintf("%.2f", p.InfinityBwdSec),
					fmt.Sprintf("%.2f", p.OffloadBwdSec), fmt.Sprintf("%.2fx", p.Speedup))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6d",
		Title: "Figure 6d: speedup from communication overlap and prefetching",
		Claim: "crucial at small batch sizes; impact diminishes at large batch",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("batch/GPU", "overlap TF/GPU", "no-overlap TF/GPU", "speedup")
			for _, p := range sim.Fig6d() {
				t.row(p.BatchGPU, fmt.Sprintf("%.1f", p.OverlapTF),
					fmt.Sprintf("%.1f", p.NoOverlapTF), fmt.Sprintf("%.2fx", p.Speedup))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6e",
		Title: "Figure 6e: overhead of CPU activation-checkpoint offload",
		Claim: "up to 1.2x slowdown at small hidden sizes; minimal at 32K-64K",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("hidden", "on-GPU TF/GPU", "offloaded TF/GPU", "slowdown")
			for _, p := range sim.Fig6e() {
				t.row(p.Hidden, fmt.Sprintf("%.1f", p.OnGPUTF),
					fmt.Sprintf("%.1f", p.OffloadTF), fmt.Sprintf("%.2fx", p.Slowdown))
			}
			t.flush()
			return nil
		},
	})
}
