package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"equiv", "fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig3c",
		"fig5a", "fig5b", "fig5c", "fig6a", "fig6b-analytic", "fig6b-engine",
		"fig6b-functional", "fig6c", "fig6c-sim", "fig6d", "fig6e", "nvme-bw",
		"overlap", "stepalloc", "tab1", "tab2", "tab3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5a"); !ok {
		t.Fatal("fig5a missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
}

// Every analytic/simulated experiment must run cleanly and print rows.
func TestAnalyticAndSimExperimentsProduceOutput(t *testing.T) {
	for _, id := range []string{
		"fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig3c",
		"fig5a", "fig5b", "fig5c", "fig6a", "fig6b-analytic",
		"fig6c-sim", "fig6d", "fig6e", "tab1", "tab2", "tab3",
	} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := Run(&buf, e); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if lines := strings.Count(buf.String(), "\n"); lines < 4 {
			t.Fatalf("%s: only %d lines of output", id, lines)
		}
	}
}

// The functional experiments are slower; run them too (they double as
// integration tests across comm+model+zero+core+nvme).
func TestFunctionalExperiments(t *testing.T) {
	for _, id := range []string{"equiv", "fig6b-engine", "fig6b-functional", "nvme-bw", "overlap"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := Run(&buf, e); err != nil {
			t.Fatalf("%s: %v\n%s", id, err, buf.String())
		}
		if id == "equiv" && !strings.Contains(buf.String(), "BIT-IDENTICAL") {
			t.Fatalf("equiv output missing verdicts:\n%s", buf.String())
		}
		if id == "fig6b-functional" || id == "fig6b-engine" {
			out := buf.String()
			if !strings.Contains(out, "OOM (fragmented)") || !strings.Contains(out, "trains") {
				t.Fatalf("%s did not show both outcomes:\n%s", id, out)
			}
		}
		if id == "fig6b-engine" && !strings.Contains(buf.String(), "reduction") {
			t.Fatalf("fig6b-engine missing max-live reduction line:\n%s", buf.String())
		}
	}
}

// The fig6c acceptance property: on a multi-node topology, 1/dp slicing's
// param-gather aggregate bandwidth beats owner-rank broadcast's, the run
// emits machine-readable records for both, and (asserted inside the
// experiment) the two strategies' losses are bit-identical.
func TestFig6cSlicingBeatsBroadcast(t *testing.T) {
	e, ok := ByID("fig6c")
	if !ok {
		t.Fatal("fig6c missing")
	}
	ResetRecords()
	defer ResetRecords()
	var buf bytes.Buffer
	if err := Run(&buf, e); err != nil {
		t.Fatalf("fig6c: %v\n%s", err, buf.String())
	}
	var slice, bcast float64
	for _, r := range Records() {
		switch r.Name {
		case "zinf/fig6c/slice/gather":
			slice = r.Value
		case "zinf/fig6c/broadcast/gather":
			bcast = r.Value
		}
	}
	if slice == 0 || bcast == 0 {
		t.Fatalf("fig6c records missing: slice=%v broadcast=%v", slice, bcast)
	}
	if slice <= bcast {
		t.Fatalf("slicing %.2f GB/s not above broadcast %.2f GB/s", slice, bcast)
	}
	if !strings.Contains(buf.String(), "bit-identical") {
		t.Fatalf("fig6c output missing bit-identity note:\n%s", buf.String())
	}
}

func TestFmtParams(t *testing.T) {
	cases := map[int64]string{
		1_400_000_000:      "1.4B",
		32_000_000_000_000: "32.0T",
		500_000_000:        "500M",
	}
	for in, want := range cases {
		if got := fmtParams(in); got != want {
			t.Errorf("fmtParams(%d) = %q, want %q", in, got, want)
		}
	}
}

var _ = io.Discard
