package harness

import (
	"encoding/json"
	"io"
)

// Record is one machine-readable measurement emitted by an experiment — the
// schema zinf-bench's -json mode serializes (a BENCH_*.json-style artifact
// CI uploads so regressions in step time or allocation count are diffable
// across commits).
type Record struct {
	// Name identifies the series, e.g. "zinf/stepalloc/zero3/steady".
	Name string `json:"name"`
	// Unit is the measurement unit ("ms/step", "allocs/step", ...).
	Unit string `json:"unit"`
	// Value is the measurement.
	Value float64 `json:"value"`
	// Extra carries secondary counters keyed by name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

var records []Record

// emitRecord appends a measurement to the run's record list.
func emitRecord(r Record) { records = append(records, r) }

// Records returns the measurements collected by the experiments run so far.
func Records() []Record { return records }

// ResetRecords clears the collected measurements.
func ResetRecords() { records = nil }

// WriteRecords serializes the collected records as an indented JSON document
// with run metadata — the payload of zinf-bench -json.
func WriteRecords(w io.Writer, backendName string) error {
	doc := struct {
		Bench   string   `json:"bench"`
		Backend string   `json:"backend"`
		Records []Record `json:"records"`
	}{
		Bench:   "zinf-bench",
		Backend: backendName,
		Records: records,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
