package harness

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// The fig6c experiment is the real-engine counterpart of the paper's
// Fig. 6c (impact of bandwidth-centric partitioning): it trains the same
// stage-3 model on a multi-node topology under both partitioning strategies
// and reports each strategy's achieved aggregate bandwidth for the
// parameter-gather and gradient-reduce collectives. Per-parameter 1/dp
// slicing turns every gather into an all-links allgather; owner-rank
// broadcast funnels the whole parameter through the owner's links, so its
// achieved bandwidth is bounded by a single uplink. Both strategies produce
// bit-identical losses — the experiment fails if they diverge, or if
// slicing does not win on bandwidth.

// fig6cTopology is the canonical fabric the experiment (and its committed
// bench baseline) runs on: 4 nodes × 2 ranks, fast intra-node links, scarce
// inter-node uplinks.
func fig6cTopology() *comm.Topology {
	return &comm.Topology{Nodes: 4, NodeSize: 2, IntraGBps: 100, InterGBps: 10}
}

type fig6cRun struct {
	losses  []float64
	gather  comm.TrafficStats
	reduce  comm.TrafficStats
	total   comm.TrafficStats
	gatherK string
	reduceK string
}

func runFig6cVariant(part zero.Partitioning, topo *comm.Topology, ranks, steps int) (fig6cRun, error) {
	mcfg := model.Config{Vocab: 32, Hidden: 32, Heads: 4, Seq: 12, Layers: 2}
	gatherK, reduceK := "allgatherhalfdecode", "reducescatterhalfdecode"
	if part == zero.PartitionBroadcast {
		gatherK, reduceK = "broadcasthalf", "reducehalfdecode"
	}
	var out fig6cRun
	var mu sync.Mutex
	var firstErr error
	comm.Run(ranks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := zero.NewZ3Engine(zero.Config{LossScale: 256, Seed: 42, Backend: backend,
			PrefetchDepth: overlapDepth, Overlap: overlapEnabled,
			Partition: part, Topology: topo}, c, g)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		var losses []float64
		for s := 0; s < steps; s++ {
			rng := tensor.NewRNG(uint64(6000 + s*100 + c.Rank()))
			tok, tgt := model.SyntheticBatch(rng, mcfg, 2)
			losses = append(losses, e.Step(tok, tgt, 2).Loss)
		}
		if c.Rank() == 0 {
			tr := e.CommTraffic()
			mu.Lock()
			out = fig6cRun{
				losses: losses,
				gather: tr[gatherK], reduce: tr[reduceK],
				total:   e.CommTrafficTotal(),
				gatherK: gatherK, reduceK: reduceK,
			}
			mu.Unlock()
		}
	})
	return out, firstErr
}

func init() {
	register(Experiment{
		ID:    "fig6c",
		Title: "Fig. 6c (real engines): bandwidth-centric partitioning vs owner-rank broadcast",
		Claim: "per-parameter 1/dp slicing keeps every link busy, achieving a multiple of the owner-rank broadcast's aggregate bandwidth — with bit-identical training",
		Run: func(w io.Writer) error {
			const ranks, steps = 8, 3
			topo := fig6cTopology()
			if fabricTopo != nil {
				topo = fabricTopo
			}
			slice, err := runFig6cVariant(zero.PartitionSlice, topo, ranks, steps)
			if err != nil {
				return fmt.Errorf("slice: %w", err)
			}
			bcast, err := runFig6cVariant(zero.PartitionBroadcast, topo, ranks, steps)
			if err != nil {
				return fmt.Errorf("broadcast: %w", err)
			}
			for s := range slice.losses {
				if slice.losses[s] != bcast.losses[s] {
					return fmt.Errorf("strategies diverged at step %d: %.17g vs %.17g",
						s, slice.losses[s], bcast.losses[s])
				}
			}
			fmt.Fprintf(w, "topology %s, %d ranks, %d steps (losses bit-identical across strategies)\n",
				topo, ranks, steps)
			tb := newTable(w)
			tb.row("partition", "collective", "ops", "MB moved", "MB inter", "sim ms", "agg GB/s")
			row := func(name, kind string, tr comm.TrafficStats) {
				tb.row(name, kind, tr.Ops,
					fmt.Sprintf("%.2f", float64(tr.Bytes())/1e6),
					fmt.Sprintf("%.2f", float64(tr.InterBytes)/1e6),
					fmt.Sprintf("%.3f", tr.Seconds*1e3),
					fmt.Sprintf("%.2f", tr.AggGBps()))
			}
			row("slice", slice.gatherK, slice.gather)
			row("slice", slice.reduceK, slice.reduce)
			row("broadcast", bcast.gatherK, bcast.gather)
			row("broadcast", bcast.reduceK, bcast.reduce)
			tb.flush()
			fmt.Fprintf(w, "  param gather: slicing %.2f GB/s vs broadcast %.2f GB/s (%.1fx)\n",
				slice.gather.AggGBps(), bcast.gather.AggGBps(),
				slice.gather.AggGBps()/bcast.gather.AggGBps())
			fmt.Fprintf(w, "  whole step:   slicing %.3f ms vs broadcast %.3f ms simulated transfer\n\n",
				slice.total.Seconds*1e3, bcast.total.Seconds*1e3)
			emitRecord(Record{
				Name:  "zinf/fig6c/slice/gather",
				Unit:  "GB/s",
				Value: slice.gather.AggGBps(),
				Extra: map[string]float64{
					"sim_ms":      slice.gather.Seconds * 1e3,
					"bytes":       float64(slice.gather.Bytes()),
					"inter_bytes": float64(slice.gather.InterBytes),
				},
			})
			emitRecord(Record{
				Name:  "zinf/fig6c/broadcast/gather",
				Unit:  "GB/s",
				Value: bcast.gather.AggGBps(),
				Extra: map[string]float64{
					"sim_ms":      bcast.gather.Seconds * 1e3,
					"bytes":       float64(bcast.gather.Bytes()),
					"inter_bytes": float64(bcast.gather.InterBytes),
				},
			})
			if slice.gather.AggGBps() <= bcast.gather.AggGBps() {
				return fmt.Errorf("1/dp slicing gather bandwidth %.2f GB/s did not beat owner broadcast %.2f GB/s",
					slice.gather.AggGBps(), bcast.gather.AggGBps())
			}
			return nil
		},
	})
}
