package harness

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/nvme"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// equivModel is the model used by the functional verification experiments.
func equivModel(ckpt bool) model.Config {
	return model.Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2, CheckpointActivations: ckpt}
}

// trainLosses trains the named engine for steps on ranks goroutine-GPUs and
// returns the global loss trajectory.
func trainLosses(engine string, ranks, steps int) ([]float64, error) {
	mcfg := equivModel(engine == "infinity-nvme-ckpt")
	var losses []float64
	var mu sync.Mutex
	var firstErr error
	comm.Run(ranks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) (zero.StepResult, error)
		switch engine {
		case "ddp", "zero1", "zero2", "zero-offload":
			cfg := zero.Config{LossScale: 256, Seed: 42, Backend: backend}
			switch engine {
			case "zero1":
				cfg.Stage = zero.Stage1
			case "zero2":
				cfg.Stage = zero.Stage2
			case "zero-offload":
				cfg.Stage = zero.Stage2
				cfg.OffloadOptimizer = true
			}
			e, err := zero.NewDPEngine(cfg, c, g)
			if err != nil {
				mu.Lock()
				firstErr = err
				mu.Unlock()
				return
			}
			step = func(tok, tgt []int) (zero.StepResult, error) { return e.Step(tok, tgt, 2), nil }
		case "zero3", "zero3-overlap":
			zcfg := zero.Config{LossScale: 256, Seed: 42, Backend: backend}
			if engine == "zero3-overlap" {
				zcfg.PrefetchDepth = overlapDepth
				zcfg.Overlap = true
			}
			e, err := zero.NewZ3Engine(zcfg, c, g)
			if err != nil {
				mu.Lock()
				firstErr = err
				mu.Unlock()
				return
			}
			step = func(tok, tgt []int) (zero.StepResult, error) { return e.Step(tok, tgt, 2), nil }
		default: // infinity variants
			cfg := core.Config{LossScale: 256, Seed: 42, Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 2, Backend: backend}
			if engine == "infinity-cpu" {
				cfg.Params, cfg.Optimizer = zero.OnCPU, zero.OnCPU
			}
			if engine == "infinity-nvme-ckpt" {
				cfg.OffloadActivations = true
			}
			if engine == "infinity-overlap" {
				cfg.PrefetchDepth = overlapDepth
				cfg.Overlap = true
			}
			e, err := core.NewInfinityEngine(cfg, c, g)
			if err != nil {
				mu.Lock()
				firstErr = err
				mu.Unlock()
				return
			}
			defer e.Close()
			step = func(tok, tgt []int) (zero.StepResult, error) { return e.Step(tok, tgt, 2) }
		}
		var local []float64
		for s := 0; s < steps; s++ {
			rng := tensor.NewRNG(uint64(7000 + s*100 + c.Rank()))
			tok, tgt := model.SyntheticBatch(rng, mcfg, 2)
			res, err := step(tok, tgt)
			if err != nil {
				mu.Lock()
				firstErr = err
				mu.Unlock()
				return
			}
			local = append(local, res.Loss)
		}
		if c.Rank() == 0 {
			mu.Lock()
			losses = local
			mu.Unlock()
		}
	})
	return losses, firstErr
}

// budgetRun is one rank-0 observation from runInfinityBudget.
type budgetRun struct {
	loss  float64
	stats core.Stats
}

// runInfinityBudget trains mcfg on the real ZeRO-Infinity engine (CPU
// placements) for a few steps, optionally under a pre-fragmented GPU
// working-set budget — the real-engine Fig. 6b protocol. It returns rank
// 0's final loss and stats, or the first error (a budget violation
// surfaces as an error wrapping mem.ErrFragmented / mem.ErrOutOfMemory).
func runInfinityBudget(mcfg model.Config, budget, chunk int64) (budgetRun, error) {
	const ranks, steps = 2, 2
	var out budgetRun
	var mu sync.Mutex
	var firstErr error
	comm.Run(ranks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := core.NewInfinityEngine(core.Config{
			Params: zero.OnCPU, Optimizer: zero.OnCPU,
			GPUMemory: budget, PreFragment: chunk,
			LossScale: 256, Seed: 42, Backend: backend,
		}, c, g)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		defer e.Close()
		var last float64
		for s := 0; s < steps; s++ {
			rng := tensor.NewRNG(uint64(6200 + s*100 + c.Rank()))
			tok, tgt := model.SyntheticBatch(rng, mcfg, 2)
			res, serr := e.Step(tok, tgt, 2)
			if serr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = serr
				}
				mu.Unlock()
				return
			}
			last = res.Loss
		}
		if c.Rank() == 0 {
			mu.Lock()
			out = budgetRun{loss: last, stats: e.Stats()}
			mu.Unlock()
		}
	})
	return out, firstErr
}

func init() {
	register(Experiment{
		ID:    "equiv",
		Title: "Functional: every engine trains bit-identically to DDP",
		Claim: "ZeRO stages and ZeRO-Infinity are memory optimizations, not algorithm changes",
		Run: func(w io.Writer) error {
			const ranks, steps = 4, 4
			ref, err := trainLosses("ddp", ranks, steps)
			if err != nil {
				return err
			}
			engines := []string{"zero1", "zero2", "zero-offload", "zero3",
				"infinity-cpu", "infinity-nvme", "infinity-nvme-ckpt"}
			if overlapEnabled {
				engines = append(engines, "zero3-overlap", "infinity-overlap")
			}
			t := newTable(w)
			t.row("engine", "loss[0]", "loss[last]", "vs DDP")
			t.row("ddp", fmt.Sprintf("%.9f", ref[0]), fmt.Sprintf("%.9f", ref[len(ref)-1]), "reference")
			for _, name := range engines {
				got, err := trainLosses(name, ranks, steps)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				status := "BIT-IDENTICAL"
				for i := range ref {
					if got[i] != ref[i] {
						status = fmt.Sprintf("DIVERGED at step %d", i)
						break
					}
				}
				t.row(name, fmt.Sprintf("%.9f", got[0]), fmt.Sprintf("%.9f", got[len(got)-1]), status)
				if status != "BIT-IDENTICAL" {
					t.flush()
					return fmt.Errorf("engine %s diverged from DDP", name)
				}
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6b-functional",
		Title: "Figure 6b (functional): memory-centric tiling under pre-fragmented memory",
		Claim: "dense operator OOMs with fragmentation; tiled equivalent trains with identical outputs",
		Run: func(w io.Writer) error {
			const in, out, rows = 64, 256, 4
			const chunk = 8 << 10
			x := tensor.New(tensor.FP32, rows, in)
			tensor.NewRNG(11).FillNormal(x.Float32s(), 1)

			t := newTable(w)
			t.row("tiles", "max param alloc", "result")
			for _, tiles := range []int{1, 2, 8} {
				alloc := mem.NewAllocator(1 << 20)
				alloc.PreFragment(chunk)
				hooks := core.NewAllocHooks(alloc, 77)
				rt := module.NewRuntime(hooks)
				rt.SetBackend(backend)
				op := model.NewTiledLinear("op", in, out, tiles, true, 0.2)
				err := core.RunUnderBudget(func() {
					y := rt.Forward(op, x)
					rt.Backward(op, y.Clone())
				})
				res := "trains"
				if err != nil {
					if errors.Is(err, mem.ErrFragmented) {
						res = "OOM (fragmented)"
					} else {
						res = "OOM"
					}
				}
				t.row(tiles, mem.FormatBytes(op.MaxParamBytes()), res)
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6b-engine",
		Title: "Figure 6b (real engine): model-wide tiling under a pre-fragmented GPU budget",
		Claim: "dense GPT OOMs gathering its projections on fragmented memory; the tiled model trains and cuts max live param bytes by ~the tile factor",
		Run: func(w io.Writer) error {
			const budget, chunk = 1 << 20, 4 << 10
			base := model.Config{Vocab: 16, Hidden: 32, Heads: 2, Seq: 6, Layers: 1}
			tiled := base
			tiled.Tiling = tilingFactor

			denseFree, err := runInfinityBudget(base, 0, 0)
			if err != nil {
				return fmt.Errorf("dense unbudgeted run: %w", err)
			}
			t := newTable(w)
			t.row("model", "gpu budget", "result", "max live params")
			t.row("dense", "unlimited", fmt.Sprintf("trains (loss %.4f)", denseFree.loss),
				mem.FormatBytes(denseFree.stats.MaxLiveParamBytes))

			denseOOM, err := runInfinityBudget(base, budget, chunk)
			if err == nil {
				return fmt.Errorf("dense model trained under the fragmented budget (max live %s)",
					mem.FormatBytes(denseOOM.stats.MaxLiveParamBytes))
			}
			if !core.ErrIsOOM(err) {
				return fmt.Errorf("dense budgeted run failed for the wrong reason: %w", err)
			}
			t.row("dense", fmt.Sprintf("%s/%s chunks", mem.FormatBytes(budget), mem.FormatBytes(chunk)),
				"OOM (fragmented)", "-")

			tiledRun, err := runInfinityBudget(tiled, budget, chunk)
			if err != nil {
				return fmt.Errorf("tiled (x%d) budgeted run: %w", tilingFactor, err)
			}
			t.row(fmt.Sprintf("tiled x%d", tilingFactor),
				fmt.Sprintf("%s/%s chunks", mem.FormatBytes(budget), mem.FormatBytes(chunk)),
				fmt.Sprintf("trains (loss %.4f)", tiledRun.loss),
				mem.FormatBytes(tiledRun.stats.MaxLiveParamBytes))
			t.flush()
			fmt.Fprintf(w, "max live param bytes: dense %s -> tiled %s (%.1fx reduction)\n",
				mem.FormatBytes(denseFree.stats.MaxLiveParamBytes),
				mem.FormatBytes(tiledRun.stats.MaxLiveParamBytes),
				float64(denseFree.stats.MaxLiveParamBytes)/float64(tiledRun.stats.MaxLiveParamBytes))
			return nil
		},
	})

	register(Experiment{
		ID:    "nvme-bw",
		Title: "Functional: DeepNVMe-style engine reaches near-peak store bandwidth",
		Claim: "aggressive request parallelization from one user thread approaches device peak",
		Run: func(w io.Writer) error {
			const total = 64 << 20
			buf := make([]byte, total)
			t := newTable(w)
			t.row("workers", "write GB/s", "read GB/s")
			for _, workers := range []int{1, 2, 4, 8} {
				e := nvme.NewEngine(nvme.NewMemStore(total), nvme.Options{Workers: workers, ChunkSize: 1 << 20})
				start := time.Now()
				const reps = 8
				for i := 0; i < reps; i++ {
					if err := e.Write(buf, 0); err != nil {
						return err
					}
				}
				wbw := float64(total*reps) / time.Since(start).Seconds() / 1e9
				start = time.Now()
				for i := 0; i < reps; i++ {
					if err := e.Read(buf, 0); err != nil {
						return err
					}
				}
				rbw := float64(total*reps) / time.Since(start).Seconds() / 1e9
				e.Close()
				t.row(workers, fmt.Sprintf("%.1f", wbw), fmt.Sprintf("%.1f", rbw))
			}
			t.flush()
			return nil
		},
	})
}
