// Package harness registers one runnable experiment per table and figure of
// the paper, each printing the corresponding rows/series. cmd/zinf-bench and
// the repository-level benchmarks drive it.
package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// backend is the compute backend the functional experiments build their
// engines on. Experiments stay bit-identical across backends, so switching
// it only changes wall-clock time.
var backend = tensor.Reference()

// SetBackend selects the compute backend for subsequent experiment runs
// (nil restores the serial reference backend).
func SetBackend(be tensor.Backend) { backend = tensor.DefaultBackend(be) }

// tilingFactor is the memory-centric tiling factor the real-engine Fig. 6b
// experiment and the tiled functional runs use (zinf-bench's -tiling flag).
var tilingFactor = 4

// SetTiling selects the tiling factor for subsequent experiment runs
// (values below 2 restore the default of 4; it must divide the experiment
// models' hidden and vocab sizes).
func SetTiling(t int) {
	if t < 2 {
		t = 4
	}
	tilingFactor = t
}

// fabricTopo/fabricPart configure the communication fabric the functional
// experiments (stepalloc, overlap) build their engines on, set by
// zinf-bench's -topology/-partition flags. The fig6c experiment ignores the
// partition knob (it inherently contrasts both strategies) but honours a
// custom topology. Defaults — flat fabric, 1/dp slicing — keep the
// committed bench baselines comparable.
var (
	fabricTopo *comm.Topology
	fabricPart zero.Partitioning
)

// SetFabric selects the topology (nil = flat) and partitioning strategy for
// subsequent experiment runs.
func SetFabric(topo *comm.Topology, part zero.Partitioning) {
	fabricTopo = topo
	fabricPart = part
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string // stable id, e.g. "fig5a"
	Title string // paper artifact name
	Claim string // what the paper reports (the shape to verify)
	Run   func(w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes the experiment with a header.
func Run(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "== %s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "   paper: %s\n", e.Claim)
	return e.Run(w)
}

// table is a small helper around tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// fmtParams renders a parameter count as e.g. "1.4B" or "32T".
func fmtParams(p int64) string {
	switch {
	case p >= 1e12:
		return fmt.Sprintf("%.1fT", float64(p)/1e12)
	case p >= 1e9:
		return fmt.Sprintf("%.1fB", float64(p)/1e9)
	default:
		return fmt.Sprintf("%.0fM", float64(p)/1e6)
	}
}
