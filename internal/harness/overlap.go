package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// Overlap knobs, set by zinf-bench's -prefetch / -overlap flags.
var (
	overlapDepth   = 2
	overlapEnabled = true
)

// SetOverlap configures the read-ahead depth and async-reduce toggle the
// overlap experiments run with.
func SetOverlap(depth int, enabled bool) {
	overlapDepth = depth
	overlapEnabled = enabled
}

// overlapRun trains one engine variant and captures per-step wall time plus
// the engine's overlap counters from rank 0.
type overlapRun struct {
	stepMS []float64
	losses []float64
	stats  core.Stats
}

func runOverlapVariant(engine string, depth int, async bool, ranks, steps int) (overlapRun, error) {
	mcfg := model.Config{Vocab: 32, Hidden: 32, Heads: 4, Seq: 12, Layers: 4}
	var out overlapRun
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	comm.Run(ranks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) (zero.StepResult, error)
		var stats func() core.Stats
		switch engine {
		case "zero3":
			e, err := zero.NewZ3Engine(zero.Config{LossScale: 256, Seed: 42, Backend: backend,
				PrefetchDepth: depth, Overlap: async,
				Partition: fabricPart, Topology: fabricTopo}, c, g)
			if err != nil {
				fail(err)
				return
			}
			step = func(tok, tgt []int) (zero.StepResult, error) { return e.Step(tok, tgt, 2), nil }
			stats = func() core.Stats {
				return core.Stats{Gathers: e.Gathers, CommPrefetchIssued: e.PrefetchIssued,
					CommPrefetchHits: e.PrefetchHits, AsyncReduces: e.AsyncReduces,
					AllocsPerStep: e.AllocsPerStep}
			}
		default: // infinity-nvme
			e, err := core.NewInfinityEngine(core.Config{LossScale: 256, Seed: 42, Backend: backend,
				Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
				PrefetchDepth: depth, Overlap: async,
				Partition: fabricPart, Topology: fabricTopo}, c, g)
			if err != nil {
				fail(err)
				return
			}
			defer e.Close()
			step = func(tok, tgt []int) (zero.StepResult, error) { return e.Step(tok, tgt, 2) }
			stats = e.Stats
		}
		var local overlapRun
		for s := 0; s < steps; s++ {
			rng := tensor.NewRNG(uint64(7000 + s*100 + c.Rank()))
			tok, tgt := model.SyntheticBatch(rng, mcfg, 2)
			start := time.Now()
			res, err := step(tok, tgt)
			if err != nil {
				fail(err)
				return
			}
			local.stepMS = append(local.stepMS, float64(time.Since(start).Microseconds())/1000)
			local.losses = append(local.losses, res.Loss)
		}
		local.stats = stats()
		if c.Rank() == 0 {
			mu.Lock()
			out = local
			mu.Unlock()
		}
	})
	return out, firstErr
}

func init() {
	register(Experiment{
		ID:    "overlap",
		Title: "Fig. 6d (real engines): overlap-centric async collectives + gather prefetch",
		Claim: "overlapping communication with compute speeds up the step without changing a single bit",
		Run: func(w io.Writer) error {
			if !overlapEnabled {
				fmt.Fprintln(w, "overlap disabled (-overlap=false); nothing to ablate")
				return nil
			}
			const ranks, steps = 4, 6
			for _, engine := range []string{"zero3", "infinity-nvme"} {
				sync, err := runOverlapVariant(engine, 0, false, ranks, steps)
				if err != nil {
					return fmt.Errorf("%s sync: %w", engine, err)
				}
				over, err := runOverlapVariant(engine, overlapDepth, true, ranks, steps)
				if err != nil {
					return fmt.Errorf("%s overlap: %w", engine, err)
				}
				fmt.Fprintf(w, "engine %s (depth %d): step-level overlap stats\n", engine, overlapDepth)
				t := newTable(w)
				t.row("step", "sync ms", "overlap ms", "loss", "identical")
				var sumSync, sumOver float64
				for s := range sync.stepMS {
					same := "yes"
					if sync.losses[s] != over.losses[s] {
						same = "NO"
					}
					t.row(s, fmt.Sprintf("%.2f", sync.stepMS[s]), fmt.Sprintf("%.2f", over.stepMS[s]),
						fmt.Sprintf("%.6f", over.losses[s]), same)
					sumSync += sync.stepMS[s]
					sumOver += over.stepMS[s]
					if same == "NO" {
						t.flush()
						return fmt.Errorf("%s: overlap diverged at step %d", engine, s)
					}
				}
				t.flush()
				st := over.stats
				fmt.Fprintf(w, "  allgather prefetch %d issued / %d hits, %d async reduce-scatters",
					st.CommPrefetchIssued, st.CommPrefetchHits, st.AsyncReduces)
				if st.PrefetchIssued > 0 {
					fmt.Fprintf(w, ", NVMe prefetch %d issued / %d hits", st.PrefetchIssued, st.PrefetchHits)
				}
				fmt.Fprintf(w, "\n  total %.2f ms sync vs %.2f ms overlap (%.2fx)\n\n",
					sumSync, sumOver, sumSync/sumOver)
				emitRecord(Record{
					Name:  "zinf/overlap/" + engine,
					Unit:  "ms/run",
					Value: sumOver,
					Extra: map[string]float64{
						"sync_ms":            sumSync,
						"prefetch_hits":      float64(st.CommPrefetchHits),
						"async_reduces":      float64(st.AsyncReduces),
						"steady_allocs_step": float64(st.AllocsPerStep),
					},
				})
			}
			fmt.Fprintln(w, "(the simulator's Fig. 6d ablation models the same effect: zinf-bench -run fig6d)")
			return nil
		},
	})
}
