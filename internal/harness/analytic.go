package harness

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/zero"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: max model size, 3D parallelism vs ZeRO-Infinity",
		Claim: "ZeRO-Infinity trains 32T params on 32 DGX-2 nodes, ~50x 3D parallelism",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("nodes", "gpus", "3D max", "ZeRO-Infinity max", "ratio")
			for _, p := range perf.Fig1([]int{1, 4, 8, 16, 32}, 1) {
				t.row(p.Nodes, p.Nodes*16, fmtParams(p.ThreeD), fmtParams(p.ZeROInf),
					fmt.Sprintf("%.0fx", p.ScaleRatio))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig2a",
		Title: "Figure 2a: memory requirements for massive models",
		Claim: "100B model states = 1.8TB; 10T act ckpt = 0.76TB; MSWM grows multi-GB past 100B",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("model", "hidden", "layers", "params", "model states", "act (no ckpt)", "act ckpt", "MSWM", "AWM")
			for _, r := range perf.Fig2a(32) {
				t.row(r.Label, r.Shape.Hidden, r.Shape.Layers, fmtParams(r.Params),
					mem.FormatBytes(r.ModelStates), mem.FormatBytes(r.ActFull),
					mem.FormatBytes(r.ActCkpt), mem.FormatBytes(r.MSWM), mem.FormatBytes(r.AWM))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig2b",
		Title: "Figure 2b: DGX-2 memory and achievable bandwidth envelope",
		Claim: "GPU 0.5TB/node, CPU 1.5TB, NVMe 28TB; PCIe 3.0 GB/s/GPU agg, NVMe 1.6 GB/s/GPU",
		Run: func(w io.Writer) error {
			c := perf.DGX2(1)
			t := newTable(w)
			t.row("resource", "value")
			t.row("GPU memory / node", mem.FormatBytes(c.AggGPUMemory()))
			t.row("CPU memory / node", mem.FormatBytes(c.CPUMemory))
			t.row("NVMe / node", mem.FormatBytes(c.NVMeMemory))
			t.row("GPU-GPU bw / GPU", fmt.Sprintf("%.0f GB/s", c.GPUToGPUBW/1e9))
			t.row("PCIe single GPU", fmt.Sprintf("%.0f GB/s", c.PCIeSingleBW/1e9))
			t.row("PCIe all-GPU share", fmt.Sprintf("%.1f GB/s/GPU", c.PerGPUPCIeBW()/1e9))
			t.row("NVMe all-GPU share", fmt.Sprintf("%.2f GB/s/GPU", c.PerGPUNVMeBW()/1e9))
			t.row("achievable peak", fmt.Sprintf("%.0f TFlops/GPU", c.PeakTFlopsPerGP))
			t.flush()
			return nil
		},
	})

	fig3 := func(id, title, claim string, series func() []perf.Fig3Series) {
		register(Experiment{
			ID: id, Title: title, Claim: claim,
			Run: func(w io.Writer) error {
				t := newTable(w)
				t.row("series", "bw for 50%", "bw for 90%", "eff @2GB/s", "eff @70GB/s", "eff @1.5TB/s")
				for _, s := range series() {
					t.row(s.Label,
						fmt.Sprintf("%.2f GB/s", bwAt(s, 0.5)),
						fmt.Sprintf("%.1f GB/s", bwAt(s, 0.9)),
						fmt.Sprintf("%.0f%%", 100*effAt(s, 2)),
						fmt.Sprintf("%.0f%%", 100*effAt(s, 70)),
						fmt.Sprintf("%.0f%%", 100*effAt(s, 1500)))
				}
				t.flush()
				return nil
			},
		})
	}
	fig3("fig3a", "Figure 3a: efficiency vs parameter/gradient bandwidth",
		">70 GB/s gives >50% efficiency even at batch 1", perf.Fig3a)
	fig3("fig3b", "Figure 3b: efficiency vs optimizer-state bandwidth",
		"~4x the bandwidth of params/grads; 90% at batch 2 needs ~1.5 TB/s", perf.Fig3b)
	fig3("fig3c", "Figure 3c: efficiency vs activation-checkpoint bandwidth",
		"2 GB/s sustains >50% at hd 2K; <1 GB/s suffices at hd ≥ 8K", perf.Fig3c)

	register(Experiment{
		ID:    "fig6a",
		Title: "Figure 6a: max model size per strategy on one DGX-2",
		Claim: "1.4B (DP) → 13B (ZeRO-2/Offload) → ~20B (ZeRO-3/3D) → ~100B (Inf-CPU) → 1T (Inf-NVMe); 700x total",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("strategy", "max params")
			for _, r := range perf.Fig6a() {
				t.row(r.Strategy.String(), fmtParams(r.MaxParams))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6b-analytic",
		Title: "Figure 6b (analytic): max hidden size vs memory-centric tiling factor",
		Claim: "64K hidden with tiling factor 16 under 2GB fragmentation (matches paper); untiled max 16K vs paper's 8K",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("tiling factor", "max hidden")
			for _, tiles := range []int64{1, 2, 4, 16, 64} {
				t.row(tiles, perf.Fig6bMaxHidden(tiles, 2*perf.GB))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "tab3",
		Title: "Table 3: bandwidth needs for 10x/100x accelerators",
		Claim: "3/30/300 GB/s slow-memory per device; 70/700/7000 GB/s device-device",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("accelerator", "devices", "peak pflops/dev", "slow-mem GB/s/dev", "slow-mem agg TB/s", "dev-dev GB/s")
			for _, r := range perf.Table3() {
				t.row(r.Label, r.Devices, fmt.Sprintf("%.2f", r.PeakPFlopsPerDevice),
					fmt.Sprintf("%.0f", r.SlowMemBWPerDevice),
					fmt.Sprintf("%.1f", r.SlowMemAggregateTBps),
					fmt.Sprintf("%.0f", r.GPUToGPUBW))
			}
			t.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "tab2",
		Title: "Table 2: device placement and partitioning strategies",
		Claim: "taxonomy of DP, ZeRO-2, ZeRO-Offload, 3D, ZeRO-3, Inf-CPU, Inf-NVMe",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("name", "opt+grad devices", "opt+grad part.", "param devices", "param part.")
			for _, s := range zero.Table2() {
				t.row(s.Name, placements(s.OptGradDevices), s.OptGradPartition,
					placements(s.ParamDevices), s.ParamPartition)
			}
			t.flush()
			return nil
		},
	})
}

func placements(ps []zero.Placement) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += ","
		}
		out += p.String()
	}
	return "[" + out + "]"
}

func bwAt(s perf.Fig3Series, eff float64) float64 {
	for _, p := range s.Points {
		if p.Efficiency >= eff {
			return p.BandwidthGBps
		}
	}
	return -1
}

func effAt(s perf.Fig3Series, bwGBps float64) float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.BandwidthGBps <= bwGBps {
			best = p.Efficiency
		}
	}
	return best
}
