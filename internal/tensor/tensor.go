package tensor

import (
	"fmt"
	"strings"
)

// DType identifies the storage precision of a Tensor.
type DType int

// Supported dtypes. FP16 models parameter/gradient/activation storage in
// mixed-precision training; FP32 models master weights and optimizer states.
const (
	FP32 DType = iota
	FP16
)

// Bytes returns the per-element storage size of the dtype.
func (d DType) Bytes() int {
	if d == FP16 {
		return 2
	}
	return 4
}

// String returns the conventional name of the dtype.
func (d DType) String() string {
	if d == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Tensor is a dense row-major tensor. FP32 tensors alias their float32
// backing slice directly (zero copy); FP16 tensors store binary16 words and
// convert on access. The zero value is an empty FP32 tensor.
type Tensor struct {
	dtype DType
	shape []int
	f32   []float32
	f16   []Half
}

// New allocates a zeroed tensor with the given dtype and shape.
func New(dt DType, shape ...int) *Tensor {
	n := NumElems(shape)
	t := &Tensor{dtype: dt, shape: append([]int(nil), shape...)}
	if dt == FP16 {
		t.f16 = make([]Half, n)
	} else {
		t.f32 = make([]float32, n)
	}
	return t
}

// FromSlice wraps data (without copying) as an FP32 tensor with the given
// shape. It panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	if NumElems(shape) != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elems, got %d", shape, NumElems(shape), len(data)))
	}
	return &Tensor{dtype: FP32, shape: append([]int(nil), shape...), f32: data}
}

// FromHalf wraps data (without copying) as an FP16 tensor with the given
// shape. It panics if len(data) does not match the shape.
func FromHalf(data []Half, shape ...int) *Tensor {
	if NumElems(shape) != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elems, got %d", shape, NumElems(shape), len(data)))
	}
	return &Tensor{dtype: FP16, shape: append([]int(nil), shape...), f16: data}
}

// NumElems returns the product of the dims, 1 for an empty shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim in shape %v", shape))
		}
		n *= d
	}
	return n
}

// DType returns the tensor's storage precision.
//
//zinf:hotpath
func (t *Tensor) DType() DType { return t.dtype }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
//
//zinf:hotpath
func (t *Tensor) Shape() []int { return t.shape }

// ResetFP32Matrix reinitializes t in place as a [rows, cols] FP32 tensor
// viewing data (no copy) — the allocation-free analogue of FromSlice for
// pooled tensor headers (mem.StepArena): the retained shape slice is reused,
// so a recycled header costs zero heap allocations.
//
//zinf:hotpath
func (t *Tensor) ResetFP32Matrix(data []float32, rows, cols int) {
	if rows*cols != len(data) {
		panic("tensor: ResetFP32Matrix data length does not match rows*cols")
	}
	t.dtype = FP32
	t.f16 = nil
	t.f32 = data
	t.shape = append(t.shape[:0], rows, cols)
}

// Len returns the number of elements.
//
//zinf:hotpath
func (t *Tensor) Len() int {
	if t.dtype == FP16 {
		return len(t.f16)
	}
	return len(t.f32)
}

// SizeBytes returns the storage footprint of the tensor in bytes.
func (t *Tensor) SizeBytes() int64 { return int64(t.Len()) * int64(t.dtype.Bytes()) }

// Dim returns the size of dimension i.
//
//zinf:hotpath
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at flat index i as float32.
func (t *Tensor) At(i int) float32 {
	if t.dtype == FP16 {
		return t.f16[i].Float32()
	}
	return t.f32[i]
}

// Set stores v at flat index i, rounding to FP16 if needed.
func (t *Tensor) Set(i int, v float32) {
	if t.dtype == FP16 {
		t.f16[i] = HalfFromFloat32(v)
		return
	}
	t.f32[i] = v
}

// Float32s returns the backing float32 slice of an FP32 tensor.
// It panics for FP16 tensors; use Read for a converting copy.
//
//zinf:hotpath
func (t *Tensor) Float32s() []float32 {
	if t.dtype != FP32 {
		panic("tensor: Float32s on fp16 tensor")
	}
	return t.f32
}

// Halfs returns the backing binary16 slice of an FP16 tensor.
// It panics for FP32 tensors.
//
//zinf:hotpath
func (t *Tensor) Halfs() []Half {
	if t.dtype != FP16 {
		panic("tensor: Halfs on fp32 tensor")
	}
	return t.f16
}

// Read copies the tensor's values into dst as float32, converting from FP16
// if needed. It panics if dst is shorter than t.Len().
func (t *Tensor) Read(dst []float32) {
	if t.dtype == FP16 {
		DecodeHalf(dst, t.f16)
		return
	}
	copy(dst, t.f32)
}

// Write copies src into the tensor, rounding to FP16 if needed. It panics if
// src is shorter than t.Len().
func (t *Tensor) Write(src []float32) {
	if t.dtype == FP16 {
		EncodeHalf(t.f16, src[:len(t.f16)])
		return
	}
	copy(t.f32, src)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dtype, t.shape...)
	if t.dtype == FP16 {
		copy(c.f16, t.f16)
	} else {
		copy(c.f32, t.f32)
	}
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	if t.dtype == FP16 {
		for i := range t.f16 {
			t.f16[i] = 0
		}
		return
	}
	for i := range t.f32 {
		t.f32[i] = 0
	}
}

// Fill sets every element to v (rounded for FP16).
func (t *Tensor) Fill(v float32) {
	if t.dtype == FP16 {
		h := HalfFromFloat32(v)
		for i := range t.f16 {
			t.f16[i] = h
		}
		return
	}
	for i := range t.f32 {
		t.f32[i] = v
	}
}

// Cast returns a copy of the tensor converted to dt. Casting FP32→FP16
// rounds to nearest-even; FP16→FP32 is exact.
func (t *Tensor) Cast(dt DType) *Tensor {
	c := New(dt, t.shape...)
	switch {
	case t.dtype == dt:
		if dt == FP16 {
			copy(c.f16, t.f16)
		} else {
			copy(c.f32, t.f32)
		}
	case dt == FP16:
		EncodeHalf(c.f16, t.f32)
	default:
		DecodeHalf(c.f32, t.f16)
	}
	return c
}

// Reshape returns a view with the same backing data and a new shape.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if NumElems(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size", t.shape, shape))
	}
	return &Tensor{dtype: t.dtype, shape: append([]int(nil), shape...), f32: t.f32, f16: t.f16}
}

// String renders a compact description, e.g. "fp16[4 8]".
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v", t.dtype, t.shape)
	return b.String()
}

// Equal reports whether a and b have the same dtype, shape and bitwise-equal
// contents.
func Equal(a, b *Tensor) bool {
	if a.dtype != b.dtype || len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	if a.dtype == FP16 {
		for i := range a.f16 {
			if a.f16[i] != b.f16[i] {
				return false
			}
		}
		return true
	}
	for i := range a.f32 {
		if a.f32[i] != b.f32[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between a
// and b, reading both as float32. It panics if lengths differ.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := 0; i < a.Len(); i++ {
		d := float64(a.At(i)) - float64(b.At(i))
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
