package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulSmall(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	MatMul(c, a, b, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 7
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := make([]float32, n*n)
	NewRNG(7).FillNormal(a, 1)
	c := make([]float32, n*n)
	MatMul(c, a, id, n, n, n)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A*I != A at %d: %g vs %g", i, c[i], a[i])
		}
	}
}

// Property: MatMulTransB(c, a, b) == MatMul(c, a, transpose(b)).
func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(11)
	for iter := 0; iter < 50; iter++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := make([]float32, m*k)
		b := make([]float32, n*k)
		rng.FillNormal(a, 1)
		rng.FillNormal(b, 1)
		bt := make([]float32, k*n)
		Transpose(bt, b, n, k)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		MatMulTransB(c1, a, b, m, k, n)
		MatMul(c2, a, bt, m, k, n)
		for i := range c1 {
			if !almostEq(float64(c1[i]), float64(c2[i]), 1e-4) {
				t.Fatalf("iter %d: TransB[%d]=%g explicit=%g", iter, i, c1[i], c2[i])
			}
		}
	}
}

// Property: MatMulTransA(c, a, b) accumulates transpose(a)·b into c.
func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(13)
	for iter := 0; iter < 50; iter++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := make([]float32, k*m)
		b := make([]float32, k*n)
		rng.FillNormal(a, 1)
		rng.FillNormal(b, 1)
		at := make([]float32, m*k)
		Transpose(at, a, k, m)
		c1 := make([]float32, m*n)
		c1[0] = 5 // accumulate semantics: pre-existing content must be kept
		c2 := make([]float32, m*n)
		MatMulTransA(c1, a, b, m, k, n)
		MatMul(c2, at, b, m, k, n)
		c2[0] += 5
		for i := range c1 {
			if !almostEq(float64(c1[i]), float64(c2[i]), 1e-4) {
				t.Fatalf("iter %d: TransA[%d]=%g explicit=%g", iter, i, c1[i], c2[i])
			}
		}
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	const m, n = 5, 9
	x := make([]float32, m*n)
	NewRNG(3).FillNormal(x, 4)
	SoftmaxRows(x, m, n)
	for i := 0; i < m; i++ {
		s := Sum(x[i*n : (i+1)*n])
		if !almostEq(s, 1, 1e-5) {
			t.Errorf("row %d sums to %g", i, s)
		}
		for j := 0; j < n; j++ {
			if x[i*n+j] < 0 {
				t.Errorf("negative probability at (%d,%d)", i, j)
			}
		}
	}
}

func TestSoftmaxStableUnderLargeInputs(t *testing.T) {
	x := []float32{1e4, 1e4 + 1, 1e4 - 1}
	SoftmaxRows(x, 1, 3)
	if HasNaNOrInf(x) {
		t.Fatalf("softmax overflowed: %v", x)
	}
	if !almostEq(Sum(x), 1, 1e-5) {
		t.Fatalf("softmax sum = %g", Sum(x))
	}
}

// Finite-difference check of the softmax backward pass.
func TestSoftmaxRowsBackwardFiniteDiff(t *testing.T) {
	const n = 6
	rng := NewRNG(17)
	x := make([]float32, n)
	dy := make([]float32, n)
	rng.FillNormal(x, 1)
	rng.FillNormal(dy, 1)

	y := append([]float32(nil), x...)
	SoftmaxRows(y, 1, n)
	dx := make([]float32, n)
	SoftmaxRowsBackward(dx, dy, y, 1, n)

	const h = 1e-3
	for i := 0; i < n; i++ {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += h
		xm[i] -= h
		SoftmaxRows(xp, 1, n)
		SoftmaxRows(xm, 1, n)
		var num float64
		for j := 0; j < n; j++ {
			num += float64(dy[j]) * (float64(xp[j]) - float64(xm[j])) / (2 * h)
		}
		if !almostEq(num, float64(dx[i]), 1e-3) {
			t.Errorf("softmax grad[%d]: analytic %g numeric %g", i, dx[i], num)
		}
	}
}

func TestGeluBackwardFiniteDiff(t *testing.T) {
	xs := []float32{-3, -1, -0.1, 0, 0.1, 1, 3}
	dy := make([]float32, len(xs))
	for i := range dy {
		dy[i] = 1
	}
	dx := make([]float32, len(xs))
	GeluBackward(dx, dy, xs)
	const h = 1e-4
	for i, x := range xs {
		num := (float64(geluScalar(x+h)) - float64(geluScalar(x-h))) / (2 * h)
		if !almostEq(num, float64(dx[i]), 1e-3) {
			t.Errorf("gelu'(%g): analytic %g numeric %g", x, dx[i], num)
		}
	}
}

func TestGeluKnownValues(t *testing.T) {
	if g := geluScalar(0); g != 0 {
		t.Errorf("gelu(0) = %g, want 0", g)
	}
	if g := geluScalar(10); !almostEq(float64(g), 10, 1e-4) {
		t.Errorf("gelu(10) = %g, want ~10", g)
	}
	if g := geluScalar(-10); !almostEq(float64(g), 0, 1e-4) {
		t.Errorf("gelu(-10) = %g, want ~0", g)
	}
}

func TestAxpyAddMulScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Fatalf("Axpy got %v", y)
	}
	dst := make([]float32, 3)
	Add(dst, x, x)
	if dst[2] != 6 {
		t.Fatalf("Add got %v", dst)
	}
	Mul(dst, x, x)
	if dst[2] != 9 {
		t.Fatalf("Mul got %v", dst)
	}
	Scale(0.5, dst)
	if dst[2] != 4.5 {
		t.Fatalf("Scale got %v", dst)
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("Dot = %g, want 14", d)
	}
}

func TestHasNaNOrInf(t *testing.T) {
	if HasNaNOrInf([]float32{1, 2, 3}) {
		t.Error("clean slice flagged")
	}
	if !HasNaNOrInf([]float32{1, float32(math.NaN())}) {
		t.Error("NaN not detected")
	}
	if !HasNaNOrInf([]float32{float32(math.Inf(-1))}) {
		t.Error("-Inf not detected")
	}
}

func TestMaxAbsAndL2(t *testing.T) {
	x := []float32{-5, 3, 4}
	if m := MaxAbs(x); m != 5 {
		t.Errorf("MaxAbs = %g", m)
	}
	if n := L2Norm([]float32{3, 4}); !almostEq(n, 5, 1e-9) {
		t.Errorf("L2Norm = %g", n)
	}
	if m := MaxAbs(nil); m != 0 {
		t.Errorf("MaxAbs(nil) = %g", m)
	}
}

// quick property: Dot is symmetric and bilinear in scaling.
func TestDotQuickProperties(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float32{}, a...), b...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e18 {
				return true
			}
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		return almostEq(d1, d2, math.Abs(d1)*1e-9+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	const n = 128
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	c := make([]float32, n*n)
	NewRNG(1).FillNormal(a, 1)
	NewRNG(2).FillNormal(bb, 1)
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb, n, n, n)
	}
	reportGFLOPS(b, 2*n*n*n)
}
