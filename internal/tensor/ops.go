package tensor

import "math"

// This file holds the float32 compute kernels. All kernels operate on raw
// []float32 in row-major layout and accumulate in float32 (or float64 for
// reductions), mirroring tensor-core matmuls with fp32 accumulators.

// MatMul computes C = A·B where A is m×k, B is k×n and C is m×n.
// It panics if slice lengths don't match the dims.
//
// Zero rows of A skip their B row entirely — the sparsity fast path that
// makes causal-masked attention affordable — but only when B is fully
// finite: IEEE 0·NaN and 0·Inf are NaN, and the loss scaler's overflow
// detection relies on NaN/Inf in B surfacing in C rather than being
// silently dropped. The O(k·n) finiteness scan is negligible next to the
// O(m·k·n) multiply.
func MatMul(c, a, b []float32, m, k, n int) {
	checkLen("MatMul c", c, m*n)
	checkLen("MatMul a", a, m*k)
	checkLen("MatMul b", b, k*n)
	skipZero := !HasNaNOrInf(b[:k*n])
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if skipZero && av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k, B is n×k and C is m×n.
func MatMulTransB(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransB c", c, m*n)
	checkLen("MatMulTransB a", a, m*k)
	checkLen("MatMulTransB b", b, n*k)
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
}

// MatMulTransA computes C += Aᵀ·B where A is k×m, B is k×n and C is m×n.
// The accumulate-into semantics fit weight-gradient computation, where
// gradients from successive micro-steps are summed.
// As in MatMul, the zero-skip fast path is disabled when B holds NaN/Inf so
// non-finite gradients propagate into C instead of being dropped.
func MatMulTransA(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransA c", c, m*n)
	checkLen("MatMulTransA a", a, k*m)
	checkLen("MatMulTransA b", b, k*n)
	skipZero := !HasNaNOrInf(b[:k*n])
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i, av := range ap {
			if skipZero && av == 0 {
				continue
			}
			ci := c[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// Axpy computes y += alpha*x elementwise.
func Axpy(alpha float32, x, y []float32) {
	checkLen("Axpy y", y, len(x))
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Add computes dst = a + b elementwise.
func Add(dst, a, b []float32) {
	checkLen("Add dst", dst, len(a))
	checkLen("Add b", b, len(a))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Mul computes dst = a * b elementwise.
func Mul(dst, a, b []float32) {
	checkLen("Mul dst", dst, len(a))
	checkLen("Mul b", b, len(a))
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the float64-accumulated dot product of a and b.
func Dot(a, b []float32) float64 {
	checkLen("Dot b", b, len(a))
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Sum returns the float64-accumulated sum of x.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the maximum absolute value in x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the float64-accumulated Euclidean norm of x.
func L2Norm(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// HasNaNOrInf reports whether x contains a NaN or infinity. The mixed
// precision loss scaler uses it to detect fp16 gradient overflow.
func HasNaNOrInf(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// Gelu applies the tanh-approximated GELU activation, dst = gelu(x).
// dst and x may alias.
func Gelu(dst, x []float32) {
	checkLen("Gelu dst", dst, len(x))
	for i, v := range x {
		dst[i] = geluScalar(v)
	}
}

const (
	geluC  = 0.7978845608028654 // sqrt(2/pi)
	geluC3 = 0.044715
)

func geluScalar(v float32) float32 {
	x := float64(v)
	return float32(0.5 * x * (1 + math.Tanh(geluC*(x+geluC3*x*x*x))))
}

// GeluBackward computes dx = dy * gelu'(x).
func GeluBackward(dx, dy, x []float32) {
	checkLen("GeluBackward dx", dx, len(x))
	checkLen("GeluBackward dy", dy, len(x))
	for i, v := range x {
		xf := float64(v)
		inner := geluC * (xf + geluC3*xf*xf*xf)
		t := math.Tanh(inner)
		dinner := geluC * (1 + 3*geluC3*xf*xf)
		grad := 0.5*(1+t) + 0.5*xf*(1-t*t)*dinner
		dx[i] = dy[i] * float32(grad)
	}
}

// SoftmaxRows applies a numerically-stable softmax to each row of the m×n
// matrix x in place.
func SoftmaxRows(x []float32, m, n int) {
	checkLen("SoftmaxRows x", x, m*n)
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			row[j] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// SoftmaxRowsBackward computes, for each row, dx = (dy - sum(dy*y)) * y where
// y is the softmax output. dx and dy may alias.
func SoftmaxRowsBackward(dx, dy, y []float32, m, n int) {
	checkLen("SoftmaxRowsBackward dx", dx, m*n)
	checkLen("SoftmaxRowsBackward dy", dy, m*n)
	checkLen("SoftmaxRowsBackward y", y, m*n)
	for i := 0; i < m; i++ {
		yr := y[i*n : (i+1)*n]
		dyr := dy[i*n : (i+1)*n]
		dxr := dx[i*n : (i+1)*n]
		var dot float64
		for j, v := range dyr {
			dot += float64(v) * float64(yr[j])
		}
		d := float32(dot)
		for j := range dxr {
			dxr[j] = (dyr[j] - d) * yr[j]
		}
	}
}

// Transpose writes the n×m transpose of the m×n matrix a into dst.
func Transpose(dst, a []float32, m, n int) {
	checkLen("Transpose dst", dst, m*n)
	checkLen("Transpose a", a, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst[j*m+i] = a[i*n+j]
		}
	}
}

func checkLen(what string, s []float32, want int) {
	if len(s) < want {
		panic("tensor: " + what + " too short")
	}
}
