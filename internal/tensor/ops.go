package tensor

import "math"

// This file holds the float32 compute kernels. All kernels operate on raw
// []float32 in row-major layout and accumulate in float32 (or float64 for
// reductions), mirroring tensor-core matmuls with fp32 accumulators.

// MatMul computes C = A·B where A is m×k, B is k×n and C is m×n.
// It panics if slice lengths don't match the dims.
//
// Zero rows of A skip their B row entirely — the sparsity fast path that
// makes causal-masked attention affordable — but only when B is fully
// finite: IEEE 0·NaN and 0·Inf are NaN, and the loss scaler's overflow
// detection relies on NaN/Inf in B surfacing in C rather than being
// silently dropped. The O(k·n) finiteness scan is negligible next to the
// O(m·k·n) multiply.
// Rows are processed in register-blocked pairs and the k dimension in
// blocks of four p-steps (axpy2x4Lanes): each loaded B row feeds two
// accumulator rows, and each C element is loaded/stored once per four
// p-steps, without touching any element's p-ascending accumulation order. A
// zero A element inside a block falls back to the per-p pair path
// (matMulPair), so the sparsity skip is preserved row by row.
//
//zinf:hotpath
func MatMul(c, a, b []float32, m, k, n int) {
	checkLen("MatMul c", c, m*n)
	checkLen("MatMul a", a, m*k)
	checkLen("MatMul b", b, k*n)
	skipZero := !HasNaNOrInf(b[:k*n])
	i := 0
	for ; i+2 <= m; i += 2 {
		c0 := c[i*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		for j := range c0 {
			c0[j] = 0
			c1[j] = 0
		}
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		matMulPairBlocked(c0, c1, b, n, 0, k, a0, a1, skipZero)
	}
	for ; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if skipZero && av == 0 {
				continue
			}
			axpyLanes(ci, b[p*n:(p+1)*n], av)
		}
	}
}

// matMulPairBlocked accumulates B rows [pLo, pHi) into the two output rows
// c0, c1 with four-step p-blocking where no A element in the block is a
// skippable zero, falling back to matMulPair otherwise.
//
//zinf:hotpath
func matMulPairBlocked(c0, c1, b []float32, n, pLo, pHi int, a0, a1 []float32, skipZero bool) {
	p := pLo
	for ; p+4 <= pHi; p += 4 {
		av00, av01, av02, av03 := a0[p], a0[p+1], a0[p+2], a0[p+3]
		av10, av11, av12, av13 := a1[p], a1[p+1], a1[p+2], a1[p+3]
		if skipZero && (av00 == 0 || av01 == 0 || av02 == 0 || av03 == 0 ||
			av10 == 0 || av11 == 0 || av12 == 0 || av13 == 0) {
			matMulPair(c0, c1, b, n, p, p+4, a0, a1, skipZero)
			continue
		}
		axpy2x4Lanes(c0, c1,
			b[p*n:(p+1)*n], b[(p+1)*n:(p+2)*n], b[(p+2)*n:(p+3)*n], b[(p+3)*n:(p+4)*n],
			av00, av01, av02, av03, av10, av11, av12, av13)
	}
	matMulPair(c0, c1, b, n, p, pHi, a0, a1, skipZero)
}

// matMulPair is the per-p path for a row pair: zero-skip per row, paired
// axpy when both rows contribute.
//
//zinf:hotpath
func matMulPair(c0, c1, b []float32, n, pLo, pHi int, a0, a1 []float32, skipZero bool) {
	for p := pLo; p < pHi; p++ {
		av0, av1 := a0[p], a1[p]
		if skipZero {
			if av0 == 0 {
				if av1 == 0 {
					continue
				}
				axpyLanes(c1, b[p*n:(p+1)*n], av1)
				continue
			}
			if av1 == 0 {
				axpyLanes(c0, b[p*n:(p+1)*n], av0)
				continue
			}
		}
		axpy2Lanes(c0, c1, b[p*n:(p+1)*n], av0, av1)
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k, B is n×k and C is m×n.
// Each output element is one dotLanes call — the fixed eight-accumulator
// schedule shared by both backends.
//
//zinf:hotpath
func MatMulTransB(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransB c", c, m*n)
	checkLen("MatMulTransB a", a, m*k)
	checkLen("MatMulTransB b", b, n*k)
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			ci[j] = dotLanes(ai, b[j*k:(j+1)*k])
		}
	}
}

// MatMulTransA computes C += Aᵀ·B where A is k×m, B is k×n and C is m×n.
// The accumulate-into semantics fit weight-gradient computation, where
// gradients from successive micro-steps are summed.
// As in MatMul, the zero-skip fast path is disabled when B holds NaN/Inf so
// non-finite gradients propagate into C instead of being dropped.
//
//zinf:hotpath
func MatMulTransA(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransA c", c, m*n)
	checkLen("MatMulTransA a", a, k*m)
	checkLen("MatMulTransA b", b, k*n)
	skipZero := !HasNaNOrInf(b[:k*n])
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i, av := range ap {
			if skipZero && av == 0 {
				continue
			}
			axpyLanes(c[i*n:(i+1)*n], bp, av)
		}
	}
}

// Axpy computes y += alpha*x elementwise.
//
//zinf:hotpath
func Axpy(alpha float32, x, y []float32) {
	checkLen("Axpy y", y, len(x))
	axpyLanes(y, x, alpha)
}

// Add computes dst = a + b elementwise.
//
//zinf:hotpath
func Add(dst, a, b []float32) {
	checkLen("Add dst", dst, len(a))
	checkLen("Add b", b, len(a))
	addLanes(dst, a, b)
}

// Mul computes dst = a * b elementwise.
//
//zinf:hotpath
func Mul(dst, a, b []float32) {
	checkLen("Mul dst", dst, len(a))
	checkLen("Mul b", b, len(a))
	mulLanes(dst, a, b)
}

// Scale multiplies x by alpha in place.
//
//zinf:hotpath
func Scale(alpha float32, x []float32) {
	scaleLanes(alpha, x)
}

// Dot returns the float64-accumulated dot product of a and b.
//
//zinf:hotpath
func Dot(a, b []float32) float64 {
	checkLen("Dot b", b, len(a))
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Sum returns the float64-accumulated sum of x.
//
//zinf:hotpath
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the maximum absolute value in x (0 for empty x).
//
//zinf:hotpath
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the float64-accumulated Euclidean norm of x.
//
//zinf:hotpath
func L2Norm(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// HasNaNOrInf reports whether x contains a NaN or infinity. The mixed
// precision loss scaler uses it to detect fp16 gradient overflow, and the
// matmuls' sparsity fast path runs it over B on every call, so it is the
// hottest pure scan in a training step. A float32 is non-finite exactly
// when its exponent field is all ones, in which case (and only then) adding
// 1<<23 to the masked exponent carries into the sign bit — so eight lanes
// OR their carry bits together and the loop tests one branch per block.
//
//zinf:hotpath
func HasNaNOrInf(x []float32) bool {
	const expMask = 0x7f800000
	n := len(x)
	i := 0
	for ; i+lanes <= n; i += lanes {
		s := x[i : i+lanes : i+lanes]
		acc := (math.Float32bits(s[0])&expMask + 1<<23) |
			(math.Float32bits(s[1])&expMask + 1<<23) |
			(math.Float32bits(s[2])&expMask + 1<<23) |
			(math.Float32bits(s[3])&expMask + 1<<23) |
			(math.Float32bits(s[4])&expMask + 1<<23) |
			(math.Float32bits(s[5])&expMask + 1<<23) |
			(math.Float32bits(s[6])&expMask + 1<<23) |
			(math.Float32bits(s[7])&expMask + 1<<23)
		if acc&(1<<31) != 0 {
			return true
		}
	}
	for ; i < n; i++ {
		if math.Float32bits(x[i])&expMask == expMask {
			return true
		}
	}
	return false
}

// Gelu applies the tanh-approximated GELU activation, dst = gelu(x).
// dst and x may alias.
//
//zinf:hotpath
func Gelu(dst, x []float32) {
	checkLen("Gelu dst", dst, len(x))
	geluLanes(dst, x)
}

const (
	geluC  = 0.7978845608028654 // sqrt(2/pi)
	geluC3 = 0.044715
)

//zinf:hotpath
func geluScalar(v float32) float32 {
	x := float64(v)
	return float32(0.5 * x * (1 + math.Tanh(geluC*(x+geluC3*x*x*x))))
}

// GeluBackward computes dx = dy * gelu'(x).
//
//zinf:hotpath
func GeluBackward(dx, dy, x []float32) {
	checkLen("GeluBackward dx", dx, len(x))
	checkLen("GeluBackward dy", dy, len(x))
	for i, v := range x {
		xf := float64(v)
		inner := geluC * (xf + geluC3*xf*xf*xf)
		t := math.Tanh(inner)
		dinner := geluC * (1 + 3*geluC3*xf*xf)
		grad := 0.5*(1+t) + 0.5*xf*(1-t*t)*dinner
		dx[i] = dy[i] * float32(grad)
	}
}

// SoftmaxRows applies a numerically-stable softmax to each row of the m×n
// matrix x in place. The max scan and the final scale run on the lane
// kernels; the exp pass keeps its serial float64 accumulation (the
// transcendental dominates it, and the sum's order is part of the
// bit-exactness contract).
//
//zinf:hotpath
func SoftmaxRows(x []float32, m, n int) {
	checkLen("SoftmaxRows x", x, m*n)
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		mx := maxLanes(row)
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			row[j] = e
			sum += float64(e)
		}
		scaleLanes(float32(1/sum), row)
	}
}

// SoftmaxRowsBackward computes, for each row, dx = (dy - sum(dy*y)) * y where
// y is the softmax output. dx and dy may alias.
//
//zinf:hotpath
func SoftmaxRowsBackward(dx, dy, y []float32, m, n int) {
	checkLen("SoftmaxRowsBackward dx", dx, m*n)
	checkLen("SoftmaxRowsBackward dy", dy, m*n)
	checkLen("SoftmaxRowsBackward y", y, m*n)
	for i := 0; i < m; i++ {
		yr := y[i*n : (i+1)*n]
		dyr := dy[i*n : (i+1)*n]
		dxr := dx[i*n : (i+1)*n]
		var dot float64
		for j, v := range dyr {
			dot += float64(v) * float64(yr[j])
		}
		d := float32(dot)
		for j := range dxr {
			dxr[j] = (dyr[j] - d) * yr[j]
		}
	}
}

// Transpose writes the n×m transpose of the m×n matrix a into dst.
//
//zinf:hotpath
func Transpose(dst, a []float32, m, n int) {
	checkLen("Transpose dst", dst, m*n)
	checkLen("Transpose a", a, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst[j*m+i] = a[i*n+j]
		}
	}
}

//zinf:hotpath
func checkLen(what string, s []float32, want int) {
	if len(s) < want {
		panic("tensor: " + what + " too short")
	}
}
