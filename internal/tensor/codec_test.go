package tensor

import (
	"math"
	"testing"
)

// Exhaustive LUT-vs-scalar equivalence: every one of the 65536 binary16 bit
// patterns must decode through Float32FromHalf (the LUT) to the exact bits
// the scalar converter produces — NaN payloads included.
func TestFloat32FromHalfLUTMatchesScalarExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Half(i)
		lut := math.Float32bits(Float32FromHalf(h))
		scalar := math.Float32bits(float32FromHalfScalar(h))
		if lut != scalar {
			t.Fatalf("half %#04x: LUT bits %#08x != scalar bits %#08x", i, lut, scalar)
		}
		if method := math.Float32bits(h.Float32()); method != scalar {
			t.Fatalf("half %#04x: Float32() bits %#08x != scalar bits %#08x", i, method, scalar)
		}
	}
}

// encodeEdgeCases are the inputs where branch-reduced rounding is most
// likely to diverge from the scalar converter: NaN payloads, infinities,
// signed zeros, subnormal boundaries, halfway rounding points, and the
// overflow threshold.
func encodeEdgeCases() []float32 {
	f32 := math.Float32frombits
	cases := []float32{
		0, f32(0x80000000), // ±0
		1, -1, 2, 0.5, 65504, -65504,
		65519.996, 65520, 65535.9, 65536, -1e9, // overflow threshold
		float32(math.Inf(1)), float32(math.Inf(-1)),
		f32(0x7fc00000), f32(0x7f800001), f32(0x7fffffff), // NaN payloads
		f32(0xffc00000), f32(0xff923456), // negative NaN payloads
		6.103515625e-05, 5.9604644775390625e-08, // smallest normal/subnormal half
		-5.9604644775390625e-08,
		f32(0x33800000), f32(0x337fffff), f32(0x33ffffff), // subnormal-range boundary ±1ulp
		f32(0x38800000), f32(0x387fffff), // normal/subnormal boundary
		f32(0x00000001), f32(0x007fffff), // fp32 subnormals -> flush
		float32(1 + 1.0/2048), float32(1 + 3.0/2048), 2047.5, // RNE ties
		f32(0x33000000), f32(0x32ffffff), // below half the smallest subnormal
		1e-10, -1e-10,
	}
	// Dense sweep across every binary16 value's neighbourhood: decode each
	// half, nudge the float32 bits by ±1, and feed those through too.
	for i := 0; i < 1<<16; i++ {
		f := float32FromHalfScalar(Half(i))
		b := math.Float32bits(f)
		cases = append(cases, f, f32(b+1))
		if b != 0 && b != 0x80000000 {
			cases = append(cases, f32(b-1))
		}
	}
	return cases
}

// Edge-case equivalence of the branch-reduced encoder against the original
// scalar encoder (bit-exact, including NaN payload handling).
func TestHalfFromFloat32MatchesScalarEdgeCases(t *testing.T) {
	for _, f := range encodeEdgeCases() {
		fast, slow := HalfFromFloat32(f), halfFromFloat32Scalar(f)
		if fast != slow {
			t.Fatalf("HalfFromFloat32(%g / %#08x) = %#04x, scalar = %#04x",
				f, math.Float32bits(f), fast, slow)
		}
	}
}

// Randomized equivalence over raw float32 bit patterns (covers the whole
// input space including NaNs, infs and denormals).
func TestHalfFromFloat32MatchesScalarRandom(t *testing.T) {
	rng := NewRNG(0xC0DEC)
	for i := 0; i < 2_000_000; i++ {
		bits := uint32(rng.Uint64())
		f := math.Float32frombits(bits)
		fast, slow := HalfFromFloat32(f), halfFromFloat32Scalar(f)
		if fast != slow {
			t.Fatalf("bits %#08x: fast %#04x != scalar %#04x", bits, fast, slow)
		}
	}
}

// The backend codec kernels must be bit-identical to the serial package
// functions on every backend, across sizes spanning the fan-out grain.
func TestBackendCodecEquivalence(t *testing.T) {
	sizes := []int{0, 1, 7, 1000, codecGrain - 1, codecGrain, 4*codecGrain + 13}
	for _, name := range BackendNames() {
		be, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range sizes {
			src := make([]float32, n)
			NewRNG(uint64(31+n)).FillNormal(src, 4)
			if n > 2 {
				src[0] = float32(math.NaN())
				src[1] = float32(math.Inf(1))
				src[2] = 1e-9 // underflows binary16 to signed zero
			}
			want := make([]Half, n)
			EncodeHalf(want, src)
			got := make([]Half, n)
			be.EncodeHalf(got, src)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s EncodeHalf n=%d elem %d: %#04x != %#04x", name, n, i, got[i], want[i])
				}
			}
			wantF := make([]float32, n)
			DecodeHalf(wantF, want)
			gotF := make([]float32, n)
			be.DecodeHalf(gotF, want)
			for i := range wantF {
				if math.Float32bits(gotF[i]) != math.Float32bits(wantF[i]) {
					t.Fatalf("%s DecodeHalf n=%d elem %d: %g != %g", name, n, i, gotF[i], wantF[i])
				}
			}
		}
	}
}

// BenchmarkFp16Codec measures the table-driven codec through each backend at
// 1M elements. ReportAllocs documents the zero-allocation dispatch (the
// parallel fan-out reuses pooled chunk descriptors).
func BenchmarkFp16Codec(b *testing.B) {
	const n = 1 << 20
	src := make([]float32, n)
	NewRNG(7).FillNormal(src, 1)
	hs := make([]Half, n)
	EncodeHalf(hs, src)
	dstH := make([]Half, n)
	dstF := make([]float32, n)
	// 6 bytes of traffic per element each way (4 read + 2 written encoding,
	// 2 read + 4 written decoding) — the same convention zinf-roofline uses,
	// so the MB/s column here matches the harness's GB/s records.
	b.Run("encode/scalar", func(b *testing.B) {
		b.SetBytes(n * 6)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncodeHalfScalar(dstH, src)
		}
	})
	b.Run("decode/scalar", func(b *testing.B) {
		b.SetBytes(n * 6)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			DecodeHalfScalar(dstF, hs)
		}
	})
	for _, name := range BackendNames() {
		be, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("encode/backend="+name, func(b *testing.B) {
			b.SetBytes(n * 6)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.EncodeHalf(dstH, src)
			}
		})
		b.Run("decode/backend="+name, func(b *testing.B) {
			b.SetBytes(n * 6)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.DecodeHalf(dstF, hs)
			}
		})
	}
}
