package tensor

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool shared by the Parallel backend's kernels.
// Submitting never blocks: when every worker is busy (e.g. several SPMD rank
// goroutines issue kernels at once) the chunk runs inline on the caller, so
// kernel latency degrades gracefully instead of queueing behind other ranks.
type Pool struct {
	workers int
	tasks   chan task
}

// task is one dispatched chunk. It is a plain value — sending it over the
// channel copies it, so dispatch itself performs no heap allocation; the only
// per-call allocation a kernel pays is its own fn closure, and kernels on the
// zero-allocation hot path avoid even that by passing a pooled ctx to a
// package-level fn (see ParallelForCtx and the fp16 codec kernels).
type task struct {
	fn     func(ctx any, lo, hi int)
	ctx    any
	lo, hi int
	wg     *sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines
// (minimum 1). The workers live for the life of the process. The task
// channel is buffered to the worker count so a worker that has finished a
// chunk but not yet re-parked in its receive doesn't force the submitter
// into the inline fallback; only a genuinely saturated pool (all workers
// busy and a full backlog) does.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan task, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.ctx, t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
//
//zinf:hotpath
func (p *Pool) Workers() int { return p.workers }

var (
	sharedPoolOnce sync.Once
	sharedPoolInst *Pool
)

// sharedPool lazily creates the process-wide pool, sized from GOMAXPROCS.
func sharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPoolInst = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPoolInst
}

// wgPool recycles the WaitGroups ParallelFor hands to its tasks; a
// WaitGroup stored in a task escapes, so pooling keeps steady-state
// dispatch allocation-free.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// callClosure adapts the closure-based ParallelFor API onto the ctx-based
// dispatch. Boxing a func value into any is allocation-free (funcs are
// pointer-shaped); the closure itself is the caller's single allocation.
//
//zinf:hotpath
func callClosure(ctx any, lo, hi int) { ctx.(func(lo, hi int))(lo, hi) }

// ParallelFor partitions [0, n) into at most Workers() contiguous chunks and
// runs fn on each, concurrently where workers are free. grain is the minimum
// chunk size: work smaller than one grain runs inline with no dispatch at
// all. Chunks are disjoint, so fn may write to disjoint output ranges without
// synchronization; ParallelFor returns only after every chunk has finished.
//
// Chunk boundaries never split fn's index space in a way the caller can't
// control — callers that need row granularity scale n to rows and multiply
// inside fn.
//
//zinf:hotpath
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	p.ParallelForCtx(n, grain, fn, callClosure)
}

// ParallelForCtx is ParallelFor with the chunk function split into a
// package-level fn and a caller-owned ctx. When ctx is a pooled pointer and
// fn a top-level function, dispatch performs zero heap allocations — the
// form the fp16 codec kernels use so conversion stays off the allocator even
// at full fan-out.
//
//zinf:hotpath
func (p *Pool) ParallelForCtx(n, grain int, ctx any, fn func(ctx any, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	parts := p.workers
	if max := (n + grain - 1) / grain; parts > max {
		parts = max
	}
	if parts <= 1 {
		fn(ctx, 0, n)
		return
	}
	chunk := (n + parts - 1) / parts
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		t := task{fn: fn, ctx: ctx, lo: lo, hi: hi, wg: wg}
		select {
		case p.tasks <- t:
		default:
			// All workers busy: run this chunk on the caller.
			fn(ctx, lo, hi)
			wg.Done()
		}
	}
	// The caller always computes the first chunk itself.
	fn(ctx, 0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}
