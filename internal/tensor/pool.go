package tensor

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool shared by the Parallel backend's kernels.
// Submitting never blocks: when every worker is busy (e.g. several SPMD rank
// goroutines issue kernels at once) the chunk runs inline on the caller, so
// kernel latency degrades gracefully instead of queueing behind other ranks.
type Pool struct {
	workers int
	tasks   chan func()
}

// NewPool starts a pool with the given number of worker goroutines
// (minimum 1). The workers live for the life of the process. The task
// channel is buffered to the worker count so a worker that has finished a
// chunk but not yet re-parked in its receive doesn't force the submitter
// into the inline fallback; only a genuinely saturated pool (all workers
// busy and a full backlog) does.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

var (
	sharedPoolOnce sync.Once
	sharedPoolInst *Pool
)

// sharedPool lazily creates the process-wide pool, sized from GOMAXPROCS.
func sharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPoolInst = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPoolInst
}

// ParallelFor partitions [0, n) into at most Workers() contiguous chunks and
// runs fn on each, concurrently where workers are free. grain is the minimum
// chunk size: work smaller than one grain runs inline with no dispatch at
// all. Chunks are disjoint, so fn may write to disjoint output ranges without
// synchronization; ParallelFor returns only after every chunk has finished.
//
// Chunk boundaries never split fn's index space in a way the caller can't
// control — callers that need row granularity scale n to rows and multiply
// inside fn.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	parts := p.workers
	if max := (n + grain - 1) / grain; parts > max {
		parts = max
	}
	if parts <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + parts - 1) / parts
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case p.tasks <- task:
		default:
			// All workers busy: run this chunk on the caller.
			task()
		}
	}
	// The caller always computes the first chunk itself.
	fn(0, chunk)
	wg.Wait()
}
