package tensor

import (
	"math"
	"sync"
	"testing"
)

// testParallel forces real multi-worker partitioning regardless of the host
// GOMAXPROCS, so the equivalence tests exercise concurrent chunks even on a
// single-core CI machine.
var testParallel = NewParallel(4)

func bitsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func fillRandom(rng *RNG, x []float32) {
	rng.FillNormal(x, 1)
	// Sprinkle exact zeros so the matmul sparsity fast path is exercised.
	for i := range x {
		if i%7 == 0 {
			x[i] = 0
		}
	}
}

// testDims crosses the parallel backend's tile boundaries (tileM=16,
// tileK=128, tileN=256) from below and above, plus ragged in-between sizes.
var testDims = []int{1, 2, 3, 15, 16, 17, 31, 127, 128, 129, 256, 257}

func randDim(rng *RNG) int { return testDims[rng.Intn(len(testDims))] }

// TestBackendsBitIdentical runs every kernel on random (including ragged)
// shapes and asserts bit-identical output between Reference and Parallel.
func TestBackendsBitIdentical(t *testing.T) {
	ref, par := Reference(), testParallel
	rng := NewRNG(1234)
	for iter := 0; iter < 60; iter++ {
		m, k, n := randDim(rng), randDim(rng), randDim(rng)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		bt := make([]float32, n*k)
		at := make([]float32, k*m)
		fillRandom(rng, a)
		fillRandom(rng, b)
		fillRandom(rng, bt)
		fillRandom(rng, at)

		cRef := make([]float32, m*n)
		cPar := make([]float32, m*n)

		ref.MatMul(cRef, a, b, m, k, n)
		par.MatMul(cPar, a, b, m, k, n)
		if i, ok := bitsEqual(cRef, cPar); !ok {
			t.Fatalf("MatMul m=%d k=%d n=%d diverged at %d: %g vs %g", m, k, n, i, cRef[i], cPar[i])
		}

		ref.MatMulTransB(cRef, a, bt, m, k, n)
		par.MatMulTransB(cPar, a, bt, m, k, n)
		if i, ok := bitsEqual(cRef, cPar); !ok {
			t.Fatalf("MatMulTransB m=%d k=%d n=%d diverged at %d", m, k, n, i)
		}

		// Accumulate-into semantics: seed both outputs identically.
		fillRandom(NewRNG(uint64(iter)), cRef)
		copy(cPar, cRef)
		ref.MatMulTransA(cRef, at, b, m, k, n)
		par.MatMulTransA(cPar, at, b, m, k, n)
		if i, ok := bitsEqual(cRef, cPar); !ok {
			t.Fatalf("MatMulTransA m=%d k=%d n=%d diverged at %d", m, k, n, i)
		}
	}

	// Elementwise and row kernels, across ragged lengths.
	for _, n := range []int{1, 3, 100, 1 << 12, 1<<14 + 13, 1 << 16} {
		x := make([]float32, n)
		y := make([]float32, n)
		fillRandom(rng, x)
		fillRandom(rng, y)

		dRef, dPar := make([]float32, n), make([]float32, n)
		ref.Gelu(dRef, x)
		par.Gelu(dPar, x)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("Gelu n=%d diverged at %d", n, i)
		}
		ref.GeluBackward(dRef, y, x)
		par.GeluBackward(dPar, y, x)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("GeluBackward n=%d diverged at %d", n, i)
		}
		ref.Add(dRef, x, y)
		par.Add(dPar, x, y)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("Add n=%d diverged at %d", n, i)
		}
		ref.Mul(dRef, x, y)
		par.Mul(dPar, x, y)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("Mul n=%d diverged at %d", n, i)
		}
		copy(dRef, y)
		copy(dPar, y)
		ref.Axpy(0.37, x, dRef)
		par.Axpy(0.37, x, dPar)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("Axpy n=%d diverged at %d", n, i)
		}
		copy(dRef, x)
		copy(dPar, x)
		ref.Scale(1.61, dRef)
		par.Scale(1.61, dPar)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("Scale n=%d diverged at %d", n, i)
		}
		if ref.Sum(x) != par.Sum(x) || ref.Dot(x, y) != par.Dot(x, y) ||
			ref.L2Norm(x) != par.L2Norm(x) || ref.MaxAbs(x) != par.MaxAbs(x) {
			t.Fatalf("reduction diverged at n=%d", n)
		}
	}

	for iter := 0; iter < 20; iter++ {
		m, n := randDim(rng), randDim(rng)
		xRef := make([]float32, m*n)
		fillRandom(rng, xRef)
		xPar := append([]float32(nil), xRef...)
		ref.SoftmaxRows(xRef, m, n)
		par.SoftmaxRows(xPar, m, n)
		if i, ok := bitsEqual(xRef, xPar); !ok {
			t.Fatalf("SoftmaxRows m=%d n=%d diverged at %d", m, n, i)
		}
		dy := make([]float32, m*n)
		fillRandom(rng, dy)
		dRef, dPar := make([]float32, m*n), make([]float32, m*n)
		ref.SoftmaxRowsBackward(dRef, dy, xRef, m, n)
		par.SoftmaxRowsBackward(dPar, dy, xPar, m, n)
		if i, ok := bitsEqual(dRef, dPar); !ok {
			t.Fatalf("SoftmaxRowsBackward m=%d n=%d diverged at %d", m, n, i)
		}

		tRef, tPar := make([]float32, m*n), make([]float32, m*n)
		ref.Transpose(tRef, xRef, m, n)
		par.Transpose(tPar, xPar, m, n)
		if i, ok := bitsEqual(tRef, tPar); !ok {
			t.Fatalf("Transpose m=%d n=%d diverged at %d", m, n, i)
		}
	}
}

// TestBackendsBitIdenticalWithNonFinite feeds NaN/Inf through the matmuls on
// both backends: the sparsity fast path must be disabled identically.
func TestBackendsBitIdenticalWithNonFinite(t *testing.T) {
	ref, par := Reference(), testParallel
	rng := NewRNG(99)
	for iter := 0; iter < 20; iter++ {
		m, k, n := randDim(rng), randDim(rng), randDim(rng)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillRandom(rng, a)
		fillRandom(rng, b)
		b[rng.Intn(len(b))] = float32(math.NaN())
		if len(b) > 1 {
			b[rng.Intn(len(b))] = float32(math.Inf(1))
		}
		cRef := make([]float32, m*n)
		cPar := make([]float32, m*n)
		ref.MatMul(cRef, a, b, m, k, n)
		par.MatMul(cPar, a, b, m, k, n)
		if i, ok := bitsEqual(cRef, cPar); !ok {
			t.Fatalf("MatMul (non-finite B) m=%d k=%d n=%d diverged at %d", m, k, n, i)
		}
	}
}

// TestMatMulNaNInBPropagates is the regression test for the sparsity-skip
// bug: a zero in A must not suppress NaN/Inf contributions from B, or the
// loss scaler's HasNaNOrInf overflow detection misses fp16 overflows.
func TestMatMulNaNInBPropagates(t *testing.T) {
	backends := []Backend{Reference(), testParallel}
	for _, be := range backends {
		// A row is all zeros; B's NaN sits exactly where only the zero
		// entries of A touch it.
		a := []float32{0, 0} // 1×2
		b := []float32{float32(math.NaN()), 1, 2, 3}
		c := make([]float32, 2) // 1×2
		be.MatMul(c, a, b, 1, 2, 2)
		if !HasNaNOrInf(c) {
			t.Errorf("%s: MatMul dropped NaN from B: c=%v", be.Name(), c)
		}

		// Same for the accumulate-into gradient matmul C += Aᵀ·B.
		at := []float32{0, 0} // k=2, m=1
		c2 := make([]float32, 2)
		be.MatMulTransA(c2, at, b, 1, 2, 2)
		if !HasNaNOrInf(c2) {
			t.Errorf("%s: MatMulTransA dropped NaN from B: c=%v", be.Name(), c2)
		}

		// Inf must survive too.
		bInf := []float32{float32(math.Inf(-1)), 1, 2, 3}
		c3 := make([]float32, 2)
		be.MatMul(c3, a, bInf, 1, 2, 2)
		if !HasNaNOrInf(c3) {
			t.Errorf("%s: MatMul dropped Inf from B: c=%v", be.Name(), c3)
		}

		// And the fast path must still be exact when B is finite.
		aZ := []float32{0, 1}
		bF := []float32{5, 6, 7, 8}
		c4 := make([]float32, 2)
		be.MatMul(c4, aZ, bF, 1, 2, 2)
		if c4[0] != 7 || c4[1] != 8 {
			t.Errorf("%s: finite fast path wrong: %v", be.Name(), c4)
		}
	}
}

// TestParallelBackendConcurrentCallers hammers one shared parallel backend
// from many goroutines at once — the SPMD shape (every rank issuing kernels
// into one pool). Run under -race in CI.
func TestParallelBackendConcurrentCallers(t *testing.T) {
	par := testParallel
	const callers = 8
	const m, k, n = 33, 129, 65
	want := make([]float32, m*n)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillRandom(NewRNG(5), a)
	fillRandom(NewRNG(6), b)
	Reference().MatMul(want, a, b, m, k, n)

	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float32, m*n)
			for it := 0; it < 10; it++ {
				par.MatMul(c, a, b, m, k, n)
				if i, ok := bitsEqual(want, c); !ok {
					t.Errorf("concurrent MatMul diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "reference", "serial", "parallel"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("cuda"); err == nil {
		t.Error("ByName(cuda) should fail")
	}
	if got := DefaultBackend(nil).Name(); got != "reference" {
		t.Errorf("DefaultBackend(nil) = %s", got)
	}
}

func TestPoolParallelFor(t *testing.T) {
	p := NewPool(3)
	for _, n := range []int{0, 1, 2, 7, 100, 10007} {
		covered := make([]int32, n)
		var mu sync.Mutex
		p.ParallelFor(n, 1, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			mu.Unlock()
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

// Per-kernel microbenchmarks, one sub-benchmark per backend, so kernel perf
// is tracked across PRs:
//
//	go test ./internal/tensor -bench 'MatMul|Gelu|SoftmaxRows' -benchtime=3x
func benchBackends() []Backend { return []Backend{Reference(), Parallel()} }

// reportGFLOPS attaches the achieved-GFLOP/s metric zinf-roofline reports,
// so `go test -bench` and the roofline harness agree on units.
func reportGFLOPS(b *testing.B, flopsPerOp float64) {
	b.ReportMetric(flopsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMul(b *testing.B) {
	const m, k, n = 512, 512, 512
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	fillRandom(NewRNG(1), a)
	fillRandom(NewRNG(2), bb)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulScalar(c, a, bb, m, k, n)
		}
		reportGFLOPS(b, 2*m*k*n)
	})
	for _, be := range benchBackends() {
		b.Run("backend="+be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.MatMul(c, a, bb, m, k, n)
			}
			reportGFLOPS(b, 2*m*k*n)
		})
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	const m, k, n = 512, 512, 512
	a := make([]float32, k*m)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	fillRandom(NewRNG(1), a)
	fillRandom(NewRNG(2), bb)
	for _, be := range benchBackends() {
		b.Run("backend="+be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.MatMulTransA(c, a, bb, m, k, n)
			}
			reportGFLOPS(b, 2*m*k*n)
		})
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	const m, k, n = 512, 512, 512
	a := make([]float32, m*k)
	bb := make([]float32, n*k)
	c := make([]float32, m*n)
	fillRandom(NewRNG(1), a)
	fillRandom(NewRNG(2), bb)
	for _, be := range benchBackends() {
		b.Run("backend="+be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.MatMulTransB(c, a, bb, m, k, n)
			}
			reportGFLOPS(b, 2*m*k*n)
		})
	}
}

func BenchmarkGelu(b *testing.B) {
	const n = 1 << 20
	x := make([]float32, n)
	dst := make([]float32, n)
	fillRandom(NewRNG(3), x)
	for _, be := range benchBackends() {
		b.Run("backend="+be.Name(), func(b *testing.B) {
			b.SetBytes(8 * n) // 4 bytes read + 4 written per element
			for i := 0; i < b.N; i++ {
				be.Gelu(dst, x)
			}
		})
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	const m, n = 1024, 1024
	orig := make([]float32, m*n)
	fillRandom(NewRNG(4), orig)
	x := make([]float32, m*n)
	for _, be := range benchBackends() {
		b.Run("backend="+be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(x, orig)
				be.SoftmaxRows(x, m, n)
			}
		})
	}
}
