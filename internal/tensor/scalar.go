package tensor

import "math"

// Pre-vectorization scalar kernels, retained for two jobs: the
// roofline harness (cmd/zinf-roofline) measures the lane kernels' speedup
// against them, and the remainder-lane equivalence tests assert the
// unrolled kernels reproduce them bit for bit wherever the lane schedule
// preserves the serial accumulation order.

// MatMulScalar is the plain serial C = A·B kernel: one scalar axpy row at a
// time, p ascending, including the zero-skip sparsity fast path. The lane
// kernel MatMul is bit-identical to it (per-element accumulation order is
// unchanged by the unroll).
func MatMulScalar(c, a, b []float32, m, k, n int) {
	checkLen("MatMul c", c, m*n)
	checkLen("MatMul a", a, m*k)
	checkLen("MatMul b", b, k*n)
	skipZero := !hasNaNOrInfScalar(b[:k*n])
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if skipZero && av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// EncodeHalfScalar converts src to binary16 one element at a time through
// HalfFromFloat32 — the pre-block-processing encoder. Output is
// bit-identical to EncodeHalf.
//
//zinf:hotpath
func EncodeHalfScalar(dst []Half, src []float32) {
	if len(dst) < len(src) {
		panic("tensor: EncodeHalf dst too short")
	}
	dst = dst[:len(src)]
	for i, f := range src {
		dst[i] = HalfFromFloat32(f)
	}
}

// DecodeHalfScalar converts src from binary16 one LUT lookup at a time.
// Output is bit-identical to DecodeHalf.
//
//zinf:hotpath
func DecodeHalfScalar(dst []float32, src []Half) {
	if len(dst) < len(src) {
		panic("tensor: DecodeHalf dst too short")
	}
	dst = dst[:len(src)]
	for i, h := range src {
		dst[i] = halfToF32[h]
	}
}

// hasNaNOrInfScalar is the math.IsNaN/IsInf formulation the exponent-mask
// scan in HasNaNOrInf is tested against.
//
//zinf:hotpath
func hasNaNOrInfScalar(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}
