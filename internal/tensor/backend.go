package tensor

import "fmt"

// Backend is the compute-kernel dispatch interface. Every hot kernel the
// model, optimizer and engines execute goes through a Backend, so the
// implementation — serial reference loops, the blocked multi-goroutine
// kernels in parallel.go, or some future accelerator — is swappable per
// engine without touching call sites.
//
// Contract: every Backend must be bit-identical to Reference() for every
// kernel. The parallel backend achieves this by partitioning work at row (or
// element) granularity so each output element's accumulation order matches
// the serial loops exactly; the engine-equivalence tests in internal/zero
// assert whole-trajectory equality on top of it.
type Backend interface {
	// Name returns the registry name ("reference", "parallel", ...).
	Name() string

	// MatMul computes C = A·B (A m×k, B k×n, C m×n).
	MatMul(c, a, b []float32, m, k, n int)
	// MatMulTransA computes C += Aᵀ·B (A k×m, B k×n, C m×n).
	MatMulTransA(c, a, b []float32, m, k, n int)
	// MatMulTransB computes C = A·Bᵀ (A m×k, B n×k, C m×n).
	MatMulTransB(c, a, b []float32, m, k, n int)

	// Gelu applies tanh-approximated GELU elementwise; dst may alias x.
	Gelu(dst, x []float32)
	// GeluBackward computes dx = dy * gelu'(x).
	GeluBackward(dx, dy, x []float32)
	// SoftmaxRows applies a stable softmax to each row of the m×n matrix.
	SoftmaxRows(x []float32, m, n int)
	// SoftmaxRowsBackward computes per-row dx = (dy - sum(dy*y)) * y.
	SoftmaxRowsBackward(dx, dy, y []float32, m, n int)

	// EncodeHalf converts src to binary16 (round-to-nearest-even) into dst.
	// Elementwise, so fan-out is trivially bit-identical to the serial loop.
	EncodeHalf(dst []Half, src []float32)
	// DecodeHalf converts binary16 src into dst exactly (LUT lookup).
	DecodeHalf(dst []float32, src []Half)

	// Add computes dst = a + b elementwise.
	Add(dst, a, b []float32)
	// Mul computes dst = a * b elementwise.
	Mul(dst, a, b []float32)
	// Axpy computes y += alpha*x elementwise.
	Axpy(alpha float32, x, y []float32)
	// Scale multiplies x by alpha in place.
	Scale(alpha float32, x []float32)
	// Transpose writes the n×m transpose of the m×n matrix a into dst.
	Transpose(dst, a []float32, m, n int)

	// Reductions. These stay serial in every backend: their float64
	// accumulation order is part of the bit-exactness contract.
	Sum(x []float32) float64
	Dot(a, b []float32) float64
	L2Norm(x []float32) float64
	MaxAbs(x []float32) float32
	HasNaNOrInf(x []float32) bool

	// ParRange partitions [0, n) into disjoint contiguous chunks of at
	// least grain elements and runs fn over each, concurrently where the
	// backend supports it. It is the escape hatch for callers whose
	// elementwise loops don't fit a named kernel (Adam updates, layernorm
	// rows, attention heads); fn must be safe to run concurrently over
	// disjoint ranges and must produce range-independent results.
	ParRange(n, grain int, fn func(lo, hi int))

	// ParRangeCtx is ParRange with the chunk function split into a top-level
	// fn and a caller-owned ctx, mirroring Pool.ParallelForCtx: a closure
	// handed through an interface call always escapes, so zero-allocation
	// hot paths pass a pooled ctx pointer and a package-level fn instead.
	// Same partitioning and bit-exactness contract as ParRange.
	ParRangeCtx(n, grain int, ctx any, fn func(ctx any, lo, hi int))
}

// reference is the serial backend: straight delegation to the package-level
// kernels in ops.go. It is the bit-exactness baseline every other backend is
// measured against.
type reference struct{}

// Reference returns the serial baseline backend.
//
//zinf:hotpath
func Reference() Backend { return reference{} }

func (reference) Name() string                                { return "reference" }
func (reference) MatMul(c, a, b []float32, m, k, n int)       { MatMul(c, a, b, m, k, n) }
func (reference) MatMulTransA(c, a, b []float32, m, k, n int) { MatMulTransA(c, a, b, m, k, n) }
func (reference) MatMulTransB(c, a, b []float32, m, k, n int) { MatMulTransB(c, a, b, m, k, n) }
func (reference) Gelu(dst, x []float32)                       { Gelu(dst, x) }
func (reference) GeluBackward(dx, dy, x []float32)            { GeluBackward(dx, dy, x) }
func (reference) SoftmaxRows(x []float32, m, n int)           { SoftmaxRows(x, m, n) }
func (reference) SoftmaxRowsBackward(dx, dy, y []float32, m, n int) {
	SoftmaxRowsBackward(dx, dy, y, m, n)
}
func (reference) EncodeHalf(dst []Half, src []float32) { EncodeHalf(dst, src) }
func (reference) DecodeHalf(dst []float32, src []Half) { DecodeHalf(dst, src) }
func (reference) Add(dst, a, b []float32)              { Add(dst, a, b) }
func (reference) Mul(dst, a, b []float32)              { Mul(dst, a, b) }
func (reference) Axpy(alpha float32, x, y []float32)   { Axpy(alpha, x, y) }
func (reference) Scale(alpha float32, x []float32)     { Scale(alpha, x) }
func (reference) Transpose(dst, a []float32, m, n int) { Transpose(dst, a, m, n) }
func (reference) Sum(x []float32) float64              { return Sum(x) }
func (reference) Dot(a, b []float32) float64           { return Dot(a, b) }
func (reference) L2Norm(x []float32) float64           { return L2Norm(x) }
func (reference) MaxAbs(x []float32) float32           { return MaxAbs(x) }
func (reference) HasNaNOrInf(x []float32) bool         { return HasNaNOrInf(x) }
func (reference) ParRange(n, grain int, fn func(lo, hi int)) {
	if n > 0 {
		fn(0, n)
	}
}

//zinf:hotpath
func (reference) ParRangeCtx(n, grain int, ctx any, fn func(ctx any, lo, hi int)) {
	if n > 0 {
		fn(ctx, 0, n)
	}
}

// ByName resolves a backend by registry name. The empty string selects the
// reference backend, keeping zero-valued configs bit-exact with the seed.
func ByName(name string) (Backend, error) {
	switch name {
	case "", "reference", "serial":
		return Reference(), nil
	case "parallel":
		return Parallel(), nil
	}
	return nil, fmt.Errorf("tensor: unknown backend %q (have %v)", name, BackendNames())
}

// BackendNames lists the registered backend names.
func BackendNames() []string { return []string{"reference", "parallel"} }

// IsReference reports whether be is the serial reference backend. Hot-path
// callers use it to run small elementwise loops directly instead of building
// a closure for ParRange — a closure passed through an interface call always
// escapes, and the zero-allocation steady-state contract forbids that.
//
//zinf:hotpath
func IsReference(be Backend) bool {
	_, ok := be.(reference)
	return ok
}

// DefaultBackend returns b, or the reference backend when b is nil — the
// idiom configs use to make the zero value mean "serial".
//
//zinf:hotpath
func DefaultBackend(b Backend) Backend {
	if b == nil {
		return Reference()
	}
	return b
}
