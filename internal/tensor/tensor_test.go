package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewShapesAndSizes(t *testing.T) {
	a := New(FP32, 2, 3)
	if a.Len() != 6 || a.SizeBytes() != 24 {
		t.Fatalf("fp32 2x3: len=%d bytes=%d", a.Len(), a.SizeBytes())
	}
	h := New(FP16, 4)
	if h.Len() != 4 || h.SizeBytes() != 8 {
		t.Fatalf("fp16 4: len=%d bytes=%d", h.Len(), h.SizeBytes())
	}
	if a.String() != "fp32[2 3]" {
		t.Errorf("String() = %q", a.String())
	}
	if h.DType() != FP16 || h.DType().String() != "fp16" {
		t.Errorf("dtype mismatch")
	}
}

func TestSetAtRoundsFP16(t *testing.T) {
	h := New(FP16, 1)
	h.Set(0, 1+1.0/4096) // below half precision; rounds to 1.0
	if got := h.At(0); got != 1 {
		t.Errorf("fp16 Set/At = %g, want 1 (rounded)", got)
	}
	f := New(FP32, 1)
	f.Set(0, 1+1.0/4096)
	if got := f.At(0); got == 1 {
		t.Errorf("fp32 Set/At rounded unexpectedly")
	}
}

func TestCastRoundTrip(t *testing.T) {
	a := New(FP32, 8)
	NewRNG(5).FillNormal(a.Float32s(), 1)
	h := a.Cast(FP16)
	back := h.Cast(FP32)
	if d := MaxAbsDiff(a, back); d > 1.0/512 {
		t.Errorf("cast round trip diff %g too large", d)
	}
	// FP16 -> FP32 -> FP16 must be exact.
	h2 := back.Cast(FP16)
	if !Equal(h, h2) {
		t.Error("fp16->fp32->fp16 not exact")
	}
}

func TestReadWrite(t *testing.T) {
	h := New(FP16, 3)
	h.Write([]float32{1, 2, 3})
	out := make([]float32, 3)
	h.Read(out)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("fp16 read/write got %v", out)
	}
	f := New(FP32, 3)
	f.Write([]float32{4, 5, 6})
	f.Read(out)
	if out[0] != 4 || out[2] != 6 {
		t.Fatalf("fp32 read/write got %v", out)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	c := a.Clone()
	c.Set(0, 99)
	if a.At(0) != 1 {
		t.Error("Clone shares storage")
	}
	h := New(FP16, 2)
	h.Set(0, 7)
	hc := h.Clone()
	hc.Set(0, 8)
	if h.At(0) != 7 {
		t.Error("fp16 Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(FP32, 2, 3)
	v := a.Reshape(3, 2)
	v.Set(0, 42)
	if a.At(0) != 42 {
		t.Error("Reshape copied data")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reshape to wrong size did not panic")
		}
	}()
	a.Reshape(7)
}

func TestZeroAndFill(t *testing.T) {
	for _, dt := range []DType{FP32, FP16} {
		a := New(dt, 5)
		a.Fill(3)
		for i := 0; i < 5; i++ {
			if a.At(i) != 3 {
				t.Fatalf("%v Fill: at(%d)=%g", dt, i, a.At(i))
			}
		}
		a.Zero()
		for i := 0; i < 5; i++ {
			if a.At(i) != 0 {
				t.Fatalf("%v Zero: at(%d)=%g", dt, i, a.At(i))
			}
		}
	}
}

func TestFromSlicePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong shape did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestFromHalf(t *testing.T) {
	h := FromHalf([]Half{0x3c00, 0x4000}, 2)
	if h.At(0) != 1 || h.At(1) != 2 {
		t.Fatalf("FromHalf values wrong: %g %g", h.At(0), h.At(1))
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	if !Equal(a, b) {
		t.Error("equal tensors not Equal")
	}
	b.Set(1, 3)
	if Equal(a, b) {
		t.Error("different tensors Equal")
	}
	c := FromSlice([]float32{1, 2}, 1, 2)
	if Equal(a, c) {
		t.Error("different shapes Equal")
	}
	if Equal(a, a.Cast(FP16)) {
		t.Error("different dtypes Equal")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced same first value")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams identical")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(123)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %g", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %g", variance)
	}
}

// Property: Float64 always in [0,1), Intn always in range.
func TestRNGQuickRanges(t *testing.T) {
	r := NewRNG(77)
	f := func(n uint8) bool {
		v := r.Float64()
		if v < 0 || v >= 1 {
			return false
		}
		k := int(n%100) + 1
		i := r.Intn(k)
		return i >= 0 && i < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
