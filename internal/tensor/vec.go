package tensor

// This file holds the 8-wide unrolled lane kernels behind the float32
// compute primitives. Go's gc compiler does not auto-vectorize, so the
// kernels are written the way the hardware wants to run them anyway:
// full-width blocks addressed through three-index subslices (so every bounds
// check hoists out of the block), eight independent operations per
// iteration (so the out-of-order core can keep multiple FLOPs in flight),
// and a fixed combination order wherever lanes meet.
//
// Both backends call these same functions, which makes the lane-accumulation
// schedule part of the cross-backend bit-identity contract *by
// construction*: reference and parallel cannot diverge on a kernel they
// share. Kernels whose per-element accumulation order matches the
// pre-vectorization serial loops (axpyLanes, the elementwise family) are
// additionally bit-identical to the historical scalar kernels; dotLanes uses
// a fixed eight-accumulator tree and is the one place the numerical schedule
// deliberately changed (every caller on every backend changed with it).

// lanes is the unroll width of the vectorized kernels: 8 float32 values,
// one 32-byte AVX register's worth, and enough independent chains to cover
// fused-multiply-add latency on current cores.
const lanes = 8

// axpyLanes computes ci[j] += av*bp[j] for j in [0, len(bp)). Every element
// is read-modified-written independently in ascending j, so the result is
// bit-identical to the plain scalar loop — this is the inner kernel of
// MatMul and MatMulTransA, where it preserves the strict p-ascending
// per-element accumulation order the engine-equivalence tests pin down.
//
//zinf:hotpath
func axpyLanes(ci, bp []float32, av float32) {
	n := len(bp)
	j := 0
	for ; j+lanes <= n; j += lanes {
		c := ci[j : j+lanes : j+lanes]
		b := bp[j : j+lanes : j+lanes]
		c[0] += av * b[0]
		c[1] += av * b[1]
		c[2] += av * b[2]
		c[3] += av * b[3]
		c[4] += av * b[4]
		c[5] += av * b[5]
		c[6] += av * b[6]
		c[7] += av * b[7]
	}
	for ; j < n; j++ {
		ci[j] += av * bp[j]
	}
}

// axpy2Lanes computes c0[j] += a0*bp[j] and c1[j] += a1*bp[j] in one pass
// over bp. Pairing two output rows doubles the arithmetic per loaded bp
// block and halves the loop overhead per FLOP — the register-blocking step
// that moves MatMul off the load ceiling — while each row's per-element
// arithmetic and ascending-j order are exactly axpyLanes', so the result is
// bit-identical to two separate axpyLanes calls.
//
//zinf:hotpath
func axpy2Lanes(c0, c1, bp []float32, a0, a1 float32) {
	n := len(bp)
	j := 0
	for ; j+lanes <= n; j += lanes {
		b := bp[j : j+lanes : j+lanes]
		x := c0[j : j+lanes : j+lanes]
		y := c1[j : j+lanes : j+lanes]
		x[0] += a0 * b[0]
		x[1] += a0 * b[1]
		x[2] += a0 * b[2]
		x[3] += a0 * b[3]
		x[4] += a0 * b[4]
		x[5] += a0 * b[5]
		x[6] += a0 * b[6]
		x[7] += a0 * b[7]
		y[0] += a1 * b[0]
		y[1] += a1 * b[1]
		y[2] += a1 * b[2]
		y[3] += a1 * b[3]
		y[4] += a1 * b[4]
		y[5] += a1 * b[5]
		y[6] += a1 * b[6]
		y[7] += a1 * b[7]
	}
	for ; j < n; j++ {
		c0[j] += a0 * bp[j]
		c1[j] += a1 * bp[j]
	}
}

// axpy2x4Lanes applies four consecutive p-steps to two accumulator rows in
// one pass: t := c[j]; t += a0*b0[j]; t += a1*b1[j]; ... ; c[j] = t. The
// addition sequence per element is exactly the one four separate axpyLanes
// passes would execute — same operations, same order, bit-identical — but
// the intermediate lives in a register, so each c element is loaded and
// stored once per four p-steps instead of once per step. This is the
// p-blocking that lifts MatMul off the store-bandwidth ceiling.
//
//zinf:hotpath
func axpy2x4Lanes(c0, c1, b0, b1, b2, b3 []float32,
	a00, a01, a02, a03, a10, a11, a12, a13 float32) {
	n := len(b0)
	j := 0
	for ; j+lanes <= n; j += lanes {
		x := c0[j : j+lanes : j+lanes]
		y := c1[j : j+lanes : j+lanes]
		p0 := b0[j : j+lanes : j+lanes]
		p1 := b1[j : j+lanes : j+lanes]
		p2 := b2[j : j+lanes : j+lanes]
		p3 := b3[j : j+lanes : j+lanes]
		b00, b10, b20, b30 := p0[0], p1[0], p2[0], p3[0]
		t0 := x[0]
		t0 += a00 * b00
		t0 += a01 * b10
		t0 += a02 * b20
		t0 += a03 * b30
		x[0] = t0
		u0 := y[0]
		u0 += a10 * b00
		u0 += a11 * b10
		u0 += a12 * b20
		u0 += a13 * b30
		y[0] = u0
		b01, b11, b21, b31 := p0[1], p1[1], p2[1], p3[1]
		t1 := x[1]
		t1 += a00 * b01
		t1 += a01 * b11
		t1 += a02 * b21
		t1 += a03 * b31
		x[1] = t1
		u1 := y[1]
		u1 += a10 * b01
		u1 += a11 * b11
		u1 += a12 * b21
		u1 += a13 * b31
		y[1] = u1
		b02, b12, b22, b32 := p0[2], p1[2], p2[2], p3[2]
		t2 := x[2]
		t2 += a00 * b02
		t2 += a01 * b12
		t2 += a02 * b22
		t2 += a03 * b32
		x[2] = t2
		u2 := y[2]
		u2 += a10 * b02
		u2 += a11 * b12
		u2 += a12 * b22
		u2 += a13 * b32
		y[2] = u2
		b03, b13, b23, b33 := p0[3], p1[3], p2[3], p3[3]
		t3 := x[3]
		t3 += a00 * b03
		t3 += a01 * b13
		t3 += a02 * b23
		t3 += a03 * b33
		x[3] = t3
		u3 := y[3]
		u3 += a10 * b03
		u3 += a11 * b13
		u3 += a12 * b23
		u3 += a13 * b33
		y[3] = u3
		b04, b14, b24, b34 := p0[4], p1[4], p2[4], p3[4]
		t4 := x[4]
		t4 += a00 * b04
		t4 += a01 * b14
		t4 += a02 * b24
		t4 += a03 * b34
		x[4] = t4
		u4 := y[4]
		u4 += a10 * b04
		u4 += a11 * b14
		u4 += a12 * b24
		u4 += a13 * b34
		y[4] = u4
		b05, b15, b25, b35 := p0[5], p1[5], p2[5], p3[5]
		t5 := x[5]
		t5 += a00 * b05
		t5 += a01 * b15
		t5 += a02 * b25
		t5 += a03 * b35
		x[5] = t5
		u5 := y[5]
		u5 += a10 * b05
		u5 += a11 * b15
		u5 += a12 * b25
		u5 += a13 * b35
		y[5] = u5
		b06, b16, b26, b36 := p0[6], p1[6], p2[6], p3[6]
		t6 := x[6]
		t6 += a00 * b06
		t6 += a01 * b16
		t6 += a02 * b26
		t6 += a03 * b36
		x[6] = t6
		u6 := y[6]
		u6 += a10 * b06
		u6 += a11 * b16
		u6 += a12 * b26
		u6 += a13 * b36
		y[6] = u6
		b07, b17, b27, b37 := p0[7], p1[7], p2[7], p3[7]
		t7 := x[7]
		t7 += a00 * b07
		t7 += a01 * b17
		t7 += a02 * b27
		t7 += a03 * b37
		x[7] = t7
		u7 := y[7]
		u7 += a10 * b07
		u7 += a11 * b17
		u7 += a12 * b27
		u7 += a13 * b37
		y[7] = u7
	}
	for ; j < n; j++ {
		t := c0[j]
		t += a00 * b0[j]
		t += a01 * b1[j]
		t += a02 * b2[j]
		t += a03 * b3[j]
		c0[j] = t
		u := c1[j]
		u += a10 * b0[j]
		u += a11 * b1[j]
		u += a12 * b2[j]
		u += a13 * b3[j]
		c1[j] = u
	}
}

// dotLanes returns the float32 dot product of a and b (equal lengths)
// accumulated across eight independent lane accumulators that combine in a
// fixed pairwise tree, with the sub-lane remainder folded in serially
// afterwards. The schedule differs from a strictly serial sum, but it is
// one fixed schedule shared by every backend, so cross-backend bit-identity
// holds by construction. NaN/Inf in either input propagates through the
// lane accumulators and the combine tree exactly as IEEE arithmetic
// requires (nothing is skipped or compared away).
//
//zinf:hotpath
func dotLanes(a, b []float32) float32 {
	n := len(a)
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	j := 0
	for ; j+lanes <= n; j += lanes {
		x := a[j : j+lanes : j+lanes]
		y := b[j : j+lanes : j+lanes]
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		s4 += x[4] * y[4]
		s5 += x[5] * y[5]
		s6 += x[6] * y[6]
		s7 += x[7] * y[7]
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// maxLanes returns the maximum of the non-empty row using eight running
// lane maxima combined in a fixed order. For finite inputs max is
// order-independent, so this matches the serial scan exactly; with NaNs
// present every strict comparison involving a NaN is false in both the
// serial and the lane scan, and softmax turns the whole row into NaNs
// either way, so SoftmaxRows' output stays bit-identical (see the
// NaN-propagation tests).
//
//zinf:hotpath
func maxLanes(row []float32) float32 {
	n := len(row)
	if n < 2*lanes {
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	h := row[0:lanes:lanes]
	m0, m1, m2, m3 := h[0], h[1], h[2], h[3]
	m4, m5, m6, m7 := h[4], h[5], h[6], h[7]
	j := lanes
	for ; j+lanes <= n; j += lanes {
		s := row[j : j+lanes : j+lanes]
		if s[0] > m0 {
			m0 = s[0]
		}
		if s[1] > m1 {
			m1 = s[1]
		}
		if s[2] > m2 {
			m2 = s[2]
		}
		if s[3] > m3 {
			m3 = s[3]
		}
		if s[4] > m4 {
			m4 = s[4]
		}
		if s[5] > m5 {
			m5 = s[5]
		}
		if s[6] > m6 {
			m6 = s[6]
		}
		if s[7] > m7 {
			m7 = s[7]
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	if m4 > m0 {
		m0 = m4
	}
	if m5 > m0 {
		m0 = m5
	}
	if m6 > m0 {
		m0 = m6
	}
	if m7 > m0 {
		m0 = m7
	}
	for ; j < n; j++ {
		if row[j] > m0 {
			m0 = row[j]
		}
	}
	return m0
}

// addLanes computes dst = a + b elementwise; bit-identical to the scalar
// loop (independent elements, ascending order).
//
//zinf:hotpath
func addLanes(dst, a, b []float32) {
	n := len(a)
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		x := a[i : i+lanes : i+lanes]
		y := b[i : i+lanes : i+lanes]
		d[0] = x[0] + y[0]
		d[1] = x[1] + y[1]
		d[2] = x[2] + y[2]
		d[3] = x[3] + y[3]
		d[4] = x[4] + y[4]
		d[5] = x[5] + y[5]
		d[6] = x[6] + y[6]
		d[7] = x[7] + y[7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// mulLanes computes dst = a * b elementwise; bit-identical to the scalar
// loop.
//
//zinf:hotpath
func mulLanes(dst, a, b []float32) {
	n := len(a)
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		x := a[i : i+lanes : i+lanes]
		y := b[i : i+lanes : i+lanes]
		d[0] = x[0] * y[0]
		d[1] = x[1] * y[1]
		d[2] = x[2] * y[2]
		d[3] = x[3] * y[3]
		d[4] = x[4] * y[4]
		d[5] = x[5] * y[5]
		d[6] = x[6] * y[6]
		d[7] = x[7] * y[7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] * b[i]
	}
}

// scaleLanes multiplies x by alpha in place; bit-identical to the scalar
// loop.
//
//zinf:hotpath
func scaleLanes(alpha float32, x []float32) {
	n := len(x)
	i := 0
	for ; i+lanes <= n; i += lanes {
		s := x[i : i+lanes : i+lanes]
		s[0] *= alpha
		s[1] *= alpha
		s[2] *= alpha
		s[3] *= alpha
		s[4] *= alpha
		s[5] *= alpha
		s[6] *= alpha
		s[7] *= alpha
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

// geluLanes applies geluScalar to eight elements per iteration. The
// transcendental dominates, but the unroll removes the per-element loop
// overhead and lets independent tanh evaluations overlap. Per-element
// arithmetic is unchanged, so results are bit-identical to the scalar
// loop; statement order within a block matches the serial loop, so the
// documented dst/x aliasing behaves identically too.
//
//zinf:hotpath
func geluLanes(dst, x []float32) {
	n := len(x)
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := x[i : i+lanes : i+lanes]
		d[0] = geluScalar(s[0])
		d[1] = geluScalar(s[1])
		d[2] = geluScalar(s[2])
		d[3] = geluScalar(s[3])
		d[4] = geluScalar(s[4])
		d[5] = geluScalar(s[5])
		d[6] = geluScalar(s[6])
		d[7] = geluScalar(s[7])
	}
	for ; i < n; i++ {
		dst[i] = geluScalar(x[i])
	}
}
