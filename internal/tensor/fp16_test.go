package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h Half
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},             // HalfMax
		{-65504, 0xfbff},            // -HalfMax
		{6.103515625e-05, 0x0400},   // smallest normal
		{5.9604644775390625e-08, 1}, // smallest subnormal
		{-5.9604644775390625e-08, 0x8001},
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := HalfFromFloat32(c.f); got != c.h {
			t.Errorf("HalfFromFloat32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := c.h.Float32(); got != c.f {
			t.Errorf("Half(%#04x).Float32() = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if got := HalfFromFloat32(65520); !got.IsInf() {
		t.Errorf("HalfFromFloat32(65520) = %#04x, want +Inf", got)
	}
	if got := HalfFromFloat32(-1e9); got != 0xfc00 {
		t.Errorf("HalfFromFloat32(-1e9) = %#04x, want -Inf", got)
	}
}

func TestHalfUnderflowToZero(t *testing.T) {
	if got := HalfFromFloat32(1e-10); got != 0 {
		t.Errorf("HalfFromFloat32(1e-10) = %#04x, want +0", got)
	}
	if got := HalfFromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("HalfFromFloat32(-1e-10) = %#04x, want -0", got)
	}
}

func TestHalfNaN(t *testing.T) {
	h := HalfFromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN did not convert to half NaN: %#04x", h)
	}
	if f := h.Float32(); !math.IsNaN(float64(f)) {
		t.Fatalf("half NaN did not convert back to NaN: %g", f)
	}
}

func TestHalfRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties go to even
	// mantissa, i.e. down to 1.0.
	halfway := float32(1 + 1.0/2048)
	if got := HalfFromFloat32(halfway); got != 0x3c00 {
		t.Errorf("tie at 1+2^-11 rounded to %#04x, want 0x3c00 (1.0)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even goes up.
	halfway = float32(1 + 3.0/2048)
	if got := HalfFromFloat32(halfway); got != 0x3c02 {
		t.Errorf("tie at 1+3*2^-11 rounded to %#04x, want 0x3c02", got)
	}
	// Mantissa carry into exponent: 2047.5 is halfway between 2047 and 2048,
	// rounds to 2048 (even).
	if got := HalfFromFloat32(2047.5); got.Float32() != 2048 {
		t.Errorf("2047.5 rounded to %g, want 2048", got.Float32())
	}
}

// Property: every finite half survives a half->float32->half round trip.
func TestHalfRoundTripAllValues(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Half(i)
		if h.IsNaN() {
			continue // NaN payloads need not be preserved bit-exactly
		}
		if got := HalfFromFloat32(h.Float32()); got != h {
			t.Fatalf("round trip %#04x -> %g -> %#04x", h, h.Float32(), got)
		}
	}
}

// Property: conversion error is at most half a ULP for in-range values.
func TestHalfQuickRoundingError(t *testing.T) {
	f := func(raw uint32) bool {
		x := math.Float32frombits(raw)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		// The round-to-inf threshold is 65520 (midpoint between HalfMax and
		// the next representable step); below it, values round to ±HalfMax.
		if x >= 65520 || x <= -65520 {
			return HalfFromFloat32(x).IsInf()
		}
		if x > HalfMax || x < -HalfMax {
			h := HalfFromFloat32(x)
			return h == HalfFromFloat32(HalfMax) || h == HalfFromFloat32(-HalfMax)
		}
		back := float64(HalfFromFloat32(x).Float32())
		// ULP at |x|: for normals, 2^(e-10); bound loosely by |x|/1024 + eps.
		tol := math.Abs(float64(x))/1024 + 6e-8
		return math.Abs(back-float64(x)) <= tol/2+6e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestHalfBytesRoundTrip(t *testing.T) {
	h := []Half{0x0000, 0x3c00, 0xfbff, 0x7c00, 0x1234}
	b := make([]byte, 2*len(h))
	HalfToBytes(b, h)
	got := make([]Half, len(h))
	HalfFromBytes(got, b)
	for i := range h {
		if got[i] != h[i] {
			t.Errorf("byte round trip [%d] = %#04x, want %#04x", i, got[i], h[i])
		}
	}
}

func TestEncodeDecodeHalf(t *testing.T) {
	src := []float32{0, 1, -2.5, 1000, 1e-5}
	h := make([]Half, len(src))
	EncodeHalf(h, src)
	dst := make([]float32, len(src))
	DecodeHalf(dst, h)
	for i := range src {
		if math.Abs(float64(dst[i]-src[i])) > math.Abs(float64(src[i]))/512+1e-7 {
			t.Errorf("encode/decode [%d]: got %g want ~%g", i, dst[i], src[i])
		}
	}
}

func BenchmarkHalfFromFloat32(b *testing.B) {
	src := make([]float32, 4096)
	NewRNG(1).FillNormal(src, 1)
	dst := make([]Half, len(src))
	b.SetBytes(int64(len(src) * 6)) // 4 read + 2 written, the roofline convention
	for i := 0; i < b.N; i++ {
		EncodeHalf(dst, src)
	}
}

func BenchmarkHalfToFloat32(b *testing.B) {
	src := make([]Half, 4096)
	for i := range src {
		src[i] = Half(i)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 6)) // 2 read + 4 written, the roofline convention
	for i := 0; i < b.N; i++ {
		DecodeHalf(dst, src)
	}
}
