package tensor

import (
	"math"
	"testing"
)

// The lane kernels' contract is bit-identity with the retained scalar
// kernels (scalar.go) for every shape — including the remainder paths the
// 8-wide blocks and the 4/2-row register blocking leave behind — and IEEE
// NaN/Inf propagation through the unrolled accumulators. These tests pin
// both down against MatMulScalar / EncodeHalfScalar / DecodeHalfScalar /
// hasNaNOrInfScalar, which keep the pre-vectorization loops alive exactly
// for this purpose.

// matmulShapes stresses every remainder combination: below one lane, odd
// row counts that exercise the 4-, 2- and 1-row tails, prime dims with
// n%8 != 0, and lane-aligned shapes.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {1, 7, 1}, {7, 13, 5}, {2, 3, 9},
	{3, 8, 8}, {5, 5, 5}, {13, 17, 19}, {31, 29, 23},
	{8, 8, 8}, {16, 32, 24}, {9, 16, 17}, {6, 1, 7},
}

func TestMatMulRemainderLanesMatchScalar(t *testing.T) {
	for _, sh := range matmulShapes {
		a := make([]float32, sh.m*sh.k)
		b := make([]float32, sh.k*sh.n)
		fillRandom(NewRNG(uint64(sh.m*1000+sh.k*10+sh.n)), a)
		fillRandom(NewRNG(uint64(sh.n*1000+sh.k)), b)
		want := make([]float32, sh.m*sh.n)
		got := make([]float32, sh.m*sh.n)
		MatMulScalar(want, a, b, sh.m, sh.k, sh.n)
		MatMul(got, a, b, sh.m, sh.k, sh.n)
		assertBitsEqual(t, "MatMul", sh.m, sh.k, sh.n, got, want)
		for _, be := range []Backend{Reference(), Parallel()} {
			be.MatMul(got, a, b, sh.m, sh.k, sh.n)
			assertBitsEqual(t, "backend "+be.Name(), sh.m, sh.k, sh.n, got, want)
		}
	}
}

// NaN and Inf in B disable the zero-skip fast path, so the non-finite
// values must flow through the unrolled multi-row accumulators exactly as
// through the scalar loop — same NaN payload bits included.
func TestMatMulNaNInfThroughUnrolledAccumulators(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, sh := range matmulShapes {
		a := make([]float32, sh.m*sh.k)
		b := make([]float32, sh.k*sh.n)
		fillRandom(NewRNG(uint64(sh.m+sh.k+sh.n)), a)
		fillRandom(NewRNG(uint64(sh.k*sh.n)), b)
		// Zeros in A meet NaN/Inf in B: 0*NaN and 0*Inf must surface.
		a[0] = 0
		b[0] = nan
		b[len(b)-1] = inf
		if len(b) > 2 {
			b[len(b)/2] = -inf
		}
		want := make([]float32, sh.m*sh.n)
		got := make([]float32, sh.m*sh.n)
		MatMulScalar(want, a, b, sh.m, sh.k, sh.n)
		MatMul(got, a, b, sh.m, sh.k, sh.n)
		assertBitsEqual(t, "MatMul NaN/Inf", sh.m, sh.k, sh.n, got, want)
	}
}

func assertBitsEqual(t *testing.T, what string, m, k, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s %dx%dx%d: [%d] = %x (%g), scalar %x (%g)",
				what, m, k, n, i, math.Float32bits(got[i]), got[i],
				math.Float32bits(want[i]), want[i])
		}
	}
}

// codecInputs builds a vector that forces every encode path: fast-class
// blocks (normals, zeros), slow-class lanes (NaN, Inf, subnormal results,
// overflow) mixed into otherwise-fast blocks, and RNE tie values.
func codecInputs() []float32 {
	src := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 65504, -65504, 65520, 1e9,
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		5.9604645e-08, 6.1035156e-05, 6.0975552e-05, 1.0009765625, 0.33325195,
		2.980232e-08, -2.9802326e-08, 3.05175781e-05, -1.52587891e-05,
	}
	rng := NewRNG(99)
	tail := make([]float32, 4096)
	rng.FillNormal(tail, 4)
	for i := range tail {
		switch i % 16 {
		case 3:
			tail[i] = 0
		case 7:
			tail[i] = float32(math.NaN()) // slow lane inside a fast block
		case 11:
			tail[i] *= 1e-6 // subnormal half range
		case 13:
			tail[i] *= 1e6 // overflow range
		}
	}
	return append(src, tail...)
}

func TestEncodeHalfMatchesScalarAllLengths(t *testing.T) {
	src := codecInputs()
	// Every length from 0 to a few blocks exercises every tail size, then
	// the full mixed vector.
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, len(src)} {
		want := make([]Half, n)
		got := make([]Half, n)
		EncodeHalfScalar(want, src[:n])
		EncodeHalf(got, src[:n])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("EncodeHalf len %d: [%d] = %#04x, scalar %#04x (src %g)",
					n, i, got[i], want[i], src[i])
			}
		}
	}
}

func TestDecodeHalfMatchesScalarAllLengths(t *testing.T) {
	hs := make([]Half, 4096)
	for i := range hs {
		hs[i] = Half(i * 37) // strides over normals, subnormals, NaN space
	}
	for _, n := range []int{0, 1, 7, 8, 9, 16, 31, 33, len(hs)} {
		want := make([]float32, n)
		got := make([]float32, n)
		DecodeHalfScalar(want, hs[:n])
		DecodeHalf(got, hs[:n])
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("DecodeHalf len %d: [%d] = %g, scalar %g", n, i, got[i], want[i])
			}
		}
	}
}

// HasNaNOrInf's carry-bit block scan must agree with the IsNaN/IsInf scalar
// scan for a non-finite value at every lane position and in the tail.
func TestHasNaNOrInfMatchesScalarEveryLane(t *testing.T) {
	bad := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
	for _, n := range []int{1, 7, 8, 9, 16, 23, 64} {
		x := make([]float32, n)
		fillRandom(NewRNG(uint64(n)), x)
		if HasNaNOrInf(x) != hasNaNOrInfScalar(x) || HasNaNOrInf(x) {
			t.Fatalf("len %d finite: lane scan disagrees with scalar", n)
		}
		for pos := 0; pos < n; pos++ {
			for _, v := range bad {
				save := x[pos]
				x[pos] = v
				if !HasNaNOrInf(x) || !hasNaNOrInfScalar(x) {
					t.Fatalf("len %d: %g at [%d] not detected", n, v, pos)
				}
				x[pos] = save
			}
		}
	}
}
