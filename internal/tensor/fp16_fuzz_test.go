package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFp16RoundTrip feeds arbitrary float32 bit patterns (including NaNs,
// infinities, subnormals and the rounding boundaries) through the
// block-processed codec and checks it stays bit-identical to the scalar
// reference in both directions, and that decode(encode(x)) matches the
// scalar round trip.
func FuzzFp16RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0x80, 0x7f})             // +Inf
	f.Add([]byte{1, 0, 0x80, 0x7f})             // signaling-ish NaN
	f.Add([]byte{0xff, 0xff, 0x7f, 0x47})       // just above binary16 max
	f.Add([]byte{0x00, 0x00, 0x80, 0x38, 0xcd}) // subnormal boundary + odd tail
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		src := make([]float32, n)
		for i := 0; i < n; i++ {
			src[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}

		got := make([]Half, n)
		want := make([]Half, n)
		EncodeHalf(got, src)
		EncodeHalfScalar(want, src)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("EncodeHalf[%d] = %#04x, scalar %#04x (input %08x)",
					i, got[i], want[i], math.Float32bits(src[i]))
			}
		}

		back := make([]float32, n)
		backScalar := make([]float32, n)
		DecodeHalf(back, got)
		DecodeHalfScalar(backScalar, want)
		for i := range back {
			if math.Float32bits(back[i]) != math.Float32bits(backScalar[i]) {
				t.Fatalf("DecodeHalf[%d] = %08x, scalar %08x (half %#04x)",
					i, math.Float32bits(back[i]), math.Float32bits(backScalar[i]), got[i])
			}
		}

		// A second trip through the codec must be a fixed point: binary16
		// values convert to float32 exactly, so re-encoding cannot move.
		again := make([]Half, n)
		EncodeHalf(again, back)
		for i := range again {
			if again[i] != got[i] {
				t.Fatalf("re-encode[%d] = %#04x, first trip %#04x", i, again[i], got[i])
			}
		}
	})
}
