package tensor

import "math"

// Serialization helpers (little endian) used when offloading fp32 optimizer
// states and fp16 parameter shards to byte-addressed storage (CPU staging
// buffers, NVMe regions).

// F32ToBytes serializes src into b (4 bytes per value, little endian).
// It panics if b is shorter than 4*len(src).
//
//zinf:hotpath
func F32ToBytes(b []byte, src []float32) {
	if len(src) == 0 {
		return
	}
	_ = b[4*len(src)-1]
	for i, f := range src {
		u := math.Float32bits(f)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
}

// F32FromBytes deserializes b into dst. It panics if b is shorter than
// 4*len(dst).
//
//zinf:hotpath
func F32FromBytes(dst []float32, b []byte) {
	if len(dst) == 0 {
		return
	}
	_ = b[4*len(dst)-1]
	for i := range dst {
		u := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		dst[i] = math.Float32frombits(u)
	}
}
