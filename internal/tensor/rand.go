package tensor

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. Every stochastic
// choice in the reproduction (weight init, synthetic batches) flows through
// RNG so that engines can be compared run-to-run bit for bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard-normal pseudo-random float64 (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillNormal fills x with N(0, std²) samples.
func (r *RNG) FillNormal(x []float32, std float64) {
	for i := range x {
		x[i] = float32(r.Norm() * std)
	}
}

// FillUniform fills x with uniform samples in [lo, hi).
func (r *RNG) FillUniform(x []float32, lo, hi float64) {
	for i := range x {
		x[i] = float32(lo + r.Float64()*(hi-lo))
	}
}

// Split derives an independent generator from the current state; successive
// Split calls yield distinct streams. Used to give each model layer its own
// deterministic init stream regardless of construction order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}
