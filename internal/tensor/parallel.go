package tensor

import "sync"

// The parallel backend: cache-blocked (tiled) kernels fanned out over a
// shared worker pool. Work is always partitioned at row (or element)
// granularity, and within a row every output element accumulates its
// contributions in exactly the serial order, so results are bit-identical to
// the Reference backend — the property the engine-equivalence tests assert
// end to end.
//
// Every kernel dispatches through a pooled kernArgs struct and a top-level
// chunk function (Pool.ParallelForCtx) instead of a per-call closure: a
// closure handed to the worker pool escapes to the heap, and the full-step
// zero-allocation contract (TestFullStepZeroAllocs) forbids even that one
// allocation per kernel launch.

// Tile sizes for the blocked matmuls. The B tile of the forward matmul
// (tileK×tileN fp32 = 128 KiB) is reused across every row of a worker's
// range, keeping it L2-resident instead of streaming B once per output row.
const (
	tileK = 128
	tileN = 256
	tileM = 16
)

// minParWork is the number of scalar operations below which a kernel runs
// inline on the caller: dispatching goroutines for tiny slices costs more
// than it saves.
const minParWork = 1 << 14

type parallel struct {
	pool *Pool
}

// Parallel returns the blocked multi-goroutine backend on the process-wide
// worker pool (sized from GOMAXPROCS at first use).
func Parallel() Backend { return &parallel{pool: sharedPool()} }

// NewParallel returns a parallel backend with its own pool of the given
// worker count — for tests and for callers that want to cap kernel
// parallelism independently of GOMAXPROCS.
func NewParallel(workers int) Backend { return &parallel{pool: NewPool(workers)} }

//zinf:hotpath
func (p *parallel) Name() string { return "parallel" }

// Grain converts a per-item cost (approximate scalar operations) into the
// minimum number of items per ParRange chunk, so each dispatched chunk
// carries at least minParWork operations. Callers with hand-rolled loops
// (attention heads, layernorm rows, bias adds) use it to pick a grain
// consistent with the built-in kernels.
//
//zinf:hotpath
func Grain(perItem int) int {
	if perItem <= 0 {
		return minParWork
	}
	g := minParWork / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// kernArgs carries one kernel call's operands to the package-level chunk
// functions — the generalization of the fp16 codec's codecArgs to every
// kernel. Pooling the struct and boxing only its pointer keeps kernel
// dispatch completely allocation-free at full fan-out.
type kernArgs struct {
	c, a, b  []float32
	hdst     []Half
	hsrc     []Half
	m, k, n  int
	alpha    float32
	skipZero bool
}

var kernArgsPool = sync.Pool{New: func() any { return new(kernArgs) }}

//zinf:hotpath
func (p *parallel) getArgs() *kernArgs { return kernArgsPool.Get().(*kernArgs) }

//zinf:hotpath
func (p *parallel) putArgs(a *kernArgs) {
	*a = kernArgs{}
	kernArgsPool.Put(a)
}

//zinf:hotpath
func matMulChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	matMulRows(a.c, a.a, a.b, lo, hi, a.k, a.n, a.skipZero)
}

//zinf:hotpath
func (p *parallel) MatMul(c, a, b []float32, m, k, n int) {
	checkLen("MatMul c", c, m*n)
	checkLen("MatMul a", a, m*k)
	checkLen("MatMul b", b, k*n)
	ka := p.getArgs()
	ka.c, ka.a, ka.b, ka.k, ka.n = c, a, b, k, n
	ka.skipZero = !HasNaNOrInf(b[:k*n])
	p.pool.ParallelForCtx(m, Grain(k*n), ka, matMulChunk)
	p.putArgs(ka)
}

// matMulRows computes rows [lo, hi) of C = A·B with the k dimension tiled:
// each tileK×n block of B is reused across the whole row range while it is
// cache-hot, instead of streaming all of B once per output row. The p-tile
// loop is outermost, and p ascends within each tile, so every element still
// accumulates its contributions in strictly increasing p order — bit-exact
// with the serial kernel. Row pairs run through the same p-blocked kernel
// as the reference MatMul (matMulPairBlocked), so both backends share one
// lane-accumulation schedule.
//
//zinf:hotpath
func matMulRows(c, a, b []float32, lo, hi, k, n int, skipZero bool) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
	}
	for pt := 0; pt < k; pt += tileK {
		pEnd := pt + tileK
		if pEnd > k {
			pEnd = k
		}
		i := lo
		for ; i+2 <= hi; i += 2 {
			matMulPairBlocked(c[i*n:(i+1)*n], c[(i+1)*n:(i+2)*n], b, n,
				pt, pEnd, a[i*k:(i+1)*k], a[(i+1)*k:(i+2)*k], skipZero)
		}
		for ; i < hi; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			if skipZero {
				for pi := pt; pi < pEnd; pi++ {
					av := ai[pi]
					if av == 0 {
						continue
					}
					axpyLanes(ci, b[pi*n:(pi+1)*n], av)
				}
			} else {
				for pi := pt; pi < pEnd; pi++ {
					axpyLanes(ci, b[pi*n:(pi+1)*n], ai[pi])
				}
			}
		}
	}
}

// matMulTransARows accumulates rows [lo, hi) of C += Aᵀ·B: row i of C is
// written only from column i of A, so worker ranges touch disjoint C rows
// while each element keeps the serial p-ascending accumulation order. Each B
// row is already reused across the worker's whole i range while cache-hot,
// so no further tiling is needed.
//
//zinf:hotpath
func matMulTransARows(c, a, b []float32, lo, hi, m, k, n int, skipZero bool) {
	for pi := 0; pi < k; pi++ {
		ap := a[pi*m+lo : pi*m+hi]
		bp := b[pi*n : (pi+1)*n]
		if skipZero {
			for ii, av := range ap {
				if av == 0 {
					continue
				}
				axpyLanes(c[(lo+ii)*n:(lo+ii+1)*n], bp, av)
			}
		} else {
			for ii, av := range ap {
				axpyLanes(c[(lo+ii)*n:(lo+ii+1)*n], bp, av)
			}
		}
	}
}

//zinf:hotpath
func matMulTransAChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	matMulTransARows(a.c, a.a, a.b, lo, hi, a.m, a.k, a.n, a.skipZero)
}

//zinf:hotpath
func (p *parallel) MatMulTransA(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransA c", c, m*n)
	checkLen("MatMulTransA a", a, k*m)
	checkLen("MatMulTransA b", b, k*n)
	ka := p.getArgs()
	ka.c, ka.a, ka.b, ka.m, ka.k, ka.n = c, a, b, m, k, n
	ka.skipZero = !HasNaNOrInf(b[:k*n])
	// Partition the m dimension (rows of C): disjoint output rows, serial
	// accumulation order within each element.
	p.pool.ParallelForCtx(m, Grain(k*n), ka, matMulTransAChunk)
	p.putArgs(ka)
}

// matMulTransBRows computes rows [lo, hi) of C = A·Bᵀ, tiling the row range
// so each B row is reused across tileM rows of A while it is cache-hot. Each
// output element is one dotLanes call — the same fixed lane schedule as the
// reference backend, so ordering is bit-exact by construction.
//
//zinf:hotpath
func matMulTransBRows(c, a, b []float32, lo, hi, k, n int) {
	for it := lo; it < hi; it += tileM {
		iEnd := it + tileM
		if iEnd > hi {
			iEnd = hi
		}
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			for i := it; i < iEnd; i++ {
				c[i*n+j] = dotLanes(a[i*k:(i+1)*k], bj)
			}
		}
	}
}

//zinf:hotpath
func matMulTransBChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	matMulTransBRows(a.c, a.a, a.b, lo, hi, a.k, a.n)
}

//zinf:hotpath
func (p *parallel) MatMulTransB(c, a, b []float32, m, k, n int) {
	checkLen("MatMulTransB c", c, m*n)
	checkLen("MatMulTransB a", a, m*k)
	checkLen("MatMulTransB b", b, n*k)
	ka := p.getArgs()
	ka.c, ka.a, ka.b, ka.k, ka.n = c, a, b, k, n
	p.pool.ParallelForCtx(m, Grain(k*n), ka, matMulTransBChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func geluChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	geluLanes(a.c[lo:hi], a.a[lo:hi])
}

//zinf:hotpath
func (p *parallel) Gelu(dst, x []float32) {
	checkLen("Gelu dst", dst, len(x))
	ka := p.getArgs()
	ka.c, ka.a = dst, x
	p.pool.ParallelForCtx(len(x), minParWork/8, ka, geluChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func geluBackwardChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	GeluBackward(a.c[lo:hi], a.a[lo:hi], a.b[lo:hi])
}

//zinf:hotpath
func (p *parallel) GeluBackward(dx, dy, x []float32) {
	checkLen("GeluBackward dx", dx, len(x))
	checkLen("GeluBackward dy", dy, len(x))
	ka := p.getArgs()
	ka.c, ka.a, ka.b = dx, dy, x
	p.pool.ParallelForCtx(len(x), minParWork/8, ka, geluBackwardChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func softmaxRowsChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	SoftmaxRows(a.c[lo*a.n:hi*a.n], hi-lo, a.n)
}

//zinf:hotpath
func (p *parallel) SoftmaxRows(x []float32, m, n int) {
	checkLen("SoftmaxRows x", x, m*n)
	ka := p.getArgs()
	ka.c, ka.n = x, n
	p.pool.ParallelForCtx(m, Grain(4*n), ka, softmaxRowsChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func softmaxRowsBackwardChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	SoftmaxRowsBackward(a.c[lo*a.n:hi*a.n], a.a[lo*a.n:hi*a.n], a.b[lo*a.n:hi*a.n], hi-lo, a.n)
}

//zinf:hotpath
func (p *parallel) SoftmaxRowsBackward(dx, dy, y []float32, m, n int) {
	checkLen("SoftmaxRowsBackward dx", dx, m*n)
	checkLen("SoftmaxRowsBackward dy", dy, m*n)
	checkLen("SoftmaxRowsBackward y", y, m*n)
	ka := p.getArgs()
	ka.c, ka.a, ka.b, ka.n = dx, dy, y, n
	p.pool.ParallelForCtx(m, Grain(2*n), ka, softmaxRowsBackwardChunk)
	p.putArgs(ka)
}

// codecGrain: the fp16 conversions are a few ops per element, so require
// large chunks before fanning out.
const codecGrain = minParWork / 8

//zinf:hotpath
func encodeChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	EncodeHalf(a.hdst[lo:hi], a.a[lo:hi])
}

//zinf:hotpath
func decodeChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	DecodeHalf(a.c[lo:hi], a.hsrc[lo:hi])
}

//zinf:hotpath
func (p *parallel) EncodeHalf(dst []Half, src []float32) {
	if len(dst) < len(src) {
		panic("tensor: EncodeHalf dst too short")
	}
	ka := p.getArgs()
	ka.hdst, ka.a = dst, src
	p.pool.ParallelForCtx(len(src), codecGrain, ka, encodeChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func (p *parallel) DecodeHalf(dst []float32, src []Half) {
	if len(dst) < len(src) {
		panic("tensor: DecodeHalf dst too short")
	}
	ka := p.getArgs()
	ka.c, ka.hsrc = dst, src
	p.pool.ParallelForCtx(len(src), codecGrain, ka, decodeChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func addChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	Add(a.c[lo:hi], a.a[lo:hi], a.b[lo:hi])
}

//zinf:hotpath
func (p *parallel) Add(dst, a, b []float32) {
	checkLen("Add dst", dst, len(a))
	checkLen("Add b", b, len(a))
	ka := p.getArgs()
	ka.c, ka.a, ka.b = dst, a, b
	p.pool.ParallelForCtx(len(a), minParWork, ka, addChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func mulChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	Mul(a.c[lo:hi], a.a[lo:hi], a.b[lo:hi])
}

//zinf:hotpath
func (p *parallel) Mul(dst, a, b []float32) {
	checkLen("Mul dst", dst, len(a))
	checkLen("Mul b", b, len(a))
	ka := p.getArgs()
	ka.c, ka.a, ka.b = dst, a, b
	p.pool.ParallelForCtx(len(a), minParWork, ka, mulChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func axpyChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	Axpy(a.alpha, a.a[lo:hi], a.c[lo:hi])
}

//zinf:hotpath
func (p *parallel) Axpy(alpha float32, x, y []float32) {
	checkLen("Axpy y", y, len(x))
	ka := p.getArgs()
	ka.c, ka.a, ka.alpha = y, x, alpha
	p.pool.ParallelForCtx(len(x), minParWork, ka, axpyChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func scaleChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	Scale(a.alpha, a.c[lo:hi])
}

//zinf:hotpath
func (p *parallel) Scale(alpha float32, x []float32) {
	ka := p.getArgs()
	ka.c, ka.alpha = x, alpha
	p.pool.ParallelForCtx(len(x), minParWork, ka, scaleChunk)
	p.putArgs(ka)
}

//zinf:hotpath
func transposeChunk(ctx any, lo, hi int) {
	a := ctx.(*kernArgs)
	for i := lo; i < hi; i++ {
		for j := 0; j < a.n; j++ {
			a.c[j*a.m+i] = a.a[i*a.n+j]
		}
	}
}

//zinf:hotpath
func (p *parallel) Transpose(dst, a []float32, m, n int) {
	checkLen("Transpose dst", dst, m*n)
	checkLen("Transpose a", a, m*n)
	ka := p.getArgs()
	ka.c, ka.a, ka.m, ka.n = dst, a, m, n
	p.pool.ParallelForCtx(m, Grain(n), ka, transposeChunk)
	p.putArgs(ka)
}

// Reductions stay serial: their float64 accumulation order is part of the
// cross-engine bit-exactness contract, and they are O(n) — not worth a
// nondeterministic tree reduction.
//
//zinf:hotpath
func (p *parallel) Sum(x []float32) float64 { return Sum(x) }

//zinf:hotpath
func (p *parallel) Dot(a, b []float32) float64 { return Dot(a, b) }

//zinf:hotpath
func (p *parallel) L2Norm(x []float32) float64 { return L2Norm(x) }

//zinf:hotpath
func (p *parallel) MaxAbs(x []float32) float32 { return MaxAbs(x) }

//zinf:hotpath
func (p *parallel) HasNaNOrInf(x []float32) bool { return HasNaNOrInf(x) }

func (p *parallel) ParRange(n, grain int, fn func(lo, hi int)) {
	p.pool.ParallelFor(n, grain, fn)
}

//zinf:hotpath
func (p *parallel) ParRangeCtx(n, grain int, ctx any, fn func(ctx any, lo, hi int)) {
	p.pool.ParallelForCtx(n, grain, ctx, fn)
}

var (
	_ Backend = (*parallel)(nil)
	_ Backend = reference{}
)
