// Package tensor implements the small dense-tensor substrate used by the
// ZeRO-Infinity reproduction: IEEE-754 binary16 ("FP16") storage with
// round-to-nearest-even conversion, float32 compute kernels, and a Tensor
// type carrying dtype and shape.
//
// The package mirrors the arithmetic contract of mixed-precision training on
// tensor-core hardware: parameters, gradients and activations are *stored* in
// FP16, while every accumulation happens in float32.
package tensor

import "math"

// Half is an IEEE-754 binary16 value stored in a uint16.
type Half uint16

// Binary16 constants.
const (
	halfSignMask = 0x8000
	halfExpMask  = 0x7c00
	halfFracMask = 0x03ff

	// HalfMax is the largest finite Half value (65504).
	HalfMax = float32(65504)
	// HalfSmallestNormal is the smallest positive normal Half (2^-14).
	HalfSmallestNormal = float32(6.103515625e-05)
)

// halfToF32 is the 64Ki-entry decode LUT: every binary16 bit pattern's exact
// float32 value, including NaN payloads (quiet bit and payload shift match
// the scalar conversion bit for bit). 256 KiB, built once at init from the
// scalar converter so the table is bit-identical to it by construction.
var halfToF32 [1 << 16]float32

func init() {
	for i := range halfToF32 {
		halfToF32[i] = float32FromHalfScalar(Half(i))
	}
}

// HalfFromFloat32 converts f to binary16 with round-to-nearest-even,
// handling NaN payloads, infinities, overflow to infinity, and subnormals.
// The conversion is branch-reduced: the common normal-range case is a
// single re-bias plus an arithmetic rounding increment (the carry out of the
// mantissa rolls into the exponent, which is exactly the correct RNE
// behaviour, including overflow to infinity). It is bit-identical to the
// original branchy scalar converter, kept below as halfFromFloat32Scalar.
//
//zinf:hotpath
func HalfFromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & halfSignMask
	m := b & 0x7fffffff

	switch {
	case m >= 0x7f800000: // Inf or NaN
		if m == 0x7f800000 {
			return Half(sign | halfExpMask)
		}
		// NaN: keep a quiet-NaN payload bit so it stays a NaN.
		return Half(sign | halfExpMask | 0x200 | uint16((m&0x7fffff)>>13))
	case m >= 0x47800000: // |f| >= 65536: overflow to infinity
		return Half(sign | halfExpMask)
	case m >= 0x38800000: // normal half range (e >= -14)
		// Re-bias exponent (127-15 in the fp32 position) and drop 13
		// mantissa bits; the increment term implements round-to-nearest-even
		// on the dropped bits and carries into the exponent when needed.
		h := uint16((m - 0x38000000) >> 13)
		return Half(sign + h + uint16((m&0x1fff+0xfff+uint32(h&1))>>13))
	case m >= 0x33800000: // subnormal half range (e in [-24, -15])
		shift := 126 - m>>23 // in [14, 23]
		full := m&0x7fffff | 0x800000
		mant := uint16(full >> shift)
		rem := full & (1<<shift - 1)
		// RNE: round up when rem > halfway, or rem == halfway and mant odd.
		return Half(sign | (mant + uint16((rem+(1<<(shift-1))-1+uint32(mant&1))>>shift)))
	default: // underflow -> signed zero
		return Half(sign)
	}
}

// halfFromFloat32Scalar is the original fully-branched converter, retained
// as the correctness baseline the branch-reduced encoder is tested against.
//
//zinf:hotpath
func halfFromFloat32Scalar(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & halfSignMask
	exp := int32(b>>23) & 0xff
	frac := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			// NaN: keep a quiet-NaN payload bit so it stays a NaN.
			return Half(sign | halfExpMask | 0x200 | uint16(frac>>13))
		}
		return Half(sign | halfExpMask)
	case exp == 0 && frac == 0: // signed zero
		return Half(sign)
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow -> infinity
		return Half(sign | halfExpMask)
	case e >= -14: // normal half
		// 10-bit mantissa; round-to-nearest-even on the 13 dropped bits.
		halfExp := uint16(e+15) << 10
		mant := uint16(frac >> 13)
		round := frac & 0x1fff
		if round > 0x1000 || (round == 0x1000 && mant&1 == 1) {
			// Carry may overflow mantissa into the exponent; that is the
			// correct rounding behaviour (e.g. 2047.5 -> 2048).
			return Half(sign + halfExp + mant + 1)
		}
		return Half(sign | halfExp | mant)
	case e >= -24: // subnormal half
		// Implicit leading 1 becomes explicit; shift right by (-14 - e).
		fullFrac := frac | 0x800000
		shift := uint32(-e - 14 + 13) // 13 base drop + extra denormal shift
		mant := uint16(fullFrac >> shift)
		rem := fullFrac & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && mant&1 == 1) {
			mant++
		}
		return Half(sign | mant)
	default: // underflow -> signed zero
		return Half(sign)
	}
}

// Float32 converts the binary16 value to float32 exactly (table lookup).
//
//zinf:hotpath
func (h Half) Float32() float32 { return halfToF32[h] }

// Float32FromHalf converts h to float32 exactly via the decode LUT.
//
//zinf:hotpath
func Float32FromHalf(h Half) float32 { return halfToF32[h] }

// float32FromHalfScalar is the original bit-manipulating decode, retained as
// the LUT generator and the exhaustive-equivalence baseline.
func float32FromHalfScalar(h Half) float32 {
	sign := uint32(h&halfSignMask) << 16
	exp := uint32(h&halfExpMask) >> 10
	frac := uint32(h & halfFracMask)

	switch {
	case exp == 0x1f: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | frac<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | frac<<13)
	case frac != 0: // subnormal: value = frac * 2^-24
		f := float32(frac) * float32(5.9604644775390625e-08) // 2^-24
		if sign != 0 {
			return -f
		}
		return f
	default:
		return math.Float32frombits(sign) // signed zero
	}
}

// IsNaN reports whether h is a NaN.
//
//zinf:hotpath
func (h Half) IsNaN() bool {
	return h&halfExpMask == halfExpMask && h&halfFracMask != 0
}

// IsInf reports whether h is an infinity.
//
//zinf:hotpath
func (h Half) IsInf() bool {
	return h&halfExpMask == halfExpMask && h&halfFracMask == 0
}

// HalfBytes is the storage size of one Half value.
const HalfBytes = 2

// encFastOK reports whether the fp32 magnitude bits m fall in the classes
// the block encoder handles inline: the normal binary16 range
// [0x38800000, 0x47800000) — the first comparison, via unsigned wraparound —
// or underflow-to-signed-zero (m < 0x33800000, which covers exact zeros).
//
//zinf:hotpath
func encFastOK(m uint32) bool {
	return m-0x38800000 < 0x0f000000 || m < 0x33800000
}

// encFast encodes one fast-class value (see encFastOK); bit-identical to
// HalfFromFloat32 on that domain. Small enough to inline into the block
// encoder's unrolled body.
//
//zinf:hotpath
func encFast(b, m uint32) Half {
	sign := uint16(b>>16) & halfSignMask
	if m < 0x33800000 {
		return Half(sign)
	}
	h := uint16((m - 0x38000000) >> 13)
	return Half(sign + h + uint16((m&0x1fff+0xfff+uint32(h&1))>>13))
}

// EncodeHalf converts src to binary16, storing into dst. It panics if dst is
// shorter than src. This is the serial kernel; Backend.EncodeHalf fans the
// same conversion out over the worker pool.
//
// The kernel is block-processed: eight values per iteration, classified
// with one combined branch. Training data is overwhelmingly zeros plus
// normal-range magnitudes, so blocks almost always take the inlined
// rebias-and-round fast path; a block containing any Inf/NaN/subnormal/
// overflow value falls back to the full converter for all eight lanes.
// Output is bit-identical to the per-element HalfFromFloat32 loop
// (EncodeHalfScalar) for every input.
//
//zinf:hotpath
func EncodeHalf(dst []Half, src []float32) {
	if len(dst) < len(src) {
		panic("tensor: EncodeHalf dst too short")
	}
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		b0, b1 := math.Float32bits(s[0]), math.Float32bits(s[1])
		b2, b3 := math.Float32bits(s[2]), math.Float32bits(s[3])
		b4, b5 := math.Float32bits(s[4]), math.Float32bits(s[5])
		b6, b7 := math.Float32bits(s[6]), math.Float32bits(s[7])
		m0, m1 := b0&0x7fffffff, b1&0x7fffffff
		m2, m3 := b2&0x7fffffff, b3&0x7fffffff
		m4, m5 := b4&0x7fffffff, b5&0x7fffffff
		m6, m7 := b6&0x7fffffff, b7&0x7fffffff
		if encFastOK(m0) && encFastOK(m1) && encFastOK(m2) && encFastOK(m3) &&
			encFastOK(m4) && encFastOK(m5) && encFastOK(m6) && encFastOK(m7) {
			d[0] = encFast(b0, m0)
			d[1] = encFast(b1, m1)
			d[2] = encFast(b2, m2)
			d[3] = encFast(b3, m3)
			d[4] = encFast(b4, m4)
			d[5] = encFast(b5, m5)
			d[6] = encFast(b6, m6)
			d[7] = encFast(b7, m7)
		} else {
			d[0] = HalfFromFloat32(s[0])
			d[1] = HalfFromFloat32(s[1])
			d[2] = HalfFromFloat32(s[2])
			d[3] = HalfFromFloat32(s[3])
			d[4] = HalfFromFloat32(s[4])
			d[5] = HalfFromFloat32(s[5])
			d[6] = HalfFromFloat32(s[6])
			d[7] = HalfFromFloat32(s[7])
		}
	}
	for ; i < n; i++ {
		dst[i] = HalfFromFloat32(src[i])
	}
}

// DecodeHalf converts src from binary16 into dst. It panics if dst is shorter
// than src. This is the serial kernel; Backend.DecodeHalf fans the same
// lookup out over the worker pool. Eight LUT lookups per iteration — the
// uint16 index never bounds-checks against the 64Ki table, so the unrolled
// body is pure loads and stores.
//
//zinf:hotpath
func DecodeHalf(dst []float32, src []Half) {
	if len(dst) < len(src) {
		panic("tensor: DecodeHalf dst too short")
	}
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = halfToF32[s[0]]
		d[1] = halfToF32[s[1]]
		d[2] = halfToF32[s[2]]
		d[3] = halfToF32[s[3]]
		d[4] = halfToF32[s[4]]
		d[5] = halfToF32[s[5]]
		d[6] = halfToF32[s[6]]
		d[7] = halfToF32[s[7]]
	}
	for ; i < n; i++ {
		dst[i] = halfToF32[src[i]]
	}
}

// RoundTripHalf rounds every element of x through binary16 in place,
// simulating an FP16 store + load. It returns x.
func RoundTripHalf(x []float32) []float32 {
	for i, f := range x {
		x[i] = halfToF32[HalfFromFloat32(f)]
	}
	return x
}

// HalfToBytes serializes h into b (little endian, 2 bytes per value).
// It panics if b is shorter than 2*len(h).
//
//zinf:hotpath
func HalfToBytes(b []byte, h []Half) {
	if len(h) == 0 {
		return
	}
	_ = b[2*len(h)-1]
	for i, v := range h {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
}

// HalfFromBytes deserializes b into h (little endian).
// It panics if b is shorter than 2*len(h).
//
//zinf:hotpath
func HalfFromBytes(h []Half, b []byte) {
	if len(h) == 0 {
		return
	}
	_ = b[2*len(h)-1]
	for i := range h {
		h[i] = Half(b[2*i]) | Half(b[2*i+1])<<8
	}
}
