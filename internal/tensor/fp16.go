// Package tensor implements the small dense-tensor substrate used by the
// ZeRO-Infinity reproduction: IEEE-754 binary16 ("FP16") storage with
// round-to-nearest-even conversion, float32 compute kernels, and a Tensor
// type carrying dtype and shape.
//
// The package mirrors the arithmetic contract of mixed-precision training on
// tensor-core hardware: parameters, gradients and activations are *stored* in
// FP16, while every accumulation happens in float32.
package tensor

import "math"

// Half is an IEEE-754 binary16 value stored in a uint16.
type Half uint16

// Binary16 constants.
const (
	halfSignMask = 0x8000
	halfExpMask  = 0x7c00
	halfFracMask = 0x03ff

	// HalfMax is the largest finite Half value (65504).
	HalfMax = float32(65504)
	// HalfSmallestNormal is the smallest positive normal Half (2^-14).
	HalfSmallestNormal = float32(6.103515625e-05)
)

// HalfFromFloat32 converts f to binary16 with round-to-nearest-even,
// handling NaN, infinities, overflow to infinity, and subnormals.
func HalfFromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & halfSignMask
	exp := int32(b>>23) & 0xff
	frac := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			// NaN: keep a quiet-NaN payload bit so it stays a NaN.
			return Half(sign | halfExpMask | 0x200 | uint16(frac>>13))
		}
		return Half(sign | halfExpMask)
	case exp == 0 && frac == 0: // signed zero
		return Half(sign)
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow -> infinity
		return Half(sign | halfExpMask)
	case e >= -14: // normal half
		// 10-bit mantissa; round-to-nearest-even on the 13 dropped bits.
		halfExp := uint16(e+15) << 10
		mant := uint16(frac >> 13)
		round := frac & 0x1fff
		if round > 0x1000 || (round == 0x1000 && mant&1 == 1) {
			// Carry may overflow mantissa into the exponent; that is the
			// correct rounding behaviour (e.g. 2047.5 -> 2048).
			return Half(sign + halfExp + mant + 1)
		}
		return Half(sign | halfExp | mant)
	case e >= -24: // subnormal half
		// Implicit leading 1 becomes explicit; shift right by (-14 - e).
		fullFrac := frac | 0x800000
		shift := uint32(-e - 14 + 13) // 13 base drop + extra denormal shift
		mant := uint16(fullFrac >> shift)
		rem := fullFrac & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && mant&1 == 1) {
			mant++
		}
		return Half(sign | mant)
	default: // underflow -> signed zero
		return Half(sign)
	}
}

// Float32 converts the binary16 value to float32 exactly.
func (h Half) Float32() float32 {
	sign := uint32(h&halfSignMask) << 16
	exp := uint32(h&halfExpMask) >> 10
	frac := uint32(h & halfFracMask)

	switch {
	case exp == 0x1f: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | frac<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | frac<<13)
	case frac != 0: // subnormal: value = frac * 2^-24
		f := float32(frac) * float32(5.9604644775390625e-08) // 2^-24
		if sign != 0 {
			return -f
		}
		return f
	default:
		return math.Float32frombits(sign) // signed zero
	}
}

// IsNaN reports whether h is a NaN.
func (h Half) IsNaN() bool {
	return h&halfExpMask == halfExpMask && h&halfFracMask != 0
}

// IsInf reports whether h is an infinity.
func (h Half) IsInf() bool {
	return h&halfExpMask == halfExpMask && h&halfFracMask == 0
}

// HalfBytes is the storage size of one Half value.
const HalfBytes = 2

// EncodeHalf converts src to binary16, storing into dst. It panics if dst is
// shorter than src.
func EncodeHalf(dst []Half, src []float32) {
	_ = dst[len(src)-1]
	for i, f := range src {
		dst[i] = HalfFromFloat32(f)
	}
}

// DecodeHalf converts src from binary16 into dst. It panics if dst is shorter
// than src.
func DecodeHalf(dst []float32, src []Half) {
	_ = dst[len(src)-1]
	for i, h := range src {
		dst[i] = h.Float32()
	}
}

// RoundTripHalf rounds every element of x through binary16 in place,
// simulating an FP16 store + load. It returns x.
func RoundTripHalf(x []float32) []float32 {
	for i, f := range x {
		x[i] = HalfFromFloat32(f).Float32()
	}
	return x
}

// HalfToBytes serializes h into b (little endian, 2 bytes per value).
// It panics if b is shorter than 2*len(h).
func HalfToBytes(b []byte, h []Half) {
	_ = b[2*len(h)-1]
	for i, v := range h {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
}

// HalfFromBytes deserializes b into h (little endian).
// It panics if b is shorter than 2*len(h).
func HalfFromBytes(h []Half, b []byte) {
	_ = b[2*len(h)-1]
	for i := range h {
		h[i] = Half(b[2*i]) | Half(b[2*i+1])<<8
	}
}
