package cliconfig

import (
	"flag"
	"reflect"
	"strings"
	"testing"

	zeroinf "repro"
)

func TestAddTrainParsesSharedFlags(t *testing.T) {
	tf := TrainDefaults()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	AddTrain(fs, &tf)
	err := fs.Parse([]string{
		"-engine", "zero3", "-backend", "reference", "-topology", "2x2:inter=10",
		"-partition", "broadcast", "-prefetch", "3", "-overlap=false", "-tiling", "2",
		"-ranks", "4", "-steps", "7", "-batch", "1", "-hidden", "32", "-vocab", "32",
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := tf.WorkerSpec()
	if err != nil {
		t.Fatal(err)
	}
	e := spec.Engine
	if e.Stage != zeroinf.Stage3 || e.Infinity {
		t.Fatalf("engine not zero3: %+v", e)
	}
	if e.Topology == nil || e.Topology.Nodes != 2 || e.Topology.InterGBps != 10 {
		t.Fatalf("topology = %+v", e.Topology)
	}
	if e.Partition != zeroinf.PartitionBroadcast || e.PrefetchDepth != 3 || e.Overlap {
		t.Fatalf("fabric flags not applied: %+v", e)
	}
	if spec.Model.Tiling != 2 || spec.Model.Hidden != 32 {
		t.Fatalf("model = %+v", spec.Model)
	}
	if spec.Steps != 7 || spec.BatchPerRank != 1 {
		t.Fatalf("run length = %+v", spec)
	}
}

func TestEngineConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*EngineFlags)
	}{
		{"unknown engine", func(e *EngineFlags) { e.Engine = "zero9" }},
		{"unknown backend", func(e *EngineFlags) { e.Backend = "cuda" }},
		{"bad topology", func(e *EngineFlags) { e.Topology = "2x" }},
		{"bad partition", func(e *EngineFlags) { e.Partition = "stripe" }},
		{"bad params placement", func(e *EngineFlags) { e.Engine = "infinity"; e.Params = "dram" }},
		{"bad opt placement", func(e *EngineFlags) { e.Engine = "infinity"; e.Opt = "dram" }},
	} {
		e := EngineDefaults()
		tc.mut(&e)
		if _, err := e.EngineConfig(zeroinf.EngineConfig{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// exampleConfig exercises every EngineConfig field class: nested Adam,
// pointer Topology, strings, bools, ints, floats.
func exampleConfig() zeroinf.EngineConfig {
	return zeroinf.EngineConfig{
		Infinity: true, Params: zeroinf.OnNVMe, Optimizer: zeroinf.OnCPU,
		OffloadActivations: true, PrefetchDepth: 3, Overlap: true,
		NVMeDir: "/tmp/nvme", GPUMemory: 1 << 30, PreFragment: 4096,
		Adam:      zeroinf.DefaultAdamConfig(),
		LossScale: 2048, DynamicLossScale: true, Seed: 99, ClipNorm: 1.5,
		Backend:       "parallel",
		Partition:     zeroinf.PartitionBroadcast,
		Topology:      &zeroinf.Topology{Nodes: 2, NodeSize: 2, IntraGBps: 50, InterLatencyUS: 3},
		CheckpointDir: "/tmp/ckpt", CheckpointEvery: 5,
	}
}

func TestEngineConfigJSONRoundTrip(t *testing.T) {
	for _, cfg := range []zeroinf.EngineConfig{{}, exampleConfig()} {
		data, err := MarshalEngineConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalEngineConfig(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(cfg, got) {
			t.Fatalf("round trip changed config:\n  in:  %+v\n  out: %+v", cfg, got)
		}
		// Stability: a second marshal of the decoded value is byte-equal.
		data2, err := MarshalEngineConfig(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("re-marshal unstable:\n  %s\n  %s", data, data2)
		}
	}
}

func TestUnmarshalEngineConfigRejectsGarbage(t *testing.T) {
	for _, tc := range []struct{ name, data string }{
		{"unknown top-level field", `{"Steps": 5}`},
		{"unknown nested field", `{"Topology": {"Nodess": 2}}`},
		{"trailing garbage", `{} {}`},
		{"wrong type", `{"Seed": "abc"}`},
		{"not json", `engine=zero3`},
	} {
		if _, err := UnmarshalEngineConfig([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.data)
		}
	}
}

func TestWorkerSpecJSONRoundTrip(t *testing.T) {
	spec := WorkerSpec{
		Model:  zeroinf.ModelConfig{Vocab: 64, Hidden: 64, Heads: 4, Seq: 16, Layers: 2, Tiling: 2},
		Engine: exampleConfig(),
		Steps:  10, BatchPerRank: 2, GradAccumSteps: 3, DataSeed: 7,
	}
	data, err := MarshalWorkerSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalWorkerSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("round trip changed spec:\n  in:  %+v\n  out: %+v", spec, got)
	}
	if _, err := UnmarshalWorkerSpec([]byte(`{"Model": {}, "Extra": 1}`)); err == nil {
		t.Error("unknown WorkerSpec field accepted")
	}
	if !strings.Contains(string(data), "Infinity") {
		t.Fatalf("spec JSON misses engine payload: %s", data)
	}
}

// FuzzEngineConfigJSON feeds arbitrary bytes through the strict decoder:
// anything that decodes must re-marshal and re-decode to the same value
// (round-trip stability), and the decoder must never accept input with
// unknown fields.
func FuzzEngineConfigJSON(f *testing.F) {
	seed, err := MarshalEngineConfig(exampleConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Stage": 2, "Overlap": true}`))
	f.Add([]byte(`{"Topology": {"Nodes": 2, "NodeSize": 4}}`))
	f.Add([]byte(`{"Unknown": 1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := UnmarshalEngineConfig(data)
		if err != nil {
			return // rejected input is fine; not crashing is the property
		}
		out, err := MarshalEngineConfig(cfg)
		if err != nil {
			t.Fatalf("decoded config failed to marshal: %v (input %q)", err, data)
		}
		cfg2, err := UnmarshalEngineConfig(out)
		if err != nil {
			t.Fatalf("own marshal output rejected: %v (json %s)", err, out)
		}
		out2, err := MarshalEngineConfig(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round trip unstable:\n  %s\n  %s", out, out2)
		}
	})
}
