// Package cliconfig centralizes the engine/fabric flag surface shared by
// the zinf command-line tools (zinf-train, zinf-bench, zinf-launch), so a
// flag's name, default, and help text are defined once, and provides the
// JSON wire form of a resolved training configuration — how zinf-launch
// ships an EngineConfig to its worker processes.
package cliconfig

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"strings"

	zeroinf "repro"
)

// Common is the flag block shared by every tool that builds engines or
// configures the harness fabric: compute backend, fabric topology,
// parameter partitioning, overlap/prefetch, and memory-centric tiling.
type Common struct {
	Backend   string
	Topology  string
	Partition string
	Prefetch  int
	Overlap   bool
	Tiling    int
}

// CommonDefaults returns the shared defaults. Tools with divergent
// defaults adjust the returned struct before registering (zinf-bench tiles
// at 4 because its fig6b experiment always contrasts dense vs tiled).
func CommonDefaults() Common {
	return Common{Backend: "reference", Partition: "slice", Prefetch: 2, Overlap: true, Tiling: 1}
}

// AddCommon registers the shared flags on fs, with c's current values as
// defaults; fs.Parse fills c.
func AddCommon(fs *flag.FlagSet, c *Common) {
	fs.StringVar(&c.Backend, "backend", c.Backend,
		"compute backend: "+strings.Join(zeroinf.Backends(), "|")+" (bit-identical, parallel uses all cores)")
	fs.StringVar(&c.Topology, "topology", c.Topology,
		"multi-node fabric spec <nodes>x<ranksPerNode>[:intra=GB/s][:inter=GB/s][:lintra=µs][:linter=µs][:flat]; "+
			"collectives decompose hierarchically and achieved aggregate bandwidth is reported (\"\" = flat)")
	fs.StringVar(&c.Partition, "partition", c.Partition,
		"stage-3/infinity parameter partitioning (Fig. 6c): slice (1/dp, all links) | broadcast (owner-rank)")
	fs.IntVar(&c.Prefetch, "prefetch", c.Prefetch,
		"overlap read-ahead depth: NVMe reads (infinity) and, with -overlap, speculative allgathers (zero3/infinity) for the next N trace entries (0 = off)")
	fs.BoolVar(&c.Overlap, "overlap", c.Overlap,
		"async collectives: launch reduce-scatters asynchronously and speculate allgathers -prefetch deep (bit-identical; zero3/infinity)")
	fs.IntVar(&c.Tiling, "tiling", c.Tiling,
		"memory-centric tiling factor: build qkv/proj/fc1/fc2 and the LM head as N-tile operators (must divide hidden and vocab; 1 = dense)")
}

// Apply validates the shared selections and writes them into cfg: the
// backend name is checked against the registry, the topology spec parsed,
// the partitioning name resolved. Tiling is a model knob and is not
// touched here.
func (c *Common) Apply(cfg *zeroinf.EngineConfig) error {
	if _, err := zeroinf.BackendByName(c.Backend); err != nil {
		return err
	}
	topo, err := zeroinf.ParseTopology(c.Topology)
	if err != nil {
		return err
	}
	part, err := zeroinf.ParsePartitioning(c.Partition)
	if err != nil {
		return err
	}
	cfg.Backend = c.Backend
	cfg.Topology = topo
	cfg.Partition = part
	cfg.PrefetchDepth = c.Prefetch
	cfg.Overlap = c.Overlap
	return nil
}

// EngineFlags extends Common with the engine selection and the
// Infinity-specific placement flags.
type EngineFlags struct {
	Common
	Engine     string
	Params     string
	Opt        string
	NVMeDir    string
	OffloadAct bool
}

// EngineDefaults returns zinf-train's engine flag defaults.
func EngineDefaults() EngineFlags {
	return EngineFlags{Common: CommonDefaults(), Engine: "infinity", Params: "cpu", Opt: "cpu"}
}

// AddEngine registers the engine flags (and the shared block) on fs.
func AddEngine(fs *flag.FlagSet, e *EngineFlags) {
	AddCommon(fs, &e.Common)
	fs.StringVar(&e.Engine, "engine", e.Engine, "ddp | zero1 | zero2 | zero-offload | zero3 | infinity")
	fs.StringVar(&e.Params, "params", e.Params, "infinity fp16 parameter placement: gpu|cpu|nvme")
	fs.StringVar(&e.Opt, "opt", e.Opt, "infinity optimizer placement: gpu|cpu|nvme")
	fs.StringVar(&e.NVMeDir, "nvme-dir", e.NVMeDir, "directory for the file-backed NVMe store")
	fs.BoolVar(&e.OffloadAct, "offload-act", e.OffloadAct, "offload activation checkpoints to CPU (infinity)")
}

// ParsePlacement resolves a tier name to a Placement.
func ParsePlacement(s string) (zeroinf.Placement, error) {
	switch strings.ToLower(s) {
	case "gpu":
		return zeroinf.OnGPU, nil
	case "cpu":
		return zeroinf.OnCPU, nil
	case "nvme":
		return zeroinf.OnNVMe, nil
	}
	return zeroinf.OnGPU, fmt.Errorf("unknown placement %q (gpu|cpu|nvme)", s)
}

// EngineConfig resolves the full engine selection into base — which carries
// the fields this flag block does not own (loss scaling, seed, clipping,
// checkpointing) — and returns the completed config.
func (e *EngineFlags) EngineConfig(base zeroinf.EngineConfig) (zeroinf.EngineConfig, error) {
	cfg := base
	if err := e.Apply(&cfg); err != nil {
		return cfg, err
	}
	switch e.Engine {
	case "ddp":
		cfg.Stage = zeroinf.StageDDP
	case "zero1":
		cfg.Stage = zeroinf.Stage1
	case "zero2":
		cfg.Stage = zeroinf.Stage2
	case "zero-offload":
		cfg.Stage = zeroinf.Stage2
		cfg.OffloadOptimizer = true
	case "zero3":
		cfg.Stage = zeroinf.Stage3
	case "infinity":
		cfg.Infinity = true
		cfg.OffloadActivations = e.OffloadAct
		cfg.NVMeDir = e.NVMeDir
		var err error
		if cfg.Params, err = ParsePlacement(e.Params); err != nil {
			return cfg, err
		}
		if cfg.Optimizer, err = ParsePlacement(e.Opt); err != nil {
			return cfg, err
		}
	default:
		return cfg, fmt.Errorf("unknown engine %q", e.Engine)
	}
	return cfg, nil
}

// TrainFlags is the full zinf-train / zinf-launch flag surface: engine
// selection plus the model shape and run length.
type TrainFlags struct {
	EngineFlags
	Ranks, Steps, Batch, Accum   int
	Vocab, Hidden, Layers, Heads int
	Seq                          int
	Ckpt                         bool
	Scale                        float64
	Seed                         uint64
	Clip                         float64
}

// TrainDefaults returns zinf-train's historical defaults.
func TrainDefaults() TrainFlags {
	return TrainFlags{
		EngineFlags: EngineDefaults(),
		Ranks:       4, Steps: 20, Batch: 2, Accum: 1,
		Vocab: 64, Hidden: 64, Layers: 2, Heads: 4, Seq: 16,
		Scale: 1024, Seed: 42,
	}
}

// AddTrain registers the training flags (and the engine + shared blocks) on
// fs.
func AddTrain(fs *flag.FlagSet, t *TrainFlags) {
	AddEngine(fs, &t.EngineFlags)
	fs.IntVar(&t.Ranks, "ranks", t.Ranks, "data-parallel ranks (goroutine GPUs, or worker processes under zinf-launch)")
	fs.IntVar(&t.Steps, "steps", t.Steps, "training steps")
	fs.IntVar(&t.Batch, "batch", t.Batch, "batch per rank")
	fs.IntVar(&t.Accum, "accum", t.Accum, "gradient accumulation micro-batches per step")
	fs.IntVar(&t.Vocab, "vocab", t.Vocab, "vocabulary size")
	fs.IntVar(&t.Hidden, "hidden", t.Hidden, "hidden dimension")
	fs.IntVar(&t.Layers, "layers", t.Layers, "transformer layers")
	fs.IntVar(&t.Heads, "heads", t.Heads, "attention heads")
	fs.IntVar(&t.Seq, "seq", t.Seq, "sequence length")
	fs.BoolVar(&t.Ckpt, "ckpt", t.Ckpt, "activation checkpointing")
	fs.Float64Var(&t.Scale, "loss-scale", t.Scale, "initial loss scale")
	fs.Uint64Var(&t.Seed, "seed", t.Seed, "init seed")
	fs.Float64Var(&t.Clip, "clip", t.Clip, "global gradient-norm clip (0 = off)")
}

// ModelConfig builds the model shape from the flags.
func (t *TrainFlags) ModelConfig() zeroinf.ModelConfig {
	return zeroinf.ModelConfig{
		Vocab: t.Vocab, Hidden: t.Hidden, Layers: t.Layers, Heads: t.Heads, Seq: t.Seq,
		CheckpointActivations: t.Ckpt || t.OffloadAct,
		Tiling:                t.Tiling,
	}
}

// WorkerSpec is the complete training recipe zinf-launch ships to each
// worker process (as JSON in the ZINF_CONFIG environment variable): the
// resolved engine config plus everything else a rank needs to reproduce
// the exact trajectory.
type WorkerSpec struct {
	Model          zeroinf.ModelConfig
	Engine         zeroinf.EngineConfig
	Steps          int
	BatchPerRank   int
	GradAccumSteps int
	DataSeed       uint64
}

// WorkerSpec resolves the flags into the shippable spec.
func (t *TrainFlags) WorkerSpec() (WorkerSpec, error) {
	ecfg, err := t.EngineConfig(zeroinf.EngineConfig{
		LossScale: t.Scale, DynamicLossScale: true, Seed: t.Seed, ClipNorm: t.Clip,
	})
	if err != nil {
		return WorkerSpec{}, err
	}
	return WorkerSpec{
		Model:          t.ModelConfig(),
		Engine:         ecfg,
		Steps:          t.Steps,
		BatchPerRank:   t.Batch,
		GradAccumSteps: t.Accum,
	}, nil
}

// MarshalEngineConfig renders cfg as JSON. The encoding round-trips: every
// EngineConfig field is a value type (the Topology pointer's fields
// included), so Unmarshal(Marshal(cfg)) reproduces cfg exactly.
func MarshalEngineConfig(cfg zeroinf.EngineConfig) ([]byte, error) {
	return json.Marshal(cfg)
}

// UnmarshalEngineConfig parses a JSON EngineConfig strictly: unknown fields
// are rejected, so a launcher/worker version skew fails loudly instead of
// silently dropping a knob that changes the trajectory.
func UnmarshalEngineConfig(data []byte) (zeroinf.EngineConfig, error) {
	var cfg zeroinf.EngineConfig
	err := strictUnmarshal(data, &cfg)
	return cfg, err
}

// MarshalWorkerSpec renders the spec as JSON for ZINF_CONFIG.
func MarshalWorkerSpec(spec WorkerSpec) ([]byte, error) {
	return json.Marshal(spec)
}

// UnmarshalWorkerSpec parses a JSON WorkerSpec strictly (see
// UnmarshalEngineConfig).
func UnmarshalWorkerSpec(data []byte) (WorkerSpec, error) {
	var spec WorkerSpec
	err := strictUnmarshal(data, &spec)
	return spec, err
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cliconfig: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("cliconfig: trailing data after JSON document")
	}
	return nil
}
