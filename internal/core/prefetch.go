package core

import "repro/internal/tensor"

// prefetcher is the overlap-centric design's dynamic prefetcher (paper Sec.
// 6.2): during the first iteration it traces the sequence of parameter
// gathers (the operator sequence); in subsequent iterations it issues
// asynchronous NVMe reads for the shards the next operators will need while
// the current operator executes, so the nc-transfer of parameter i+k
// overlaps the compute of parameter i. If the operator sequence changes
// (dynamic control flow), the trace is re-learned lazily: unmatched gathers
// fall back to synchronous reads and are appended to the new trace.
type prefetcher struct {
	e     *InfinityEngine
	depth int

	trace   []*pstate
	tracing bool
	pos     int
	// outstanding counts speculative reads holding pinned buffers. It must
	// stay strictly below the pinned pool size or a synchronous fetch could
	// starve (the buffer-budget invariant enforced in issue()).
	outstanding int
}

func newPrefetcher(e *InfinityEngine, depth int) *prefetcher {
	return &prefetcher{e: e, depth: depth, tracing: true}
}

// beginStep resets the trace cursor for a new iteration.
func (pf *prefetcher) beginStep() {
	pf.pos = 0
	if pf.tracing {
		pf.trace = pf.trace[:0]
	}
}

// endStep finishes the learning iteration and drops any unconsumed
// speculative fetches.
func (pf *prefetcher) endStep() {
	pf.tracing = false
	for _, ps := range pf.trace {
		if ps.inflight != nil {
			// Drain speculative reads that the step never consumed.
			_ = ps.inflight.ticket.Wait()
			pf.e.pinned.Release(ps.inflight.buf[:pf.e.cfg.PinnedBufBytes])
			ps.inflight = nil
			pf.outstanding--
		}
	}
}

// consumed notes that a gather claimed an in-flight buffer.
func (pf *prefetcher) consumed() { pf.outstanding-- }

// record appends to the trace during the learning iteration.
func (pf *prefetcher) record(ps *pstate) {
	if pf.tracing {
		pf.trace = append(pf.trace, ps)
	}
}

// advanceTo aligns the cursor with the gather that is about to happen.
func (pf *prefetcher) advanceTo(ps *pstate) {
	if pf.tracing {
		return
	}
	for i := pf.pos; i < len(pf.trace) && i < pf.pos+2*pf.depth+4; i++ {
		if pf.trace[i] == ps {
			pf.pos = i + 1
			return
		}
	}
	// Sequence diverged from the trace: relearn next step.
	pf.tracing = true
}

// issue starts asynchronous reads for the next depth upcoming shards.
func (pf *prefetcher) issue() {
	if pf.tracing {
		return
	}
	for i := pf.pos; i < len(pf.trace) && pf.outstanding < pf.depth; i++ {
		ps := pf.trace[i]
		if ps.inflight != nil || ps.p.Materialized() {
			continue
		}
		buf, ok := pf.e.pinned.TryAcquire()
		if !ok {
			return // pool exhausted: back-pressure, stop speculating
		}
		t := pf.e.io.ReadRegion(buf[:ps.region.Size], ps.region)
		ps.inflight = &inflightFetch{ticket: t, buf: buf}
		pf.e.stats.PrefetchIssued++
		pf.outstanding++
	}
}

var _ = tensor.HalfBytes // keep import if unused in some builds
