package core

// prefetcher is the NVMe half of the overlap-centric design (paper Sec.
// 6.2): driven by the engine's shared gather trace (internal/overlap), it
// issues asynchronous NVMe reads for the shards the next operators will
// need while the current operator executes, so the nc-transfer of parameter
// i+k overlaps the compute of parameter i. Learning and divergence handling
// (mid-step relearn) live in the shared trace; this type only manages the
// pinned-buffer budget and the in-flight reads. A speculative read is
// consumed either by the gather itself (shardHalf) or by the comm
// prefetcher, which allgathers the freshly read shard ahead of time.
type prefetcher struct {
	e     *InfinityEngine
	depth int

	// outstanding counts speculative reads holding pinned buffers. It must
	// stay strictly below the pinned pool size or a synchronous fetch could
	// starve (the buffer-budget invariant enforced in issue()).
	outstanding int
	// inflight lists pstates whose speculative reads may still be pending,
	// for the end-of-step drain. Consumed entries have ps.inflight == nil
	// and are skipped.
	inflight []*pstate
}

func newPrefetcher(e *InfinityEngine, depth int) *prefetcher {
	return &prefetcher{e: e, depth: depth}
}

// endStep drops any speculative fetches the step never consumed.
func (pf *prefetcher) endStep() {
	for _, ps := range pf.inflight {
		if ps.inflight != nil {
			_ = ps.inflight.ticket.Wait()
			pf.e.pinned.Release(ps.inflight.buf[:pf.e.cfg.PinnedBufBytes])
			ps.inflight = nil
		}
	}
	pf.inflight = pf.inflight[:0]
	pf.outstanding = 0
}

// consumed notes that a gather (or the comm prefetcher) claimed an
// in-flight buffer.
func (pf *prefetcher) consumed() { pf.outstanding-- }

// issue starts asynchronous reads for the next depth upcoming shards. All
// decisions are pure functions of the trace and the engine's own
// consumption sequence, never of I/O timing.
func (pf *prefetcher) issue() {
	pf.e.trace.Each(func(ps *pstate) bool {
		if pf.outstanding >= pf.depth {
			return false
		}
		if ps.shardLen == 0 {
			// Owner-rank partitioning: this rank holds no shard (and no NVMe
			// region) for the parameter — nothing to read ahead. Reads are
			// rank-local, so skipping here cannot desynchronize ranks.
			return true
		}
		if ps.inflight != nil || ps.commInflight.fullH != nil || ps.p.Materialized() {
			return true
		}
		buf, ok := pf.e.pinned.TryAcquire()
		if !ok {
			return false // pool exhausted: back-pressure, stop speculating
		}
		t := pf.e.io.ReadRegion(buf[:ps.region.Size], ps.region)
		ps.inflight = &inflightFetch{ticket: t, buf: buf, born: pf.e.stats.Gathers}
		pf.inflight = append(pf.inflight, ps)
		pf.e.stats.PrefetchIssued++
		pf.outstanding++
		return true
	})
}
