package core

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// BenchmarkOverlapStep compares one training step with the collectives
// fully synchronous against the overlap-centric configuration (gather
// prefetch + async reduce-scatter), for both the stage-3 engine and the
// infinity engine. Synchronous collectives run all ranks in lockstep — every
// module boundary is a rendezvous stall — while overlap lets rank
// goroutines drift by up to PrefetchDepth gathers, which is the real-engine
// counterpart of the simulator's Fig. 6d overlap ablation. At small batch
// (communication-dominated steps) on a multi-core host the overlap
// configuration should win; it must never lose meaningfully.
func BenchmarkOverlapStep(b *testing.B) {
	mcfg := model.Config{Vocab: 32, Hidden: 32, Heads: 4, Seq: 12, Layers: 4}
	const ranks, batch = 4, 1
	tokens, targets := makeBatches(mcfg, 1, ranks, batch)

	b.Run("engine=z3/overlap=off", func(b *testing.B) {
		benchZ3(b, mcfg, zero.Config{LossScale: 64, Seed: 3}, tokens, targets, batch)
	})
	b.Run("engine=z3/overlap=on", func(b *testing.B) {
		benchZ3(b, mcfg, zero.Config{LossScale: 64, Seed: 3, PrefetchDepth: 3, Overlap: true},
			tokens, targets, batch)
	})
	for _, place := range []zero.Placement{zero.OnCPU, zero.OnNVMe} {
		cfg := Config{Params: place, Optimizer: place, LossScale: 64, Seed: 3}
		b.Run(fmt.Sprintf("engine=infinity-%s/overlap=off", place), func(b *testing.B) {
			benchInfinity(b, mcfg, cfg, tokens, targets, batch)
		})
		ocfg := cfg
		ocfg.PrefetchDepth = 3
		ocfg.Overlap = true
		b.Run(fmt.Sprintf("engine=infinity-%s/overlap=on", place), func(b *testing.B) {
			benchInfinity(b, mcfg, ocfg, tokens, targets, batch)
		})
	}
}

func benchZ3(b *testing.B, mcfg model.Config, cfg zero.Config, tokens, targets [][][]int, batch int) {
	b.ReportAllocs()
	comm.Run(4, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := zero.NewZ3Engine(cfg, c, g)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], batch)
		}
	})
}

func benchInfinity(b *testing.B, mcfg model.Config, cfg Config, tokens, targets [][][]int, batch int) {
	b.ReportAllocs()
	comm.Run(4, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(cfg, c, g)
		if err != nil {
			b.Error(err)
			return
		}
		defer e.Close()
		for i := 0; i < b.N; i++ {
			if _, serr := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], batch); serr != nil {
				b.Error(serr)
				return
			}
		}
	})
}
