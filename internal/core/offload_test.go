package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/nvme"
	"repro/internal/zero"
)

var errInjectedRead = errors.New("injected read failure")

// failingStore wraps a Store and fails every ReadAt after the first allow
// successes. Writes always succeed.
type failingStore struct {
	nvme.Store
	allow int64
	reads atomic.Int64
}

func (s *failingStore) ReadAt(p []byte, off int64) (int, error) {
	if s.reads.Add(1) > s.allow {
		return 0, errInjectedRead
	}
	return s.Store.ReadAt(p, off)
}

// Regression test for the optimizerStepNVMe error path: when a streamed
// optimizer read fails, the already-issued prefetch read for the next
// parameter used to be abandoned (its pinned buffer never released, its
// in-flight I/O never awaited) and outstanding async writes were not drained
// before returning. After the error every pinned buffer must be back in the
// pool and no I/O may still be in flight.
func TestOptimizerStepNVMeErrorReleasesPrefetchSlot(t *testing.T) {
	mcfg := testModelCfg(false)
	tokens, targets := makeBatches(mcfg, 1, 1, testBatch)
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(Config{
			Params: zero.OnCPU, Optimizer: zero.OnNVMe,
			LossScale: 32, Seed: 2,
		}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()

		// Swap in an I/O engine whose store fails reads after the first one:
		// the pipeline then has a processed parameter (async write in
		// flight), a failed current read, and a failing prefetched read all
		// outstanding at once.
		e.io.Close()
		fs := &failingStore{Store: e.store, allow: 1}
		e.io = nvme.NewEngine(fs, nvme.Options{Workers: 2})
		defer e.io.Close()

		_, serr := e.Step(tokens[0][0], targets[0][0], testBatch)
		if serr == nil {
			t.Error("step with failing optimizer reads succeeded")
			return
		}
		if !errors.Is(serr, errInjectedRead) {
			t.Errorf("unexpected error: %v", serr)
		}
		// Every pinned buffer must be back: the failed current slot, the
		// abandoned prefetch slot, and the write slots via their reapers.
		for i := 0; i < e.cfg.PinnedBuffers; i++ {
			buf, ok := e.pinned.TryAcquire()
			if !ok {
				t.Errorf("pinned buffer %d/%d leaked on the error path", i+1, e.cfg.PinnedBuffers)
				return
			}
			defer e.pinned.Release(buf)
		}
	})
}
