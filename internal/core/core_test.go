package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/zero"
)

const (
	testRanks = 4
	testSteps = 4
	testBatch = 2
)

func testModelCfg(ckpt bool) model.Config {
	return model.Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2, CheckpointActivations: ckpt}
}

func makeBatches(cfg model.Config, steps, ranks, batch int) (tokens, targets [][][]int) {
	tokens = make([][][]int, steps)
	targets = make([][][]int, steps)
	for s := 0; s < steps; s++ {
		tokens[s] = make([][]int, ranks)
		targets[s] = make([][]int, ranks)
		for r := 0; r < ranks; r++ {
			rng := tensor.NewRNG(uint64(9000 + s*100 + r))
			tokens[s][r], targets[s][r] = model.SyntheticBatch(rng, cfg, batch)
		}
	}
	return
}

type trajectory struct {
	losses []float64
	params map[string][]float32
	stats  Stats
}

func runDDP(t *testing.T, mcfg model.Config) trajectory {
	t.Helper()
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out trajectory
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := zero.NewDPEngine(zero.Config{Stage: zero.StageDDP, LossScale: 256, Seed: 42}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		var losses []float64
		for s := 0; s < testSteps; s++ {
			losses = append(losses, e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch).Loss)
		}
		p := e.FullParams()
		if c.Rank() == 0 {
			mu.Lock()
			out = trajectory{losses: losses, params: p}
			mu.Unlock()
		}
	})
	return out
}

func runInfinity(t *testing.T, mcfg model.Config, ecfg Config) trajectory {
	t.Helper()
	ecfg.LossScale = 256
	ecfg.Seed = 42
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out trajectory
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(ecfg, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		var losses []float64
		for s := 0; s < testSteps; s++ {
			res, err := e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch)
			if err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), s, err)
				return
			}
			losses = append(losses, res.Loss)
		}
		p := e.FullParams()
		if c.Rank() == 0 {
			mu.Lock()
			out = trajectory{losses: losses, params: p, stats: e.Stats()}
			mu.Unlock()
		}
	})
	return out
}

func assertSame(t *testing.T, name string, a, b trajectory) {
	t.Helper()
	if len(b.losses) != len(a.losses) {
		t.Fatalf("%s: ran %d steps, want %d", name, len(b.losses), len(a.losses))
	}
	for i := range a.losses {
		if a.losses[i] != b.losses[i] {
			t.Fatalf("%s: loss diverged at step %d: %.17g vs %.17g", name, i, a.losses[i], b.losses[i])
		}
	}
	for pname, av := range a.params {
		bv := b.params[pname]
		if len(bv) != len(av) {
			t.Fatalf("%s: param %s missing/short", name, pname)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: param %s[%d]: %g vs %g", name, pname, i, av[i], bv[i])
			}
		}
	}
}

// The headline correctness result: ZeRO-Infinity with any placement —
// including both states on NVMe with prefetch and activation offload —
// trains bit-identically to plain data parallelism.
func TestInfinityPlacementsBitIdenticalToDDP(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ckpt bool
	}{
		{"gpu-gpu", Config{Params: zero.OnGPU, Optimizer: zero.OnGPU}, false},
		{"cpu-cpu", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU}, false},
		{"cpu-nvme", Config{Params: zero.OnCPU, Optimizer: zero.OnNVMe}, false},
		{"nvme-nvme", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe}, false},
		{"nvme-nvme+prefetch", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 3}, false},
		{"nvme-nvme+ckpt-offload", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, OffloadActivations: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mcfg := testModelCfg(tc.ckpt)
			ddp := runDDP(t, mcfg)
			got := runInfinity(t, mcfg, tc.cfg)
			assertSame(t, tc.name, ddp, got)
		})
	}
}

// Regression test: a prefetch depth at or above the pinned-buffer count
// must not starve synchronous fetches (the speculative reads are budgeted
// below the pool size). This deadlocked before the outstanding-counter fix.
func TestPrefetchDepthExceedingPoolDoesNotDeadlock(t *testing.T) {
	mcfg := model.Config{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 3, CheckpointActivations: true}
	tokens, targets := makeBatches(mcfg, 3, 2, testBatch)
	done := make(chan struct{})
	go func() {
		defer close(done)
		comm.Run(2, func(c *comm.Comm) {
			g := model.MustGPT(mcfg)
			e, err := NewInfinityEngine(Config{
				Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
				PrefetchDepth: 16, PinnedBuffers: 3,
				LossScale: 32, Seed: 5,
			}, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			for s := 0; s < 3; s++ {
				if _, serr := e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch); serr != nil {
					t.Errorf("step %d: %v", s, serr)
					return
				}
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: prefetcher starved the pinned pool")
	}
}

func TestPrefetcherIssuesAndHits(t *testing.T) {
	mcfg := testModelCfg(false)
	got := runInfinity(t, mcfg, Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 3})
	if got.stats.PrefetchIssued == 0 {
		t.Fatal("prefetcher issued nothing")
	}
	if got.stats.PrefetchHits == 0 {
		t.Fatal("no prefetch hits")
	}
	if got.stats.PrefetchHits > got.stats.PrefetchIssued {
		t.Fatalf("hits %d > issued %d", got.stats.PrefetchHits, got.stats.PrefetchIssued)
	}
}

// The pinned memory management layer: a fixed small pool streams the entire
// offloaded state, so pinned bytes stay constant while NVMe traffic is far
// larger (paper Sec. 6.3).
func TestPinnedPoolBoundedWhileStreaming(t *testing.T) {
	mcfg := testModelCfg(false)
	got := runInfinity(t, mcfg, Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe})
	if got.stats.PinnedBytes == 0 {
		t.Fatal("no pinned pool in use")
	}
	if got.stats.NVMeBytesRead < 4*got.stats.PinnedBytes {
		t.Fatalf("NVMe read %d not >> pinned %d; reuse not demonstrated",
			got.stats.NVMeBytesRead, got.stats.PinnedBytes)
	}
	if got.stats.PinnedAcquires <= 4 {
		t.Fatalf("pinned acquires %d too small", got.stats.PinnedAcquires)
	}
}

func TestActivationOffloadMovesBytes(t *testing.T) {
	mcfg := testModelCfg(true)
	got := runInfinity(t, mcfg, Config{Params: zero.OnCPU, Optimizer: zero.OnCPU, OffloadActivations: true})
	if got.stats.CkptBytesOffload == 0 {
		t.Fatal("no checkpoint bytes offloaded")
	}
}

func TestExternalParamHandledAcrossPlacements(t *testing.T) {
	mcfg := testModelCfg(false)
	got := runInfinity(t, mcfg, Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe})
	if got.stats.OnDemandGathers != 1 {
		t.Fatalf("OnDemandGathers = %d, want exactly 1 (first-iteration auto-registration)", got.stats.OnDemandGathers)
	}
}

func TestGPUBudgetEnforced(t *testing.T) {
	mcfg := testModelCfg(false)
	tokens, targets := makeBatches(mcfg, 1, 1, testBatch)
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		// Budget below the largest parameter: the first gather must fail.
		e, err := NewInfinityEngine(Config{
			Params: zero.OnCPU, Optimizer: zero.OnCPU,
			GPUMemory: 64, LossScale: 1, Seed: 1,
		}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		_, serr := e.Step(tokens[0][0], targets[0][0], testBatch)
		if serr == nil {
			t.Error("step under impossible budget succeeded")
			return
		}
		if !ErrIsOOM(serr) {
			t.Errorf("unexpected error type: %v", serr)
		}
	})
}

func TestGPUBudgetPeakTracked(t *testing.T) {
	mcfg := testModelCfg(false)
	tokens, targets := makeBatches(mcfg, 1, 1, testBatch)
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(Config{
			Params: zero.OnCPU, Optimizer: zero.OnCPU,
			GPUMemory: 1 << 20, LossScale: 1, Seed: 1,
		}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		if _, serr := e.Step(tokens[0][0], targets[0][0], testBatch); serr != nil {
			t.Errorf("step failed: %v", serr)
			return
		}
		st := e.Stats()
		if st.GPUPeakBytes == 0 {
			t.Error("no GPU peak recorded")
		}
		// Fetch-and-release keeps the peak far below the full fp16 model.
		full := int64(0)
		for _, p := range e.params {
			full += p.FP16Bytes()
		}
		if st.GPUPeakBytes >= full {
			t.Errorf("peak %d not below full model %d — release not working", st.GPUPeakBytes, full)
		}
	})
}

func TestFileBackedNVMeStore(t *testing.T) {
	mcfg := testModelCfg(false)
	tokens, targets := makeBatches(mcfg, 2, 1, testBatch)
	dir := t.TempDir()
	comm.Run(1, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(Config{
			Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
			NVMeDir: dir, LossScale: 32, Seed: 3,
		}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		for s := 0; s < 2; s++ {
			if _, serr := e.Step(tokens[s][0], targets[s][0], testBatch); serr != nil {
				t.Errorf("step %d: %v", s, serr)
				return
			}
		}
		if e.Stats().NVMeBytesWritten == 0 {
			t.Error("file store saw no writes")
		}
	})
}
