package core

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// Ablation benchmarks over the infinity offload engine's design knobs: the
// prefetch depth (overlap-centric design), the pinned staging pool size
// (pinned memory management layer), and the I/O worker count (DeepNVMe
// parallelization). Run with:
//
//	go test -bench=Ablate -benchmem ./internal/core/
func benchInfinitySteps(b *testing.B, cfg Config) {
	b.Helper()
	mcfg := model.Config{Vocab: 32, Hidden: 32, Heads: 4, Seq: 8, Layers: 2}
	cfg.LossScale = 64
	cfg.Seed = 1
	tokens, targets := makeBatches(mcfg, 1, 2, testBatch)
	b.ReportAllocs()
	b.ResetTimer()
	comm.Run(2, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(cfg, c, g)
		if err != nil {
			b.Error(err)
			return
		}
		defer e.Close()
		for i := 0; i < b.N; i++ {
			if _, serr := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch); serr != nil {
				b.Error(serr)
				return
			}
		}
	})
}

func BenchmarkAblatePrefetchDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchInfinitySteps(b, Config{
				Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: depth,
			})
		})
	}
}

func BenchmarkAblatePinnedBuffers(b *testing.B) {
	for _, bufs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("bufs%d", bufs), func(b *testing.B) {
			benchInfinitySteps(b, Config{
				Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
				PrefetchDepth: 2, PinnedBuffers: bufs,
			})
		})
	}
}

func BenchmarkAblateNVMeWorkers(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			benchInfinitySteps(b, Config{
				Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
				PrefetchDepth: 2, NVMeWorkers: w,
			})
		})
	}
}

func BenchmarkAblatePlacement(b *testing.B) {
	placements := []struct {
		name       string
		params, op zero.Placement
	}{
		{"gpu-gpu", zero.OnGPU, zero.OnGPU},
		{"cpu-cpu", zero.OnCPU, zero.OnCPU},
		{"nvme-nvme", zero.OnNVMe, zero.OnNVMe},
	}
	for _, p := range placements {
		b.Run(p.name, func(b *testing.B) {
			benchInfinitySteps(b, Config{Params: p.params, Optimizer: p.op, PrefetchDepth: 2})
		})
	}
}

// Gradient accumulation under every placement stays bit-identical to DDP.
func TestAccumulationMatchesDDPAcrossPlacements(t *testing.T) {
	mcfg := testModelCfg(false)
	const micros, steps = 2, 2
	run := func(infinity bool, cfg Config) []float64 {
		tokens, targets := makeBatches(mcfg, steps*micros, testRanks, testBatch)
		var losses []float64
		comm.Run(testRanks, func(c *comm.Comm) {
			g := model.MustGPT(mcfg)
			var step func(mt, mg [][]int) (zero.StepResult, error)
			if infinity {
				e, err := NewInfinityEngine(cfg, c, g)
				if err != nil {
					t.Error(err)
					return
				}
				defer e.Close()
				step = func(mt, mg [][]int) (zero.StepResult, error) { return e.StepAccum(mt, mg, testBatch) }
			} else {
				e, err := zero.NewDPEngine(zero.Config{LossScale: 128, Seed: 42}, c, g)
				if err != nil {
					t.Error(err)
					return
				}
				step = func(mt, mg [][]int) (zero.StepResult, error) { return e.StepAccum(mt, mg, testBatch), nil }
			}
			var local []float64
			for s := 0; s < steps; s++ {
				mt := make([][]int, micros)
				mg := make([][]int, micros)
				for m := 0; m < micros; m++ {
					mt[m] = tokens[s*micros+m][c.Rank()]
					mg[m] = targets[s*micros+m][c.Rank()]
				}
				res, err := step(mt, mg)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, res.Loss)
			}
			if c.Rank() == 0 {
				losses = local
			}
		})
		return losses
	}
	ddp := run(false, Config{})
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cpu", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU, LossScale: 128, Seed: 42}},
		{"nvme", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 2, LossScale: 128, Seed: 42}},
	} {
		got := run(true, tc.cfg)
		for i := range ddp {
			if ddp[i] != got[i] {
				t.Fatalf("%s accum diverged at step %d: %.17g vs %.17g", tc.name, i, ddp[i], got[i])
			}
		}
	}
}
