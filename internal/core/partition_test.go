package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// Fig. 6c correctness on the infinity engine: the owner-rank broadcast
// strategy — across placements, with overlap+prefetch and a multi-node
// topology — trains bit-identically to DDP, exactly like 1/dp slicing.
func TestPartitionBroadcastBitIdenticalToDDP(t *testing.T) {
	topo := &comm.Topology{NodeSize: 2, IntraGBps: 100, InterGBps: 10}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"gpu-gpu", Config{Partition: zero.PartitionBroadcast}},
		{"cpu-cpu+overlap", Config{Partition: zero.PartitionBroadcast,
			Params: zero.OnCPU, Optimizer: zero.OnCPU, Overlap: true, PrefetchDepth: 2}},
		{"gpu-gpu+overlap+topology", Config{Partition: zero.PartitionBroadcast,
			Overlap: true, PrefetchDepth: 2, Topology: topo}},
		{"nvme-nvme+prefetch", Config{Partition: zero.PartitionBroadcast,
			Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 3}},
		{"slice+topology", Config{Overlap: true, PrefetchDepth: 2, Topology: topo}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mcfg := testModelCfg(false)
			ddp := runDDP(t, mcfg)
			got := runInfinity(t, mcfg, tc.cfg)
			assertSame(t, tc.name, ddp, got)
		})
	}
}

// Stats must surface the fabric's modeled traffic: with a topology
// installed, the gather collective reports bytes, simulated seconds and a
// positive achieved aggregate bandwidth — and the slicing strategy's gather
// bandwidth beats the owner-broadcast strategy's on the same topology.
func TestStatsReportCommTrafficAndSlicingWins(t *testing.T) {
	topo := &comm.Topology{NodeSize: 2, IntraGBps: 100, InterGBps: 10}
	mcfg := testModelCfg(false)

	slice := runInfinity(t, mcfg, Config{Overlap: true, PrefetchDepth: 2, Topology: topo})
	bcast := runInfinity(t, mcfg, Config{Partition: zero.PartitionBroadcast,
		Overlap: true, PrefetchDepth: 2, Topology: topo})

	ag, ok := slice.stats.CommTraffic["allgatherhalfdecode"]
	if !ok || ag.Ops == 0 || ag.Bytes() == 0 || ag.Seconds <= 0 {
		t.Fatalf("slicing allgather traffic missing or untimed: %+v", ag)
	}
	bc, ok := bcast.stats.CommTraffic["broadcasthalf"]
	if !ok || bc.Ops == 0 || bc.Bytes() == 0 || bc.Seconds <= 0 {
		t.Fatalf("broadcast gather traffic missing or untimed: %+v", bc)
	}
	if ag.AggGBps() <= bc.AggGBps() {
		t.Fatalf("1/dp slicing gather %.2f GB/s not above owner broadcast %.2f GB/s",
			ag.AggGBps(), bc.AggGBps())
	}
	if slice.stats.CommGBps <= 0 || bcast.stats.CommGBps <= 0 {
		t.Fatalf("aggregate CommGBps not populated: %v %v", slice.stats.CommGBps, bcast.stats.CommGBps)
	}
}

// The infinity FullParams consolidation must draw its gather scratch from
// the engine arena (checkpoint-gather satellite): a warm call allocates
// only the returned vectors and map.
func TestInfinityFullParamsGatherScratchPooled(t *testing.T) {
	mcfg := testModelCfg(false)
	comm.Run(1, func(c *comm.Comm) {
		e, err := NewInfinityEngine(Config{LossScale: 64, Seed: 3}, c, model.MustGPT(mcfg))
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		e.FullParams() // warm the arena size classes
		nparams := len(e.params)
		allocs := testing.AllocsPerRun(10, func() {
			e.FullParams()
		})
		budget := float64(2*nparams + 4)
		if allocs > budget {
			t.Errorf("FullParams allocated %.1f/call for %d params (budget %.0f): gather scratch not pooled",
				allocs, nparams, budget)
		}
	})
}
