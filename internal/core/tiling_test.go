package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/tensor"
)

// Tiled and dense linear must be mathematically equivalent (paper Sec.
// 5.1.3: "a mathematically equivalent sequence of smaller linear
// operators").
func TestTiledLinearMatchesDense(t *testing.T) {
	const in, out, tiles, rows = 12, 24, 4, 5
	tl := NewTiledLinear("tl", in, out, tiles, true, 0.2)
	for _, p := range module.AllParams(tl) {
		p.SetData(model.InitValues(p, 3))
	}
	w, b := tl.AssembleDense()

	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(4).FillNormal(x.Float32s(), 1)

	yTiled := rt.Forward(tl, x)

	yDense := tensor.New(tensor.FP32, rows, out)
	tensor.MatMul(yDense.Float32s(), x.Float32s(), w, rows, in, out)
	for r := 0; r < rows; r++ {
		tensor.Axpy(1, b, yDense.Float32s()[r*out:(r+1)*out])
	}
	if d := tensor.MaxAbsDiff(yTiled, yDense); d != 0 {
		t.Fatalf("tiled forward differs from dense by %g (should be exact)", d)
	}

	// Backward: dx matches dense dy·Wᵀ within float tolerance (summation
	// order differs across tiles).
	dy := tensor.New(tensor.FP32, rows, out)
	tensor.NewRNG(5).FillNormal(dy.Float32s(), 1)
	dxTiled := rt.Backward(tl, dy)
	dxDense := tensor.New(tensor.FP32, rows, in)
	tensor.MatMulTransB(dxDense.Float32s(), dy.Float32s(), w, rows, out, in)
	if d := tensor.MaxAbsDiff(dxTiled, dxDense); d > 1e-4 {
		t.Fatalf("tiled backward dx differs by %g", d)
	}
}

func TestTiledLinearGradCheck(t *testing.T) {
	const in, out, tiles, rows = 6, 8, 2, 3
	tl := NewTiledLinear("tl", in, out, tiles, true, 0.3)
	for _, p := range module.AllParams(tl) {
		p.SetData(model.InitValues(p, 8))
		p.Grad()
		p.ZeroGrad()
	}
	rt := module.NewRuntime(nil)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(9).FillNormal(x.Float32s(), 1)
	r := make([]float32, rows*out)
	tensor.NewRNG(10).FillNormal(r, 1)

	rt.Forward(tl, x)
	dx := rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))

	const h = 1e-2
	xd := x.Float32s()
	for i := 0; i < len(xd); i += 4 {
		orig := xd[i]
		xd[i] = orig + h
		yp := rt.Forward(tl, x)
		rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))
		xd[i] = orig - h
		ym := rt.Forward(tl, x)
		rt.Backward(tl, tensor.FromSlice(append([]float32(nil), r...), rows, out))
		xd[i] = orig
		num := (tensor.Dot(yp.Float32s(), r) - tensor.Dot(ym.Float32s(), r)) / (2 * h)
		got := float64(dx.Float32s()[i])
		if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: analytic %g numeric %g", i, got, num)
		}
	}
}

// MaxParamBytes drops by the tile factor.
func TestTilingReducesMaxAllocation(t *testing.T) {
	dense := NewTiledLinear("d", 64, 256, 1, false, 0.1)
	tiled := NewTiledLinear("t", 64, 256, 8, false, 0.1)
	if dense.MaxParamBytes() != 64*256*2 {
		t.Fatalf("dense max = %d", dense.MaxParamBytes())
	}
	if tiled.MaxParamBytes() != 64*256*2/8 {
		t.Fatalf("tiled max = %d", tiled.MaxParamBytes())
	}
}

// The Fig. 6b protocol, functionally: under a pre-fragmented allocator the
// dense operator OOMs with ErrFragmented while the tiled one trains, and
// both produce identical outputs.
func TestFig6bFunctionalTilingUnderFragmentation(t *testing.T) {
	const in, out, rows = 64, 256, 4
	const chunk = 8 << 10 // 8 KiB contiguous chunks
	denseBytes := int64(in * out * 2)
	if denseBytes <= chunk {
		t.Fatal("test sizing wrong: dense must exceed chunk")
	}

	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(11).FillNormal(x.Float32s(), 1)

	// Dense fails.
	alloc := mem.NewAllocator(1 << 20)
	alloc.PreFragment(chunk)
	hooks := NewAllocHooks(alloc, 77)
	rt := module.NewRuntime(hooks)
	dense := NewTiledLinear("op", in, out, 1, true, 0.2)
	err := RunUnderBudget(func() { rt.Forward(dense, x) })
	if err == nil {
		t.Fatal("dense gather under fragmentation succeeded")
	}
	if !errors.Is(err, mem.ErrFragmented) {
		t.Fatalf("want ErrFragmented, got %v", err)
	}

	// Tiled succeeds (per-tile fp16 footprint fits in one chunk).
	alloc2 := mem.NewAllocator(1 << 20)
	alloc2.PreFragment(chunk)
	hooks2 := NewAllocHooks(alloc2, 77)
	rt2 := module.NewRuntime(hooks2)
	tiled := NewTiledLinear("op", in, out, 8, true, 0.2)
	if tiled.MaxParamBytes() > chunk {
		t.Fatal("test sizing wrong: tile must fit in chunk")
	}
	var yTiled *tensor.Tensor
	err = RunUnderBudget(func() {
		yTiled = rt2.Forward(tiled, x)
		rt2.Backward(tiled, yTiled.Clone())
	})
	if err != nil {
		t.Fatalf("tiled run failed: %v", err)
	}

	// Same values as an unbudgeted dense run with the same param names.
	ref := NewTiledLinear("op", in, out, 8, true, 0.2)
	for _, p := range module.AllParams(ref) {
		p.SetData(model.InitValues(p, 77))
	}
	yRef := module.NewRuntime(nil).Forward(ref, x)
	if d := tensor.MaxAbsDiff(yTiled, yRef); d != 0 {
		t.Fatalf("budgeted tiled output differs by %g", d)
	}
	// Sequential fetch-and-release: peak live is at most a couple of tiles,
	// far below the dense footprint.
	if hooks2.PeakLive >= denseBytes {
		t.Fatalf("peak live %d not below dense %d", hooks2.PeakLive, denseBytes)
	}
}

func TestTiledLinearRejectsBadTileCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-dividing tile count did not panic")
		}
	}()
	NewTiledLinear("x", 4, 10, 3, false, 0.1)
}
