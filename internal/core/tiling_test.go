package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// The Fig. 6b protocol, functionally: under a pre-fragmented allocator the
// dense operator OOMs with ErrFragmented while the tiled one trains, and
// both produce identical outputs.
func TestFig6bFunctionalTilingUnderFragmentation(t *testing.T) {
	const in, out, rows = 64, 256, 4
	const chunk = 8 << 10 // 8 KiB contiguous chunks
	denseBytes := int64(in * out * 2)
	if denseBytes <= chunk {
		t.Fatal("test sizing wrong: dense must exceed chunk")
	}

	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(11).FillNormal(x.Float32s(), 1)

	// Dense fails.
	alloc := mem.NewAllocator(1 << 20)
	alloc.PreFragment(chunk)
	hooks := NewAllocHooks(alloc, 77)
	rt := module.NewRuntime(hooks)
	dense := model.NewTiledLinear("op", in, out, 1, true, 0.2)
	err := RunUnderBudget(func() { rt.Forward(dense, x) })
	if err == nil {
		t.Fatal("dense gather under fragmentation succeeded")
	}
	if !errors.Is(err, mem.ErrFragmented) {
		t.Fatalf("want ErrFragmented, got %v", err)
	}

	// Tiled succeeds (per-tile fp16 footprint fits in one chunk).
	alloc2 := mem.NewAllocator(1 << 20)
	alloc2.PreFragment(chunk)
	hooks2 := NewAllocHooks(alloc2, 77)
	rt2 := module.NewRuntime(hooks2)
	tiled := model.NewTiledLinear("op", in, out, 8, true, 0.2)
	if tiled.MaxParamBytes() > chunk {
		t.Fatal("test sizing wrong: tile must fit in chunk")
	}
	var yTiled *tensor.Tensor
	err = RunUnderBudget(func() {
		yTiled = rt2.Forward(tiled, x)
		rt2.Backward(tiled, yTiled.Clone())
	})
	if err != nil {
		t.Fatalf("tiled run failed: %v", err)
	}

	// Same values as an unbudgeted dense run with the same param names.
	ref := model.NewTiledLinear("op", in, out, 8, true, 0.2)
	for _, p := range module.AllParams(ref) {
		p.SetData(model.InitValues(p, 77))
	}
	yRef := module.NewRuntime(nil).Forward(ref, x)
	if d := tensor.MaxAbsDiff(yTiled, yRef); d != 0 {
		t.Fatalf("budgeted tiled output differs by %g", d)
	}
	// Sequential fetch-and-release: peak live is at most a couple of tiles,
	// far below the dense footprint.
	if hooks2.PeakLive >= denseBytes {
		t.Fatalf("peak live %d not below dense %d", hooks2.PeakLive, denseBytes)
	}
}

// runZero trains a zero-package engine (DP family or Z3) on the shared
// batches and returns rank 0's observations.
func runZero(t *testing.T, mcfg model.Config, zcfg zero.Config) trajectory {
	t.Helper()
	zcfg.LossScale = 256
	zcfg.Seed = 42
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out trajectory
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		var step func(tok, tgt []int) zero.StepResult
		var full func() map[string][]float32
		if zcfg.Stage == zero.Stage3 {
			e, err := zero.NewZ3Engine(zcfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step = func(tok, tgt []int) zero.StepResult { return e.Step(tok, tgt, testBatch) }
			full = e.FullParams
		} else {
			e, err := zero.NewDPEngine(zcfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			step = func(tok, tgt []int) zero.StepResult { return e.Step(tok, tgt, testBatch) }
			full = e.FullParams
		}
		var losses []float64
		for s := 0; s < testSteps; s++ {
			losses = append(losses, step(tokens[s][c.Rank()], targets[s][c.Rank()]).Loss)
		}
		p := full()
		if c.Rank() == 0 {
			mu.Lock()
			out = trajectory{losses: losses, params: p}
			mu.Unlock()
		}
	})
	return out
}

// The acceptance claim for model-wide tiling: for a fixed tiling factor,
// every engine — DDP, ZeRO-1/2/3, ZeRO-Infinity on CPU and NVMe (with
// prefetch and overlap) — trains the tiled model bit-identically. Tiling is
// model structure, not an engine feature, so no engine special-cases it.
func TestTiledModelBitIdenticalAcrossEngines(t *testing.T) {
	mcfg := testModelCfg(false)
	mcfg.Tiling = 4
	ddp := runZero(t, mcfg, zero.Config{Stage: zero.StageDDP})
	if len(ddp.losses) != testSteps {
		t.Fatalf("ddp ran %d steps", len(ddp.losses))
	}

	for _, tc := range []struct {
		name string
		cfg  zero.Config
	}{
		{"zero1", zero.Config{Stage: zero.Stage1}},
		{"zero2", zero.Config{Stage: zero.Stage2}},
		{"zero-offload", zero.Config{Stage: zero.Stage2, OffloadOptimizer: true}},
		{"zero3", zero.Config{Stage: zero.Stage3}},
		{"zero3-overlap", zero.Config{Stage: zero.Stage3, PrefetchDepth: 2, Overlap: true}},
	} {
		got := runZero(t, mcfg, tc.cfg)
		assertSame(t, tc.name, ddp, got)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"infinity-cpu", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU}},
		{"infinity-nvme", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 2}},
		{"infinity-nvme-overlap", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
			PrefetchDepth: 2, Overlap: true}},
	} {
		got := runInfinity(t, mcfg, tc.cfg)
		assertSame(t, tc.name, ddp, got)
	}
}

// Tiling divides the Infinity engine's max live parameter bytes by ~the
// tile factor: the largest leaf (fc1: W+B) dominates the dense working set,
// and each of its tiles is a quarter of it.
func TestTilingCutsMaxLiveParamBytes(t *testing.T) {
	mcfg := model.Config{Vocab: 16, Hidden: 32, Heads: 2, Seq: 6, Layers: 1}
	dense := runInfinity(t, mcfg, Config{Params: zero.OnCPU, Optimizer: zero.OnCPU})

	tcfg := mcfg
	tcfg.Tiling = 4
	tiled := runInfinity(t, tcfg, Config{Params: zero.OnCPU, Optimizer: zero.OnCPU})

	dm, tm := dense.stats.MaxLiveParamBytes, tiled.stats.MaxLiveParamBytes
	if dm == 0 || tm == 0 {
		t.Fatalf("missing MaxLiveParamBytes: dense %d tiled %d", dm, tm)
	}
	// Dense peak: fc1 weight+bias = (32*128 + 128) fp16 values.
	if want := int64(32*128+128) * 2; dm != want {
		t.Fatalf("dense max live = %d, want %d", dm, want)
	}
	if tm*3 > dm {
		t.Fatalf("tiling cut max live only %d -> %d (want ~%dx reduction)", dm, tm, tcfg.Tiling)
	}
}

// The real-engine Fig. 6b: a dense GPT OOMs (ErrFragmented) gathering its
// projections under a pre-fragmented GPU budget; the tiled model — same
// budget, same fragmentation — trains.
func TestFig6bRealEngineDenseOOMsTiledTrains(t *testing.T) {
	mcfg := model.Config{Vocab: 16, Hidden: 32, Heads: 2, Seq: 6, Layers: 1}
	tokens, targets := makeBatches(mcfg, 1, 2, testBatch)
	budget := Config{Params: zero.OnCPU, Optimizer: zero.OnCPU,
		GPUMemory: 1 << 20, PreFragment: 4 << 10, LossScale: 256, Seed: 42}

	run := func(mcfg model.Config) error {
		var mu sync.Mutex
		var firstErr error
		comm.Run(2, func(c *comm.Comm) {
			g := model.MustGPT(mcfg)
			e, err := NewInfinityEngine(budget, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			if _, serr := e.Step(tokens[0][c.Rank()], targets[0][c.Rank()], testBatch); serr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = serr
				}
				mu.Unlock()
			}
		})
		return firstErr
	}

	if err := run(mcfg); err == nil {
		t.Fatal("dense model trained under the fragmented budget")
	} else if !errors.Is(err, mem.ErrFragmented) {
		t.Fatalf("dense model failed for the wrong reason: %v", err)
	}

	tcfg := mcfg
	tcfg.Tiling = 4
	if err := run(tcfg); err != nil {
		t.Fatalf("tiled model failed under the fragmented budget: %v", err)
	}
}
