package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
)

// AllocHooks is a minimal single-process engine used by the memory-centric
// tiling experiment (Fig. 6b protocol): parameters are "gathered" by
// allocating their fp16 footprint from a budgeted contiguous allocator and
// released afterwards, reproducing ZeRO-3's fetch-and-release pattern
// against limited, possibly pre-fragmented device memory. Values persist in
// a host-side cache across release, standing in for the partitioned store.
type AllocHooks struct {
	Alloc *mem.Allocator
	Seed  uint64

	blocks map[*module.Param]mem.Block
	vals   map[*module.Param][]float32
	// PeakLive tracks the largest simultaneous gathered footprint.
	PeakLive int64
	live     int64
}

// NewAllocHooks returns hooks over the given allocator.
func NewAllocHooks(alloc *mem.Allocator, seed uint64) *AllocHooks {
	return &AllocHooks{
		Alloc:  alloc,
		Seed:   seed,
		blocks: make(map[*module.Param]mem.Block),
		vals:   make(map[*module.Param][]float32),
	}
}

func (h *AllocHooks) gather(m module.Module) {
	for _, p := range m.Params() {
		if p.Materialized() {
			continue
		}
		b, err := h.Alloc.Alloc(p.FP16Bytes())
		if err != nil {
			panic(errGPUOOM{fmt.Errorf("gathering %s: %w", p.Name, err)})
		}
		h.blocks[p] = b
		v, ok := h.vals[p]
		if !ok {
			v = model.InitValues(p, h.Seed)
			h.vals[p] = v
		}
		p.SetData(v)
		h.live += p.FP16Bytes()
		if h.live > h.PeakLive {
			h.PeakLive = h.live
		}
	}
}

func (h *AllocHooks) release(m module.Module) {
	for _, p := range m.Params() {
		if !p.Materialized() {
			continue
		}
		h.Alloc.Release(h.blocks[p])
		delete(h.blocks, p)
		p.ReleaseData()
		h.live -= p.FP16Bytes()
	}
}

// PreForward implements module.Hooks.
func (h *AllocHooks) PreForward(m module.Module) { h.gather(m) }

// PostForward implements module.Hooks.
func (h *AllocHooks) PostForward(m module.Module) { h.release(m) }

// PreBackward implements module.Hooks.
func (h *AllocHooks) PreBackward(m module.Module) { h.gather(m) }

// PostBackward implements module.Hooks.
func (h *AllocHooks) PostBackward(m module.Module) { h.release(m) }

// RunUnderBudget executes fn, converting a gather-OOM panic into an error.
func RunUnderBudget(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(errGPUOOM); ok {
				err = oom.err
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

var _ module.Hooks = (*AllocHooks)(nil)
