package core

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// runInfinityHeap mirrors runInfinity (core_test.go) with the step arena
// stripped after construction: model-layer allocations fall back to
// tensor.New/make, giving the heap baseline the arena-backed engine must
// match bit for bit.
func runInfinityHeap(t *testing.T, mcfg model.Config, ecfg Config) trajectory {
	t.Helper()
	ecfg.LossScale = 256
	ecfg.Seed = 42
	tokens, targets := makeBatches(mcfg, testSteps, testRanks, testBatch)
	var out trajectory
	var mu sync.Mutex
	comm.Run(testRanks, func(c *comm.Comm) {
		g := model.MustGPT(mcfg)
		e, err := NewInfinityEngine(ecfg, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		e.Runtime().SetStepArena(nil)
		var losses []float64
		for s := 0; s < testSteps; s++ {
			res, err := e.Step(tokens[s][c.Rank()], targets[s][c.Rank()], testBatch)
			if err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), s, err)
				return
			}
			losses = append(losses, res.Loss)
		}
		p := e.FullParams()
		if c.Rank() == 0 {
			mu.Lock()
			out = trajectory{losses: losses, params: p}
			mu.Unlock()
		}
	})
	return out
}

// TestInfinityArenaMatchesHeapTrajectory: the step-scoped activation arena is
// a memory optimization, not an algorithm change, even under ZeRO-Infinity's
// hardest paths — NVMe placement with prefetch+overlap, and CPU-offloaded
// activation checkpoints whose recompute runs inside arena sub-scopes.
func TestInfinityArenaMatchesHeapTrajectory(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ckpt bool
	}{
		{"gpu-gpu", Config{Params: zero.OnGPU, Optimizer: zero.OnGPU}, false},
		{"nvme-nvme+overlap", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe, PrefetchDepth: 2, Overlap: true}, false},
		{"cpu-cpu+ckpt-offload", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU, OffloadActivations: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mcfg := testModelCfg(tc.ckpt)
			arena := runInfinity(t, mcfg, tc.cfg)
			heap := runInfinityHeap(t, mcfg, tc.cfg)
			assertSame(t, tc.name+" arena-vs-heap", arena, heap)
		})
	}
}
