package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/optim"
	"repro/internal/tensor"
)

// optimizerStepNVMe streams every parameter's [master|m|v] region from NVMe
// through pinned staging buffers, applies the Adam update on the CPU over
// the already-unscaled gradient shards, and writes the state and the
// refreshed fp16 shard back — the chunked, overlapped optimizer step of the
// infinity offload engine (paper Sec. 5.2.2). Reads for parameter i+1 are
// issued before parameter i is processed, and writes complete
// asynchronously; the bounded pinned pool provides back-pressure.
func (e *InfinityEngine) optimizerStepNVMe() error {
	type slot struct {
		ps     *pstate
		buf    []byte
		ticket interface{ Wait() error }
	}
	issueRead := func(ps *pstate) slot {
		buf := e.pinned.Acquire()
		t := e.io.ReadRegion(buf[:ps.optRegion.Size], ps.optRegion)
		return slot{ps: ps, buf: buf, ticket: t}
	}

	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	setErr := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	}

	// Software pipeline: one read in flight ahead of the compute stage.
	// Only this rank's owned parameters stream (all of them under 1/dp
	// slicing; the round-robin subset under owner-rank broadcast).
	var next slot
	havePrefetch := false
	for i, p := range e.owned {
		cur := next
		if !havePrefetch {
			cur = issueRead(e.states[p])
		}
		if i+1 < len(e.owned) {
			next = issueRead(e.states[e.owned[i+1]])
			havePrefetch = true
		} else {
			havePrefetch = false
		}
		if err := cur.ticket.Wait(); err != nil {
			e.pinned.Release(cur.buf)
			if havePrefetch {
				// The read for params[i+1] is already in flight holding a
				// pinned buffer; await it so releasing the buffer is safe.
				_ = next.ticket.Wait()
				e.pinned.Release(next.buf)
			}
			// Outstanding async writes from earlier iterations also hold
			// pinned buffers; their reapers must run before we return.
			wg.Wait()
			return fmt.Errorf("core: optimizer read %s: %w", cur.ps.p.Name, err)
		}
		ps := cur.ps
		s := ps.shardLen
		master := e.f32.Get(s)
		m := e.f32.Get(s)
		v := e.f32.Get(s)
		tensor.F32FromBytes(master, cur.buf[0:4*s])
		tensor.F32FromBytes(m, cur.buf[4*s:8*s])
		tensor.F32FromBytes(v, cur.buf[8*s:12*s])

		optim.StepVecOn(e.rt.Backend(), e.cfg.Adam, e.stepCount, master, ps.gradShard, m, v)
		e.f32.Put(ps.gradShard)
		ps.gradShard = nil

		// Serialize the updated optimizer state back into the same pinned
		// buffer and write asynchronously; a reaper returns the buffer to
		// the pool when the write lands.
		tensor.F32ToBytes(cur.buf[0:4*s], master)
		tensor.F32ToBytes(cur.buf[4*s:8*s], m)
		tensor.F32ToBytes(cur.buf[8*s:12*s], v)
		wt := e.io.WriteRegion(cur.buf[:ps.optRegion.Size], ps.optRegion)

		// Refresh the fp16 parameter shard on its own tier.
		half := e.f16.Get(s)
		e.rt.Backend().EncodeHalf(half, master)
		var pt interface{ Wait() error }
		var pbuf []byte
		if e.cfg.Params == e.cfg.Optimizer { // both NVMe
			pbuf = e.bytes.Get(int(ps.region.Size))
			tensor.HalfToBytes(pbuf, half)
			pt = e.io.WriteRegion(pbuf, ps.region)
		} else {
			copy(ps.hostShard, half)
		}
		e.f16.Put(half)
		e.f32.Put(master)
		e.f32.Put(m)
		e.f32.Put(v)

		wg.Add(1)
		go func(buf, pbuf []byte, w, p interface{ Wait() error }) {
			defer wg.Done()
			setErr(w.Wait())
			if p != nil {
				setErr(p.Wait())
				e.bytes.Put(pbuf)
			}
			e.pinned.Release(buf)
		}(cur.buf, pbuf, wt, pt)
	}
	wg.Wait()
	e.io.Flush()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}
