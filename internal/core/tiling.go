package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/tensor"
)

// TiledLinear is memory-centric tiling (paper Sec. 5.1.3): a linear operator
// represented as a mathematically-equivalent sequence of column tiles, each
// a separate submodule with its own parameters. Combined with ZeRO-3's
// fetch-and-release pattern, the working memory for the operator drops from
// the full weight to one tile's weight, so operators of arbitrary size run
// without model parallelism — and without needing a contiguous allocation
// larger than a tile (the Fig. 6b scenario).
type TiledLinear struct {
	module.Base
	In, Out, Tiles int
	TileOut        int
	tiles          []*model.Linear
}

// NewTiledLinear splits a [in, out] linear layer into tiles column tiles.
// out must be divisible by tiles.
func NewTiledLinear(name string, in, out, tiles int, bias bool, initStd float64) *TiledLinear {
	if tiles <= 0 || out%tiles != 0 {
		panic(fmt.Sprintf("core: tiles %d must divide out %d", tiles, out))
	}
	tl := &TiledLinear{In: in, Out: out, Tiles: tiles, TileOut: out / tiles}
	tl.ModName = name
	for t := 0; t < tiles; t++ {
		l := model.NewLinear(fmt.Sprintf("%s.tile%d", name, t), in, tl.TileOut, bias, initStd)
		tl.tiles = append(tl.tiles, l)
		tl.Kids = append(tl.Kids, l)
	}
	return tl
}

// Tile returns the t-th column tile.
func (tl *TiledLinear) Tile(t int) *model.Linear { return tl.tiles[t] }

// Forward implements module.Layer: tiles execute sequentially, each fetched
// and released through the engine hooks before the next begins.
func (tl *TiledLinear) Forward(rt *module.Runtime, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len() / tl.In
	y := tensor.New(tensor.FP32, rows, tl.Out)
	yd := y.Float32s()
	for t, tile := range tl.tiles {
		yt := rt.Forward(tile, x)
		ytd := yt.Float32s()
		off := t * tl.TileOut
		for r := 0; r < rows; r++ {
			copy(yd[r*tl.Out+off:r*tl.Out+off+tl.TileOut], ytd[r*tl.TileOut:(r+1)*tl.TileOut])
		}
	}
	return y
}

// Backward implements module.Layer.
func (tl *TiledLinear) Backward(rt *module.Runtime, dy *tensor.Tensor) *tensor.Tensor {
	rows := dy.Len() / tl.Out
	dyd := dy.Float32s()
	var dx *tensor.Tensor
	// Reverse order mirrors autograd; addition is commutative so any order
	// gives the same dx, but reverse matches the saved-activation LIFO.
	for t := tl.Tiles - 1; t >= 0; t-- {
		tile := tl.tiles[t]
		off := t * tl.TileOut
		dyt := tensor.New(tensor.FP32, rows, tl.TileOut)
		dytd := dyt.Float32s()
		for r := 0; r < rows; r++ {
			copy(dytd[r*tl.TileOut:(r+1)*tl.TileOut], dyd[r*tl.Out+off:r*tl.Out+off+tl.TileOut])
		}
		dxt := rt.Backward(tile, dyt)
		if dx == nil {
			dx = dxt
		} else {
			rt.Backend().Axpy(1, dxt.Float32s(), dx.Float32s())
		}
	}
	return dx
}

// MaxParamBytes returns the largest single-parameter fp16 footprint — the
// contiguous-allocation requirement tiling reduces by the tile factor.
func (tl *TiledLinear) MaxParamBytes() int64 {
	var m int64
	for _, p := range module.AllParams(tl) {
		if b := p.FP16Bytes(); b > m {
			m = b
		}
	}
	return m
}

// AssembleDense concatenates the tile weights into the equivalent dense
// [in, out] weight matrix and [out] bias (for equivalence testing).
func (tl *TiledLinear) AssembleDense() (w, b []float32) {
	w = make([]float32, tl.In*tl.Out)
	hasBias := tl.tiles[0].B != nil
	if hasBias {
		b = make([]float32, tl.Out)
	}
	for t, tile := range tl.tiles {
		tw := tile.W.Data()
		off := t * tl.TileOut
		for i := 0; i < tl.In; i++ {
			copy(w[i*tl.Out+off:i*tl.Out+off+tl.TileOut], tw[i*tl.TileOut:(i+1)*tl.TileOut])
		}
		if hasBias {
			copy(b[off:off+tl.TileOut], tile.B.Data())
		}
	}
	return w, b
}

var _ module.Layer = (*TiledLinear)(nil)
