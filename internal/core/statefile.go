package core

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/module"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// Rank-state checkpointing for the infinity offload engine, in the shared
// v2 wire layout (internal/zero/statecodec.go). The engine's optimizer
// state lives on its configured tier: resident shards serialize directly;
// NVMe-resident [master|m|v] regions stream through the async I/O engine.
// The wire record is the f32 bytes of master||m||v — exactly the NVMe
// region layout — so the NVMe path moves raw bytes both ways.

// SaveRankState writes this rank's full training state to w. Per-rank only
// (no collectives): every rank serializes its owned shards independently,
// which is what lets the async checkpoint writer pipeline serialization
// with training.
func (e *InfinityEngine) SaveRankState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scale, goodSteps, skipped := e.scaler.State()
	err := zero.WriteStateHeader(bw, zero.StateHeader{
		Rank: e.c.Rank(), World: e.c.Size(), Step: e.stepCount,
		Scale: scale, GoodSteps: goodSteps, Skipped: skipped,
		Count: len(e.owned),
	})
	if err != nil {
		return err
	}
	var codec zero.VecCodec
	for _, p := range e.owned {
		ps := e.states[p]
		if err := zero.WriteParamHeader(bw, p.Name, ps.shardLen); err != nil {
			return err
		}
		if e.cfg.Optimizer == zero.OnNVMe {
			buf := e.bytes.Get(int(ps.optRegion.Size))
			rerr := e.io.ReadRegion(buf, ps.optRegion).Wait()
			if rerr == nil {
				_, rerr = bw.Write(buf)
			}
			e.bytes.Put(buf)
			if rerr != nil {
				return fmt.Errorf("core: save optimizer state %q: %w", p.Name, rerr)
			}
			continue
		}
		for _, vec := range [][]float32{ps.master, ps.m, ps.v} {
			if err := codec.WriteVec(bw, vec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadRankState restores state saved by SaveRankState (v2; the infinity
// engine never wrote v1 files) and rebuilds each fp16 parameter shard on
// its tier from the restored master. The world size and rank must match.
// On error the engine state may be partially overwritten; load into fresh
// engines.
func (e *InfinityEngine) LoadRankState(r io.Reader) error {
	br := bufio.NewReader(r)
	h, err := zero.ReadStateHeader(br)
	if err != nil {
		return err
	}
	if h.Rank != e.c.Rank() || h.World != e.c.Size() {
		return fmt.Errorf("core: state is for rank %d/%d, engine is rank %d/%d",
			h.Rank, h.World, e.c.Rank(), e.c.Size())
	}
	if h.Count != len(e.owned) {
		return fmt.Errorf("core: state has %d params, engine owns %d", h.Count, len(e.owned))
	}
	e.scaler.Restore(h.Scale, h.GoodSteps, h.Skipped)
	e.stepCount = h.Step

	byName := make(map[string]*module.Param, len(e.params))
	for _, p := range e.params {
		byName[p.Name] = p
	}
	var codec zero.VecCodec
	for i := 0; i < h.Count; i++ {
		name, shardLen, err := zero.ReadParamHeader(br)
		if err != nil {
			return err
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: state parameter %q not in model", name)
		}
		ps := e.states[p]
		if ps.shardLen == 0 {
			return fmt.Errorf("core: state parameter %q is not owned by rank %d", name, e.c.Rank())
		}
		if int(shardLen) != ps.shardLen {
			return fmt.Errorf("core: state shard %q has %d elems, want %d",
				name, shardLen, ps.shardLen)
		}
		s := ps.shardLen
		master := e.f32.Get(s)
		if e.cfg.Optimizer == zero.OnNVMe {
			buf := e.bytes.Get(int(ps.optRegion.Size))
			if _, rerr := io.ReadFull(br, buf); rerr != nil {
				e.bytes.Put(buf)
				e.f32.Put(master)
				return fmt.Errorf("core: read state shard %q: %w", name, rerr)
			}
			tensor.F32FromBytes(master, buf[:4*s])
			werr := e.io.WriteRegion(buf, ps.optRegion).Wait()
			e.bytes.Put(buf)
			if werr != nil {
				e.f32.Put(master)
				return fmt.Errorf("core: write optimizer state %q: %w", name, werr)
			}
		} else {
			var rerr error
			for _, dst := range [][]float32{ps.master, ps.m, ps.v} {
				if rerr = codec.ReadVec(br, dst); rerr != nil {
					break
				}
			}
			if rerr != nil {
				e.f32.Put(master)
				return fmt.Errorf("core: read state shard %q: %w", name, rerr)
			}
			copy(master, ps.master)
		}

		// The fp16 shard is a pure function of the master shard; rebuild it
		// on its tier exactly as the optimizer phase does.
		half := e.f16.Get(s)
		e.rt.Backend().EncodeHalf(half, master)
		e.writeShard(ps, half)
		e.f16.Put(half)
		e.f32.Put(master)
	}
	return nil
}
