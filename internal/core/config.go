// Package core implements ZeRO-Infinity (paper Sec. 5-7): a ZeRO-3 engine
// whose partitioned model states can live on GPU, CPU or NVMe through the
// infinity offload engine, with bandwidth-centric partitioning, an
// overlap-centric prefetcher driven by the traced operator sequence,
// CPU offload of activation checkpoints, streamed NVMe optimizer steps
// through reusable pinned buffers, and a budgeted (optionally
// pre-fragmented) GPU allocator. Memory-centric tiling for operators too
// large to materialize whole is a model-layer feature
// (model.Config.Tiling); the engine sees tiles as ordinary parameters and
// gathers, prefetches and releases them with no special-casing.
//
// Placement moves bytes, never values: every fp16/fp32 quantity round-trips
// through staging buffers and storage exactly, so a ZeRO-Infinity run is
// bit-identical to plain data-parallel training — the property the
// equivalence tests assert.
package core

import (
	"repro/internal/comm"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// Config configures an InfinityEngine.
type Config struct {
	// Params places the fp16 parameter shards (OnGPU, OnCPU, OnNVMe).
	Params zero.Placement
	// Optimizer places the fp32 master/momentum/variance shards.
	Optimizer zero.Placement
	// OffloadActivations stores activation checkpoints in CPU memory.
	// Requires the model to enable CheckpointActivations.
	OffloadActivations bool
	// PrefetchDepth is how many upcoming parameter shards the overlap
	// engine reads ahead of the consuming operator (0 disables prefetch).
	// It is the shared depth/budget for both overlap stages: speculative
	// NVMe reads and, with Overlap set, speculative allgathers.
	PrefetchDepth int
	// Overlap enables the communication half of the overlap-centric design:
	// parameter allgathers for the next PrefetchDepth trace entries are
	// issued asynchronously during the current operator's compute, and
	// gradient reduce-scatters are launched asynchronously from the
	// backward hooks with a drain barrier before the overflow check.
	// Trajectories stay bit-identical to the synchronous engine.
	Overlap bool

	Adam             optim.AdamConfig
	LossScale        float64
	DynamicLossScale bool
	Seed             uint64
	// ClipNorm, when positive, clips the global gradient L2 norm.
	ClipNorm float64

	// NVMeDir, when non-empty, backs the per-rank NVMe store with a real
	// temp file in that directory; otherwise an in-memory store is used.
	NVMeDir string
	// NVMeCapacity overrides the computed store size in bytes.
	NVMeCapacity int64
	// NVMeWorkers is the I/O parallelism of the DeepNVMe-style engine.
	NVMeWorkers int

	// PinnedBuffers / PinnedBufBytes size the reusable pinned staging pool
	// (paper Sec. 6.3). Zero values are auto-sized from the model.
	PinnedBuffers  int
	PinnedBufBytes int

	// GPUMemory, when positive, enforces a contiguous-allocator budget for
	// gathered parameters (fp16 bytes). PreFragment additionally applies
	// the paper's Fig. 6b protocol: allocations above the chunk size fail.
	GPUMemory   int64
	PreFragment int64

	// Backend is the compute backend kernels dispatch through (nil selects
	// the serial reference backend). Every backend is bit-identical, so
	// this is purely a speed knob.
	Backend tensor.Backend

	// Partition selects the parameter-partitioning strategy (Fig. 6c):
	// per-parameter 1/dp slicing (default) or owner-rank broadcast. Both
	// train bit-identically; they differ in which links the gathers and
	// gradient reductions keep busy and therefore in achieved aggregate
	// bandwidth (Stats.CommTraffic). With PartitionBroadcast and
	// Params==OnNVMe the comm (allgather) prefetcher is disabled — its
	// issue decisions would depend on owner-only NVMe state and desynchronize
	// the SPMD collective sequence — while the owner-local NVMe read
	// prefetcher keeps working.
	Partition zero.Partitioning
	// Topology, when set, is installed on the communicator's world: ranks
	// group into nodes, collectives decompose hierarchically and the
	// fabric's traffic accounting distinguishes intra- from inter-node
	// links. Results are bit-identical with or without a topology.
	Topology *comm.Topology
}

func (c *Config) setDefaults() {
	if c.Adam == (optim.AdamConfig{}) {
		c.Adam = optim.DefaultAdamConfig()
	}
	if c.LossScale == 0 {
		c.LossScale = 1
	}
	c.Backend = tensor.DefaultBackend(c.Backend)
	if c.NVMeWorkers == 0 {
		c.NVMeWorkers = 4
	}
	if c.PinnedBuffers == 0 {
		c.PinnedBuffers = 4
	}
}

// needsNVMe reports whether any state lives on NVMe.
func (c *Config) needsNVMe() bool {
	return c.Params == zero.OnNVMe || c.Optimizer == zero.OnNVMe
}

// Stats summarizes one engine's activity for the experiment harness.
type Stats struct {
	Gathers         int
	OnDemandGathers int
	// PrefetchIssued/PrefetchHits count the NVMe read stage; the CommPrefetch
	// pair counts the allgather stage; AsyncReduces counts gradient
	// reduce-scatters launched asynchronously from the backward hooks.
	PrefetchHits       int
	PrefetchIssued     int
	CommPrefetchIssued int
	CommPrefetchHits   int
	AsyncReduces       int
	NVMeBytesRead      int64
	NVMeBytesWritten   int64
	// MaxLiveParamBytes is the peak fp16 footprint of simultaneously
	// materialized (gathered) parameters — the working-set contribution
	// memory-centric tiling divides by the tile factor.
	MaxLiveParamBytes int64
	PinnedBytes       int64
	PinnedAcquires    int64
	CkptBytesOffload  int64
	GPUPeakBytes      int64
	// AllocsPerStep is the number of heap allocations performed during the
	// last StepAccum (/gc/heap/allocs:objects runtime-metrics delta). The counter is
	// process-global, so with several rank goroutines stepping in lockstep
	// it reflects the whole world's step; after the scratch arenas warm up
	// the engine+comm+tensor contribution is zero.
	AllocsPerStep uint64
	// CommTraffic is the collective fabric's cumulative modeled traffic per
	// collective kind — ops, intra/inter-node bytes, simulated transfer
	// seconds and achieved aggregate bandwidth (TrafficStats.AggGBps). The
	// counters are world-wide (all ranks' collectives), which is what the
	// Fig. 6c aggregate-bandwidth comparison wants.
	CommTraffic map[string]comm.TrafficStats
	// CommGBps is the achieved aggregate bandwidth across every collective
	// kind (0 without a topology: the flat fabric has no link timing).
	CommGBps float64
}
