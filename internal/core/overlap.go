package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/overlap"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// This file is the communication half of the overlap-centric design (paper
// Sec. 6.2): asynchronous parameter allgathers issued ahead of the
// consuming operator, and gradient reduce-scatters launched asynchronously
// from the backward hooks with a drain barrier before the overflow check.
// Both are bit-identical to the synchronous paths — the async collectives
// keep rank-order accumulation — so overlap is purely a wall-clock knob.

// inflightGather is a speculatively issued allgather. shard keeps the
// source buffer alive (and untouched) until the ticket completes. The
// destination is the fused allgather+decode's float32 buffer under 1/dp
// slicing (full) or the fp16 view under owner-rank broadcast (fullH) — at
// most one is non-nil. It is stored by value in the pstate so tracking it
// allocates nothing; both destinations nil means no allgather is in flight.
type inflightGather struct {
	ticket comm.Ticket
	full   []float32
	fullH  []tensor.Half
	shard  []tensor.Half
}

// inFlight reports whether an allgather is speculatively running.
func (f *inflightGather) inFlight() bool { return f.full != nil || f.fullH != nil }

// commPrefetcher issues the next depth upcoming parameters' allgathers
// during the current parameter's compute, following the shared gather
// trace. For NVMe-resident parameters it composes with the NVMe
// prefetcher: it consumes a completed (or completing) speculative read and
// chains the allgather onto it, so disk and interconnect stages of the same
// parameter pipeline back to back.
//
// Every issue decision is a deterministic function of the trace and the
// engine's own consumption sequence — identical on all SPMD ranks — which
// is what keeps the speculatively issued collectives matched rank to rank.
type commPrefetcher struct {
	e     *InfinityEngine
	depth int

	outstanding int
	inflight    []*pstate // pstates with commInflight set, for the drain
}

func newCommPrefetcher(e *InfinityEngine, depth int) *commPrefetcher {
	return &commPrefetcher{e: e, depth: depth}
}

// consumed notes that a gather claimed an in-flight allgather.
func (cp *commPrefetcher) consumed() { cp.outstanding-- }

// issue launches allgathers for upcoming trace entries within the depth
// budget.
func (cp *commPrefetcher) issue() {
	e := cp.e
	dp := e.c.Size()
	e.trace.Each(func(ps *pstate) bool {
		if cp.outstanding >= cp.depth {
			return false
		}
		if ps.commInflight.inFlight() || ps.p.Materialized() {
			return true
		}
		if e.cfg.Partition == zero.PartitionBroadcast {
			// Owner-rank partitioning (resident tiers only — the
			// constructor never builds a comm prefetcher for broadcast over
			// NVMe, so bcastFullH's owner fetch is a plain hostShard copy):
			// speculate the owner's broadcast. Every rank issues the same
			// collective unconditionally, so the SPMD sequence stays
			// matched.
			fullH := e.bcastFullH(ps)
			tk := e.c.BroadcastHalfAsync(fullH, ps.bcastRoot)
			ps.commInflight = inflightGather{ticket: tk, fullH: fullH}
			cp.inflight = append(cp.inflight, ps)
			cp.outstanding++
			e.stats.CommPrefetchIssued++
			return true
		}
		var shard []tensor.Half
		if e.cfg.Params == zero.OnNVMe {
			f := ps.inflight
			if f == nil || e.stats.Gathers-f.born < 2 {
				// Either the NVMe stage hasn't read this shard yet, or the
				// read is too young to be chained: waiting on it now would
				// drag the disk wait forward instead of overlapping it.
				// Skip — both conditions are pure functions of the gather
				// sequence, never of I/O completion timing, so every rank
				// skips identically.
				return true
			}
			if err := f.ticket.Wait(); err != nil {
				panic(fmt.Errorf("core: prefetched read %s: %w", ps.p.Name, err))
			}
			shard = e.f16.Get(ps.shardLen)
			tensor.HalfFromBytes(shard, f.buf[:ps.region.Size])
			e.pinned.Release(f.buf[:e.cfg.PinnedBufBytes])
			ps.inflight = nil
			if e.prefetch != nil {
				e.prefetch.consumed()
			}
			e.stats.PrefetchHits++ // the NVMe read was consumed a stage early
		} else {
			shard = ps.hostShard
		}
		full := e.f32.Get(ps.shardLen * dp)
		tk := e.c.AllGatherHalfDecodeAsync(full, shard)
		ps.commInflight = inflightGather{ticket: tk, full: full, shard: shard}
		cp.inflight = append(cp.inflight, ps)
		cp.outstanding++
		e.stats.CommPrefetchIssued++
		return true
	})
}

// endStep drains allgathers the step never consumed. The collectives have
// been issued on every rank (the trace is identical rank to rank), so the
// tickets always complete.
func (cp *commPrefetcher) endStep() {
	e := cp.e
	for _, ps := range cp.inflight {
		if f := ps.commInflight; f.inFlight() {
			f.ticket.Wait()
			if f.full != nil {
				e.f32.Put(f.full)
			} else {
				e.f16.Put(f.fullH)
			}
			e.releaseShard(f.shard)
			ps.commInflight = inflightGather{}
		}
	}
	cp.inflight = cp.inflight[:0]
	cp.outstanding = 0
}

// beginOverlapStep resets the shared trace for one micro-batch.
func (e *InfinityEngine) beginOverlapStep() {
	if e.trace != nil {
		e.trace.BeginStep()
	}
}

// endOverlapStep drains both prefetch stages and this micro-batch's async
// reduce-scatters (bounding retained gradient buffers to one micro-batch),
// then finishes the trace step (arming speculation, or scheduling a relearn
// after divergence).
func (e *InfinityEngine) endOverlapStep() {
	if e.commPrefetch != nil {
		e.commPrefetch.endStep()
	}
	if e.prefetch != nil {
		e.prefetch.endStep()
	}
	if e.trace != nil {
		e.trace.EndStep()
	}
	e.drainReduces()
}

// drainReduces waits out the asynchronously launched reduce-scatters via
// the shared issue-order fold (internal/overlap.Drain), accumulating into
// the fp32 gradient shards exactly as the synchronous path would. Called at
// every micro-batch boundary and again as the barrier before the overflow
// check.
func (e *InfinityEngine) drainReduces() {
	e.pendingReduces = overlap.Drain(e.pendingReduces, func(ps *pstate, gs []float32, gh []tensor.Half) {
		e.f16.Put(gh)
		if gs != nil { // nil on non-owner ranks under PartitionBroadcast
			e.foldGradShard(ps, gs)
		}
	})
}
