package core
