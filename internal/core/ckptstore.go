package core

import (
	"repro/internal/mem"
	"repro/internal/tensor"
)

// cpuCheckpointStore offloads activation checkpoints to CPU memory (paper
// Sec. 5.1.2): tensors are serialized to byte buffers accounted against the
// CPU tier and deserialized exactly on retrieval, so offloading never
// changes numerics. Blob bytes and staging scratch cycle through the
// engine's arenas, handles through a free list, and shape slices are reused
// across occupancies of a slot, so steady-state Put is allocation-free (Get
// still allocates the returned tensor, which the caller owns).
type cpuCheckpointStore struct {
	tracker *mem.Tracker
	bytes   *mem.Arena[byte]
	f32     *mem.Arena[float32]

	blobs []ckptBlob
	free  []int // vacant slots in blobs

	bytesOffloaded int64
}

type ckptBlob struct {
	data  []byte
	shape []int
	live  bool
}

func newCPUCheckpointStore(t *mem.Tracker, bytes *mem.Arena[byte], f32 *mem.Arena[float32]) *cpuCheckpointStore {
	return &cpuCheckpointStore{tracker: t, bytes: bytes, f32: f32}
}

// Put implements module.CheckpointStore.
func (s *cpuCheckpointStore) Put(t *tensor.Tensor) int {
	n := t.Len()
	b := s.bytes.Get(4 * n)
	tmp := s.f32.Get(n)
	t.Read(tmp)
	tensor.F32ToBytes(b, tmp)
	s.f32.Put(tmp)
	var h int
	if len(s.free) > 0 {
		h = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	} else {
		h = len(s.blobs)
		s.blobs = append(s.blobs, ckptBlob{})
	}
	blob := &s.blobs[h]
	blob.data = b
	blob.shape = append(blob.shape[:0], t.Shape()...)
	blob.live = true
	s.tracker.Add(mem.CatActCkpt, int64(len(b)))
	s.bytesOffloaded += int64(len(b))
	return h
}

// Get implements module.CheckpointStore.
func (s *cpuCheckpointStore) Get(h int) *tensor.Tensor {
	if h < 0 || h >= len(s.blobs) || !s.blobs[h].live {
		panic("core: unknown checkpoint handle")
	}
	blob := &s.blobs[h]
	s.tracker.Add(mem.CatActCkpt, -int64(len(blob.data)))
	out := tensor.New(tensor.FP32, blob.shape...)
	tmp := s.f32.Get(out.Len())
	tensor.F32FromBytes(tmp, blob.data)
	out.Write(tmp)
	s.f32.Put(tmp)
	s.bytes.Put(blob.data)
	blob.data = nil
	blob.live = false
	s.free = append(s.free, h)
	return out
}
