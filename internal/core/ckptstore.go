package core

import (
	"repro/internal/mem"
	"repro/internal/tensor"
)

// cpuCheckpointStore offloads activation checkpoints to CPU memory (paper
// Sec. 5.1.2): tensors are serialized to byte buffers accounted against the
// CPU tier and deserialized exactly on retrieval, so offloading never
// changes numerics.
type cpuCheckpointStore struct {
	tracker *mem.Tracker
	next    int
	blobs   map[int]ckptBlob

	bytesOffloaded int64
}

type ckptBlob struct {
	data  []byte
	shape []int
}

func newCPUCheckpointStore(t *mem.Tracker) *cpuCheckpointStore {
	return &cpuCheckpointStore{tracker: t, blobs: make(map[int]ckptBlob)}
}

// Put implements module.CheckpointStore.
func (s *cpuCheckpointStore) Put(t *tensor.Tensor) int {
	n := t.Len()
	b := make([]byte, 4*n)
	tmp := make([]float32, n)
	t.Read(tmp)
	tensor.F32ToBytes(b, tmp)
	h := s.next
	s.next++
	s.blobs[h] = ckptBlob{data: b, shape: append([]int(nil), t.Shape()...)}
	s.tracker.Add(mem.CatActCkpt, int64(len(b)))
	s.bytesOffloaded += int64(len(b))
	return h
}

// Get implements module.CheckpointStore.
func (s *cpuCheckpointStore) Get(h int) *tensor.Tensor {
	blob, ok := s.blobs[h]
	if !ok {
		panic("core: unknown checkpoint handle")
	}
	delete(s.blobs, h)
	s.tracker.Add(mem.CatActCkpt, -int64(len(blob.data)))
	out := tensor.New(tensor.FP32, blob.shape...)
	tmp := make([]float32, out.Len())
	tensor.F32FromBytes(tmp, blob.data)
	out.Write(tmp)
	return out
}
