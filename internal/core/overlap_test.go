package core

import (
	"testing"

	"repro/internal/zero"
)

// The overlap acceptance claim for the infinity engine: async allgathers,
// the comm prefetcher and async reduce-scatters — composed with the NVMe
// read prefetcher behind the shared PrefetchDepth budget — leave the
// training trajectory bit-identical to plain DDP for every placement.
func TestInfinityOverlapBitIdenticalToDDP(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ckpt bool
	}{
		{"cpu-cpu+overlap", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU,
			PrefetchDepth: 2, Overlap: true}, false},
		{"gpu-gpu+overlap", Config{Params: zero.OnGPU, Optimizer: zero.OnGPU,
			PrefetchDepth: 3, Overlap: true}, false},
		{"nvme-nvme+overlap", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
			PrefetchDepth: 3, Overlap: true}, false},
		{"nvme-nvme+overlap+ckpt-offload", Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
			PrefetchDepth: 2, Overlap: true, OffloadActivations: true}, true},
		{"async-reduce-only", Config{Params: zero.OnCPU, Optimizer: zero.OnCPU,
			Overlap: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mcfg := testModelCfg(tc.ckpt)
			ddp := runDDP(t, mcfg)
			got := runInfinity(t, mcfg, tc.cfg)
			assertSame(t, tc.name, ddp, got)
		})
	}
}

// With both stages on NVMe and overlap on, the two prefetch stages chain:
// speculative NVMe reads are consumed by speculative allgathers, which are
// consumed by gathers.
func TestOverlapStagesComposeOnNVMe(t *testing.T) {
	mcfg := testModelCfg(false)
	got := runInfinity(t, mcfg, Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
		PrefetchDepth: 3, Overlap: true})
	s := got.stats
	if s.PrefetchIssued == 0 || s.PrefetchHits == 0 {
		t.Fatalf("NVMe stage idle: issued %d hits %d", s.PrefetchIssued, s.PrefetchHits)
	}
	if s.CommPrefetchIssued == 0 || s.CommPrefetchHits == 0 {
		t.Fatalf("comm stage idle: issued %d hits %d", s.CommPrefetchIssued, s.CommPrefetchHits)
	}
	if s.CommPrefetchHits > s.CommPrefetchIssued {
		t.Fatalf("comm hits %d > issued %d", s.CommPrefetchHits, s.CommPrefetchIssued)
	}
	if s.AsyncReduces == 0 {
		t.Fatal("no reduce-scatter launched asynchronously")
	}
}

// Overlap with a pinned pool barely larger than the speculation depth must
// not deadlock (the same budget invariant as the NVMe-only prefetcher).
func TestOverlapRespectsPinnedBudget(t *testing.T) {
	mcfg := testModelCfg(false)
	got := runInfinity(t, mcfg, Config{Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
		PrefetchDepth: 16, PinnedBuffers: 3, Overlap: true})
	ddp := runDDP(t, mcfg)
	assertSame(t, "tight-pool-overlap", ddp, got)
}
