package core

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/nvme"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// pstate is the per-parameter engine state: where the fp16 shard and
// optimizer shard live, plus transient gather/prefetch bookkeeping.
type pstate struct {
	p        *module.Param
	owner    module.Module
	shardLen int
	// bcastRoot is the rank owning the whole parameter under
	// PartitionBroadcast (-1 under 1/dp slicing). On the owner shardLen is
	// the full parameter length; elsewhere it is 0 and no shard storage
	// exists.
	bcastRoot int

	// fp16 parameter shard: resident slice for OnGPU/OnCPU, region for OnNVMe.
	hostShard []tensor.Half
	region    nvme.Region

	// fp32 optimizer shard: resident for OnGPU/OnCPU, region ([master|m|v])
	// for OnNVMe.
	master, m, v []float32
	optRegion    nvme.Region

	gradShard []float32
	gpuBlock  mem.Block
	// inflight is a speculative NVMe read; commInflight a speculative
	// allgather chained onto it (or onto the resident shard).
	inflight     *inflightFetch
	commInflight inflightGather
}

type inflightFetch struct {
	ticket *nvme.Ticket
	buf    []byte
	// born is the engine's gather count when the read was issued. The comm
	// prefetcher only chains an allgather onto a read that is at least two
	// gathers old — young reads are likely still in flight, and waiting on
	// them early would serialize the disk stage instead of overlapping it.
	// Gather counts are identical across SPMD ranks, so the gate is
	// deterministic.
	born int
}

// InfinityEngine is the ZeRO-Infinity training engine for one rank.
type InfinityEngine struct {
	cfg Config
	c   *comm.Comm
	g   zero.Model
	rt  *module.Runtime

	params []*module.Param
	states map[*module.Param]*pstate
	// owned lists the parameters whose gradient and optimizer shard this
	// rank holds: all of them under 1/dp slicing, the round-robin subset
	// under owner-rank broadcast partitioning.
	owned []*module.Param

	scaler    *optim.LossScaler
	stepCount int

	// f32/f16/bytes are the engine's scratch arenas; transient gather,
	// gradient and staging buffers cycle through them instead of the heap.
	f32   *mem.Arena[float32]
	f16   *mem.Arena[tensor.Half]
	bytes *mem.Arena[byte]

	// Reused step scratch.
	shardsBuf          [][]float32
	microTok, microTgt [][]int
	meter              zero.AllocMeter

	// Infinity offload engine pieces.
	store  nvme.Store
	vol    *nvme.Volume
	io     *nvme.Engine
	pinned *mem.PinnedPool

	gpuAlloc *mem.Allocator
	gpuT     *mem.Tracker
	cpuT     *mem.Tracker

	ckpt *cpuCheckpointStore

	// External-parameter registry and hook scope stack (as in zero.Z3Engine).
	external map[module.Module][]*module.Param
	active   []module.Module

	// Overlap-centric pieces (paper Sec. 6.2): trace is the learned gather
	// sequence shared by the NVMe read prefetcher and the comm (allgather)
	// prefetcher; pendingReduces holds asynchronously launched gradient
	// reduce-scatters until the drain barrier in StepAccum.
	trace          *overlap.Trace[*pstate]
	prefetch       *prefetcher
	commPrefetch   *commPrefetcher
	pendingReduces []overlap.Pending[*pstate]

	stats Stats
}

// errGPUOOM wraps allocator failures so Step can convert the panic that
// aborts a forward pass into an error (the CUDA-OOM analogue).
type errGPUOOM struct{ err error }

func (e errGPUOOM) Error() string { return e.err.Error() }

// NewInfinityEngine builds the engine for one rank, performing partitioned
// initialization: each parameter's full init values exist only transiently
// before being sharded to the configured tier.
func NewInfinityEngine(cfg Config, c *comm.Comm, g zero.Model) (*InfinityEngine, error) {
	cfg.setDefaults()
	e := &InfinityEngine{
		cfg:      cfg,
		c:        c,
		g:        g,
		params:   module.AllParams(g),
		states:   make(map[*module.Param]*pstate),
		f32:      mem.NewArena[float32](),
		f16:      mem.NewArena[tensor.Half](),
		bytes:    mem.NewArena[byte](),
		gpuT:     mem.NewTracker(fmt.Sprintf("gpu%d", c.Rank())),
		cpuT:     mem.NewTracker(fmt.Sprintf("cpu%d", c.Rank())),
		external: make(map[module.Module][]*module.Param),
	}
	e.rt = module.NewRuntime(e)
	e.rt.SetBackend(cfg.Backend)
	e.rt.SetStepArena(mem.NewStepArena())
	c.SetCodecBackend(cfg.Backend)
	if cfg.Topology != nil {
		if err := c.SetTopology(cfg.Topology); err != nil {
			return nil, err
		}
	}
	if cfg.DynamicLossScale {
		e.scaler = optim.NewLossScaler(cfg.LossScale)
	} else {
		e.scaler = optim.StaticLossScaler(cfg.LossScale)
	}
	if cfg.GPUMemory > 0 {
		e.gpuAlloc = mem.NewAllocator(cfg.GPUMemory)
		if cfg.PreFragment > 0 {
			e.gpuAlloc.PreFragment(cfg.PreFragment)
		}
	}
	if cfg.OffloadActivations {
		e.ckpt = newCPUCheckpointStore(e.cpuT, e.bytes, e.f32)
		e.rt.SetCheckpointStore(e.ckpt)
	}

	dp := c.Size()
	owners := make(map[*module.Param]module.Module)
	module.Walk(g, func(m module.Module) {
		for _, p := range m.Params() {
			owners[p] = m
		}
	})

	// Size and open the NVMe store + pinned pool.
	if cfg.needsNVMe() {
		var capacity int64
		maxRegion := 0
		for i, p := range e.params {
			s := e.shardLenFor(i, p)
			if cfg.Params == zero.OnNVMe {
				capacity += int64(s) * tensor.HalfBytes
			}
			if cfg.Optimizer == zero.OnNVMe {
				capacity += int64(s) * 12
			}
			if b := s * 12; b > maxRegion {
				maxRegion = b
			}
		}
		if cfg.NVMeCapacity > 0 {
			capacity = cfg.NVMeCapacity
		}
		var err error
		if cfg.NVMeDir != "" {
			e.store, err = nvme.NewTempFileStore(cfg.NVMeDir, capacity)
		} else {
			e.store = nvme.NewMemStore(capacity)
		}
		if err != nil {
			return nil, fmt.Errorf("core: open nvme store: %w", err)
		}
		e.vol = nvme.NewVolume(e.store)
		e.io = nvme.NewEngine(e.store, nvme.Options{Workers: cfg.NVMeWorkers})
		if cfg.PinnedBufBytes == 0 {
			cfg.PinnedBufBytes = maxRegion
			if cfg.PinnedBufBytes == 0 {
				cfg.PinnedBufBytes = 1
			}
		}
		e.cfg.PinnedBufBytes = cfg.PinnedBufBytes
		e.pinned = mem.NewPinnedPool(cfg.PinnedBuffers, cfg.PinnedBufBytes)
		e.cpuT.Add(mem.CatPinnedStage, int64(cfg.PinnedBuffers)*int64(cfg.PinnedBufBytes))
	}

	// Partitioned initialization (paper Sec. 7.2). Under PartitionBroadcast
	// the "shard" is the whole parameter on its owning rank and nothing
	// elsewhere (shardLen 0: zero-length state, no NVMe regions).
	for i, p := range e.params {
		s := e.shardLenFor(i, p)
		lo := c.Rank() * s
		ps := &pstate{p: p, owner: owners[p], shardLen: s, bcastRoot: -1}
		if cfg.Partition == zero.PartitionBroadcast {
			ps.bcastRoot = i % dp
			lo = 0
		}
		fs := make([]float32, s)
		if s > 0 {
			full := model.InitValues(p, cfg.Seed) // transient
			for j := 0; j < s; j++ {
				if lo+j < len(full) {
					fs[j] = full[lo+j]
				}
			}
		}
		half := make([]tensor.Half, s)
		tensor.EncodeHalf(half, fs)

		switch {
		case cfg.Params == zero.OnNVMe:
			if s > 0 {
				r, err := e.vol.Alloc("param/"+p.Name, int64(s)*tensor.HalfBytes)
				if err != nil {
					return nil, err
				}
				buf := make([]byte, r.Size)
				tensor.HalfToBytes(buf, half)
				if err := e.io.WriteRegion(buf, r).Wait(); err != nil {
					return nil, err
				}
				ps.region = r
			}
		case cfg.Params == zero.OnCPU:
			ps.hostShard = half
			e.cpuT.Add(mem.CatParamsFP16, int64(s)*tensor.HalfBytes)
		default:
			ps.hostShard = half
			e.gpuT.Add(mem.CatParamsFP16, int64(s)*tensor.HalfBytes)
		}
		switch {
		case cfg.Optimizer == zero.OnNVMe:
			if s > 0 {
				r, err := e.vol.Alloc("opt/"+p.Name, int64(s)*12)
				if err != nil {
					return nil, err
				}
				buf := make([]byte, r.Size)
				tensor.F32ToBytes(buf[:4*s], fs) // master = fp16 init values
				// momentum and variance start at zero (already zero in buf).
				if err := e.io.WriteRegion(buf, r).Wait(); err != nil {
					return nil, err
				}
				ps.optRegion = r
			}
		case cfg.Optimizer == zero.OnCPU:
			ps.master = fs
			ps.m = make([]float32, s)
			ps.v = make([]float32, s)
			e.cpuT.Add(mem.CatOptimState, int64(s)*12)
		default:
			ps.master = fs
			ps.m = make([]float32, s)
			ps.v = make([]float32, s)
			e.gpuT.Add(mem.CatOptimState, int64(s)*12)
		}
		e.states[p] = ps
		if s > 0 {
			e.owned = append(e.owned, p)
		}
		p.SetOnDemand(e.onDemand)
		p.SetGradScratch(e.f32.Get, e.f32.Put)
	}
	if cfg.Params == zero.OnNVMe && cfg.PrefetchDepth > 0 {
		// The prefetcher's speculative reads must never hold the whole
		// pinned pool, or a synchronous fetch would starve.
		depth := cfg.PrefetchDepth
		if depth > cfg.PinnedBuffers-1 {
			depth = cfg.PinnedBuffers - 1
		}
		e.prefetch = newPrefetcher(e, depth)
	}
	if cfg.Overlap && cfg.PrefetchDepth > 0 &&
		!(cfg.Partition == zero.PartitionBroadcast && cfg.Params == zero.OnNVMe) {
		// Broadcast partitioning over NVMe keeps the owner-local read
		// prefetcher but not the comm prefetcher: its issue decisions would
		// depend on the owner's private read state and desynchronize the
		// SPMD collective sequence across ranks.
		e.commPrefetch = newCommPrefetcher(e, cfg.PrefetchDepth)
	}
	if e.prefetch != nil || e.commPrefetch != nil {
		e.trace = overlap.New[*pstate](cfg.PrefetchDepth)
	}
	return e, nil
}

// shardLenFor returns this rank's fp16 shard length for the i-th parameter
// under the configured partitioning strategy: the padded 1/dp slice, or the
// whole parameter on its round-robin owner (0 elsewhere).
func (e *InfinityEngine) shardLenFor(i int, p *module.Param) int {
	if e.cfg.Partition == zero.PartitionBroadcast {
		if i%e.c.Size() == e.c.Rank() {
			return p.Len()
		}
		return 0
	}
	return comm.ShardLen(p.Len(), e.c.Size())
}

// Close releases the NVMe engine and store.
func (e *InfinityEngine) Close() {
	if e.io != nil {
		e.io.Close()
	}
	if e.store != nil {
		e.store.Close()
	}
}

// Model returns the wrapped model.
func (e *InfinityEngine) Model() zero.Model { return e.g }

// Runtime returns the hook runtime.
func (e *InfinityEngine) Runtime() *module.Runtime { return e.rt }

// LossScale returns the current loss scale.
func (e *InfinityEngine) LossScale() float64 { return e.scaler.Scale }

// Stats returns cumulative engine statistics.
func (e *InfinityEngine) Stats() Stats {
	s := e.stats
	s.MaxLiveParamBytes = e.gpuT.Peak(mem.CatWorkingSet)
	if e.io != nil {
		io := e.io.Stats()
		s.NVMeBytesRead = io.BytesRead
		s.NVMeBytesWritten = io.BytesWritten
	}
	if e.pinned != nil {
		s.PinnedBytes = e.pinned.TotalBytes()
		s.PinnedAcquires = e.pinned.Acquires()
	}
	if e.ckpt != nil {
		s.CkptBytesOffload = e.ckpt.bytesOffloaded
	}
	if e.gpuAlloc != nil {
		s.GPUPeakBytes = e.gpuAlloc.Peak()
	}
	s.CommTraffic = e.c.Traffic()
	s.CommGBps = e.c.TrafficTotal().AggGBps()
	return s
}

// GPUTracker and CPUTracker expose memory accounting.
func (e *InfinityEngine) GPUTracker() *mem.Tracker { return e.gpuT }

// CPUTracker exposes CPU-tier accounting.
func (e *InfinityEngine) CPUTracker() *mem.Tracker { return e.cpuT }

// shardHalf returns the rank's fp16 shard of ps, fetching from its tier.
// For NVMe-resident parameters the returned slice is arena scratch; release
// it with releaseShard when done.
func (e *InfinityEngine) shardHalf(ps *pstate) []tensor.Half {
	if e.cfg.Params != zero.OnNVMe {
		return ps.hostShard
	}
	half := e.f16.Get(ps.shardLen)
	if f := ps.inflight; f != nil {
		// Prefetched: the nc-transfer already happened (or is completing).
		if err := f.ticket.Wait(); err != nil {
			panic(fmt.Errorf("core: prefetched read %s: %w", ps.p.Name, err))
		}
		tensor.HalfFromBytes(half, f.buf[:ps.region.Size])
		e.pinned.Release(f.buf[:e.cfg.PinnedBufBytes])
		ps.inflight = nil
		if e.prefetch != nil {
			e.prefetch.consumed()
		}
		e.stats.PrefetchHits++
		return half
	}
	buf := e.pinned.Acquire()
	if err := e.io.ReadRegion(buf[:ps.region.Size], ps.region).Wait(); err != nil {
		panic(fmt.Errorf("core: read shard %s: %w", ps.p.Name, err))
	}
	tensor.HalfFromBytes(half, buf[:ps.region.Size])
	e.pinned.Release(buf)
	return half
}

// releaseShard recycles a shardHalf result (a no-op for resident tiers,
// whose slice is the authoritative storage).
func (e *InfinityEngine) releaseShard(s []tensor.Half) {
	if e.cfg.Params == zero.OnNVMe {
		e.f16.Put(s)
	}
}

// writeShard persists an updated fp16 shard back to its tier.
func (e *InfinityEngine) writeShard(ps *pstate, half []tensor.Half) {
	if e.cfg.Params != zero.OnNVMe {
		copy(ps.hostShard, half)
		return
	}
	buf := e.bytes.Get(int(ps.region.Size))
	tensor.HalfToBytes(buf, half)
	err := e.io.WriteRegion(buf, ps.region).Wait()
	e.bytes.Put(buf)
	if err != nil {
		panic(fmt.Errorf("core: write shard %s: %w", ps.p.Name, err))
	}
}

// gather materializes p from the ranks' shards: bandwidth-centric under
// PartitionSlice (every rank fetches its own 1/dp slice over its own link,
// then allgather), an owner-rank broadcast under PartitionBroadcast. With
// overlap enabled, a speculatively issued collective is claimed instead of
// stalling on a fresh one, and collectives/NVMe reads for upcoming
// parameters are issued before returning to compute.
func (e *InfinityEngine) gather(p *module.Param) {
	if p.Materialized() {
		return
	}
	ps := e.states[p]
	if e.trace != nil {
		e.trace.Observe(ps)
	}
	var full []float32
	var fullH []tensor.Half
	if f := ps.commInflight; f.inFlight() {
		f.ticket.Wait()
		full, fullH = f.full, f.fullH
		e.releaseShard(f.shard)
		ps.commInflight = inflightGather{}
		e.commPrefetch.consumed()
		e.stats.CommPrefetchHits++
	} else if e.cfg.Partition == zero.PartitionBroadcast {
		fullH = e.bcastFullH(ps)
		e.c.BroadcastHalf(fullH, ps.bcastRoot)
	} else {
		// Fused allgather+decode: the collective moves fp16 shards and
		// delivers the decoded float32 view directly, skipping the
		// full-size intermediate fp16 buffer and decode pass.
		shard := e.shardHalf(ps)
		full = e.f32.Get(ps.shardLen * e.c.Size())
		e.c.AllGatherHalfDecode(full, shard)
		e.releaseShard(shard)
	}
	if e.gpuAlloc != nil {
		b, err := e.gpuAlloc.Alloc(p.FP16Bytes())
		if err != nil {
			panic(errGPUOOM{fmt.Errorf("gathering %s: %w", p.Name, err)})
		}
		ps.gpuBlock = b
	}
	e.gpuT.Add(mem.CatWorkingSet, p.FP16Bytes())
	if full == nil {
		full = e.f32.Get(p.Len())
		e.rt.Backend().DecodeHalf(full, fullH[:p.Len()])
		e.f16.Put(fullH)
	} else {
		full = full[:p.Len()]
	}
	p.SetData(full)
	e.stats.Gathers++
	if e.commPrefetch != nil {
		e.commPrefetch.issue() // chain allgathers onto completed NVMe reads first
	}
	if e.prefetch != nil {
		e.prefetch.issue() // then replenish the NVMe read-ahead window
	}
}

// bcastFullH draws a full-length fp16 view buffer from the arena and fills
// it with this rank's contribution to ps's owner broadcast — the owner's
// whole shard (fetched from its tier); stale arena contents elsewhere,
// which the broadcast overwrites. Shared by the sync gather, the comm
// prefetcher and FullParams so the owner-fetch sequence exists once.
func (e *InfinityEngine) bcastFullH(ps *pstate) []tensor.Half {
	fullH := e.f16.Get(ps.p.Len())
	if e.c.Rank() == ps.bcastRoot {
		shard := e.shardHalf(ps)
		copy(fullH, shard)
		e.releaseShard(shard)
	}
	return fullH
}

// release re-partitions p, freeing the gathered copy.
func (e *InfinityEngine) release(p *module.Param) {
	if !p.Materialized() {
		return
	}
	ps := e.states[p]
	if e.gpuAlloc != nil {
		e.gpuAlloc.Release(ps.gpuBlock)
		ps.gpuBlock = mem.Block{}
	}
	e.gpuT.Add(mem.CatWorkingSet, -p.FP16Bytes())
	e.f32.Put(p.Data())
	p.ReleaseData()
}

func (e *InfinityEngine) onDemand(p *module.Param) {
	e.gather(p)
	e.stats.OnDemandGathers++
	if len(e.active) == 0 {
		return
	}
	m := e.active[len(e.active)-1]
	if e.states[p].owner == m {
		return
	}
	for _, q := range e.external[m] {
		if q == p {
			return
		}
	}
	e.external[m] = append(e.external[m], p)
}

// PreForward implements module.Hooks.
func (e *InfinityEngine) PreForward(m module.Module) {
	e.active = append(e.active, m)
	for _, p := range m.Params() {
		e.gather(p)
	}
	for _, p := range e.external[m] {
		e.gather(p)
	}
}

// PostForward implements module.Hooks.
func (e *InfinityEngine) PostForward(m module.Module) {
	e.active = e.active[:len(e.active)-1]
	for _, p := range m.Params() {
		e.release(p)
	}
	for _, p := range e.external[m] {
		if !e.inScope(p) {
			e.release(p)
		}
	}
}

// PreBackward implements module.Hooks.
func (e *InfinityEngine) PreBackward(m module.Module) {
	e.active = append(e.active, m)
	for _, p := range m.Params() {
		e.gather(p)
	}
	for _, p := range e.external[m] {
		e.gather(p)
	}
}

// PostBackward implements module.Hooks: reduce each parameter's gradient —
// fused reduce-scatter+decode of the 1/dp slices, or fused reduce+decode to
// the owning rank under PartitionBroadcast — then re-partition.
func (e *InfinityEngine) PostBackward(m module.Module) {
	e.active = e.active[:len(e.active)-1]
	for _, p := range m.Params() {
		if p.HasGrad() {
			e.reduceGrad(p)
			p.ReleaseGrad()
		}
		e.release(p)
	}
	for _, p := range e.external[m] {
		if !e.inScope(p) {
			e.release(p)
		}
	}
}

// reduceGrad launches (or performs) the strategy's gradient reduction for
// p. Both strategies accumulate per element in rank order with fp32
// arithmetic and round through binary16, so the reduced values are
// bit-identical; only where the result lands and which links carry the
// bytes differ.
func (e *InfinityEngine) reduceGrad(p *module.Param) {
	ps := e.states[p]
	dp := e.c.Size()
	n := p.Len()
	if e.cfg.Partition == zero.PartitionBroadcast {
		gh := e.f16.Get(n)
		e.rt.Backend().EncodeHalf(gh, p.Grad())
		var gs []float32
		if e.c.Rank() == ps.bcastRoot {
			gs = e.f32.Get(n)
		}
		if e.cfg.Overlap {
			tk := e.c.ReduceHalfDecodeAsync(gs, gh, ps.bcastRoot)
			e.pendingReduces = append(e.pendingReduces,
				overlap.Pending[*pstate]{Key: ps, Ticket: tk, Shard: gs, GH: gh})
			e.stats.AsyncReduces++
		} else {
			e.c.ReduceHalfDecode(gs, gh, ps.bcastRoot)
			e.f16.Put(gh)
			if gs != nil {
				e.foldGradShard(ps, gs)
			}
		}
		return
	}
	padded := comm.PaddedLen(n, dp)
	gh := e.f16.Get(padded)
	e.rt.Backend().EncodeHalf(gh[:n], p.Grad())
	clear(gh[n:])
	gs := e.f32.Get(padded / dp)
	if e.cfg.Overlap {
		// Launch asynchronously (fused reduce+decode) and keep computing
		// the rest of the backward pass; drained before the overflow check.
		tk := e.c.ReduceScatterHalfDecodeAsync(gs, gh)
		e.pendingReduces = append(e.pendingReduces,
			overlap.Pending[*pstate]{Key: ps, Ticket: tk, Shard: gs, GH: gh})
		e.stats.AsyncReduces++
	} else {
		e.c.ReduceScatterHalfDecode(gs, gh)
		e.f16.Put(gh)
		e.foldGradShard(ps, gs)
	}
}

// foldGradShard accumulates a freshly reduced fp32 shard into ps's gradient
// shard (micro-batch accumulation), recycling the buffer when an
// accumulator already exists.
func (e *InfinityEngine) foldGradShard(ps *pstate, gs []float32) {
	if acc := ps.gradShard; acc != nil {
		e.rt.Backend().Axpy(1, gs, acc)
		e.f32.Put(gs)
	} else {
		ps.gradShard = gs
	}
}

func (e *InfinityEngine) inScope(p *module.Param) bool {
	owner := e.states[p].owner
	for _, m := range e.active {
		if owner == m {
			return true
		}
		for _, q := range e.external[m] {
			if q == p {
				return true
			}
		}
	}
	return false
}

// Step runs one training step on this rank's batch. A GPU-memory budget
// violation (working set exceeds Config.GPUMemory) is returned as an error
// wrapping mem.ErrOutOfMemory or mem.ErrFragmented.
func (e *InfinityEngine) Step(tokens, targets []int, batch int) (zero.StepResult, error) {
	tok, tgt := zero.MicroBatch(&e.microTok, &e.microTgt, tokens, targets)
	return e.StepAccum(tok, tgt, batch)
}

// StepAccum runs one training step with gradient accumulation over
// micro-batches (reduce per micro-batch, accumulate fp32 shards).
func (e *InfinityEngine) StepAccum(microTokens, microTargets [][]int, batchPerMicro int) (res zero.StepResult, err error) {
	if len(microTokens) == 0 || len(microTokens) != len(microTargets) {
		panic("core: StepAccum needs matching non-empty micro-batches")
	}
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(errGPUOOM); ok {
				err = oom.err
				return
			}
			panic(r)
		}
	}()
	e.meter.Begin()
	defer func() {
		e.stats.AllocsPerStep = e.meter.End()
	}()
	dp := e.c.Size()
	micros := len(microTokens)
	scaleUsed := e.scaler.Scale

	var lossSum float64
	for m := 0; m < micros; m++ {
		e.beginOverlapStep()
		// The arena step brackets the micro-batch. EndStep runs after
		// endOverlapStep's reduce drain, so nothing launched in this
		// micro-batch is in flight when the activations are reclaimed (the
		// async reduce-scatters only hold engine-arena fp16 buffers anyway).
		// An OOM unwind skips EndStep; the next BeginStep reclaims
		// unconditionally, so aborted steps cannot leak arena buffers.
		e.rt.BeginStep()
		lossSum += e.g.ForwardLoss(e.rt, microTokens[m], microTargets[m], batchPerMicro)
		e.g.BackwardLoss(e.rt, float32(scaleUsed))
		e.endOverlapStep()
		e.rt.EndStep()
	}
	globalLoss := e.c.AllReduceScalar(lossSum/float64(micros)) / float64(dp)

	// Drain barrier: every asynchronously launched reduce-scatter must land
	// before gradients are inspected for overflow.
	e.drainReduces()

	shards := e.shardsBuf[:0]
	for _, p := range e.owned {
		shards = append(shards, e.states[p].gradShard)
	}
	e.shardsBuf = shards
	if zero.GlobalOverflow(e.c, e.rt.Backend(), shards) {
		e.scaler.Update(true)
		for _, p := range e.owned {
			if gs := e.states[p].gradShard; gs != nil {
				e.f32.Put(gs)
				e.states[p].gradShard = nil
			}
		}
		return zero.StepResult{Loss: globalLoss, Skipped: true, LossScale: e.scaler.Scale}, nil
	}

	// Unscale (and clip) before the optimizer phase so the NVMe-streamed
	// update consumes finished gradients.
	inv := float32(1 / (scaleUsed * float64(dp) * float64(micros)))
	for _, p := range e.owned {
		e.rt.Backend().Scale(inv, e.states[p].gradShard)
	}
	if f := zero.GlobalClipFactor(e.c, e.cfg.ClipNorm, shards); f != 1 {
		for _, p := range e.owned {
			e.rt.Backend().Scale(float32(f), e.states[p].gradShard)
		}
	}

	e.stepCount++
	if e.cfg.Optimizer == zero.OnNVMe {
		if oerr := e.optimizerStepNVMe(); oerr != nil {
			return zero.StepResult{}, oerr
		}
	} else {
		for _, p := range e.owned {
			ps := e.states[p]
			gs := ps.gradShard
			optim.StepVecOn(e.rt.Backend(), e.cfg.Adam, e.stepCount, ps.master, gs, ps.m, ps.v)
			half := e.f16.Get(ps.shardLen)
			e.rt.Backend().EncodeHalf(half, ps.master)
			e.writeShard(ps, half)
			e.f16.Put(half)
			e.f32.Put(gs)
			ps.gradShard = nil
		}
	}
	e.scaler.Update(false)
	return zero.StepResult{Loss: globalLoss, LossScale: e.scaler.Scale}, nil
}

// LoadParams replaces the model weights — sharding each full vector and
// writing it to the configured tier — and resets the optimizer state. Every
// rank must call it with identical values.
func (e *InfinityEngine) LoadParams(values map[string][]float32) error {
	dp := e.c.Size()
	for _, p := range e.params {
		v, ok := values[p.Name]
		if !ok {
			return fmt.Errorf("core: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != p.Len() {
			return fmt.Errorf("core: checkpoint parameter %q has %d elems, want %d", p.Name, len(v), p.Len())
		}
		ps := e.states[p]
		if e.cfg.Partition == zero.PartitionBroadcast && e.c.Rank() != ps.bcastRoot {
			continue // no state on this rank
		}
		rounded := tensor.RoundTripHalf(append([]float32(nil), v...))
		fs := make([]float32, ps.shardLen)
		if e.cfg.Partition == zero.PartitionBroadcast {
			copy(fs, rounded)
		} else {
			comm.Shard(fs, rounded, e.c.Rank(), dp)
		}
		half := make([]tensor.Half, ps.shardLen)
		tensor.EncodeHalf(half, fs)
		e.writeShard(ps, half)

		if e.cfg.Optimizer == zero.OnNVMe {
			buf := make([]byte, ps.optRegion.Size)
			tensor.F32ToBytes(buf[:4*ps.shardLen], fs) // master; m, v zeroed
			if werr := e.io.WriteRegion(buf, ps.optRegion).Wait(); werr != nil {
				return fmt.Errorf("core: write optimizer state %q: %w", p.Name, werr)
			}
		} else {
			copy(ps.master, fs)
			for i := range ps.m {
				ps.m[i] = 0
				ps.v[i] = 0
			}
		}
	}
	e.stepCount = 0
	return nil
}

// FullParams gathers every parameter's current fp16 values (collective).
// The transient gathered fp16 view cycles through the engine's scratch
// arena — only the returned float32 vectors are fresh allocations.
func (e *InfinityEngine) FullParams() map[string][]float32 {
	dp := e.c.Size()
	out := make(map[string][]float32, len(e.params))
	for _, p := range e.params {
		ps := e.states[p]
		v := make([]float32, p.Len())
		if e.cfg.Partition == zero.PartitionBroadcast {
			fullH := e.bcastFullH(ps)
			e.c.BroadcastHalf(fullH, ps.bcastRoot)
			tensor.DecodeHalf(v, fullH[:p.Len()])
			e.f16.Put(fullH)
		} else {
			full := e.f32.Get(ps.shardLen * dp)
			shard := e.shardHalf(ps)
			e.c.AllGatherHalfDecode(full, shard)
			e.releaseShard(shard)
			copy(v, full[:p.Len()])
			e.f32.Put(full)
		}
		out[p.Name] = v
	}
	return out
}

// ErrIsOOM reports whether err is a GPU memory-budget failure.
func ErrIsOOM(err error) bool {
	return errors.Is(err, mem.ErrOutOfMemory) || errors.Is(err, mem.ErrFragmented)
}

var _ module.Hooks = (*InfinityEngine)(nil)
