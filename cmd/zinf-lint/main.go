// zinf-lint is the repo's static-analysis multichecker: it runs the
// internal/analysis suite (hotpathalloc, pinnedleak, ticketawait, detfloat)
// over the module and exits non-zero on any diagnostic, go-vet-style.
//
// Usage:
//
//	go run ./cmd/zinf-lint ./...          # whole module (what CI runs)
//	go run ./cmd/zinf-lint ./internal/zero ./internal/comm
//	go run ./cmd/zinf-lint -list          # describe the analyzers
//	go run ./cmd/zinf-lint -run pinnedleak,ticketawait ./...
//
// Suppressions (//zinf:allow <analyzer> <reason>) are counted and reported
// on stderr so the escape-hatch budget stays visible; an allow without a
// reason, or one that no longer suppresses anything, is itself an error.
//
// The suite is built on the standard library's go/ast + go/types only (the
// repo is dependency-free by policy), so unlike x/tools-based vettools it
// loads and type-checks the module itself rather than running under
// `go vet -vettool`; the output format is vet-compatible.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	run := flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zinf-lint [-run a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "zinf-lint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zinf-lint:", err)
		os.Exit(2)
	}
	root, modulePath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zinf-lint:", err)
		os.Exit(2)
	}

	res, err := analysis.Run(root, modulePath, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zinf-lint:", err)
		os.Exit(2)
	}

	// The allow budget: every suppression that fired, per analyzer.
	if len(res.Allows) > 0 {
		var names []string
		total := 0
		for name, n := range res.Allows {
			names = append(names, fmt.Sprintf("%s=%d", name, n))
			total += n
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "zinf-lint: %d //zinf:allow suppression(s) in effect (%s)\n",
			total, strings.Join(names, ", "))
	}

	if len(res.Diagnostics) == 0 {
		return
	}
	// Loader state is gone here; rebuild positions through a fresh fset is
	// unnecessary — Run formats positions into the message via Index.
	for _, d := range res.Diagnostics {
		fmt.Println(d.Formatted)
	}
	fmt.Fprintf(os.Stderr, "zinf-lint: %d diagnostic(s)\n", len(res.Diagnostics))
	os.Exit(1)
}
