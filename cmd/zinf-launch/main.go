// Command zinf-launch runs multi-process training: it spawns one
// zinf-train worker process per rank, wires them into a socket-transport
// world (rank 0 is the hub every other rank connects to), ships the
// resolved training recipe as JSON, prefixes each worker's output with its
// rank, and aggregates exit status — any rank failing kills the world.
//
// Examples:
//
//	zinf-launch -ranks 4 -engine zero3 -steps 10
//	zinf-launch -ranks 4 -transport mem      # same recipe, one process
//
// The trajectory is bit-identical across -transport sock and mem (and to
// plain zinf-train): transports carry bytes, the shared collective kernels
// define the arithmetic.
//
// Workers are spawned as `zinf-train -worker` with the environment:
//
//	ZINF_WORKER_RANK       this rank (0..world-1)
//	ZINF_WORKER_WORLD      world size
//	ZINF_WORKER_COORD      hub TCP address
//	ZINF_WORKER_TRANSPORT  "sock" or "mem"
//	ZINF_CONFIG            JSON cliconfig.WorkerSpec (the training recipe)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	zeroinf "repro"
	"repro/internal/cliconfig"
)

func main() {
	t := cliconfig.TrainDefaults()
	cliconfig.AddTrain(flag.CommandLine, &t)
	var (
		transport = flag.String("transport", "sock", "worker transport: sock (one process per rank) | mem (one process, goroutine ranks)")
		trainBin  = flag.String("train-bin", "", "path to the zinf-train binary (default: next to this binary, else $PATH)")
		coord     = flag.String("coord", "127.0.0.1:0", "hub bind address for the sock transport (port 0 = auto-pick)")
		dataSeed  = flag.Uint64("data-seed", 0, "synthetic-data seed (0 = library default)")
	)
	flag.Parse()

	spec, err := t.WorkerSpec()
	if err != nil {
		log.Fatal(err)
	}
	spec.DataSeed = *dataSeed
	if t.Ranks < 1 {
		log.Fatalf("zinf-launch: -ranks %d < 1", t.Ranks)
	}
	// Fail fast — with the exact error installation would produce — before
	// any worker process exists.
	if err := zeroinf.ValidateTopology(spec.Engine.Topology, t.Ranks); err != nil {
		log.Fatal(err)
	}
	if *transport != "sock" && *transport != "mem" {
		log.Fatalf("zinf-launch: unknown transport %q (sock|mem)", *transport)
	}
	specJSON, err := cliconfig.MarshalWorkerSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	bin := *trainBin
	if bin == "" {
		bin = findTrainBin()
	}
	addr := *coord
	if *transport == "sock" && t.Ranks > 1 {
		if addr, err = pickAddr(*coord); err != nil {
			log.Fatal(err)
		}
	}

	procs := t.Ranks
	if *transport == "mem" {
		procs = 1
	}
	fmt.Printf("launching %d worker process(es), %d ranks, transport %s, engine %s\n",
		procs, t.Ranks, *transport, t.Engine)

	cmds := make([]*exec.Cmd, procs)
	for r := 0; r < procs; r++ {
		cmd := exec.Command(bin, "-worker")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("ZINF_WORKER_RANK=%d", r),
			fmt.Sprintf("ZINF_WORKER_WORLD=%d", t.Ranks),
			"ZINF_WORKER_COORD="+addr,
			"ZINF_WORKER_TRANSPORT="+*transport,
			"ZINF_CONFIG="+string(specJSON),
		)
		pw := &prefixWriter{w: os.Stdout, prefix: fmt.Sprintf("[rank %d] ", r)}
		cmd.Stdout = pw
		cmd.Stderr = pw
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Start(); err != nil {
			killAll(cmds[:r])
			log.Fatalf("zinf-launch: starting rank %d (%s): %v", r, bin, err)
		}
	}

	// Any rank failing kills the world: a dead rank can never rejoin a
	// collective, so the others would only hang until their reads error.
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for r, cmd := range cmds {
		wg.Add(1)
		go func(rank int, cmd *exec.Cmd) {
			defer wg.Done()
			err := cmd.Wait()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("zinf-launch: rank %d: %w", rank, err)
				killAll(cmds)
			}
		}(r, cmd)
	}
	wg.Wait()
	for _, cmd := range cmds {
		if pw, ok := cmd.Stdout.(*prefixWriter); ok {
			pw.Flush()
		}
	}
	if firstErr != nil {
		log.Fatal(firstErr)
	}
	fmt.Println("all ranks completed")
}

// findTrainBin prefers a zinf-train sitting next to this binary (the
// normal `go build -o bin/ ./cmd/...` layout), falling back to $PATH.
func findTrainBin() string {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "zinf-train")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand
		}
	}
	return "zinf-train"
}

// pickAddr resolves a ":0" coordinator address to a concrete port by
// binding and releasing it, so every worker can be handed the same
// dialable address before the hub exists.
func pickAddr(coord string) (string, error) {
	l, err := net.Listen("tcp", coord)
	if err != nil {
		return "", fmt.Errorf("zinf-launch: probing coordinator address %s: %w", coord, err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

// prefixWriter prepends a rank tag to every output line, buffering partial
// lines so interleaved workers stay readable.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	buf    bytes.Buffer
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadBytes('\n')
		if err != nil {
			// Incomplete line: keep it buffered for the next Write.
			p.buf.Write(line)
			break
		}
		fmt.Fprintf(p.w, "%s%s", p.prefix, line)
	}
	return len(b), nil
}

// Flush drains any unterminated final line.
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buf.Len() > 0 {
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf.Bytes())
		p.buf.Reset()
	}
}
