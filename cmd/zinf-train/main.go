// Command zinf-train trains a GPT-like model on synthetic data with any
// engine in the reproduction, printing per-step losses and (for
// ZeRO-Infinity) offload statistics.
//
// Examples:
//
//	zinf-train -engine ddp -ranks 4 -steps 10
//	zinf-train -engine infinity -params nvme -opt nvme -nvme-dir /tmp -ranks 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	zeroinf "repro"
	"repro/internal/mem"
)

func parsePlacement(s string) (zeroinf.Placement, error) {
	switch strings.ToLower(s) {
	case "gpu":
		return zeroinf.OnGPU, nil
	case "cpu":
		return zeroinf.OnCPU, nil
	case "nvme":
		return zeroinf.OnNVMe, nil
	}
	return zeroinf.OnGPU, fmt.Errorf("unknown placement %q (gpu|cpu|nvme)", s)
}

func main() {
	var (
		engine  = flag.String("engine", "infinity", "ddp | zero1 | zero2 | zero-offload | zero3 | infinity")
		params  = flag.String("params", "cpu", "infinity fp16 parameter placement: gpu|cpu|nvme")
		opt     = flag.String("opt", "cpu", "infinity optimizer placement: gpu|cpu|nvme")
		nvmeDir = flag.String("nvme-dir", "", "directory for the file-backed NVMe store")
		ranks   = flag.Int("ranks", 4, "data-parallel ranks (goroutine GPUs)")
		steps   = flag.Int("steps", 20, "training steps")
		batch   = flag.Int("batch", 2, "batch per rank")
		vocab   = flag.Int("vocab", 64, "vocabulary size")
		hidden  = flag.Int("hidden", 64, "hidden dimension")
		layers  = flag.Int("layers", 2, "transformer layers")
		heads   = flag.Int("heads", 4, "attention heads")
		seq     = flag.Int("seq", 16, "sequence length")
		tiling  = flag.Int("tiling", 1,
			"memory-centric tiling factor: build qkv/proj/fc1/fc2 and the LM head as N-tile operators (must divide hidden and vocab; 1 = dense)")
		ckpt     = flag.Bool("ckpt", false, "activation checkpointing")
		offAct   = flag.Bool("offload-act", false, "offload activation checkpoints to CPU (infinity)")
		scale    = flag.Float64("loss-scale", 1024, "initial loss scale")
		seed     = flag.Uint64("seed", 42, "init seed")
		accum    = flag.Int("accum", 1, "gradient accumulation micro-batches per step")
		clip     = flag.Float64("clip", 0, "global gradient-norm clip (0 = off)")
		prefetch = flag.Int("prefetch", 2,
			"overlap read-ahead depth: NVMe reads (infinity) and, with -overlap, speculative allgathers (zero3/infinity) for the next N trace entries (0 = off)")
		overlapF = flag.Bool("overlap", true,
			"async collectives: launch reduce-scatters asynchronously and speculate allgathers -prefetch deep (bit-identical; zero3/infinity)")
		backend = flag.String("backend", "reference",
			"compute backend: "+strings.Join(zeroinf.Backends(), "|")+" (bit-identical, parallel uses all cores)")
		topology = flag.String("topology", "",
			"multi-node fabric spec <nodes>x<ranksPerNode>[:intra=GB/s][:inter=GB/s][:lintra=µs][:linter=µs][:flat]; "+
				"collectives decompose hierarchically and achieved aggregate bandwidth is reported (\"\" = flat)")
		partition = flag.String("partition", "slice",
			"stage-3/infinity parameter partitioning (Fig. 6c): slice (1/dp, all links) | broadcast (owner-rank)")
		ckptDir   = flag.String("ckpt-dir", "", "crash-consistent checkpoint directory (enables -ckpt-every and -resume)")
		ckptEvery = flag.Int("ckpt-every", 0, "snapshot asynchronously every N steps (0 = off; requires -ckpt-dir)")
		resume    = flag.Bool("resume", false, "resume from the newest complete generation in -ckpt-dir")
	)
	flag.Parse()

	mcfg := zeroinf.ModelConfig{
		Vocab: *vocab, Hidden: *hidden, Layers: *layers, Heads: *heads, Seq: *seq,
		CheckpointActivations: *ckpt || *offAct,
		Tiling:                *tiling,
	}
	ecfg := zeroinf.EngineConfig{LossScale: *scale, DynamicLossScale: true, Seed: *seed, ClipNorm: *clip, Backend: *backend,
		PrefetchDepth: *prefetch, Overlap: *overlapF}
	topo, err := zeroinf.ParseTopology(*topology)
	if err != nil {
		log.Fatal(err)
	}
	ecfg.Topology = topo
	if ecfg.Partition, err = zeroinf.ParsePartitioning(*partition); err != nil {
		log.Fatal(err)
	}
	switch *engine {
	case "ddp":
		ecfg.Stage = zeroinf.StageDDP
	case "zero1":
		ecfg.Stage = zeroinf.Stage1
	case "zero2":
		ecfg.Stage = zeroinf.Stage2
	case "zero-offload":
		ecfg.Stage = zeroinf.Stage2
		ecfg.OffloadOptimizer = true
	case "zero3":
		ecfg.Stage = zeroinf.Stage3
	case "infinity":
		ecfg.Infinity = true
		ecfg.OffloadActivations = *offAct
		ecfg.NVMeDir = *nvmeDir
		var err error
		if ecfg.Params, err = parsePlacement(*params); err != nil {
			log.Fatal(err)
		}
		if ecfg.Optimizer, err = parsePlacement(*opt); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	ecfg.CheckpointDir = *ckptDir
	ecfg.CheckpointEvery = *ckptEvery

	// SIGINT/SIGTERM request a clean stop: ranks agree on a step boundary,
	// take a final snapshot into -ckpt-dir, and exit resumably.
	var stop chan struct{}
	if *ckptDir != "" {
		stop = make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Println("signal received: taking a final snapshot and stopping")
			signal.Stop(sig)
			close(stop)
		}()
	}

	fmt.Printf("training %d-layer hd=%d model (%d params) on %d ranks with %s\n",
		mcfg.Layers, mcfg.Hidden, mcfg.ExactParamCount(), *ranks, *engine)
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: ecfg, Ranks: *ranks, Steps: *steps, BatchPerRank: *batch,
		GradAccumSteps: *accum,
		Resume:         *resume,
		Stop:           stop,
		OnStep: func(s int, r zeroinf.StepResult) {
			status := ""
			if r.Skipped {
				status = "  (overflow: step skipped)"
			}
			fmt.Printf("step %3d  loss %.6f  scale %g%s\n", s, r.Loss, r.LossScale, status)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.CheckpointErr != nil {
		log.Printf("checkpointing degraded: %v", res.CheckpointErr)
	}
	if *ckptDir != "" && res.FinalStep > res.StartStep {
		fmt.Printf("trained steps %d..%d; checkpoints in %s\n", res.StartStep, res.FinalStep, *ckptDir)
	}
	if *engine == "infinity" || *engine == "zero3" {
		s := res.Stats
		// The two engines report different max-live semantics: zero3 a
		// static largest-single-parameter bound, infinity a measured peak.
		label := "peak live gathered params"
		if *engine == "zero3" {
			label = "largest gathered param (static bound)"
		}
		fmt.Printf("\n%s engine: %d gathers (%d on-demand), %s %s (tiling %d)\n",
			*engine, s.Gathers, s.OnDemandGathers, label, mem.FormatBytes(s.MaxLiveParamBytes), *tiling)
		fmt.Printf("overlap: allgather prefetch %d issued / %d hits, %d async reduce-scatters\n",
			s.CommPrefetchIssued, s.CommPrefetchHits, s.AsyncReduces)
		if topo != nil && len(s.CommTraffic) > 0 {
			fmt.Printf("fabric %s, partition %s — achieved aggregate bandwidth per collective:\n",
				topo, ecfg.Partition)
			kinds := make([]string, 0, len(s.CommTraffic))
			for k := range s.CommTraffic {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				tr := s.CommTraffic[k]
				fmt.Printf("  %-24s %5d ops  %9s moved (%s inter)  %8.3f ms  %7.2f GB/s\n",
					k, tr.Ops, mem.FormatBytes(tr.Bytes()), mem.FormatBytes(tr.InterBytes),
					tr.Seconds*1e3, tr.AggGBps())
			}
		}
	}
	if *engine == "infinity" {
		s := res.Stats
		fmt.Printf("NVMe prefetch %d issued / %d hits; traffic: %s read, %s written; pinned pool %s (%d acquires)\n",
			s.PrefetchIssued, s.PrefetchHits,
			mem.FormatBytes(s.NVMeBytesRead), mem.FormatBytes(s.NVMeBytesWritten),
			mem.FormatBytes(s.PinnedBytes), s.PinnedAcquires)
		if s.CkptBytesOffload > 0 {
			fmt.Printf("activation checkpoints offloaded: %s\n", mem.FormatBytes(s.CkptBytesOffload))
		}
	}
}
