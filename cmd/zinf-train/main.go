// Command zinf-train trains a GPT-like model on synthetic data with any
// engine in the reproduction, printing per-step losses and (for
// ZeRO-Infinity) offload statistics.
//
// Examples:
//
//	zinf-train -engine ddp -ranks 4 -steps 10
//	zinf-train -engine infinity -params nvme -opt nvme -nvme-dir /tmp -ranks 8
//
// With -worker the process instead joins a multi-process world as a single
// rank, reading its identity and training recipe from the environment —
// the mode cmd/zinf-launch spawns (see that command for the variables).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"

	zeroinf "repro"
	"repro/internal/cliconfig"
	"repro/internal/mem"
)

func main() {
	t := cliconfig.TrainDefaults()
	cliconfig.AddTrain(flag.CommandLine, &t)
	var (
		worker    = flag.Bool("worker", false, "run as one rank of a zinf-launch world (identity from ZINF_WORKER_* env)")
		ckptDir   = flag.String("ckpt-dir", "", "crash-consistent checkpoint directory (enables -ckpt-every and -resume)")
		ckptEvery = flag.Int("ckpt-every", 0, "snapshot asynchronously every N steps (0 = off; requires -ckpt-dir)")
		resume    = flag.Bool("resume", false, "resume from the newest complete generation in -ckpt-dir")
	)
	flag.Parse()

	if *worker {
		if err := runWorker(); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec, err := t.WorkerSpec()
	if err != nil {
		log.Fatal(err)
	}
	mcfg, ecfg := spec.Model, spec.Engine
	ecfg.CheckpointDir = *ckptDir
	ecfg.CheckpointEvery = *ckptEvery

	// SIGINT/SIGTERM request a clean stop: ranks agree on a step boundary,
	// take a final snapshot into -ckpt-dir, and exit resumably.
	var stop chan struct{}
	if *ckptDir != "" {
		stop = make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Println("signal received: taking a final snapshot and stopping")
			signal.Stop(sig)
			close(stop)
		}()
	}

	fmt.Printf("training %d-layer hd=%d model (%d params) on %d ranks with %s\n",
		mcfg.Layers, mcfg.Hidden, mcfg.ExactParamCount(), t.Ranks, t.Engine)
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: ecfg, Ranks: t.Ranks, Steps: spec.Steps, BatchPerRank: spec.BatchPerRank,
		GradAccumSteps: spec.GradAccumSteps,
		Resume:         *resume,
		Stop:           stop,
		OnStep: func(s int, r zeroinf.StepResult) {
			status := ""
			if r.Skipped {
				status = "  (overflow: step skipped)"
			}
			fmt.Printf("step %3d  loss %.6f  scale %g%s\n", s, r.Loss, r.LossScale, status)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.CheckpointErr != nil {
		log.Printf("checkpointing degraded: %v", res.CheckpointErr)
	}
	if *ckptDir != "" && res.FinalStep > res.StartStep {
		fmt.Printf("trained steps %d..%d; checkpoints in %s\n", res.StartStep, res.FinalStep, *ckptDir)
	}
	printStats(t.Engine, ecfg, mcfg, res)
}

func printStats(engine string, ecfg zeroinf.EngineConfig, mcfg zeroinf.ModelConfig, res zeroinf.TrainResult) {
	if engine == "infinity" || engine == "zero3" {
		s := res.Stats
		// The two engines report different max-live semantics: zero3 a
		// static largest-single-parameter bound, infinity a measured peak.
		label := "peak live gathered params"
		if engine == "zero3" {
			label = "largest gathered param (static bound)"
		}
		fmt.Printf("\n%s engine: %d gathers (%d on-demand), %s %s (tiling %d)\n",
			engine, s.Gathers, s.OnDemandGathers, label, mem.FormatBytes(s.MaxLiveParamBytes), mcfg.Tiling)
		fmt.Printf("overlap: allgather prefetch %d issued / %d hits, %d async reduce-scatters\n",
			s.CommPrefetchIssued, s.CommPrefetchHits, s.AsyncReduces)
		if ecfg.Topology != nil && len(s.CommTraffic) > 0 {
			fmt.Printf("fabric %s, partition %s — achieved aggregate bandwidth per collective:\n",
				ecfg.Topology, ecfg.Partition)
			kinds := make([]string, 0, len(s.CommTraffic))
			for k := range s.CommTraffic {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				tr := s.CommTraffic[k]
				fmt.Printf("  %-24s %5d ops  %9s moved (%s inter)  %8.3f ms  %7.2f GB/s\n",
					k, tr.Ops, mem.FormatBytes(tr.Bytes()), mem.FormatBytes(tr.InterBytes),
					tr.Seconds*1e3, tr.AggGBps())
			}
		}
	}
	if engine == "infinity" {
		s := res.Stats
		fmt.Printf("NVMe prefetch %d issued / %d hits; traffic: %s read, %s written; pinned pool %s (%d acquires)\n",
			s.PrefetchIssued, s.PrefetchHits,
			mem.FormatBytes(s.NVMeBytesRead), mem.FormatBytes(s.NVMeBytesWritten),
			mem.FormatBytes(s.PinnedBytes), s.PinnedAcquires)
		if s.CkptBytesOffload > 0 {
			fmt.Printf("activation checkpoints offloaded: %s\n", mem.FormatBytes(s.CkptBytesOffload))
		}
	}
}

// envInt reads a required integer worker variable.
func envInt(name string) (int, error) {
	v, err := strconv.Atoi(os.Getenv(name))
	if err != nil {
		return 0, fmt.Errorf("zinf-train -worker: bad or missing %s=%q (spawned outside zinf-launch?)", name, os.Getenv(name))
	}
	return v, nil
}

// runWorker joins a zinf-launch world as one rank. Identity comes from
// ZINF_WORKER_RANK / ZINF_WORKER_WORLD / ZINF_WORKER_COORD /
// ZINF_WORKER_TRANSPORT, the training recipe from ZINF_CONFIG (a JSON
// cliconfig.WorkerSpec).
func runWorker() error {
	spec, err := cliconfig.UnmarshalWorkerSpec([]byte(os.Getenv("ZINF_CONFIG")))
	if err != nil {
		return fmt.Errorf("zinf-train -worker: ZINF_CONFIG: %w", err)
	}
	world, err := envInt("ZINF_WORKER_WORLD")
	if err != nil {
		return err
	}
	if os.Getenv("ZINF_WORKER_TRANSPORT") == "mem" {
		// The launcher runs the whole world in this one process: plain
		// goroutine-rank training.
		res, err := zeroinf.Train(zeroinf.TrainOptions{
			Model: spec.Model, Engine: spec.Engine, Ranks: world,
			Steps: spec.Steps, BatchPerRank: spec.BatchPerRank,
			GradAccumSteps: spec.GradAccumSteps, DataSeed: spec.DataSeed,
		})
		if err != nil {
			return err
		}
		reportWorker(0, res)
		return nil
	}
	rank, err := envInt("ZINF_WORKER_RANK")
	if err != nil {
		return err
	}
	be, err := zeroinf.BackendByName(spec.Engine.Backend)
	if err != nil {
		return err
	}
	tr, err := zeroinf.NewSockTransport(zeroinf.SockConfig{
		Rank: rank, Size: world, Coord: os.Getenv("ZINF_WORKER_COORD"),
	})
	if err != nil {
		return err
	}
	w, err := zeroinf.NewWorld(zeroinf.WorldOptions{
		Size: world, Transport: tr,
		Topology:     spec.Engine.Topology,
		CodecBackend: be,
	})
	if err != nil {
		tr.Close()
		return err
	}
	defer w.Close()
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: spec.Model, Engine: spec.Engine, Comm: w.Comm(rank),
		Steps: spec.Steps, BatchPerRank: spec.BatchPerRank,
		GradAccumSteps: spec.GradAccumSteps, DataSeed: spec.DataSeed,
	})
	if err != nil {
		return fmt.Errorf("rank %d: %w", rank, err)
	}
	reportWorker(rank, res)
	return nil
}

// reportWorker prints the worker's trajectory: per-step losses on rank 0
// (the launcher prefixes every line with the rank), a one-line summary on
// the rest — every rank computes the same global mean loss, so printing it
// once keeps the aggregated output readable.
func reportWorker(rank int, res zeroinf.TrainResult) {
	if rank == 0 {
		for i, l := range res.Losses {
			fmt.Printf("step %3d  loss %.6f\n", res.StartStep+i, l)
		}
	}
	final := "n/a"
	if n := len(res.Losses); n > 0 {
		final = strconv.FormatFloat(res.Losses[n-1], 'f', 6, 64)
	}
	fmt.Printf("worker done: %d steps, final loss %s\n", res.FinalStep-res.StartStep, final)
}
