package main

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func doc(records ...harness.Record) benchDoc {
	return benchDoc{Bench: "zinf-bench", Backend: "parallel", Records: records}
}

func TestCompareAllocsGateIsAbsolute(t *testing.T) {
	base := doc(harness.Record{Name: "zinf/stepalloc/zero3/steady", Unit: "allocs/step", Value: 5})
	cur := doc(harness.Record{Name: "zinf/stepalloc/zero3/steady", Unit: "allocs/step", Value: 3})
	// Even improving on a nonzero baseline fails: the contract is zero.
	v := compare(base, cur, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "want 0") {
		t.Fatalf("violations = %v", v)
	}
	cur.Records[0].Value = 0
	if v := compare(base, cur, 0.25); len(v) != 0 {
		t.Fatalf("zero allocs flagged: %v", v)
	}
}

func TestCompareModelAllocsGateIsAbsolute(t *testing.T) {
	// The full-step record is hard-gated exactly like the engine record —
	// including when the baseline has no matching entry yet.
	cur := doc(harness.Record{Name: "zinf/stepalloc/infinity-gpu/steady", Unit: "model-allocs/step", Value: 1})
	v := compare(doc(), cur, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "want 0") {
		t.Fatalf("violations = %v", v)
	}
	cur.Records[0].Value = 0
	if v := compare(doc(), cur, 0.25); len(v) != 0 {
		t.Fatalf("zero model-allocs flagged: %v", v)
	}
}

func TestCompareFirstStepAllocsRatioGated(t *testing.T) {
	base := doc(harness.Record{Name: "r", Unit: "model-allocs/step", Value: 0,
		Extra: map[string]float64{"first_step_allocs": 4000}})
	ok := doc(harness.Record{Name: "r", Unit: "model-allocs/step", Value: 0,
		Extra: map[string]float64{"first_step_allocs": 4500}})
	if v := compare(base, ok, 0.25); len(v) != 0 {
		t.Fatalf("in-threshold warmup allocs flagged: %v", v)
	}
	regressed := doc(harness.Record{Name: "r", Unit: "model-allocs/step", Value: 0,
		Extra: map[string]float64{"first_step_allocs": 6000}})
	v := compare(base, regressed, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "first_step_allocs") {
		t.Fatalf("warmup-alloc regression not flagged: %v", v)
	}
}

func TestCompareTimeRegressionThreshold(t *testing.T) {
	base := doc(harness.Record{Name: "r", Unit: "ms/run", Value: 100,
		Extra: map[string]float64{"steady_ms": 10}})
	ok := doc(harness.Record{Name: "r", Unit: "ms/run", Value: 120,
		Extra: map[string]float64{"steady_ms": 12}})
	if v := compare(base, ok, 0.25); len(v) != 0 {
		t.Fatalf("20%% regression flagged at 25%% threshold: %v", v)
	}
	slow := doc(harness.Record{Name: "r", Unit: "ms/run", Value: 130,
		Extra: map[string]float64{"steady_ms": 10}})
	v := compare(base, slow, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "regressed") {
		t.Fatalf("30%% regression not flagged: %v", v)
	}
	slowExtra := doc(harness.Record{Name: "r", Unit: "ms/run", Value: 100,
		Extra: map[string]float64{"steady_ms": 20}})
	v = compare(base, slowExtra, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "steady_ms") {
		t.Fatalf("steady_ms regression not flagged: %v", v)
	}
}

func TestCompareBandwidthDropAndMissingRecord(t *testing.T) {
	base := doc(
		harness.Record{Name: "zinf/fig6c/slice/gather", Unit: "GB/s", Value: 80},
		harness.Record{Name: "zinf/fig6c/broadcast/gather", Unit: "GB/s", Value: 20},
	)
	drop := doc(
		harness.Record{Name: "zinf/fig6c/slice/gather", Unit: "GB/s", Value: 50},
	)
	v := compare(base, drop, 0.25)
	if len(v) != 2 {
		t.Fatalf("want bandwidth-drop + missing-record, got %v", v)
	}
	if !strings.Contains(v[0], "dropped") || !strings.Contains(v[1], "missing") {
		t.Fatalf("violations = %v", v)
	}
	same := doc(
		harness.Record{Name: "zinf/fig6c/slice/gather", Unit: "GB/s", Value: 79},
		harness.Record{Name: "zinf/fig6c/broadcast/gather", Unit: "GB/s", Value: 21},
	)
	if v := compare(base, same, 0.25); len(v) != 0 {
		t.Fatalf("in-threshold values flagged: %v", v)
	}
}

func TestCompareUnitChange(t *testing.T) {
	base := doc(harness.Record{Name: "r", Unit: "ms/run", Value: 1})
	cur := doc(harness.Record{Name: "r", Unit: "GB/s", Value: 1})
	v := compare(base, cur, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "unit changed") {
		t.Fatalf("violations = %v", v)
	}
}
