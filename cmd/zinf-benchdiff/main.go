// Command zinf-benchdiff is the CI perf-regression gate: it compares a
// freshly generated record file (zinf-bench -json BENCH_stepalloc.json /
// BENCH_fig6c.json, zinf-roofline -json BENCH_roofline.json) against a
// committed baseline and fails when
//
//   - any record with unit "allocs/step" or "model-allocs/step" is above
//     zero — the allocation-free steady-state contract covers the engine
//     path and the model forward/backward alike, and it is absolute,
//     independent of the baseline's value;
//   - a lower-is-better metric (ms/step, ms/run, allocs/step, and the
//     steady_ms/sim_ms/first_step_allocs extras) regresses past the
//     threshold (default 25%);
//   - a higher-is-better metric (GB/s, GFLOP/s, speedup ratios "x") drops
//     past the threshold;
//   - a baseline record disappears from the current run (coverage cannot
//     rot silently).
//
// Records present only in the current run are reported but do not fail —
// commit a refreshed baseline (-update) to start gating them.
//
// Wall-clock metrics (steady_ms) are machine-dependent: a committed
// baseline gates runs on comparable hardware. If the CI runner generation
// changes and the lane goes red with no code change, regenerate the
// baseline there and commit it via -update; the deterministic metrics
// (allocs, sim_ms, modeled GB/s) are stable across machines.
//
// Usage:
//
//	zinf-benchdiff -baseline bench/baselines/BENCH_stepalloc.json -current BENCH_stepalloc.json
//	zinf-benchdiff -baseline ... -current ... -update   # rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

// benchDoc mirrors harness.WriteRecords' payload.
type benchDoc struct {
	Bench   string           `json:"bench"`
	Backend string           `json:"backend"`
	Records []harness.Record `json:"records"`
}

func loadDoc(path string) (benchDoc, error) {
	var d benchDoc
	f, err := os.Open(path)
	if err != nil {
		return d, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// direction returns +1 for higher-is-better units, -1 for lower-is-better,
// 0 for unknown (not gated).
func direction(unit string) int {
	switch unit {
	case "GB/s", "GFLOP/s", "x":
		return +1
	case "allocs/step", "model-allocs/step", "ms/step", "ms/run", "ms", "seconds":
		return -1
	}
	return 0
}

// compare gates current against baseline with the given fractional
// threshold, returning human-readable violations.
func compare(baseline, current benchDoc, threshold float64) []string {
	var violations []string
	cur := make(map[string]harness.Record, len(current.Records))
	for _, r := range current.Records {
		cur[r.Name] = r
	}

	// The hard allocation gate applies to the current run even where the
	// baseline has no matching record. "allocs/step" is the engine-path
	// record; "model-allocs/step" is the full-step record including the
	// model forward/backward — both must be exactly zero in steady state.
	for _, r := range current.Records {
		if (r.Unit == "allocs/step" || r.Unit == "model-allocs/step") && r.Value > 0 {
			violations = append(violations,
				fmt.Sprintf("%s: steady-state allocations = %.0f %s, want 0 (allocation-free step contract)", r.Name, r.Value, r.Unit))
		}
	}

	gate := func(name, metric string, base, got float64, dir int) {
		if dir == 0 || base == 0 {
			return
		}
		switch {
		case dir < 0 && got > base*(1+threshold):
			violations = append(violations,
				fmt.Sprintf("%s: %s regressed %.4g -> %.4g (>%.0f%% over baseline)",
					name, metric, base, got, threshold*100))
		case dir > 0 && got < base*(1-threshold):
			violations = append(violations,
				fmt.Sprintf("%s: %s dropped %.4g -> %.4g (>%.0f%% under baseline)",
					name, metric, base, got, threshold*100))
		}
	}

	for _, b := range baseline.Records {
		c, ok := cur[b.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: record missing from current run (unit %s)", b.Name, b.Unit))
			continue
		}
		if c.Unit != b.Unit {
			violations = append(violations,
				fmt.Sprintf("%s: unit changed %q -> %q", b.Name, b.Unit, c.Unit))
			continue
		}
		gate(b.Name, "value ("+b.Unit+")", b.Value, c.Value, direction(b.Unit))
		// first_step_allocs gates the warmup path direction-aware: steady
		// state is hard-zero above, but first-step (pool-filling) allocation
		// count regressions would otherwise be invisible.
		for _, extra := range []string{"steady_ms", "sim_ms", "first_step_allocs"} {
			bv, bok := b.Extra[extra]
			cv, cok := c.Extra[extra]
			if bok && cok {
				gate(b.Name, extra, bv, cv, -1)
			}
		}
	}
	return violations
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline BENCH_*.json")
	currentPath := flag.String("current", "", "freshly generated BENCH_*.json")
	thresholdPct := flag.Float64("time-threshold", 25,
		"allowed regression in percent for ratio-gated metrics (allocs are gated at zero regardless)")
	update := flag.Bool("update", false, "rewrite the baseline from the current file and exit")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "zinf-benchdiff: -baseline and -current are required")
		os.Exit(2)
	}

	if *update {
		src, err := os.Open(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer src.Close()
		dst, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer dst.Close()
		if _, err := io.Copy(dst, src); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("baseline %s updated from %s\n", *baselinePath, *currentPath)
		return
	}

	baseline, err := loadDoc(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	current, err := loadDoc(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	base := make(map[string]bool, len(baseline.Records))
	for _, r := range baseline.Records {
		base[r.Name] = true
	}
	for _, r := range current.Records {
		if !base[r.Name] {
			fmt.Printf("note: new record %s (%s = %.4g) not in baseline; run -update to gate it\n",
				r.Name, r.Unit, r.Value)
		}
	}

	violations := compare(baseline, current, *thresholdPct/100)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "FAIL: "+v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d baseline records OK against %s (threshold %.0f%%)\n",
		len(baseline.Records), *currentPath, *thresholdPct)
}
