// Command zinf-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	zinf-bench            # list experiments
//	zinf-bench -run all   # run everything
//	zinf-bench -run fig5a # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	zeroinf "repro"
	"repro/internal/cliconfig"
	"repro/internal/harness"
)

func main() {
	c := cliconfig.CommonDefaults()
	// The fig6b-engine experiment always contrasts dense vs tiled, so bench
	// tiles by default (values below 2 fall back to 4 in the harness).
	c.Tiling = 4
	cliconfig.AddCommon(flag.CommandLine, &c)
	run := flag.String("run", "", "experiment id to run, or 'all'")
	jsonOut := flag.String("json", "",
		"write the run's machine-readable records (BENCH_*.json style) to this path ('-' = stdout)")
	flag.Parse()

	be, err := zeroinf.BackendByName(c.Backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	topo, err := zeroinf.ParseTopology(c.Topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	part, err := zeroinf.ParsePartitioning(c.Partition)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	harness.SetBackend(be)
	harness.SetOverlap(c.Prefetch, c.Overlap)
	harness.SetTiling(c.Tiling)
	harness.SetFabric(topo, part)

	if *run == "" {
		fmt.Println("Available experiments (use -run <id> or -run all):")
		for _, e := range harness.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		return
	}
	var failed bool
	for _, e := range harness.All() {
		if *run != "all" && e.ID != *run {
			continue
		}
		if err := harness.Run(os.Stdout, e); err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed = true
		}
		fmt.Println()
	}
	if *run != "all" {
		if _, ok := harness.ByID(*run); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
	}
	if *jsonOut != "" {
		var w *os.File
		if *jsonOut == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := harness.WriteRecords(w, c.Backend); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
